// Package proc models Linux processes and the tracing facilities RPG² uses
// to manipulate them: a ptrace-like debugger API (pause/resume, code and
// register access, single-stepping) and an LD_PRELOAD-style in-process agent
// (libpg2) that performs bulk code edits cheaply from inside the target's
// address space.
//
// A Process owns a mutable text segment (so new function versions can be
// appended and call sites patched at runtime), a data address space, and one
// or more threads each bound to an execution core. All tracer operations
// charge stop-the-world time to the process clock according to a CostModel,
// which is how the reproduction regenerates the operation-latency numbers of
// the paper's Table 2.
package proc

import (
	"errors"
	"fmt"

	"rpg2/internal/cache"
	"rpg2/internal/cpu"
	"rpg2/internal/isa"
	"rpg2/internal/mem"
)

// State describes a process's lifecycle state.
type State uint8

// Process states.
const (
	// Running means threads may execute when the scheduler runs them.
	Running State = iota
	// Stopped means a tracer has paused every thread.
	Stopped
	// Exited means every thread has halted normally.
	Exited
	// Crashed means a thread took a fatal memory fault.
	Crashed
)

func (s State) String() string {
	switch s {
	case Running:
		return "running"
	case Stopped:
		return "stopped"
	case Exited:
		return "exited"
	case Crashed:
		return "crashed"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// CostModel gives the stop-the-world cost, in cycles, of tracer operations.
// The split between ptrace-path and libpg2-path costs mirrors §3.3 of the
// paper: libpg2 edits target memory directly and is much cheaper per word
// than ptrace's syscall-per-word PokeText.
type CostModel struct {
	// AttachDetach is charged by Attach and Detach.
	AttachDetach uint64
	// StopResume is charged by each Stop and each Resume.
	StopResume uint64
	// PokeText is charged per instruction written via ptrace.
	PokeText uint64
	// PeekText is charged per instruction read via ptrace.
	PeekText uint64
	// Regs is charged by GetRegs/SetRegs.
	Regs uint64
	// SingleStep is charged per single-stepped instruction.
	SingleStep uint64
	// Mprotect is charged when code pages are made writable or sealed
	// again around an edit (one call covers one edit batch).
	Mprotect uint64
	// AgentPokeText is charged per instruction written via libpg2.
	AgentPokeText uint64
}

// ThreadCtx binds an architectural thread to its execution core.
type ThreadCtx struct {
	// ID is the thread id, unique within the process.
	ID int
	// Thread is the architectural state.
	Thread cpu.Thread
	// Core is the hardware context executing the thread.
	Core *cpu.Core
	// Stack is the thread's stack segment.
	Stack *mem.Segment
}

// Options configures process launch.
type Options struct {
	// CPU is the per-core microarchitectural configuration.
	CPU cpu.Config
	// Hier is the shared cache hierarchy (one per socket).
	Hier *cache.Hierarchy
	// StackWords sizes each thread stack; 0 selects a default.
	StackWords int
	// Costs is the tracer cost model, in cycles.
	Costs CostModel
}

// Process is a running instance of a Binary.
type Process struct {
	// Text is the process's code memory. It starts as a copy of the
	// binary's text and grows when a tracer injects new functions.
	Text []isa.Instr
	// Funcs is the symbol table, including injected functions.
	Funcs []isa.Function
	// AS is the data address space.
	AS *mem.AddrSpace

	opts    Options
	threads []*ThreadCtx
	state   State

	// initDone latches once any thread retires the InitDone marker.
	initDone bool
	// sigstop latches when libpg2 raises SIGSTOP to notify the tracer.
	sigstop bool

	// stolenCycles accumulates stop-the-world penalties, for reporting.
	stolenCycles uint64
}

// DefaultStackWords is the per-thread stack size when Options leaves it 0.
const DefaultStackWords = 1024

// Launch creates a process from a binary. setup, if non-nil, populates the
// data address space and the main thread's initial registers. The main
// thread starts at the binary's entry function.
func Launch(bin *isa.Binary, setup func(*mem.AddrSpace, *[isa.NumRegs]uint64), opts Options) (*Process, error) {
	if err := bin.Validate(); err != nil {
		return nil, fmt.Errorf("proc: invalid binary: %w", err)
	}
	entry, err := bin.Entry()
	if err != nil {
		return nil, err
	}
	if opts.Hier == nil {
		return nil, errors.New("proc: Options.Hier is required")
	}
	if opts.StackWords <= 0 {
		opts.StackWords = DefaultStackWords
	}
	p := &Process{
		Text:  append([]isa.Instr(nil), bin.Text...),
		Funcs: append([]isa.Function(nil), bin.Funcs...),
		AS:    mem.NewAddrSpace(),
		opts:  opts,
		state: Running,
	}
	var regs [isa.NumRegs]uint64
	if setup != nil {
		setup(p.AS, &regs)
	}
	p.spawn(entry, regs)
	return p, nil
}

// spawn creates a new thread starting at the given PC with the given
// registers (the stack pointer is initialised to the thread's own stack).
func (p *Process) spawn(pc int, regs [isa.NumRegs]uint64) *ThreadCtx {
	id := len(p.threads)
	stack := p.AS.Alloc(fmt.Sprintf("stack%d", id), p.opts.StackWords)
	regs[isa.SP] = stack.End()
	core := cpu.New(p.opts.CPU, p.opts.Hier)
	core.OnInitDone = func() { p.initDone = true }
	tc := &ThreadCtx{
		ID:     id,
		Thread: cpu.Thread{Regs: regs, PC: pc},
		Core:   core,
		Stack:  stack,
	}
	p.threads = append(p.threads, tc)
	return tc
}

// SpawnThread starts an additional thread at the entry of the named function
// with the given initial registers. Used by multithreaded workloads and by
// OSR tests.
func (p *Process) SpawnThread(fn string, regs [isa.NumRegs]uint64) (*ThreadCtx, error) {
	f, ok := p.Func(fn)
	if !ok {
		return nil, fmt.Errorf("proc: no function %q", fn)
	}
	return p.spawn(f.Entry, regs), nil
}

// Func looks up a function in the process symbol table.
func (p *Process) Func(name string) (isa.Function, bool) {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return isa.Function{}, false
}

// FuncAt returns the function containing the PC, searching injected
// functions as well.
func (p *Process) FuncAt(pc int) (isa.Function, bool) {
	for _, f := range p.Funcs {
		if f.Contains(pc) {
			return f, true
		}
	}
	return isa.Function{}, false
}

// State returns the process lifecycle state, recomputing exit/crash from the
// thread states.
func (p *Process) State() State {
	if p.state == Stopped {
		return Stopped
	}
	anyRunnable := false
	for _, t := range p.threads {
		if t.Thread.Fault != nil {
			p.state = Crashed
			return Crashed
		}
		if t.Thread.Runnable() {
			anyRunnable = true
		}
	}
	if !anyRunnable {
		p.state = Exited
		return Exited
	}
	return p.state
}

// Threads returns the process's threads.
func (p *Process) Threads() []*ThreadCtx { return p.threads }

// MainThread returns thread 0.
func (p *Process) MainThread() *ThreadCtx { return p.threads[0] }

// InitDone reports whether the program has signalled the end of its
// initialisation phase.
func (p *Process) InitDone() bool { return p.initDone }

// Clock returns the process clock: the main core's cycle count. All cores
// advance against the same timebase (quantum scheduling keeps them aligned).
func (p *Process) Clock() uint64 { return p.threads[0].Core.Now }

// StolenCycles returns the total stop-the-world time charged by tracers.
func (p *Process) StolenCycles() uint64 { return p.stolenCycles }

// penalty advances every core's clock without retiring instructions,
// modelling time the process spends stopped while a tracer works on it.
func (p *Process) penalty(cycles uint64) {
	p.stolenCycles += cycles
	for _, t := range p.threads {
		t.Core.Now += cycles
	}
}

// quantum is the round-robin scheduling slice in cycles. It must stay small
// relative to miss latencies: cores simulate their quanta one after another
// against shared memory-controller state, so a coarse quantum would make
// later cores' fills queue behind entire quanta of earlier cores' traffic
// instead of interleaving with it.
const quantum = 512

// Run advances the process by the given number of cycles of its clock.
// Threads are interleaved in fixed quanta; execution stops early if the
// process exits, crashes, or is stopped by a tracer from a callback.
func (p *Process) Run(cycles uint64) {
	if p.state == Stopped {
		return
	}
	target := p.Clock() + cycles
	for p.State() == Running && p.Clock() < target {
		bound := min(p.Clock()+quantum, target)
		progressed := false
		for _, t := range p.threads {
			for t.Thread.Runnable() && t.Core.Now < bound {
				if err := t.Core.Step(&t.Thread, p.Text, p.AS); err != nil {
					t.Thread.Halted = true
					break
				}
				progressed = true
			}
			// Keep halted threads' clocks moving so the process
			// clock stays meaningful.
			if !t.Thread.Runnable() && t.Core.Now < bound {
				t.Core.Now = bound
			}
		}
		if !progressed && p.State() == Running {
			// All threads blocked without progress; advance time.
			for _, t := range p.threads {
				if t.Core.Now < bound {
					t.Core.Now = bound
				}
			}
		}
	}
}

// Counters is a snapshot of process-wide retired instructions and the
// process clock, for IPC windows.
type Counters struct {
	Cycles       uint64
	Instructions uint64
}

// Counters returns the current snapshot summed over all cores.
func (p *Process) Counters() Counters {
	var c Counters
	c.Cycles = p.Clock()
	for _, t := range p.threads {
		c.Instructions += t.Core.Instructions
	}
	return c
}

// FaultedThread returns the first faulted thread, or nil.
func (p *Process) FaultedThread() *ThreadCtx {
	for _, t := range p.threads {
		if t.Thread.Fault != nil {
			return t
		}
	}
	return nil
}
