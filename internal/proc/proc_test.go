package proc

import (
	"testing"

	"rpg2/internal/cache"
	"rpg2/internal/cpu"
	"rpg2/internal/isa"
	"rpg2/internal/mem"
)

func testOptions() Options {
	return Options{
		CPU: cpu.Config{MLP: 2},
		Hier: cache.New(cache.Config{
			L1:   cache.LevelConfig{Name: "L1d", Lines: 8, Assoc: 2, Latency: 1},
			L2:   cache.LevelConfig{Name: "L2", Lines: 16, Assoc: 2, Latency: 10},
			L3:   cache.LevelConfig{Name: "L3", Lines: 32, Assoc: 4, Latency: 30},
			DRAM: cache.DRAMConfig{Latency: 100, ServiceCycles: 4, MSHRs: 8},
		}),
		Costs: CostModel{
			AttachDetach: 10, StopResume: 20, PokeText: 5, PeekText: 2,
			Regs: 3, SingleStep: 4, Mprotect: 8, AgentPokeText: 1,
		},
	}
}

// counterBinary counts r0 from 0 to r1 in a loop then halts.
func counterBinary(t *testing.T) *isa.Binary {
	t.Helper()
	a := isa.NewAsm("main")
	a.MovImm(0, 0)
	a.InitDone()
	a.Label("loop")
	a.AddImm(0, 0, 1)
	a.Br(isa.LT, 0, 1, "loop")
	a.Halt()
	bin, err := isa.NewProgram("main").Add(a).Link()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func launchCounter(t *testing.T, bound uint64) *Process {
	t.Helper()
	p, err := Launch(counterBinary(t), func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
		regs[1] = bound
	}, testOptions())
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	return p
}

func TestRunToExit(t *testing.T) {
	p := launchCounter(t, 100)
	p.Run(10_000)
	if p.State() != Exited {
		t.Fatalf("state = %v, want exited", p.State())
	}
	if !p.InitDone() {
		t.Fatal("InitDone not latched")
	}
	if p.MainThread().Thread.Regs[0] != 100 {
		t.Fatalf("r0 = %d, want 100", p.MainThread().Thread.Regs[0])
	}
	c := p.Counters()
	if c.Instructions == 0 || c.Cycles == 0 {
		t.Fatalf("counters empty: %+v", c)
	}
}

func TestRunRespectsBudget(t *testing.T) {
	p := launchCounter(t, 1<<40)
	p.Run(5000)
	if p.State() != Running {
		t.Fatalf("state = %v, want running", p.State())
	}
	if c := p.Clock(); c < 5000 || c > 5000+quantum {
		t.Fatalf("clock = %d, want ~5000", c)
	}
}

func TestTracerStopBlocksRun(t *testing.T) {
	p := launchCounter(t, 1<<40)
	tr := Attach(p)
	tr.Stop()
	before := p.Counters().Instructions
	p.Run(1000)
	if p.Counters().Instructions != before {
		t.Fatal("stopped process executed instructions")
	}
	tr.Resume()
	p.Run(1000)
	if p.Counters().Instructions == before {
		t.Fatal("resumed process did not execute")
	}
	tr.Detach()
}

func TestTracerPenaltiesAdvanceClock(t *testing.T) {
	p := launchCounter(t, 1<<40)
	before := p.Clock()
	tr := Attach(p) // AttachDetach = 10
	tr.Stop()       // +20
	tr.Resume()     // +20
	if got := p.Clock() - before; got != 50 {
		t.Fatalf("stolen = %d, want 50", got)
	}
	if p.StolenCycles() != 50 {
		t.Fatalf("StolenCycles = %d", p.StolenCycles())
	}
}

func TestPokeRequiresStopped(t *testing.T) {
	p := launchCounter(t, 1<<40)
	tr := Attach(p)
	if err := tr.PokeText(0, isa.MakeNop()); err != ErrNotStopped {
		t.Fatalf("PokeText while running: %v", err)
	}
	tr.Stop()
	if err := tr.PokeText(0, isa.MakeNop()); err != nil {
		t.Fatalf("PokeText while stopped: %v", err)
	}
	in, err := tr.PeekText(0)
	if err != nil || in.Op != isa.Nop {
		t.Fatalf("PeekText: %v %v", in, err)
	}
	if err := tr.PokeText(-1, isa.MakeNop()); err == nil {
		t.Fatal("out-of-range poke should fail")
	}
}

func TestGetSetRegsAndSingleStep(t *testing.T) {
	p := launchCounter(t, 1<<40)
	p.Run(100)
	tr := Attach(p)
	tr.Stop()
	th, err := tr.GetRegs(0)
	if err != nil {
		t.Fatal(err)
	}
	th.Regs[7] = 777
	if err := tr.SetRegs(0, th); err != nil {
		t.Fatal(err)
	}
	got, _ := tr.GetRegs(0)
	if got.Regs[7] != 777 {
		t.Fatal("SetRegs did not stick")
	}
	before := p.Counters().Instructions
	if err := tr.SingleStep(0); err != nil {
		t.Fatal(err)
	}
	if p.Counters().Instructions != before+1 {
		t.Fatal("SingleStep must retire exactly one instruction")
	}
	if _, err := tr.GetRegs(5); err == nil {
		t.Fatal("bad tid should error")
	}
}

func TestLibPG2InjectAndSignal(t *testing.T) {
	p := launchCounter(t, 1<<40)
	tr := Attach(p)
	agent := Preload(p)
	if _, err := agent.InjectCode("f1", []isa.Instr{isa.MakeNop()}); err != ErrNotStopped {
		t.Fatalf("inject while running: %v", err)
	}
	tr.Stop()
	if tr.WaitSIGSTOP() {
		t.Fatal("spurious SIGSTOP")
	}
	base := agent.NextPC()
	entry, err := agent.InjectCode("f1", []isa.Instr{isa.MakeNop(), {Op: isa.Ret, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg}})
	if err != nil {
		t.Fatal(err)
	}
	if entry != base {
		t.Fatalf("entry %d != NextPC %d", entry, base)
	}
	if !tr.WaitSIGSTOP() {
		t.Fatal("injection must raise SIGSTOP")
	}
	f, ok := p.Func("f1")
	if !ok || f.Entry != entry || f.Size != 2 {
		t.Fatalf("injected symbol: %+v %v", f, ok)
	}
	if err := agent.PokeText(entry, isa.MakeNop()); err != nil {
		t.Fatalf("agent poke: %v", err)
	}
}

func TestSpawnThreadRunsConcurrently(t *testing.T) {
	// Two threads incrementing different registers; both make progress.
	a := isa.NewAsm("main")
	a.InitDone()
	a.Label("loop")
	a.AddImm(0, 0, 1)
	a.Jmp("loop")
	w := isa.NewAsm("worker")
	w.Label("loop")
	w.AddImm(2, 2, 1)
	w.Jmp("loop")
	bin, err := isa.NewProgram("main").Add(a).Add(w).Link()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Launch(bin, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SpawnThread("worker", [isa.NumRegs]uint64{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SpawnThread("ghost", [isa.NumRegs]uint64{}); err == nil {
		t.Fatal("spawn of unknown function should fail")
	}
	p.Run(20_000)
	if p.Threads()[0].Thread.Regs[0] == 0 || p.Threads()[1].Thread.Regs[2] == 0 {
		t.Fatal("both threads should progress")
	}
	// Threads have distinct stacks.
	if p.Threads()[0].Stack == p.Threads()[1].Stack {
		t.Fatal("threads share a stack")
	}
}

func TestCrashDetection(t *testing.T) {
	a := isa.NewAsm("main")
	a.MovImm(0, 0)
	a.Load(1, 0, 0) // null dereference
	a.Halt()
	bin, _ := isa.NewProgram("main").Add(a).Link()
	p, err := Launch(bin, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	p.Run(100)
	if p.State() != Crashed {
		t.Fatalf("state = %v, want crashed", p.State())
	}
	if p.FaultedThread() == nil {
		t.Fatal("FaultedThread should find the victim")
	}
}

func TestLaunchRejectsBadBinary(t *testing.T) {
	bad := &isa.Binary{Text: []isa.Instr{{Op: isa.Jmp, Target: 99}},
		Funcs: []isa.Function{{Name: "main", Entry: 0, Size: 1}}, EntryName: "main"}
	if _, err := Launch(bad, nil, testOptions()); err == nil {
		t.Fatal("invalid binary must be rejected")
	}
	opts := testOptions()
	opts.Hier = nil
	if _, err := Launch(counterBinary(t), nil, opts); err == nil {
		t.Fatal("missing hierarchy must be rejected")
	}
}

func TestStateString(t *testing.T) {
	for _, s := range []State{Running, Stopped, Exited, Crashed} {
		if s.String() == "" {
			t.Errorf("state %d has no name", s)
		}
	}
}
