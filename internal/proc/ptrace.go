package proc

import (
	"errors"
	"fmt"

	"rpg2/internal/cpu"
	"rpg2/internal/isa"
)

// Tracer is a ptrace-style handle on a process. Operations mirror the subset
// of the ptrace API RPG² uses: stopping and resuming the target, reading and
// writing code memory, reading and writing registers, and single-stepping.
// Every operation charges its stop-the-world cost to the process clock.
type Tracer struct {
	p        *Process
	attached bool
}

// Attach attaches a tracer to the process.
func Attach(p *Process) *Tracer {
	p.penalty(p.opts.Costs.AttachDetach)
	return &Tracer{p: p, attached: true}
}

// Detach releases the process; a stopped target is resumed first.
func (tr *Tracer) Detach() {
	if !tr.attached {
		return
	}
	if tr.p.state == Stopped {
		tr.Resume()
	}
	tr.p.penalty(tr.p.opts.Costs.AttachDetach)
	tr.attached = false
}

// ErrNotStopped is returned by operations that require a stopped target.
var ErrNotStopped = errors.New("proc: target is not stopped")

// Stop pauses every thread of the target (like SIGSTOP under ptrace).
func (tr *Tracer) Stop() {
	if tr.p.state == Stopped {
		return
	}
	tr.p.penalty(tr.p.opts.Costs.StopResume)
	if tr.p.State() == Running {
		tr.p.state = Stopped
	}
}

// Resume lets the target run again and clears any pending stop
// notification. Cores' outstanding-miss windows are reset: a stopped core
// has drained its pipeline.
func (tr *Tracer) Resume() {
	if tr.p.state != Stopped {
		return
	}
	tr.p.penalty(tr.p.opts.Costs.StopResume)
	tr.p.state = Running
	tr.p.sigstop = false
	for _, t := range tr.p.threads {
		t.Core.ResetWindow()
	}
}

// Stopped reports whether the target is currently stopped.
func (tr *Tracer) Stopped() bool { return tr.p.state == Stopped }

// PeekText reads one instruction via the ptrace path.
func (tr *Tracer) PeekText(pc int) (isa.Instr, error) {
	if pc < 0 || pc >= len(tr.p.Text) {
		return isa.Instr{}, fmt.Errorf("proc: PeekText out of range: %d", pc)
	}
	tr.p.penalty(tr.p.opts.Costs.PeekText)
	return tr.p.Text[pc], nil
}

// PokeText writes one instruction via the ptrace path. The target must be
// stopped: RPG² never edits code under a running thread's feet.
func (tr *Tracer) PokeText(pc int, in isa.Instr) error {
	if tr.p.state != Stopped {
		return ErrNotStopped
	}
	if pc < 0 || pc >= len(tr.p.Text) {
		return fmt.Errorf("proc: PokeText out of range: %d", pc)
	}
	tr.p.penalty(tr.p.opts.Costs.Mprotect + tr.p.opts.Costs.PokeText + tr.p.opts.Costs.Mprotect)
	tr.p.Text[pc] = in
	return nil
}

// GetRegs returns a copy of a thread's architectural state.
func (tr *Tracer) GetRegs(tid int) (cpu.Thread, error) {
	if tid < 0 || tid >= len(tr.p.threads) {
		return cpu.Thread{}, fmt.Errorf("proc: no thread %d", tid)
	}
	tr.p.penalty(tr.p.opts.Costs.Regs)
	return tr.p.threads[tid].Thread, nil
}

// SetRegs replaces a thread's architectural state. The target must be
// stopped.
func (tr *Tracer) SetRegs(tid int, t cpu.Thread) error {
	if tr.p.state != Stopped {
		return ErrNotStopped
	}
	if tid < 0 || tid >= len(tr.p.threads) {
		return fmt.Errorf("proc: no thread %d", tid)
	}
	tr.p.penalty(tr.p.opts.Costs.Regs)
	tr.p.threads[tid].Thread = t
	return nil
}

// SetPC is a convenience wrapper that rewrites only a thread's PC.
func (tr *Tracer) SetPC(tid, pc int) error {
	t, err := tr.GetRegs(tid)
	if err != nil {
		return err
	}
	t.PC = pc
	return tr.SetRegs(tid, t)
}

// SingleStep executes exactly one instruction of the given thread while the
// rest of the process stays stopped. RPG² single-steps a thread out of a
// prefetch kernel during rollback when its PC has no BAT entry (§3.4.1).
func (tr *Tracer) SingleStep(tid int) error {
	if tr.p.state != Stopped {
		return ErrNotStopped
	}
	if tid < 0 || tid >= len(tr.p.threads) {
		return fmt.Errorf("proc: no thread %d", tid)
	}
	tr.p.penalty(tr.p.opts.Costs.SingleStep)
	tc := tr.p.threads[tid]
	if !tc.Thread.Runnable() {
		return cpu.ErrHalted
	}
	return tc.Core.Step(&tc.Thread, tr.p.Text, tr.p.AS)
}

// WaitSIGSTOP reports and consumes a pending libpg2 completion notification.
func (tr *Tracer) WaitSIGSTOP() bool {
	if tr.p.sigstop {
		tr.p.sigstop = false
		return true
	}
	return false
}

// Process exposes the traced process for observers (profilers attach to its
// cores; experiments read its counters).
func (tr *Tracer) Process() *Process { return tr.p }

// LibPG2 models the LD_PRELOAD agent loaded into the target at launch. It
// performs bulk code writes from inside the address space — much cheaper per
// instruction than ptrace — and raises SIGSTOP when an injection completes
// so the tracer can take over (§3.3).
type LibPG2 struct {
	p *Process
}

// Preload attaches the agent to a process, as LD_PRELOAD would at launch.
func Preload(p *Process) *LibPG2 { return &LibPG2{p: p} }

// InjectCode appends a new function's code to the process text segment and
// registers its symbol. It returns the entry PC of the injected function.
// The target must be stopped; branch targets inside code must already be
// rebased to the returned entry (the caller knows the append position via
// NextPC).
func (l *LibPG2) InjectCode(name string, code []isa.Instr) (int, error) {
	if l.p.state != Stopped {
		return 0, ErrNotStopped
	}
	entry := len(l.p.Text)
	cost := l.p.opts.Costs.Mprotect + uint64(len(code))*l.p.opts.Costs.AgentPokeText + l.p.opts.Costs.Mprotect
	l.p.penalty(cost)
	l.p.Text = append(l.p.Text, code...)
	l.p.Funcs = append(l.p.Funcs, isa.Function{Name: name, Entry: entry, Size: len(code)})
	l.p.sigstop = true // notify the tracer that injection completed
	return entry, nil
}

// NextPC returns the PC where the next injected function will begin, so
// rewriters can pre-relocate branch targets.
func (l *LibPG2) NextPC() int { return len(l.p.Text) }

// PokeText writes one instruction via the agent's direct-memory path. Used
// for the few-byte prefetch-distance edits of the tuning phase (§3.4).
func (l *LibPG2) PokeText(pc int, in isa.Instr) error {
	if l.p.state != Stopped {
		return ErrNotStopped
	}
	if pc < 0 || pc >= len(l.p.Text) {
		return fmt.Errorf("proc: agent PokeText out of range: %d", pc)
	}
	l.p.penalty(l.p.opts.Costs.Mprotect + l.p.opts.Costs.AgentPokeText + l.p.opts.Costs.Mprotect)
	l.p.Text[pc] = in
	return nil
}
