// Profile translation: the cross-machine seeding tier between a warm hit
// and a cold miss. The store deliberately keys on (bench, input, machine)
// because a distance tuned on one microarchitecture transplants badly to
// another (the paper's Figure 3) — but transplanting *badly* still beats
// starting from a random distance, provided the transplant is validated.
// The first-order reason a tuned distance does not carry across machines
// is that the useful distance scales with how many loop iterations of work
// are needed to hide one memory access: scale the distance by the ratio of
// the machines' effective memory latencies and the sibling profile becomes
// a usable hypothesis, which the full-span search then confirms or walks
// away from.

package fleet

import (
	"math"

	"rpg2/internal/machine"
)

// TranslateDistance scales a prefetch distance tuned on machine src into a
// starting hypothesis for machine dst: the distance grows with the target's
// effective memory latency (machine.MemLatency — DRAM fill plus the L3
// lookup preceding it), is rounded to the nearest integer, and is clamped
// to the search range [1, maxDistance]. A non-positive input distance or
// latency falls back to clamping alone.
func TranslateDistance(src, dst machine.Machine, d, maxDistance int) int {
	srcLat, dstLat := src.MemLatency(), dst.MemLatency()
	if d > 0 && srcLat > 0 && dstLat > 0 {
		d = int(math.Round(float64(d) * float64(dstLat) / float64(srcLat)))
	}
	if d < 1 {
		d = 1
	}
	if maxDistance > 0 && d > maxDistance {
		d = maxDistance
	}
	return d
}
