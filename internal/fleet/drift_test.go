// Drift-watchdog acceptance tests: the re-tune lane end to end on a
// drifting workload, the zero-knob byte-identity discipline, the journal
// pairing invariant, and kill -9 mid-re-tune with the lane surviving
// recovery.
package fleet

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"rpg2/internal/machine"
	rpgcore "rpg2/internal/rpg2"
	"rpg2/internal/wal"
)

// driftSpec is the canonical drifting session: bc-drift with seed 1 and a
// warm-start hint of distance 2 activates in phase A at ~3.4 s with a
// short distance that the ~11.6 s phase switch then starves, so an armed
// watchdog reliably fires. Cold keeps the run deterministic; the 30 s
// budget leaves room to detect, re-tune, and run out.
func driftSpec() SessionSpec {
	return SessionSpec{
		Bench: "bc-drift", Seed: 1, Cold: true, RunSeconds: 30,
		Config: &rpgcore.Config{SeedDistance: 2},
	}
}

// TestDriftWatchdogRetunesDriftedSession is the tentpole scenario: a tuned
// session drifts at the phase switch, the watchdog fires, the re-tune lane
// re-enters the search seeded from the installed distance, and the session
// ends Done with a recovered rate — all of it visible in the journal and
// the metrics snapshot.
func TestDriftWatchdogRetunesDriftedSession(t *testing.T) {
	// Hysteresis 5 (default 3) lets the EWMA converge to the drifted
	// plateau before firing, so the recovered-rate comparison below is
	// against the degraded steady state, not a half-decayed average.
	f := New(Config{
		Machine: machine.CascadeLake(), Workers: 1,
		WatchdogInterval: 1, WatchdogHysteresis: 5,
	})
	defer f.Close()
	s, err := f.Submit(driftSpec())
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()

	if s.State() != Done {
		t.Fatalf("drifted session ended %v (err %v), want Done", s.State(), s.Err())
	}
	if s.Retunes() != 1 {
		t.Fatalf("session completed %d re-tunes, want 1", s.Retunes())
	}
	if s.Retuning() {
		t.Fatal("session still flagged retuning after Drain")
	}

	var detected, scheduled, complete, done *Event
	for _, e := range f.Journal().SessionEvents(s.ID) {
		e := e
		switch e.Type {
		case "drift-detected":
			detected = &e
		case "retune-scheduled":
			scheduled = &e
		case "retune-complete":
			complete = &e
		case "session-done":
			done = &e
		}
	}
	if detected == nil || scheduled == nil || complete == nil {
		t.Fatalf("journal missing drift lane events: detected=%v scheduled=%v complete=%v",
			detected != nil, scheduled != nil, complete != nil)
	}
	if detected.Rate >= detected.Ref {
		t.Fatalf("drift-detected rate %.4f not degraded below ref %.4f", detected.Rate, detected.Ref)
	}
	if detected.Windows <= 0 {
		t.Fatalf("drift-detected carries no detection latency: windows=%d", detected.Windows)
	}
	if scheduled.Retune != 1 || scheduled.Distance <= 0 {
		t.Fatalf("retune-scheduled grant=%d seed distance=%d, want grant 1 with a warm seed",
			scheduled.Retune, scheduled.Distance)
	}
	if complete.Rate <= detected.Rate {
		t.Fatalf("re-tune did not recover the rate: %.4f after drifting to %.4f",
			complete.Rate, detected.Rate)
	}
	if done == nil || done.Retune != 1 {
		t.Fatalf("session-done does not record the re-tune: %+v", done)
	}

	snap := f.Snapshot()
	if snap.DriftDetected != 1 || snap.RetunesScheduled != 1 || snap.RetunesCompleted != 1 {
		t.Fatalf("drift counters = %d/%d/%d, want 1/1/1",
			snap.DriftDetected, snap.RetunesScheduled, snap.RetunesCompleted)
	}
	if snap.DetectWindowsMean <= 0 {
		t.Fatalf("snapshot lost the detection latency: %+v", snap)
	}
	if text := snap.Render(); !containsStr(text, "drift watchdog") {
		t.Fatalf("rendered snapshot missing the drift watchdog line:\n%s", text)
	}
}

// TestDriftZeroKnobByteIdentity: with the watchdog off a fleet running the
// drifting bench must look exactly like the pre-drift fleet — no drift
// event types, no drift JSON keys anywhere in the journal, no drift
// counters, no watchdog line in the rendered snapshot.
func TestDriftZeroKnobByteIdentity(t *testing.T) {
	f := New(Config{Machine: machine.CascadeLake(), Workers: 1})
	defer f.Close()
	specs := append(stressSpecs(4, 1), driftSpec())
	if _, err := f.Run(specs); err != nil {
		t.Fatal(err)
	}
	for _, e := range f.Journal().Events() {
		switch e.Type {
		case "drift-detected", "retune-scheduled", "retune-complete":
			t.Fatalf("zero-knob run emitted %q", e.Type)
		}
		raw, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		var keys map[string]json.RawMessage
		if err := json.Unmarshal(raw, &keys); err != nil {
			t.Fatal(err)
		}
		for _, k := range []string{"retune", "rate", "ref", "windows"} {
			if _, ok := keys[k]; ok {
				t.Fatalf("zero-knob %q event serialized drift key %q: %s", e.Type, k, raw)
			}
		}
	}
	snap := f.Snapshot()
	if snap.DriftDetected != 0 || snap.RetunesScheduled != 0 || snap.RetunesCompleted != 0 ||
		snap.DetectWindowsMean != 0 {
		t.Fatalf("zero-knob run accrued drift counters: %+v", snap)
	}
	if text := snap.Render(); containsStr(text, "drift watchdog") {
		t.Fatalf("zero-knob snapshot renders the watchdog line:\n%s", text)
	}
}

// TestDriftJournalPairingInvariant runs a mixed fleet with the watchdog
// armed and replays the journal per session: every drift-detected must be
// immediately followed by the retune-scheduled that consumed the grant,
// completions never exceed grants, and the terminal record's re-tune count
// matches the completions seen.
func TestDriftJournalPairingInvariant(t *testing.T) {
	f := New(Config{
		Machine: machine.CascadeLake(), Workers: 2,
		WatchdogInterval: 1, MaxRetunes: 2,
	})
	defer f.Close()
	specs := []SessionSpec{driftSpec(), {Bench: "is", Seed: 2}, {Bench: "cg", Seed: 3}}
	drift2 := driftSpec()
	drift2.Seed = 6
	specs = append(specs, drift2)
	got, err := f.Run(specs)
	if err != nil {
		t.Fatal(err)
	}

	totalDetected := 0
	for _, s := range got {
		evs := f.Journal().SessionEvents(s.ID)
		scheduled, completed := 0, 0
		for i, e := range evs {
			switch e.Type {
			case "drift-detected":
				totalDetected++
				if i+1 >= len(evs) || evs[i+1].Type != "retune-scheduled" {
					t.Fatalf("session %d: drift-detected not followed by retune-scheduled: %+v",
						s.ID, evs)
				}
				if evs[i+1].Retune != e.Retune {
					t.Fatalf("session %d: detection grant %d paired with schedule grant %d",
						s.ID, e.Retune, evs[i+1].Retune)
				}
			case "retune-scheduled":
				scheduled++
				if i == 0 || evs[i-1].Type != "drift-detected" {
					t.Fatalf("session %d: retune-scheduled with no detection (no crash here): %+v",
						s.ID, evs)
				}
			case "retune-complete":
				completed++
			case "session-done":
				if e.Retune != completed {
					t.Fatalf("session %d: terminal record says %d re-tunes, journal shows %d",
						s.ID, e.Retune, completed)
				}
			}
		}
		if completed > scheduled {
			t.Fatalf("session %d: %d completions for %d grants", s.ID, completed, scheduled)
		}
		if s.Retunes() != completed {
			t.Fatalf("session %d: Retunes()=%d, journal shows %d completions",
				s.ID, s.Retunes(), completed)
		}
	}
	if totalDetected == 0 {
		t.Fatal("no drift detection fired; the invariant was never exercised")
	}
	snap := f.Snapshot()
	if snap.DriftDetected != totalDetected || snap.RetunesScheduled != totalDetected {
		t.Fatalf("snapshot pairing broken: detected=%d scheduled=%d, journal saw %d",
			snap.DriftDetected, snap.RetunesScheduled, totalDetected)
	}
}

// TestDriftCrashHelperProcess is the victim for the kill-mid-re-tune test:
// one drifting session on one worker, then a backlog of ordinary sessions
// so the granted re-tune sits queued behind real work — a wide wall-clock
// window for the parent's SIGKILL to land between retune-scheduled and the
// re-tune dispatch.
func TestDriftCrashHelperProcess(t *testing.T) {
	if os.Getenv("FLEET_WANT_DRIFT_HELPER") != "1" {
		t.Skip("helper process for TestKillMidRetuneRecoverLaneIntact")
	}
	f := New(Config{
		Machine: machine.CascadeLake(), Workers: 1,
		WatchdogInterval: 1,
		StateDir:         os.Getenv("FLEET_DRIFT_DIR"),
		Fsync:            wal.SyncAlways, SnapshotEvery: 1 << 30,
	})
	if _, err := f.Submit(driftSpec()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		spec := crashPairs[i%len(crashPairs)]
		spec.Seed = int64(i + 100)
		if _, err := f.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	f.Drain()
	time.Sleep(time.Minute) // the parent's SIGKILL ends this process
}

// TestKillMidRetuneRecoverLaneIntact kills a fleet after the re-tune lane
// granted a re-tune but before it completed, then recovers with -resume
// semantics: the grant must survive (no attempt bump, retuning restated in
// the fresh epoch) and the drifted session must still finish its re-tune.
func TestKillMidRetuneRecoverLaneIntact(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestDriftCrashHelperProcess", "-test.v")
	cmd.Env = append(os.Environ(), "FLEET_WANT_DRIFT_HELPER=1", "FLEET_DRIFT_DIR="+dir)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Kill the instant the grant is durable; the queue backlog keeps the
	// re-tune itself from dispatching for many milliseconds after this.
	journal := filepath.Join(dir, journalFile)
	deadline := time.Now().Add(120 * time.Second)
	for {
		if data, err := os.ReadFile(journal); err == nil &&
			bytes.Contains(data, []byte(`"retune-scheduled"`)) {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("no retune-scheduled appeared in the child's WAL; child output:\n%s", out.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // the kill is the expected exit

	f, rec, err := Recover(dir, Config{
		Machine: machine.CascadeLake(), Workers: 2,
		WatchdogInterval: 1,
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer f.Close()

	if rec.RequeuedRetuning < 1 {
		t.Fatalf("recovery did not keep the re-tune lane: %+v\nchild output:\n%s", rec, out.String())
	}
	if !containsStr(rec.Summary(), "re-tune lane") {
		t.Fatalf("recovery summary hides the lane: %q", rec.Summary())
	}

	var drifted *Session
	for _, s := range rec.Requeued {
		if s.Spec.Bench == "bc-drift" {
			drifted = s
			break
		}
	}
	if drifted == nil {
		t.Fatalf("drifted session not among the requeued: %+v", rec)
	}

	f.Drain()
	if !drifted.State().Terminal() || drifted.State() == Failed {
		t.Fatalf("recovered re-tune ended %v (err %v)", drifted.State(), drifted.Err())
	}
	// The grant was consumed pre-crash, not the retry budget: recovery
	// must not charge the interruption as a failed attempt.
	if drifted.Attempt() != 0 {
		t.Fatalf("recovery bumped the drifted session's attempt to %d", drifted.Attempt())
	}
	if drifted.State() == Done && drifted.Retunes() != 1 {
		t.Fatalf("recovered session completed %d re-tunes, want 1", drifted.Retunes())
	}
	for _, s := range rec.Requeued {
		if !s.State().Terminal() {
			t.Fatalf("requeued session %d never finished: %v", s.ID, s.State())
		}
	}
}
