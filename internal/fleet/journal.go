package fleet

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	rpgcore "rpg2/internal/rpg2"
)

// Event is one record on the fleet's journal: a session state transition,
// a profile-store decision, or a terminal session report. Events marshal to
// JSON with the same Report encoding cmd/rpg2 -json emits, so fleet
// journals and single-session dumps can share tooling.
type Event struct {
	// Seq is the journal-global sequence number (assigned on append).
	Seq int `json:"seq"`
	// Wall is seconds of real time since the journal was opened.
	Wall float64 `json:"wall"`
	// Session is the subject session's ID (-1 for fleet-level events).
	Session int `json:"session"`
	// Type is the event kind: "queued", "admitted", "state", "store-hit",
	// "store-miss", "store-translated", "store-bypass", "store-commit",
	// "store-invalidate", "retry-scheduled", "breaker-open",
	// "breaker-closed", "session-done", "session-failed",
	// "session-degraded", "drift-detected", "retune-scheduled",
	// "retune-complete" — plus the fleet-level (Session -1) chaos and
	// hardening vocabulary: "persist-degraded", "persist-rearm",
	// "persist-rearmed", "handler-panic".
	Type string `json:"type"`
	// Bench and Input name the session's workload.
	Bench string `json:"bench,omitempty"`
	Input string `json:"input,omitempty"`
	// Kind is the session's job kind ("optimize", "baseline", "static",
	// "sweep", "profile", "apt-get") on admission and terminal events.
	Kind string `json:"kind,omitempty"`
	// Machine is the effective machine the session ran on.
	Machine string `json:"machine,omitempty"`
	// State is the session state entered (for "state" events and
	// terminal events).
	State string `json:"state,omitempty"`
	// At is the session-relative simulated time of a phase transition.
	At float64 `json:"t,omitempty"`
	// Warm marks sessions that were seeded from the profile store.
	Warm bool `json:"warm,omitempty"`
	// Translated marks sessions seeded from a sibling machine's profile
	// through the translation layer ("store-translated", "session-done").
	Translated bool `json:"translated,omitempty"`
	// Source is the sibling machine a "store-translated" seed came from.
	Source string `json:"source,omitempty"`
	// Distance is the latency-scaled seed distance of a "store-translated"
	// event — what the translated session's search starts from.
	Distance int `json:"distance,omitempty"`
	// Reason is why a "store-bypass" session skipped the store entirely:
	// "cold" (Spec.Cold), "retry" (re-profile attempt), or "disabled".
	Reason string `json:"reason,omitempty"`
	// Priority is the session's admission priority ("queued", "admitted").
	Priority int `json:"priority,omitempty"`
	// Attempt is the retry-lane attempt index the event belongs to
	// (0, omitted, for a session's first admission).
	Attempt int `json:"attempt,omitempty"`
	// Tenant is the submitter the session is accounted to ("queued"
	// events; omitted for untenanted sessions, so pre-tenant journals are
	// byte-identical).
	Tenant string `json:"tenant,omitempty"`
	// Backoff and Due describe a "retry-scheduled" event: the exponential
	// backoff granted and the virtual-clock due time, both in virtual
	// seconds.
	Backoff float64 `json:"backoff,omitempty"`
	Due     float64 `json:"due,omitempty"`
	// Wait is the virtual backoff wait an "admitted" dispatch consumed.
	Wait float64 `json:"wait,omitempty"`
	// Retune is the re-tune lane grant index the event belongs to — a
	// budget separate from Attempt, consumed by the phase-drift watchdog,
	// never by failures. Drift is not rollback: these events coexist with
	// (and are never conflated into) the retry/breaker vocabulary.
	Retune int `json:"retune,omitempty"`
	// Rate and Ref describe a "drift-detected" event: the smoothed
	// miss-site retirement rate that tripped the detector and the
	// activation-time reference it degraded from. Rate also rides on
	// "retune-complete" as the re-tuned activation rate.
	Rate float64 `json:"rate,omitempty"`
	Ref  float64 `json:"ref,omitempty"`
	// Windows is how many watchdog sample windows elapsed between the
	// (re-)activation and the firing — the detection half of the
	// recovery-latency accounting.
	Windows int `json:"windows,omitempty"`
	// Err carries the failure for "session-failed" events.
	Err string `json:"error,omitempty"`
	// Report is the full controller report for "session-done" events.
	Report *rpgcore.Report `json:"report,omitempty"`
	// Spec is the replayable projection of the submitted spec, attached to
	// "queued" events only when the fleet persists to a WAL — it is what
	// lets crash recovery re-admit sessions that never finished. Pure
	// in-memory journals stay byte-identical to the pre-WAL fleet.
	Spec *SpecRecord `json:"spec,omitempty"`
	// Entry is the committed profile, attached to "store-commit" events
	// only when persisting, so replay can rebuild the store.
	Entry *Entry `json:"entry,omitempty"`
	// Shard is the store shard the key routes to, attached to persisted
	// store-commit/store-invalidate events only when the store is sharded
	// (a pointer so shard 0 still serializes). Replay re-hashes keys into
	// the recovering fleet's own layout and does not depend on it; it is
	// there so a journal can be audited per shard. In-memory and
	// single-shard journals stay byte-identical to the pre-sharding fleet.
	Shard *int `json:"shard,omitempty"`
}

// Journal is an append-only, concurrency-safe event log.
type Journal struct {
	mu      sync.Mutex
	start   time.Time
	events  []Event
	sink    func(Event)
	watches map[chan struct{}]struct{}
}

// NewJournal opens an empty journal; Wall timestamps are relative to now.
func NewJournal() *Journal {
	return &Journal{start: time.Now()}
}

// SetSink installs a tee: every subsequent event is handed to fn, under
// the journal lock, in sequence order — the hook the fleet's WAL hangs
// off. Install before any events are added.
func (j *Journal) SetSink(fn func(Event)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sink = fn
}

func (j *Journal) add(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e.Seq = len(j.events)
	e.Wall = time.Since(j.start).Seconds()
	j.events = append(j.events, e)
	if j.sink != nil {
		j.sink(e)
	}
	for ch := range j.watches {
		select {
		case ch <- struct{}{}:
		default: // watcher already has a pending wake; it will re-scan
		}
	}
}

// LastSeq is the Seq of the most recent event (-1 when the journal is
// empty). Seq numbers are dense, so this is also len(events)-1.
func (j *Journal) LastSeq() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events) - 1
}

// withLock runs fn over the live event slice while holding the journal
// lock, freezing the event stream for the duration. It exists for the
// persistence re-arm: re-seeding a fresh WAL from the in-memory journal
// must observe a consistent prefix with no event able to land between the
// scan and the sink swap. fn must not append events or acquire the fleet
// lock (the fleet journals while holding it, so that edge would deadlock).
func (j *Journal) withLock(fn func(events []Event)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	fn(j.events)
}

// Events returns a copy of the log in append order.
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, len(j.events))
	copy(out, j.events)
	return out
}

// EventsSince returns a copy of every event with Seq > after, in order.
// Seq numbers are dense (assigned 0,1,2,... on append), so passing the
// last seen Seq resumes a stream with no gap and no duplicate; after=-1
// returns everything.
func (j *Journal) EventsSince(after int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	from := after + 1
	if from < 0 {
		from = 0
	}
	if from >= len(j.events) {
		return nil
	}
	out := make([]Event, len(j.events)-from)
	copy(out, j.events[from:])
	return out
}

// Watch registers a wake channel: each append sends a non-blocking signal
// on it. Pair with EventsSince for an edge-triggered stream — a coalesced
// wake is fine because the consumer re-scans from its cursor. Callers must
// Unwatch when done.
func (j *Journal) Watch() chan struct{} {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	if j.watches == nil {
		j.watches = make(map[chan struct{}]struct{})
	}
	j.watches[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

// Unwatch removes a wake channel registered by Watch.
func (j *Journal) Unwatch(ch chan struct{}) {
	j.mu.Lock()
	delete(j.watches, ch)
	j.mu.Unlock()
}

// SessionEvents returns the events belonging to one session, in order.
// It filters under the lock rather than copying the whole log first, so a
// per-session query allocates O(matches), not O(total events).
func (j *Journal) SessionEvents(id int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	for _, e := range j.events {
		if e.Session == id {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSON streams the journal as newline-delimited JSON.
func (j *Journal) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range j.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
