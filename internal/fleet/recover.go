// Crash recovery: rebuild a fleet's durable state from its state dir.
// The invariants, in order of importance:
//
//  1. No committed profile-store entry is lost: entries live in the last
//     snapshot, and commits after its watermark roll forward from the
//     journal WAL (store mutations always precede their journal events,
//     so the watermark never overclaims; replaying a little extra is
//     idempotent).
//  2. No submitted session is lost: every session whose journal lacks a
//     terminal record is re-admitted. A session that was in flight when
//     the process died re-runs as the next attempt — cold, with a
//     derived seed — exactly the retry lane's discipline for a failed
//     attempt; a session still waiting (queue, retry lane, or cancelled
//     by a SIGINT drain) is re-admitted as the attempt it was waiting
//     for. Sessions with closure-carrying specs re-run under the fleet's
//     base config (closures cannot survive a process).
//  3. Scheduler posture survives: the virtual clock, policy counters,
//     and breaker states import from the snapshot, then breaker edges
//     journaled after the watermark roll forward coarsely.
//
// Recovery starts a fresh epoch in an order that keeps every crash
// instant recoverable: the rebuilt state is written as a new snapshot
// first (old journal untouched), the pending sessions are re-admitted so
// their "queued" records land in a staged journal, and only then is the
// staged journal atomically renamed over the old one. An interrupted
// recovery therefore leaves either the old journal (pending sessions
// still in it) or the new journal (pending sessions re-journaled) under
// the new snapshot — both pairings readState reads consistently.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rpg2/internal/admission"
	rpgcore "rpg2/internal/rpg2"
	"rpg2/internal/wal"
)

// Recovery reports what Recover rebuilt and salvaged.
type Recovery struct {
	// StateDir is the recovered state directory; Epoch is the fresh epoch
	// the recovered fleet writes, PrevEpoch the one it recovered.
	StateDir  string `json:"state_dir"`
	Epoch     int    `json:"epoch"`
	PrevEpoch int    `json:"prev_epoch"`
	// JournalSalvage and SnapshotSalvage report WAL damage (a torn tail
	// from the crash is normal and harmless).
	JournalSalvage  wal.Salvage `json:"journal_salvage"`
	SnapshotSalvage wal.Salvage `json:"snapshot_salvage"`
	// Events is how many journal events the crashed epoch left behind;
	// Replayed counts the store/breaker events rolled forward past the
	// snapshot watermark.
	Events   int `json:"events"`
	Replayed int `json:"replayed"`
	// StoreEntries is how many committed profile entries survived.
	StoreEntries int `json:"store_entries"`
	// Breakers is how many breaker postures were restored.
	Breakers int `json:"breakers"`
	// Sessions is the distinct session count in the crashed journal;
	// Terminal of those had already finished.
	Sessions int `json:"sessions"`
	Terminal int `json:"terminal"`
	// Requeued holds the re-admitted sessions' new handles, in the old
	// admission order; RequeuedWaiting of them were still waiting at the
	// crash, RequeuedInFlight were mid-run (and re-run cold).
	Requeued         []*Session `json:"-"`
	RequeuedWaiting  int        `json:"requeued_waiting"`
	RequeuedInFlight int        `json:"requeued_in_flight"`
	// Records distils every pre-crash session for callers that serve
	// session lookups across a restart (the daemon): terminal sessions
	// keep their journaled outcome, re-admitted ones carry their new live
	// handle. Ordered by old session ID.
	Records []RecoveredSession `json:"-"`
}

// RecoveredSession is one pre-crash session's distilled history. For a
// session that reached a terminal record before the crash, State/Err/
// Report reproduce its journaled outcome and Session is nil; for a
// re-admitted session, Session is the live handle the recovered fleet is
// running it under (its ID differs from OldID — recovery continues the ID
// space, it does not reuse it).
type RecoveredSession struct {
	OldID      int
	State      string
	Err        string
	Warm       bool
	Translated bool
	Attempt    int
	Report     *rpgcore.Report
	Session    *Session
}

// Summary renders the one-line operator account rpg2-fleet prints.
func (r *Recovery) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recovered epoch %d -> %d: %d sessions submitted pre-crash, %d terminal, %d requeued (%d waiting, %d in-flight), %d store entries, %d breakers",
		r.PrevEpoch, r.Epoch, r.Sessions, r.Terminal, len(r.Requeued),
		r.RequeuedWaiting, r.RequeuedInFlight, r.StoreEntries, r.Breakers)
	if !r.JournalSalvage.Clean() {
		fmt.Fprintf(&b, "; journal salvage: %s", r.JournalSalvage)
	}
	if !r.SnapshotSalvage.Clean() {
		fmt.Fprintf(&b, "; snapshot salvage: %s", r.SnapshotSalvage)
	}
	return b.String()
}

// breakerEdge is a journaled breaker transition rolled forward past the
// snapshot watermark.
type breakerEdge struct {
	key  admission.Key
	open bool
}

// pendingSession is one session owed a re-admission.
type pendingSession struct {
	oldID   int
	spec    SessionSpec
	attempt int
	// inFlight: the session was mid-run at the crash; its attempt is
	// already bumped and the re-run goes cold with a derived seed.
	inFlight bool
}

// recoveredState is everything readState distils from the state dir.
type recoveredState struct {
	prevEpoch int
	sched     *admission.PersistState
	entries   map[Key]Entry
	order     []Key // commit order for deterministic Restore
	breakers  []breakerEdge
	pending   []pendingSession
	maxID     int // highest pre-crash session ID (-1 when none)
	rec       *Recovery
}

// Recover rebuilds a fleet from stateDir: profile store, scheduler
// posture, and the sessions that were queued or in flight when the
// previous process died. The returned fleet is live (workers running,
// re-admitted sessions dispatching); Drain it to finish the recovered
// work. cfg.StateDir is overridden by stateDir.
func Recover(stateDir string, cfg Config) (*Fleet, *Recovery, error) {
	if stateDir == "" {
		return nil, nil, errors.New("fleet: Recover needs a state dir")
	}
	if _, err := os.Stat(stateDir); err != nil {
		return nil, nil, fmt.Errorf("fleet: state dir unreadable: %w", err)
	}
	cfg.StateDir = stateDir
	// Recovery consumes the old state: everything the journal holds is
	// re-admitted below, so the fresh epoch may replace the old files.
	cfg.Overwrite = true
	st, err := readState(stateDir)
	if err != nil {
		return nil, nil, err
	}

	f := newFleet(cfg)
	// Continue the crashed epoch's ID space: clients that submitted over
	// the network still hold pre-crash session IDs, so re-admitted (and
	// brand-new) sessions must never collide with them.
	f.nextID = st.maxID + 1
	if f.store != nil && !cfg.DisableStore {
		entries := make([]KeyedEntry, 0, len(st.entries))
		for _, k := range st.order {
			if e, ok := st.entries[k]; ok {
				entries = append(entries, KeyedEntry{Key: k, Entry: e})
			}
		}
		f.store.Restore(entries)
	}
	if st.sched != nil {
		f.sched.Import(*st.sched)
	}
	for _, be := range st.breakers {
		f.sched.ReplayBreaker(be.key, be.open)
	}
	st.rec.StoreEntries = len(st.entries)
	st.rec.Breakers = len(f.sched.Breakers())

	f.initPersist()
	st.rec.Epoch = 0
	if f.persist != nil {
		st.rec.Epoch = f.persist.epoch
	}

	// Re-admit BEFORE publishing the staged journal and starting workers:
	// the re-admissions' "queued" records (specs included) append to the
	// staged file, so when commitPersist renames it into place the new
	// journal already vouches for every pending session — and until that
	// rename, the old journal still does. No crash instant loses one.
	recordOf := make(map[int]*RecoveredSession, len(st.rec.Records))
	for i := range st.rec.Records {
		recordOf[st.rec.Records[i].OldID] = &st.rec.Records[i]
	}
	for _, ps := range st.pending {
		s := f.submitRecovered(ps.spec, ps.attempt)
		st.rec.Requeued = append(st.rec.Requeued, s)
		if r := recordOf[ps.oldID]; r != nil {
			r.Session = s
		}
		if ps.inFlight {
			st.rec.RequeuedInFlight++
		} else {
			st.rec.RequeuedWaiting++
		}
	}
	f.commitPersist()
	f.startWorkers()
	return f, st.rec, nil
}

// PendingSessions reports how many sessions in stateDir's journal never
// reached a terminal record — the work Recover would re-admit and a fresh
// epoch would discard. A missing, empty, or unreadable state dir reports
// zero.
func PendingSessions(stateDir string) int {
	st, err := readState(stateDir)
	if err != nil {
		return 0
	}
	return len(st.pending)
}

// readState salvages the snapshot and journal and distils the recovered
// state. Only unreadable directories are errors; damaged files salvage.
func readState(dir string) (*recoveredState, error) {
	st := &recoveredState{
		entries: make(map[Key]Entry),
		rec:     &Recovery{StateDir: dir},
	}

	// Snapshot: meta, scheduler state, store entries.
	snapEpoch, snapSeq := 0, -1
	snapRecs, sSal, err := wal.ReadAll(filepath.Join(dir, snapshotFile))
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	st.rec.SnapshotSalvage = sSal
	if len(snapRecs) > 0 {
		var meta walMeta
		if json.Unmarshal(snapRecs[0], &meta) == nil && meta.Wal == "snapshot" {
			snapEpoch, snapSeq = meta.Epoch, meta.Seq
			for _, rec := range snapRecs[1:] {
				var sc walSched
				if json.Unmarshal(rec, &sc) == nil && sc.Sched != nil {
					st.sched = sc.Sched
					continue
				}
				var ke KeyedEntry
				if json.Unmarshal(rec, &ke) == nil && ke.Key.Bench != "" {
					if _, seen := st.entries[ke.Key]; !seen {
						st.order = append(st.order, ke.Key)
					}
					st.entries[ke.Key] = ke.Entry
				}
			}
		}
	}
	// A partial snapshot (torn mid-write should be impossible under the
	// atomic rename, but disks lie) cannot vouch for its watermark:
	// replay the whole journal over whatever prefix survived.
	if !sSal.Clean() {
		snapSeq = -1
	}

	// Journal: epoch record then events.
	journalEpoch := 0
	var events []Event
	jRecs, jSal, err := wal.ReadAll(filepath.Join(dir, journalFile))
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	st.rec.JournalSalvage = jSal
	for i, rec := range jRecs {
		if i == 0 {
			var meta walMeta
			if json.Unmarshal(rec, &meta) == nil && meta.Wal == "journal" {
				journalEpoch = meta.Epoch
				continue
			}
		}
		var e Event
		if json.Unmarshal(rec, &e) == nil && e.Type != "" {
			events = append(events, e)
		}
	}
	st.rec.Events = len(events)
	st.prevEpoch = journalEpoch
	if snapEpoch > st.prevEpoch {
		st.prevEpoch = snapEpoch
	}
	st.rec.PrevEpoch = st.prevEpoch

	// The watermark only gates store/breaker roll-forward, and only when
	// the snapshot describes this journal's epoch. An older journal (a
	// previous recovery died between snapshot and journal reset) is fully
	// folded into the snapshot already — but its pending sessions were
	// never re-admitted anywhere, so session tracking still reads it.
	watermark := snapSeq
	switch {
	case snapEpoch == journalEpoch:
	case snapEpoch > journalEpoch:
		watermark = int(^uint(0) >> 1) // fold nothing: snapshot is ahead
	default:
		watermark = -1 // no (usable) snapshot for this epoch: replay all
	}

	type track struct {
		spec       *SpecRecord
		attempt    int
		inFlight   bool
		terminal   bool
		known      bool
		state      string
		errText    string
		warm       bool
		translated bool
		report     *rpgcore.Report
	}
	sessions := make(map[int]*track)
	var order []int
	for _, e := range events {
		if e.Session >= 0 {
			tr := sessions[e.Session]
			if tr == nil {
				tr = &track{}
				sessions[e.Session] = tr
				order = append(order, e.Session)
			}
			switch e.Type {
			case "queued":
				tr.spec, tr.known = e.Spec, true
				tr.attempt = e.Attempt
			case "admitted":
				tr.inFlight, tr.attempt = true, e.Attempt
			case "retry-scheduled":
				tr.inFlight, tr.terminal, tr.attempt = false, false, e.Attempt
			case "session-done", "session-degraded":
				tr.inFlight, tr.terminal = false, true
				tr.state = e.State
				tr.warm, tr.translated = e.Warm, e.Translated
				if e.Report != nil {
					tr.report = e.Report
				}
				if e.Attempt > tr.attempt {
					tr.attempt = e.Attempt
				}
			case "session-failed":
				// A SIGINT drain's cancellations never ran: they are
				// interrupted, not finished, and resume re-admits them.
				tr.inFlight = false
				tr.terminal = e.Err != ErrCanceled.Error()
				if tr.terminal {
					tr.state, tr.errText = e.State, e.Err
				}
			}
		}
		if e.Seq <= watermark {
			continue
		}
		st.rec.Replayed++
		switch e.Type {
		case "store-commit":
			if e.Entry != nil {
				k := Key{Bench: e.Bench, Input: e.Input, Machine: e.Machine}
				if _, seen := st.entries[k]; !seen {
					st.order = append(st.order, k)
				}
				st.entries[k] = *e.Entry
			}
		case "store-invalidate":
			delete(st.entries, Key{Bench: e.Bench, Input: e.Input, Machine: e.Machine})
		case "breaker-open":
			st.breakers = append(st.breakers, breakerEdge{admission.Key{Bench: e.Bench, Input: e.Input}, true})
		case "breaker-closed":
			st.breakers = append(st.breakers, breakerEdge{admission.Key{Bench: e.Bench, Input: e.Input}, false})
		default:
			st.rec.Replayed--
		}
	}

	sort.Ints(order)
	st.rec.Sessions = len(order)
	st.maxID = -1
	if n := len(order); n > 0 {
		st.maxID = order[n-1]
	}
	for _, id := range order {
		tr := sessions[id]
		if tr.terminal || !tr.known || tr.spec == nil {
			// Finished before the crash — or damage swallowed the queued
			// record, leaving nothing to re-admit.
			st.rec.Terminal++
			state := tr.state
			if state == "" {
				state = Failed.String()
			}
			st.rec.Records = append(st.rec.Records, RecoveredSession{
				OldID: id, State: state, Err: tr.errText,
				Warm: tr.warm, Translated: tr.translated,
				Attempt: tr.attempt, Report: tr.report,
			})
			continue
		}
		ps := pendingSession{oldID: id, spec: tr.spec.Spec(), attempt: tr.attempt, inFlight: tr.inFlight}
		if tr.inFlight {
			// The crash killed the attempt mid-run: the next attempt goes
			// cold with a derived seed, like any failed attempt.
			ps.attempt++
		}
		st.pending = append(st.pending, ps)
		st.rec.Records = append(st.rec.Records, RecoveredSession{
			OldID: id, State: Queued.String(), Attempt: ps.attempt,
		})
	}
	return st, nil
}
