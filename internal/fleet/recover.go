// Crash recovery: rebuild a fleet's durable state from its state dir.
// The invariants, in order of importance:
//
//  1. No committed profile-store entry is lost: entries live in the last
//     snapshot, and commits after its watermark roll forward from the
//     journal WAL (store mutations always precede their journal events,
//     so the watermark never overclaims; replaying a little extra is
//     idempotent).
//  2. No submitted session is lost: every session whose journal lacks a
//     terminal record is re-admitted. A session that was in flight when
//     the process died re-runs as the next attempt — cold, with a
//     derived seed — exactly the retry lane's discipline for a failed
//     attempt; a session still waiting (queue, retry lane, or cancelled
//     by a SIGINT drain) is re-admitted as the attempt it was waiting
//     for. Sessions with closure-carrying specs re-run under the fleet's
//     base config (closures cannot survive a process).
//  3. Scheduler posture survives: the virtual clock, policy counters,
//     and breaker states import from the snapshot, then breaker edges
//     journaled after the watermark roll forward coarsely.
//
// Recovery starts a fresh epoch in an order that keeps every crash
// instant recoverable: the rebuilt state is written as a new snapshot
// first (old journal untouched), the pending sessions are re-admitted so
// their "queued" records land in a staged journal, and only then is the
// staged journal atomically renamed over the old one. An interrupted
// recovery therefore leaves either the old journal (pending sessions
// still in it) or the new journal (pending sessions re-journaled) under
// the new snapshot — both pairings readState reads consistently.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rpg2/internal/admission"
	"rpg2/internal/drift"
	rpgcore "rpg2/internal/rpg2"
	"rpg2/internal/wal"
)

// Recovery reports what Recover rebuilt and salvaged.
type Recovery struct {
	// StateDir is the recovered state directory; Epoch is the fresh epoch
	// the recovered fleet writes, PrevEpoch the one it recovered.
	StateDir  string `json:"state_dir"`
	Epoch     int    `json:"epoch"`
	PrevEpoch int    `json:"prev_epoch"`
	// JournalSalvage and SnapshotSalvage report WAL damage (a torn tail
	// from the crash is normal and harmless).
	JournalSalvage  wal.Salvage `json:"journal_salvage"`
	SnapshotSalvage wal.Salvage `json:"snapshot_salvage"`
	// Events is how many journal events the crashed epoch left behind;
	// Replayed counts the store/breaker events rolled forward past the
	// snapshot watermark.
	Events   int `json:"events"`
	Replayed int `json:"replayed"`
	// StoreEntries is how many committed profile entries survived.
	StoreEntries int `json:"store_entries"`
	// SnapshotShards is the shard layout the recovered snapshot was
	// written under (1 = the legacy single snapshot file, 0 = no snapshot
	// found); StoreShards is the layout the recovered fleet runs.
	// Resharded reports a mismatch: the entries were re-hashed into the
	// configured layout on Import — recovery never errors on a
	// shard-count change.
	SnapshotShards int  `json:"snapshot_shards,omitempty"`
	StoreShards    int  `json:"store_shards,omitempty"`
	Resharded      bool `json:"resharded,omitempty"`
	// Breakers is how many breaker postures were restored.
	Breakers int `json:"breakers"`
	// Sessions is the distinct session count in the crashed journal;
	// Terminal of those had already finished.
	Sessions int `json:"sessions"`
	Terminal int `json:"terminal"`
	// Requeued holds the re-admitted sessions' new handles, in the old
	// admission order; RequeuedWaiting of them were still waiting at the
	// crash, RequeuedInFlight were mid-run (and re-run cold).
	// RequeuedRetuning counts the re-admissions that were in the re-tune
	// lane — their consumed grants, warm seed distance, and detector
	// posture are restored, so the lane survives the crash intact.
	Requeued         []*Session `json:"-"`
	RequeuedWaiting  int        `json:"requeued_waiting"`
	RequeuedInFlight int        `json:"requeued_in_flight"`
	RequeuedRetuning int        `json:"requeued_retuning,omitempty"`
	// Records distils every pre-crash session for callers that serve
	// session lookups across a restart (the daemon): terminal sessions
	// keep their journaled outcome, re-admitted ones carry their new live
	// handle. Ordered by old session ID.
	Records []RecoveredSession `json:"-"`
}

// RecoveredSession is one pre-crash session's distilled history. For a
// session that reached a terminal record before the crash, State/Err/
// Report reproduce its journaled outcome and Session is nil; for a
// re-admitted session, Session is the live handle the recovered fleet is
// running it under (its ID differs from OldID — recovery continues the ID
// space, it does not reuse it).
type RecoveredSession struct {
	OldID      int
	State      string
	Err        string
	Warm       bool
	Translated bool
	Attempt    int
	Retunes    int
	Retuning   bool
	Report     *rpgcore.Report
	Session    *Session
}

// Summary renders the one-line operator account rpg2-fleet prints.
func (r *Recovery) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recovered epoch %d -> %d: %d sessions submitted pre-crash, %d terminal, %d requeued (%d waiting, %d in-flight), %d store entries, %d breakers",
		r.PrevEpoch, r.Epoch, r.Sessions, r.Terminal, len(r.Requeued),
		r.RequeuedWaiting, r.RequeuedInFlight, r.StoreEntries, r.Breakers)
	if r.Resharded {
		fmt.Fprintf(&b, "; re-sharded %d -> %d shard layout", r.SnapshotShards, r.StoreShards)
	}
	if r.RequeuedRetuning > 0 {
		fmt.Fprintf(&b, "; %d in the re-tune lane", r.RequeuedRetuning)
	}
	if !r.JournalSalvage.Clean() {
		fmt.Fprintf(&b, "; journal salvage: %s", r.JournalSalvage)
	}
	if !r.SnapshotSalvage.Clean() {
		fmt.Fprintf(&b, "; snapshot salvage: %s", r.SnapshotSalvage)
	}
	return b.String()
}

// breakerEdge is a journaled breaker transition rolled forward past the
// snapshot watermark.
type breakerEdge struct {
	key  admission.Key
	open bool
}

// pendingSession is one session owed a re-admission.
type pendingSession struct {
	oldID   int
	spec    SessionSpec
	attempt int
	// inFlight: the session was mid-run at the crash; its attempt is
	// already bumped and the re-run goes cold with a derived seed.
	inFlight bool
	// Re-tune lane posture: grants already consumed, re-tunes completed,
	// whether a re-tune admission was pending or mid-dispatch (the grant
	// stays consumed; the attempt is NOT bumped — the lane, not the retry
	// lane, owns the re-dispatch), the warm seed distance, and the
	// detector posture to resume.
	granted        int
	retunes        int
	retuning       bool
	retuneDistance int
	det            *drift.State
}

// recoveredState is everything readState distils from the state dir.
type recoveredState struct {
	prevEpoch  int
	snapShards int // shard layout of the recovered snapshot (0 = none)
	sched      *admission.PersistState
	entries    map[Key]Entry
	order      []Key // commit order for deterministic Import
	breakers   []breakerEdge
	pending    []pendingSession
	maxID      int // highest pre-crash session ID (-1 when none)
	rec        *Recovery
}

// Recover rebuilds a fleet from stateDir: profile store, scheduler
// posture, and the sessions that were queued or in flight when the
// previous process died. The returned fleet is live (workers running,
// re-admitted sessions dispatching); Drain it to finish the recovered
// work. cfg.StateDir is overridden by stateDir.
func Recover(stateDir string, cfg Config) (*Fleet, *Recovery, error) {
	if stateDir == "" {
		return nil, nil, errors.New("fleet: Recover needs a state dir")
	}
	if _, err := os.Stat(stateDir); err != nil {
		return nil, nil, fmt.Errorf("fleet: state dir unreadable: %w", err)
	}
	cfg.StateDir = stateDir
	// Recovery consumes the old state: everything the journal holds is
	// re-admitted below, so the fresh epoch may replace the old files.
	cfg.Overwrite = true
	st, err := readState(stateDir)
	if err != nil {
		return nil, nil, err
	}

	f := newFleet(cfg)
	// Continue the crashed epoch's ID space: clients that submitted over
	// the network still hold pre-crash session IDs, so re-admitted (and
	// brand-new) sessions must never collide with them.
	f.nextID = st.maxID + 1
	// A remote store is never re-imported: the daemon owns the live state
	// (and its generations), and the WAL recorded an empty store anyway.
	if f.store != nil && !cfg.DisableStore && cfg.StoreAddr == "" {
		entries := make([]KeyedEntry, 0, len(st.entries))
		for _, k := range st.order {
			if e, ok := st.entries[k]; ok {
				entries = append(entries, KeyedEntry{Key: k, Entry: e})
			}
		}
		// Import hashes each entry into the configured shard layout: a
		// snapshot written under a different shard count (or the legacy
		// single file) re-shards transparently here.
		f.store.Import(entries)
		st.rec.StoreShards = f.store.Shards()
		st.rec.Resharded = st.snapShards > 0 && st.snapShards != st.rec.StoreShards
	}
	if st.sched != nil {
		f.sched.Import(*st.sched)
	}
	for _, be := range st.breakers {
		f.sched.ReplayBreaker(be.key, be.open)
	}
	st.rec.StoreEntries = len(st.entries)
	st.rec.Breakers = len(f.sched.Breakers())

	f.initPersist()
	st.rec.Epoch = 0
	if f.persist != nil {
		st.rec.Epoch = f.persist.epoch
	}

	// Re-admit BEFORE publishing the staged journal and starting workers:
	// the re-admissions' "queued" records (specs included) append to the
	// staged file, so when commitPersist renames it into place the new
	// journal already vouches for every pending session — and until that
	// rename, the old journal still does. No crash instant loses one.
	recordOf := make(map[int]*RecoveredSession, len(st.rec.Records))
	for i := range st.rec.Records {
		recordOf[st.rec.Records[i].OldID] = &st.rec.Records[i]
	}
	for _, ps := range st.pending {
		s := f.submitRecovered(ps.spec, ps.attempt)
		if ps.granted > 0 || ps.retunes > 0 || ps.retuning || ps.det != nil {
			// Restore the re-tune lane posture before workers can dispatch
			// the session: consumed grants, completed count, warm seed, and
			// the detector to resume once the re-run re-activates.
			f.mu.Lock()
			s.item.Retune = ps.granted
			f.mu.Unlock()
			s.mu.Lock()
			s.retunes = ps.retunes
			s.retuning = ps.retuning
			s.retuneDistance = ps.retuneDistance
			s.recoveredDet = ps.det
			s.mu.Unlock()
			if ps.retuning {
				// Restate the lane in the fresh epoch's journal so a second
				// crash still sees it. A restated retune-scheduled has no
				// paired drift-detected: the detection happened in a prior
				// epoch and is not re-claimed.
				f.journal.add(Event{
					Session: s.ID, Type: "retune-scheduled",
					Kind:  s.Spec.Kind.String(),
					Bench: s.Spec.Bench, Input: s.Spec.Input,
					Attempt: ps.attempt, Retune: ps.granted,
					Distance: ps.retuneDistance,
				})
				st.rec.RequeuedRetuning++
			}
		}
		st.rec.Requeued = append(st.rec.Requeued, s)
		if r := recordOf[ps.oldID]; r != nil {
			r.Session = s
		}
		if ps.inFlight {
			st.rec.RequeuedInFlight++
		} else {
			st.rec.RequeuedWaiting++
		}
	}
	f.commitPersist()
	f.startWorkers()
	return f, st.rec, nil
}

// PendingSessions reports how many sessions in stateDir's journal never
// reached a terminal record — the work Recover would re-admit and a fresh
// epoch would discard. A missing, empty, or unreadable state dir reports
// zero.
func PendingSessions(stateDir string) int {
	st, err := readState(stateDir)
	if err != nil {
		return 0
	}
	return len(st.pending)
}

// readState salvages the snapshot and journal and distils the recovered
// state. Only unreadable directories are errors; damaged files salvage.
func readState(dir string) (*recoveredState, error) {
	st := &recoveredState{
		entries: make(map[Key]Entry),
		rec:     &Recovery{StateDir: dir},
	}

	// Snapshot: the legacy single file and the sharded manifest+set are
	// both read; after a shard-count change across restarts, stale files
	// from the other layout may linger, and the higher epoch wins.
	leg, err := readLegacySnap(dir)
	if err != nil {
		return nil, err
	}
	man, err := readShardedSnap(dir)
	if err != nil {
		return nil, err
	}
	snap := leg
	if man.ok && (!leg.ok || man.epoch > leg.epoch) {
		snap = man
	}
	st.rec.SnapshotSalvage = snap.sal
	if snap.ok {
		st.snapShards = snap.shards
		st.rec.SnapshotShards = snap.shards
	}
	snapEpoch, snapSeq := snap.epoch, snap.seq
	st.sched = snap.sched
	for _, ke := range snap.entries {
		if _, seen := st.entries[ke.Key]; !seen {
			st.order = append(st.order, ke.Key)
		}
		st.entries[ke.Key] = ke.Entry
	}
	// A partial snapshot (torn mid-write should be impossible under the
	// atomic rename, but disks lie — and a sharded set can lose a member)
	// cannot vouch for its watermark: replay the whole journal over
	// whatever survived.
	if snap.dirty {
		snapSeq = -1
	}

	// Journal: epoch record then events.
	journalEpoch := 0
	var events []Event
	jRecs, jSal, err := wal.ReadAll(filepath.Join(dir, journalFile))
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	st.rec.JournalSalvage = jSal
	for i, rec := range jRecs {
		if i == 0 {
			var meta walMeta
			if json.Unmarshal(rec, &meta) == nil && meta.Wal == "journal" {
				journalEpoch = meta.Epoch
				continue
			}
		}
		var e Event
		if json.Unmarshal(rec, &e) == nil && e.Type != "" {
			events = append(events, e)
		}
	}
	st.rec.Events = len(events)
	st.prevEpoch = journalEpoch
	if snapEpoch > st.prevEpoch {
		st.prevEpoch = snapEpoch
	}
	st.rec.PrevEpoch = st.prevEpoch

	// The watermark only gates store/breaker roll-forward, and only when
	// the snapshot describes this journal's epoch. An older journal (a
	// previous recovery died between snapshot and journal reset) is fully
	// folded into the snapshot already — but its pending sessions were
	// never re-admitted anywhere, so session tracking still reads it.
	watermark := snapSeq
	switch {
	case snapEpoch == journalEpoch:
	case snapEpoch > journalEpoch:
		watermark = int(^uint(0) >> 1) // fold nothing: snapshot is ahead
	default:
		watermark = -1 // no (usable) snapshot for this epoch: replay all
	}

	type track struct {
		spec       *SpecRecord
		attempt    int
		inFlight   bool
		terminal   bool
		known      bool
		state      string
		errText    string
		warm       bool
		translated bool
		report     *rpgcore.Report
		// Re-tune lane posture, from the journal's drift events plus the
		// snapshot's drift records (the detector only lives in the latter).
		granted        int
		retunes        int
		retuning       bool
		retuneDistance int
		det            *drift.State
	}
	sessions := make(map[int]*track)
	var order []int
	for _, e := range events {
		if e.Session >= 0 {
			tr := sessions[e.Session]
			if tr == nil {
				tr = &track{}
				sessions[e.Session] = tr
				order = append(order, e.Session)
			}
			switch e.Type {
			case "queued":
				tr.spec, tr.known = e.Spec, true
				tr.attempt = e.Attempt
			case "admitted":
				tr.inFlight, tr.attempt = true, e.Attempt
			case "retry-scheduled":
				tr.inFlight, tr.terminal, tr.attempt = false, false, e.Attempt
			case "retune-scheduled":
				// The re-tune lane re-admitted a watched session (or a
				// previous recovery restated the lane). Never terminal, and
				// never the retry lane: the attempt is untouched.
				tr.inFlight, tr.terminal = false, false
				tr.retuning = true
				if e.Retune > tr.granted {
					tr.granted = e.Retune
				}
				tr.retuneDistance = e.Distance
			case "retune-complete":
				tr.retuning = false
				if e.Retune > tr.retunes {
					tr.retunes = e.Retune
				}
			case "session-done", "session-degraded":
				tr.inFlight, tr.terminal = false, true
				tr.state = e.State
				tr.warm, tr.translated = e.Warm, e.Translated
				if e.Report != nil {
					tr.report = e.Report
				}
				if e.Attempt > tr.attempt {
					tr.attempt = e.Attempt
				}
			case "session-failed":
				// A SIGINT drain's cancellations never ran: they are
				// interrupted, not finished, and resume re-admits them.
				tr.inFlight = false
				tr.terminal = e.Err != ErrCanceled.Error()
				if tr.terminal {
					tr.state, tr.errText = e.State, e.Err
				}
			}
		}
		if e.Seq <= watermark {
			continue
		}
		st.rec.Replayed++
		switch e.Type {
		case "store-commit":
			if e.Entry != nil {
				k := Key{Bench: e.Bench, Input: e.Input, Machine: e.Machine}
				if _, seen := st.entries[k]; !seen {
					st.order = append(st.order, k)
				}
				st.entries[k] = *e.Entry
			}
		case "store-invalidate":
			delete(st.entries, Key{Bench: e.Bench, Input: e.Input, Machine: e.Machine})
		case "breaker-open":
			st.breakers = append(st.breakers, breakerEdge{admission.Key{Bench: e.Bench, Input: e.Input}, true})
		case "breaker-closed":
			st.breakers = append(st.breakers, breakerEdge{admission.Key{Bench: e.Bench, Input: e.Input}, false})
		default:
			st.rec.Replayed--
		}
	}

	// Fold the snapshot's watchdog records into the tracks. For grants and
	// completed re-tunes the journal and snapshot converge on max; the
	// detector posture only exists here. The journal is authoritative for
	// whether a re-tune admission is pending — except when the snapshot is
	// from a newer epoch than the journal, in which case it saw further.
	snapAhead := snapEpoch > journalEpoch
	for _, d := range snap.drift {
		tr := sessions[d.Session]
		if tr == nil {
			continue // no journal history to attach it to
		}
		if d.Granted > tr.granted {
			tr.granted = d.Granted
		}
		if d.Retunes > tr.retunes {
			tr.retunes = d.Retunes
		}
		if snapAhead {
			tr.retuning = d.Retuning
		}
		if tr.retuneDistance == 0 {
			tr.retuneDistance = d.Distance
		}
		det := d.Detector
		tr.det = &det
	}

	sort.Ints(order)
	st.rec.Sessions = len(order)
	st.maxID = -1
	if n := len(order); n > 0 {
		st.maxID = order[n-1]
	}
	for _, id := range order {
		tr := sessions[id]
		if tr.terminal || !tr.known || tr.spec == nil {
			// Finished before the crash — or damage swallowed the queued
			// record, leaving nothing to re-admit.
			st.rec.Terminal++
			state := tr.state
			if state == "" {
				state = Failed.String()
			}
			st.rec.Records = append(st.rec.Records, RecoveredSession{
				OldID: id, State: state, Err: tr.errText,
				Warm: tr.warm, Translated: tr.translated,
				Attempt: tr.attempt, Retunes: tr.retunes, Report: tr.report,
			})
			continue
		}
		ps := pendingSession{
			oldID: id, spec: tr.spec.Spec(), attempt: tr.attempt, inFlight: tr.inFlight,
			granted: tr.granted, retunes: tr.retunes, retuning: tr.retuning,
			retuneDistance: tr.retuneDistance, det: tr.det,
		}
		if tr.inFlight && !tr.retuning {
			// The crash killed the attempt mid-run: the next attempt goes
			// cold with a derived seed, like any failed attempt. A crash
			// mid-re-tune-dispatch is the re-tune lane's to re-run instead —
			// the grant stays consumed and the retry budget stays whole.
			ps.attempt++
		}
		st.pending = append(st.pending, ps)
		st.rec.Records = append(st.rec.Records, RecoveredSession{
			OldID: id, State: Queued.String(), Attempt: ps.attempt,
			Retunes: ps.retunes, Retuning: ps.retuning,
		})
	}
	return st, nil
}

// snapState is one decoded snapshot-layout candidate: the legacy single
// file or the manifest-sealed shard set. dirty means the watermark cannot
// be trusted (salvage damage, a missing or epoch-stale shard file) and the
// whole journal must replay over whatever entries survived.
type snapState struct {
	ok      bool
	epoch   int
	seq     int
	shards  int
	sched   *admission.PersistState
	drift   []DriftRecord
	entries []KeyedEntry
	sal     wal.Salvage
	dirty   bool
}

// mergeSalvage folds one member file's salvage into the set's aggregate
// (records and dropped counts summed, first damage reason kept with the
// file named).
func (ss *snapState) mergeSalvage(name string, sal wal.Salvage) {
	ss.sal.Records += sal.Records
	ss.sal.DroppedBytes += sal.DroppedBytes
	ss.sal.DroppedRecords += sal.DroppedRecords
	if !sal.Clean() {
		ss.dirty = true
		if ss.sal.Reason == "" {
			ss.sal.Reason = name + ": " + sal.Reason
		}
	}
}

// damage marks the set untrustworthy for reasons other than byte salvage
// (a missing shard file, a stale-epoch member).
func (ss *snapState) damage(reason string) {
	ss.dirty = true
	if ss.sal.Reason == "" {
		ss.sal.Reason = reason
	}
}

// readLegacySnap decodes the single-file snapshot layout: meta, scheduler
// state, store entries.
func readLegacySnap(dir string) (snapState, error) {
	ss := snapState{seq: -1, shards: 1}
	recs, sal, err := wal.ReadAll(filepath.Join(dir, snapshotFile))
	if err != nil && !os.IsNotExist(err) {
		return ss, err
	}
	ss.sal = sal
	ss.dirty = !sal.Clean()
	if len(recs) == 0 {
		return ss, nil
	}
	var meta walMeta
	if json.Unmarshal(recs[0], &meta) != nil || meta.Wal != "snapshot" {
		return ss, nil
	}
	ss.ok, ss.epoch, ss.seq = true, meta.Epoch, meta.Seq
	for _, rec := range recs[1:] {
		var sc walSched
		if json.Unmarshal(rec, &sc) == nil && sc.Sched != nil {
			ss.sched = sc.Sched
			continue
		}
		var wd walDrift
		if json.Unmarshal(rec, &wd) == nil && len(wd.Drift) > 0 {
			ss.drift = wd.Drift
			continue
		}
		var ke KeyedEntry
		if json.Unmarshal(rec, &ke) == nil && ke.Key.Bench != "" {
			ss.entries = append(ss.entries, ke)
		}
	}
	return ss, nil
}

// readShardedSnap decodes the sharded snapshot layout. The manifest is
// the source of truth for epoch, watermark, shard count, and scheduler
// state; every shard-*.wal present is then read, in shard-index order:
//
//   - an expected member (index < manifest shard count) at the manifest's
//     epoch or newer contributes its entries; a *newer* epoch is an epoch
//     start that died before its own manifest, and replaying the old
//     journal over its (already fully rolled-forward) entries is
//     convergent, so it is not damage;
//   - an expected member that is missing or stamped *older* than the
//     manifest cannot vouch for the manifest's watermark — its surviving
//     entries are kept but the set goes dirty (full journal replay);
//   - an extra member (index >= shard count) is read only when its epoch
//     is newer than the manifest: an interrupted re-layout to a wider
//     shard count parked entries there that no current-layout file holds.
//     Older extras are stale garbage and are ignored.
func readShardedSnap(dir string) (snapState, error) {
	ss := snapState{seq: -1}
	recs, sal, err := wal.ReadAll(filepath.Join(dir, manifestFile))
	if err != nil && !os.IsNotExist(err) {
		return ss, err
	}
	ss.sal = sal
	ss.dirty = !sal.Clean()
	if len(recs) == 0 {
		return ss, nil
	}
	var meta walMeta
	if json.Unmarshal(recs[0], &meta) != nil || meta.Wal != "manifest" || meta.Shards < 1 {
		return ss, nil
	}
	ss.ok, ss.epoch, ss.seq, ss.shards = true, meta.Epoch, meta.Seq, meta.Shards
	for _, rec := range recs[1:] {
		var sc walSched
		if json.Unmarshal(rec, &sc) == nil && sc.Sched != nil {
			ss.sched = sc.Sched
			continue
		}
		var wd walDrift
		if json.Unmarshal(rec, &wd) == nil && len(wd.Drift) > 0 {
			ss.drift = wd.Drift
		}
	}
	names, _ := filepath.Glob(filepath.Join(dir, "shard-*.wal"))
	indexes := make([]int, 0, len(names))
	for _, name := range names {
		var i int
		if _, err := fmt.Sscanf(filepath.Base(name), "shard-%d.wal", &i); err == nil && i >= 0 {
			indexes = append(indexes, i)
		}
	}
	sort.Ints(indexes)
	seen := make(map[int]bool, len(indexes))
	for _, i := range indexes {
		if seen[i] {
			continue
		}
		seen[i] = true
		name := shardFileName(i)
		srecs, sSal, err := wal.ReadAll(filepath.Join(dir, name))
		if err != nil {
			if os.IsNotExist(err) {
				continue // raced cleanup; the expected-member check below catches real gaps
			}
			return ss, err
		}
		ss.mergeSalvage(name, sSal)
		var smeta walMeta
		if len(srecs) == 0 || json.Unmarshal(srecs[0], &smeta) != nil || smeta.Wal != "shard" {
			if i < ss.shards {
				ss.damage(name + ": unreadable shard meta")
			}
			continue
		}
		switch {
		case i < ss.shards && smeta.Epoch < ss.epoch:
			ss.damage(fmt.Sprintf("%s: epoch %d behind manifest epoch %d", name, smeta.Epoch, ss.epoch))
		case i >= ss.shards && smeta.Epoch <= ss.epoch:
			continue // stale leftover from an older, wider layout
		}
		if i < ss.shards && smeta.Epoch == ss.epoch && smeta.Seq < ss.seq {
			ss.seq = smeta.Seq // defensive: never claim past a member's own watermark
		}
		for _, rec := range srecs[1:] {
			var ke KeyedEntry
			if json.Unmarshal(rec, &ke) == nil && ke.Key.Bench != "" {
				ss.entries = append(ss.entries, ke)
			}
		}
	}
	for i := 0; i < ss.shards; i++ {
		if !seen[i] {
			ss.damage(shardFileName(i) + " missing")
		}
	}
	return ss, nil
}
