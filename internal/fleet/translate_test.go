package fleet

import (
	"encoding/json"
	"testing"

	"rpg2/internal/faults"
	"rpg2/internal/machine"
)

// TestTranslateDistanceScaling pins the latency-ratio arithmetic: the
// distance grows with the target's effective memory latency (CascadeLake
// 228 cycles, Haswell 259), rounds to the nearest integer, and clamps to
// the search range.
func TestTranslateDistanceScaling(t *testing.T) {
	cl, hw := machine.CascadeLake(), machine.Haswell()
	cases := []struct {
		src, dst machine.Machine
		d, max   int
		want     int
	}{
		{cl, hw, 40, 200, 45}, // 40·259/228 = 45.4
		{hw, cl, 40, 200, 35}, // 40·228/259 = 35.2
		{cl, cl, 40, 200, 40}, // same machine: identity
		{cl, hw, 190, 200, 200},
		{hw, cl, 1, 200, 1}, // 0.88 rounds up to the floor
		{cl, hw, 0, 200, 1}, // non-positive input: clamp only
	}
	for _, c := range cases {
		if got := TranslateDistance(c.src, c.dst, c.d, c.max); got != c.want {
			t.Errorf("TranslateDistance(%s->%s, %d) = %d, want %d",
				c.src.Name, c.dst.Name, c.d, got, c.want)
		}
	}
}

// TestStoreLookupTranslated covers the sibling scan: deterministic
// machine-name order, stale eviction, reuse-budget consumption, and the
// frozen fast path.
func TestStoreLookupTranslated(t *testing.T) {
	s := NewStore(StoreConfig{MaxReuse: 2})
	k := storeKey()
	if _, _, _, ok := s.LookupTranslated(k); ok {
		t.Fatal("translated lookup on empty store hit")
	}
	// An own-machine entry is never a sibling.
	s.Commit(k, Entry{Distance: 99})
	if _, _, _, ok := s.LookupTranslated(k); ok {
		t.Fatal("own-machine entry served as a sibling")
	}
	sib := func(m string) Key { return Key{Bench: k.Bench, Input: k.Input, Machine: m} }
	s.Commit(sib("haswell"), Entry{Distance: 40})
	s.Commit(sib("aardvark"), Entry{Distance: 7})
	// Two siblings: the first in machine-name order wins, deterministically.
	for i := 0; i < 2; i++ {
		e, src, _, ok := s.LookupTranslated(k)
		if !ok || src.Machine != "aardvark" || e.Distance != 7 {
			t.Fatalf("lookup %d = %+v from %+v, %v", i, e, src, ok)
		}
	}
	// Both serves consumed aardvark's budget; the third serve finds it
	// stale, evicts it, and falls through to the next sibling.
	e, src, _, ok := s.LookupTranslated(k)
	if !ok || src.Machine != "haswell" || e.Distance != 40 {
		t.Fatalf("post-stale lookup = %+v from %+v, %v", e, src, ok)
	}
	c := s.Counters()
	if c.Translations != 3 || c.Stale != 1 || c.Hits != 0 {
		t.Fatalf("counters = %+v", c)
	}
	// Frozen stores serve without consuming budget: haswell has one charge
	// left, yet many frozen lookups keep hitting it.
	s.Freeze()
	for i := 0; i < 5; i++ {
		if _, src, _, ok := s.LookupTranslated(k); !ok || src.Machine != "haswell" {
			t.Fatalf("frozen lookup %d missed", i)
		}
	}
}

// TestStoreRefund covers the reuse-budget refund: generation-guarded, floored
// at zero, and actually restoring a charge a failed warm start consumed.
func TestStoreRefund(t *testing.T) {
	s := NewStore(StoreConfig{MaxReuse: 1})
	k := storeKey()
	s.Commit(k, Entry{Distance: 10})
	_, gen, ok := s.Lookup(k)
	if !ok {
		t.Fatal("lookup missed")
	}
	if s.Refund(k, gen+1) {
		t.Fatal("refund against a wrong generation accepted")
	}
	if !s.Refund(k, gen) {
		t.Fatal("refund refused")
	}
	if s.Refund(k, gen) {
		t.Fatal("double refund accepted with no charge outstanding")
	}
	// The refund restored the single-reuse entry's budget: without it this
	// lookup would find the entry stale and evict it.
	if e, _, ok := s.Lookup(k); !ok || e.Distance != 10 {
		t.Fatalf("entry not restored after refund: %+v, %v", e, ok)
	}
	if c := s.Counters(); c.Refunds != 1 || c.Stale != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestTranslatedSessionEndToEnd is the translation tier's integration test:
// a profile tuned natively on Haswell seeds a CascadeLake session through a
// shared store, with the journal, metrics, and store accounting all
// recording the cross-machine serve.
func TestTranslatedSessionEndToEnd(t *testing.T) {
	st := NewStore(StoreConfig{})
	cl, hw := machine.CascadeLake(), machine.Haswell()

	hf := New(Config{Machine: hw, Workers: 1, Store: st})
	native, err := hf.Submit(SessionSpec{Bench: "is", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hf.Drain()
	hf.Close()
	if native.State() != Done {
		t.Fatalf("native haswell session = %v (err %v)", native.State(), native.Err())
	}
	src, _, ok := st.Lookup(Key{Bench: "is", Machine: hw.Name})
	if !ok {
		t.Fatal("native session committed no entry")
	}

	f := New(Config{Machine: cl, Workers: 1, Store: st, Translate: true})
	defer f.Close()
	s, err := f.Submit(SessionSpec{Bench: "is", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if s.State() != Done {
		t.Fatalf("translated session = %v (err %v)", s.State(), s.Err())
	}
	if !s.Translated() || s.Warm() {
		t.Fatalf("seeding tier: translated=%v warm=%v", s.Translated(), s.Warm())
	}

	wantSeed := TranslateDistance(hw, cl, src.Distance, 200)
	var ev *Event
	for _, e := range f.Journal().SessionEvents(s.ID) {
		if e.Type == "store-translated" {
			cp := e
			ev = &cp
		}
	}
	if ev == nil {
		t.Fatal("no store-translated event journaled")
	}
	if !ev.Translated || ev.Source != hw.Name || ev.Distance != wantSeed {
		t.Fatalf("store-translated event = %+v, want source %q distance %d",
			ev, hw.Name, wantSeed)
	}

	snap := f.Snapshot()
	if snap.TranslatedSessions != 1 {
		t.Fatalf("snapshot translated sessions = %d", snap.TranslatedSessions)
	}
	if snap.Store.Translations != 1 {
		t.Fatalf("store translations = %d", snap.Store.Translations)
	}
	// A tuned translated session commits a native entry for its own
	// machine, so the next CascadeLake session warm-starts locally.
	if _, _, ok := st.Lookup(Key{Bench: "is", Machine: cl.Name}); !ok {
		t.Fatal("translated session committed no native entry")
	}
}

// TestRefundOnBuildFailure is the satellite bugfix's regression test: a
// warm-seeded session that dies before its search (here: the build step)
// must return the reuse charge, or transient failures would stale a good
// profile.
func TestRefundOnBuildFailure(t *testing.T) {
	st := NewStore(StoreConfig{MaxReuse: 1})
	k := Key{Bench: "nosuch", Machine: machine.CascadeLake().Name}
	st.Commit(k, Entry{Func: "f", Candidates: []int{1}, Distance: 10, TunedRate: 1})

	f := New(Config{Machine: machine.CascadeLake(), Workers: 1, Store: st})
	defer f.Close()
	s, err := f.Submit(SessionSpec{Bench: "nosuch", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if s.State() != Failed {
		t.Fatalf("session on an unbuildable bench = %v", s.State())
	}
	if c := st.Counters(); c.Refunds != 1 {
		t.Fatalf("counters = %+v, want one refund", c)
	}
	// The refund restored the single reuse charge the doomed warm start
	// consumed; without it this lookup would evict the entry as stale.
	if _, _, ok := st.Lookup(k); !ok {
		t.Fatal("reuse budget not refunded: entry went stale")
	}
}

// TestStoreDispositionInvariant: every optimize attempt journals exactly one
// store disposition — hit, miss, translated, or bypass — even through
// retries, fault injection, per-spec cold runs, and a disabled store.
func TestStoreDispositionInvariant(t *testing.T) {
	f := New(Config{
		Machine: machine.CascadeLake(), Workers: 4,
		Faults:     faults.New(faults.Config{Seed: 5, Rate: 0.2}),
		MaxRetries: 2,
	})
	defer f.Close()
	benches := []string{"is", "cg", "randacc"}
	specs := make([]SessionSpec, 24)
	for i := range specs {
		specs[i] = SessionSpec{Bench: benches[i%len(benches)], Seed: int64(i + 1), Cold: i%5 == 0}
	}
	if _, err := f.Run(specs); err != nil {
		t.Fatal(err)
	}
	checkDispositions(t, f, map[string]bool{"cold": true, "retry": true})

	// A store-disabled fleet bypasses with its own reason.
	df := New(Config{Machine: machine.CascadeLake(), Workers: 2, DisableStore: true})
	defer df.Close()
	if _, err := df.Run([]SessionSpec{{Bench: "is", Seed: 1}, {Bench: "cg", Seed: 2}}); err != nil {
		t.Fatal(err)
	}
	checkDispositions(t, df, map[string]bool{"disabled": true})
	if snap := df.Snapshot(); snap.StoreBypasses["disabled"] != 2 {
		t.Fatalf("snapshot bypasses = %+v", snap.StoreBypasses)
	}
}

// checkDispositions asserts the per-attempt invariant on every session of a
// fleet: one admission, one store disposition, in that order, per attempt.
func checkDispositions(t *testing.T, f *Fleet, reasons map[string]bool) {
	t.Helper()
	disposition := map[string]bool{
		"store-hit": true, "store-miss": true,
		"store-translated": true, "store-bypass": true,
	}
	for _, s := range f.Sessions() {
		admitted, dispositions := 0, 0
		for _, e := range f.Journal().SessionEvents(s.ID) {
			switch {
			case e.Type == "admitted":
				admitted++
				if dispositions != admitted-1 {
					t.Fatalf("session %d re-admitted before attempt %d's disposition", s.ID, admitted-1)
				}
			case disposition[e.Type]:
				dispositions++
				if e.Type == "store-bypass" && !reasons[e.Reason] {
					t.Fatalf("session %d bypass reason %q not in %v", s.ID, e.Reason, reasons)
				}
			}
		}
		if admitted == 0 || dispositions != admitted {
			t.Fatalf("session %d: %d admissions but %d store dispositions",
				s.ID, admitted, dispositions)
		}
	}
}

// TestTranslateOffJournalIdentical: with Translate unset the journal is
// byte-identical run to run, and setting the flag on a fleet that never
// finds a sibling profile perturbs nothing — the default-off guarantee the
// experiments harness relies on.
func TestTranslateOffJournalIdentical(t *testing.T) {
	journal := func(translate bool) string {
		f := New(Config{Machine: machine.CascadeLake(), Workers: 1, Translate: translate})
		defer f.Close()
		_, err := f.Run([]SessionSpec{
			{Bench: "is", Seed: 1}, {Bench: "cg", Seed: 2}, {Bench: "is", Seed: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		evs := f.Journal().Events()
		var out []byte
		for i := range evs {
			evs[i].Wall = 0 // wall-clock stamps are the only nondeterminism
			b, err := json.Marshal(evs[i])
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b...)
			out = append(out, '\n')
		}
		return string(out)
	}
	off := journal(false)
	if again := journal(false); again != off {
		t.Errorf("Translate-off journal not reproducible:\n--- first ---\n%s\n--- second ---\n%s", off, again)
	}
	if on := journal(true); on != off {
		t.Errorf("Translate flag with no siblings changed the journal:\n--- off ---\n%s\n--- on ---\n%s", off, on)
	}
}
