package fleet

import (
	"testing"

	"rpg2/internal/baselines"
	"rpg2/internal/machine"
	rpgcore "rpg2/internal/rpg2"
	"rpg2/internal/workloads"
)

// The profile store must key on the session's *effective* machine: a
// profile committed on Cascade Lake must never warm-start the same bench
// on Haswell (regression test for keying on the fleet-wide machine).
func TestStoreKeyUsesEffectiveMachine(t *testing.T) {
	f := New(Config{Machine: machine.CascadeLake(), Workers: 1,
		Builds: workloads.NewBuildCache()})
	defer f.Close()

	cold, err := f.Submit(SessionSpec{Bench: "is", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if cold.Report() == nil || cold.Report().Outcome != rpgcore.Tuned {
		t.Fatalf("cold session did not tune (state %v, err %v)", cold.State(), cold.Err())
	}
	if f.Store().Len() != 1 {
		t.Fatalf("store has %d entries after cold commit", f.Store().Len())
	}

	hw := machine.Haswell()
	s, err := f.Submit(SessionSpec{Bench: "is", Seed: 2, Machine: &hw})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if s.State() == Failed {
		t.Fatalf("haswell session failed: %v", s.Err())
	}
	if s.Warm() {
		t.Fatal("haswell session warm-started from a cascadelake profile")
	}
	if s.MachineName() != "haswell" {
		t.Fatalf("MachineName() = %q", s.MachineName())
	}
	// Same bench back on the fleet machine is warm.
	s2, err := f.Submit(SessionSpec{Bench: "is", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if !s2.Warm() {
		t.Fatal("cascadelake session missed its own machine's profile")
	}
}

// A second session for the same (bench, input) must perform no graph
// rebuild: the build cache's counter is the acceptance criterion.
func TestBuildCacheAmortisesSessions(t *testing.T) {
	builds := workloads.NewBuildCache()
	f := New(Config{Machine: machine.CascadeLake(), Workers: 1, Builds: builds})
	defer f.Close()
	if _, err := f.Run([]SessionSpec{
		{Bench: "randacc", Seed: 1},
		{Bench: "randacc", Seed: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if got := builds.Builds(); got != 1 {
		t.Fatalf("Builds() = %d after two sessions on one pair, want 1", got)
	}
	if got := builds.Hits(); got != 1 {
		t.Fatalf("Hits() = %d, want 1", got)
	}
	snap := f.Snapshot()
	if snap.BuildConstructs != 1 || snap.BuildHits != 1 {
		t.Fatalf("snapshot build counters = %d constructs, %d hits",
			snap.BuildConstructs, snap.BuildHits)
	}
}

// A Cold spec bypasses the store in both directions: no lookup, no commit.
func TestColdSessionsBypassStore(t *testing.T) {
	f := New(Config{Machine: machine.CascadeLake(), Workers: 1,
		Builds: workloads.NewBuildCache()})
	defer f.Close()
	got, err := f.Run([]SessionSpec{
		{Bench: "is", Seed: 1, Cold: true},
		{Bench: "is", Seed: 2, Cold: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got {
		if s.Warm() {
			t.Fatalf("cold session %d reported warm", s.ID)
		}
		if s.Report() == nil || s.Report().Outcome != rpgcore.Tuned {
			t.Fatalf("cold session %d outcome (err %v)", s.ID, s.Err())
		}
	}
	if c := f.Store().Counters(); c != (StoreCounters{}) {
		t.Fatalf("cold sessions touched the store: %+v", c)
	}
	if f.Store().Len() != 0 {
		t.Fatal("cold session committed a store entry")
	}
}

// The auxiliary job kinds run the reference schemes through the same
// queue, lifecycle, journal, and metrics as optimize sessions.
func TestAuxJobKinds(t *testing.T) {
	f := New(Config{Machine: machine.CascadeLake(), Workers: 2,
		Builds: workloads.NewBuildCache()})
	defer f.Close()

	sweep := SessionSpec{Bench: "is", Kind: SweepJob}
	cfg := baselines.SweepConfig{
		Distances:     []int{4, 16, 64},
		WarmSeconds:   0.1,
		WindowSeconds: 0.25,
		Seed:          1,
	}
	sweep.Sweep = &cfg
	specs := []SessionSpec{
		{Bench: "is", Kind: ProfileJob},
		{Bench: "is", Kind: BaselineJob, RunSeconds: 6},
		sweep,
		{Bench: "is", Kind: APTGETJob},
	}
	got, err := f.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got {
		if s.State() != Done {
			t.Fatalf("%s session state = %v (err %v)", s.Spec.Kind, s.State(), s.Err())
		}
	}
	prof, base, sw, apt := got[0], got[1], got[2], got[3]
	cands := prof.Candidates()
	if len(cands) == 0 {
		t.Fatal("profile job found no candidates")
	}
	if m := base.Measurement(); m == nil || m.Work == 0 {
		t.Fatalf("baseline job measurement = %+v", m)
	}
	if res := sw.SweepResult(); res == nil || len(res.Speedup) != len(cfg.Distances) {
		t.Fatalf("sweep job result = %+v", sw.SweepResult())
	}
	if d := apt.Distance(); d < 1 || d > 100 {
		t.Fatalf("apt-get distance = %d", d)
	}

	// A static job reusing the profiled candidates.
	st, err := f.Submit(SessionSpec{Bench: "is", Kind: StaticJob,
		Distance: 16, Candidates: cands, RunSeconds: 6})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if st.State() != Done {
		t.Fatalf("static session state = %v (err %v)", st.State(), st.Err())
	}
	if m := st.Measurement(); m == nil || m.Work == 0 {
		t.Fatalf("static job measurement = %+v", m)
	}

	snap := f.Snapshot()
	for _, k := range []string{"profile", "baseline", "sweep", "apt-get", "static"} {
		if snap.Kinds[k] != 1 {
			t.Fatalf("snapshot kinds = %+v, want one %q", snap.Kinds, k)
		}
	}
	// Aux jobs carry no controller outcome, so activation stays undefined
	// rather than being diluted.
	if snap.ActivationRate != 0 {
		t.Fatalf("activation rate %f with no optimize sessions", snap.ActivationRate)
	}
	for _, s := range got {
		evs := f.Journal().SessionEvents(s.ID)
		if evs[0].Type != "queued" || evs[0].Kind != s.Spec.Kind.String() {
			t.Fatalf("session %d first event %+v", s.ID, evs[0])
		}
		last := evs[len(evs)-1]
		if last.Type != "session-done" || last.Kind != s.Spec.Kind.String() {
			t.Fatalf("session %d last event %+v", s.ID, last)
		}
	}
}

// A frozen store serves lookups without consuming reuse budget and
// ignores commits and invalidations.
func TestStoreFreeze(t *testing.T) {
	st := NewStore(StoreConfig{MaxReuse: 2})
	k := Key{Bench: "is", Machine: "cascadelake"}
	st.Commit(k, Entry{Func: "kernel", Distance: 8})
	st.Freeze()
	for i := 0; i < 10; i++ { // far past MaxReuse: no staleness while frozen
		if _, _, ok := st.Lookup(k); !ok {
			t.Fatalf("frozen lookup %d missed", i)
		}
	}
	if gen := st.Commit(k, Entry{Distance: 9}); gen != 0 {
		t.Fatal("frozen Commit was not a no-op")
	}
	e, gen, _ := st.Lookup(k)
	if e.Distance != 8 {
		t.Fatalf("frozen store mutated: distance %d", e.Distance)
	}
	if st.Invalidate(k, gen) {
		t.Fatal("frozen Invalidate dropped an entry")
	}
	st.Thaw()
	// Thawed: the reuse budget resumes from where it was.
	if _, _, ok := st.Lookup(k); !ok {
		t.Fatal("thawed lookup missed")
	}
}
