package fleet

// Shared-store integration: fleets pointed at one rpg2-stored daemon
// share warm profiles across processes, and a daemon dying mid-run
// degrades the fleet to a process-local store — journaled, surfaced in
// the snapshot, and with zero lost sessions — instead of blocking.

import (
	"net/http/httptest"
	"testing"

	"rpg2/internal/machine"
	rpgcore "rpg2/internal/rpg2"
	"rpg2/internal/stored"
)

func newStoreDaemon(t *testing.T) (*stored.Server, *httptest.Server) {
	t.Helper()
	srv, err := stored.New(stored.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestRemoteStoreSharedAcrossFleets: the tentpole claim end to end — a
// profile committed by one fleet process warm-starts sessions in a
// second fleet that shares the same store daemon, something two
// in-process stores can never do.
func TestRemoteStoreSharedAcrossFleets(t *testing.T) {
	daemon, ts := newStoreDaemon(t)

	f1 := New(Config{Machine: machine.CascadeLake(), Workers: 1, StoreAddr: ts.URL})
	spec := SessionSpec{Bench: "is", Seed: 1}
	cold, err := f1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	f1.Drain()
	if cold.Warm() || cold.Report().Outcome != rpgcore.Tuned {
		t.Fatalf("cold session: warm=%v outcome=%v", cold.Warm(), cold.Report().Outcome)
	}
	if snap := f1.Snapshot(); snap.RemoteStore != "active" {
		t.Fatalf("fleet 1 remote store status = %q, want active", snap.RemoteStore)
	}
	f1.Close()

	// A different fleet process (fresh Fleet, no shared Go objects) sees
	// the commit through the daemon.
	f2 := New(Config{Machine: machine.CascadeLake(), Workers: 1, StoreAddr: ts.URL})
	defer f2.Close()
	spec.Seed = 100
	warm, err := f2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	f2.Drain()
	if !warm.Warm() {
		t.Fatal("second fleet missed the profile the first fleet committed to the shared daemon")
	}
	if warm.Probes() >= cold.Probes() {
		t.Fatalf("daemon-seeded session used %d probes, cold used %d", warm.Probes(), cold.Probes())
	}

	c := daemon.Store().Counters()
	if c.Commits < 1 || c.Hits < 1 || c.Misses < 1 {
		t.Fatalf("daemon counters %+v: want both fleets' traffic accounted there", c)
	}
}

// TestRemoteStoreDegradeKeepsSessionsFinishing: kill the store daemon
// mid-run. The fleet must journal a fleet-level store-degraded event,
// report the degraded status in its snapshot, and still finish every
// session on its process-local fallback.
func TestRemoteStoreDegradeKeepsSessionsFinishing(t *testing.T) {
	_, ts := newStoreDaemon(t)

	f := New(Config{Machine: machine.CascadeLake(), Workers: 2, StoreAddr: ts.URL})
	defer f.Close()
	first, err := f.Submit(SessionSpec{Bench: "is", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if !first.State().Terminal() {
		t.Fatalf("pre-kill session state = %v", first.State())
	}

	ts.Close() // kill -9, as far as the fleet can tell

	var after []*Session
	for i := 0; i < 4; i++ {
		s, err := f.Submit(SessionSpec{Bench: "is", Seed: int64(10 + i)})
		if err != nil {
			t.Fatal(err)
		}
		after = append(after, s)
	}
	f.Drain()
	for _, s := range after {
		if !s.State().Terminal() || s.State() == Failed {
			t.Fatalf("session %d lost to the dead store daemon: state %v (err %v)",
				s.ID, s.State(), s.Err())
		}
	}

	snap := f.Snapshot()
	if snap.RemoteStore != "degraded" || snap.RemoteStoreError == "" {
		t.Fatalf("snapshot remote store = %q (%q), want degraded with a cause",
			snap.RemoteStore, snap.RemoteStoreError)
	}
	found := false
	for _, e := range f.Journal().Events() {
		if e.Session == -1 && e.Type == "store-degraded" {
			found = true
			if e.Err == "" {
				t.Fatal("store-degraded event carries no error")
			}
		}
	}
	if !found {
		t.Fatal("no fleet-level store-degraded event journaled")
	}
}

// TestRemoteStoreZeroValueUnchanged: with StoreAddr unset the fleet's
// snapshot carries no remote-store fields at all — the byte-identity
// contract for every existing run.
func TestRemoteStoreZeroValueUnchanged(t *testing.T) {
	f := New(Config{Machine: machine.CascadeLake(), Workers: 1})
	defer f.Close()
	if _, err := f.Submit(SessionSpec{Bench: "is", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	f.Drain()
	snap := f.Snapshot()
	if snap.RemoteStore != "" || snap.RemoteStoreError != "" {
		t.Fatalf("zero-knob snapshot leaks remote-store fields: %q / %q",
			snap.RemoteStore, snap.RemoteStoreError)
	}
}
