package fleet

import "testing"

func storeKey() Key { return Key{Bench: "pr", Input: "soc-alpha", Machine: "cascadelake"} }

func TestStoreHitMissCounting(t *testing.T) {
	s := NewStore(StoreConfig{})
	k := storeKey()
	if _, _, ok := s.Lookup(k); ok {
		t.Fatal("lookup on empty store hit")
	}
	s.Commit(k, Entry{Func: "pr_kernel", Candidates: []int{10}, Distance: 40})
	e, _, ok := s.Lookup(k)
	if !ok || e.Distance != 40 || e.Func != "pr_kernel" {
		t.Fatalf("lookup after commit = %+v, %v", e, ok)
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Commits != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestStoreStalenessEvicts(t *testing.T) {
	s := NewStore(StoreConfig{MaxReuse: 2})
	k := storeKey()
	s.Commit(k, Entry{Distance: 10})
	for i := 0; i < 2; i++ {
		if _, _, ok := s.Lookup(k); !ok {
			t.Fatalf("lookup %d missed within reuse budget", i)
		}
	}
	// Third lookup exceeds MaxReuse: stale, evicted, reported as a miss.
	if _, _, ok := s.Lookup(k); ok {
		t.Fatal("stale entry served")
	}
	if s.Len() != 0 {
		t.Fatalf("stale entry not evicted, len=%d", s.Len())
	}
	c := s.Counters()
	if c.Stale != 1 || c.Hits != 2 || c.Misses != 1 {
		t.Fatalf("counters = %+v", c)
	}
	// A recommit resets the reuse budget.
	s.Commit(k, Entry{Distance: 20})
	if e, _, ok := s.Lookup(k); !ok || e.Distance != 20 {
		t.Fatalf("recommitted entry = %+v, %v", e, ok)
	}
}

func TestStoreInvalidateGenerationGuard(t *testing.T) {
	s := NewStore(StoreConfig{})
	k := storeKey()
	s.Commit(k, Entry{Distance: 10})
	_, gen1, _ := s.Lookup(k)
	// A concurrent session commits a fresher profile before the first
	// session decides to invalidate: the stale-generation invalidate
	// must not clobber the fresh entry.
	s.Commit(k, Entry{Distance: 30})
	if s.Invalidate(k, gen1) {
		t.Fatal("stale-generation invalidate dropped a fresh entry")
	}
	e, gen2, ok := s.Lookup(k)
	if !ok || e.Distance != 30 {
		t.Fatalf("fresh entry lost: %+v, %v", e, ok)
	}
	if !s.Invalidate(k, gen2) {
		t.Fatal("current-generation invalidate refused")
	}
	if s.Len() != 0 {
		t.Fatal("invalidate left the entry live")
	}
	if c := s.Counters(); c.Invalidations != 1 {
		t.Fatalf("counters = %+v", c)
	}
}
