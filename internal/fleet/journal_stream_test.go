// Journal sequence-number and streaming tests: the dense Seq contract is
// what lets a disconnected network consumer resume with no gap and no
// duplicate, and what keeps the WAL tee and the live stream describing
// the same history.
package fleet

import (
	"encoding/json"
	"path/filepath"
	"sync"
	"testing"

	"rpg2/internal/machine"
	"rpg2/internal/wal"
)

// requireDense asserts a seq list is exactly from, from+1, ..., to-1 —
// the no-gap, no-duplicate invariant every consumer leans on.
func requireDense(t *testing.T, seqs []int, from, to int) {
	t.Helper()
	if len(seqs) != to-from {
		t.Fatalf("saw %d events, want %d (seqs %v)", len(seqs), to-from, seqs)
	}
	for i, s := range seqs {
		if s != from+i {
			t.Fatalf("seq[%d] = %d, want %d: gap or duplicate", i, s, from+i)
		}
	}
}

// TestJournalSeqDenseUnderConcurrency: concurrent appenders still get
// dense sequence numbers, and the SetSink tee observes every event in
// exactly the order (and with exactly the Seq) the log records.
func TestJournalSeqDenseUnderConcurrency(t *testing.T) {
	j := NewJournal()
	var teed []int
	j.SetSink(func(e Event) { teed = append(teed, e.Seq) }) // sink runs under the journal lock

	const writers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				j.add(Event{Type: "state", Session: w})
			}
		}(w)
	}
	wg.Wait()

	all := j.Events()
	seqs := make([]int, len(all))
	for i, e := range all {
		seqs[i] = e.Seq
	}
	requireDense(t, seqs, 0, writers*each)
	requireDense(t, teed, 0, writers*each)

	// EventsSince(-1) is the whole log; a mid-log cursor resumes exactly
	// after itself.
	if got := j.EventsSince(-1); len(got) != len(all) {
		t.Fatalf("EventsSince(-1) = %d events, want %d", len(got), len(all))
	}
	tail := j.EventsSince(100)
	var tailSeqs []int
	for _, e := range tail {
		tailSeqs = append(tailSeqs, e.Seq)
	}
	requireDense(t, tailSeqs, 101, writers*each)
	if got := j.EventsSince(writers*each - 1); got != nil {
		t.Fatalf("EventsSince(last) returned %d events, want none", len(got))
	}
}

// TestEventsSinceResumeAcrossInterruption: a consumer that drops its
// wake channel mid-stream and comes back with its last cursor replays the
// remainder with no gap and no duplicate, even while appends continue.
func TestEventsSinceResumeAcrossInterruption(t *testing.T) {
	j := NewJournal()
	const total = 300
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			j.add(Event{Type: "state", Session: i})
		}
	}()

	// First connection: consume until we have at least a third, then
	// "disconnect" (Unwatch, forget everything but the cursor).
	var seen []int
	cursor := -1
	wake := j.Watch()
	for len(seen) < total/3 {
		for _, e := range j.EventsSince(cursor) {
			seen = append(seen, e.Seq)
			cursor = e.Seq
		}
		if len(seen) < total/3 {
			<-wake
		}
	}
	j.Unwatch(wake)

	<-done // the rest of the log lands while we are disconnected

	// Second connection resumes from the cursor.
	for _, e := range j.EventsSince(cursor) {
		seen = append(seen, e.Seq)
		cursor = e.Seq
	}
	requireDense(t, seen, 0, total)
}

// TestStreamMatchesWALTee: on a persisted fleet the WAL is a SetSink tee
// off the same journal the stream reads. After a full run, the replayed
// WAL and EventsSince(-1) must describe the identical dense history —
// proving the tee loses nothing and the stream invents nothing.
func TestStreamMatchesWALTee(t *testing.T) {
	dir := t.TempDir()
	f := New(Config{Machine: machine.CascadeLake(), Workers: 2,
		StateDir: dir, Fsync: wal.SyncOnClose, SnapshotEvery: 1 << 30})

	// Stream concurrently with the run, the way a network consumer would.
	var streamed []int
	streamDone := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(streamDone)
		cursor := -1
		wake := f.Journal().Watch()
		defer f.Journal().Unwatch(wake)
		for {
			for _, e := range f.Journal().EventsSince(cursor) {
				streamed = append(streamed, e.Seq)
				cursor = e.Seq
			}
			select {
			case <-stop:
				for _, e := range f.Journal().EventsSince(cursor) {
					streamed = append(streamed, e.Seq)
					cursor = e.Seq
				}
				return
			case <-wake:
			}
		}
	}()

	for i, spec := range crashPairs {
		spec.Seed = int64(i + 1)
		if _, err := f.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	f.Drain()
	close(stop)
	<-streamDone
	f.Close()

	total := len(f.Journal().Events())
	requireDense(t, streamed, 0, total)

	recs, salvage, err := wal.ReadAll(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if !salvage.Clean() {
		t.Fatalf("clean close left a damaged WAL: %s", salvage)
	}
	var teed []int
	for _, rec := range recs {
		var e Event
		if err := json.Unmarshal(rec, &e); err != nil {
			t.Fatalf("WAL record does not decode: %v", err)
		}
		if e.Type == "" {
			continue // epoch header, not a journal event
		}
		teed = append(teed, e.Seq)
	}
	requireDense(t, teed, 0, total)
}
