// The fleet half of the phase-drift watchdog (internal/drift is the
// detector). When Config.WatchdogInterval arms it, a tuned optimize
// session does not blind-run its post-activation budget out: the fleet
// keeps the live core session attached, samples the miss-site retirement
// rate every interval through the same watch counters the tune used, and
// feeds an EWMA detector referenced against the rate recorded at
// activation. Sustained degradation re-admits the session into the
// admission queue's re-tune lane — distinct from the failure retry lane —
// and the re-dispatch re-enters the distance search seeded warm from the
// installed distance (rpgcore.Session.Retune), without re-profiling,
// re-rewriting, or re-inserting anything.
//
// With WatchdogInterval zero none of this code runs and the fleet is
// byte-identical to one without the subsystem.
package fleet

import (
	"time"

	"rpg2/internal/admission"
	"rpg2/internal/drift"
	"rpg2/internal/machine"
	rpgcore "rpg2/internal/rpg2"
)

// driftConfig assembles the detector configuration from the fleet knobs.
func (f *Fleet) driftConfig() drift.Config {
	return drift.Config{
		Interval:   f.cfg.WatchdogInterval,
		Window:     f.cfg.WatchdogWindow,
		Threshold:  f.cfg.WatchdogThreshold,
		Hysteresis: f.cfg.WatchdogHysteresis,
	}.Defaults()
}

// finishWatched is the terminal half of a watched optimize (or re-tune)
// pass: transition to Done, arm (or re-reference) the detector, report
// the breaker, then hand the rest of the run budget to the watchdog. If
// the watchdog re-admits the session into the re-tune lane, the session
// stays open and a later dispatch finishes it; otherwise the terminal
// bookkeeping lands here.
func (f *Fleet) finishWatched(s *Session, live *rpgcore.Session, rep *rpgcore.Report, started time.Time, m machine.Machine, deadline float64, tier seedTier) {
	f.transition(s, Done, rep.Costs.ExecSeconds)
	s.mu.Lock()
	s.report = rep
	s.live = live
	s.tier = tier
	switch {
	case s.det != nil:
		// A completed re-tune pass: re-reference against the rate the
		// re-tuned distance achieves, or a phase whose best achievable
		// rate is below the old reference would re-fire forever.
		s.det.Rebase(rep.BestRate)
	case s.recoveredDet != nil:
		// A crash-recovered armed watchdog: resume its counters, but
		// reference this run's own activation rate — the old reference
		// belonged to a target that died with the old process.
		s.det = drift.Resume(f.driftConfig(), *s.recoveredDet)
		s.det.Rebase(rep.BestRate)
		s.recoveredDet = nil
	default:
		s.det = drift.New(f.driftConfig(), rep.BestRate)
	}
	s.windowMark = s.det.Samples()
	s.mu.Unlock()
	f.mu.Lock()
	if s.item.Breakable {
		f.reportBreakerLocked(s, admission.Success)
	}
	f.mu.Unlock()

	if f.runWatchdog(s, m, deadline) {
		return // re-admitted into the re-tune lane; not terminal yet
	}

	s.mu.Lock()
	s.wall = time.Since(started)
	s.mu.Unlock()
	f.metrics.finish(rep.Outcome.String(), tier, rep.Costs.PDEdits, s.Wall())
	f.journal.add(Event{
		Session: s.ID, Type: "session-done", State: Done.String(),
		Kind:  s.Spec.Kind.String(),
		Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: m.Name,
		Warm: tier == tierWarm, Translated: tier == tierTranslated,
		Report: rep, Attempt: s.Attempt(), Retune: s.Retunes(),
	})
}

// runWatchdog samples the live target until the run budget ends, the
// target exits, or the re-tune budget is spent — whichever comes first —
// and re-admits the session into the re-tune lane when the detector
// fires. Returns true when the session was re-admitted (the caller must
// leave it open). Whatever budget the sampling did not consume is run
// out plain, so a watched session still honors its RunSeconds deadline.
func (f *Fleet) runWatchdog(s *Session, m machine.Machine, deadline float64) bool {
	s.mu.Lock()
	live, det := s.live, s.det
	s.mu.Unlock()
	interval, window := f.cfg.WatchdogInterval, f.cfg.WatchdogWindow
	for !live.Exited() {
		f.mu.Lock()
		armed := f.sched.CanRetune(s.item)
		f.mu.Unlock()
		if !armed {
			break // budget spent: a firing could not be acted on
		}
		if deadline-live.Elapsed() < interval {
			break // not enough budget left for another sample cycle
		}
		if step := interval - window; step > 0 {
			live.Advance(step)
		}
		w := live.SampleWindow(window)
		s.mu.Lock()
		fired := det.Observe(w.Rate)
		windows := det.Samples() - s.windowMark
		s.mu.Unlock()
		if fired && f.scheduleRetune(s, m, windows) {
			return true
		}
	}
	if !live.Exited() && live.Elapsed() < deadline {
		live.RunOut(deadline)
	}
	return false
}

// scheduleRetune re-admits a drifted session into the re-tune lane:
// drift-detected and retune-scheduled journal back to back under the
// fleet lock, together with the Done -> Queued edge, so no worker ever
// sees the re-admitted item against a stale session state. Returns false
// when the lane's budget is gone (the watchdog then disarms).
func (f *Fleet) scheduleRetune(s *Session, m machine.Machine, windows int) bool {
	s.mu.Lock()
	seedD := 0
	if !f.cfg.RetuneCold && s.report != nil {
		seedD = s.report.FinalDistance
	}
	ref, ewma := s.det.Ref(), s.det.EWMA()
	s.mu.Unlock()

	f.mu.Lock()
	delay, due, ok := f.sched.Retune(s.item)
	if !ok {
		f.mu.Unlock()
		return false
	}
	granted := s.item.Retune
	f.journal.add(Event{
		Session: s.ID, Type: "drift-detected", Kind: s.Spec.Kind.String(),
		Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: m.Name,
		Attempt: s.Attempt(), Retune: granted,
		Rate: ewma, Ref: ref, Windows: windows,
	})
	f.journal.add(Event{
		Session: s.ID, Type: "retune-scheduled", Kind: s.Spec.Kind.String(),
		Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: m.Name,
		Attempt: s.Attempt(), Retune: granted, Distance: seedD,
		Backoff: delay, Due: due,
	})
	f.transition(s, Queued, 0)
	s.mu.Lock()
	s.retuning = true
	s.retuneDistance = seedD
	s.mu.Unlock()
	if n := f.sched.Len(); n > f.queuePeak {
		f.queuePeak = n
	}
	f.mu.Unlock()
	f.metrics.retuneScheduled(windows)
	return true
}

// runRetune dispatches a re-tune lane admission. The live path re-enters
// the distance search against the still-injected prefetch kernel through
// rpgcore's Retune — phase 4 only, no re-profile. A session recovered
// from a crash has no live target anymore (it died with the old process)
// and falls back to a full warm-seeded optimize inside runOptimize,
// which keeps the lane's store bypass and seed discipline.
func (f *Fleet) runRetune(s *Session, started time.Time, m machine.Machine) {
	s.mu.Lock()
	live, prev, tier, seedD := s.live, s.report, s.tier, s.retuneDistance
	s.mu.Unlock()
	if live == nil || !prev.CanRetune() {
		f.runOptimize(s, started, m)
		return
	}
	s.mu.Lock()
	s.retuning = false
	s.mu.Unlock()
	f.mu.Lock()
	granted := s.item.Retune
	f.mu.Unlock()

	f.transition(s, Tuning, 0)
	// The lane never consults the store: the injected kernel and its
	// sites already proved themselves at activation — only the distance
	// is stale. Journal the bypass so every optimize-kind dispatch still
	// makes exactly one store disposition.
	f.metrics.bypass("retune")
	f.journal.add(Event{
		Session: s.ID, Type: "store-bypass", Reason: "retune",
		Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: m.Name,
		Attempt: s.Attempt(), Retune: granted,
	})

	cfg := f.cfg.Session
	if s.Spec.Config != nil {
		cfg = *s.Spec.Config
	}
	attempt := s.Attempt()
	cfg.Seed = s.Spec.Seed + int64(attempt)*retrySeedStride + int64(granted)*retuneSeedStride
	cfg.SeedDistance = 0
	if !f.cfg.RetuneCold {
		cfg.SeedDistance = seedD
	}
	re, err := live.Retune(cfg, prev)
	if err != nil {
		s.mu.Lock()
		s.live = nil
		s.report = re
		s.mu.Unlock()
		f.failSession(s, started, err)
		return
	}
	f.finishRetune(s, re, m)
	run, _ := f.runSeconds(s)
	f.finishWatched(s, live, re, started, m, run, tier)
}

// finishRetune closes one re-tune lane pass: counts it and journals
// retune-complete when the pass re-activated (a Tuned outcome). A pass
// that found the target already exited ends with the session's terminal
// event instead.
func (f *Fleet) finishRetune(s *Session, rep *rpgcore.Report, m machine.Machine) {
	s.mu.Lock()
	s.retuning = false
	if rep.Outcome == rpgcore.Tuned {
		s.retunes++
	}
	n := s.retunes
	s.mu.Unlock()
	if rep.Outcome != rpgcore.Tuned {
		return
	}
	f.metrics.retuneComplete()
	f.journal.add(Event{
		Session: s.ID, Type: "retune-complete", Kind: s.Spec.Kind.String(),
		Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: m.Name,
		Attempt: s.Attempt(), Retune: n,
		Distance: rep.FinalDistance, Rate: rep.BestRate,
	})
}

// captureDrift snapshots every session's watchdog posture for a WAL
// snapshot; the locked variant is for callers already holding f.mu.
func (f *Fleet) captureDrift() []DriftRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.captureDriftLocked()
}

func (f *Fleet) captureDriftLocked() []DriftRecord {
	var out []DriftRecord
	for _, s := range f.sessions {
		s.mu.Lock()
		if s.det != nil || s.retunes > 0 || s.retuning {
			dr := DriftRecord{
				Session: s.ID, Granted: s.item.Retune, Retunes: s.retunes,
				Retuning: s.retuning, Distance: s.retuneDistance,
			}
			if s.det != nil {
				dr.Detector = s.det.Export()
			}
			out = append(out, dr)
		}
		s.mu.Unlock()
	}
	return out
}
