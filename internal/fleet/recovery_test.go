// Crash-recovery acceptance tests. The centrepiece re-execs the test
// binary as a fleet, SIGKILLs it mid-run (a real kill -9, not a simulated
// one), and recovers in-process, asserting the issue's two invariants: no
// committed store entry lost, no submitted session lost.
package fleet

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rpg2/internal/admission"
	"rpg2/internal/machine"
	"rpg2/internal/wal"
)

// crashPairs are the workloads the crash tests run; they all reliably tune
// so the journal fills with store commits for recovery to protect.
var crashPairs = []SessionSpec{
	{Bench: "is"},
	{Bench: "cg"},
	{Bench: "randacc"},
	{Bench: "bfs", Input: "soc-gamma"},
}

// TestCrashHelperProcess is not a test: it is the victim process the
// kill-mid-run test spawns. It runs a persisted fleet over enough sessions
// that the parent can SIGKILL it with work in every state — queued,
// in-flight, and terminal — then parks forever (the kill is its only exit).
func TestCrashHelperProcess(t *testing.T) {
	if os.Getenv("FLEET_WANT_CRASH_HELPER") != "1" {
		t.Skip("helper process for TestKillMidRunRecoverLosesNothing")
	}
	cfg := Config{
		Machine: machine.CascadeLake(), Workers: 2,
		StateDir: os.Getenv("FLEET_CRASH_DIR"),
		// Every append hits disk, so the parent's kill tears at most the
		// record being written; a huge SnapshotEvery pins recovery to the
		// journal-replay path (the clean-close test covers snapshots).
		Fsync: wal.SyncAlways, SnapshotEvery: 1 << 30,
	}
	if n, _ := strconv.Atoi(os.Getenv("FLEET_CRASH_SHARDS")); n > 1 {
		// The sharded crash test wants the kill to land with a shard
		// snapshot set on disk, so snapshot aggressively instead.
		cfg.StoreShards, cfg.SnapshotEvery = n, 4
	}
	f := New(cfg)
	for i := 0; i < 48; i++ {
		spec := crashPairs[i%len(crashPairs)]
		spec.Seed = int64(i + 1)
		if _, err := f.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	f.Drain()
	time.Sleep(time.Minute) // the parent's SIGKILL ends this process
}

// journalLedger independently replays a journal WAL file: the committed
// store keys that must survive recovery, and per-session terminality. It
// deliberately re-derives the invariants from the raw file rather than
// trusting Recover's own accounting — but it must mirror recovery's
// *rules*: any session-tagged event makes the session known to the
// journal (chaos can swallow the queued record while a later store event
// survives the same session), and a session whose queued record never
// made it to disk has no spec to re-admit, so recovery books it as a
// terminal record rather than losing it.
func journalLedger(t *testing.T, dir string) (keys map[Key]bool, sessions, terminal int) {
	t.Helper()
	recs, _, err := wal.ReadAll(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	keys = make(map[Key]bool)
	type led struct {
		queued bool // a queued record with a spec survived
		done   bool // saw a terminal event last
	}
	state := make(map[int]*led)
	for _, rec := range recs {
		var e Event
		if err := json.Unmarshal(rec, &e); err != nil || e.Type == "" {
			continue
		}
		switch e.Type {
		case "store-commit":
			keys[Key{Bench: e.Bench, Input: e.Input, Machine: e.Machine}] = true
		case "store-invalidate":
			delete(keys, Key{Bench: e.Bench, Input: e.Input, Machine: e.Machine})
		}
		if e.Session < 0 {
			continue
		}
		tr := state[e.Session]
		if tr == nil {
			tr = &led{}
			state[e.Session] = tr
		}
		switch e.Type {
		case "queued":
			tr.queued = e.Spec != nil
		case "retry-scheduled", "retune-scheduled":
			tr.done = false
		case "session-done", "session-degraded":
			tr.done = true
		case "session-failed":
			tr.done = e.Err != ErrCanceled.Error()
		}
	}
	for _, tr := range state {
		sessions++
		if tr.done || !tr.queued {
			terminal++
		}
	}
	return keys, sessions, terminal
}

// TestKillMidRunRecoverLosesNothing is the acceptance test: run a fleet in
// a child process, kill -9 it once store commits are durable, then Recover
// from its state dir. Every pre-crash session must end terminal (directly
// or via re-admission), every committed store entry must survive, and
// fresh sessions on recovered keys must warm-start.
func TestKillMidRunRecoverLosesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashHelperProcess", "-test.v")
	cmd.Env = append(os.Environ(), "FLEET_WANT_CRASH_HELPER=1", "FLEET_CRASH_DIR="+dir)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Kill once at least one store commit is on disk: from here on,
	// recovery has something to lose.
	journal := filepath.Join(dir, journalFile)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if data, err := os.ReadFile(journal); err == nil && bytes.Contains(data, []byte(`"store-commit"`)) {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("no store commit appeared in the child's WAL; child output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // the kill is the expected exit

	wantKeys, sessions, terminal := journalLedger(t, dir)
	if sessions == 0 {
		t.Fatalf("ledger saw no sessions; child output:\n%s", out.String())
	}

	f, rec, err := Recover(dir, Config{Machine: machine.CascadeLake(), Workers: 2})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer f.Close()

	if rec.Sessions != sessions {
		t.Fatalf("recovery saw %d sessions, ledger saw %d", rec.Sessions, sessions)
	}
	if rec.Terminal != terminal {
		t.Fatalf("recovery counted %d terminal, ledger counted %d", rec.Terminal, terminal)
	}
	if rec.Terminal+len(rec.Requeued) != rec.Sessions {
		t.Fatalf("sessions lost: %d terminal + %d requeued != %d seen",
			rec.Terminal, len(rec.Requeued), rec.Sessions)
	}
	if rec.StoreEntries != len(wantKeys) {
		t.Fatalf("recovered %d store entries, ledger says %d survive", rec.StoreEntries, len(wantKeys))
	}
	if rec.Epoch != rec.PrevEpoch+1 {
		t.Fatalf("epoch %d does not succeed %d", rec.Epoch, rec.PrevEpoch)
	}

	// Finish the recovered work: every re-admitted session must reach a
	// terminal state, and in-flight-at-crash re-runs must not warm-start
	// (retry discipline: the interrupted attempt's profile is suspect).
	f.Drain()
	for _, s := range rec.Requeued {
		if !s.State().Terminal() {
			t.Fatalf("requeued session %d never finished: %v", s.ID, s.State())
		}
		if s.Attempt() > 0 && s.Warm() {
			t.Fatalf("in-flight re-run %d warm-started", s.ID)
		}
	}

	// Recovered entries must be reusable: a fresh session on a recovered
	// key warm-starts from the pre-crash profile.
	if len(wantKeys) > 0 {
		var spec SessionSpec
		for k := range wantKeys {
			spec = SessionSpec{Bench: k.Bench, Input: k.Input, Seed: 9001}
			break
		}
		before := f.Snapshot().Store.Hits
		s, err := f.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		f.Drain()
		if !s.State().Terminal() || s.State() == Failed {
			t.Fatalf("post-recovery session state = %v (err %v)", s.State(), s.Err())
		}
		if !s.Warm() {
			t.Fatal("session on a recovered key did not warm-start")
		}
		if hits := f.Snapshot().Store.Hits; hits <= before {
			t.Fatalf("warm-hit counter did not move: %d -> %d", before, hits)
		}
	}
}

// TestKillMidRunShardedRecoverPartialSnapshotSet is the sharded-store crash
// acceptance test: a fleet running StoreShards=4 with aggressive
// snapshotting is kill -9'd once a manifest-sealed shard set is on disk,
// then one shard member is deleted — a partial set. Recovery must notice
// the gap via the manifest (the set goes dirty, the watermark is
// distrusted, the whole journal replays) and still converge to exactly the
// ledger's committed entries with no session lost.
func TestKillMidRunShardedRecoverPartialSnapshotSet(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashHelperProcess", "-test.v")
	cmd.Env = append(os.Environ(), "FLEET_WANT_CRASH_HELPER=1",
		"FLEET_CRASH_DIR="+dir, "FLEET_CRASH_SHARDS=4")
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Kill once a shard snapshot set is sealed (the manifest is written
	// last, so its presence vouches for every member) AND a later commit is
	// in the journal, so recovery exercises snapshot + roll-forward.
	journal := filepath.Join(dir, journalFile)
	manifest := filepath.Join(dir, manifestFile)
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, merr := os.Stat(manifest)
		data, jerr := os.ReadFile(journal)
		if merr == nil && jerr == nil && bytes.Contains(data, []byte(`"store-commit"`)) {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("no sealed shard set appeared; child output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Tear a hole in the set: drop one member the manifest vouches for.
	removed := ""
	for i := 0; i < 4; i++ {
		p := filepath.Join(dir, shardFileName(i))
		if _, err := os.Stat(p); err == nil {
			if err := os.Remove(p); err != nil {
				t.Fatal(err)
			}
			removed = shardFileName(i)
			break
		}
	}
	if removed == "" {
		t.Fatal("sealed manifest but no shard member on disk")
	}

	wantKeys, sessions, terminal := journalLedger(t, dir)
	if sessions == 0 {
		t.Fatalf("ledger saw no sessions; child output:\n%s", out.String())
	}

	f, rec, err := Recover(dir, Config{Machine: machine.CascadeLake(), Workers: 2, StoreShards: 4})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer f.Close()

	if rec.SnapshotShards != 4 || rec.StoreShards != 4 || rec.Resharded {
		t.Fatalf("shard accounting = snapshot %d / store %d / resharded %v, want 4 / 4 / false",
			rec.SnapshotShards, rec.StoreShards, rec.Resharded)
	}
	if rec.SnapshotSalvage.Clean() {
		t.Fatalf("deleted member %s went unreported", removed)
	}
	if !strings.Contains(rec.SnapshotSalvage.Reason, removed) {
		t.Fatalf("salvage reason %q does not name the missing member %s", rec.SnapshotSalvage.Reason, removed)
	}
	if rec.Sessions != sessions || rec.Terminal != terminal {
		t.Fatalf("accounting = %d sessions / %d terminal, ledger = %d / %d",
			rec.Sessions, rec.Terminal, sessions, terminal)
	}
	if rec.Terminal+len(rec.Requeued) != rec.Sessions {
		t.Fatalf("sessions lost: %d terminal + %d requeued != %d seen",
			rec.Terminal, len(rec.Requeued), rec.Sessions)
	}
	if rec.StoreEntries != len(wantKeys) {
		t.Fatalf("recovered %d store entries, ledger says %d survive", rec.StoreEntries, len(wantKeys))
	}
	if rec.Epoch != rec.PrevEpoch+1 {
		t.Fatalf("epoch %d does not succeed %d", rec.Epoch, rec.PrevEpoch)
	}
	f.Drain()
	for _, s := range rec.Requeued {
		if !s.State().Terminal() {
			t.Fatalf("requeued session %d never finished: %v", s.ID, s.State())
		}
	}
}

// TestRecoverReshardsDifferentLayout: a state dir snapshotted under one
// shard count recovers into any other layout — entries re-hash on Import,
// the mismatch is reported, nothing errors and nothing is lost.
func TestRecoverReshardsDifferentLayout(t *testing.T) {
	dir := t.TempDir()
	f := New(Config{Machine: machine.CascadeLake(), Workers: 2, StateDir: dir, StoreShards: 4})
	for i, spec := range crashPairs {
		spec.Seed = int64(i + 1)
		if _, err := f.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	f.Drain()
	want := f.Store().Export()
	f.Close()
	if _, err := os.Stat(filepath.Join(dir, manifestFile)); err != nil {
		t.Fatalf("clean close of a 4-shard fleet left no manifest: %v", err)
	}

	checkExport := func(f2 *Fleet) {
		t.Helper()
		got := f2.Store().Export()
		if len(got) != len(want) {
			t.Fatalf("store entries = %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Key != want[i].Key || got[i].Entry.Distance != want[i].Entry.Distance {
				t.Fatalf("entry %d mismatch: %+v vs %+v", i, got[i], want[i])
			}
		}
	}

	// 4-shard snapshot into an 8-shard store.
	f2, rec, err := Recover(dir, Config{Machine: machine.CascadeLake(), Workers: 2, StoreShards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotShards != 4 || rec.StoreShards != 8 || !rec.Resharded {
		t.Fatalf("shard accounting = snapshot %d / store %d / resharded %v, want 4 / 8 / true",
			rec.SnapshotShards, rec.StoreShards, rec.Resharded)
	}
	if !strings.Contains(rec.Summary(), "re-sharded 4 -> 8") {
		t.Fatalf("Summary hides the re-shard: %s", rec.Summary())
	}
	checkExport(f2)
	f2.Close()

	// 8-shard snapshot back into the single-mutex store.
	f3, rec3, err := Recover(dir, Config{Machine: machine.CascadeLake(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	if rec3.SnapshotShards != 8 || rec3.StoreShards != 1 || !rec3.Resharded {
		t.Fatalf("shard accounting = snapshot %d / store %d / resharded %v, want 8 / 1 / true",
			rec3.SnapshotShards, rec3.StoreShards, rec3.Resharded)
	}
	checkExport(f3)
	// The re-shard must not cost the warm-start path: a session on a
	// recovered key still warm-starts.
	s, err := f3.Submit(SessionSpec{Bench: want[0].Key.Bench, Input: want[0].Key.Input, Seed: 9001})
	if err != nil {
		t.Fatal(err)
	}
	f3.Drain()
	if !s.State().Terminal() || s.State() == Failed {
		t.Fatalf("post-reshard session state = %v (err %v)", s.State(), s.Err())
	}
	if !s.Warm() {
		t.Fatal("session on a re-sharded recovered key did not warm-start")
	}
}

// TestCleanCloseRecover: a cleanly closed state dir resumes from its final
// snapshot with nothing to requeue and the full store intact.
func TestCleanCloseRecover(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Machine: machine.CascadeLake(), Workers: 2, StateDir: dir}
	f := New(cfg)
	for i, spec := range crashPairs {
		spec.Seed = int64(i + 1)
		if _, err := f.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	f.Drain()
	want := f.Store().Export()
	f.Close()

	f2, rec, err := Recover(dir, Config{Machine: machine.CascadeLake(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if len(rec.Requeued) != 0 {
		t.Fatalf("clean close requeued %d sessions", len(rec.Requeued))
	}
	if rec.Sessions != len(crashPairs) || rec.Terminal != len(crashPairs) {
		t.Fatalf("accounting = %d sessions / %d terminal, want %d / %d",
			rec.Sessions, rec.Terminal, len(crashPairs), len(crashPairs))
	}
	got := f2.Store().Export()
	if len(got) != len(want) {
		t.Fatalf("store entries = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || got[i].Entry.Distance != want[i].Entry.Distance {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
	if !rec.JournalSalvage.Clean() || !rec.SnapshotSalvage.Clean() {
		t.Fatalf("clean close reported salvage: %s / %s", rec.JournalSalvage, rec.SnapshotSalvage)
	}
}

// TestRecoverCancelledSessionsResume: sessions a SIGINT drain cancelled
// (ErrCanceled) are interrupted, not finished — resume re-admits them.
func TestRecoverCancelledSessionsResume(t *testing.T) {
	// One session runs; the rest are parked behind the single worker and
	// then cancelled, mimicking an interrupted run's drain.
	dir := t.TempDir()
	cancelled := interruptedStateDir(t, dir)

	f2, rec, err := Recover(dir, Config{Machine: machine.CascadeLake(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if len(rec.Requeued) != cancelled {
		t.Fatalf("requeued %d, cancelled %d", len(rec.Requeued), cancelled)
	}
	f2.Drain()
	for _, s := range rec.Requeued {
		if !s.State().Terminal() || s.State() == Failed {
			t.Fatalf("resumed session %d state = %v (err %v)", s.ID, s.State(), s.Err())
		}
	}
}

// interruptedStateDir builds a state dir holding an interrupted run: one
// worker, several sessions, a SIGINT-style cancel, clean close. It returns
// how many sessions were cancelled (skipping the test when none were).
func interruptedStateDir(t *testing.T, dir string) int {
	t.Helper()
	f := New(Config{Machine: machine.CascadeLake(), Workers: 1, StateDir: dir})
	for i := 0; i < 6; i++ {
		spec := crashPairs[i%len(crashPairs)]
		spec.Seed = int64(i + 1)
		if _, err := f.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	cancelled := f.CancelQueued()
	f.Drain()
	f.Close()
	if cancelled == 0 {
		t.Skip("every session dispatched before the cancel; nothing pending")
	}
	return cancelled
}

// TestNewRefusesToClobberInterruptedStateDir: New over a state dir whose
// journal still holds unfinished sessions must not destroy them — the
// fleet degrades (surfacing why), the files stay byte-identical, and the
// dir remains recoverable. Config.Overwrite is the explicit opt-out.
func TestNewRefusesToClobberInterruptedStateDir(t *testing.T) {
	dir := t.TempDir()
	cancelled := interruptedStateDir(t, dir)
	if got := PendingSessions(dir); got != cancelled {
		t.Fatalf("PendingSessions = %d, want %d", got, cancelled)
	}
	before, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}

	f := New(Config{Machine: machine.CascadeLake(), Workers: 1, StateDir: dir})
	s, err := f.Submit(SessionSpec{Bench: "is", Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if !s.State().Terminal() || s.State() == Failed {
		t.Fatalf("session under refused persistence: %v (err %v)", s.State(), s.Err())
	}
	snap := f.Snapshot()
	if snap.Persistence != "degraded" || !strings.Contains(snap.PersistenceError, "interrupted run") {
		t.Fatalf("snapshot = %q / %q, want degraded with refusal", snap.Persistence, snap.PersistenceError)
	}
	f.Close()

	after, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("refusing New still modified the journal")
	}
	if got := PendingSessions(dir); got != cancelled {
		t.Fatalf("dir no longer recoverable: PendingSessions = %d, want %d", got, cancelled)
	}

	// The explicit opt-out discards the interrupted run and persists anew.
	f2 := New(Config{Machine: machine.CascadeLake(), Workers: 1, StateDir: dir, Overwrite: true})
	if snap := f2.Snapshot(); snap.Persistence != "active" {
		t.Fatalf("Overwrite fleet persistence = %q", snap.Persistence)
	}
	f2.Close()
	if got := PendingSessions(dir); got != 0 {
		t.Fatalf("overwritten dir still reports %d pending sessions", got)
	}
}

// TestRecoverSurvivesInterruptedRecovery: a recovery that dies after
// staging the fresh epoch (snapshot written, staged journal never
// published) leaves the new snapshot over the OLD journal. A later
// recovery must read that pairing consistently: store entries from the
// snapshot, pending sessions from the journal — nothing lost.
func TestRecoverSurvivesInterruptedRecovery(t *testing.T) {
	dir := t.TempDir()
	cancelled := interruptedStateDir(t, dir)
	wantKeys, _, _ := journalLedger(t, dir)

	// Run the real epoch-staging path (what Recover does before workers
	// start) and abandon it mid-way, exactly as a crash would.
	st, err := readState(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Machine: machine.CascadeLake(), Workers: 1, StateDir: dir, Overwrite: true}
	half := newFleet(cfg)
	var entries []KeyedEntry
	for _, k := range st.order {
		if e, ok := st.entries[k]; ok {
			entries = append(entries, KeyedEntry{Key: k, Entry: e})
		}
	}
	half.store.Import(entries)
	if st.sched != nil {
		half.sched.Import(*st.sched)
	}
	half.initPersist()
	if half.persist == nil || half.persist.log == nil {
		t.Fatalf("staging did not open a journal (persist %+v)", half.persist)
	}
	prevEpoch := half.persist.epoch
	half.persist.log.Abort() // the crash: staged journal never commits

	// The old journal still names the pending work.
	if got := PendingSessions(dir); got != cancelled {
		t.Fatalf("after interrupted recovery PendingSessions = %d, want %d", got, cancelled)
	}

	f, rec, err := Recover(dir, Config{Machine: machine.CascadeLake(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if len(rec.Requeued) != cancelled {
		t.Fatalf("requeued %d sessions, want %d", len(rec.Requeued), cancelled)
	}
	if rec.StoreEntries != len(wantKeys) {
		t.Fatalf("recovered %d store entries, want %d", rec.StoreEntries, len(wantKeys))
	}
	if rec.PrevEpoch != prevEpoch || rec.Epoch != prevEpoch+1 {
		t.Fatalf("epochs %d -> %d, want %d -> %d", rec.PrevEpoch, rec.Epoch, prevEpoch, prevEpoch+1)
	}
	f.Drain()
	for _, s := range rec.Requeued {
		if !s.State().Terminal() || s.State() == Failed {
			t.Fatalf("requeued session %d state = %v (err %v)", s.ID, s.State(), s.Err())
		}
	}
}

// TestClaimSnapshotSingleWinner: workers racing across the same
// store-commit threshold get exactly one snapshot claim.
func TestClaimSnapshotSingleWinner(t *testing.T) {
	dir := t.TempDir()
	p, err := openPersister(dir, Config{Fsync: wal.SyncOnClose, SnapshotEvery: 4}, admission.PersistState{}, nil, storeState{shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.close()
	p.mu.Lock()
	p.commits = 4
	p.mu.Unlock()

	var wg sync.WaitGroup
	var wins int32
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if p.claimSnapshot() {
				atomic.AddInt32(&wins, 1)
			}
		}()
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("threshold crossing claimed %d times, want 1", wins)
	}
}

// TestRecoverCorruptTail: flip a byte in the journal's tail and truncate
// the snapshot to garbage; recovery keeps the valid prefix, reports the
// damage, and still loses no fully journaled commit.
func TestRecoverCorruptTail(t *testing.T) {
	dir := t.TempDir()
	f := New(Config{Machine: machine.CascadeLake(), Workers: 2, StateDir: dir, SnapshotEvery: 1 << 30})
	for i, spec := range crashPairs {
		spec.Seed = int64(i + 1)
		if _, err := f.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	f.Drain()
	f.Close()

	// Snapshot file: overwrite with garbage (a torn snapshot write).
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte("not a wal"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Journal: chop mid-record to simulate a torn tail.
	jp := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jp, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	wantKeys, _, _ := journalLedger(t, dir)

	f2, rec, err := Recover(dir, Config{Machine: machine.CascadeLake(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if rec.JournalSalvage.Clean() {
		t.Fatal("torn journal tail went unreported")
	}
	if rec.StoreEntries != len(wantKeys) {
		t.Fatalf("recovered %d entries, salvaged ledger says %d", rec.StoreEntries, len(wantKeys))
	}
	f2.Drain()
	for _, s := range rec.Requeued {
		if !s.State().Terminal() {
			t.Fatalf("requeued session %d not terminal", s.ID)
		}
	}
}

// TestRecoverEmptyStateDir: recovering a dir with no state files yields an
// empty, working fleet rather than an error.
func TestRecoverEmptyStateDir(t *testing.T) {
	dir := t.TempDir()
	f, rec, err := Recover(dir, Config{Machine: machine.CascadeLake(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if rec.Sessions != 0 || rec.StoreEntries != 0 || len(rec.Requeued) != 0 {
		t.Fatalf("empty dir recovered state: %+v", rec)
	}
	s, err := f.Submit(SessionSpec{Bench: "is", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if !s.State().Terminal() {
		t.Fatalf("session state = %v", s.State())
	}
}

// TestRecoverMissingDirErrors: Recover refuses a nonexistent dir (it would
// silently resume nothing) — that is New's job, not Recover's.
func TestRecoverMissingDirErrors(t *testing.T) {
	if _, _, err := Recover(filepath.Join(t.TempDir(), "nope"), Config{Machine: machine.CascadeLake()}); err == nil {
		t.Fatal("Recover of a missing dir succeeded")
	}
	if _, _, err := Recover("", Config{Machine: machine.CascadeLake()}); err == nil {
		t.Fatal("Recover of an empty dir name succeeded")
	}
}

// TestDiskFailureDegrades: the first failed WAL write flips the fleet to
// in-memory mode — sessions keep finishing, and the snapshot surfaces the
// degradation instead of hiding it. Re-arming is disabled here (negative
// RearmBackoff) to pin the old permanent-degradation contract; the
// self-healing arc has its own coverage in chaos_test.go.
func TestDiskFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	f := New(Config{Machine: machine.CascadeLake(), Workers: 2, StateDir: dir, RearmBackoff: -1})
	defer f.Close()
	if snap := f.Snapshot(); snap.Persistence != "active" {
		t.Fatalf("fresh persisted fleet reports %q", snap.Persistence)
	}
	// Yank the WAL's fd out from under the fleet: the next append fails
	// exactly like a dead disk.
	f.persist.mu.Lock()
	f.persist.log.Abort()
	f.persist.mu.Unlock()

	for i, spec := range crashPairs {
		spec.Seed = int64(i + 1)
		if _, err := f.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	f.Drain()
	for _, s := range f.Sessions() {
		if !s.State().Terminal() || s.State() == Failed {
			t.Fatalf("session %d did not survive the disk failure: %v (err %v)", s.ID, s.State(), s.Err())
		}
	}
	snap := f.Snapshot()
	if snap.Persistence != "degraded" {
		t.Fatalf("persistence = %q after disk failure", snap.Persistence)
	}
	if !strings.Contains(snap.Render(), "persistence    degraded") {
		t.Fatalf("Render hides the degradation:\n%s", snap.Render())
	}
}

// TestUnusableStateDirDegradesFromBirth: New with a hopeless state dir
// still returns a working (degraded) fleet.
func TestUnusableStateDirDegradesFromBirth(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f := New(Config{Machine: machine.CascadeLake(), Workers: 1,
		StateDir: filepath.Join(blocker, "sub")}) // MkdirAll through a file fails
	defer f.Close()
	s, err := f.Submit(SessionSpec{Bench: "is", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if !s.State().Terminal() || s.State() == Failed {
		t.Fatalf("session state = %v (err %v)", s.State(), s.Err())
	}
	if snap := f.Snapshot(); snap.Persistence != "degraded" || snap.PersistenceError == "" {
		t.Fatalf("snapshot = %q / %q", snap.Persistence, snap.PersistenceError)
	}
}
