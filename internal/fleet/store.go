// The profile store lives in internal/store behind the store.Store
// interface; the fleet holds only the interface. These aliases keep the
// fleet's public surface (and every call site that grew up against
// fleet.Store) stable across the extraction.
package fleet

import "rpg2/internal/store"

// Key identifies the workload context a profile was collected in.
type Key = store.Key

// Entry is one cached profile.
type Entry = store.Entry

// KeyedEntry pairs a key with its entry: the unit a WAL snapshot persists
// and crash recovery restores.
type KeyedEntry = store.KeyedEntry

// StoreConfig tunes the reuse policy.
type StoreConfig = store.Config

// StoreCounters are the store's cumulative policy counters.
type StoreCounters = store.Counters

// Store is the profile-store interface the fleet runs against; see
// internal/store for the contract and the Memory/Sharded implementations.
type Store = store.Store

// NewStore builds an empty single-shard (Memory) store; zero-value config
// fields get defaults. Sharded stores come from store.New / the fleet's
// StoreShards config knob.
func NewStore(cfg StoreConfig) Store {
	return store.NewMemory(cfg)
}

// newConfiguredStore picks the implementation for a fleet's config:
// Memory for shards <= 1, Sharded otherwise.
func newConfiguredStore(cfg StoreConfig, shards int) Store {
	return store.New(cfg, shards)
}
