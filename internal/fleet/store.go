// The profile store is the fleet's stale-profile-reuse layer: the first
// session on a (benchmark, input, machine) combination pays for full PEBS
// profiling and a cold distance search, then commits what it learned; later
// sessions on a matching combination are warm-started from the cached
// candidate sites and tuned distance, shortening both profiling and search.
// Entries age out after a bounded number of reuses (staleness) and are
// invalidated when a reused distance regresses the miss-site retirement
// rate, so a drifted workload falls back to fresh profiling instead of
// being pinned to a bad distance forever.
package fleet

import (
	"sort"
	"sync"
)

// Key identifies the workload context a profile was collected in. Profiles
// are machine-specific: the paper's central result is that a distance tuned
// for one microarchitecture transplants badly to another.
type Key struct {
	Bench   string `json:"bench"`
	Input   string `json:"input"`
	Machine string `json:"machine"`
}

// Entry is one cached profile: the hot function, its candidate prefetch
// sites, and the distance the search settled on, plus the rates that let a
// later session judge whether the reuse still pays.
type Entry struct {
	// Func is the hot function the sites live in.
	Func string `json:"func"`
	// Candidates are the PEBS candidate load PCs (f0 addresses).
	Candidates []int `json:"candidates"`
	// Distance is the tuned prefetch distance.
	Distance int `json:"distance"`
	// BaselineRate and TunedRate are the miss-site retirement rates
	// observed before and after tuning in the committing session.
	BaselineRate float64 `json:"baseline_rate"`
	TunedRate    float64 `json:"tuned_rate"`
	// Session is the ID of the session that committed the entry.
	Session int `json:"session"`
}

// StoreConfig tunes the reuse policy.
type StoreConfig struct {
	// MaxReuse is how many sessions may warm-start from one committed
	// entry before it is considered stale and evicted, forcing the next
	// session to re-profile from scratch (default 16).
	MaxReuse int
}

// StoreCounters are the store's cumulative policy counters.
type StoreCounters struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Stale         uint64 `json:"stale"`
	Invalidations uint64 `json:"invalidations"`
	Commits       uint64 `json:"commits"`
	// Translations counts sibling entries served across machine types by
	// LookupTranslated; they are deliberately not Hits — a translated seed
	// is a hypothesis, not a cache hit on this machine's profile.
	Translations uint64 `json:"translations,omitempty"`
	// Refunds counts reuse-budget charges returned by Refund after a
	// seeded session failed before its search could run.
	Refunds uint64 `json:"refunds,omitempty"`
}

type storeEntry struct {
	Entry
	gen  uint64 // generation, bumped by every Commit
	uses int    // warm starts served since the last Commit
}

// Store is a concurrency-safe profile cache shared by every session of a
// fleet (and shareable across fleets on the same machine type).
type Store struct {
	cfg StoreConfig

	mu       sync.Mutex
	entries  map[Key]*storeEntry
	gen      uint64
	frozen   bool
	counters StoreCounters
}

// NewStore builds an empty store; zero-value config fields get defaults.
func NewStore(cfg StoreConfig) *Store {
	if cfg.MaxReuse <= 0 {
		cfg.MaxReuse = 16
	}
	return &Store{cfg: cfg, entries: make(map[Key]*storeEntry)}
}

// Lookup returns the cached profile for a key, counting a hit, or reports a
// miss. An entry that has served MaxReuse warm starts is stale: it is
// evicted, counted, and reported as a miss so the caller re-profiles. The
// returned generation must be passed to Invalidate so a racing Commit from
// a concurrent session is not clobbered.
func (s *Store) Lookup(k Key) (Entry, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		s.counters.Misses++
		return Entry{}, 0, false
	}
	if s.frozen {
		s.counters.Hits++
		return e.Entry, e.gen, true
	}
	if e.uses >= s.cfg.MaxReuse {
		delete(s.entries, k)
		s.counters.Stale++
		s.counters.Misses++
		return Entry{}, 0, false
	}
	e.uses++
	s.counters.Hits++
	return e.Entry, e.gen, true
}

// LookupTranslated finds a sibling entry for the same (bench, input) on a
// *different* machine — the source a cross-machine translated warm start
// seeds from after Lookup missed. Siblings are scanned in machine-name
// order so the choice is deterministic regardless of commit interleaving;
// stale siblings are evicted exactly as Lookup would evict them. A serve
// consumes the sibling's reuse budget (a translated seed is still a reuse
// of that profile) and counts Translations, never Hits: the caller's
// Lookup already counted the miss for this machine's key, and the hit
// rate must keep meaning "sessions served by a same-machine profile".
func (s *Store) LookupTranslated(k Key) (Entry, Key, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sibs []Key
	for sk := range s.entries {
		if sk.Bench == k.Bench && sk.Input == k.Input && sk.Machine != k.Machine {
			sibs = append(sibs, sk)
		}
	}
	sort.Slice(sibs, func(i, j int) bool { return sibs[i].Machine < sibs[j].Machine })
	for _, sk := range sibs {
		e := s.entries[sk]
		if !s.frozen && e.uses >= s.cfg.MaxReuse {
			delete(s.entries, sk)
			s.counters.Stale++
			continue
		}
		if !s.frozen {
			e.uses++
		}
		s.counters.Translations++
		return e.Entry, sk, e.gen, true
	}
	return Entry{}, Key{}, 0, false
}

// Peek returns the cached profile for a key without disturbing the policy
// state: no counters move, no reuse budget is consumed, stale entries are
// neither served nor evicted. It is the read-only observation path the
// daemon's store-lookup endpoint uses — an HTTP GET must not age the
// cache.
func (s *Store) Peek(k Key) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok || (!s.frozen && e.uses >= s.cfg.MaxReuse) {
		return Entry{}, false
	}
	return e.Entry, true
}

// PeekTranslated is LookupTranslated's read-only counterpart: it reports
// the sibling entry a translated lookup *would* seed from (same
// deterministic machine-name order), without consuming reuse budget,
// moving counters, or evicting stale siblings.
func (s *Store) PeekTranslated(k Key) (Entry, Key, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sibs []Key
	for sk := range s.entries {
		if sk.Bench == k.Bench && sk.Input == k.Input && sk.Machine != k.Machine {
			sibs = append(sibs, sk)
		}
	}
	sort.Slice(sibs, func(i, j int) bool { return sibs[i].Machine < sibs[j].Machine })
	for _, sk := range sibs {
		e := s.entries[sk]
		if !s.frozen && e.uses >= s.cfg.MaxReuse {
			continue
		}
		return e.Entry, sk, true
	}
	return Entry{}, Key{}, false
}

// Refund returns one reuse-budget charge to an entry whose warm start never
// ran: a seeded session that dies before its search (build or launch
// failure) consumed budget for nothing, and without the refund a string of
// transient failures could stale a perfectly good profile. The generation
// guard makes a refund against a since-refreshed entry a no-op, exactly
// like Invalidate. Reports whether a charge was returned.
func (s *Store) Refund(k Key, gen uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok || e.gen != gen || s.frozen || e.uses <= 0 {
		return false
	}
	e.uses--
	s.counters.Refunds++
	return true
}

// Commit installs (or refreshes) the profile for a key, resetting its reuse
// budget, and returns the new generation.
func (s *Store) Commit(k Key, e Entry) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		return 0
	}
	s.gen++
	s.counters.Commits++
	s.entries[k] = &storeEntry{Entry: e, gen: s.gen}
	return s.gen
}

// Invalidate drops the entry for a key if it is still the generation the
// caller warm-started from; a stale generation (another session already
// committed a fresher profile) is a no-op. Reports whether it dropped.
func (s *Store) Invalidate(k Key, gen uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok || e.gen != gen || s.frozen {
		return false
	}
	delete(s.entries, k)
	s.counters.Invalidations++
	return true
}

// Freeze makes the store read-only: Lookup keeps serving entries (without
// consuming reuse budget), Commit and Invalidate become no-ops. A frozen
// store's responses depend only on its contents, not on the order
// concurrent sessions touch it — the property the deterministic
// warm-started experiments harness relies on.
func (s *Store) Freeze() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frozen = true
}

// Thaw reverses Freeze.
func (s *Store) Thaw() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frozen = false
}

// KeyedEntry pairs a key with its entry: the unit a WAL snapshot persists
// and crash recovery restores.
type KeyedEntry struct {
	Key   Key   `json:"key"`
	Entry Entry `json:"entry"`
}

// Export returns every live entry sorted by key, for deterministic
// snapshots. Reuse budgets and generations are process-local and are not
// exported.
func (s *Store) Export() []KeyedEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]KeyedEntry, 0, len(s.entries))
	for k, e := range s.entries {
		out = append(out, KeyedEntry{Key: k, Entry: e.Entry})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Input != b.Input {
			return a.Input < b.Input
		}
		return a.Machine < b.Machine
	})
	return out
}

// Restore installs recovered entries wholesale, each with a fresh
// generation and a full reuse budget. It is the crash-recovery path, meant
// for a store no session is using yet; it does not touch the policy
// counters (recovered entries were already counted by the process that
// committed them).
func (s *Store) Restore(entries []KeyedEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ke := range entries {
		s.gen++
		s.entries[ke.Key] = &storeEntry{Entry: ke.Entry, gen: s.gen}
	}
}

// Len reports the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Counters returns a snapshot of the policy counters.
func (s *Store) Counters() StoreCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}
