// Package fleet runs RPG² as a long-lived service over many simulated
// target processes at once — the datacenter deployment the paper pitches
// but the seed repo could not express. A Fleet owns an admission queue, a
// bounded worker pool, and a per-session lifecycle state machine wrapping
// the single-process controller; a shared profile store amortises PEBS
// profiling and distance search across sessions on matching workloads; an
// event journal and a metrics layer make the whole thing observable.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rpg2/internal/admission"
	"rpg2/internal/baselines"
	"rpg2/internal/drift"
	"rpg2/internal/faults"
	"rpg2/internal/machine"
	rpgcore "rpg2/internal/rpg2"
	"rpg2/internal/store/remote"
	"rpg2/internal/wal"
	"rpg2/internal/workloads"
)

// State is a session's position in the fleet lifecycle.
type State uint8

// Session lifecycle states. Profiling/Rewriting/Tuning track the
// controller's phases via its OnPhase hook; Done covers the tuned,
// not-activated and target-exited outcomes, RolledBack and Failed are the
// two unhappy endings, and Degraded marks a session parked by an open
// circuit breaker without ever running.
const (
	Queued State = iota
	Profiling
	Rewriting
	Tuning
	Done
	RolledBack
	Failed
	Degraded
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Profiling:
		return "profiling"
	case Rewriting:
		return "rewriting"
	case Tuning:
		return "tuning"
	case Done:
		return "done"
	case RolledBack:
		return "rolled-back"
	case Failed:
		return "failed"
	case Degraded:
		return "degraded"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Terminal reports whether a session in this state is finished.
func (s State) Terminal() bool {
	return s == Done || s == RolledBack || s == Failed || s == Degraded
}

// legalNext enumerates the state machine's edges. Profiling may jump
// straight to Done (not enough samples → not-activated) and any live state
// may fail; everything else moves strictly forward — except the retry
// lane's re-admission edges (Failed → Queued, RolledBack → Queued), which
// start a fresh attempt. Within one attempt, states only advance.
var legalNext = map[State][]State{
	// Queued -> Done covers a target that exits during init-wait,
	// before the controller's first phase hook fires; Queued -> Degraded
	// is a session parked by an open circuit breaker; Queued -> Tuning is
	// a live re-tune dispatch, which skips profiling and rewriting (the
	// injected kernel is already in place — only the distance moves).
	Queued:    {Profiling, Tuning, Done, Failed, Degraded},
	Profiling: {Rewriting, Tuning, Done, RolledBack, Failed},
	Rewriting: {Tuning, Done, RolledBack, Failed},
	Tuning:    {Done, RolledBack, Failed},
	// Retry re-admissions: a failed or rolled-back attempt re-enters the
	// queue as a cold re-profile attempt. Done -> Queued is the re-tune
	// lane: the watchdog re-admits a *successful* session whose tuned
	// distance drifted stale.
	Failed:     {Queued},
	RolledBack: {Queued},
	Done:       {Queued},
}

// Kind selects what a fleet session does with its target. The zero value
// is the full RPG² optimization; the other kinds run the evaluation's
// reference schemes and shared precomputations through the same admission
// queue, worker pool, journal, and metrics — there is exactly one way to
// run work at scale in this repo, and this is it.
type Kind uint8

const (
	// OptimizeJob runs the four-phase controller (the default).
	OptimizeJob Kind = iota
	// BaselineJob runs the unmodified binary and measures it.
	BaselineJob
	// StaticJob runs a statically prefetched build at Spec.Distance.
	StaticJob
	// SweepJob runs an offline distance sweep (Figures 1-3, 8, Table 3).
	SweepJob
	// ProfileJob collects PEBS candidate sites without optimizing.
	ProfileJob
	// APTGETJob derives the APT-GET scheme's analytic distance.
	APTGETJob
)

func (k Kind) String() string {
	switch k {
	case OptimizeJob:
		return "optimize"
	case BaselineJob:
		return "baseline"
	case StaticJob:
		return "static"
	case SweepJob:
		return "sweep"
	case ProfileJob:
		return "profile"
	case APTGETJob:
		return "apt-get"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// SessionSpec names one unit of fleet work: attach RPG² (or a reference
// scheme, per Kind) to a fresh run of a workload and drive it to a
// terminal outcome.
type SessionSpec struct {
	// Bench and Input pick the workload (Input empty for AJ benchmarks).
	Bench string
	Input string
	// Kind selects the job type (default OptimizeJob).
	Kind Kind
	// Priority orders admission: higher-priority sessions dispatch first.
	// Equal priorities dispatch in submission order, and waiting sessions
	// age (Config.AgingStep) so low priority delays work but cannot
	// starve it.
	Priority int
	// Machine, when non-nil, overrides the fleet's machine for this
	// session. The profile store is keyed on the effective machine, so
	// the same bench on two machines never cross-seeds.
	Machine *machine.Machine
	// Seed drives the session controller's randomness.
	Seed int64
	// Config, when non-nil, replaces the fleet's base controller
	// configuration for this optimize session (Seed still comes from
	// Spec.Seed).
	Config *rpgcore.Config
	// Cold forces an optimize session to bypass the profile store
	// entirely: no lookup, no commit, no invalidation. A cold session's
	// result depends only on its spec — the determinism the experiments
	// harness requires.
	Cold bool
	// RunSeconds is the simulated end-of-run clock budget; 0 uses the
	// fleet default, negative skips the post-optimization run entirely.
	RunSeconds float64
	// TailSeconds, when positive, ends the run with a measured trailing
	// window of this length instead of a plain run-out; the result is
	// available via Session.Measurement. Baseline and static jobs
	// default to 1 s.
	TailSeconds float64
	// TailWindows and TailWindowSeconds, when TailWindows > 0, measure a
	// post-detach timeline of consecutive windows after an optimize
	// session (Figure 10); available via Session.Tail.
	TailWindows       int
	TailWindowSeconds float64
	// Distance is the static prefetch distance for StaticJob.
	Distance int
	// Candidates are the prefetch-site PCs for StaticJob; empty means
	// profile them first.
	Candidates []int
	// Sweep configures SweepJob; nil uses the paper's default sweep.
	Sweep *baselines.SweepConfig
	// ProfileSeconds is ProfileJob's sampling window (default 2 s).
	ProfileSeconds float64
	// Tenant names the submitter for per-tenant admission quotas and
	// queue-depth backpressure (Config.TenantQuota, MaxTenantQueue). The
	// empty tenant is exempt from both, so untenanted fleets behave
	// exactly as before the field existed.
	Tenant string
}

// Session is one tracked unit of fleet work over one target process.
type Session struct {
	// ID is the fleet-assigned admission number.
	ID int
	// Spec is what was submitted.
	Spec SessionSpec

	// item is the session's admission-queue handle; its scheduler-owned
	// fields are only touched under the fleet's mutex.
	item *admission.Item

	mu          sync.Mutex
	machineName string
	state       State
	warm        bool
	translated  bool
	attempt     int
	report      *rpgcore.Report
	meas        *rpgcore.Measurement
	sweep       *baselines.Sweep
	cands       []int
	distance    int
	tail        []rpgcore.TimelinePoint
	err         error
	wall        time.Duration

	// Drift-watchdog state (zero/nil unless Config.WatchdogInterval armed
	// the watchdog for this session). live is the in-process core session
	// retained past Done so the watchdog can keep sampling and a re-tune
	// can re-enter the search against the still-injected kernel; det is
	// the session's degradation detector; retunes counts completed
	// re-tunes; retuning marks a granted re-tune that has not completed
	// (its next dispatch is a re-tune, not an optimize); retuneDistance
	// seeds the warm re-tune search; recoveredDet is a crash-recovered
	// detector posture to resume; tier remembers how the session was
	// seeded for its eventual terminal metrics; windowMark is the detector
	// sample count when the current watch episode was armed.
	live           *rpgcore.Session
	det            *drift.Detector
	recoveredDet   *drift.State
	tier           seedTier
	retunes        int
	retuning       bool
	retuneDistance int
	windowMark     int
}

// State returns the session's current lifecycle state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Attempt returns the session's current attempt index: 0 for the first
// admission, incremented by each retry-lane re-admission.
func (s *Session) Attempt() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attempt
}

// Retunes returns how many re-tune lane passes the session completed
// (0 for a session the watchdog never re-admitted).
func (s *Session) Retunes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retunes
}

// Retuning reports whether the session holds a granted re-tune that has
// not completed: its next dispatch re-enters the distance search.
func (s *Session) Retuning() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retuning
}

// Warm reports whether the session was seeded from the profile store.
func (s *Session) Warm() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.warm
}

// Translated reports whether the session was seeded from a sibling
// machine's profile through the translation layer (never true together
// with Warm).
func (s *Session) Translated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.translated
}

// Report returns the controller's report (nil until terminal or on failure
// before optimization started).
func (s *Session) Report() *rpgcore.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// Err returns the failure, if the session failed.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Wall returns the session's wall-clock duration (zero until terminal).
func (s *Session) Wall() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wall
}

// Probes returns the number of distance probes the session's search made.
func (s *Session) Probes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.report == nil {
		return 0
	}
	return s.report.Costs.PDEdits
}

// MachineName returns the effective machine the session runs on.
func (s *Session) MachineName() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.machineName
}

// Measurement returns the end-of-run measurement (nil unless the spec
// requested a trailing window via TailSeconds, or for baseline/static
// jobs, which always measure).
func (s *Session) Measurement() *rpgcore.Measurement {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meas
}

// SweepResult returns a SweepJob's distance sweep (nil otherwise).
func (s *Session) SweepResult() *baselines.Sweep {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweep
}

// Candidates returns a ProfileJob's candidate PCs (nil otherwise).
func (s *Session) Candidates() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cands
}

// Distance returns an APTGETJob's derived distance (0 otherwise).
func (s *Session) Distance() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.distance
}

// Tail returns the post-detach timeline requested via Spec.TailWindows.
func (s *Session) Tail() []rpgcore.TimelinePoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tail
}

// Config tunes a Fleet. The zero value of every field has a sensible
// default except Machine, which must be set.
type Config struct {
	// Machine all sessions run on.
	Machine machine.Machine
	// Workers bounds concurrent sessions (default GOMAXPROCS).
	Workers int
	// RunSeconds is the default simulated post-optimization run budget
	// per session (default 2).
	RunSeconds float64
	// Session is the base controller configuration; each session
	// overrides Seed (and, when warm, the seeding fields).
	Session rpgcore.Config
	// Store shares a profile store across fleets; nil creates a private
	// one (unless DisableStore).
	Store Store
	// Builds is the workload build cache sessions construct targets
	// from; nil uses the process-wide shared cache.
	Builds *workloads.BuildCache
	// StoreConfig configures the private store when Store is nil.
	StoreConfig StoreConfig
	// StoreShards shards the private store by an FNV hash of
	// (bench, input) across this many independently locked shards
	// (store.Sharded), splitting lookup/commit contention across workers;
	// 0 or 1 keeps the single-mutex store.Memory path byte-identical to
	// the pre-sharding fleet. The shard key excludes Machine, so
	// translation lookups never cross shards. Ignored when Store is set
	// or DisableStore is on. When persisting, a sharded store snapshots
	// as per-shard shard-<i>.wal files sealed by a manifest.wal.
	StoreShards int
	// DisableStore turns off profile reuse: every session runs cold.
	DisableStore bool
	// StoreAddr, when set, replaces the in-process store with a client for
	// a shared rpg2-stored daemon at this base URL (e.g.
	// "http://127.0.0.1:8049"), so several fleet processes share one
	// profile store: generations live in the daemon and cross-process
	// commit races resolve exactly like in-process ones. If the daemon
	// becomes unreachable the fleet degrades permanently to a cold
	// process-local store (journaled as a fleet-level "store-degraded"
	// event and surfaced in the snapshot) rather than blocking sessions.
	// Because the daemon owns its own durability, the fleet's WAL stops
	// snapshotting store contents and Recover stops re-importing them.
	// Ignored when Store is set or DisableStore is on; empty (the zero
	// value) keeps the in-process store byte-identical to before.
	StoreAddr string
	// WarmProfileSeconds is the shortened PEBS window for store-seeded
	// sessions (default 0.5; the cold default is the paper's 2 s).
	WarmProfileSeconds float64
	// RegressTolerance is the relative miss-site retirement-rate
	// regression, versus the rate the store entry promised, beyond which
	// a warm session invalidates the entry (default 0.25).
	RegressTolerance float64
	// Translate enables the cross-machine seeding tier: a session whose
	// store lookup misses may warm-start from a sibling entry for the same
	// (bench, input) on another machine, reusing the sibling's candidate
	// sites with its distance scaled by the machines' effective
	// memory-latency ratio (TranslateDistance). Translated sessions search
	// with the cold ±5 span and skip the warm fast-path accept. Off by
	// default: translation adds journal events, and existing runs'
	// byte-determinism must hold.
	Translate bool

	// --- Admission & resilience knobs (internal/admission). The zero
	// value of every knob reproduces the original FIFO fleet exactly. ---

	// Quota bounds concurrent in-flight sessions per (bench, input) so
	// one workload cannot monopolise the worker pool (0 = unlimited).
	Quota int
	// TenantQuota bounds concurrent in-flight sessions per tenant (0 =
	// unlimited; untenanted sessions are exempt), so one submitter cannot
	// monopolise the pool by spreading over many workloads.
	TenantQuota int
	// MaxQueue bounds the total number of waiting sessions: Submit
	// returns an *OverloadError (429 through the daemon) instead of
	// growing the queue past it (0 = unbounded, the pre-daemon
	// behavior). Recovery re-admissions and retry-lane re-entries are
	// exempt — backpressure sheds new work, never committed work.
	MaxQueue int
	// MaxTenantQueue bounds one tenant's waiting sessions the same way
	// (0 = unbounded; untenanted sessions are exempt).
	MaxTenantQueue int
	// MaxRetries re-admits Failed and RolledBack sessions as cold
	// re-profile attempts, up to this many times per session (0 = retry
	// lane disabled). Retried attempts derive a fresh deterministic seed
	// from (Spec.Seed, attempt) and bypass the profile store.
	MaxRetries int
	// RetryBackoff is the first retry's backoff in virtual seconds
	// (default 0.5); attempt n waits RetryBackoff·2^(n-1), capped at
	// RetryBackoffCap (default 8). Backoff consumes the scheduler's
	// deterministic virtual clock, never wall time.
	RetryBackoff    float64
	RetryBackoffCap float64
	// AgingStep is how many dispatches raise a waiting session's
	// effective priority by one (default 8; negative disables aging).
	AgingStep int
	// BreakerThreshold trips a per-(bench, input) circuit breaker after
	// this many consecutive rollbacks; further optimize sessions on that
	// key are parked in the Degraded outcome instead of burning probes
	// (0 = breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open in
	// virtual seconds before admitting one half-open recovery trial
	// (default 16).
	BreakerCooldown float64
	// Faults, when non-nil, injects deterministic failures at the
	// controller's profile/rewrite/OSR boundaries — the test harness for
	// the retry and breaker machinery.
	Faults *faults.Injector

	// --- Continuous re-tuning knobs (internal/drift). WatchdogInterval 0
	// (the zero value) disables the watchdog entirely: no post-activation
	// sampling, no drift events, and journals, metrics, and WAL files stay
	// byte-identical to a fleet without the subsystem. ---

	// WatchdogInterval arms the phase-drift watchdog: after a tuned
	// optimize session activates, the fleet keeps the target attached
	// through its run budget and samples the miss-site retirement rate
	// every this many simulated seconds. A session whose smoothed rate
	// sustains a drop past WatchdogThreshold versus the rate recorded at
	// activation is re-admitted into the admission queue's re-tune lane.
	WatchdogInterval float64
	// WatchdogWindow is the measured window per watchdog sample in
	// simulated seconds (default 0.2) — the sampler's whole overhead.
	WatchdogWindow float64
	// WatchdogThreshold is the relative degradation versus the activation
	// rate beyond which a sample counts as degraded (default 0.25).
	WatchdogThreshold float64
	// WatchdogHysteresis is how many consecutive degraded samples fire the
	// watchdog (default 3); one good sample resets the count.
	WatchdogHysteresis int
	// MaxRetunes bounds re-tune lane admissions per session (default 1
	// when the watchdog is armed). The lane is distinct from MaxRetries:
	// it re-admits *successful* sessions whose tuned distance went stale,
	// seeds the next search from the current distance instead of cold, and
	// never consumes (or is consumed by) the retry budget.
	MaxRetunes int
	// RetuneDelay is the fixed virtual-seconds delay before a scheduled
	// re-tune dispatches (default 0.5). Unlike retry backoff it does not
	// grow exponentially: a re-tune is expected maintenance, not a
	// suspect failure.
	RetuneDelay float64
	// RetuneCold makes re-tunes restart the distance search from a random
	// initial distance instead of warm-seeding from the drifted session's
	// installed distance — the ablation baseline TableDrift compares the
	// warm lane against.
	RetuneCold bool

	// --- Persistence knobs (internal/wal). StateDir empty (the zero
	// value) keeps the fleet purely in-memory, byte-identical to the
	// pre-WAL fleet. ---

	// StateDir, when set, makes the fleet crash-safe: every journal event
	// is teed into an append-only checksummed WAL under this directory and
	// the profile store plus scheduler state snapshot periodically, so
	// Recover can rebuild the fleet after a crash. An unusable directory
	// degrades the fleet to in-memory mode instead of failing it.
	StateDir string
	// Fsync is the WAL durability policy (default wal.SyncInterval: fsync
	// every FsyncInterval appends and on close).
	Fsync wal.SyncMode
	// FsyncInterval is the append count between fsyncs under
	// wal.SyncInterval (default 64).
	FsyncInterval int
	// SnapshotEvery is how many store commits trigger a fresh snapshot
	// (default 8).
	SnapshotEvery int
	// Overwrite lets New start a fresh epoch over a state dir whose
	// journal still holds unfinished sessions. Without it, New refuses to
	// destroy recoverable state: the fleet runs degraded (in-memory) with
	// the refusal surfaced in the health snapshot, and the state dir stays
	// exactly as the crash left it for Recover. Recover itself consumes
	// the old state and overwrites implicitly.
	Overwrite bool
	// DiskFaults, when non-nil, injects deterministic disk faults (write,
	// fsync, snapshot-write errors) into the persistence layer — the chaos
	// knob that exercises the degrade/re-arm arc on demand. Decisions are
	// pure hashes of (injector seed, file key, operation ordinal), so the
	// same faults fire at the same operations regardless of worker count.
	DiskFaults *faults.DiskInjector
	// RearmBackoff is how many journal events a degraded persister waits
	// before attempting to re-arm (snapshot live state into a fresh epoch
	// and resume the WAL). 0 means the default (64); negative disables
	// re-arming, restoring the old "first disk error degrades forever"
	// behavior. The clock is journal events, not wall time: deterministic
	// in tests, and an idle fleet never churns a disk it just failed on.
	RearmBackoff int
	// RearmBackoffCap bounds the per-failure doubling of the re-arm
	// backoff (default 8x RearmBackoff).
	RearmBackoffCap int
}

func (c Config) defaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RunSeconds == 0 {
		c.RunSeconds = 2
	}
	if c.WarmProfileSeconds == 0 {
		c.WarmProfileSeconds = 0.5
	}
	if c.RegressTolerance == 0 {
		c.RegressTolerance = 0.25
	}
	if c.Builds == nil {
		c.Builds = workloads.SharedCache()
	}
	if c.WatchdogInterval > 0 {
		if c.WatchdogWindow == 0 {
			c.WatchdogWindow = 0.2
		}
		if c.MaxRetunes == 0 {
			c.MaxRetunes = 1
		}
	}
	return c
}

// ErrClosed is the typed error Submit returns after Close (the facade
// exports it as ErrFleetClosed). Use errors.Is to test for it.
var ErrClosed = errors.New("fleet: closed to new sessions")

// ErrOverloaded is the sentinel every backpressure rejection matches via
// errors.Is; the concrete error is an *OverloadError carrying which cap
// tripped.
var ErrOverloaded = errors.New("fleet: queue overloaded")

// OverloadError is Submit's backpressure rejection: the queue (global or
// one tenant's share) is at its configured cap. The daemon maps it to
// HTTP 429 with a Retry-After derived from current throughput.
type OverloadError struct {
	// Scope is "global" or "tenant".
	Scope string
	// Tenant is the rejected tenant (empty for global rejections).
	Tenant string
	// Depth is the waiting-session count that tripped the cap.
	Depth int
	// Cap is the configured ceiling that was hit.
	Cap int
}

func (e *OverloadError) Error() string {
	if e.Scope == "tenant" {
		return fmt.Sprintf("fleet: queue overloaded: tenant %q has %d sessions waiting (cap %d)",
			e.Tenant, e.Depth, e.Cap)
	}
	return fmt.Sprintf("fleet: queue overloaded: %d sessions waiting (cap %d)", e.Depth, e.Cap)
}

// Is makes errors.Is(err, ErrOverloaded) match any overload rejection.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// Fleet is the long-lived service: submit sessions, drain, snapshot.
type Fleet struct {
	cfg     Config
	store   Store
	journal *Journal
	metrics *metrics
	persist *persister // nil when StateDir is unset: pure in-memory

	mu        sync.Mutex
	cond      *sync.Cond
	sched     *admission.Queue
	inflight  int
	nextID    int
	queuePeak int
	closed    bool
	sessions  []*Session

	workers sync.WaitGroup
	// snapMu serializes persistSnapshot: state capture and the atomic
	// snapshot replace happen one at a time, so concurrent workers never
	// interleave writes through the snapshot's shared temp file.
	snapMu sync.Mutex

	// Remote-store degrade state (Config.StoreAddr): the client fires
	// OnDegrade exactly once; the error lands before the flag flips so
	// Snapshot never reads a degraded status with no cause.
	storeDegraded atomic.Bool
	storeErr      atomic.Pointer[string]
}

// New starts a fleet: the worker pool is live immediately and sessions run
// as they are submitted. Call Close when done admitting.
func New(cfg Config) *Fleet {
	f := newFleet(cfg)
	f.initPersist()
	f.commitPersist()
	f.startWorkers()
	return f
}

// newFleet builds the fleet's in-memory core: store, journal, scheduler.
// No workers run yet and no state is on disk — Recover uses this window to
// restore recovered state before persistence and dispatch start.
func newFleet(cfg Config) *Fleet {
	cfg = cfg.defaults()
	f := &Fleet{
		cfg:     cfg,
		store:   cfg.Store,
		journal: NewJournal(),
		metrics: newMetrics(),
		sched: admission.NewQueue(admission.Config{
			Quota:            cfg.Quota,
			TenantQuota:      cfg.TenantQuota,
			MaxRetries:       cfg.MaxRetries,
			MaxRetunes:       cfg.MaxRetunes,
			RetuneDelay:      cfg.RetuneDelay,
			BackoffBase:      cfg.RetryBackoff,
			BackoffCap:       cfg.RetryBackoffCap,
			AgingStep:        cfg.AgingStep,
			BreakerThreshold: cfg.BreakerThreshold,
			BreakerCooldown:  cfg.BreakerCooldown,
		}),
	}
	if f.store == nil && !cfg.DisableStore {
		if cfg.StoreAddr != "" {
			// Shared out-of-process store. The fallback mirrors the
			// in-process configuration, so a degraded fleet behaves exactly
			// like one that was never pointed at a daemon — just cold.
			f.store = remote.New(remote.Config{
				BaseURL:        cfg.StoreAddr,
				FallbackConfig: cfg.StoreConfig,
				FallbackShards: cfg.StoreShards,
				OnDegrade: func(err error) {
					msg := err.Error()
					f.storeErr.Store(&msg)
					f.storeDegraded.Store(true)
					f.journal.add(Event{Session: -1, Type: "store-degraded", Reason: cfg.StoreAddr, Err: msg})
				},
			})
		} else {
			f.store = newConfiguredStore(cfg.StoreConfig, cfg.StoreShards)
		}
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// initPersist stages the WAL epoch when StateDir is set: the epoch's
// initial snapshot (carrying any recovered store and scheduler state)
// lands atomically on disk first, then a staged journal opens for
// appends; commitPersist publishes it over the previous epoch's journal.
// An unusable state dir degrades the fleet instead of failing it — and so
// does a state dir still holding an interrupted run, unless the caller
// explicitly opted into discarding it (Config.Overwrite) or is Recover,
// which consumes that state. Either way the old files are untouched.
func (f *Fleet) initPersist() {
	if f.cfg.StateDir == "" {
		return
	}
	if !f.cfg.Overwrite {
		if n := PendingSessions(f.cfg.StateDir); n > 0 {
			f.persist = degradedPersister(f.cfg.StateDir, fmt.Errorf(
				"state dir holds an interrupted run (%d unfinished sessions); Recover it (-resume) or set Overwrite (-fresh) to discard it", n))
			return
		}
	}
	p, err := openPersister(f.cfg.StateDir, f.cfg, f.sched.Export(), f.captureDrift(), f.captureStore())
	if err != nil {
		f.persist = degradedPersister(f.cfg.StateDir, err)
		return
	}
	f.persist = p
	f.journal.SetSink(p.appendEvent)
}

// commitPersist publishes the staged journal over the previous epoch's.
// Recover calls it only after re-admitting the old journal's pending
// sessions, so their "queued" records are inside the file before it takes
// the journal's name.
func (f *Fleet) commitPersist() {
	if f.persist != nil {
		f.persist.commitJournal()
	}
}

// startWorkers brings the dispatch pool up.
func (f *Fleet) startWorkers() {
	for i := 0; i < f.cfg.Workers; i++ {
		f.workers.Add(1)
		go f.worker()
	}
}

// Store returns the fleet's profile store (nil when disabled).
func (f *Fleet) Store() Store {
	if f.cfg.DisableStore {
		return nil
	}
	return f.store
}

// Journal returns the fleet's event journal.
func (f *Fleet) Journal() *Journal { return f.journal }

// Sessions returns every admitted session in admission order.
func (f *Fleet) Sessions() []*Session {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Session, len(f.sessions))
	copy(out, f.sessions)
	return out
}

// Submit admits one session to the queue and returns its handle. After
// Close it returns ErrClosed; when a queue-depth cap (Config.MaxQueue,
// MaxTenantQueue) is hit it returns an *OverloadError (errors.Is
// ErrOverloaded) and admits nothing.
func (f *Fleet) Submit(spec SessionSpec) (*Session, error) {
	return f.submit(spec, 0, true)
}

// submitRecovered re-admits a session recovered from the WAL as the given
// attempt; the attempt machinery makes a crash-interrupted attempt re-run
// cold with a derived seed, exactly like a retried failure. Recovery
// bypasses backpressure: this work was already admitted once, shedding it
// now would turn a crash into data loss.
func (f *Fleet) submitRecovered(spec SessionSpec, attempt int) *Session {
	s, _ := f.submit(spec, attempt, false)
	return s
}

func (f *Fleet) submit(spec SessionSpec, attempt int, enforceCaps bool) (*Session, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	if enforceCaps {
		if n := f.sched.Len(); f.cfg.MaxQueue > 0 && n >= f.cfg.MaxQueue {
			f.mu.Unlock()
			return nil, &OverloadError{Scope: "global", Depth: n, Cap: f.cfg.MaxQueue}
		}
		if t := spec.Tenant; t != "" && f.cfg.MaxTenantQueue > 0 {
			if n := f.sched.TenantDepth(t); n >= f.cfg.MaxTenantQueue {
				f.mu.Unlock()
				return nil, &OverloadError{Scope: "tenant", Tenant: t, Depth: n, Cap: f.cfg.MaxTenantQueue}
			}
		}
	}
	s := &Session{ID: f.nextID, Spec: spec, state: Queued, attempt: attempt}
	s.machineName = f.cfg.Machine.Name
	if spec.Machine != nil {
		s.machineName = spec.Machine.Name
	}
	s.item = &admission.Item{
		ID:        s.ID,
		Key:       admission.Key{Bench: spec.Bench, Input: spec.Input},
		Priority:  spec.Priority,
		Breakable: spec.Kind == OptimizeJob,
		Payload:   s,
		Attempt:   attempt,
		Tenant:    spec.Tenant,
	}
	f.nextID++
	f.sched.Push(s.item)
	f.sessions = append(f.sessions, s)
	if n := f.sched.Len(); n > f.queuePeak {
		f.queuePeak = n
	}
	f.mu.Unlock()

	f.metrics.submit()
	ev := Event{
		Session: s.ID, Type: "queued", Kind: spec.Kind.String(),
		Bench: spec.Bench, Input: spec.Input, Machine: s.machineName,
		State: Queued.String(), Priority: spec.Priority, Attempt: attempt,
		Tenant: spec.Tenant,
	}
	if f.persist != nil {
		// The replayable spec rides the WAL so recovery can re-admit this
		// session if it never finishes; in-memory journals skip it to stay
		// byte-identical to the pre-WAL fleet.
		ev.Spec = recordSpec(spec)
	}
	f.journal.add(ev)
	f.cond.Broadcast()
	return s, nil
}

// Drain blocks until every admitted session has reached a terminal state
// (including pending retry-lane re-admissions). It is safe to call
// repeatedly and after Close.
func (f *Fleet) Drain() {
	f.mu.Lock()
	for !f.sched.Empty() || f.inflight > 0 {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// Close stops admission, drains the queue (including the retry lane), and
// stops the workers. When persisting, it then writes a final snapshot and
// flushes and closes the WAL, so a cleanly closed state dir resumes
// without replaying anything. Close is idempotent: repeated or concurrent
// calls all block until the pool has shut down.
func (f *Fleet) Close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.cond.Broadcast()
	f.workers.Wait()
	if f.persist != nil {
		f.persistSnapshot()
		f.persist.close()
	}
}

// tendPersist is the persistence layer's between-sessions heartbeat,
// called by workers outside both the fleet and journal locks. A healthy
// persister gets its periodic snapshot; a degraded one gets its
// degradation journaled (once) and, when the event-counted backoff has
// run out, a re-arm attempt — claimed by exactly one worker.
func (f *Fleet) tendPersist() {
	if f.persist == nil {
		return
	}
	if msg, n, ok := f.persist.takeDegradeNotice(); ok {
		f.journal.add(Event{Session: -1, Type: "persist-degraded", Err: msg, Attempt: n})
	}
	if attempt, ok := f.persist.claimRearm(); ok {
		f.rearmPersist(attempt)
		return
	}
	f.maybePersistSnapshot()
}

// rearmPersist runs one claimed re-arm attempt: journal it, capture live
// state under snapMu exactly like a periodic snapshot, and hand the
// persister its fresh epoch. Success is journaled from the far side — the
// "persist-rearmed" record is the first event guaranteed to land in the
// re-seeded WAL.
func (f *Fleet) rearmPersist(attempt int) {
	f.journal.add(Event{Session: -1, Type: "persist-rearm", Attempt: attempt})
	f.snapMu.Lock()
	defer f.snapMu.Unlock()
	f.mu.Lock()
	sched := f.sched.Export()
	dr := f.captureDriftLocked()
	f.mu.Unlock()
	if err := f.persist.rearm(f.journal, sched, dr, f.captureStore()); err != nil {
		return
	}
	f.journal.add(Event{Session: -1, Type: "persist-rearmed", Attempt: attempt})
}

// maybePersistSnapshot writes a fresh snapshot if enough store commits
// accumulated since the last one. claimSnapshot grants the threshold
// crossing to exactly one worker.
func (f *Fleet) maybePersistSnapshot() {
	if f.persist == nil || !f.persist.claimSnapshot() {
		return
	}
	f.persistSnapshot()
}

// persistSnapshot captures and writes a snapshot, one at a time (snapMu):
// unserialized writers would share WriteAtomic's temp file and could
// rename a torn snapshot into place. The watermark is read BEFORE the
// store export: store mutations precede their journal events, so the
// export folds in every event up to the watermark and replaying anything
// newer on top of it is idempotent.
func (f *Fleet) persistSnapshot() {
	f.snapMu.Lock()
	defer f.snapMu.Unlock()
	w := f.persist.watermark()
	f.mu.Lock()
	sched := f.sched.Export()
	dr := f.captureDriftLocked()
	f.mu.Unlock()
	f.persist.writeSnapshot(w, sched, dr, f.captureStore())
}

// captureStore snapshots the store's contents in its shard layout, for a
// WAL snapshot: one entry slice per shard (a single slice for Memory or a
// disabled store). Per-shard exports are taken one shard lock at a time —
// the manifest's journal watermark, not a global freeze, is what makes the
// recovered whole consistent.
func (f *Fleet) captureStore() storeState {
	// A remote store is the daemon's to persist: snapshotting its contents
	// into this fleet's WAL would re-import another process's entries (and
	// stale generations) on recovery, so the WAL records an empty store.
	if f.store == nil || f.cfg.DisableStore || f.cfg.StoreAddr != "" {
		return storeState{shards: 1, perShard: [][]KeyedEntry{nil}}
	}
	n := f.store.Shards()
	ss := storeState{shards: n, perShard: make([][]KeyedEntry, n)}
	for i := 0; i < n; i++ {
		ss.perShard[i] = f.store.ExportShard(i)
	}
	return ss
}

// CancelQueued fails every session still waiting in the queue or retry
// lane with ErrCanceled, leaving in-flight sessions to finish; it returns
// the number cancelled. This is the graceful-shutdown path: cancel, drain
// the in-flight remainder, then snapshot.
func (f *Fleet) CancelQueued() int {
	n := 0
	for {
		f.mu.Lock()
		it, ok := f.sched.Evict()
		f.mu.Unlock()
		if !ok {
			break
		}
		s := it.Payload.(*Session)
		f.transition(s, Failed, 0)
		s.mu.Lock()
		s.err = ErrCanceled
		s.mu.Unlock()
		f.metrics.fail(0)
		f.journal.add(Event{
			Session: s.ID, Type: "session-failed", State: Failed.String(),
			Kind:  s.Spec.Kind.String(),
			Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: s.MachineName(),
			Attempt: it.Attempt, Err: ErrCanceled.Error(),
		})
		n++
	}
	f.cond.Broadcast()
	return n
}

// ErrCanceled marks sessions failed by CancelQueued before they ran.
var ErrCanceled = errors.New("fleet: session cancelled before dispatch")

// DegradeQueued parks one still-queued session as Degraded and returns
// whether it found it waiting. It is the daemon's panic-recovery path: a
// handler that panicked mid-submit leaves a session whose client may never
// learn its ID, so the safe disposition is a terminal parked state rather
// than silently running work nobody can claim. Sessions already dispatched
// are left alone (they finish normally).
func (f *Fleet) DegradeQueued(id int) bool {
	f.mu.Lock()
	it, ok := f.sched.EvictWhere(func(payload any) bool {
		s, isSession := payload.(*Session)
		return isSession && s.ID == id
	})
	f.mu.Unlock()
	if !ok {
		return false
	}
	s := it.Payload.(*Session)
	f.transition(s, Degraded, 0)
	f.metrics.degrade(0)
	f.journal.add(Event{
		Session: s.ID, Type: "session-degraded", State: Degraded.String(),
		Kind:  s.Spec.Kind.String(),
		Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: s.MachineName(),
		Attempt: it.Attempt,
	})
	f.cond.Broadcast()
	return true
}

// RecordPanic journals a recovered daemon handler panic as a fleet-level
// event, so the incident is durable (and replay-safe: recovery ignores
// fleet-level event types it does not know).
func (f *Fleet) RecordPanic(route, msg string) {
	f.journal.add(Event{Session: -1, Type: "handler-panic", Reason: route, Err: msg})
	f.metrics.panicked()
}

// Run is the batch convenience: submit all specs, drain, return the
// sessions. The fleet stays open for more work afterwards.
func (f *Fleet) Run(specs []SessionSpec) ([]*Session, error) {
	out := make([]*Session, 0, len(specs))
	for _, spec := range specs {
		s, err := f.Submit(spec)
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	f.Drain()
	return out, nil
}

// Snapshot freezes the fleet-wide metrics.
func (f *Fleet) Snapshot() Snapshot {
	f.mu.Lock()
	workers, peak := f.cfg.Workers, f.queuePeak
	depth := f.sched.Len()
	tenants := f.sched.TenantDepths()
	sched := f.sched.Stats()
	open := f.sched.OpenBreakers()
	breakers := f.sched.Breakers()
	f.mu.Unlock()
	var st Store
	if !f.cfg.DisableStore {
		st = f.store
	}
	snap := f.metrics.snapshot(st, f.cfg.Builds, workers, peak, depth, tenants, sched, open, breakers)
	if f.persist != nil {
		f.persist.health(&snap)
	}
	if f.cfg.StoreAddr != "" && !f.cfg.DisableStore {
		snap.RemoteStore = "active"
		if f.storeDegraded.Load() {
			snap.RemoteStore = "degraded"
			if msg := f.storeErr.Load(); msg != nil {
				snap.RemoteStoreError = *msg
			}
		}
	}
	return snap
}

// Builds returns the fleet's workload build cache.
func (f *Fleet) Builds() *workloads.BuildCache { return f.cfg.Builds }

// Machine returns the fleet's default machine (the one sessions run on
// when their spec does not override it).
func (f *Fleet) Machine() machine.Machine { return f.cfg.Machine }

// worker pulls dispatch decisions from the admission scheduler until the
// fleet is closed and fully drained. A false Pop means everything waiting
// is quota-blocked (or nothing is waiting): the worker sleeps until a
// completion or submission changes the picture.
func (f *Fleet) worker() {
	defer f.workers.Done()
	for {
		f.mu.Lock()
		var dec admission.Decision
		for {
			var ok bool
			if dec, ok = f.sched.Pop(); ok {
				break
			}
			if f.closed && f.sched.Empty() && f.inflight == 0 {
				f.mu.Unlock()
				f.cond.Broadcast()
				return
			}
			f.cond.Wait()
		}
		f.inflight++
		f.mu.Unlock()

		s := dec.Item.Payload.(*Session)
		f.journal.add(Event{
			Session: s.ID, Type: "admitted", Kind: s.Spec.Kind.String(),
			Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: s.MachineName(),
			Attempt: dec.Item.Attempt, Priority: s.Spec.Priority,
			Wait: dec.Waited,
		})
		if dec.Parked {
			f.parkSession(s)
		} else {
			f.runSession(s)
		}
		f.tendPersist()

		f.mu.Lock()
		f.sched.ReleaseItem(dec.Item)
		f.inflight--
		f.mu.Unlock()
		f.cond.Broadcast()
	}
}

// parkSession terminates a session the circuit breaker refused to run. A
// parked session never dispatches, so its wall time is exactly zero by
// definition — no wall-clock read, so the parked path stays as
// deterministic as the virtual-clock scheduling that parked it. (The
// other time.Now uses in this package — journal Wall stamps, session wall
// latencies, SessionsPerSec — are observability-only wall metrics;
// admission, retry, and breaker decisions all run on the scheduler's
// virtual clock, and the byte-identity CI checks strip wall fields.)
func (f *Fleet) parkSession(s *Session) {
	f.transition(s, Degraded, 0)
	s.mu.Lock()
	s.wall = 0
	s.mu.Unlock()
	f.metrics.degrade(s.Wall())
	f.journal.add(Event{
		Session: s.ID, Type: "session-degraded", State: Degraded.String(),
		Kind:  s.Spec.Kind.String(),
		Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: s.MachineName(),
		Attempt: s.Attempt(),
	})
}

// tryRetryLocked re-admits a Failed or RolledBack session through the
// backoff lane if budget remains, journaling the decision before the
// state edge so the item is never visible to workers in a stale state.
// Caller holds f.mu.
func (f *Fleet) tryRetryLocked(s *Session) bool {
	backoff, due, ok := f.sched.Retry(s.item)
	if !ok {
		return false
	}
	f.journal.add(Event{
		Session: s.ID, Type: "retry-scheduled", Kind: s.Spec.Kind.String(),
		Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: s.MachineName(),
		Attempt: s.item.Attempt, Backoff: backoff, Due: due,
	})
	f.transition(s, Queued, 0)
	s.mu.Lock()
	s.attempt = s.item.Attempt
	s.mu.Unlock()
	f.metrics.retry()
	if n := f.sched.Len(); n > f.queuePeak {
		f.queuePeak = n
	}
	return true
}

// reportBreakerLocked feeds an optimize attempt's outcome to its key's
// breaker and journals any trip or recovery. Caller holds f.mu.
func (f *Fleet) reportBreakerLocked(s *Session, o admission.Outcome) {
	opened, closed := f.sched.Report(s.item.Key, o)
	if opened {
		f.journal.add(Event{
			Session: s.ID, Type: "breaker-open",
			Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: s.MachineName(),
		})
	}
	if closed {
		f.journal.add(Event{
			Session: s.ID, Type: "breaker-closed",
			Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: s.MachineName(),
		})
	}
}

// transition moves a session along the state machine, journaling the edge.
// An illegal edge is a controller bug; it panics rather than silently
// corrupting the lifecycle invariants the tests assert on.
func (f *Fleet) transition(s *Session, next State, at float64) {
	s.mu.Lock()
	cur := s.state
	if cur == next {
		s.mu.Unlock()
		return
	}
	ok := false
	for _, t := range legalNext[cur] {
		if t == next {
			ok = true
			break
		}
	}
	if !ok {
		s.mu.Unlock()
		panic(fmt.Sprintf("fleet: illegal transition %v -> %v (session %d)", cur, next, s.ID))
	}
	s.state = next
	s.mu.Unlock()
	f.journal.add(Event{
		Session: s.ID, Type: "state", State: next.String(), At: at,
		Bench: s.Spec.Bench, Input: s.Spec.Input,
	})
}

func (f *Fleet) failSession(s *Session, started time.Time, err error) {
	f.transition(s, Failed, 0)
	s.mu.Lock()
	s.err = err
	s.wall = time.Since(started)
	s.mu.Unlock()
	f.journal.add(Event{
		Session: s.ID, Type: "session-failed", State: Failed.String(),
		Kind:  s.Spec.Kind.String(),
		Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: s.MachineName(),
		Attempt: s.Attempt(), Err: err.Error(),
	})
	f.mu.Lock()
	if s.item.Breakable {
		f.reportBreakerLocked(s, admission.Failure)
	}
	retried := f.tryRetryLocked(s)
	f.mu.Unlock()
	if !retried {
		f.metrics.fail(s.Wall())
	}
}

// machineFor resolves a session's effective machine.
func (f *Fleet) machineFor(s *Session) machine.Machine {
	if s.Spec.Machine != nil {
		return *s.Spec.Machine
	}
	return f.cfg.Machine
}

// runSeconds resolves a session's end-of-run clock budget; ok is false
// when the spec opted out of the post-optimization run.
func (f *Fleet) runSeconds(s *Session) (float64, bool) {
	run := s.Spec.RunSeconds
	if run == 0 {
		run = f.cfg.RunSeconds
	}
	return run, run > 0
}

// finishAux completes a non-optimize session with its terminal
// bookkeeping.
func (f *Fleet) finishAux(s *Session, started time.Time) {
	f.transition(s, Done, 0)
	s.mu.Lock()
	s.wall = time.Since(started)
	s.mu.Unlock()
	f.metrics.finishAux(s.Spec.Kind.String(), s.Wall())
	f.journal.add(Event{
		Session: s.ID, Type: "session-done", State: Done.String(),
		Kind:  s.Spec.Kind.String(),
		Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: s.MachineName(),
	})
}

// retrySeedStride separates consecutive attempts' controller seeds; any
// large odd constant works, it only has to be deterministic.
const retrySeedStride = 1_000_003

// retuneSeedStride separates re-tune passes' controller seeds the same
// way, on an axis independent of the retry attempt's.
const retuneSeedStride = 7_368_787

// runSession dispatches one admitted session to its kind's runner.
func (f *Fleet) runSession(s *Session) {
	started := time.Now()
	s.mu.Lock()
	s.err = nil // a retry attempt supersedes the previous attempt's error
	s.mu.Unlock()
	m := f.machineFor(s)
	switch s.Spec.Kind {
	case BaselineJob:
		f.runBaseline(s, started, m)
	case StaticJob:
		f.runStatic(s, started, m)
	case SweepJob:
		f.runSweep(s, started, m)
	case ProfileJob:
		f.runProfile(s, started, m)
	case APTGETJob:
		f.runAPTGET(s, started, m)
	default:
		if s.Retuning() {
			f.runRetune(s, started, m)
			return
		}
		f.runOptimize(s, started, m)
	}
}

// runOptimize drives one optimize session end to end: store lookup (unless
// cold), launch from the build cache, optimize under the phase hook,
// post-run, store policy, terminal bookkeeping.
func (f *Fleet) runOptimize(s *Session, started time.Time, m machine.Machine) {
	// The store key uses the session's *effective* machine: a distance
	// tuned on one microarchitecture transplants badly to another
	// (Figure 3), so the same bench on two machines must never
	// cross-seed.
	key := Key{Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: m.Name}

	cfg := f.cfg.Session
	if s.Spec.Config != nil {
		cfg = *s.Spec.Config
	}
	attempt := s.Attempt()
	// A session re-dispatched through the re-tune lane whose live target
	// died with a previous process (crash recovery) falls back to a full
	// re-optimize here, still under the lane's discipline: store bypassed,
	// search warm-seeded from the persisted distance.
	retuning := s.Retuning()
	granted := 0
	if retuning {
		f.mu.Lock()
		granted = s.item.Retune
		f.mu.Unlock()
	}
	// Each retry attempt derives a fresh deterministic seed so a rolled-
	// back search does not replay the same random starting distance;
	// re-tune passes stride on an independent axis.
	cfg.Seed = s.Spec.Seed + int64(attempt)*retrySeedStride + int64(granted)*retuneSeedStride
	if f.cfg.Faults != nil {
		userFault := cfg.FaultHook
		injected := f.cfg.Faults.Hook(s.Spec.Seed, attempt)
		cfg.FaultHook = func(stage string) error {
			if userFault != nil {
				if err := userFault(stage); err != nil {
					return err
				}
			}
			return injected(stage)
		}
	}

	// Retry attempts run cold by design: the cached profile (or the luck
	// of the first attempt) is suspect, so they re-profile from scratch.
	// Re-tune fallbacks run cold too: the lane never touches the store.
	cold := s.Spec.Cold || f.cfg.DisableStore || attempt > 0 || retuning
	var seed Entry
	var seedGen uint64
	var seedKey Key
	warm := false
	translated := false
	if cold {
		// A bypassed store is still demand on the store: journal why this
		// session never asked, so snapshot accounting sees every optimize
		// attempt make exactly one store disposition.
		reason := "cold"
		switch {
		case retuning:
			reason = "retune"
		case attempt > 0:
			reason = "retry"
		case f.cfg.DisableStore:
			reason = "disabled"
		}
		f.metrics.bypass(reason)
		f.journal.add(Event{
			Session: s.ID, Type: "store-bypass", Reason: reason,
			Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: m.Name,
			Attempt: attempt, Retune: granted,
		})
	} else {
		if e, gen, ok := f.store.Lookup(key); ok {
			warm, seed, seedGen, seedKey = true, e, gen, key
			cfg.SeedFunc = e.Func
			cfg.SeedCandidates = e.Candidates
			cfg.SeedDistance = e.Distance
			cfg.ProfileSeconds = f.cfg.WarmProfileSeconds
		} else if f.cfg.Translate {
			// Third tier: no profile for this machine, but a sibling
			// machine's profile for the same workload can seed a
			// hypothesis — its candidates as-is, its distance scaled by
			// the memory-latency ratio. The search validates the
			// hypothesis with the full cold span (Config.SeedTranslated).
			if e, src, gen, ok := f.store.LookupTranslated(key); ok {
				if sm, known := machine.ByName(src.Machine); !known {
					// A sibling from a machine this build cannot model
					// (e.g. a foreign snapshot) is unusable: return the
					// reuse charge and fall through to a cold start.
					f.store.Refund(src, gen)
				} else {
					translated = true
					seed, seedGen, seedKey = e, gen, src
					cfg.SeedFunc = e.Func
					cfg.SeedCandidates = e.Candidates
					cfg.SeedDistance = TranslateDistance(sm, m, e.Distance,
						cfg.Defaults().MaxDistance)
					cfg.SeedTranslated = true
					cfg.ProfileSeconds = f.cfg.WarmProfileSeconds
				}
			}
		}
		switch {
		case warm:
			f.journal.add(Event{
				Session: s.ID, Type: "store-hit", Warm: true,
				Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: m.Name,
			})
		case translated:
			f.journal.add(Event{
				Session: s.ID, Type: "store-translated", Translated: true,
				Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: m.Name,
				Source: seedKey.Machine, Distance: cfg.SeedDistance,
			})
		default:
			f.journal.add(Event{
				Session: s.ID, Type: "store-miss",
				Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: m.Name,
			})
		}
	}
	if retuning && !f.cfg.RetuneCold {
		// The lane's warm seed: re-enter the search from the distance the
		// drifted session had installed, with the warm ±2 gradient span.
		s.mu.Lock()
		if s.retuneDistance > 0 {
			cfg.SeedDistance = s.retuneDistance
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.warm = warm
	s.translated = translated
	s.mu.Unlock()

	// A seeded session that dies before the controller runs consumed the
	// entry's reuse budget for nothing — refund it, or transient build
	// failures would stale a good profile.
	refundSeed := func() {
		if warm || translated {
			f.store.Refund(seedKey, seedGen)
		}
	}
	w, err := f.cfg.Builds.Build(s.Spec.Bench, s.Spec.Input, 1<<30)
	if err != nil {
		refundSeed()
		f.failSession(s, started, err)
		return
	}
	sess, err := rpgcore.NewSession(m, w)
	if err != nil {
		refundSeed()
		f.failSession(s, started, err)
		return
	}

	userPhase := cfg.OnPhase
	cfg.OnPhase = func(name string, at float64) {
		if userPhase != nil {
			userPhase(name, at)
		}
		switch name {
		case "profile":
			f.transition(s, Profiling, at)
		case "rewrite", "insert":
			f.transition(s, Rewriting, at)
		case "tune":
			f.transition(s, Tuning, at)
		}
	}
	rep, err := sess.Optimize(cfg)
	if err != nil {
		s.mu.Lock()
		s.report = rep
		s.mu.Unlock()
		f.failSession(s, started, err)
		return
	}
	if retuning {
		// The fallback re-optimize closes the crash-recovered re-tune
		// lane pass (journaling retune-complete when it re-activated).
		f.finishRetune(s, rep, m)
	}
	tier := tierCold
	switch {
	case warm:
		tier = tierWarm
	case translated:
		tier = tierTranslated
	}

	// Let the optimized (or untouched) target run out its budget, as a
	// fleet operator would leave the service attached to a live process.
	// A measured spec (TailSeconds > 0) ends with a trailing window
	// instead; a timeline spec (TailWindows > 0) measures the post-detach
	// windows of Figure 10. An armed watchdog replaces the blind run-out
	// with drift sampling and owns the session's terminal bookkeeping.
	run, wantRun := f.runSeconds(s)
	switch {
	case s.Spec.TailSeconds > 0 && wantRun:
		meas, merr := sess.MeasureToBudget(run, s.Spec.TailSeconds)
		if merr != nil {
			s.mu.Lock()
			s.report = rep
			s.mu.Unlock()
			f.failSession(s, started, merr)
			return
		}
		s.mu.Lock()
		s.meas = &meas
		s.mu.Unlock()
	case s.Spec.TailWindows > 0:
		base := 0.0
		if n := len(rep.Timeline); n > 0 {
			base = rep.Timeline[n-1].Seconds
		}
		tail := sess.TailTimeline(s.Spec.TailWindows, s.Spec.TailWindowSeconds, base)
		s.mu.Lock()
		s.tail = tail
		s.mu.Unlock()
	case wantRun:
		if f.cfg.WatchdogInterval > 0 && rep.Outcome == rpgcore.Tuned {
			if !cold {
				f.applyStorePolicy(s, key, rep, warm, seed, seedGen)
			}
			f.finishWatched(s, sess, rep, started, m, run, tier)
			return
		}
		sess.RunOut(run)
	}

	if !cold {
		f.applyStorePolicy(s, key, rep, warm, seed, seedGen)
	}

	final := Done
	if rep.Outcome == rpgcore.RolledBack {
		final = RolledBack
	}
	f.transition(s, final, rep.Costs.ExecSeconds)
	s.mu.Lock()
	s.report = rep
	s.wall = time.Since(started)
	s.mu.Unlock()

	// Resilience policy: every optimize outcome feeds the key's breaker,
	// and a rolled-back attempt may re-enter through the retry lane — in
	// which case the terminal record belongs to a later attempt.
	f.mu.Lock()
	if final == Done {
		f.reportBreakerLocked(s, admission.Success)
	} else {
		f.reportBreakerLocked(s, admission.Rollback)
	}
	retried := false
	if final == RolledBack {
		retried = f.tryRetryLocked(s)
	}
	f.mu.Unlock()
	if retried {
		return
	}

	f.metrics.finish(rep.Outcome.String(), tier, rep.Costs.PDEdits, s.Wall())
	f.journal.add(Event{
		Session: s.ID, Type: "session-done", State: final.String(),
		Kind:  s.Spec.Kind.String(),
		Bench: s.Spec.Bench, Input: s.Spec.Input, Machine: m.Name,
		Warm: warm, Translated: translated, Report: rep, Attempt: s.Attempt(),
		Retune: s.Retunes(),
	})
}

// measuredTail resolves the trailing-window length for measured jobs.
func (s *Session) measuredTail() float64 {
	if s.Spec.TailSeconds > 0 {
		return s.Spec.TailSeconds
	}
	return 1.0
}

// runBaseline measures the unmodified binary to the run budget.
func (f *Fleet) runBaseline(s *Session, started time.Time, m machine.Machine) {
	w, err := f.cfg.Builds.Build(s.Spec.Bench, s.Spec.Input, 1<<30)
	if err != nil {
		f.failSession(s, started, err)
		return
	}
	sess, err := rpgcore.NewSession(m, w)
	if err != nil {
		f.failSession(s, started, err)
		return
	}
	run, _ := f.runSeconds(s)
	meas, err := sess.MeasureToBudget(run, s.measuredTail())
	if err != nil {
		f.failSession(s, started, err)
		return
	}
	s.mu.Lock()
	s.meas = &meas
	s.mu.Unlock()
	f.finishAux(s, started)
}

// runStatic measures a statically prefetched build at Spec.Distance,
// profiling candidates first when the spec does not carry them.
func (f *Fleet) runStatic(s *Session, started time.Time, m machine.Machine) {
	w, err := f.cfg.Builds.Build(s.Spec.Bench, s.Spec.Input, 1<<30)
	if err != nil {
		f.failSession(s, started, err)
		return
	}
	cands := s.Spec.Candidates
	if len(cands) == 0 {
		cands, err = baselines.ProfileCandidates(w, m, 2.0)
		if err != nil {
			f.failSession(s, started, err)
			return
		}
	}
	pf, err := baselines.BuildPrefetched(w, cands, s.Spec.Distance)
	if err != nil {
		f.failSession(s, started, err)
		return
	}
	pcs := []int{w.WorkPC}
	if off, ok := pf.RW.BAT.Translate(w.WorkPC); ok {
		pcs = append(pcs, pf.F1Entry+off)
	}
	sess, err := rpgcore.NewSessionBin(m, pf.Bin, w.Setup, pcs)
	if err != nil {
		f.failSession(s, started, err)
		return
	}
	run, _ := f.runSeconds(s)
	meas, err := sess.MeasureToBudget(run, s.measuredTail())
	if err != nil {
		f.failSession(s, started, err)
		return
	}
	s.mu.Lock()
	s.meas = &meas
	s.mu.Unlock()
	f.finishAux(s, started)
}

// runSweep runs an offline distance sweep over the cached workload.
func (f *Fleet) runSweep(s *Session, started time.Time, m machine.Machine) {
	w, err := f.cfg.Builds.Build(s.Spec.Bench, s.Spec.Input, 1<<30)
	if err != nil {
		f.failSession(s, started, err)
		return
	}
	cfg := baselines.DefaultSweep()
	if s.Spec.Sweep != nil {
		cfg = *s.Spec.Sweep
	}
	sw, err := baselines.RunSweepWorkload(w, m, cfg)
	if err != nil {
		f.failSession(s, started, err)
		return
	}
	s.mu.Lock()
	s.sweep = sw
	s.mu.Unlock()
	f.finishAux(s, started)
}

// runProfile collects PEBS candidate sites without optimizing.
func (f *Fleet) runProfile(s *Session, started time.Time, m machine.Machine) {
	w, err := f.cfg.Builds.Build(s.Spec.Bench, s.Spec.Input, 1<<30)
	if err != nil {
		f.failSession(s, started, err)
		return
	}
	secs := s.Spec.ProfileSeconds
	if secs == 0 {
		secs = 2.0
	}
	cands, err := baselines.ProfileCandidates(w, m, secs)
	if err != nil {
		f.failSession(s, started, err)
		return
	}
	s.mu.Lock()
	s.cands = cands
	s.mu.Unlock()
	f.finishAux(s, started)
}

// runAPTGET derives the APT-GET scheme's analytic distance.
func (f *Fleet) runAPTGET(s *Session, started time.Time, m machine.Machine) {
	w, err := f.cfg.Builds.Build(s.Spec.Bench, s.Spec.Input, 1<<30)
	if err != nil {
		f.failSession(s, started, err)
		return
	}
	d, err := baselines.APTGETDistanceWorkload(w, m)
	if err != nil {
		f.failSession(s, started, err)
		return
	}
	s.mu.Lock()
	s.distance = d
	s.mu.Unlock()
	f.finishAux(s, started)
}

// applyStorePolicy decides what a finished session teaches the store: a
// cold tuned session commits its profile; a warm tuned session refreshes
// the entry, unless the reused distance regressed the miss-site retirement
// rate the entry promised, in which case it invalidates; a warm rolled-back
// session always invalidates (the cached profile actively hurt).
func (f *Fleet) applyStorePolicy(s *Session, key Key, rep *rpgcore.Report, warm bool, seed Entry, seedGen uint64) {
	if f.cfg.DisableStore {
		return
	}
	switch {
	case rep.Outcome == rpgcore.Tuned && warm:
		if seed.TunedRate > 0 && rep.BestRate < seed.TunedRate*(1-f.cfg.RegressTolerance) {
			if f.store.Invalidate(key, seedGen) {
				f.journal.add(f.invalidateEvent(s, key, true))
			}
			return
		}
		entry := f.entryFrom(s, rep, seed.Candidates)
		f.store.Commit(key, entry)
		f.journal.add(f.commitEvent(s, key, entry, true))
	case rep.Outcome == rpgcore.Tuned:
		cands := make([]int, 0, len(rep.Sites))
		for _, site := range rep.Sites {
			cands = append(cands, site.DemandPC)
		}
		entry := f.entryFrom(s, rep, cands)
		f.store.Commit(key, entry)
		f.journal.add(f.commitEvent(s, key, entry, false))
	case rep.Outcome == rpgcore.RolledBack && warm:
		if f.store.Invalidate(key, seedGen) {
			f.journal.add(f.invalidateEvent(s, key, true))
		}
	}
}

// commitEvent builds a "store-commit" journal event. When persisting, the
// event additionally carries the store machine key and the committed entry
// so WAL replay can rebuild the store; in-memory journals omit both to
// stay byte-identical to the pre-WAL fleet. A sharded store's persisted
// events also carry the shard the key routes to (replay re-hashes and does
// not depend on it, but it makes the journal auditable per shard).
func (f *Fleet) commitEvent(s *Session, key Key, e Entry, warm bool) Event {
	ev := Event{Session: s.ID, Type: "store-commit",
		Bench: key.Bench, Input: key.Input, Warm: warm}
	if f.persist != nil {
		ev.Machine = key.Machine
		ec := e
		ev.Entry = &ec
		f.annotateShard(&ev, key)
	}
	return ev
}

// invalidateEvent builds a "store-invalidate" journal event; the machine
// key (and, when sharded, the shard) rides along only when persisting
// (replay needs the full store key).
func (f *Fleet) invalidateEvent(s *Session, key Key, warm bool) Event {
	ev := Event{Session: s.ID, Type: "store-invalidate",
		Bench: key.Bench, Input: key.Input, Warm: warm}
	if f.persist != nil {
		ev.Machine = key.Machine
		f.annotateShard(&ev, key)
	}
	return ev
}

// annotateShard stamps the shard a key routes to onto a persisted store
// event when the store is sharded; single-shard journals stay
// byte-identical to the pre-sharding fleet.
func (f *Fleet) annotateShard(ev *Event, key Key) {
	if f.store != nil && f.store.Shards() > 1 {
		sh := f.store.ShardOf(key)
		ev.Shard = &sh
	}
}

func (f *Fleet) entryFrom(s *Session, rep *rpgcore.Report, cands []int) Entry {
	return Entry{
		Func:         rep.FuncName,
		Candidates:   cands,
		Distance:     rep.FinalDistance,
		BaselineRate: rep.BaselineRate,
		TunedRate:    rep.BestRate,
		Session:      s.ID,
	}
}
