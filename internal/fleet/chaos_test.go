// Chaos acceptance suite: the fleet under simultaneous disk, controller,
// and crash faults. Everything here is seeded — fault schedules are
// hash-derived from (seed, key, ordinal), never drawn from an RNG — so a
// failure reproduces exactly from the test name and seed alone.
package fleet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rpg2/internal/faults"
	"rpg2/internal/machine"
	"rpg2/internal/wal"
)

// chaosSubmit queues n seeded sessions drawn from crashPairs.
func chaosSubmit(t *testing.T, f *Fleet, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		spec := crashPairs[i%len(crashPairs)]
		spec.Seed = int64(i + 1)
		if _, err := f.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
}

// auditDispositions checks the journal's admission/store pairing: every
// admitted dispatch carries exactly one store disposition (store-hit,
// store-translated, store-miss, or store-bypass) for its (session,
// attempt), and no disposition appears without an admission.
func auditDispositions(t *testing.T, events []Event) {
	t.Helper()
	type key struct{ session, attempt int }
	admitted := make(map[key]int)
	dispositions := make(map[key]int)
	for _, e := range events {
		k := key{e.Session, e.Attempt}
		switch e.Type {
		case "admitted":
			admitted[k]++
		case "store-hit", "store-translated", "store-miss", "store-bypass":
			dispositions[k]++
		}
	}
	for k, n := range admitted {
		if dispositions[k] != n {
			t.Errorf("session %d attempt %d: %d admissions but %d store dispositions",
				k.session, k.attempt, n, dispositions[k])
		}
	}
	for k, n := range dispositions {
		if admitted[k] == 0 {
			t.Errorf("session %d attempt %d: %d store dispositions with no admission",
				k.session, k.attempt, n)
		}
	}
}

// TestChaosCombinedFaultsInvariants runs the fleet under disk faults and
// controller faults at once: sessions must neither be lost nor
// duplicated, every admitted attempt must carry exactly one store
// disposition, and the fleet must finish every session despite the WAL
// degrading and re-arming underneath it.
func TestChaosCombinedFaultsInvariants(t *testing.T) {
	const sessions = 48
	dir := t.TempDir()
	disk := faults.NewDisk(faults.DiskConfig{
		Seed: 7, WriteRate: 0.02, SyncRate: 0.02, SnapshotRate: 0.1,
	})
	f := New(Config{
		Machine: machine.CascadeLake(), Workers: 4,
		StateDir: dir, Fsync: wal.SyncAlways, SnapshotEvery: 8,
		Faults:     faults.New(faults.Config{Seed: 11, Rate: 0.2}),
		MaxRetries: 2,
		DiskFaults: disk, RearmBackoff: 8,
	})
	defer f.Close()
	chaosSubmit(t, f, sessions)
	f.Drain()

	all := f.Sessions()
	if len(all) != sessions {
		t.Fatalf("fleet tracks %d sessions, submitted %d", len(all), sessions)
	}
	seen := make(map[int]bool)
	for _, s := range all {
		if seen[s.ID] {
			t.Fatalf("session ID %d duplicated", s.ID)
		}
		seen[s.ID] = true
		if !s.State().Terminal() {
			t.Fatalf("session %d not terminal under chaos: %v", s.ID, s.State())
		}
	}
	auditDispositions(t, f.Journal().Events())

	// The fault schedule must actually have fired — a chaos test that
	// injected nothing proves nothing.
	if disk.Injected() == 0 {
		t.Fatal("disk injector never fired; raise the rates or the session count")
	}
	snap := f.Snapshot()
	if snap.PersistDegradations == 0 {
		t.Fatal("disk faults fired but persistence never degraded")
	}
}

// TestChaosDeterministicSameSeed pins the reproducibility contract at the
// fleet level: two runs with identical seeds and a serialized submission
// schedule (drain between submits, so worker/submitter interleaving
// cannot reorder the journal) produce identical journals (modulo
// wall-clock stamps) and identical injected fault schedules.
func TestChaosDeterministicSameSeed(t *testing.T) {
	run := func() ([]Event, map[string]int) {
		dir := t.TempDir()
		disk := faults.NewDisk(faults.DiskConfig{
			Seed: 7, WriteRate: 0.03, SyncRate: 0.03, SnapshotRate: 0.2,
		})
		f := New(Config{
			Machine: machine.CascadeLake(), Workers: 1,
			StateDir: dir, Fsync: wal.SyncAlways, SnapshotEvery: 8,
			Faults:     faults.New(faults.Config{Seed: 11, Rate: 0.2}),
			MaxRetries: 2,
			DiskFaults: disk, RearmBackoff: 6,
		})
		for i := 0; i < 24; i++ {
			spec := crashPairs[i%len(crashPairs)]
			spec.Seed = int64(i + 1)
			if _, err := f.Submit(spec); err != nil {
				t.Fatal(err)
			}
			f.Drain()
		}
		f.Close()
		return f.Journal().Events(), disk.ByOp()
	}
	evA, opsA := run()
	evB, opsB := run()

	if len(evA) != len(evB) {
		t.Fatalf("journal lengths differ across identical runs: %d vs %d", len(evA), len(evB))
	}
	for i := range evA {
		a, b := evA[i], evB[i]
		a.Wall, b.Wall = 0, 0
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if string(ja) != string(jb) {
			t.Fatalf("event %d differs across identical runs:\n%s\n%s", i, ja, jb)
		}
	}
	for op, n := range opsA {
		if opsB[op] != n {
			t.Fatalf("injected %s faults differ across identical runs: %d vs %d", op, n, opsB[op])
		}
	}
	if len(opsA) == 0 {
		t.Fatal("no faults injected; the determinism check exercised nothing")
	}
}

// TestChaosRearmArcHeals drives the full self-healing arc: one injected
// fsync fault degrades persistence, the re-arm countdown runs down in
// journal events (the virtual clock), the re-arm re-snapshots and
// re-seeds a fresh WAL, and the fleet reports itself active again — with
// the whole arc visible as journal events and health lines.
func TestChaosRearmArcHeals(t *testing.T) {
	dir := t.TempDir()
	f := New(Config{
		Machine: machine.CascadeLake(), Workers: 2,
		StateDir: dir, Fsync: wal.SyncAlways,
		DiskFaults:   faults.NewDisk(faults.DiskConfig{Seed: 3, SyncRate: 1, MaxFaults: 1}),
		RearmBackoff: 4,
	})
	chaosSubmit(t, f, 12)
	f.Drain()

	var sawDegrade, sawRearm, sawRearmed bool
	for _, e := range f.Journal().Events() {
		switch e.Type {
		case "persist-degraded":
			sawDegrade = true
		case "persist-rearm":
			if !sawDegrade {
				t.Fatal("persist-rearm journaled before persist-degraded")
			}
			sawRearm = true
		case "persist-rearmed":
			if !sawRearm {
				t.Fatal("persist-rearmed journaled before persist-rearm")
			}
			sawRearmed = true
		}
	}
	if !sawDegrade || !sawRearm || !sawRearmed {
		t.Fatalf("incomplete re-arm arc: degraded=%v rearm=%v rearmed=%v",
			sawDegrade, sawRearm, sawRearmed)
	}

	snap := f.Snapshot()
	if snap.Persistence != "active" {
		t.Fatalf("persistence = %q after healing, want active", snap.Persistence)
	}
	if snap.PersistDegradations != 1 || snap.PersistRearms != 1 {
		t.Fatalf("arc counters: %d degradations, %d re-arms; want 1 and 1",
			snap.PersistDegradations, snap.PersistRearms)
	}
	render := snap.Render()
	if !strings.Contains(render, "re-armed 1x after 1 degradations") {
		t.Fatalf("Render hides the re-arm arc:\n%s", render)
	}
	if !strings.Contains(render, "chaos          1 disk faults injected") {
		t.Fatalf("Render hides the injected fault:\n%s", render)
	}
	f.Close()

	// The re-seeded WAL must be a valid recovery source: everything the
	// fleet finished is terminal on disk, and a recovered fleet warm-starts
	// from the store the re-arm snapshot carried.
	_, sessions, terminal := journalLedger(t, dir)
	if sessions == 0 || sessions != terminal {
		t.Fatalf("re-seeded ledger: %d sessions, %d terminal", sessions, terminal)
	}
	f2, rec, err := Recover(dir, Config{Machine: machine.CascadeLake(), Workers: 2})
	if err != nil {
		t.Fatalf("Recover after re-arm: %v", err)
	}
	defer f2.Close()
	if rec.Sessions != sessions || rec.Terminal != terminal {
		t.Fatalf("recovery saw %d/%d sessions/terminal, ledger %d/%d",
			rec.Sessions, rec.Terminal, sessions, terminal)
	}
	if rec.StoreEntries == 0 {
		t.Fatal("re-arm snapshot carried no store entries")
	}
}

// TestChaosKillUnderActiveDiskFaults is the crash-under-chaos acceptance
// test: a fleet runs with live disk faults (degrading and re-arming as it
// goes), then dies abruptly — simulated by tearing the WAL tail at a
// fault-injector-chosen offset, exactly what a kill -9 mid-append leaves
// behind. Recovery must account for every session the surviving journal
// knows, finish the unfinished, and keep the salvaged store usable.
func TestChaosKillUnderActiveDiskFaults(t *testing.T) {
	const sessions = 32
	dir := t.TempDir()
	disk := faults.NewDisk(faults.DiskConfig{Seed: 13, WriteRate: 0.04, TornTailBytes: 96})
	f := New(Config{
		Machine: machine.CascadeLake(), Workers: 2,
		StateDir: dir, Fsync: wal.SyncAlways, SnapshotEvery: 1 << 30,
		DiskFaults: disk, RearmBackoff: 8,
	})
	chaosSubmit(t, f, sessions)
	f.Drain()

	// Simulated kill -9: tear the journal's tail mid-record and never run
	// the clean-close path. (If an injected fault has the WAL degraded at
	// this instant the file is already frozen at the fault point — an even
	// harsher crash surface — so the tear is best-effort.)
	f.persist.mu.Lock()
	if !f.persist.degraded {
		f.persist.log.AbortTorn(disk.TornTail(journalFile))
	}
	f.persist.mu.Unlock()

	wantKeys, sessionsOnDisk, terminalOnDisk := journalLedger(t, dir)
	if sessionsOnDisk == 0 {
		t.Fatal("no sessions survived on disk; the crash surface is empty")
	}

	f2, rec, err := Recover(dir, Config{Machine: machine.CascadeLake(), Workers: 2})
	if err != nil {
		t.Fatalf("Recover under torn WAL: %v", err)
	}
	defer f2.Close()
	if rec.Sessions != sessionsOnDisk {
		t.Fatalf("recovery saw %d sessions, ledger saw %d", rec.Sessions, sessionsOnDisk)
	}
	if rec.Terminal != terminalOnDisk {
		t.Fatalf("recovery counted %d terminal, ledger counted %d", rec.Terminal, terminalOnDisk)
	}
	if rec.Terminal+len(rec.Requeued) != rec.Sessions {
		t.Fatalf("sessions lost in recovery: %d terminal + %d requeued != %d",
			rec.Terminal, len(rec.Requeued), rec.Sessions)
	}
	f2.Drain()
	for _, s := range rec.Requeued {
		if !s.State().Terminal() {
			t.Fatalf("requeued session %d never finished after the chaos crash", s.ID)
		}
	}
	// Salvaged store entries stay usable: a fresh session on a recovered
	// key warm-starts.
	if len(wantKeys) > 0 {
		var spec SessionSpec
		for k := range wantKeys {
			spec = SessionSpec{Bench: k.Bench, Input: k.Input, Seed: 9001}
			break
		}
		s, err := f2.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		f2.Drain()
		if !s.State().Terminal() || s.State() == Failed {
			t.Fatalf("post-recovery session: %v (err %v)", s.State(), s.Err())
		}
		if !s.Warm() {
			t.Fatal("session on a salvaged key did not warm-start")
		}
	}

	// Shut the crashed fleet down last; its state dir writes no longer
	// matter.
	f.Close()
}

// TestChaosZeroKnobsByteIdentical is the blast-radius guard: a fleet
// carrying a zero-rate disk injector and the default re-arm knobs must be
// indistinguishable from a fleet built before the chaos layer existed —
// identical journal events (modulo wall stamps), no new snapshot JSON
// keys, no new Render lines.
func TestChaosZeroKnobsByteIdentical(t *testing.T) {
	run := func(chaos bool) ([]Event, Snapshot) {
		cfg := Config{
			Machine: machine.CascadeLake(), Workers: 1,
			StateDir: t.TempDir(), SnapshotEvery: 8,
		}
		if chaos {
			cfg.DiskFaults = faults.NewDisk(faults.DiskConfig{Seed: 999})
			cfg.RearmBackoff = 0 // default
		}
		f := New(cfg)
		chaosSubmit(t, f, 16)
		f.Drain()
		f.Close()
		return f.Journal().Events(), f.Snapshot()
	}
	evPlain, _ := run(false)
	evChaos, snapChaos := run(true)

	if len(evPlain) != len(evChaos) {
		t.Fatalf("zero-knob chaos changed the journal length: %d vs %d", len(evPlain), len(evChaos))
	}
	for i := range evPlain {
		a, b := evPlain[i], evChaos[i]
		a.Wall, b.Wall = 0, 0
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if string(ja) != string(jb) {
			t.Fatalf("zero-knob chaos changed event %d:\n%s\n%s", i, ja, jb)
		}
	}

	raw, err := json.Marshal(snapChaos)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"persist_degradations", "persist_rearms", "persist_rearm_in",
		"disk_faults_injected", "handler_panics",
	} {
		if strings.Contains(string(raw), key) {
			t.Fatalf("zero-knob snapshot leaks %q:\n%s", key, raw)
		}
	}
	render := snapChaos.Render()
	for _, line := range []string{"chaos", "re-arm"} {
		if strings.Contains(render, line) {
			t.Fatalf("zero-knob Render leaks %q:\n%s", line, render)
		}
	}
}

// TestRecoverManifestBadCRC corrupts the sharded snapshot layout's
// manifest (the commit point recovery trusts the shard set through): a
// CRC-breaking byte flip must push recovery off the watermark fast path
// and into a full journal replay that still converges to exactly the
// ledger's committed entries.
func TestRecoverManifestBadCRC(t *testing.T) {
	dir := t.TempDir()
	f := New(Config{
		Machine: machine.CascadeLake(), Workers: 2,
		StateDir: dir, StoreShards: 4, SnapshotEvery: 2,
	})
	for i, spec := range crashPairs {
		spec.Seed = int64(i + 1)
		if _, err := f.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	f.Drain()
	f.Close()

	mp := filepath.Join(dir, manifestFile)
	data, err := os.ReadFile(mp)
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	// Flip a payload byte near the end: the record's CRC no longer
	// matches, so the manifest salvages short and cannot vouch for the
	// shard set's watermark.
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(mp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	wantKeys, _, _ := journalLedger(t, dir)
	if len(wantKeys) == 0 {
		t.Fatal("ledger has no committed keys; the corruption test has nothing to protect")
	}

	f2, rec, err := Recover(dir, Config{Machine: machine.CascadeLake(), Workers: 2, StoreShards: 4})
	if err != nil {
		t.Fatalf("Recover with corrupt manifest: %v", err)
	}
	defer f2.Close()
	if rec.StoreEntries != len(wantKeys) {
		t.Fatalf("full journal replay converged to %d entries, ledger says %d",
			rec.StoreEntries, len(wantKeys))
	}
	if rec.Replayed == 0 {
		t.Fatal("corrupt manifest did not force a journal replay")
	}
	// The replayed store must serve: a session on a committed key
	// warm-starts.
	var spec SessionSpec
	for k := range wantKeys {
		spec = SessionSpec{Bench: k.Bench, Input: k.Input, Seed: 777}
		break
	}
	s, err := f2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	f2.Drain()
	if !s.Warm() {
		t.Fatal("session on a replayed key did not warm-start")
	}
}
