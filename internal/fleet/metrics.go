package fleet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"rpg2/internal/admission"
	"rpg2/internal/workloads"
)

// seedTier is how an optimize session was seeded: cold (no profile), warm
// (this machine's cached profile), or translated (a sibling machine's
// profile with a latency-scaled distance).
type seedTier uint8

const (
	tierCold seedTier = iota
	tierWarm
	tierTranslated
)

// metrics accumulates fleet-wide counters; Snapshot freezes them.
type metrics struct {
	mu         sync.Mutex
	start      time.Time
	submitted  int
	completed  int
	failed     int
	degraded   int
	retries    int
	outcomes   map[string]int // terminal rpg2 outcome name -> count (optimize jobs)
	kinds      map[string]int // completed sessions per job kind
	wallSecs   []float64      // per completed session
	coldProbe  []int          // search probes per cold session that searched
	warmProbe  []int          // search probes per warm session that searched
	transProbe []int          // search probes per translated session that searched
	bypasses   map[string]int // store-bypass reason -> count

	// Phase-drift watchdog counters. driftDetected counts detector firings
	// that were acted on; retuneWindows accumulates the sample windows from
	// (re-)activation to each firing — the detection half of recovery
	// latency. All stay zero when the watchdog is disarmed.
	driftDetected    int
	retunesScheduled int
	retunesCompleted int
	retuneWindows    int

	// handlerPanics counts daemon handler panics the recovery middleware
	// caught (fleet-level incidents, not session outcomes).
	handlerPanics int
}

func newMetrics() *metrics {
	return &metrics{
		start:    time.Now(),
		outcomes: make(map[string]int),
		kinds:    make(map[string]int),
		bypasses: make(map[string]int),
	}
}

func (m *metrics) submit() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submitted++
}

// bypass records an optimize attempt that skipped the store entirely.
func (m *metrics) bypass(reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bypasses[reason]++
}

func (m *metrics) finish(outcome string, tier seedTier, probes int, wall time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed++
	m.outcomes[outcome]++
	m.kinds[OptimizeJob.String()]++
	m.wallSecs = append(m.wallSecs, wall.Seconds())
	if probes > 0 {
		switch tier {
		case tierWarm:
			m.warmProbe = append(m.warmProbe, probes)
		case tierTranslated:
			m.transProbe = append(m.transProbe, probes)
		default:
			m.coldProbe = append(m.coldProbe, probes)
		}
	}
}

// finishAux records a completed non-optimize session (baseline, static,
// sweep, profile, apt-get): wall latency and kind only — it has no
// controller outcome.
func (m *metrics) finishAux(kind string, wall time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed++
	m.kinds[kind]++
	m.wallSecs = append(m.wallSecs, wall.Seconds())
}

func (m *metrics) fail(wall time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed++
	m.failed++
	m.wallSecs = append(m.wallSecs, wall.Seconds())
}

// degrade records a session parked terminally by an open circuit breaker.
func (m *metrics) degrade(wall time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed++
	m.degraded++
	m.wallSecs = append(m.wallSecs, wall.Seconds())
}

// retry records a re-admission; the attempt is not terminal, so nothing
// else moves.
func (m *metrics) retry() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retries++
}

// retuneScheduled records one acted-on watchdog firing and the sample
// windows it took to detect.
func (m *metrics) retuneScheduled(windows int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.driftDetected++
	m.retunesScheduled++
	m.retuneWindows += windows
}

// retuneComplete records one re-tune lane pass that re-activated.
func (m *metrics) retuneComplete() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retunesCompleted++
}

func (m *metrics) panicked() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlerPanics++
}

// Snapshot is a point-in-time view of the fleet's health — the counters the
// issue's operator story needs: throughput, activation and rollback rates,
// profile-store effectiveness, and the cold-vs-warm search cost.
type Snapshot struct {
	Workers   int `json:"workers"`
	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Degraded  int `json:"degraded"`
	QueuePeak int `json:"queue_peak"`
	// QueueDepth is how many sessions are waiting right now (ready plus
	// retry lane) — the pressure reading submit backpressure keys off.
	// TenantQueue splits it per non-empty tenant.
	QueueDepth  int            `json:"queue_depth"`
	TenantQueue map[string]int `json:"tenant_queue,omitempty"`

	// Admission & resilience counters: retry-lane re-admissions, virtual
	// seconds consumed by backoff, dispatch attempts stalled on quotas,
	// breaker trips (and how many breakers are open right now), and the
	// scheduler's virtual clock.
	Retries         int     `json:"retries"`
	BackoffWaitSecs float64 `json:"backoff_wait_secs"`
	QuotaStalls     int     `json:"quota_stalls"`
	BreakerTrips    int     `json:"breaker_trips"`
	BreakersOpen    int     `json:"breakers_open"`
	VirtualClock    float64 `json:"virtual_clock"`
	// Breakers details every per-(bench, input) breaker with recorded
	// rollbacks: its state (open, half-open, closed) and consecutive-
	// rollback depth. Empty (and omitted) until a breaker sees trouble.
	Breakers []admission.BreakerState `json:"breakers,omitempty"`

	// Persistence reports the WAL layer: "" when the fleet is purely
	// in-memory, "active" when the state dir is live, "degraded" after a
	// disk failure flipped the fleet back to in-memory mode (the error
	// rides in PersistenceError).
	Persistence      string `json:"persistence,omitempty"`
	PersistenceError string `json:"persistence_error,omitempty"`
	// RemoteStore reports the shared out-of-process profile store: ""
	// when the fleet owns its store in-process, "active" while the
	// configured store daemon answers, "degraded" after the client spent
	// its retry budget and fell back permanently to a process-local store
	// (the error rides in RemoteStoreError). Omitted when no store
	// address is configured, so zero-knob snapshots stay byte-identical.
	RemoteStore      string `json:"remote_store,omitempty"`
	RemoteStoreError string `json:"remote_store_error,omitempty"`
	WALEpoch         int    `json:"wal_epoch,omitempty"`
	WALRecords       int    `json:"wal_records,omitempty"`
	WALSnapshots     int    `json:"wal_snapshots,omitempty"`
	// Self-healing persistence counters: disk-failure degradations seen,
	// successful re-arms (each one a fresh epoch re-seeded from the live
	// journal), and — while degraded with re-arming enabled — how many
	// journal events remain on the backoff clock before the next attempt.
	// All omitted on a fleet that never degraded, so zero-knob snapshots
	// are byte-identical to the pre-chaos fleet's.
	PersistDegradations int `json:"persist_degradations,omitempty"`
	PersistRearms       int `json:"persist_rearms,omitempty"`
	PersistRearmIn      int `json:"persist_rearm_in,omitempty"`
	// DiskFaultsInjected counts injected disk faults (Config.DiskFaults);
	// HandlerPanics counts daemon handler panics recovered by the
	// panic-recovery middleware. Both omitted at zero.
	DiskFaultsInjected int `json:"disk_faults_injected,omitempty"`
	HandlerPanics      int `json:"handler_panics,omitempty"`

	// Terminal outcome counts (rpg2 outcome names).
	Tuned        int `json:"tuned"`
	RolledBack   int `json:"rolled_back"`
	NotActivated int `json:"not_activated"`
	TargetExited int `json:"target_exited"`

	// Kinds counts completed sessions per job kind.
	Kinds map[string]int `json:"kinds,omitempty"`

	// ActivationRate is the share of completed optimize sessions where
	// RPG² injected code (tuned or rolled back); RollbackRate is the
	// share of activated sessions that rolled back.
	ActivationRate float64 `json:"activation_rate"`
	RollbackRate   float64 `json:"rollback_rate"`

	// SessionsPerSec is completed sessions per wall-clock second.
	SessionsPerSec float64 `json:"sessions_per_sec"`
	// P50Wall and P95Wall are wall-clock session latencies in seconds.
	P50Wall float64 `json:"p50_wall"`
	P95Wall float64 `json:"p95_wall"`

	// Store policy counters and the derived hit rate. The aggregate and
	// the per-shard breakdown come from one consistent instant (all shard
	// locks held for the read), so StoreShardCounters always sums to
	// Store. StoreShards/StoreShardCounters are omitted for the
	// single-shard store — its snapshot JSON is byte-identical to the
	// pre-sharding fleet's.
	Store              StoreCounters   `json:"store"`
	StoreHitRate       float64         `json:"store_hit_rate"`
	StoreEntries       int             `json:"store_entries"`
	StoreShards        int             `json:"store_shards,omitempty"`
	StoreShardCounters []StoreCounters `json:"store_shard_counters,omitempty"`

	// Workload build-cache counters: graph constructions performed and
	// Build calls served by an existing entry.
	BuildConstructs int64 `json:"build_constructs"`
	BuildHits       int64 `json:"build_hits"`

	// Search cost split by temperature: mean distance probes per session
	// that ran a search. Translated sessions — seeded from a sibling
	// machine's profile — are a third tier between warm and cold.
	ColdSessions         int     `json:"cold_sessions"`
	WarmSessions         int     `json:"warm_sessions"`
	TranslatedSessions   int     `json:"translated_sessions"`
	ColdProbesMean       float64 `json:"cold_probes_mean"`
	WarmProbesMean       float64 `json:"warm_probes_mean"`
	TranslatedProbesMean float64 `json:"translated_probes_mean"`

	// StoreBypasses counts optimize attempts that skipped the store
	// entirely, by reason ("cold", "retry", "retune", "disabled") — the
	// demand the hit rate never sees. Empty (and omitted) when every
	// attempt asked.
	StoreBypasses map[string]int `json:"store_bypasses,omitempty"`

	// Phase-drift watchdog counters: detector firings acted on, re-tune
	// lane admissions, re-tunes that re-activated, and the mean sample
	// windows from activation to detection. All omitted when the watchdog
	// is disarmed, so zero-knob snapshots are byte-identical.
	DriftDetected     int     `json:"drift_detected,omitempty"`
	RetunesScheduled  int     `json:"retunes_scheduled,omitempty"`
	RetunesCompleted  int     `json:"retunes_completed,omitempty"`
	DetectWindowsMean float64 `json:"detect_windows_mean,omitempty"`
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func meanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

func (m *metrics) snapshot(st Store, builds *workloads.BuildCache, workers, queuePeak, queueDepth int,
	tenantQueue map[string]int, sched admission.Stats, breakersOpen int, breakers []admission.BreakerState) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Workers:              workers,
		Submitted:            m.submitted,
		Completed:            m.completed,
		Failed:               m.failed,
		Degraded:             m.degraded,
		QueuePeak:            queuePeak,
		QueueDepth:           queueDepth,
		TenantQueue:          tenantQueue,
		Retries:              sched.Retries,
		BackoffWaitSecs:      sched.BackoffWait,
		QuotaStalls:          sched.QuotaStalls,
		BreakerTrips:         sched.BreakerTrips,
		BreakersOpen:         breakersOpen,
		Breakers:             breakers,
		VirtualClock:         sched.Clock,
		Tuned:                m.outcomes["tuned"],
		RolledBack:           m.outcomes["rolled-back"],
		NotActivated:         m.outcomes["not-activated"],
		TargetExited:         m.outcomes["target-exited"],
		ColdSessions:         len(m.coldProbe),
		WarmSessions:         len(m.warmProbe),
		TranslatedSessions:   len(m.transProbe),
		ColdProbesMean:       meanInt(m.coldProbe),
		WarmProbesMean:       meanInt(m.warmProbe),
		TranslatedProbesMean: meanInt(m.transProbe),
		DriftDetected:        m.driftDetected,
		RetunesScheduled:     m.retunesScheduled,
		RetunesCompleted:     m.retunesCompleted,
		HandlerPanics:        m.handlerPanics,
	}
	if m.driftDetected > 0 {
		s.DetectWindowsMean = float64(m.retuneWindows) / float64(m.driftDetected)
	}
	if len(m.bypasses) > 0 {
		s.StoreBypasses = make(map[string]int, len(m.bypasses))
		for k, n := range m.bypasses {
			s.StoreBypasses[k] = n
		}
	}
	if len(m.kinds) > 0 {
		s.Kinds = make(map[string]int, len(m.kinds))
		for k, n := range m.kinds {
			s.Kinds[k] = n
		}
	}
	optimized := 0
	for _, n := range m.outcomes {
		optimized += n
	}
	if optimized > 0 {
		s.ActivationRate = float64(s.Tuned+s.RolledBack) / float64(optimized)
	}
	if n := s.Tuned + s.RolledBack; n > 0 {
		s.RollbackRate = float64(s.RolledBack) / float64(n)
	}
	if el := time.Since(m.start).Seconds(); el > 0 {
		s.SessionsPerSec = float64(s.Completed) / el
	}
	sorted := append([]float64(nil), m.wallSecs...)
	sort.Float64s(sorted)
	s.P50Wall = percentile(sorted, 0.50)
	s.P95Wall = percentile(sorted, 0.95)
	if st != nil {
		// One ShardCounters call is one consistent instant (every shard
		// lock held); the aggregate is summed from it so the breakdown
		// always adds up to the total — no torn reads between shard
		// counter loads.
		per := st.ShardCounters()
		for _, c := range per {
			s.Store.Add(c)
		}
		s.StoreEntries = st.Len()
		if st.Shards() > 1 {
			s.StoreShards = st.Shards()
			s.StoreShardCounters = per
		}
		if n := s.Store.Hits + s.Store.Misses; n > 0 {
			s.StoreHitRate = float64(s.Store.Hits) / float64(n)
		}
	}
	if builds != nil {
		s.BuildConstructs = builds.Builds()
		s.BuildHits = builds.Hits()
	}
	return s
}

// Render formats the snapshot as the operator-facing text block printed by
// cmd/rpg2-fleet.
func (s Snapshot) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet snapshot\n")
	fmt.Fprintf(&b, "  sessions       %d submitted, %d completed, %d failed, %d degraded\n",
		s.Submitted, s.Completed, s.Failed, s.Degraded)
	fmt.Fprintf(&b, "  outcomes       %d tuned, %d rolled-back, %d not-activated, %d target-exited\n",
		s.Tuned, s.RolledBack, s.NotActivated, s.TargetExited)
	if len(s.Kinds) > 0 {
		ks := make([]string, 0, len(s.Kinds))
		for k := range s.Kinds {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		parts := make([]string, len(ks))
		for i, k := range ks {
			parts[i] = fmt.Sprintf("%s %d", k, s.Kinds[k])
		}
		fmt.Fprintf(&b, "  job kinds      %s\n", strings.Join(parts, ", "))
	}
	fmt.Fprintf(&b, "  rates          activation %.1f%%, rollback %.1f%%\n",
		100*s.ActivationRate, 100*s.RollbackRate)
	fmt.Fprintf(&b, "  throughput     %.2f sessions/s, wall p50 %.3fs p95 %.3fs\n",
		s.SessionsPerSec, s.P50Wall, s.P95Wall)
	fmt.Fprintf(&b, "  profile store  %d hits, %d misses (hit rate %.1f%%), %d stale, %d invalidated, %d commits, %d live\n",
		s.Store.Hits, s.Store.Misses, 100*s.StoreHitRate,
		s.Store.Stale, s.Store.Invalidations, s.Store.Commits, s.StoreEntries)
	if s.Store.Translations > 0 || s.Store.Refunds > 0 {
		fmt.Fprintf(&b, "  store extras   %d cross-machine translations, %d refunds\n",
			s.Store.Translations, s.Store.Refunds)
	}
	if s.StoreShards > 1 {
		fmt.Fprintf(&b, "  store shards   %d shards\n", s.StoreShards)
		for i, c := range s.StoreShardCounters {
			fmt.Fprintf(&b, "    shard %-3d    %d hits, %d misses, %d stale, %d invalidated, %d commits, %d translations, %d refunds\n",
				i, c.Hits, c.Misses, c.Stale, c.Invalidations, c.Commits, c.Translations, c.Refunds)
		}
	}
	if len(s.StoreBypasses) > 0 {
		reasons := make([]string, 0, len(s.StoreBypasses))
		for r := range s.StoreBypasses {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		parts := make([]string, len(reasons))
		for i, r := range reasons {
			parts[i] = fmt.Sprintf("%d %s", s.StoreBypasses[r], r)
		}
		fmt.Fprintf(&b, "  store bypasses %s\n", strings.Join(parts, ", "))
	}
	fmt.Fprintf(&b, "  workload cache %d graph builds, %d cache hits\n",
		s.BuildConstructs, s.BuildHits)
	fmt.Fprintf(&b, "  search probes  cold %.1f mean over %d sessions, warm %.1f mean over %d sessions\n",
		s.ColdProbesMean, s.ColdSessions, s.WarmProbesMean, s.WarmSessions)
	if s.TranslatedSessions > 0 {
		fmt.Fprintf(&b, "  translated     %.1f mean probes over %d cross-machine seeded sessions\n",
			s.TranslatedProbesMean, s.TranslatedSessions)
	}
	fmt.Fprintf(&b, "  scheduling     %d workers, queue depth %d (peak %d)\n",
		s.Workers, s.QueueDepth, s.QueuePeak)
	if len(s.TenantQueue) > 0 {
		ts := make([]string, 0, len(s.TenantQueue))
		for t := range s.TenantQueue {
			ts = append(ts, t)
		}
		sort.Strings(ts)
		parts := make([]string, len(ts))
		for i, t := range ts {
			parts[i] = fmt.Sprintf("%s %d", t, s.TenantQueue[t])
		}
		fmt.Fprintf(&b, "  tenant queues  %s\n", strings.Join(parts, ", "))
	}
	fmt.Fprintf(&b, "  resilience     %d retries (%.1fs backoff), %d quota stalls, %d breaker trips (%d open)\n",
		s.Retries, s.BackoffWaitSecs, s.QuotaStalls, s.BreakerTrips, s.BreakersOpen)
	if s.DriftDetected > 0 || s.RetunesScheduled > 0 {
		fmt.Fprintf(&b, "  drift watchdog %d drift firings (%.1f windows mean to detect), %d re-tunes scheduled, %d re-activated\n",
			s.DriftDetected, s.DetectWindowsMean, s.RetunesScheduled, s.RetunesCompleted)
	}
	// Per-key breaker detail: which (bench, input) keys are in trouble and
	// how deep, not just how many are open.
	for _, br := range s.Breakers {
		key := br.Key.Bench
		if br.Key.Input != "" {
			key += "/" + br.Key.Input
		}
		fmt.Fprintf(&b, "    breaker      %-14s %s, %d consecutive rollbacks", key, br.State(), br.Consecutive)
		if br.Open && !br.HalfOpen {
			fmt.Fprintf(&b, ", half-open trial at t=%.1fs", br.ReopenAt)
		}
		fmt.Fprintf(&b, "\n")
	}
	switch s.Persistence {
	case "active":
		fmt.Fprintf(&b, "  persistence    active: epoch %d, %d WAL records, %d snapshots\n",
			s.WALEpoch, s.WALRecords, s.WALSnapshots)
		if s.PersistRearms > 0 {
			fmt.Fprintf(&b, "  persistence    re-armed %dx after %d degradations\n",
				s.PersistRearms, s.PersistDegradations)
		}
	case "degraded":
		fmt.Fprintf(&b, "  persistence    degraded (continuing in-memory): %s\n", s.PersistenceError)
		if s.PersistRearmIn > 0 {
			fmt.Fprintf(&b, "  persistence    re-arm pending in %d events (%d degradations, %d prior re-arms)\n",
				s.PersistRearmIn, s.PersistDegradations, s.PersistRearms)
		}
	}
	switch s.RemoteStore {
	case "active":
		fmt.Fprintf(&b, "  remote store   active (shared store daemon)\n")
	case "degraded":
		fmt.Fprintf(&b, "  remote store   degraded (continuing on a process-local store): %s\n", s.RemoteStoreError)
	}
	if s.DiskFaultsInjected > 0 {
		fmt.Fprintf(&b, "  chaos          %d disk faults injected\n", s.DiskFaultsInjected)
	}
	if s.HandlerPanics > 0 {
		fmt.Fprintf(&b, "  chaos          %d handler panics recovered\n", s.HandlerPanics)
	}
	return b.String()
}
