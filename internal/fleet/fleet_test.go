package fleet

import (
	"strings"
	"testing"

	"rpg2/internal/machine"
	rpgcore "rpg2/internal/rpg2"
)

// TestWarmSessionsConvergeFaster is the profile store's core claim: after a
// cold session commits its profile, warm sessions on the same (benchmark,
// input, machine) are seeded and finish their search in fewer probes.
func TestWarmSessionsConvergeFaster(t *testing.T) {
	f := New(Config{Machine: machine.CascadeLake(), Workers: 1})
	defer f.Close()

	spec := SessionSpec{Bench: "is", Seed: 1}
	cold, err := f.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if got := cold.State(); got != Done {
		t.Fatalf("cold session state = %v (err %v)", got, cold.Err())
	}
	if cold.Warm() {
		t.Fatal("first session claims a store hit")
	}
	if cold.Report().Outcome != rpgcore.Tuned {
		t.Fatalf("cold outcome = %v; store has nothing to reuse", cold.Report().Outcome)
	}

	var warms []*Session
	for i := 0; i < 3; i++ {
		spec.Seed = int64(100 + i)
		s, err := f.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		warms = append(warms, s)
	}
	f.Drain()

	for _, s := range warms {
		if !s.State().Terminal() || s.State() == Failed {
			t.Fatalf("warm session %d state = %v (err %v)", s.ID, s.State(), s.Err())
		}
		if !s.Warm() {
			t.Fatalf("session %d missed the store", s.ID)
		}
		if s.Probes() >= cold.Probes() {
			t.Fatalf("warm session %d used %d probes, cold used %d",
				s.ID, s.Probes(), cold.Probes())
		}
	}
	c := f.Store().Counters()
	if c.Hits != 3 || c.Misses != 1 {
		t.Fatalf("store counters = %+v", c)
	}
}

// TestFleetStress drives 64 sessions through a 4-worker pool (run under
// -race by CI and the acceptance criteria): the bounded pool must lose no
// work, every session must reach a legal terminal state, and with repeated
// (bench, input) pairs the store must produce hits whose sessions probe
// less than the cold ones.
func TestFleetStress(t *testing.T) {
	const sessions = 64
	f := New(Config{Machine: machine.CascadeLake(), Workers: 4})
	defer f.Close()

	// Four distinct pairs that reliably tune: 16 sessions per pair, so
	// each pair is cold once and warm thereafter.
	pairs := []SessionSpec{
		{Bench: "is"},
		{Bench: "cg"},
		{Bench: "randacc"},
		{Bench: "bfs", Input: "soc-gamma"},
	}
	var specs []SessionSpec
	for i := 0; i < sessions; i++ {
		spec := pairs[i%len(pairs)]
		spec.Seed = int64(i + 1)
		specs = append(specs, spec)
	}
	got, err := f.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != sessions {
		t.Fatalf("admitted %d of %d sessions", len(got), sessions)
	}
	for _, s := range got {
		if !s.State().Terminal() {
			t.Fatalf("session %d not terminal: %v", s.ID, s.State())
		}
		if s.State() == Failed {
			t.Fatalf("session %d failed: %v", s.ID, s.Err())
		}
	}

	snap := f.Snapshot()
	if snap.Submitted != sessions || snap.Completed != sessions || snap.Failed != 0 {
		t.Fatalf("snapshot counts = %+v", snap)
	}
	if snap.Store.Hits == 0 {
		t.Fatal("no profile-store hits across repeated pairs")
	}
	if snap.WarmSessions == 0 || snap.ColdSessions == 0 {
		t.Fatalf("expected both cold and warm searched sessions: %+v", snap)
	}
	if snap.WarmProbesMean >= snap.ColdProbesMean {
		t.Fatalf("warm sessions did not converge faster: warm %.1f vs cold %.1f probes",
			snap.WarmProbesMean, snap.ColdProbesMean)
	}
	if snap.QueuePeak < sessions-4 {
		t.Fatalf("queue peak %d too small for %d sessions on 4 workers", snap.QueuePeak, sessions)
	}
	for _, line := range []string{"fleet snapshot", "profile store", "search probes"} {
		if !strings.Contains(snap.Render(), line) {
			t.Fatalf("snapshot render missing %q:\n%s", line, snap.Render())
		}
	}
}

// TestJournalLifecycle checks each session's journal: admission first, a
// terminal record last, states never moving backwards.
func TestJournalLifecycle(t *testing.T) {
	f := New(Config{Machine: machine.Haswell(), Workers: 2})
	defer f.Close()
	_, err := f.Run([]SessionSpec{
		{Bench: "cg", Seed: 3},
		{Bench: "pr", Input: "p2p-gnutella-like", Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	order := map[string]int{
		Queued.String(): 0, Profiling.String(): 1, Rewriting.String(): 2,
		Tuning.String(): 3, Done.String(): 4, RolledBack.String(): 4, Failed.String(): 4,
	}
	for _, s := range f.Sessions() {
		evs := f.Journal().SessionEvents(s.ID)
		if len(evs) < 3 {
			t.Fatalf("session %d journal too short: %+v", s.ID, evs)
		}
		if evs[0].Type != "queued" {
			t.Fatalf("session %d first event %q", s.ID, evs[0].Type)
		}
		last := evs[len(evs)-1]
		if last.Type != "session-done" && last.Type != "session-failed" {
			t.Fatalf("session %d last event %q", s.ID, last.Type)
		}
		if last.Type == "session-done" && last.Report == nil {
			t.Fatalf("session %d done event carries no report", s.ID)
		}
		prev := -1
		for _, e := range evs {
			if e.State == "" {
				continue
			}
			if order[e.State] < prev {
				t.Fatalf("session %d state went backwards: %+v", s.ID, evs)
			}
			prev = order[e.State]
		}
	}
	var sb strings.Builder
	if err := f.Journal().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"type":"session-done"`) ||
		!strings.Contains(sb.String(), `"Outcome"`) {
		t.Fatal("journal JSON missing session reports")
	}
}

// TestSubmitAfterClose: admission stops cleanly.
func TestSubmitAfterClose(t *testing.T) {
	f := New(Config{Machine: machine.CascadeLake(), Workers: 1})
	f.Close()
	if _, err := f.Submit(SessionSpec{Bench: "is"}); err != ErrClosed {
		t.Fatalf("Submit after Close = %v", err)
	}
}

// TestStoreInvalidationOnRollback: a warm session whose reused distance
// loses to the baseline (forced here by an impossible improvement bar)
// must drop the store entry so the next session re-profiles cold.
func TestStoreInvalidationOnRollback(t *testing.T) {
	f := New(Config{Machine: machine.CascadeLake(), Workers: 1})
	defer f.Close()
	spec := SessionSpec{Bench: "randacc", Seed: 9}
	if _, err := f.Submit(spec); err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if f.Store().Len() != 1 {
		t.Fatalf("cold session committed %d entries", f.Store().Len())
	}

	// Raise the improvement bar so the warm session cannot beat the
	// baseline and rolls back, which must invalidate the entry.
	f.cfg.Session.MinImprovement = 1e9
	spec.Seed = 10
	s, err := f.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	if s.State() != RolledBack {
		t.Fatalf("warm session under an impossible bar = %v", s.State())
	}
	if !s.Warm() {
		t.Fatal("second session was not warm")
	}
	if f.Store().Len() != 0 {
		t.Fatal("rollback did not invalidate the store entry")
	}
	if c := f.Store().Counters(); c.Invalidations != 1 {
		t.Fatalf("counters = %+v", c)
	}
}
