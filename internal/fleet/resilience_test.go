package fleet

import (
	"errors"
	"fmt"
	"testing"

	"rpg2/internal/faults"
	"rpg2/internal/machine"
	rpgcore "rpg2/internal/rpg2"
)

// stressSpecs builds n specs cycling over pairs that reliably activate,
// seeding session i with base+i.
func stressSpecs(n int, base int64) []SessionSpec {
	pairs := []SessionSpec{
		{Bench: "is"},
		{Bench: "cg"},
		{Bench: "randacc"},
		{Bench: "bfs", Input: "soc-gamma"},
	}
	specs := make([]SessionSpec, n)
	for i := range specs {
		specs[i] = pairs[i%len(pairs)]
		specs[i].Seed = base + int64(i)
	}
	return specs
}

// TestFaultInjectionResilience is the issue's acceptance scenario: with a
// seeded injector failing ~20% of controller stages, every session must
// still reach a terminal state, none may be lost, and a fleet with a retry
// budget must convert at least as many sessions to success as the same
// fleet without one.
func TestFaultInjectionResilience(t *testing.T) {
	const sessions = 32
	countDone := func(ss []*Session) int {
		n := 0
		for _, s := range ss {
			if st := s.State(); st == Done || st == RolledBack {
				n++
			}
		}
		return n
	}

	// Baseline: faults, no retry lane.
	base := New(Config{
		Machine: machine.CascadeLake(), Workers: 4,
		Faults: faults.New(faults.Config{Seed: 7, Rate: 0.2}),
	})
	baseSessions, err := base.Run(stressSpecs(sessions, 1))
	if err != nil {
		t.Fatal(err)
	}
	base.Close()
	baseDone := countDone(baseSessions)
	if baseDone == sessions {
		t.Fatal("20% fault rate failed nothing; the baseline proves nothing")
	}

	// Same specs, same injector seed, plus a retry budget and quotas.
	f := New(Config{
		Machine: machine.CascadeLake(), Workers: 4,
		Faults:     faults.New(faults.Config{Seed: 7, Rate: 0.2}),
		MaxRetries: 3, Quota: 2,
	})
	defer f.Close()
	got, err := f.Run(stressSpecs(sessions, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != sessions {
		t.Fatalf("lost sessions: admitted %d of %d", len(got), sessions)
	}
	for _, s := range got {
		if !s.State().Terminal() {
			t.Fatalf("session %d not terminal under faults: %v", s.ID, s.State())
		}
		if s.State() == Failed && !faults.Injected(s.Err()) {
			t.Fatalf("session %d failed organically: %v", s.ID, s.Err())
		}
	}

	snap := f.Snapshot()
	if snap.Submitted != sessions || snap.Completed != sessions {
		t.Fatalf("snapshot lost sessions: %+v", snap)
	}
	if snap.Retries == 0 {
		t.Fatal("faults fired but the retry lane never did")
	}
	if snap.BackoffWaitSecs <= 0 {
		t.Fatalf("retries consumed no virtual backoff: %+v", snap)
	}
	if retried := countDone(got); retried < baseDone {
		t.Fatalf("retry fleet finished %d sessions, no-retry baseline %d", retried, baseDone)
	}

	// The resilience counters must survive into the rendered snapshot.
	text := snap.Render()
	if want := fmt.Sprintf("%d retries", snap.Retries); !containsStr(text, want) {
		t.Fatalf("rendered snapshot missing %q:\n%s", want, text)
	}
	if !containsStr(text, "quota stalls") || !containsStr(text, "breaker trips") {
		t.Fatalf("rendered snapshot missing resilience counters:\n%s", text)
	}
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// TestQuotaBoundViaJournal replays the journal and asserts the admission
// invariant directly: at no point are more than Quota attempts of one
// (bench, input) pair between their "admitted" event and the event that
// ends the attempt.
func TestQuotaBoundViaJournal(t *testing.T) {
	const quota = 2
	f := New(Config{
		Machine: machine.CascadeLake(), Workers: 8,
		Quota:      quota,
		Faults:     faults.New(faults.Config{Seed: 3, Rate: 0.15}),
		MaxRetries: 2,
	})
	defer f.Close()
	// Two pairs only, so eight workers must contend for 2×quota slots.
	specs := make([]SessionSpec, 24)
	for i := range specs {
		specs[i] = SessionSpec{Bench: "is", Seed: int64(i + 1)}
		if i%2 == 1 {
			specs[i] = SessionSpec{Bench: "cg", Seed: int64(i + 1)}
		}
	}
	if _, err := f.Run(specs); err != nil {
		t.Fatal(err)
	}

	type key struct{ bench, input string }
	inflight := make(map[key]int)
	running := make(map[int]bool) // session currently between admitted and attempt end
	for _, e := range f.Journal().Events() {
		k := key{e.Bench, e.Input}
		switch e.Type {
		case "admitted":
			inflight[k]++
			running[e.Session] = true
			if inflight[k] > quota {
				t.Fatalf("journal shows %d in-flight attempts for %v (quota %d) at seq %d",
					inflight[k], k, quota, e.Seq)
			}
		case "session-done", "session-degraded", "session-failed", "retry-scheduled":
			// The first attempt-ending event releases the slot; a
			// "retry-scheduled" after "session-failed" must not double-free.
			if running[e.Session] {
				inflight[k]--
				running[e.Session] = false
			}
		}
	}
	if snap := f.Snapshot(); snap.QuotaStalls == 0 {
		t.Fatalf("8 workers over 2 quota-%d pairs never stalled: %+v", quota, snap)
	}
}

// TestBreakerDegradesSessions forces consecutive rollbacks with an
// impossible improvement bar: the pair's breaker must trip after the
// threshold and park the remaining sessions as Degraded without running
// them.
func TestBreakerDegradesSessions(t *testing.T) {
	f := New(Config{
		Machine: machine.CascadeLake(), Workers: 1, // serial, so order is exact
		BreakerThreshold: 2,
		Session:          rpgcore.Config{MinImprovement: 1e9},
	})
	defer f.Close()
	specs := make([]SessionSpec, 6)
	for i := range specs {
		specs[i] = SessionSpec{Bench: "randacc", Seed: int64(i + 1)}
	}
	got, err := f.Run(specs)
	if err != nil {
		t.Fatal(err)
	}

	for i, s := range got[:2] {
		if s.State() != RolledBack {
			t.Fatalf("session %d = %v, want RolledBack (err %v)", i, s.State(), s.Err())
		}
	}
	for i, s := range got[2:] {
		if s.State() != Degraded {
			t.Fatalf("session %d = %v, want Degraded after the breaker tripped", i+2, s.State())
		}
		if s.Report() != nil {
			t.Fatalf("degraded session %d ran the controller", i+2)
		}
	}

	snap := f.Snapshot()
	if snap.BreakerTrips != 1 || snap.BreakersOpen != 1 || snap.Degraded != 4 {
		t.Fatalf("breaker counters: trips=%d open=%d degraded=%d",
			snap.BreakerTrips, snap.BreakersOpen, snap.Degraded)
	}
	opened := 0
	for _, e := range f.Journal().Events() {
		if e.Type == "breaker-open" {
			opened++
		}
	}
	if opened != 1 {
		t.Fatalf("journal records %d breaker-open events, want 1", opened)
	}
}

// TestPriorityOrdersDispatch holds the single worker hostage with a
// blocking fault hook, submits a low-priority batch then a high-priority
// straggler, and asserts the straggler is admitted first once the worker
// frees up.
func TestPriorityOrdersDispatch(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	blockOnce := rpgcore.Config{FaultHook: func(stage string) error {
		if stage == "profile" {
			select {
			case <-entered: // already signalled: later attempts pass through
			default:
				close(entered)
				<-release
			}
		}
		return nil
	}}

	f := New(Config{Machine: machine.CascadeLake(), Workers: 1})
	defer f.Close()
	if _, err := f.Submit(SessionSpec{Bench: "is", Seed: 1, Config: &blockOnce}); err != nil {
		t.Fatal(err)
	}
	<-entered // the worker is now parked inside session 0

	low, err := f.Submit(SessionSpec{Bench: "cg", Seed: 2, Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	high, err := f.Submit(SessionSpec{Bench: "randacc", Seed: 3, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	f.Drain()

	var order []int
	for _, e := range f.Journal().Events() {
		if e.Type == "admitted" {
			order = append(order, e.Session)
		}
	}
	want := []int{0, high.ID, low.ID}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("admission order %v, want %v", order, want)
	}
}

// TestCancelQueued is the graceful-shutdown path: with the only worker
// blocked, queued sessions are cancelled with ErrCanceled while the
// in-flight session finishes normally.
func TestCancelQueued(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	block := rpgcore.Config{FaultHook: func(stage string) error {
		if stage == "profile" {
			select {
			case <-entered:
			default:
				close(entered)
				<-release
			}
		}
		return nil
	}}

	f := New(Config{Machine: machine.CascadeLake(), Workers: 1})
	defer f.Close()
	running, err := f.Submit(SessionSpec{Bench: "is", Seed: 1, Config: &block})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	var queued []*Session
	for i := 0; i < 4; i++ {
		s, err := f.Submit(SessionSpec{Bench: "cg", Seed: int64(10 + i)})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, s)
	}

	if n := f.CancelQueued(); n != 4 {
		t.Fatalf("cancelled %d sessions, want 4", n)
	}
	close(release)
	f.Drain()

	if running.State() != Done {
		t.Fatalf("in-flight session = %v (err %v), want Done", running.State(), running.Err())
	}
	for _, s := range queued {
		if s.State() != Failed || !errors.Is(s.Err(), ErrCanceled) {
			t.Fatalf("cancelled session %d: state %v err %v", s.ID, s.State(), s.Err())
		}
	}
	if snap := f.Snapshot(); snap.Completed != 5 {
		t.Fatalf("snapshot lost sessions after cancellation: %+v", snap)
	}
}

// TestDrainAndCloseIdempotent: Drain and Close are safe to call repeatedly
// and in any order; Submit after Close reports the typed sentinel.
func TestDrainAndCloseIdempotent(t *testing.T) {
	f := New(Config{Machine: machine.CascadeLake(), Workers: 2})
	if _, err := f.Run(stressSpecs(4, 1)); err != nil {
		t.Fatal(err)
	}
	f.Drain()
	f.Drain()
	f.Close()
	f.Close()
	f.Drain() // after Close: the pool is empty, must not hang
	if _, err := f.Submit(SessionSpec{Bench: "is"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestJournalEventOrdering is the issue's lifecycle audit, run with faults
// and retries so the attempt machinery is exercised: 64 concurrent
// sessions on 8 workers, then a full journal replay asserting every
// per-session event sequence is legal and attempt-aware.
func TestJournalEventOrdering(t *testing.T) {
	const sessions = 64
	f := New(Config{
		Machine: machine.CascadeLake(), Workers: 8,
		Faults:     faults.New(faults.Config{Seed: 11, Rate: 0.2}),
		MaxRetries: 2, Quota: 3, BreakerThreshold: 4,
	})
	defer f.Close()
	if _, err := f.Run(stressSpecs(sessions, 100)); err != nil {
		t.Fatal(err)
	}

	stateByName := map[string]State{}
	for st := Queued; st <= Degraded; st++ {
		stateByName[st.String()] = st
	}
	legal := func(from, to State) bool {
		for _, n := range legalNext[from] {
			if n == to {
				return true
			}
		}
		return false
	}

	for _, s := range f.Sessions() {
		evs := f.Journal().SessionEvents(s.ID)
		if len(evs) == 0 || evs[0].Type != "queued" {
			t.Fatalf("session %d journal does not open with %q: %+v", s.ID, "queued", evs)
		}
		cur := Queued
		attempt := 0
		terminal := false
		lastWall := -1.0
		for i, e := range evs {
			if terminal {
				t.Fatalf("session %d: event %q after its terminal record", s.ID, e.Type)
			}
			if e.Wall < lastWall {
				t.Fatalf("session %d: wall time went backwards at event %d", s.ID, i)
			}
			lastWall = e.Wall
			switch e.Type {
			case "queued":
				if i != 0 {
					t.Fatalf("session %d: %q not the first event", s.ID, e.Type)
				}
				cur = Queued
			case "admitted":
				if cur != Queued {
					t.Fatalf("session %d: admitted from %v", s.ID, cur)
				}
				if e.Attempt != attempt {
					t.Fatalf("session %d: admitted attempt %d, expected %d", s.ID, e.Attempt, attempt)
				}
			case "state":
				next, ok := stateByName[e.State]
				if !ok {
					t.Fatalf("session %d: unknown state %q", s.ID, e.State)
				}
				if !legal(cur, next) {
					t.Fatalf("session %d: illegal edge %v -> %v", s.ID, cur, next)
				}
				cur = next
			case "retry-scheduled":
				if cur != Failed && cur != RolledBack {
					t.Fatalf("session %d: retry scheduled from %v", s.ID, cur)
				}
				if e.Attempt != attempt+1 {
					t.Fatalf("session %d: retry attempt %d after attempt %d", s.ID, e.Attempt, attempt)
				}
				attempt = e.Attempt
			case "session-done":
				if cur != Done && cur != RolledBack {
					t.Fatalf("session %d: done record in state %v", s.ID, cur)
				}
				terminal = true
			case "session-degraded":
				if cur != Degraded {
					t.Fatalf("session %d: degraded record in state %v", s.ID, cur)
				}
				terminal = true
			case "session-failed":
				if cur != Failed {
					t.Fatalf("session %d: failed record in state %v", s.ID, cur)
				}
				// Terminal only if no retry follows; the replay loop's
				// terminal flag stays down so a retry-scheduled may come.
			}
		}
		if !s.State().Terminal() {
			t.Fatalf("session %d finished replay in non-terminal %v", s.ID, s.State())
		}
		if cur != s.State() {
			t.Fatalf("session %d: journal ends in %v but session is %v", s.ID, cur, s.State())
		}
		if s.Attempt() != attempt {
			t.Fatalf("session %d: journal counted attempt %d, session says %d", s.ID, attempt, s.Attempt())
		}
	}
}

// TestZeroKnobRunsMatchLegacyFIFO: with every admission knob at its zero
// value the scheduler must be indistinguishable from the original FIFO
// fleet — same dispatch order on one worker, no policy counters, no new
// journal event types.
func TestZeroKnobRunsMatchLegacyFIFO(t *testing.T) {
	f := New(Config{Machine: machine.CascadeLake(), Workers: 1})
	defer f.Close()
	got, err := f.Run(stressSpecs(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for _, e := range f.Journal().Events() {
		switch e.Type {
		case "admitted":
			order = append(order, e.Session)
		case "retry-scheduled", "breaker-open", "breaker-closed", "session-degraded":
			t.Fatalf("zero-knob run emitted %q", e.Type)
		}
	}
	for i, id := range order {
		if id != got[i].ID {
			t.Fatalf("zero-knob dispatch order %v is not FIFO", order)
		}
	}
	snap := f.Snapshot()
	if snap.Retries != 0 || snap.QuotaStalls != 0 || snap.BreakerTrips != 0 ||
		snap.Degraded != 0 || snap.VirtualClock != 0 {
		t.Fatalf("zero-knob run accrued policy counters: %+v", snap)
	}
}
