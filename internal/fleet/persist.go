// Crash-safe persistence for the fleet. When Config.StateDir is set, the
// fleet tees every journal event into an append-only checksummed WAL
// (internal/wal) and periodically snapshots the profile store plus the
// admission scheduler's exportable state into a second, atomically
// replaced file. Recovery (recover.go) is snapshot + roll-forward: load
// the last snapshot, replay the journal events past its watermark, and
// re-admit every session that never reached a terminal record.
//
// Persistence must never block session progress: the first failed disk
// write flips the fleet into degraded in-memory mode — the WAL is
// abandoned, sessions keep running, and the metrics snapshot surfaces
// "Persistence: degraded" with the error.
package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"rpg2/internal/admission"
	"rpg2/internal/baselines"
	"rpg2/internal/machine"
	"rpg2/internal/wal"
)

// State-dir file names: the event WAL and the store+scheduler snapshot.
const (
	journalFile  = "journal.wal"
	snapshotFile = "snapshot.wal"
)

// SpecRecord is the JSON-safe projection of a SessionSpec the WAL
// persists on "queued" events so a crashed fleet can re-admit waiting
// sessions. Closure-carrying fields (Spec.Config's hooks) cannot survive
// a process, so recovered sessions re-run under the fleet's base
// controller config; a Machine override is carried by name.
type SpecRecord struct {
	Bench             string                 `json:"bench"`
	Input             string                 `json:"input,omitempty"`
	Kind              uint8                  `json:"kind,omitempty"`
	Priority          int                    `json:"priority,omitempty"`
	Machine           string                 `json:"machine,omitempty"`
	Seed              int64                  `json:"seed,omitempty"`
	Cold              bool                   `json:"cold,omitempty"`
	RunSeconds        float64                `json:"run_seconds,omitempty"`
	TailSeconds       float64                `json:"tail_seconds,omitempty"`
	TailWindows       int                    `json:"tail_windows,omitempty"`
	TailWindowSeconds float64                `json:"tail_window_seconds,omitempty"`
	Distance          int                    `json:"distance,omitempty"`
	Candidates        []int                  `json:"candidates,omitempty"`
	Sweep             *baselines.SweepConfig `json:"sweep,omitempty"`
	ProfileSeconds    float64                `json:"profile_seconds,omitempty"`
}

// recordSpec projects a spec for the WAL.
func recordSpec(spec SessionSpec) *SpecRecord {
	r := &SpecRecord{
		Bench: spec.Bench, Input: spec.Input, Kind: uint8(spec.Kind),
		Priority: spec.Priority, Seed: spec.Seed, Cold: spec.Cold,
		RunSeconds: spec.RunSeconds, TailSeconds: spec.TailSeconds,
		TailWindows: spec.TailWindows, TailWindowSeconds: spec.TailWindowSeconds,
		Distance: spec.Distance, Candidates: spec.Candidates,
		Sweep: spec.Sweep, ProfileSeconds: spec.ProfileSeconds,
	}
	if spec.Machine != nil {
		r.Machine = spec.Machine.Name
	}
	return r
}

// spec rehydrates the projection. An unknown machine-override name falls
// back to the fleet's machine (dropping the override, not the session).
func (r *SpecRecord) spec() SessionSpec {
	s := SessionSpec{
		Bench: r.Bench, Input: r.Input, Kind: Kind(r.Kind),
		Priority: r.Priority, Seed: r.Seed, Cold: r.Cold,
		RunSeconds: r.RunSeconds, TailSeconds: r.TailSeconds,
		TailWindows: r.TailWindows, TailWindowSeconds: r.TailWindowSeconds,
		Distance: r.Distance, Candidates: r.Candidates,
		Sweep: r.Sweep, ProfileSeconds: r.ProfileSeconds,
	}
	if r.Machine != "" {
		if m, ok := machine.ByName(r.Machine); ok {
			s.Machine = &m
		}
	}
	return s
}

// walMeta is the first record of both state files: it names the file's
// role and epoch, and (for snapshots) the journal watermark — the highest
// event Seq whose effects the snapshot already folds in.
type walMeta struct {
	Wal   string `json:"wal"`
	Epoch int    `json:"epoch"`
	Seq   int    `json:"seq"`
}

// walSched frames the scheduler state inside a snapshot file.
type walSched struct {
	Sched *admission.PersistState `json:"sched"`
}

// persister owns the fleet's on-disk state. All methods are safe for
// concurrent use and degrade (rather than fail) on disk errors.
type persister struct {
	dir       string
	epoch     int
	snapEvery int

	mu        sync.Mutex
	log       *wal.Log
	lastSeq   int // highest event Seq appended to the WAL
	commits   int // store commits since the last snapshot
	snapshots int
	degraded  bool
	err       error
	closed    bool
}

// openPersister starts epoch state under dir: it reads the previous
// epoch number from whatever state files exist, bumps it, truncates the
// journal WAL, and stamps the epoch record. The caller writes the initial
// snapshot (it owns the store and scheduler). A nil persister with a nil
// error means persistence is disabled; a non-nil error means the state
// dir is unusable and the fleet should degrade from birth.
func openPersister(dir string, fsync wal.SyncMode, interval, snapEvery int) (*persister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if snapEvery <= 0 {
		snapEvery = 8
	}
	epoch := prevEpoch(dir) + 1
	// A fresh epoch starts a fresh journal: everything before it lives in
	// the initial snapshot the fleet writes right after this.
	if err := os.Remove(filepath.Join(dir, journalFile)); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	log, _, err := wal.Open(filepath.Join(dir, journalFile), wal.Config{Sync: fsync, Interval: interval})
	if err != nil {
		return nil, err
	}
	p := &persister{dir: dir, epoch: epoch, snapEvery: snapEvery, log: log, lastSeq: -1}
	meta, _ := json.Marshal(walMeta{Wal: "journal", Epoch: epoch})
	if err := log.Append(meta); err != nil {
		log.Abort()
		return nil, err
	}
	return p, nil
}

// prevEpoch finds the newest epoch recorded in dir's state files (0 when
// there are none).
func prevEpoch(dir string) int {
	best := 0
	for _, name := range []string{snapshotFile, journalFile} {
		recs, _, err := wal.ReadAll(filepath.Join(dir, name))
		if err != nil || len(recs) == 0 {
			continue
		}
		var m walMeta
		if json.Unmarshal(recs[0], &m) == nil && m.Epoch > best {
			best = m.Epoch
		}
	}
	return best
}

// appendEvent is the journal sink: it runs under the journal lock, so WAL
// records land in Seq order. Failures degrade instead of propagating.
func (p *persister) appendEvent(e Event) {
	payload, err := json.Marshal(e)
	if err != nil {
		p.fail(fmt.Errorf("encode event: %w", err))
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.degraded || p.closed {
		return
	}
	if err := p.log.Append(payload); err != nil {
		p.failLocked(err)
		return
	}
	p.lastSeq = e.Seq
	if e.Type == "store-commit" {
		p.commits++
	}
}

// snapshotDue reports whether enough store commits accumulated to justify
// a fresh snapshot.
func (p *persister) snapshotDue() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.degraded && !p.closed && p.commits >= p.snapEvery
}

// watermark is the highest event Seq known to be in the WAL. Capture it
// BEFORE exporting the store: every store mutation happens before its
// journal event, so an export taken afterwards folds in every event up to
// (at least) this Seq, and replaying a little extra is idempotent.
func (p *persister) watermark() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastSeq
}

// writeSnapshot atomically replaces the snapshot file with the given
// state, covering journal events up to seq.
func (p *persister) writeSnapshot(seq int, sched admission.PersistState, entries []KeyedEntry) {
	payloads := make([][]byte, 0, len(entries)+2)
	meta, _ := json.Marshal(walMeta{Wal: "snapshot", Epoch: p.epoch, Seq: seq})
	payloads = append(payloads, meta)
	sc, err := json.Marshal(walSched{Sched: &sched})
	if err != nil {
		p.fail(fmt.Errorf("encode scheduler state: %w", err))
		return
	}
	payloads = append(payloads, sc)
	for _, ke := range entries {
		b, err := json.Marshal(ke)
		if err != nil {
			p.fail(fmt.Errorf("encode store entry: %w", err))
			return
		}
		payloads = append(payloads, b)
	}

	p.mu.Lock()
	if p.degraded || p.closed {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	err = wal.WriteAtomic(filepath.Join(p.dir, snapshotFile), payloads)
	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil {
		p.failLocked(err)
		return
	}
	p.snapshots++
	p.commits = 0
}

// fail flips the persister into degraded in-memory mode.
func (p *persister) fail(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failLocked(err)
}

func (p *persister) failLocked(err error) {
	if p.degraded {
		return
	}
	p.degraded = true
	p.err = err
	if p.log != nil {
		p.log.Abort()
	}
}

// close flushes and closes the WAL; the caller writes the final snapshot
// first. Idempotent.
func (p *persister) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	if p.log != nil && !p.degraded {
		if err := p.log.Close(); err != nil {
			p.degraded, p.err = true, err
		}
	}
}

// health fills the snapshot's persistence block.
func (p *persister) health(s *Snapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.degraded {
		s.Persistence = "degraded"
		if p.err != nil {
			s.PersistenceError = p.err.Error()
		}
	} else {
		s.Persistence = "active"
	}
	s.WALEpoch = p.epoch
	s.WALSnapshots = p.snapshots
	if p.log != nil {
		s.WALRecords = p.log.Records()
	}
}

// degradedPersister represents a fleet whose state dir was unusable from
// birth: permanently degraded, never writing.
func degradedPersister(dir string, err error) *persister {
	return &persister{dir: dir, degraded: true, err: err, lastSeq: -1}
}
