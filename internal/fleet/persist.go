// Crash-safe persistence for the fleet. When Config.StateDir is set, the
// fleet tees every journal event into an append-only checksummed WAL
// (internal/wal) and periodically snapshots the profile store plus the
// admission scheduler's exportable state into a second, atomically
// replaced file. Recovery (recover.go) is snapshot + roll-forward: load
// the last snapshot, replay the journal events past its watermark, and
// re-admit every session that never reached a terminal record.
//
// Persistence must never block session progress: a failed disk write flips
// the fleet into degraded in-memory mode — the WAL is abandoned, sessions
// keep running, and the metrics snapshot surfaces "Persistence: degraded"
// with the error. Degradation is no longer forever: unless re-arming is
// disabled (Config.RearmBackoff < 0) or the state dir was unusable from
// birth, a degraded persister waits a capped, journal-event-counted
// backoff (a virtual clock, so tests don't sleep) and then re-arms — a
// fresh epoch snapshot of live state, a fresh staged journal re-seeded
// with every non-terminal session's history, committed atomically exactly
// like startup. The arc is journaled as "persist-degraded" /
// "persist-rearm" / "persist-rearmed" fleet-level events.
package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"rpg2/internal/admission"
	"rpg2/internal/baselines"
	"rpg2/internal/drift"
	"rpg2/internal/faults"
	"rpg2/internal/machine"
	"rpg2/internal/wal"
)

// State-dir file names: the event WAL, the store+scheduler snapshot, and
// the staged journal a fresh epoch appends to until commitJournal
// atomically renames it over journalFile.
//
// A single-shard store (StoreShards <= 1) persists exactly as before the
// sharding refactor: one snapshotFile holding meta + scheduler + entries.
// A sharded store persists as a *snapshot set*: one shard-<i>.wal per
// shard (meta + that shard's entries), each replaced atomically, sealed
// by manifestFile — meta (epoch, watermark, shard count) plus the
// scheduler state in its own record — written last. The manifest is the
// commit point: recovery trusts a shard set only as far as the manifest's
// watermark, so a crash that lands between shard writes simply recovers
// at the previous manifest's consistent epoch and rolls the journal
// forward (replay is idempotent, so shard files newer than the manifest
// are harmless).
const (
	journalFile      = "journal.wal"
	snapshotFile     = "snapshot.wal"
	journalStageFile = "journal.next"
	manifestFile     = "manifest.wal"
)

// shardFileName is the snapshot file for one store shard.
func shardFileName(i int) string { return fmt.Sprintf("shard-%d.wal", i) }

// storeState is a store snapshot in its shard layout: one entry slice per
// shard. shards is 1 (with a single, possibly nil, slice) for Memory or a
// disabled store.
type storeState struct {
	shards   int
	perShard [][]KeyedEntry
}

// SpecRecord is the JSON-safe projection of a SessionSpec the WAL
// persists on "queued" events so a crashed fleet can re-admit waiting
// sessions. Closure-carrying fields (Spec.Config's hooks) cannot survive
// a process, so recovered sessions re-run under the fleet's base
// controller config; a Machine override is carried by name.
type SpecRecord struct {
	Bench             string                 `json:"bench"`
	Input             string                 `json:"input,omitempty"`
	Kind              uint8                  `json:"kind,omitempty"`
	Priority          int                    `json:"priority,omitempty"`
	Machine           string                 `json:"machine,omitempty"`
	Seed              int64                  `json:"seed,omitempty"`
	Cold              bool                   `json:"cold,omitempty"`
	RunSeconds        float64                `json:"run_seconds,omitempty"`
	TailSeconds       float64                `json:"tail_seconds,omitempty"`
	TailWindows       int                    `json:"tail_windows,omitempty"`
	TailWindowSeconds float64                `json:"tail_window_seconds,omitempty"`
	Distance          int                    `json:"distance,omitempty"`
	Candidates        []int                  `json:"candidates,omitempty"`
	Sweep             *baselines.SweepConfig `json:"sweep,omitempty"`
	ProfileSeconds    float64                `json:"profile_seconds,omitempty"`
	Tenant            string                 `json:"tenant,omitempty"`
}

// RecordSpec projects a spec into its JSON-safe WAL form — the same
// projection the daemon's HTTP submit endpoint accepts on the wire.
func RecordSpec(spec SessionSpec) *SpecRecord {
	r := &SpecRecord{
		Bench: spec.Bench, Input: spec.Input, Kind: uint8(spec.Kind),
		Priority: spec.Priority, Seed: spec.Seed, Cold: spec.Cold,
		RunSeconds: spec.RunSeconds, TailSeconds: spec.TailSeconds,
		TailWindows: spec.TailWindows, TailWindowSeconds: spec.TailWindowSeconds,
		Distance: spec.Distance, Candidates: spec.Candidates,
		Sweep: spec.Sweep, ProfileSeconds: spec.ProfileSeconds,
		Tenant: spec.Tenant,
	}
	if spec.Machine != nil {
		r.Machine = spec.Machine.Name
	}
	return r
}

// recordSpec is the WAL-internal alias for RecordSpec.
func recordSpec(spec SessionSpec) *SpecRecord { return RecordSpec(spec) }

// Spec rehydrates the projection. An unknown machine-override name falls
// back to the fleet's machine (dropping the override, not the session).
func (r *SpecRecord) Spec() SessionSpec {
	s := SessionSpec{
		Bench: r.Bench, Input: r.Input, Kind: Kind(r.Kind),
		Priority: r.Priority, Seed: r.Seed, Cold: r.Cold,
		RunSeconds: r.RunSeconds, TailSeconds: r.TailSeconds,
		TailWindows: r.TailWindows, TailWindowSeconds: r.TailWindowSeconds,
		Distance: r.Distance, Candidates: r.Candidates,
		Sweep: r.Sweep, ProfileSeconds: r.ProfileSeconds,
		Tenant: r.Tenant,
	}
	if r.Machine != "" {
		if m, ok := machine.ByName(r.Machine); ok {
			s.Machine = &m
		}
	}
	return s
}

// walMeta is the first record of every state file: it names the file's
// role ("journal", "snapshot", "shard", "manifest") and epoch, and (for
// snapshot-role files) the journal watermark — the highest event Seq whose
// effects the snapshot already folds in. Shard files add their index and
// the layout's shard count; the manifest adds the shard count it seals.
// The extra fields are omitempty so single-shard snapshot metas are
// byte-identical to the pre-sharding fleet's.
type walMeta struct {
	Wal    string `json:"wal"`
	Epoch  int    `json:"epoch"`
	Seq    int    `json:"seq"`
	Shard  int    `json:"shard,omitempty"`
	Shards int    `json:"shards,omitempty"`
}

// walSched frames the scheduler state inside a snapshot file.
type walSched struct {
	Sched *admission.PersistState `json:"sched"`
}

// DriftRecord is one session's persisted watchdog posture: the re-tune
// lane grants consumed, completed re-tunes, whether a re-tune admission
// is in flight, the warm seed distance it would start from, and the
// detector's exported state. A WAL snapshot carries one per session with
// an armed watchdog so Recover resumes them armed.
type DriftRecord struct {
	Session  int         `json:"session"`
	Granted  int         `json:"granted,omitempty"`
	Retunes  int         `json:"retunes,omitempty"`
	Retuning bool        `json:"retuning,omitempty"`
	Distance int         `json:"distance,omitempty"`
	Detector drift.State `json:"detector"`
}

// walDrift frames the watchdog records inside a snapshot file. The record
// is only written when at least one session has drift state, so zero-knob
// snapshots stay byte-identical to the pre-watchdog fleet.
type walDrift struct {
	Drift []DriftRecord `json:"drift"`
}

// persister owns the fleet's on-disk state. All methods are safe for
// concurrent use and degrade (rather than fail) on disk errors.
type persister struct {
	dir       string
	snapEvery int
	fsync     wal.SyncMode
	interval  int
	disk      *faults.DiskInjector // nil: no injected disk faults
	rearmBase int                  // events between degradation and re-arm (<= 0: never)
	rearmCap  int

	// hookArmed gates the disk-fault hook: injection starts only after the
	// epoch is open, so a chaos run always gets past birth and exercises
	// the degrade/re-arm arc instead of degrading before the first event.
	// Atomic because the hook runs under the WAL's lock while appendEvent
	// holds p.mu — the hook must not touch p.mu.
	hookArmed atomic.Bool

	mu        sync.Mutex
	epoch     int
	shards    int // snapshot layout this epoch writes (1 = legacy single file)
	log       *wal.Log
	lastSeq   int // highest event Seq appended to the WAL
	commits   int // store commits since the last snapshot
	snapshots int
	degraded  bool
	err       error
	closed    bool
	permanent bool // degraded from birth or by refusal: never re-arm
	notice    bool // a degradation tendPersist has not journaled yet

	rearmWait     int // journal events left before the next re-arm attempt
	rearmBackoff  int // current backoff (doubles per failed attempt, capped)
	rearmAttempts int
	rearming      bool
	rearms        int
	degradations  int
}

// faultHook adapts the configured disk injector to the wal layer's hook
// shape for one file family, gated on hookArmed. Nil when no injector is
// configured, so the zero-knob fleet takes no new code path at all.
func (p *persister) faultHook(key string) func(op string) error {
	if p.disk == nil {
		return nil
	}
	return func(op string) error {
		if !p.hookArmed.Load() {
			return nil
		}
		return p.disk.Check(key, op)
	}
}

// openPersister starts epoch state under dir, ordered so that every
// crash instant leaves a recoverable pairing. It reads the previous
// epoch number from whatever state files exist, bumps it, atomically
// writes the fresh epoch's snapshot (carrying the caller's store and
// scheduler state) while the old journal is still untouched, and then
// opens a *staged* journal at journalStageFile stamped with the epoch
// record. Events append to the staged journal until commitJournal
// renames it over journalFile; until that rename, recovery reads the new
// snapshot over the old journal (readState's snapshot-ahead branch), so
// neither rolled-forward store commits nor pending sessions are ever
// orphaned behind a stale snapshot. The reverse order — truncate the
// journal, then snapshot — would let a crash between the two lose both.
// An error means the state dir is unusable (nothing was destroyed) and
// the fleet should degrade from birth. Injected disk faults (cfg.DiskFaults)
// arm only once the epoch is open: birth either succeeds or degrades
// permanently, so the injector targets the steady state the re-arm
// machinery can actually heal.
func openPersister(dir string, cfg Config, sched admission.PersistState, dr []DriftRecord, ss storeState) (*persister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snapEvery := cfg.SnapshotEvery
	if snapEvery <= 0 {
		snapEvery = 8
	}
	if ss.shards < 1 {
		ss.shards = 1
	}
	rearmBase, rearmCap := cfg.RearmBackoff, cfg.RearmBackoffCap
	if rearmBase == 0 {
		rearmBase = 64
	}
	if rearmCap <= 0 {
		rearmCap = 8 * rearmBase
	}
	p := &persister{
		dir: dir, snapEvery: snapEvery, fsync: cfg.Fsync, interval: cfg.FsyncInterval,
		disk: cfg.DiskFaults, rearmBase: rearmBase, rearmCap: rearmCap,
		lastSeq: -1,
	}
	epoch := prevEpoch(dir) + 1
	if err := writeSnapshotSet(dir, epoch, -1, sched, dr, ss, nil); err != nil {
		return nil, err
	}
	// The fresh epoch's snapshot set is durable in the configured layout;
	// files from the *other* layout (a shard-count change across restarts)
	// and shard files beyond the configured count all carry older epochs
	// now, so dropping them is a best-effort tidy — readState would have
	// out-voted them on epoch anyway.
	cleanupStaleSnapshots(dir, ss.shards)
	// Stage the fresh journal beside the old one; a stale stage file is a
	// previous epoch start that died before committing, superseded now.
	staged := filepath.Join(dir, journalStageFile)
	if err := os.Remove(staged); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	log, _, err := wal.Open(staged, wal.Config{Sync: cfg.Fsync, Interval: cfg.FsyncInterval, FaultHook: p.faultHook(journalFile)})
	if err != nil {
		return nil, err
	}
	p.epoch, p.shards, p.log, p.snapshots = epoch, ss.shards, log, 1
	meta, _ := json.Marshal(walMeta{Wal: "journal", Epoch: epoch})
	if err := log.Append(meta); err != nil {
		log.Abort()
		return nil, err
	}
	p.hookArmed.Store(true)
	return p, nil
}

// cleanupStaleSnapshots removes snapshot files the configured layout will
// never write again: the sharded set when the layout is single-file, the
// legacy single file when sharded, and shard files at indexes past the
// configured count. Purely best-effort — every candidate is from an older
// epoch, which recovery already ignores.
func cleanupStaleSnapshots(dir string, shards int) {
	if shards <= 1 {
		os.Remove(filepath.Join(dir, manifestFile))
	} else {
		os.Remove(filepath.Join(dir, snapshotFile))
	}
	stale, _ := filepath.Glob(filepath.Join(dir, "shard-*.wal"))
	for _, f := range stale {
		var i int
		if _, err := fmt.Sscanf(filepath.Base(f), "shard-%d.wal", &i); err != nil {
			continue
		}
		if shards <= 1 || i >= shards {
			os.Remove(f)
		}
	}
}

// commitJournal publishes the staged journal: flush it, then atomically
// rename it over journalFile. The open log keeps appending to the same
// inode — only the name changes. Everything appended before the commit
// (the epoch record, Recover's re-admitted "queued" events) is already
// inside the file when it takes the journal's name, so a pending session
// is vouched for by the old journal up to the rename and by the new one
// from the rename on, with no gap.
func (p *persister) commitJournal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.degraded || p.closed {
		return
	}
	if err := p.log.Sync(); err != nil {
		p.failLocked(err)
		return
	}
	if err := os.Rename(filepath.Join(p.dir, journalStageFile), filepath.Join(p.dir, journalFile)); err != nil {
		p.failLocked(err)
		return
	}
	// Best effort: persist the rename itself.
	if d, err := os.Open(p.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// prevEpoch finds the newest epoch recorded in dir's state files (0 when
// there are none). Shard files count too: an epoch start that died after
// writing shard files but before its manifest must not get its epoch
// number reused.
func prevEpoch(dir string) int {
	names := []string{snapshotFile, journalFile, manifestFile}
	if shardFiles, err := filepath.Glob(filepath.Join(dir, "shard-*.wal")); err == nil {
		for _, f := range shardFiles {
			names = append(names, filepath.Base(f))
		}
	}
	best := 0
	for _, name := range names {
		recs, _, err := wal.ReadAll(filepath.Join(dir, name))
		if err != nil || len(recs) == 0 {
			continue
		}
		var m walMeta
		if json.Unmarshal(recs[0], &m) == nil && m.Epoch > best {
			best = m.Epoch
		}
	}
	return best
}

// appendEvent is the journal sink: it runs under the journal lock, so WAL
// records land in Seq order. Failures degrade instead of propagating.
func (p *persister) appendEvent(e Event) {
	payload, err := json.Marshal(e)
	if err != nil {
		p.fail(fmt.Errorf("encode event: %w", err))
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.degraded || p.closed {
		// Degraded time is measured in journal events — a virtual clock the
		// re-arm backoff counts down on, so tests never sleep and idle
		// fleets never churn the disk they just failed on.
		if p.degraded && !p.closed && !p.permanent && p.rearmBase > 0 && p.rearmWait > 0 {
			p.rearmWait--
		}
		return
	}
	if err := p.log.Append(payload); err != nil {
		p.failLocked(err)
		return
	}
	p.lastSeq = e.Seq
	if e.Type == "store-commit" {
		p.commits++
	}
}

// claimSnapshot reports whether enough store commits accumulated to
// justify a fresh snapshot and, when they have, claims the work by
// resetting the counter under the lock — workers racing across the same
// threshold get exactly one true, so exactly one of them snapshots. A
// claimed snapshot that then fails to write degrades the persister, so
// the claim never needs restoring.
func (p *persister) claimSnapshot() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.degraded || p.closed || p.commits < p.snapEvery {
		return false
	}
	p.commits = 0
	return true
}

// watermark is the highest event Seq known to be in the WAL. Capture it
// BEFORE exporting the store: every store mutation happens before its
// journal event, so an export taken afterwards folds in every event up to
// (at least) this Seq, and replaying a little extra is idempotent.
func (p *persister) watermark() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastSeq
}

// snapshotPayloads frames a single-file snapshot's records: meta,
// scheduler state, watchdog state (only when non-empty, keeping zero-knob
// snapshots in the pre-watchdog format byte-for-byte), store entries.
func snapshotPayloads(epoch, seq int, sched admission.PersistState, dr []DriftRecord, entries []KeyedEntry) ([][]byte, error) {
	payloads := make([][]byte, 0, len(entries)+3)
	meta, _ := json.Marshal(walMeta{Wal: "snapshot", Epoch: epoch, Seq: seq})
	payloads = append(payloads, meta)
	sc, err := json.Marshal(walSched{Sched: &sched})
	if err != nil {
		return nil, fmt.Errorf("encode scheduler state: %w", err)
	}
	payloads = append(payloads, sc)
	if len(dr) > 0 {
		db, err := json.Marshal(walDrift{Drift: dr})
		if err != nil {
			return nil, fmt.Errorf("encode drift state: %w", err)
		}
		payloads = append(payloads, db)
	}
	for _, ke := range entries {
		b, err := json.Marshal(ke)
		if err != nil {
			return nil, fmt.Errorf("encode store entry: %w", err)
		}
		payloads = append(payloads, b)
	}
	return payloads, nil
}

// shardPayloads frames one shard's snapshot file: meta (with the shard
// index and layout width), then that shard's entries. The scheduler state
// does not live here — it moved to its own record in the manifest, so a
// shard file is purely store data.
func shardPayloads(epoch, seq, shard, shards int, entries []KeyedEntry) ([][]byte, error) {
	payloads := make([][]byte, 0, len(entries)+1)
	meta, _ := json.Marshal(walMeta{Wal: "shard", Epoch: epoch, Seq: seq, Shard: shard, Shards: shards})
	payloads = append(payloads, meta)
	for _, ke := range entries {
		b, err := json.Marshal(ke)
		if err != nil {
			return nil, fmt.Errorf("encode store entry: %w", err)
		}
		payloads = append(payloads, b)
	}
	return payloads, nil
}

// manifestPayloads frames the manifest that seals a shard set: meta
// (epoch, watermark, shard count) plus the scheduler state as its own
// record, then the watchdog state when non-empty (shard files stay purely
// store data).
func manifestPayloads(epoch, seq, shards int, sched admission.PersistState, dr []DriftRecord) ([][]byte, error) {
	meta, _ := json.Marshal(walMeta{Wal: "manifest", Epoch: epoch, Seq: seq, Shards: shards})
	sc, err := json.Marshal(walSched{Sched: &sched})
	if err != nil {
		return nil, fmt.Errorf("encode scheduler state: %w", err)
	}
	payloads := [][]byte{meta, sc}
	if len(dr) > 0 {
		db, err := json.Marshal(walDrift{Drift: dr})
		if err != nil {
			return nil, fmt.Errorf("encode drift state: %w", err)
		}
		payloads = append(payloads, db)
	}
	return payloads, nil
}

// writeSnapshotSet writes a full store+scheduler snapshot in the given
// layout: the legacy single file for one shard, or per-shard files sealed
// by the manifest for more. Ordering is the crash-safety story — every
// shard file is durable before the manifest that vouches for the set, so
// at any crash instant the newest *complete* manifest (or legacy
// snapshot) names a watermark all its shard files have folded in.
// The optional hook is the disk-fault seam, consulted once per file write.
func writeSnapshotSet(dir string, epoch, seq int, sched admission.PersistState, dr []DriftRecord, ss storeState, hook func(op string) error) error {
	if ss.shards <= 1 {
		var entries []KeyedEntry
		if len(ss.perShard) > 0 {
			entries = ss.perShard[0]
		}
		payloads, err := snapshotPayloads(epoch, seq, sched, dr, entries)
		if err != nil {
			return err
		}
		return wal.WriteAtomicHook(filepath.Join(dir, snapshotFile), payloads, hook)
	}
	for i := 0; i < ss.shards; i++ {
		var entries []KeyedEntry
		if i < len(ss.perShard) {
			entries = ss.perShard[i]
		}
		payloads, err := shardPayloads(epoch, seq, i, ss.shards, entries)
		if err != nil {
			return err
		}
		if err := wal.WriteAtomicHook(filepath.Join(dir, shardFileName(i)), payloads, hook); err != nil {
			return err
		}
	}
	payloads, err := manifestPayloads(epoch, seq, ss.shards, sched, dr)
	if err != nil {
		return err
	}
	return wal.WriteAtomicHook(filepath.Join(dir, manifestFile), payloads, hook)
}

// writeSnapshot atomically replaces the snapshot (file or shard set +
// manifest) with the given state, covering journal events up to seq.
// Callers serialize: the fleet holds its snapshot mutex across capture and
// write, so two writes never share a temp file.
func (p *persister) writeSnapshot(seq int, sched admission.PersistState, dr []DriftRecord, ss storeState) {
	p.mu.Lock()
	if p.degraded || p.closed {
		p.mu.Unlock()
		return
	}
	epoch := p.epoch
	p.mu.Unlock()
	err := writeSnapshotSet(p.dir, epoch, seq, sched, dr, ss, p.faultHook("snapshot"))
	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil {
		p.failLocked(err)
		return
	}
	p.snapshots++
}

// fail flips the persister into degraded in-memory mode.
func (p *persister) fail(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failLocked(err)
}

func (p *persister) failLocked(err error) {
	if p.degraded {
		return
	}
	p.degraded = true
	p.err = err
	p.degradations++
	if p.log != nil {
		p.log.Abort()
	}
	if !p.permanent && p.rearmBase > 0 {
		p.rearmBackoff = p.rearmBase
		p.rearmWait = p.rearmBackoff
		p.notice = true
	}
}

// takeDegradeNotice claims the one not-yet-journaled degradation so
// tendPersist emits exactly one "persist-degraded" event per degradation,
// no matter how many workers observe it.
func (p *persister) takeDegradeNotice() (msg string, n int, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.notice {
		return "", 0, false
	}
	p.notice = false
	if p.err != nil {
		msg = p.err.Error()
	}
	return msg, p.degradations, true
}

// claimRearm grants the re-arm to exactly one worker once the backoff
// clock has run out. The attempt number rides the claim for journaling.
func (p *persister) claimRearm() (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.degraded || p.permanent || p.closed || p.rearming ||
		p.rearmBase <= 0 || p.rearmWait > 0 {
		return 0, false
	}
	p.rearming = true
	p.rearmAttempts++
	return p.rearmAttempts, true
}

// rearmFailed records a failed re-arm attempt: stay degraded, double the
// backoff up to the cap, and wind the virtual clock back up.
func (p *persister) rearmFailed(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rearming = false
	p.err = err
	b := p.rearmBackoff * 2
	if b > p.rearmCap {
		b = p.rearmCap
	}
	if b < p.rearmBase {
		b = p.rearmBase
	}
	p.rearmBackoff = b
	p.rearmWait = b
}

// rearm rebuilds on-disk state for a degraded persister from the live
// in-memory journal: a fresh-epoch snapshot of the caller's captured
// state, then a staged journal re-seeded — under the journal lock, so no
// event can slip between the scan and the sink coming back to life — with
// every non-terminal session's history (so a later crash still re-admits
// them) plus any store/breaker events newer than the snapshot watermark,
// then the same atomic commit as startup. Every crash instant during a
// re-arm leaves one of the proven recovery pairings: before the commit the
// new snapshot out-epochs the old journal (readState's snapshot-ahead
// branch); after it, watermark roll-forward. The caller holds snapMu and
// must NOT hold the fleet lock.
func (p *persister) rearm(j *Journal, sched admission.PersistState, dr []DriftRecord, ss storeState) error {
	if ss.shards < 1 {
		ss.shards = 1
	}
	epoch := prevEpoch(p.dir) + 1
	// Watermark before capture is the standing snapshot discipline; here
	// the journal's own tail is the freshest "known Seq" there is. The
	// caller captured state after this point, so replaying a little extra
	// on recovery stays idempotent.
	w0 := j.LastSeq()
	if err := writeSnapshotSet(p.dir, epoch, w0, sched, dr, ss, p.faultHook("snapshot")); err != nil {
		p.rearmFailed(err)
		return err
	}
	cleanupStaleSnapshots(p.dir, ss.shards)
	staged := filepath.Join(p.dir, journalStageFile)
	if err := os.Remove(staged); err != nil && !os.IsNotExist(err) {
		p.rearmFailed(err)
		return err
	}
	log, _, err := wal.Open(staged, wal.Config{Sync: p.fsync, Interval: p.interval, FaultHook: p.faultHook(journalFile)})
	if err != nil {
		p.rearmFailed(err)
		return err
	}
	meta, _ := json.Marshal(walMeta{Wal: "journal", Epoch: epoch})
	if err := log.Append(meta); err != nil {
		log.Abort()
		p.rearmFailed(err)
		return err
	}
	var seedErr error
	j.withLock(func(events []Event) {
		// Pass 1 mirrors readState's terminality rules, last writer wins:
		// done/degraded end a session, a failure ends it unless cancelled
		// (resume re-admits drains), a retry or re-tune re-opens it.
		terminal := make(map[int]bool)
		for _, e := range events {
			if e.Session < 0 {
				continue
			}
			switch e.Type {
			case "session-done", "session-degraded":
				terminal[e.Session] = true
			case "session-failed":
				terminal[e.Session] = e.Err != ErrCanceled.Error()
			case "retry-scheduled", "retune-scheduled":
				terminal[e.Session] = false
			}
		}
		lastSeq := w0
		for _, e := range events {
			include := e.Session >= 0 && !terminal[e.Session]
			if !include && e.Seq > w0 {
				switch e.Type {
				case "store-commit", "store-invalidate", "breaker-open", "breaker-closed":
					include = true
				}
			}
			if !include {
				continue
			}
			payload, err := json.Marshal(e)
			if err != nil {
				seedErr = err
				return
			}
			if err := log.Append(payload); err != nil {
				seedErr = err
				return
			}
			if e.Seq > lastSeq {
				lastSeq = e.Seq
			}
		}
		// Swap while still holding the journal lock: the next event added
		// flows through the sink into the re-seeded log with no gap.
		p.mu.Lock()
		p.log = log
		p.epoch = epoch
		p.shards = ss.shards
		p.lastSeq = lastSeq
		p.commits = 0
		p.snapshots++
		p.degraded = false
		p.err = nil
		p.notice = false
		p.rearming = false
		p.rearms++
		p.mu.Unlock()
	})
	if seedErr != nil {
		log.Abort()
		p.rearmFailed(seedErr)
		return seedErr
	}
	// Publish: rename the staged journal into place. A failure here
	// re-degrades through the usual path (a fresh backoff at base — the
	// disk did accept a whole snapshot and journal, so this counts as a
	// new incident, not a continued one).
	p.commitJournal()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.degraded {
		return p.err
	}
	return nil
}

// close flushes and closes the WAL; the caller writes the final snapshot
// first. Idempotent.
func (p *persister) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	if p.log != nil && !p.degraded {
		if err := p.log.Close(); err != nil {
			p.degraded, p.err = true, err
		}
	}
}

// health fills the snapshot's persistence block.
func (p *persister) health(s *Snapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.degraded {
		s.Persistence = "degraded"
		if p.err != nil {
			s.PersistenceError = p.err.Error()
		}
		if !p.permanent && p.rearmBase > 0 {
			s.PersistRearmIn = p.rearmWait
		}
	} else {
		s.Persistence = "active"
	}
	s.WALEpoch = p.epoch
	s.WALSnapshots = p.snapshots
	if p.log != nil {
		s.WALRecords = p.log.Records()
	}
	s.PersistDegradations = p.degradations
	s.PersistRearms = p.rearms
	if p.disk != nil {
		s.DiskFaultsInjected = p.disk.Injected()
	}
}

// degradedPersister represents a fleet whose state dir was unusable from
// birth: permanently degraded, never writing — and never re-arming, since
// there is no epoch to heal back into (in the Overwrite-refusal case,
// re-arming would destroy exactly the recoverable state the refusal
// protects).
func degradedPersister(dir string, err error) *persister {
	return &persister{dir: dir, degraded: true, err: err, lastSeq: -1, permanent: true, degradations: 1}
}
