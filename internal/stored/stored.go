// Package stored is the out-of-process profile store: an HTTP/JSON daemon
// wrapping any local store.Store (Memory or Sharded) so multiple fleet
// daemons on one machine type can share profiles across processes. It is
// the backend the store.Store interface was extracted for — the remote
// client (internal/store/remote) implements the same interface over these
// endpoints, so a fleet cannot tell a shared daemon from a private map.
//
// The gen-guard contract is the design center: generations live here, in
// the wrapped store. Lookup and Commit return the daemon's gen, and
// Commit/Refund/Invalidate forward the caller's, so two fleet processes
// racing a commit on the same (bench, input, machine) key resolve exactly
// like two in-process workers — the loser's Invalidate/Refund no-ops
// against the winner's fresher generation.
//
// Endpoint map (one endpoint per interface method; POST bodies and all
// responses are JSON):
//
//	POST /v1/store/lookup             {key}        -> {entry, gen, found}
//	POST /v1/store/lookup-translated  {key}        -> {entry, from, gen, found}
//	POST /v1/store/peek               {key}        -> {entry, found}
//	POST /v1/store/peek-translated    {key}        -> {entry, from, found}
//	POST /v1/store/commit             {key, entry} -> {gen}
//	POST /v1/store/refund             {key, gen}   -> {ok}
//	POST /v1/store/invalidate         {key, gen}   -> {ok}
//	POST /v1/store/freeze                          -> {}
//	POST /v1/store/thaw                            -> {}
//	POST /v1/store/import             {entries}    -> {}
//	GET  /v1/store/export                          -> {entries}
//	GET  /v1/store/shard/{i}                       -> {entries}
//	GET  /v1/store/stats                           -> {len, shards, counters, shard_counters}
//	GET  /v1/healthz                               -> {status}
//
// With Config.StateDir set the daemon is crash-safe: every accepted
// mutation (a commit, a guard-passing invalidate, an import) appends to an
// op journal in internal/wal's checksummed framing, and the whole store
// snapshots atomically every SnapshotEvery mutations. Restart folds
// journal ops past the snapshot's watermark back over the snapshot, so a
// kill -9 loses at most the unsynced WAL tail.
package stored

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rpg2/internal/store"
	"rpg2/internal/wal"
)

// Config tunes a store daemon.
type Config struct {
	// Store is the wrapped store's reuse policy.
	Store store.Config
	// Shards is the wrapped store's shard count (0/1 = Memory).
	Shards int
	// StateDir persists the op journal and snapshots here (empty =
	// in-memory only). A state dir with prior state is recovered
	// automatically — durability is the daemon's whole point — unless
	// Fresh discards it.
	StateDir string
	// Fresh discards any prior state in StateDir instead of recovering it.
	Fresh bool
	// Fsync is the WAL durability policy (default interval).
	Fsync wal.SyncMode
	// FsyncInterval is the append count between fsyncs under interval
	// fsync (default 64).
	FsyncInterval int
	// SnapshotEvery rewrites the snapshot after this many journaled
	// mutations (default 256; negative = never, journal only).
	SnapshotEvery int
	// RequestTimeout bounds each request's handler (default 30s;
	// negative = no deadline).
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies, 413 past it (default 1 MiB;
	// negative = unlimited).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 256
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Server is the daemon: a wrapped store behind the endpoint map, with
// optional WAL persistence. Serve Handler (or HTTPServer) and stop with
// Drain.
type Server struct {
	cfg     Config
	store   store.Store
	mux     http.Handler
	persist *persister // nil when StateDir is unset

	// mu serializes mutating store ops with their journal appends, so the
	// journal's op order is the store's commit order — recovery folds ops
	// in sequence and must arrive at the same winner every racing pair
	// arrived at live. Read paths never take it.
	mu sync.Mutex

	draining  atomic.Bool
	drainOnce sync.Once
}

// New builds a daemon over a fresh store — or, when cfg.StateDir holds
// prior state, over the recovered contents.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, store: store.New(cfg.Store, cfg.Shards)}
	if cfg.StateDir != "" {
		p, recovered, err := openPersister(cfg)
		if err != nil {
			return nil, err
		}
		s.persist = p
		if len(recovered) > 0 {
			s.store.Import(recovered)
		}
		// Seal the epoch start: the fresh snapshot carries the recovered
		// state so the new journal can start empty.
		if err := p.snapshot(s.store.Export()); err != nil {
			p.close()
			return nil, err
		}
	}
	s.mux = s.routes()
	return s, nil
}

// Store exposes the wrapped store (tests and the CLI's final stats).
func (s *Server) Store() store.Store { return s.store }

// Recovered reports how many entries the state dir restored (0 for a
// fresh or in-memory daemon).
func (s *Server) Recovered() int {
	if s.persist == nil {
		return 0
	}
	return s.persist.recoveredEntries
}

// Handler returns the daemon's HTTP handler with the middleware stack
// (panic recovery outermost, then a per-request deadline) applied.
func (s *Server) Handler() http.Handler {
	return s.recoverPanics(s.withDeadline(s.mux))
}

// HTTPServer wraps Handler in an http.Server with real timeouts, so a
// stalled peer cannot pin a connection forever.
func (s *Server) HTTPServer() *http.Server {
	return &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// DrainStats reports what Drain flushed.
type DrainStats struct {
	// Entries is the live entry count at drain.
	Entries int
	// Snapshotted says whether a final durable snapshot landed.
	Snapshotted bool
}

// Drain seals the daemon: subsequent requests (except healthz) get 503, a
// final snapshot lands if persistence is active, and the WAL closes. Safe
// to call more than once.
func (s *Server) Drain() DrainStats {
	var st DrainStats
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		s.mu.Lock()
		defer s.mu.Unlock()
		st.Entries = s.store.Len()
		if s.persist != nil {
			st.Snapshotted = s.persist.snapshot(s.store.Export()) == nil
			s.persist.close()
		}
	})
	return st
}

// Degraded reports whether persistence failed mid-run (the daemon keeps
// serving from memory).
func (s *Server) Degraded() (string, bool) {
	if s.persist == nil {
		return "", false
	}
	return s.persist.degradedErr()
}

// --- wire types ---

type keyReq struct {
	Key store.Key `json:"key"`
}

type commitReq struct {
	Key   store.Key   `json:"key"`
	Entry store.Entry `json:"entry"`
}

type genReq struct {
	Key store.Key `json:"key"`
	Gen uint64    `json:"gen"`
}

type lookupResp struct {
	Entry store.Entry `json:"entry"`
	From  store.Key   `json:"from,omitempty"`
	Gen   uint64      `json:"gen,omitempty"`
	Found bool        `json:"found"`
}

type genResp struct {
	Gen uint64 `json:"gen"`
}

type okResp struct {
	OK bool `json:"ok"`
}

type entriesMsg struct {
	Entries []store.KeyedEntry `json:"entries"`
}

// statsResp answers Len/Shards/Counters/ShardCounters in one round trip;
// the counters come from one consistent instant (the store's all-shard
// critical section), so the remote client's snapshot is as torn-free as a
// local store's.
type statsResp struct {
	Len           int              `json:"len"`
	Shards        int              `json:"shards"`
	Counters      store.Counters   `json:"counters"`
	ShardCounters []store.Counters `json:"shard_counters"`
	// Persistence is "active" or "degraded" when a state dir is configured,
	// empty for an in-memory daemon.
	Persistence      string `json:"persistence,omitempty"`
	PersistenceError string `json:"persistence_error,omitempty"`
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// --- middleware ---

// recoverPanics turns a handler panic into a 500 instead of killing the
// daemon's whole connection.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				writeErr(w, http.StatusInternalServerError, "internal error: %v", rec)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withDeadline bounds each request with the configured timeout so a
// wedged handler cannot hold a connection past RequestTimeout.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	if s.cfg.RequestTimeout < 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// --- routing ---

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.Handle("POST /v1/store/lookup", s.op(s.handleLookup))
	mux.Handle("POST /v1/store/lookup-translated", s.op(s.handleLookupTranslated))
	mux.Handle("POST /v1/store/peek", s.op(s.handlePeek))
	mux.Handle("POST /v1/store/peek-translated", s.op(s.handlePeekTranslated))
	mux.Handle("POST /v1/store/commit", s.op(s.handleCommit))
	mux.Handle("POST /v1/store/refund", s.op(s.handleRefund))
	mux.Handle("POST /v1/store/invalidate", s.op(s.handleInvalidate))
	mux.Handle("POST /v1/store/freeze", s.op(s.handleFreeze))
	mux.Handle("POST /v1/store/thaw", s.op(s.handleThaw))
	mux.Handle("POST /v1/store/import", s.op(s.handleImport))
	mux.Handle("GET /v1/store/export", s.op(s.handleExport))
	mux.Handle("GET /v1/store/shard/{i}", s.op(s.handleExportShard))
	mux.Handle("GET /v1/store/stats", s.op(s.handleStats))
	return mux
}

// op gates every store endpoint on the drain seal.
func (s *Server) op(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeErr(w, http.StatusServiceUnavailable, "store daemon is draining")
			return
		}
		h(w, r)
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

// decode reads one JSON request body (bounded by MaxBodyBytes) into v.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body := r.Body
	if s.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		} else {
			writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		}
		return false
	}
	return true
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	var req keyReq
	if !s.decode(w, r, &req) {
		return
	}
	e, gen, ok := s.store.Lookup(req.Key)
	writeJSON(w, http.StatusOK, lookupResp{Entry: e, Gen: gen, Found: ok})
}

func (s *Server) handleLookupTranslated(w http.ResponseWriter, r *http.Request) {
	var req keyReq
	if !s.decode(w, r, &req) {
		return
	}
	e, from, gen, ok := s.store.LookupTranslated(req.Key)
	writeJSON(w, http.StatusOK, lookupResp{Entry: e, From: from, Gen: gen, Found: ok})
}

func (s *Server) handlePeek(w http.ResponseWriter, r *http.Request) {
	var req keyReq
	if !s.decode(w, r, &req) {
		return
	}
	e, ok := s.store.Peek(req.Key)
	writeJSON(w, http.StatusOK, lookupResp{Entry: e, Found: ok})
}

func (s *Server) handlePeekTranslated(w http.ResponseWriter, r *http.Request) {
	var req keyReq
	if !s.decode(w, r, &req) {
		return
	}
	e, from, ok := s.store.PeekTranslated(req.Key)
	writeJSON(w, http.StatusOK, lookupResp{Entry: e, From: from, Found: ok})
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req commitReq
	if !s.decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	gen := s.store.Commit(req.Key, req.Entry)
	if gen != 0 && s.persist != nil {
		s.persist.appendOp(opRecord{Op: "commit", Key: req.Key, Entry: &req.Entry}, s.store)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, genResp{Gen: gen})
}

func (s *Server) handleRefund(w http.ResponseWriter, r *http.Request) {
	var req genReq
	if !s.decode(w, r, &req) {
		return
	}
	// Refunds move only the in-memory reuse budget — recovery resets
	// budgets anyway (Import grants fresh ones), so nothing is journaled.
	ok := s.store.Refund(req.Key, req.Gen)
	writeJSON(w, http.StatusOK, okResp{OK: ok})
}

func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	var req genReq
	if !s.decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	ok := s.store.Invalidate(req.Key, req.Gen)
	if ok && s.persist != nil {
		// Journal only guard-passing invalidations: the op deleted a live
		// entry, so replay deletes it too (replay is unguarded — the guard
		// already ran, live, against the gen it was issued for).
		s.persist.appendOp(opRecord{Op: "invalidate", Key: req.Key}, s.store)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, okResp{OK: ok})
}

func (s *Server) handleFreeze(w http.ResponseWriter, r *http.Request) {
	s.store.Freeze()
	writeJSON(w, http.StatusOK, okResp{OK: true})
}

func (s *Server) handleThaw(w http.ResponseWriter, r *http.Request) {
	s.store.Thaw()
	writeJSON(w, http.StatusOK, okResp{OK: true})
}

func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	var req entriesMsg
	if !s.decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	s.store.Import(req.Entries)
	if s.persist != nil {
		for i := range req.Entries {
			s.persist.appendOp(opRecord{Op: "commit", Key: req.Entries[i].Key, Entry: &req.Entries[i].Entry}, s.store)
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, okResp{OK: true})
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, entriesMsg{Entries: s.store.Export()})
}

func (s *Server) handleExportShard(w http.ResponseWriter, r *http.Request) {
	var i int
	if _, err := fmt.Sscanf(r.PathValue("i"), "%d", &i); err != nil {
		writeErr(w, http.StatusBadRequest, "bad shard index %q", r.PathValue("i"))
		return
	}
	if i < 0 || i >= s.store.Shards() {
		writeErr(w, http.StatusNotFound, "no shard %d (store has %d)", i, s.store.Shards())
		return
	}
	writeJSON(w, http.StatusOK, entriesMsg{Entries: s.store.ExportShard(i)})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	per := s.store.ShardCounters()
	var tot store.Counters
	for _, c := range per {
		tot.Add(c)
	}
	resp := statsResp{
		Len:           s.store.Len(),
		Shards:        s.store.Shards(),
		Counters:      tot,
		ShardCounters: per,
	}
	if s.persist != nil {
		resp.Persistence = "active"
		if msg, bad := s.Degraded(); bad {
			resp.Persistence, resp.PersistenceError = "degraded", msg
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
