// Daemon-side tests: WAL persistence across clean and crashed restarts,
// the epoch discipline that keeps snapshot and journal crash-consistent,
// and the drain seal. The endpoint semantics are tested from the client
// side (internal/store/remote runs the conformance suite over a live
// daemon), so these tests drive the store through the HTTP surface only
// where the journaling path is what's under test.
package stored_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"rpg2/internal/store"
	"rpg2/internal/stored"
	"rpg2/internal/wal"
)

func post(t *testing.T, url, path string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func commit(t *testing.T, url string, k store.Key, e store.Entry) uint64 {
	t.Helper()
	resp := post(t, url, "/v1/store/commit", map[string]any{"key": k, "entry": e})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit: HTTP %d", resp.StatusCode)
	}
	var out struct {
		Gen uint64 `json:"gen"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Gen
}

func invalidate(t *testing.T, url string, k store.Key, gen uint64) {
	t.Helper()
	resp := post(t, url, "/v1/store/invalidate", map[string]any{"key": k, "gen": gen})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invalidate: HTTP %d", resp.StatusCode)
	}
}

// TestPersistenceCleanRestart: commits and a guard-passing invalidate
// journal durably; a drained daemon's state dir rebuilds the exact store
// in a fresh process, across a different shard layout.
func TestPersistenceCleanRestart(t *testing.T) {
	dir := t.TempDir()
	srv, err := stored.New(stored.Config{StateDir: dir, Shards: 4, Fsync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	keys := make([]store.Key, 6)
	for i := range keys {
		keys[i] = store.Key{Bench: "pr", Input: string(rune('a' + i)), Machine: "clx"}
		commit(t, ts.URL, keys[i], store.Entry{Distance: i + 1, Func: "f"})
	}
	gen := commit(t, ts.URL, keys[0], store.Entry{Distance: 99})
	invalidate(t, ts.URL, keys[0], gen)
	want := srv.Store().Export()
	srv.Drain()
	ts.Close()

	// Re-shard on recovery: Import hashes into the new layout.
	srv2, err := stored.New(stored.Config{StateDir: dir, Shards: 13})
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Recovered() != 5 {
		t.Fatalf("recovered %d entries, want 5 (6 commits, 1 invalidated)", srv2.Recovered())
	}
	got := srv2.Store().Export()
	if len(got) != len(want) {
		t.Fatalf("recovered export has %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || got[i].Entry.Distance != want[i].Entry.Distance {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	srv2.Drain()
}

// TestPersistenceCrashRecovery: no Drain, no final snapshot — the journal
// alone (SyncAlways) must rebuild every op folded over the last snapshot,
// including ops past the snapshot threshold (which exercises an epoch
// roll mid-run).
func TestPersistenceCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	srv, err := stored.New(stored.Config{StateDir: dir, SnapshotEvery: 3, Fsync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	for i := 0; i < 8; i++ { // crosses two snapshot thresholds
		k := store.Key{Bench: "bfs", Input: string(rune('a' + i)), Machine: "clx"}
		commit(t, ts.URL, k, store.Entry{Distance: 10 + i})
	}
	gen := commit(t, ts.URL, store.Key{Bench: "bfs", Input: "a", Machine: "clx"}, store.Entry{Distance: 77})
	invalidate(t, ts.URL, store.Key{Bench: "bfs", Input: "a", Machine: "clx"}, gen)
	want := srv.Store().Export()
	ts.Close() // kill -9: no Drain, the open journal is simply abandoned

	srv2, err := stored.New(stored.Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got := srv2.Store().Export()
	if len(got) != len(want) || srv2.Recovered() != len(want) {
		t.Fatalf("crash recovery: %d entries (Recovered %d), want %d",
			len(got), srv2.Recovered(), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || got[i].Entry.Distance != want[i].Entry.Distance {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	srv2.Drain()
}

// TestStaleJournalIgnored: a journal whose epoch predates the snapshot's
// (the crash window between a snapshot landing and the journal resetting)
// must be ignored — its ops are already folded into the snapshot.
func TestStaleJournalIgnored(t *testing.T) {
	dir := t.TempDir()
	srv, err := stored.New(stored.Config{StateDir: dir, Fsync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	k := store.Key{Bench: "pr", Input: "uni", Machine: "clx"}
	commit(t, ts.URL, k, store.Entry{Distance: 3})
	srv.Drain() // final snapshot at epoch E+1, journal reset to E+1
	ts.Close()

	// Forge the post-snapshot/pre-reset crash: rewrite the journal as an
	// older epoch holding an invalidate that was already folded away.
	jrnl := filepath.Join(dir, "store-journal.wal")
	meta, _ := json.Marshal(map[string]any{"op": "epoch", "epoch": 1})
	op, _ := json.Marshal(map[string]any{"op": "invalidate", "key": k})
	if err := wal.WriteAtomic(jrnl, [][]byte{meta, op}); err != nil {
		t.Fatal(err)
	}

	srv2, err := stored.New(stored.Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Recovered() != 1 {
		t.Fatalf("stale journal was replayed: recovered %d entries, want 1", srv2.Recovered())
	}
	srv2.Drain()
}

// TestFreshDiscardsState: -fresh starts empty over a dir with prior
// contents.
func TestFreshDiscardsState(t *testing.T) {
	dir := t.TempDir()
	srv, err := stored.New(stored.Config{StateDir: dir, Fsync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	commit(t, ts.URL, store.Key{Bench: "pr", Input: "uni", Machine: "clx"}, store.Entry{Distance: 3})
	srv.Drain()
	ts.Close()

	srv2, err := stored.New(stored.Config{StateDir: dir, Fresh: true})
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Recovered() != 0 || srv2.Store().Len() != 0 {
		t.Fatalf("fresh daemon recovered %d entries, len %d", srv2.Recovered(), srv2.Store().Len())
	}
	srv2.Drain()
}

// TestDrainSeals: after Drain, store endpoints answer 503 and healthz
// reports draining — the client's transient-retry loop treats 503 as "try
// elsewhere", not as data.
func TestDrainSeals(t *testing.T) {
	srv, err := stored.New(stored.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Drain()

	resp := post(t, ts.URL, "/v1/store/commit", map[string]any{"key": store.Key{Bench: "pr"}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain commit: HTTP %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Fatalf("healthz after drain = %q, want draining", h.Status)
	}
}

// TestStateDirCreated: a nested, nonexistent state dir is created rather
// than erroring (mirrors the fleet daemon's behavior).
func TestStateDirCreated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b")
	srv, err := stored.New(stored.Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "store-snapshot.wal")); err != nil {
		t.Fatalf("state dir not initialised: %v", err)
	}
	srv.Drain()
}
