package stored

// Persistence for the store daemon, on internal/wal's checksummed framing:
//
//	store-snapshot.wal  meta{epoch E} + one entry record per live profile
//	store-journal.wal   meta{epoch E} + one op record per accepted mutation
//
// Every snapshot rolls the epoch: write the whole store atomically under
// epoch E+1, then reset the journal to an empty epoch-E+1 log. The epoch
// stamp is what makes the pair crash-consistent without any cross-file
// coordination — recovery folds the journal over the snapshot only when
// their epochs match. The crash windows:
//
//   - mid-snapshot: WriteAtomic leaves the old epoch-E snapshot intact and
//     the epoch-E journal still holds every op — fold, lose nothing.
//   - after the snapshot lands, before the journal resets: the journal
//     still says epoch E, the snapshot says E+1 — but those ops were
//     exported into the E+1 snapshot, so the stale journal is redundant
//     and recovery rightly ignores it.
//   - mid-journal-reset: a truncated or headerless journal salvages to
//     zero records, which reads as "no ops since snapshot". Correct again.
//
// Fold order equals commit order because Server.mu spans each store
// mutation and its journal append, so replaying ops in sequence lands on
// the same winner every live race resolved to.
//
// Refunds are deliberately not journaled: they move only reuse budget,
// and Import (recovery's install path) grants fresh budgets anyway.
//
// A disk error degrades persistence — the daemon keeps serving from
// memory, stops journaling, and reports the failure via Degraded and the
// stats endpoint's health. No re-arm: unlike the fleet's persist lane, a
// shared store that silently resumed journaling after missing ops would
// recover to a hole-ridden state, which is worse than recovering to the
// last good snapshot. (ROADMAP notes the possible snapshot-on-rearm
// upgrade.)

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"rpg2/internal/store"
	"rpg2/internal/wal"
)

const (
	snapshotFile = "store-snapshot.wal"
	journalFile  = "store-journal.wal"
)

// opRecord is one WAL record: the epoch meta ("epoch"), a snapshot entry
// ("entry"), or a journaled mutation ("commit", "invalidate").
type opRecord struct {
	Op    string       `json:"op"`
	Epoch uint64       `json:"epoch,omitempty"`
	Key   store.Key    `json:"key,omitempty"`
	Entry *store.Entry `json:"entry,omitempty"`
}

type persister struct {
	dir     string
	walCfg  wal.Config
	every   int // mutations between snapshots (<0 = never)
	epoch   uint64
	journal *wal.Log
	ops     int // journaled mutations since the last snapshot

	// recoveredEntries is what openPersister folded out of the state dir.
	recoveredEntries int

	// degraded state is read by Degraded()/stats concurrently with
	// appendOp under Server.mu, so it has its own lock.
	degMu  sync.Mutex
	degErr error
}

// openPersister recovers prior state from cfg.StateDir (unless Fresh) and
// returns the persister plus the folded entries to import. The journal is
// not opened here: the caller takes its first snapshot immediately after
// importing, and snapshot() rolls the epoch and opens the fresh journal.
func openPersister(cfg Config) (*persister, []store.KeyedEntry, error) {
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("stored: create state dir: %w", err)
	}
	p := &persister{
		dir:    cfg.StateDir,
		walCfg: wal.Config{Sync: cfg.Fsync, Interval: cfg.FsyncInterval},
		every:  cfg.SnapshotEvery,
	}
	snapPath := filepath.Join(cfg.StateDir, snapshotFile)
	jrnlPath := filepath.Join(cfg.StateDir, journalFile)
	if cfg.Fresh {
		for _, path := range []string{snapPath, jrnlPath} {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return nil, nil, fmt.Errorf("stored: discard prior state: %w", err)
			}
		}
		return p, nil, nil
	}

	snapEpoch, state, err := readSnapshot(snapPath)
	if err != nil {
		return nil, nil, err
	}
	jrnlEpoch, ops, err := readJournal(jrnlPath)
	if err != nil {
		return nil, nil, err
	}
	if jrnlEpoch == snapEpoch {
		for _, rec := range ops {
			switch rec.Op {
			case "commit":
				if rec.Entry != nil {
					state[rec.Key] = *rec.Entry
				}
			case "invalidate":
				// Unguarded on replay: the gen guard already ran live
				// against the generation the op was issued for.
				delete(state, rec.Key)
			}
		}
	}
	p.epoch = max(snapEpoch, jrnlEpoch)

	entries := make([]store.KeyedEntry, 0, len(state))
	for k, e := range state {
		entries = append(entries, store.KeyedEntry{Key: k, Entry: e})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].Key, entries[j].Key
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Input != b.Input {
			return a.Input < b.Input
		}
		return a.Machine < b.Machine
	})
	p.recoveredEntries = len(entries)
	return p, entries, nil
}

// readSnapshot folds the snapshot file into a state map. A missing file
// is an empty store; a salvaged tail keeps the valid prefix.
func readSnapshot(path string) (uint64, map[store.Key]store.Entry, error) {
	state := make(map[store.Key]store.Entry)
	payloads, _, err := wal.ReadAll(path)
	if os.IsNotExist(err) {
		return 0, state, nil
	}
	if err != nil {
		return 0, nil, fmt.Errorf("stored: read snapshot: %w", err)
	}
	var epoch uint64
	for _, raw := range payloads {
		var rec opRecord
		if json.Unmarshal(raw, &rec) != nil {
			continue // checksummed frame, so this is a version skew, not rot
		}
		switch rec.Op {
		case "epoch":
			epoch = rec.Epoch
		case "entry":
			if rec.Entry != nil {
				state[rec.Key] = *rec.Entry
			}
		}
	}
	return epoch, state, nil
}

// readJournal returns the journal's epoch and its op records in append
// order. A missing or headerless (mid-reset) journal is zero ops.
func readJournal(path string) (uint64, []opRecord, error) {
	payloads, _, err := wal.ReadAll(path)
	if os.IsNotExist(err) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, fmt.Errorf("stored: read journal: %w", err)
	}
	var epoch uint64
	var ops []opRecord
	for _, raw := range payloads {
		var rec opRecord
		if json.Unmarshal(raw, &rec) != nil {
			continue
		}
		if rec.Op == "epoch" {
			epoch = rec.Epoch
			continue
		}
		ops = append(ops, rec)
	}
	return epoch, ops, nil
}

// snapshot writes the whole store durably under a new epoch and resets
// the journal. Callers hold Server.mu (or are pre-serving).
func (p *persister) snapshot(entries []store.KeyedEntry) error {
	if p == nil || p.isDegraded() {
		return fmt.Errorf("stored: persistence degraded")
	}
	next := p.epoch + 1
	payloads := make([][]byte, 0, len(entries)+1)
	meta, _ := json.Marshal(opRecord{Op: "epoch", Epoch: next})
	payloads = append(payloads, meta)
	for i := range entries {
		raw, err := json.Marshal(opRecord{Op: "entry", Key: entries[i].Key, Entry: &entries[i].Entry})
		if err != nil {
			return p.degrade(fmt.Errorf("stored: encode snapshot entry: %w", err))
		}
		payloads = append(payloads, raw)
	}
	if err := wal.WriteAtomic(filepath.Join(p.dir, snapshotFile), payloads); err != nil {
		return p.degrade(fmt.Errorf("stored: write snapshot: %w", err))
	}
	// The snapshot is the commit point; now roll the journal under it.
	if p.journal != nil {
		p.journal.Close()
		p.journal = nil
	}
	jrnlPath := filepath.Join(p.dir, journalFile)
	if err := os.Remove(jrnlPath); err != nil && !os.IsNotExist(err) {
		return p.degrade(fmt.Errorf("stored: reset journal: %w", err))
	}
	log, _, err := wal.Open(jrnlPath, p.walCfg)
	if err != nil {
		return p.degrade(fmt.Errorf("stored: open journal: %w", err))
	}
	if err := log.Append(meta); err != nil {
		log.Abort()
		return p.degrade(fmt.Errorf("stored: stamp journal epoch: %w", err))
	}
	p.journal = log
	p.epoch = next
	p.ops = 0
	return nil
}

// appendOp journals one accepted mutation and snapshots when due. Callers
// hold Server.mu, so the journal's order is the store's commit order. st
// is only exported if this append trips the snapshot threshold.
func (p *persister) appendOp(rec opRecord, st store.Store) {
	if p.isDegraded() || p.journal == nil {
		return
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		p.degrade(fmt.Errorf("stored: encode op: %w", err))
		return
	}
	if err := p.journal.Append(raw); err != nil {
		p.degrade(fmt.Errorf("stored: journal append: %w", err))
		return
	}
	p.ops++
	if p.every > 0 && p.ops >= p.every {
		p.snapshot(st.Export())
	}
}

func (p *persister) close() {
	if p.journal != nil {
		p.journal.Close()
		p.journal = nil
	}
}

func (p *persister) degrade(err error) error {
	p.degMu.Lock()
	if p.degErr == nil {
		p.degErr = err
	}
	p.degMu.Unlock()
	return err
}

func (p *persister) isDegraded() bool {
	p.degMu.Lock()
	defer p.degMu.Unlock()
	return p.degErr != nil
}

func (p *persister) degradedErr() (string, bool) {
	p.degMu.Lock()
	defer p.degMu.Unlock()
	if p.degErr == nil {
		return "", false
	}
	return p.degErr.Error(), true
}
