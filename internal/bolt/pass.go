package bolt

import (
	"fmt"
	"sort"

	"rpg2/internal/cfg"
	"rpg2/internal/isa"
)

// PatchPoint locates the few bytes of machine code that encode a prefetch
// distance in the rewritten function, so the tuning phase can edit the
// distance in a live process (§3.4). The encoded immediate is
// Base + Scale*distance.
type PatchPoint struct {
	// Offset is the instruction's offset from the start of the rewritten
	// function's code.
	Offset int
	// Base is the immediate value at distance zero.
	Base int64
	// Scale converts iterations of distance into immediate units (the
	// induction variable's step).
	Scale int64
	// SitePC is the f0 PC of the demand load this distance tunes.
	SitePC int
}

// Apply returns the instruction rewritten to encode the given distance.
func (pp PatchPoint) Apply(in isa.Instr, distance int) isa.Instr {
	in.Imm = pp.Base + pp.Scale*int64(distance)
	return in
}

// Site summarises one prefetch kernel added by the pass.
type Site struct {
	// DemandPC is the f0 PC of the miss-causing load.
	DemandPC int
	// Category is the matched access pattern.
	Category Category
	// KernelOffset is the f1 offset where the kernel begins.
	KernelOffset int
	// KernelLen is the kernel's instruction count.
	KernelLen int
	// Spilled reports whether the kernel spills a scratch register.
	Spilled bool
	// ViaStack reports whether the slice traversed a stack slot.
	ViaStack bool
}

// Rewrite is the output of the InjectPrefetchPass for one function: the
// rewritten code (f1), the BAT, and the distance patch points.
type Rewrite struct {
	// FuncName is the original function (f0).
	FuncName string
	// NewName names the rewritten function (f1).
	NewName string
	// Code is f1's instructions. Branch targets inside f1 are encoded
	// relative to the start of Code until Rebase.
	Code []isa.Instr
	// BAT maps f0 PCs to f1 offsets and back.
	BAT *BAT
	// PatchPoints lists the distance-encoding instructions, one per site,
	// in the same order as Sites.
	PatchPoints []PatchPoint
	// Sites lists the injected prefetch kernels.
	Sites []Site
	// InitialDistance is the distance baked in at generation time.
	InitialDistance int

	internal map[int]bool // offsets whose Target is f1-relative
}

// Rebase returns a copy of the code with f1-internal branch targets turned
// absolute for loading at the given base PC.
func (rw *Rewrite) Rebase(base int) []isa.Instr {
	out := append([]isa.Instr(nil), rw.Code...)
	for off := range out {
		if rw.internal[off] {
			out[off].Target += base
		}
	}
	return out
}

// pass carries the state of one InjectPrefetch invocation.
type pass struct {
	g     *cfg.Graph
	loops []*cfg.Loop
	fn    isa.Function
	opts  Options
}

// kernel is generated code pending insertion at a header PC.
type kernel struct {
	insertPC   int // f0 PC the kernel is inserted before
	code       []isa.Instr
	patchIdx   int   // index within code of the distance instruction
	patchBase  int64 // PatchPoint Base
	patchScale int64 // PatchPoint Scale
	skipFixups []int // indices within code of branches to the kernel end
	site       Site
}

// Options tunes the InjectPrefetchPass.
type Options struct {
	// PreferInnerPlacement puts the prefetch kernel for a[f(b[i]+j)]
	// accesses in the inner loop — prefetching the future inner
	// iteration a[f(b[i])+j+d] — instead of the paper's chosen strategy
	// of attacking the outer-loop stream a[f(b[i+d])] (§3.2.1). The
	// paper evaluated both and kept the outer placement; this option
	// exists for the ablation that shows why.
	PreferInnerPlacement bool
}

// InjectPrefetch runs the paper's InjectPrefetchPass: for each candidate
// miss-causing load PC in the named function it computes the backward slice,
// classifies the access, and generates a prefetch kernel in the appropriate
// loop header. It returns the rewritten function, its BAT, and the distance
// patch points. Candidates whose slices do not match a supported category
// are skipped; if none can be optimized, an UnsupportedError is returned.
func InjectPrefetch(bin *isa.Binary, fnName string, candidatePCs []int, distance int) (*Rewrite, error) {
	return InjectPrefetchWithOptions(bin, fnName, candidatePCs, distance, Options{})
}

// InjectPrefetchWithOptions is InjectPrefetch with explicit pass options.
func InjectPrefetchWithOptions(bin *isa.Binary, fnName string, candidatePCs []int, distance int, opts Options) (*Rewrite, error) {
	f, ok := bin.Func(fnName)
	if !ok {
		return nil, fmt.Errorf("bolt: no function %q", fnName)
	}
	g, err := cfg.Build(bin.Text, f)
	if err != nil {
		return nil, err
	}
	p := &pass{g: g, loops: g.Loops(), fn: f, opts: opts}

	seen := make(map[int]bool)
	var kernels []*kernel
	var firstErr error
	for _, pc := range candidatePCs {
		if seen[pc] {
			continue
		}
		seen[pc] = true
		k, err := p.buildKernel(pc, distance)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		kernels = append(kernels, k)
	}
	if len(kernels) == 0 {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, unsupported(f.Entry, "no candidate loads")
	}
	// Deterministic order: by insertion PC, then by demand PC.
	sort.Slice(kernels, func(i, j int) bool {
		if kernels[i].insertPC != kernels[j].insertPC {
			return kernels[i].insertPC < kernels[j].insertPC
		}
		return kernels[i].site.DemandPC < kernels[j].site.DemandPC
	})

	rw := &Rewrite{
		FuncName:        fnName,
		NewName:         fnName + ".bolt",
		BAT:             NewBAT(),
		InitialDistance: distance,
		internal:        make(map[int]bool),
	}

	byInsert := make(map[int][]*kernel)
	for _, k := range kernels {
		byInsert[k.insertPC] = append(byInsert[k.insertPC], k)
	}

	// Emit f1: kernels ahead of their insertion PC, then the original
	// instructions, building the f0->f1 position map as we go.
	newPos := make(map[int]int, f.Size)
	var out []isa.Instr
	type brFix struct {
		off   int // f1 offset of the branch
		f0tgt int
	}
	var fixes []brFix
	for pc := f.Entry; pc < f.Entry+f.Size; pc++ {
		kernelStart := len(out)
		for _, k := range byInsert[pc] {
			base := len(out)
			k.site.KernelOffset = base
			k.site.KernelLen = len(k.code)
			out = append(out, k.code...)
			end := len(out)
			for _, i := range k.skipFixups {
				out[base+i].Target = end - 1 // the kernel's final instruction (the restoring pop)
				rw.internal[base+i] = true
			}
			if k.patchIdx >= 0 {
				rw.PatchPoints = append(rw.PatchPoints, PatchPoint{
					Offset: base + k.patchIdx,
					Base:   k.patchBase,
					Scale:  k.patchScale,
					SitePC: k.site.DemandPC,
				})
			}
			rw.Sites = append(rw.Sites, k.site)
		}
		off := len(out)
		if len(byInsert[pc]) > 0 {
			// The loop-header PC translates to the kernel prefix, so
			// back edges (and OSR'd threads) run the kernel on every
			// iteration. The kernel is a NOP, so entering through it
			// is always safe. The copied instruction keeps a reverse
			// mapping so rollback from it still translates directly.
			newPos[pc] = kernelStart
			rw.BAT.add(pc, kernelStart)
			rw.BAT.ToF0[off] = pc
		} else {
			newPos[pc] = off
			rw.BAT.add(pc, off)
		}
		in := bin.Text[pc]
		if in.IsBranch() && in.Op != isa.Call && f.Contains(in.Target) {
			fixes = append(fixes, brFix{off: off, f0tgt: in.Target})
		}
		out = append(out, in)
	}
	for _, fx := range fixes {
		out[fx.off].Target = newPos[fx.f0tgt]
		rw.internal[fx.off] = true
	}
	rw.Code = out
	return rw, nil
}

// scratchReg picks the register the kernel commandeers for address
// computation. The register is always spilled around the kernel (the paper
// spills r5 in its running example, §3.2.3): a register unused inside the
// hot function may still be live in a caller, and BOLT has no
// interprocedural liveness, so spilling is the only NOP-preserving choice.
// The pick must avoid every register the kernel itself reads: the induction
// variable, invariant leaves, dropped inner IVs, and the guard's bound
// register.
func (p *pass) scratchReg(s *Slice, guard isa.Instr) isa.Reg {
	reserved := map[isa.Reg]bool{isa.SP: true, s.IV.Reg: true}
	for _, inv := range s.Invariants {
		reserved[inv] = true
	}
	for _, d := range s.DroppedIVs {
		reserved[d] = true
	}
	if guard.Op == isa.Br && guard.Rs2 != isa.NoReg {
		reserved[guard.Rs2] = true
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if !reserved[r] {
			return r
		}
	}
	return 0 // unreachable: 16 registers, far fewer reserved
}

// latchGuard derives the kernel's bounds check from the kernel loop's latch
// branch: the latch condition is copied and inverted so the kernel skips the
// prefetch when the future iteration would be out of bounds (§3.2.3).
func (p *pass) latchGuard(s *Slice) (isa.Instr, error) {
	latch := p.g.Blocks[s.KernelLoop.Latch]
	br := p.g.Text[latch.End-1]
	if br.Op != isa.Br && br.Op != isa.BrImm {
		return isa.Instr{}, unsupported(s.DemandPC, "kernel loop latch does not end in a conditional branch")
	}
	if br.Rs1 != s.IV.Reg {
		return isa.Instr{}, unsupported(s.DemandPC, "latch branch does not compare the induction variable %s", s.IV.Reg)
	}
	if s.IV.Step <= 0 {
		return isa.Instr{}, unsupported(s.DemandPC, "down-counting loops not supported")
	}
	var guard isa.Cond
	switch br.Cond {
	case isa.LT, isa.NE:
		guard = isa.GE
	case isa.LE:
		guard = isa.GT
	default:
		return isa.Instr{}, unsupported(s.DemandPC, "latch condition %s not supported", br.Cond)
	}
	if br.Op == isa.Br && !p.g.LoopInvariant(s.KernelLoop, br.Rs2) {
		return isa.Instr{}, unsupported(s.DemandPC, "loop bound register %s is not invariant", br.Rs2)
	}
	out := isa.Instr{Op: br.Op, Cond: guard, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: br.Rs2, Imm: br.Imm}
	if br.Op == isa.BrImm {
		out.Rs2 = isa.NoReg
	}
	return out, nil
}

// buildKernel generates the prefetch kernel for one candidate load. The
// kernel's correctness criterion is that it behaves as a NOP: the slice is
// re-executed into a scratch register, guarded by a bounds check, and the
// demand load is converted into a prefetch.
func (p *pass) buildKernel(pc, distance int) (*kernel, error) {
	s, err := ComputeSlice(p.g, p.loops, pc)
	if err != nil {
		return nil, err
	}
	headerStart := p.g.Blocks[s.KernelLoop.Header].Start
	k := &kernel{
		insertPC: headerStart,
		patchIdx: -1,
		site: Site{
			DemandPC: pc,
			Category: s.Category,
			ViaStack: s.ViaStack,
		},
	}
	load := p.g.Text[pc]

	if s.Category == Direct {
		// a[j] -> prefetch a[j + d*step]: a single instruction whose
		// displacement encodes the distance; no bounds check is needed
		// because prefetches never fault.
		pf := isa.Instr{Op: isa.Prefetch, Rd: isa.NoReg, Rs1: load.Rs1, Rs2: load.Rs2,
			Imm: load.Imm + s.IV.Step*int64(distance)}
		k.code = []isa.Instr{pf}
		k.patchIdx = 0
		k.patchBase = load.Imm
		k.patchScale = s.IV.Step
		return k, nil
	}

	if s.Category == IndirectOuter && p.opts.PreferInnerPlacement {
		// Ablation: prefetch a future iteration of the *inner* loop,
		// a[f(b[i])+j+d]. Within the inner loop the f(b[i]) term is
		// invariant, so this degenerates to a direct-style prefetch on
		// the inner induction variable — it never reaches the next
		// row's data, which is why the paper rejected it (§3.2.1).
		innerIVs := p.g.InductionVars(s.InnerLoop)
		if len(innerIVs) == 0 {
			return nil, unsupported(pc, "inner placement: inner loop has no induction variable")
		}
		iv := innerIVs[0]
		k.insertPC = p.g.Blocks[s.InnerLoop.Header].Start
		pf := isa.Instr{Op: isa.Prefetch, Rd: isa.NoReg, Rs1: load.Rs1, Rs2: load.Rs2,
			Imm: load.Imm + iv.Step*int64(distance)}
		k.code = []isa.Instr{pf}
		k.patchIdx = 0
		k.patchBase = load.Imm
		k.patchScale = iv.Step
		return k, nil
	}

	guard, err := p.latchGuard(s)
	if err != nil {
		return nil, err
	}
	scratch := p.scratchReg(s, guard)
	k.site.Spilled = true
	dropped := make(map[isa.Reg]bool, len(s.DroppedIVs))
	for _, r := range s.DroppedIVs {
		dropped[r] = true
	}

	var code []isa.Instr
	code = append(code, isa.Instr{Op: isa.Push, Rd: isa.NoReg, Rs1: scratch, Rs2: isa.NoReg})
	// rS = IV + d*step — the distance patch point.
	k.patchIdx = len(code)
	k.patchBase = 0
	k.patchScale = s.IV.Step
	code = append(code, isa.Instr{Op: isa.AddImm, Rd: scratch, Rs1: s.IV.Reg, Rs2: isa.NoReg,
		Imm: s.IV.Step * int64(distance)})
	// Bounds check (inverted latch condition) branching to the kernel end.
	guard.Rs1 = scratch
	k.skipFixups = append(k.skipFixups, len(code))
	code = append(code, guard)

	// Re-emit the slice chain with the scratch register threaded through:
	// `cur` names the f0 register whose future-iteration value currently
	// lives in the scratch register.
	cur := s.IV.Reg
	chainDefs := make(map[isa.Reg]bool)
	slotBound := make(map[int64]bool)
	for _, q := range s.Chain {
		in := p.g.Text[q]
		switch in.Op {
		case isa.Store: // stack-slot spill inside the chain
			if in.Rs1 != isa.SP || in.Rs2 != isa.NoReg {
				return nil, unsupported(pc, "non-stack store in slice")
			}
			if in.Rd != cur {
				return nil, unsupported(pc, "stack slot stores a value outside the chain")
			}
			// The kernel keeps the value in the scratch register
			// instead of touching the real stack slot (which would
			// not be a NOP).
			slotBound[in.Imm] = true
			continue
		case isa.Load:
			if in.Rs1 == isa.SP && in.Rs2 == isa.NoReg {
				if !slotBound[in.Imm] {
					return nil, unsupported(pc, "stack slot load without matching store")
				}
				// Value already lives in the scratch register.
				cur = in.Rd
				chainDefs[in.Rd] = true
				continue
			}
		}
		rewritten, err := p.rewriteChainInstr(in, pc, cur, scratch, chainDefs, dropped)
		if err != nil {
			return nil, err
		}
		code = append(code, rewritten)
		cur = in.Defs()
		chainDefs[cur] = true
	}

	// Convert the demand load into the prefetch.
	pf, err := p.rewriteDemandLoad(load, pc, cur, scratch, dropped)
	if err != nil {
		return nil, err
	}
	code = append(code, pf)

	// Kernel end: the bounds check lands on the restoring pop.
	code = append(code, isa.Instr{Op: isa.Pop, Rd: scratch, Rs1: isa.NoReg, Rs2: isa.NoReg})
	k.code = code
	return k, nil
}

// rewriteChainInstr re-targets one slice instruction at the scratch
// register. Exactly one operand must carry the chain value (linear chains
// only); remaining operands must be kernel-loop invariants.
func (p *pass) rewriteChainInstr(in isa.Instr, pc int, cur, scratch isa.Reg, chainDefs map[isa.Reg]bool, dropped map[isa.Reg]bool) (isa.Instr, error) {
	out := in
	replaced := 0
	swap := func(r isa.Reg) (isa.Reg, error) {
		switch {
		case r == cur:
			replaced++
			return scratch, nil
		case chainDefs[r]:
			return 0, unsupported(pc, "non-linear dependency chain through %s", r)
		case dropped[r]:
			return 0, unsupported(pc, "inner induction variable %s inside chain computation", r)
		default:
			return r, nil
		}
	}
	var err error
	if out.Rs1 != isa.NoReg {
		if out.Rs1, err = swap(out.Rs1); err != nil {
			return isa.Instr{}, err
		}
	}
	if out.Rs2 != isa.NoReg {
		if out.Rs2, err = swap(out.Rs2); err != nil {
			return isa.Instr{}, err
		}
	}
	if replaced != 1 {
		return isa.Instr{}, unsupported(pc, "chain instruction %s uses the chain value %d times", in, replaced)
	}
	if out.Defs() == isa.NoReg {
		return isa.Instr{}, unsupported(pc, "chain instruction %s defines nothing", in)
	}
	out.Rd = scratch
	return out, nil
}

// rewriteDemandLoad converts the miss-causing load into the kernel's
// prefetch instruction, dropping inner-loop induction terms for
// IndirectOuter accesses (the paper prefetches a[f(b[i+d])], §3.2.1).
func (p *pass) rewriteDemandLoad(load isa.Instr, pc int, cur, scratch isa.Reg, dropped map[isa.Reg]bool) (isa.Instr, error) {
	pf := isa.Instr{Op: isa.Prefetch, Rd: isa.NoReg, Rs1: load.Rs1, Rs2: load.Rs2, Imm: load.Imm}
	mapReg := func(r isa.Reg) isa.Reg {
		if r == cur {
			return scratch
		}
		return r
	}
	pf.Rs1 = mapReg(pf.Rs1)
	if pf.Rs2 != isa.NoReg {
		pf.Rs2 = mapReg(pf.Rs2)
	}
	if dropped[pf.Rs1] {
		if pf.Rs2 == isa.NoReg {
			return isa.Instr{}, unsupported(pc, "prefetch address reduces to a dropped induction variable")
		}
		pf.Rs1, pf.Rs2 = pf.Rs2, isa.NoReg
	} else if pf.Rs2 != isa.NoReg && dropped[pf.Rs2] {
		pf.Rs2 = isa.NoReg
	}
	if pf.Rs1 != scratch && (pf.Rs2 == isa.NoReg || pf.Rs2 != scratch) {
		return isa.Instr{}, unsupported(pc, "prefetch address does not use the computed chain value")
	}
	return pf, nil
}

// Apply produces a statically BOLTed binary: f1 appended, direct calls to f0
// retargeted at f1, and the entry point moved if f0 was the entry. This is
// the artifact the offline baseline runs (§4.1.1); RPG² itself instead
// injects Code into a live process and leaves f0 intact.
func (rw *Rewrite) Apply(bin *isa.Binary) (*isa.Binary, error) {
	f0, ok := bin.Func(rw.FuncName)
	if !ok {
		return nil, fmt.Errorf("bolt: binary lacks function %q", rw.FuncName)
	}
	nb := bin.Clone()
	base := len(nb.Text)
	nb.Text = append(nb.Text, rw.Rebase(base)...)
	nb.Funcs = append(nb.Funcs, isa.Function{Name: rw.NewName, Entry: base, Size: len(rw.Code)})
	for i := 0; i < base; i++ {
		if nb.Text[i].Op == isa.Call && nb.Text[i].Target == f0.Entry {
			nb.Text[i].Target = base
		}
	}
	if nb.EntryName == rw.FuncName {
		nb.EntryName = rw.NewName
	}
	if err := nb.Validate(); err != nil {
		return nil, fmt.Errorf("bolt: rewritten binary invalid: %w", err)
	}
	return nb, nil
}
