package bolt

import (
	"fmt"
	"sort"

	"rpg2/internal/cfg"
	"rpg2/internal/isa"
)

// Category classifies a prefetchable load per Table 1 of the paper.
type Category uint8

// The three supported access categories.
const (
	// Direct is a[j]: a stride access over a loop induction variable.
	Direct Category = iota + 1
	// IndirectInner is a[f(b[j])]: an indirect access whose index stream
	// b is walked by the induction variable of the load's own loop.
	IndirectInner
	// IndirectOuter is a[f(b[i]+j)]: an indirect access in an inner loop
	// whose dependency chain reaches the outer loop's induction variable;
	// the prefetch kernel is placed in the outer loop (§3.2.1).
	IndirectOuter
)

func (c Category) String() string {
	switch c {
	case Direct:
		return "direct a[j]"
	case IndirectInner:
		return "indirect a[f(b[j])]"
	case IndirectOuter:
		return "indirect a[f(b[i]+j)]"
	}
	return fmt.Sprintf("category(%d)", uint8(c))
}

// Slice is the backward slice of a demand load: the dependency chain from
// loop induction variables and loop-invariant registers to the load's
// address (§3.2.2).
type Slice struct {
	// DemandPC is the miss-causing load the slice starts from.
	DemandPC int
	// Chain lists the PCs of the supporting instructions in program
	// order, excluding the demand load itself. For Direct accesses it is
	// empty.
	Chain []int
	// Category is the matched access pattern.
	Category Category
	// IV is the induction-variable leaf that drives the access.
	IV cfg.Induction
	// KernelLoop is the loop whose header receives the prefetch kernel:
	// the loop to which IV belongs.
	KernelLoop *cfg.Loop
	// InnerLoop is the innermost loop containing the demand load.
	InnerLoop *cfg.Loop
	// Invariants are the kernel-loop-invariant leaf registers.
	Invariants []isa.Reg
	// DroppedIVs are inner-loop induction variables that appear in the
	// demand address but are dropped from the prefetch address
	// (IndirectOuter only).
	DroppedIVs []isa.Reg
	// ViaStack is true when the chain traverses a fixed-offset stack slot
	// (a Store/Load pair through [sp+k]).
	ViaStack bool
}

// UnsupportedError reports a load RPG² cannot currently prefetch, with the
// reason; it mirrors the pass skipping unmatched slices.
type UnsupportedError struct {
	PC     int
	Reason string
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("bolt: load at pc %d unsupported: %s", e.PC, e.Reason)
}

func unsupported(pc int, format string, args ...any) error {
	return &UnsupportedError{PC: pc, Reason: fmt.Sprintf(format, args...)}
}

// loopNest returns (inner, outer) for a PC: the innermost loop containing it
// and that loop's parent (or nil). Only the two innermost loops are
// considered, as in the paper.
func loopNest(g *cfg.Graph, loops []*cfg.Loop, pc int) (inner, outer *cfg.Loop) {
	for _, l := range loops {
		if !l.Contains(g, pc) {
			continue
		}
		if inner == nil || l.Depth > inner.Depth {
			inner = l
		}
	}
	if inner == nil {
		return nil, nil
	}
	for i, l := range loops {
		if l == inner && l.Parent >= 0 {
			outer = loops[l.Parent]
		}
		_ = i
	}
	return inner, outer
}

// loopStart returns the smallest PC of the loop's blocks.
func loopStart(g *cfg.Graph, l *cfg.Loop) int {
	start := g.Fn.Entry + g.Fn.Size
	for id := range l.Blocks {
		if g.Blocks[id].Start < start {
			start = g.Blocks[id].Start
		}
	}
	return start
}

// ivOf returns the induction variable of the loop matching reg, if any.
func ivOf(g *cfg.Graph, l *cfg.Loop, r isa.Reg) (cfg.Induction, bool) {
	if l == nil {
		return cfg.Induction{}, false
	}
	for _, iv := range g.InductionVars(l) {
		if iv.Reg == r {
			return iv, true
		}
	}
	return cfg.Induction{}, false
}

// ComputeSlice builds the backward slice for the demand load at pc and
// classifies it into one of the supported categories. The walk proceeds
// backwards through straight-line code; dependencies through fixed-offset
// stack slots are followed, dependencies via other memory or with multiple
// reaching definitions are rejected (§3.2.2).
func ComputeSlice(g *cfg.Graph, loops []*cfg.Loop, pc int) (*Slice, error) {
	if pc < g.Fn.Entry || pc >= g.Fn.Entry+g.Fn.Size {
		return nil, unsupported(pc, "outside function %q", g.Fn.Name)
	}
	load := g.Text[pc]
	if load.Op != isa.Load {
		return nil, unsupported(pc, "not a load (%s)", load)
	}
	inner, outer := loopNest(g, loops, pc)
	if inner == nil {
		return nil, unsupported(pc, "not inside a loop")
	}

	s := &Slice{DemandPC: pc, InnerLoop: inner}

	// Registers whose definitions we still need, and leaves found.
	needed := make(map[isa.Reg]bool)
	// Stack slots whose stores we still need (offset from SP).
	neededSlots := make(map[int64]bool)
	var ivLeaves []cfg.Induction
	ivLoops := make(map[isa.Reg]*cfg.Loop)
	invariant := make(map[isa.Reg]bool)
	dropped := make(map[isa.Reg]bool)

	classify := func(r isa.Reg, usedBy int, inAddressOfDemand bool) error {
		if r == isa.SP {
			return nil // stack addressing handled via slots
		}
		if iv, ok := ivOf(g, inner, r); ok {
			ivLeaves = append(ivLeaves, iv)
			ivLoops[r] = inner
			return nil
		}
		if iv, ok := ivOf(g, outer, r); ok {
			// An outer IV reached from inner-loop code.
			ivLeaves = append(ivLeaves, iv)
			ivLoops[r] = outer
			return nil
		}
		// Invariant with respect to the outermost loop of the nest?
		scope := inner
		if outer != nil {
			scope = outer
		}
		if g.LoopInvariant(scope, r) {
			invariant[r] = true
			return nil
		}
		if outer != nil && g.LoopInvariant(inner, r) {
			// Defined in the outer loop body: keep slicing there.
			needed[r] = true
			return nil
		}
		// Variant but redefined within the inner loop: follow it only
		// if there is a unique straight-line def; multiple reaching
		// definitions are unsupported.
		defs := g.DefsIn(inner, r)
		if len(defs) > 1 {
			return unsupported(usedBy, "register %s has %d reaching definitions", r, len(defs))
		}
		needed[r] = true
		return nil
	}

	// Seed with the demand load's address registers.
	if err := classify(load.Rs1, pc, true); err != nil {
		return nil, err
	}
	if load.Rs2 != isa.NoReg {
		if err := classify(load.Rs2, pc, true); err != nil {
			return nil, err
		}
	}

	// Walk backwards from the load to the start of the loop nest.
	scope := inner
	if outer != nil {
		scope = outer
	}
	low := loopStart(g, scope)
	var chain []int
	hasLoad := false
	for q := pc - 1; q >= low && (len(needed) > 0 || len(neededSlots) > 0); q-- {
		in := g.Text[q]
		// Stack-slot stores satisfy slot demands.
		if in.Op == isa.Store && in.Rs1 == isa.SP && in.Rs2 == isa.NoReg && neededSlots[in.Imm] {
			delete(neededSlots, in.Imm)
			chain = append(chain, q)
			s.ViaStack = true
			if err := classify(in.Rd, q, false); err != nil {
				return nil, err
			}
			continue
		}
		d := in.Defs()
		if d == isa.NoReg || !needed[d] {
			// Intervening stack-pointer manipulation kills slot
			// tracking (§3.2.2).
			if d == isa.SP && len(neededSlots) > 0 {
				return nil, unsupported(pc, "stack pointer manipulated while tracking stack slot")
			}
			continue
		}
		delete(needed, d)
		chain = append(chain, q)
		switch in.Op {
		case isa.Load:
			if in.Rs1 == isa.SP && in.Rs2 == isa.NoReg {
				// Value flows through a stack slot: find its store.
				neededSlots[in.Imm] = true
				s.ViaStack = true
				continue
			}
			hasLoad = true
			if err := classify(in.Rs1, q, false); err != nil {
				return nil, err
			}
			if in.Rs2 != isa.NoReg {
				if err := classify(in.Rs2, q, false); err != nil {
					return nil, err
				}
			}
		case isa.Mov, isa.AddImm, isa.SubImm, isa.MulImm, isa.ShlImm, isa.ShrImm, isa.AndImm:
			if err := classify(in.Rs1, q, false); err != nil {
				return nil, err
			}
		case isa.Add, isa.Sub, isa.Mul, isa.Min:
			if err := classify(in.Rs1, q, false); err != nil {
				return nil, err
			}
			if err := classify(in.Rs2, q, false); err != nil {
				return nil, err
			}
		case isa.MovImm:
			// Constant: a closed leaf.
		default:
			return nil, unsupported(pc, "chain instruction %s not sliceable", in)
		}
	}
	if len(needed) > 0 || len(neededSlots) > 0 {
		return nil, unsupported(pc, "slice did not close over %d registers / %d stack slots", len(needed), len(neededSlots))
	}
	sort.Ints(chain)
	s.Chain = chain

	// Classify the access category from the IV leaves and chain shape.
	seenIV := make(map[isa.Reg]bool)
	uniqIVs := ivLeaves[:0]
	for _, iv := range ivLeaves {
		if !seenIV[iv.Reg] {
			seenIV[iv.Reg] = true
			uniqIVs = append(uniqIVs, iv)
		}
	}
	ivLeaves = uniqIVs
	if len(ivLeaves) == 0 {
		return nil, unsupported(pc, "no induction variable drives the access")
	}

	var outerIVs, innerIVs []cfg.Induction
	for _, iv := range ivLeaves {
		if outer != nil && ivLoops[iv.Reg] == outer {
			outerIVs = append(outerIVs, iv)
		} else {
			innerIVs = append(innerIVs, iv)
		}
	}

	switch {
	case !hasLoad:
		// Direct access: the IV must feed the load address itself.
		if len(chain) > 0 {
			// Affine chains (e.g. base+i*8) still count as direct.
		}
		if len(innerIVs)+len(outerIVs) != 1 {
			return nil, unsupported(pc, "direct access with %d induction variables", len(ivLeaves))
		}
		s.Category = Direct
		if len(innerIVs) == 1 {
			s.IV = innerIVs[0]
			s.KernelLoop = inner
		} else {
			s.IV = outerIVs[0]
			s.KernelLoop = outer
		}
	case len(outerIVs) == 1:
		// a[f(b[i]+j)]: kernel goes in the outer loop; inner IV terms
		// are dropped from the prefetch address.
		s.Category = IndirectOuter
		s.IV = outerIVs[0]
		s.KernelLoop = outer
		for _, iv := range innerIVs {
			dropped[iv.Reg] = true
		}
	case len(outerIVs) == 0 && len(innerIVs) == 1:
		s.Category = IndirectInner
		s.IV = innerIVs[0]
		s.KernelLoop = inner
	default:
		return nil, unsupported(pc, "unmatched induction structure (%d inner, %d outer IVs)", len(innerIVs), len(outerIVs))
	}

	for r := range invariant {
		s.Invariants = append(s.Invariants, r)
	}
	sort.Slice(s.Invariants, func(i, j int) bool { return s.Invariants[i] < s.Invariants[j] })
	for r := range dropped {
		s.DroppedIVs = append(s.DroppedIVs, r)
	}
	sort.Slice(s.DroppedIVs, func(i, j int) bool { return s.DroppedIVs[i] < s.DroppedIVs[j] })
	return s, nil
}
