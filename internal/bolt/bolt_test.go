package bolt

import (
	"testing"

	"rpg2/internal/cache"
	"rpg2/internal/cfg"
	"rpg2/internal/cpu"
	"rpg2/internal/isa"
	"rpg2/internal/mem"
)

// indirectProgram builds a single-loop a[f(b[j])] kernel:
//
//	main: setup regs elsewhere; loop over j: t=b[j]; t2=t*1? via shr; v=a[t]
//
// Registers: r0=bBase r1=aBase r2=n; temps r8 (j), r9 (t), r10 (v), r11 acc.
func indirectProgram(t *testing.T) (*isa.Binary, int) {
	t.Helper()
	a := isa.NewAsm("main")
	a.MovImm(8, 0)
	a.Label("loop")
	a.LoadIdx(9, 0, 8, 0)  // t = b[j]
	a.LoadIdx(10, 1, 9, 0) // v = a[t]   <- demand load
	a.Add(11, 11, 10)
	a.AddImm(8, 8, 1)
	a.Br(isa.LT, 8, 2, "loop")
	a.Halt()
	bin, err := isa.NewProgram("main").Add(a).Link()
	if err != nil {
		t.Fatal(err)
	}
	return bin, 2 // demand load PC
}

// outerProgram builds the a[f(b[i])+j] (category 3) nest used by bc.
// Registers: r0=rowptr r1=data r2=rowlen r6=N.
func outerProgram(t *testing.T) (*isa.Binary, int) {
	t.Helper()
	a := isa.NewAsm("main")
	a.MovImm(8, 0)
	a.Label("outer")
	a.LoadIdx(9, 0, 8, 0)  // start = rowptr[i]
	a.Add(10, 1, 9)        // base2 = data + start
	a.LoadIdx(11, 2, 8, 0) // len
	a.MovImm(12, 0)
	a.Br(isa.GE, 12, 11, "next")
	a.Label("inner")
	a.LoadIdx(13, 10, 12, 0) // x = data[start+j]  <- demand load
	a.Add(7, 7, 13)
	a.AddImm(12, 12, 1)
	a.Br(isa.LT, 12, 11, "inner")
	a.Label("next")
	a.AddImm(8, 8, 1)
	a.Br(isa.LT, 8, 6, "outer")
	a.Halt()
	bin, err := isa.NewProgram("main").Add(a).Link()
	if err != nil {
		t.Fatal(err)
	}
	return bin, 6
}

// directProgram builds a plain streaming loop a[j].
func directProgram(t *testing.T) (*isa.Binary, int) {
	t.Helper()
	a := isa.NewAsm("main")
	a.MovImm(8, 0)
	a.Label("loop")
	a.LoadIdx(9, 0, 8, 0) // a[j]  <- demand load
	a.Add(10, 10, 9)
	a.AddImm(8, 8, 1)
	a.Br(isa.LT, 8, 2, "loop")
	a.Halt()
	bin, err := isa.NewProgram("main").Add(a).Link()
	if err != nil {
		t.Fatal(err)
	}
	return bin, 1
}

// stackSlotProgram spills the loaded index through a fixed stack slot, the
// pattern §3.2.2 explicitly supports.
func stackSlotProgram(t *testing.T) (*isa.Binary, int) {
	t.Helper()
	a := isa.NewAsm("main")
	a.SubImm(15, 15, 1) // reserve a slot (sp -= 1)
	a.MovImm(8, 0)
	a.Label("loop")
	a.LoadIdx(9, 0, 8, 0)   // t = b[j]
	a.Store(15, 0, 9)       // [sp+0] = t
	a.Load(10, 15, 0)       // t' = [sp+0]
	a.LoadIdx(11, 1, 10, 0) // v = a[t']  <- demand load (pc 5)
	a.Add(12, 12, 11)
	a.AddImm(8, 8, 1)
	a.Br(isa.LT, 8, 2, "loop")
	a.Halt()
	bin, err := isa.NewProgram("main").Add(a).Link()
	if err != nil {
		t.Fatal(err)
	}
	return bin, 5
}

func sliceFor(t *testing.T, bin *isa.Binary, pc int) (*Slice, error) {
	t.Helper()
	f, _ := bin.Func("main")
	g, err := cfg.Build(bin.Text, f)
	if err != nil {
		t.Fatal(err)
	}
	return ComputeSlice(g, g.Loops(), pc)
}

func TestSliceCategories(t *testing.T) {
	cases := []struct {
		name  string
		build func(*testing.T) (*isa.Binary, int)
		want  Category
	}{
		{"direct", directProgram, Direct},
		{"indirect-inner", indirectProgram, IndirectInner},
		{"indirect-outer", outerProgram, IndirectOuter},
		{"stack-slot", stackSlotProgram, IndirectInner},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bin, pc := tc.build(t)
			s, err := sliceFor(t, bin, pc)
			if err != nil {
				t.Fatalf("ComputeSlice: %v", err)
			}
			if s.Category != tc.want {
				t.Fatalf("category = %v, want %v", s.Category, tc.want)
			}
			if tc.name == "stack-slot" && !s.ViaStack {
				t.Fatal("stack-slot slice not flagged ViaStack")
			}
			if tc.name == "indirect-outer" && len(s.DroppedIVs) != 1 {
				t.Fatalf("dropped IVs = %v, want the inner j", s.DroppedIVs)
			}
		})
	}
}

func TestSliceRejectsUnsupported(t *testing.T) {
	// Multiple reaching definitions: r9 conditionally redefined.
	a := isa.NewAsm("main")
	a.MovImm(8, 0)
	a.Label("loop")
	a.LoadIdx(9, 0, 8, 0)
	a.BrImm(isa.EQ, 9, 0, "skip")
	a.AddImm(9, 9, 1) // second def of r9
	a.Label("skip")
	a.LoadIdx(10, 1, 9, 0) // demand
	a.AddImm(8, 8, 1)
	a.Br(isa.LT, 8, 2, "loop")
	a.Halt()
	bin, err := isa.NewProgram("main").Add(a).Link()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sliceFor(t, bin, 5); err == nil {
		t.Fatal("multiple reaching definitions must be rejected")
	}

	// Not a load.
	bin2, _ := directProgram(t)
	if _, err := sliceFor(t, bin2, 0); err == nil {
		t.Fatal("non-load must be rejected")
	}

	// Not in a loop.
	b := isa.NewAsm("main")
	b.Load(1, 0, 5)
	b.Halt()
	bin3, _ := isa.NewProgram("main").Add(b).Link()
	if _, err := sliceFor(t, bin3, 0); err == nil {
		t.Fatal("loop-free load must be rejected")
	}
}

func TestInjectPrefetchProducesPatchableKernel(t *testing.T) {
	bin, pc := indirectProgram(t)
	rw, err := InjectPrefetch(bin, "main", []int{pc}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Sites) != 1 || len(rw.PatchPoints) != 1 {
		t.Fatalf("sites=%d patchpoints=%d", len(rw.Sites), len(rw.PatchPoints))
	}
	pp := rw.PatchPoints[0]
	in := rw.Code[pp.Offset]
	if in.Op != isa.AddImm || in.Imm != 20 {
		t.Fatalf("patch point holds %v, want AddImm #20", in)
	}
	patched := pp.Apply(in, 77)
	if patched.Imm != 77 {
		t.Fatalf("Apply(77) -> %d", patched.Imm)
	}
	// Kernel must contain exactly one prefetch and a guard.
	prefetches, guards := 0, 0
	site := rw.Sites[0]
	for _, kin := range rw.Code[site.KernelOffset : site.KernelOffset+site.KernelLen] {
		switch kin.Op {
		case isa.Prefetch:
			prefetches++
		case isa.Br, isa.BrImm:
			guards++
		}
	}
	if prefetches != 1 || guards != 1 {
		t.Fatalf("kernel has %d prefetches, %d guards", prefetches, guards)
	}
	if !site.Spilled {
		t.Fatal("kernel must spill its scratch register")
	}
}

func TestBATRoundTrip(t *testing.T) {
	bin, pc := indirectProgram(t)
	rw, err := InjectPrefetch(bin, "main", []int{pc}, 10)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := bin.Func("main")
	for p0 := f.Entry; p0 < f.Entry+f.Size; p0++ {
		off, ok := rw.BAT.Translate(p0)
		if !ok {
			t.Fatalf("no BAT entry for f0 pc %d", p0)
		}
		back, ok := rw.BAT.TranslateBack(off)
		if !ok || back != p0 {
			t.Fatalf("BAT round trip %d -> %d -> %d", p0, off, back)
		}
	}
	// Kernel interior offsets (between KernelOffset and the copied header)
	// have no reverse mapping — except the kernel start, which aliases
	// the header PC so back edges re-enter the kernel.
	site := rw.Sites[0]
	for off := site.KernelOffset + 1; off < site.KernelOffset+site.KernelLen; off++ {
		if _, ok := rw.BAT.TranslateBack(off); ok {
			t.Fatalf("kernel offset %d should have no reverse mapping", off)
		}
	}
	if _, ok := rw.BAT.TranslateBack(site.KernelOffset); !ok {
		t.Fatal("kernel start must alias the loop header")
	}
}

// execute runs a binary from its entry to halt and returns the final
// architectural state.
func execute(t *testing.T, bin *isa.Binary, setup func(*mem.AddrSpace, *[isa.NumRegs]uint64)) ([isa.NumRegs]uint64, []uint64, uint64) {
	t.Helper()
	hier := cache.New(cache.Config{
		L1:   cache.LevelConfig{Name: "L1d", Lines: 16, Assoc: 2, Latency: 1},
		L2:   cache.LevelConfig{Name: "L2", Lines: 32, Assoc: 2, Latency: 10},
		L3:   cache.LevelConfig{Name: "L3", Lines: 64, Assoc: 4, Latency: 30},
		DRAM: cache.DRAMConfig{Latency: 100, ServiceCycles: 4, MSHRs: 8},
	})
	as := mem.NewAddrSpace()
	th := &cpu.Thread{}
	stack := as.Alloc("stack", 64)
	th.Regs[isa.SP] = stack.End()
	setup(as, &th.Regs)
	entry, err := bin.Entry()
	if err != nil {
		t.Fatal(err)
	}
	th.PC = entry
	core := cpu.New(cpu.Config{MLP: 4}, hier)
	for i := 0; th.Runnable(); i++ {
		if i > 10_000_000 {
			t.Fatal("runaway execution")
		}
		if err := core.Step(th, bin.Text, as); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if th.Fault != nil {
		t.Fatalf("execution faulted: %v at pc %d", th.Fault, th.PC)
	}
	aSeg := as.Segment("a")
	var aData []uint64
	if aSeg != nil {
		aData = append(aData, aSeg.Data...)
	}
	return th.Regs, aData, core.Now
}

// TestKernelIsANOP is the pass's correctness criterion (§3.2.3): for every
// supported category and many distances, the rewritten function computes
// exactly the same architectural result as the original.
func TestKernelIsANOP(t *testing.T) {
	builders := []struct {
		name  string
		build func(*testing.T) (*isa.Binary, int)
	}{
		{"direct", directProgram},
		{"indirect-inner", indirectProgram},
		{"indirect-outer", outerProgram},
		{"stack-slot", stackSlotProgram},
	}
	n := 64
	for _, tc := range builders {
		t.Run(tc.name, func(t *testing.T) {
			bin, pc := tc.build(t)
			setup := func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
				b := make([]uint64, n)
				rowlen := make([]uint64, n)
				for i := range b {
					b[i] = uint64((i * 7) % n)
					rowlen[i] = uint64(i % 4)
				}
				aArr := make([]uint64, 4*n)
				for i := range aArr {
					aArr[i] = uint64(i * 3)
				}
				switch tc.name {
				case "indirect-outer":
					regs[0] = as.Map("rowptr", b).Base
					regs[1] = as.Map("a", aArr).Base
					regs[2] = as.Map("rowlen", rowlen).Base
					regs[6] = uint64(n)
				case "direct":
					regs[0] = as.Map("a", aArr).Base
					regs[2] = uint64(n)
				default:
					regs[0] = as.Map("b", b).Base
					regs[1] = as.Map("a", aArr).Base
					regs[2] = uint64(n)
				}
			}
			origRegs, origA, _ := execute(t, bin, setup)
			for _, d := range []int{1, 5, 20, 63, 64, 100, 200} {
				rw, err := InjectPrefetch(bin, "main", []int{pc}, d)
				if err != nil {
					t.Fatalf("InjectPrefetch(d=%d): %v", d, err)
				}
				nb, err := rw.Apply(bin)
				if err != nil {
					t.Fatalf("Apply: %v", err)
				}
				newRegs, newA, _ := execute(t, nb, setup)
				// SP and the scratch register's transient value are
				// restored by the kernel; every register must match.
				if newRegs != origRegs {
					t.Fatalf("d=%d: registers diverge\norig: %v\n new: %v", d, origRegs, newRegs)
				}
				for i := range origA {
					if origA[i] != newA[i] {
						t.Fatalf("d=%d: memory diverges at a[%d]", d, i)
					}
				}
			}
		})
	}
}

// TestBoundsCheckPreventsCrash verifies the guard's purpose: the kernel's
// own load of b[j+d] would fault on unmapped memory past the array without
// the check (§3.2.3). A huge distance forces every kernel execution out of
// bounds; the program must still run to completion.
func TestBoundsCheckPreventsCrash(t *testing.T) {
	bin, pc := indirectProgram(t)
	rw, err := InjectPrefetch(bin, "main", []int{pc}, 200)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := rw.Apply(bin)
	if err != nil {
		t.Fatal(err)
	}
	n := 16 // tiny array: j+200 is far outside, inside the guard gap
	execute(t, nb, func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
		b := make([]uint64, n)
		aArr := make([]uint64, n)
		regs[0] = as.Map("b", b).Base
		regs[1] = as.Map("a", aArr).Base
		regs[2] = uint64(n)
	}) // execute fails the test on any fault
}

func TestInjectPrefetchErrors(t *testing.T) {
	bin, _ := indirectProgram(t)
	if _, err := InjectPrefetch(bin, "ghost", []int{0}, 10); err == nil {
		t.Fatal("unknown function must fail")
	}
	if _, err := InjectPrefetch(bin, "main", []int{0}, 10); err == nil {
		t.Fatal("non-load candidate must fail")
	}
	var ue *UnsupportedError
	_, err := InjectPrefetch(bin, "main", []int{0}, 10)
	if !errorsAs(err, &ue) {
		t.Fatalf("error should be UnsupportedError, got %T", err)
	}
}

func errorsAs(err error, target any) bool {
	if err == nil {
		return false
	}
	if ue, ok := err.(*UnsupportedError); ok {
		*(target.(**UnsupportedError)) = ue
		return true
	}
	return false
}

func TestApplyRetargetsCallsAndEntry(t *testing.T) {
	// A main that calls the hot function.
	hot := isa.NewAsm("hot")
	hot.MovImm(8, 0)
	hot.Label("loop")
	hot.LoadIdx(9, 0, 8, 0)
	hot.LoadIdx(10, 1, 9, 0)
	hot.AddImm(8, 8, 1)
	hot.Br(isa.LT, 8, 2, "loop")
	hot.Ret()
	mn := isa.NewAsm("main")
	mn.Call("hot")
	mn.Halt()
	bin, err := isa.NewProgram("main").Add(mn).Add(hot).Link()
	if err != nil {
		t.Fatal(err)
	}
	hf, _ := bin.Func("hot")
	rw, err := InjectPrefetch(bin, "hot", []int{hf.Entry + 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := rw.Apply(bin)
	if err != nil {
		t.Fatal(err)
	}
	f1, ok := nb.Func("hot.bolt")
	if !ok {
		t.Fatal("rewritten function missing")
	}
	if nb.Text[0].Op != isa.Call || nb.Text[0].Target != f1.Entry {
		t.Fatalf("call site not retargeted: %v", nb.Text[0])
	}
	if nb.EntryName != "main" {
		t.Fatal("entry must stay main when main was not rewritten")
	}
	// Original hot remains intact for rollback.
	if _, ok := nb.Func("hot"); !ok {
		t.Fatal("f0 must remain in the binary")
	}
}

func TestCategoryStrings(t *testing.T) {
	for _, c := range []Category{Direct, IndirectInner, IndirectOuter} {
		if c.String() == "" {
			t.Errorf("category %d unnamed", c)
		}
	}
}
