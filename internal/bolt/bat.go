// Package bolt reproduces the role Meta's BOLT binary optimizer plays in
// RPG²: lifting a function from a binary, running the paper's new
// InjectPrefetchPass over it (loop analysis, backward slicing, prefetch
// kernel generation), and emitting the rewritten code together with a BOLT
// Address Translation table (BAT) that maps program counters between the
// original function f0 and the optimized version f1. The BAT is what makes
// on-stack replacement and rollback possible (§3.3.1, §3.4.1).
package bolt

// BAT is the address translation table between an original function f0 and
// its rewritten version f1. f0 PCs are absolute (indices into the binary's
// text); f1 PCs are offsets relative to the start of the rewritten code
// until Rebase fixes a load address.
//
// Instructions belonging to an injected prefetch kernel have no f0
// counterpart and therefore no reverse entry — exactly the corner case that
// forces RPG² to single-step a thread out of a kernel during rollback.
type BAT struct {
	// ToF1 maps an f0 PC to the offset of the same instruction in f1.
	ToF1 map[int]int
	// ToF0 maps an f1 offset back to its f0 PC.
	ToF0 map[int]int
}

// NewBAT returns an empty table.
func NewBAT() *BAT {
	return &BAT{ToF1: make(map[int]int), ToF0: make(map[int]int)}
}

func (b *BAT) add(f0PC, f1Off int) {
	b.ToF1[f0PC] = f1Off
	b.ToF0[f1Off] = f0PC
}

// Translate maps an f0 PC to an f1 offset.
func (b *BAT) Translate(f0PC int) (int, bool) {
	off, ok := b.ToF1[f0PC]
	return off, ok
}

// TranslateBack maps an f1 offset to an f0 PC. It returns false for offsets
// inside an injected kernel.
func (b *BAT) TranslateBack(f1Off int) (int, bool) {
	pc, ok := b.ToF0[f1Off]
	return pc, ok
}

// Len returns the number of translated (non-kernel) instructions.
func (b *BAT) Len() int { return len(b.ToF1) }
