package admission

import "testing"

func item(id int, k Key, prio int) *Item {
	return &Item{ID: id, Key: k, Priority: prio, Breakable: true}
}

// popID pops and returns the dispatched item's ID, failing if the queue had
// nothing to give.
func popID(t *testing.T, q *Queue) int {
	t.Helper()
	d, ok := q.Pop()
	if !ok {
		t.Fatalf("Pop: queue unexpectedly empty (len=%d)", q.Len())
	}
	return d.Item.ID
}

func TestZeroConfigIsFIFO(t *testing.T) {
	q := NewQueue(Config{})
	for i := 0; i < 8; i++ {
		q.Push(item(i, Key{Bench: "pr"}, 0))
	}
	for i := 0; i < 8; i++ {
		if got := popID(t, q); got != i {
			t.Fatalf("dispatch %d: got item %d, want FIFO order", i, got)
		}
		q.Release(Key{Bench: "pr"})
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop succeeded on an empty queue")
	}
	s := q.Stats()
	if s.Retries != 0 || s.QuotaStalls != 0 || s.BreakerTrips != 0 || s.Clock != 0 {
		t.Fatalf("zero-config queue accrued policy stats: %+v", s)
	}
}

func TestPriorityOrderWithFIFOTiebreak(t *testing.T) {
	q := NewQueue(Config{AgingStep: -1}) // isolate explicit priority
	q.Push(item(0, Key{Bench: "a"}, 0))
	q.Push(item(1, Key{Bench: "b"}, 5))
	q.Push(item(2, Key{Bench: "c"}, 5))
	q.Push(item(3, Key{Bench: "d"}, 1))
	want := []int{1, 2, 3, 0} // high priority first, equal priority by seq
	for i, w := range want {
		if got := popID(t, q); got != w {
			t.Fatalf("dispatch %d: got item %d, want %d", i, got, w)
		}
	}
}

func TestAgingPreventsStarvation(t *testing.T) {
	// A priority-0 item waits while priority-10 items keep arriving; with
	// AgingStep=2 its effective priority gains a point every 2 dispatches,
	// so it must win within a bounded number of rounds.
	q := NewQueue(Config{AgingStep: 2})
	low := item(999, Key{Bench: "low"}, 0)
	q.Push(low)
	next := 0
	for round := 0; round < 40; round++ {
		q.Push(item(next, Key{Bench: "hi"}, 10))
		next++
		if popID(t, q) == 999 {
			return // the starved item finally dispatched
		}
	}
	t.Fatal("low-priority item starved for 40 rounds despite aging")
}

func TestAgingDisabled(t *testing.T) {
	q := NewQueue(Config{AgingStep: -1})
	low := item(999, Key{Bench: "low"}, 0)
	q.Push(low)
	next := 0
	for round := 0; round < 40; round++ {
		q.Push(item(next, Key{Bench: "hi"}, 10))
		next++
		if popID(t, q) == 999 {
			t.Fatalf("round %d: aged item dispatched with aging disabled", round)
		}
	}
}

func TestQuotaBoundsInflightPerKey(t *testing.T) {
	q := NewQueue(Config{Quota: 2})
	k := Key{Bench: "pr", Input: "soc"}
	other := Key{Bench: "bfs"}
	for i := 0; i < 4; i++ {
		q.Push(item(i, k, 0))
	}
	q.Push(item(10, other, 0))

	if got := popID(t, q); got != 0 {
		t.Fatalf("first dispatch: got %d", got)
	}
	if got := popID(t, q); got != 1 {
		t.Fatalf("second dispatch: got %d", got)
	}
	// k is at quota: the other key's item dispatches instead.
	if got := popID(t, q); got != 10 {
		t.Fatalf("third dispatch: got %d, want the unblocked key's item", got)
	}
	// Everything left is quota-blocked: Pop stalls and counts it.
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop dispatched past the quota ceiling")
	}
	if s := q.Stats(); s.QuotaStalls != 1 {
		t.Fatalf("QuotaStalls = %d, want 1", s.QuotaStalls)
	}
	// Releasing one slot frees the next item.
	q.Release(k)
	if got := popID(t, q); got != 2 {
		t.Fatalf("post-release dispatch: got %d, want 2", got)
	}
}

func TestRetryBackoffAndVirtualClock(t *testing.T) {
	q := NewQueue(Config{MaxRetries: 3, BackoffBase: 0.5, BackoffCap: 8})
	it := item(1, Key{Bench: "pr"}, 0)
	q.Push(it)
	d, _ := q.Pop()
	q.Release(d.Item.Key)

	// First retry: 0.5 s backoff from clock 0.
	backoff, due, ok := q.Retry(it)
	if !ok || backoff != 0.5 || due != 0.5 {
		t.Fatalf("retry 1: backoff=%v due=%v ok=%v, want 0.5/0.5/true", backoff, due, ok)
	}
	if it.Attempt != 1 {
		t.Fatalf("Attempt = %d, want 1", it.Attempt)
	}
	// Nothing ready: Pop must jump the virtual clock to the due time.
	d, ok = q.Pop()
	if !ok || d.Item != it {
		t.Fatal("retry item did not dispatch")
	}
	if d.Waited != 0.5 || q.Clock() != 0.5 {
		t.Fatalf("waited=%v clock=%v, want 0.5/0.5", d.Waited, q.Clock())
	}
	q.Release(d.Item.Key)

	// Exponential doubling: attempt 2 waits 1.0 s.
	if backoff, due, _ = q.Retry(it); backoff != 1.0 || due != 1.5 {
		t.Fatalf("retry 2: backoff=%v due=%v, want 1.0/1.5", backoff, due)
	}
	d, _ = q.Pop()
	q.Release(d.Item.Key)
	// Attempt 3 waits 2.0 s and exhausts the budget.
	if backoff, _, _ = q.Retry(it); backoff != 2.0 {
		t.Fatalf("retry 3: backoff=%v, want 2.0", backoff)
	}
	d, _ = q.Pop()
	q.Release(d.Item.Key)
	if _, _, ok = q.Retry(it); ok {
		t.Fatal("retry 4 admitted past MaxRetries=3")
	}

	s := q.Stats()
	if s.Retries != 3 {
		t.Fatalf("Retries = %d, want 3", s.Retries)
	}
	if s.BackoffWait != 3.5 {
		t.Fatalf("BackoffWait = %v, want 3.5", s.BackoffWait)
	}
	if s.Clock != 3.5 {
		t.Fatalf("Clock = %v, want 3.5", s.Clock)
	}
}

func TestBackoffCap(t *testing.T) {
	q := NewQueue(Config{MaxRetries: 10, BackoffBase: 1, BackoffCap: 4})
	waits := []float64{1, 2, 4, 4, 4}
	for i, want := range waits {
		if got := q.Backoff(i + 1); got != want {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, want)
		}
	}
}

func TestRetryDisabledByDefault(t *testing.T) {
	q := NewQueue(Config{})
	it := item(1, Key{}, 0)
	q.Push(it)
	q.Pop()
	if _, _, ok := q.Retry(it); ok {
		t.Fatal("zero-config queue admitted a retry")
	}
}

func TestBreakerTripParkHalfOpenClose(t *testing.T) {
	q := NewQueue(Config{BreakerThreshold: 2, BreakerCooldown: 4, MaxRetries: 1})
	k := Key{Bench: "pr", Input: "soc"}

	// Two consecutive rollbacks trip the breaker.
	if opened, _ := q.Report(k, Rollback); opened {
		t.Fatal("breaker tripped after one rollback")
	}
	opened, _ := q.Report(k, Rollback)
	if !opened {
		t.Fatal("breaker did not trip at the threshold")
	}
	if q.OpenBreakers() != 1 {
		t.Fatalf("OpenBreakers = %d, want 1", q.OpenBreakers())
	}

	// Before the cooldown expires, breakable items park.
	q.Push(item(1, k, 0))
	d, ok := q.Pop()
	if !ok || !d.Parked {
		t.Fatalf("expected a parked dispatch, got %+v ok=%v", d, ok)
	}
	q.Release(k)
	if s := q.Stats(); s.Parked != 1 || s.BreakerTrips != 1 {
		t.Fatalf("stats after park: %+v", s)
	}

	// Push the clock past reopenAt via a retry wait, then the next
	// dispatch is the single half-open trial.
	probe := item(2, k, 0)
	q.Push(probe)
	d, _ = q.Pop()
	q.Release(k)
	if !d.Parked { // clock still 0 < reopenAt 4
		t.Fatal("pre-cooldown dispatch was not parked")
	}
	if _, _, ok := q.Retry(probe); !ok {
		t.Fatal("retry refused")
	}
	q.cfg.BackoffBase = 0 // keep the test's arithmetic simple below
	q.clock = 5           // cooldown (reopenAt=4) has expired
	d, ok = q.Pop()
	if !ok || d.Parked || !d.HalfOpen {
		t.Fatalf("expected the half-open trial, got %+v ok=%v", d, ok)
	}
	// While the trial is in flight, further items still park.
	q.Push(item(3, k, 0))
	d2, _ := q.Pop()
	if !d2.Parked {
		t.Fatal("second dispatch during half-open trial was not parked")
	}
	q.Release(k)
	q.Release(k)

	// The trial succeeds: breaker closes.
	if _, closed := q.Report(k, Success); !closed {
		t.Fatal("successful trial did not close the breaker")
	}
	if q.OpenBreakers() != 0 {
		t.Fatal("breaker still open after close")
	}
	q.Push(item(4, k, 0))
	if d, _ := q.Pop(); d.Parked {
		t.Fatal("dispatch parked after the breaker closed")
	}
}

func TestBreakerHalfOpenRollbackReopens(t *testing.T) {
	q := NewQueue(Config{BreakerThreshold: 1, BreakerCooldown: 4})
	k := Key{Bench: "bc"}
	if opened, _ := q.Report(k, Rollback); !opened {
		t.Fatal("threshold-1 breaker did not trip")
	}
	q.clock = 10
	q.Push(item(1, k, 0))
	d, _ := q.Pop()
	if !d.HalfOpen {
		t.Fatal("post-cooldown dispatch was not the half-open trial")
	}
	q.Release(k)
	opened, _ := q.Report(k, Rollback)
	if !opened {
		t.Fatal("rolled-back trial did not re-open the breaker")
	}
	// The cooldown restarted: items park again.
	q.Push(item(2, k, 0))
	if d, _ := q.Pop(); !d.Parked {
		t.Fatal("dispatch after a failed trial was not parked")
	}
	if s := q.Stats(); s.BreakerTrips != 2 {
		t.Fatalf("BreakerTrips = %d, want 2", s.BreakerTrips)
	}
}

func TestNonBreakableItemsIgnoreOpenBreaker(t *testing.T) {
	q := NewQueue(Config{BreakerThreshold: 1})
	k := Key{Bench: "pr"}
	q.Report(k, Rollback)
	it := item(1, k, 0)
	it.Breakable = false // e.g. a baseline or sweep job on the same pair
	q.Push(it)
	if d, _ := q.Pop(); d.Parked {
		t.Fatal("non-breakable item was parked")
	}
}

func TestEvictDrainsReadyThenRetries(t *testing.T) {
	q := NewQueue(Config{MaxRetries: 2})
	a := item(1, Key{Bench: "a"}, 0)
	b := item(2, Key{Bench: "b"}, 0)
	q.Push(a)
	q.Push(b)
	d, _ := q.Pop() // dispatch a
	q.Release(d.Item.Key)
	q.Retry(a) // a now sits in the retry lane

	if it, ok := q.Evict(); !ok || it != b {
		t.Fatalf("first evict: got %v ok=%v, want the ready item", it, ok)
	}
	if it, ok := q.Evict(); !ok || it != a {
		t.Fatalf("second evict: got %v ok=%v, want the retry-lane item", it, ok)
	}
	if _, ok := q.Evict(); ok {
		t.Fatal("evict succeeded on an empty queue")
	}
	if !q.Empty() {
		t.Fatal("queue not empty after full eviction")
	}
}

func TestQuotaBlockedRetryDoesNotAdvanceClock(t *testing.T) {
	q := NewQueue(Config{Quota: 1, MaxRetries: 2})
	k := Key{Bench: "pr"}
	a := item(1, k, 0)
	b := item(2, k, 0)
	q.Push(b)
	q.Pop() // b runs once...
	q.Release(k)
	q.Retry(b) // ...and lands in the retry lane
	q.Push(a)
	q.Pop() // a in flight, holding k's only slot
	// b waits in the retry lane but its key is at quota: the clock must
	// not jump, and Pop must report a stall.
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop dispatched a quota-blocked retry")
	}
	if q.Clock() != 0 {
		t.Fatalf("clock advanced to %v for a quota-blocked retry", q.Clock())
	}
	q.Release(k)
	d, ok := q.Pop()
	if !ok || d.Item != b {
		t.Fatal("released slot did not admit the retry")
	}
	if q.Clock() == 0 {
		t.Fatal("clock did not advance when the retry became admissible")
	}
}

// TestExportImportRoundTrip: the persistable scheduler state survives a
// round trip into a fresh queue, and an imported open breaker still parks
// work exactly like the one that was exported.
func TestExportImportRoundTrip(t *testing.T) {
	cfg := Config{MaxRetries: 3, BreakerThreshold: 2, BreakerCooldown: 4}
	q := NewQueue(cfg)
	k := Key{Bench: "pr", Input: "kron"}
	for i := 0; i < 2; i++ {
		it := item(i+1, k, 0)
		q.Push(it)
		popID(t, q)
		q.Release(k)
		q.Report(k, Rollback)
	}
	st := q.Export()
	if len(st.Breakers) != 1 || !st.Breakers[0].Open || st.Breakers[0].Consecutive != 2 {
		t.Fatalf("export = %+v", st.Breakers)
	}

	q2 := NewQueue(cfg)
	q2.Import(st)
	got := q2.Export()
	if len(got.Breakers) != 1 || got.Breakers[0] != st.Breakers[0] ||
		got.Clock != st.Clock || got.Stats != st.Stats {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, st)
	}
	q2.Push(item(9, k, 0))
	if d, ok := q2.Pop(); !ok || !d.Parked {
		t.Fatalf("imported open breaker did not park: parked=%v ok=%v", d.Parked, ok)
	}
}

// TestImportHalfOpenRearmsAsOpen: a breaker exported mid-trial lost the
// trial with the process; it must come back as plain open with a fresh
// cooldown, not stuck half-open forever.
func TestImportHalfOpenRearmsAsOpen(t *testing.T) {
	q := NewQueue(Config{BreakerThreshold: 2, BreakerCooldown: 4})
	q.Import(PersistState{Clock: 10, Breakers: []BreakerState{
		{Key: Key{Bench: "pr"}, Consecutive: 2, HalfOpen: true},
	}})
	bs := q.Breakers()
	if len(bs) != 1 || !bs[0].Open || bs[0].HalfOpen || bs[0].ReopenAt != 14 {
		t.Fatalf("half-open import = %+v", bs)
	}
	if bs[0].State() != "open" {
		t.Fatalf("state = %q", bs[0].State())
	}
}

// TestReplayBreakerEdges: recovery's coarse roll-forward of journaled
// breaker transitions lands the breaker in the right posture.
func TestReplayBreakerEdges(t *testing.T) {
	q := NewQueue(Config{BreakerThreshold: 3, BreakerCooldown: 4})
	k := Key{Bench: "bfs", Input: "soc-gamma"}
	q.ReplayBreaker(k, true)
	bs := q.Breakers()
	if len(bs) != 1 || !bs[0].Open || bs[0].Consecutive != 3 {
		t.Fatalf("open replay = %+v", bs)
	}
	q.ReplayBreaker(k, false)
	if bs := q.Breakers(); len(bs) != 0 {
		t.Fatalf("close replay left %+v", bs)
	}
}

// TestTenantQuotaCapsDispatch: with TenantQuota=2, a tenant with three
// waiting items across three distinct keys dispatches only two, while an
// untenanted item (and another tenant's item) still flow.
func TestTenantQuotaCapsDispatch(t *testing.T) {
	q := NewQueue(Config{TenantQuota: 2, AgingStep: -1})
	for i := 0; i < 3; i++ {
		it := item(i, Key{Bench: "a", Input: string(rune('x' + i))}, 5)
		it.Tenant = "alice"
		q.Push(it)
	}
	bob := item(10, Key{Bench: "b"}, 0)
	bob.Tenant = "bob"
	q.Push(bob)
	q.Push(item(20, Key{Bench: "c"}, 0)) // untenanted: exempt

	if got := popID(t, q); got != 0 {
		t.Fatalf("first dispatch = %d, want alice/0", got)
	}
	if got := popID(t, q); got != 1 {
		t.Fatalf("second dispatch = %d, want alice/1", got)
	}
	// Alice is at her quota: her third item must be skipped in favour of
	// bob and the untenanted item despite its higher priority.
	if got := popID(t, q); got != 10 {
		t.Fatalf("third dispatch = %d, want bob/10 (alice at quota)", got)
	}
	if got := popID(t, q); got != 20 {
		t.Fatalf("fourth dispatch = %d, want untenanted/20", got)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("alice's third item dispatched while she was at quota")
	}
	if q.Stats().QuotaStalls == 0 {
		t.Fatal("tenant-blocked Pop did not count a quota stall")
	}
	// Releasing one of alice's items frees the slot.
	first := &Item{ID: 0, Key: Key{Bench: "a", Input: "x"}, Tenant: "alice"}
	q.ReleaseItem(first)
	if got := popID(t, q); got != 2 {
		t.Fatalf("post-release dispatch = %d, want alice/2", got)
	}
}

// TestTenantDepthAccounting: depth follows Push/dispatch/Retry/Evict, and
// zeroed tenants are dropped from the map.
func TestTenantDepthAccounting(t *testing.T) {
	q := NewQueue(Config{MaxRetries: 2, BackoffBase: 1, BackoffCap: 8})
	a := item(1, Key{Bench: "a"}, 0)
	a.Tenant = "alice"
	b := item(2, Key{Bench: "b"}, 0)
	b.Tenant = "bob"
	q.Push(a)
	q.Push(b)
	if d := q.TenantDepth("alice"); d != 1 {
		t.Fatalf("alice depth after push = %d, want 1", d)
	}
	if got := len(q.TenantDepths()); got != 2 {
		t.Fatalf("TenantDepths has %d tenants, want 2", got)
	}

	popID(t, q) // dispatch alice
	if d := q.TenantDepth("alice"); d != 0 {
		t.Fatalf("alice depth after dispatch = %d, want 0", d)
	}
	if _, ok := q.TenantDepths()["alice"]; ok {
		t.Fatal("zeroed tenant still present in TenantDepths")
	}

	// Retry re-enters the lane: depth comes back.
	if _, _, ok := q.Retry(a); !ok {
		t.Fatal("Retry refused with budget remaining")
	}
	if d := q.TenantDepth("alice"); d != 1 {
		t.Fatalf("alice depth after retry = %d, want 1", d)
	}

	// Evict drains both the ready queue and the retry lane.
	for {
		if _, ok := q.Evict(); !ok {
			break
		}
	}
	if q.TenantDepths() != nil {
		t.Fatalf("depths after full eviction = %v, want nil", q.TenantDepths())
	}
}

// TestUntenantedExemptFromTenantQuota: empty tenants never block even with
// TenantQuota=1.
func TestUntenantedExemptFromTenantQuota(t *testing.T) {
	q := NewQueue(Config{TenantQuota: 1})
	for i := 0; i < 4; i++ {
		q.Push(item(i, Key{Bench: "a", Input: string(rune('0' + i))}, 0))
	}
	for i := 0; i < 4; i++ {
		if got := popID(t, q); got != i {
			t.Fatalf("dispatch %d = %d; untenanted items must be exempt", i, got)
		}
	}
	if q.TenantDepths() != nil {
		t.Fatal("untenanted items leaked into tenant depth accounting")
	}
}

func TestRetuneLaneFixedDelayAndBudget(t *testing.T) {
	q := NewQueue(Config{MaxRetunes: 2, RetuneDelay: 0.5})
	it := item(1, Key{Bench: "bc-drift"}, 0)
	q.Push(it)
	d, _ := q.Pop()
	q.Release(d.Item.Key)

	// First re-tune: fixed 0.5 s delay from clock 0.
	delay, due, ok := q.Retune(it)
	if !ok || delay != 0.5 || due != 0.5 {
		t.Fatalf("retune 1: delay=%v due=%v ok=%v, want 0.5/0.5/true", delay, due, ok)
	}
	if it.Retune != 1 || it.Attempt != 0 {
		t.Fatalf("Retune=%d Attempt=%d, want 1/0 (re-tunes must not consume retry budget)",
			it.Retune, it.Attempt)
	}
	d, ok = q.Pop()
	if !ok || d.Item != it {
		t.Fatal("re-tuned item did not dispatch")
	}
	q.Release(d.Item.Key)

	// Second re-tune: same fixed delay, no exponential growth.
	if delay, _, _ = q.Retune(it); delay != 0.5 {
		t.Fatalf("retune 2: delay=%v, want fixed 0.5", delay)
	}
	d, _ = q.Pop()
	q.Release(d.Item.Key)
	if _, _, ok = q.Retune(it); ok {
		t.Fatal("retune 3 admitted past MaxRetunes=2")
	}

	s := q.Stats()
	if s.Retunes != 2 {
		t.Fatalf("Retunes = %d, want 2", s.Retunes)
	}
	if s.Retries != 0 {
		t.Fatalf("Retries = %d, want 0 (re-tunes must not count as retries)", s.Retries)
	}
}

func TestRetuneDisabledByDefault(t *testing.T) {
	q := NewQueue(Config{MaxRetries: 3})
	it := item(1, Key{}, 0)
	q.Push(it)
	q.Pop()
	if _, _, ok := q.Retune(it); ok {
		t.Fatal("queue without MaxRetunes admitted a re-tune")
	}
}

func TestRetuneIndependentOfRetryBudget(t *testing.T) {
	// An item that exhausted its retries can still re-tune, and vice versa.
	q := NewQueue(Config{MaxRetries: 1, MaxRetunes: 1})
	it := item(1, Key{Bench: "pr"}, 0)
	q.Push(it)
	d, _ := q.Pop()
	q.Release(d.Item.Key)

	if _, _, ok := q.Retry(it); !ok {
		t.Fatal("retry 1 refused")
	}
	d, _ = q.Pop()
	q.Release(d.Item.Key)
	if _, _, ok := q.Retry(it); ok {
		t.Fatal("retry 2 admitted past budget")
	}
	if _, _, ok := q.Retune(it); !ok {
		t.Fatal("re-tune refused after retries were spent")
	}
	d, _ = q.Pop()
	q.Release(d.Item.Key)
	if it.Attempt != 1 || it.Retune != 1 {
		t.Fatalf("Attempt=%d Retune=%d, want 1/1", it.Attempt, it.Retune)
	}
}

func TestRetuneTenantDepthAccounting(t *testing.T) {
	q := NewQueue(Config{MaxRetunes: 1})
	it := &Item{ID: 1, Key: Key{Bench: "bc-drift"}, Tenant: "team-a", Breakable: true}
	q.Push(it)
	d, _ := q.Pop()
	q.ReleaseItem(d.Item)
	if got := q.TenantDepth("team-a"); got != 0 {
		t.Fatalf("depth after pop = %d, want 0", got)
	}
	if _, _, ok := q.Retune(it); !ok {
		t.Fatal("re-tune refused")
	}
	if got := q.TenantDepth("team-a"); got != 1 {
		t.Fatalf("depth after re-tune = %d, want 1 (lane must be depth-accounted)", got)
	}
	d, _ = q.Pop()
	q.ReleaseItem(d.Item)
	if got := q.TenantDepth("team-a"); got != 0 {
		t.Fatalf("depth after re-dispatch = %d, want 0", got)
	}
}
