// Package admission is the fleet's scheduling and resilience layer: the
// policy that decides which submitted session a free worker runs next. It
// replaces the fleet's original FIFO channel with four cooperating
// mechanisms:
//
//   - a priority scheduler: items carry an explicit priority, and waiting
//     items age (one effective priority point per AgingStep dispatches), so
//     low-priority work is delayed, never starved;
//   - per-key admission quotas: at most Quota sessions per (bench, input)
//     key in flight at once, so one workload cannot monopolise the pool;
//   - a retry lane with capped exponential backoff, driven by a
//     deterministic virtual clock (seconds that advance only when a
//     dispatch consumes a backoff wait — never wall time), re-admitting
//     failed and rolled-back sessions up to a per-session budget;
//   - a per-key circuit breaker: after BreakerThreshold consecutive
//     rollbacks a key's breaker opens and further breakable items are
//     parked (the fleet turns them into Degraded sessions) until the
//     virtual clock passes a cooldown, when one half-open trial is
//     admitted; success closes the breaker, another rollback re-opens it.
//
// The queue is deliberately not self-locking: the fleet owns the mutex
// that guards it (the queue state is entangled with the fleet's in-flight
// accounting, so a private lock would only invite lock-order bugs).
// Everything here is deterministic given the sequence of calls: no wall
// clocks, no randomness.
package admission

import "sort"

// Key is the quota and breaker domain: one (bench, input) workload.
type Key struct {
	Bench string `json:"bench"`
	Input string `json:"input,omitempty"`
}

// Config tunes the scheduler. The zero value is a plain FIFO queue:
// no quotas, no retries, no aging pressure, no breaker.
type Config struct {
	// Quota bounds in-flight items per key (0 = unlimited).
	Quota int
	// TenantQuota bounds in-flight items per tenant (0 = unlimited), so a
	// single submitter cannot monopolise the worker pool no matter how many
	// distinct workloads it spreads its sessions over. Items with an empty
	// tenant are exempt (they belong to no one to protect against).
	TenantQuota int
	// MaxRetries is the per-item retry budget (0 = no retry lane).
	MaxRetries int
	// BackoffBase is the first retry's backoff in virtual seconds
	// (default 0.5); attempt n waits BackoffBase·2^(n-1), capped.
	BackoffBase float64
	// BackoffCap caps one backoff wait (default 8).
	BackoffCap float64
	// AgingStep is how many dispatches raise a waiting item's effective
	// priority by one (default 8; negative disables aging).
	AgingStep int
	// BreakerThreshold is the consecutive-rollback count that trips a
	// key's breaker (0 = breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open in
	// virtual seconds before admitting a half-open trial (default 16).
	BreakerCooldown float64
	// MaxRetunes is the per-item re-tune budget (0 = no re-tune lane).
	// The re-tune lane is distinct from the retry lane: retries re-run
	// *failed* attempts with exponential backoff and a derived cold seed,
	// while re-tunes re-admit *successful* sessions whose tuned distance
	// has drifted, after a short fixed delay, to re-enter the distance
	// search warm. A re-tune does not consume retry budget or touch
	// Attempt.
	MaxRetunes int
	// RetuneDelay is the fixed wait before a re-admitted drifted session
	// re-dispatches, in virtual seconds (default 0.5). No exponential
	// growth: repeated re-tunes of a phasey workload are the intended
	// steady state, not an escalating failure.
	RetuneDelay float64
}

func (c Config) withDefaults() Config {
	if c.BackoffBase == 0 {
		c.BackoffBase = 0.5
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 8
	}
	if c.AgingStep == 0 {
		c.AgingStep = 8
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 16
	}
	if c.RetuneDelay == 0 {
		c.RetuneDelay = 0.5
	}
	return c
}

// Item is one schedulable unit. The fleet stores its *Session in Payload;
// the queue never inspects it.
type Item struct {
	ID       int
	Key      Key
	Priority int
	// Tenant names the submitter the item is accounted to for tenant
	// quotas and queue-depth tracking ("" = untenanted, exempt from both).
	Tenant string
	// Breakable items participate in the circuit breaker (the fleet sets
	// this for optimize jobs; reference-scheme jobs pass through).
	Breakable bool
	Payload   any
	// Attempt counts re-admissions through the retry lane (0 = first).
	Attempt int
	// Retune counts re-admissions through the re-tune lane (0 = never
	// re-tuned). Independent of Attempt: drift repair is not failure.
	Retune int

	seq      int     // submission order, the FIFO tiebreak
	waitedAt int     // dispatch-counter timestamp for aging
	due      float64 // virtual due time while parked in the retry lane
}

// Decision is one dispatch: the item to run plus how it was admitted.
type Decision struct {
	Item *Item
	// Parked: the item's breaker is open — the caller should terminate it
	// as degraded instead of running it.
	Parked bool
	// HalfOpen: this dispatch is its breaker's single recovery trial.
	HalfOpen bool
	// Waited is the virtual time the clock advanced to release this item
	// from the retry lane (0 for ready items).
	Waited float64
}

// Outcome classifies a finished attempt for the breaker.
type Outcome int

const (
	// Success: the session reached Done.
	Success Outcome = iota
	// Rollback: the controller injected code and rolled it back.
	Rollback
	// Failure: the session failed outright.
	Failure
)

// Stats are the scheduler's cumulative policy counters. They marshal to
// JSON because a fleet's WAL snapshots persist them across restarts.
type Stats struct {
	// Retries counts re-admissions through the retry lane.
	Retries int `json:"retries,omitempty"`
	// BackoffWait is the total virtual seconds consumed by backoff.
	BackoffWait float64 `json:"backoff_wait,omitempty"`
	// QuotaStalls counts dispatch attempts that went empty-handed while
	// work was queued, because every eligible item's key was at quota.
	QuotaStalls int `json:"quota_stalls,omitempty"`
	// BreakerTrips counts breaker openings (including half-open re-trips).
	BreakerTrips int `json:"breaker_trips,omitempty"`
	// Parked counts items dispatched as parked (degraded).
	Parked int `json:"parked,omitempty"`
	// Retunes counts re-admissions through the re-tune lane.
	Retunes int `json:"retunes,omitempty"`
	// Clock is the current virtual time in seconds.
	Clock float64 `json:"clock,omitempty"`
}

type breaker struct {
	consecutive int // rollbacks since the last success
	open        bool
	halfOpen    bool    // a recovery trial is in flight
	reopenAt    float64 // virtual time the cooldown expires
}

// Queue is the scheduler. It is not self-locking: the caller must guard
// every method with one mutex (the fleet uses its own).
type Queue struct {
	cfg Config

	ready    []*Item // scanned for the best effective priority
	retries  []*Item // retry lane, kept sorted by due time
	inflight map[Key]int
	breakers map[Key]*breaker
	// tenantInflight and tenantDepth account non-empty tenants: items a
	// tenant has running, and items it has waiting (ready + retry lane).
	tenantInflight map[string]int
	tenantDepth    map[string]int

	clock      float64
	dispatches int
	seq        int
	stats      Stats
}

// NewQueue builds an empty scheduler.
func NewQueue(cfg Config) *Queue {
	return &Queue{
		cfg:            cfg.withDefaults(),
		inflight:       make(map[Key]int),
		breakers:       make(map[Key]*breaker),
		tenantInflight: make(map[string]int),
		tenantDepth:    make(map[string]int),
	}
}

// Push admits a new item. The zero-config queue dispatches in push order.
func (q *Queue) Push(it *Item) {
	it.seq = q.seq
	q.seq++
	it.waitedAt = q.dispatches
	q.ready = append(q.ready, it)
	q.depthAdd(it.Tenant, 1)
}

// depthAdd moves a tenant's waiting-item count, dropping zeroed tenants so
// TenantDepths never accretes dead submitters.
func (q *Queue) depthAdd(tenant string, delta int) {
	if tenant == "" {
		return
	}
	q.tenantDepth[tenant] += delta
	if q.tenantDepth[tenant] <= 0 {
		delete(q.tenantDepth, tenant)
	}
}

// Len is the number of items waiting (ready + retry lane).
func (q *Queue) Len() int { return len(q.ready) + len(q.retries) }

// TenantDepth is how many items a tenant has waiting (ready + retry lane).
func (q *Queue) TenantDepth(tenant string) int { return q.tenantDepth[tenant] }

// TenantDepths copies the per-tenant waiting-item counts (non-empty
// tenants only; nil when no tenanted work is waiting).
func (q *Queue) TenantDepths() map[string]int {
	if len(q.tenantDepth) == 0 {
		return nil
	}
	out := make(map[string]int, len(q.tenantDepth))
	for t, n := range q.tenantDepth {
		out[t] = n
	}
	return out
}

// Empty reports whether nothing is waiting anywhere.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// Clock returns the virtual time in seconds.
func (q *Queue) Clock() float64 { return q.clock }

// Stats returns the cumulative policy counters.
func (q *Queue) Stats() Stats {
	s := q.stats
	s.Clock = q.clock
	return s
}

// OpenBreakers counts keys whose breaker is currently open.
func (q *Queue) OpenBreakers() int {
	n := 0
	for _, b := range q.breakers {
		if b.open {
			n++
		}
	}
	return n
}

// BreakerState is one key's breaker posture: the diagnosable detail the
// metrics snapshot lists and WAL snapshots persist.
type BreakerState struct {
	Key Key `json:"key"`
	// Consecutive is the rollback depth since the last success.
	Consecutive int  `json:"consecutive"`
	Open        bool `json:"open,omitempty"`
	// HalfOpen marks a breaker whose single recovery trial is in flight.
	HalfOpen bool `json:"half_open,omitempty"`
	// ReopenAt is the virtual time the cooldown expires (while open).
	ReopenAt float64 `json:"reopen_at,omitempty"`
}

// State renders the posture as the operator-facing word.
func (b BreakerState) State() string {
	switch {
	case b.HalfOpen:
		return "half-open"
	case b.Open:
		return "open"
	}
	return "closed"
}

// Breakers returns every non-idle breaker (open, half-open, or holding a
// consecutive-rollback count), sorted by key for deterministic output.
func (q *Queue) Breakers() []BreakerState {
	var out []BreakerState
	for k, b := range q.breakers {
		if !b.open && !b.halfOpen && b.consecutive == 0 {
			continue
		}
		out = append(out, BreakerState{
			Key: k, Consecutive: b.consecutive,
			Open: b.open, HalfOpen: b.halfOpen, ReopenAt: b.reopenAt,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Bench != out[j].Key.Bench {
			return out[i].Key.Bench < out[j].Key.Bench
		}
		return out[i].Key.Input < out[j].Key.Input
	})
	return out
}

// PersistState is the scheduler state a fleet's WAL snapshots carry across
// process lifetimes: the virtual clock, the cumulative policy counters,
// and every breaker's posture. Waiting items are deliberately absent —
// the fleet re-admits them explicitly from its journal, because only it
// knows their payloads.
type PersistState struct {
	Clock    float64        `json:"clock,omitempty"`
	Stats    Stats          `json:"stats"`
	Breakers []BreakerState `json:"breakers,omitempty"`
}

// Export captures the persistable scheduler state.
func (q *Queue) Export() PersistState {
	return PersistState{Clock: q.clock, Stats: q.Stats(), Breakers: q.Breakers()}
}

// Import restores exported state into a queue that has not dispatched
// anything yet. A breaker exported half-open lost its in-flight trial
// with the process, so it re-arms as plain open with a fresh cooldown
// from the restored clock.
func (q *Queue) Import(st PersistState) {
	q.clock = st.Clock
	q.stats = st.Stats
	q.stats.Clock = st.Clock
	for _, bs := range st.Breakers {
		b := &breaker{consecutive: bs.Consecutive, open: bs.Open, reopenAt: bs.ReopenAt}
		if bs.HalfOpen {
			b.open = true
			b.reopenAt = q.clock + q.cfg.BreakerCooldown
		}
		q.breakers[bs.Key] = b
	}
}

// ReplayBreaker applies a journaled breaker edge that postdates the last
// snapshot: recovery's coarse roll-forward. An "open" edge records at
// least the trip threshold's rollback depth; a "close" edge resets.
func (q *Queue) ReplayBreaker(k Key, open bool) {
	b := q.breakers[k]
	if b == nil {
		b = &breaker{}
		q.breakers[k] = b
	}
	if open {
		b.open, b.halfOpen = true, false
		if b.consecutive < q.cfg.BreakerThreshold {
			b.consecutive = q.cfg.BreakerThreshold
		}
		b.reopenAt = q.clock + q.cfg.BreakerCooldown
	} else {
		b.open, b.halfOpen, b.consecutive = false, false, 0
	}
}

// quotaFull reports whether a key has no in-flight slot left.
func (q *Queue) quotaFull(k Key) bool {
	return q.cfg.Quota > 0 && q.inflight[k] >= q.cfg.Quota
}

// tenantFull reports whether a tenant has no in-flight slot left.
func (q *Queue) tenantFull(tenant string) bool {
	return q.cfg.TenantQuota > 0 && tenant != "" &&
		q.tenantInflight[tenant] >= q.cfg.TenantQuota
}

// blocked reports whether an item cannot dispatch right now because of a
// key or tenant ceiling.
func (q *Queue) blocked(it *Item) bool {
	return q.quotaFull(it.Key) || q.tenantFull(it.Tenant)
}

// effective is an item's aged priority: explicit priority plus one point
// per AgingStep dispatches spent waiting.
func (q *Queue) effective(it *Item) int {
	if q.cfg.AgingStep < 0 {
		return it.Priority
	}
	return it.Priority + (q.dispatches-it.waitedAt)/q.cfg.AgingStep
}

// promoteDue moves retry-lane items whose due time has arrived into the
// ready queue (aging restarts from promotion).
func (q *Queue) promoteDue() {
	kept := q.retries[:0]
	for _, it := range q.retries {
		if it.due <= q.clock {
			it.waitedAt = q.dispatches
			q.ready = append(q.ready, it)
		} else {
			kept = append(kept, it)
		}
	}
	q.retries = kept
}

// pick scans the ready queue for the best admissible item. It reports
// whether a quota ceiling (rather than emptiness) blocked the dispatch.
func (q *Queue) pick() (best *Item, quotaBlocked bool) {
	bestEff := 0
	for _, it := range q.ready {
		if q.blocked(it) {
			quotaBlocked = true
			continue
		}
		eff := q.effective(it)
		if best == nil || eff > bestEff || (eff == bestEff && it.seq < best.seq) {
			best, bestEff = it, eff
		}
	}
	return best, quotaBlocked
}

// remove drops an item from the ready queue.
func (q *Queue) remove(it *Item) {
	for i, r := range q.ready {
		if r == it {
			q.ready = append(q.ready[:i], q.ready[i+1:]...)
			return
		}
	}
}

// dispatch finalises a pick: quota accounting, breaker parking, counters.
func (q *Queue) dispatch(it *Item, waited float64) (Decision, bool) {
	q.remove(it)
	q.depthAdd(it.Tenant, -1)
	q.inflight[it.Key]++
	if it.Tenant != "" {
		q.tenantInflight[it.Tenant]++
	}
	q.dispatches++
	d := Decision{Item: it, Waited: waited}
	if it.Breakable && q.cfg.BreakerThreshold > 0 {
		if b := q.breakers[it.Key]; b != nil && b.open {
			switch {
			case q.clock >= b.reopenAt && !b.halfOpen:
				b.halfOpen = true
				d.HalfOpen = true
			default:
				d.Parked = true
				q.stats.Parked++
			}
		}
	}
	return d, true
}

// Pop hands the caller the next dispatch, if any. When nothing is ready
// but the retry lane holds an admissible item, the virtual clock jumps to
// its due time — the deterministic stand-in for sleeping out the backoff.
// A false return means the caller must wait for an in-flight completion
// (quota or breaker-trial slots to free) or for new submissions.
func (q *Queue) Pop() (Decision, bool) {
	q.promoteDue()
	if it, _ := q.pick(); it != nil {
		return q.dispatch(it, 0)
	}
	// Nothing ready: advance the clock to the earliest retry whose key
	// and tenant have a free slot, if any. The lane is sorted by due time,
	// so the first admissible item is the one a real scheduler would wake
	// for.
	for _, it := range q.retries {
		if q.blocked(it) {
			continue
		}
		waited := it.due - q.clock
		if waited < 0 {
			waited = 0
		}
		q.clock = it.due
		q.stats.BackoffWait += waited
		q.promoteDue()
		if picked, _ := q.pick(); picked != nil {
			return q.dispatch(picked, waited)
		}
		break
	}
	if _, quotaBlocked := q.pick(); quotaBlocked || q.blockedRetries() {
		q.stats.QuotaStalls++
	}
	return Decision{}, false
}

// blockedRetries reports whether the retry lane is non-empty but entirely
// quota-blocked.
func (q *Queue) blockedRetries() bool {
	for _, it := range q.retries {
		if q.blocked(it) {
			return true
		}
	}
	return false
}

// Evict removes and returns one waiting item — ready queue first in
// submission order, then the retry lane — without dispatching it. It is
// the cancellation path for graceful shutdown. ok=false when nothing is
// waiting.
func (q *Queue) Evict() (*Item, bool) {
	if len(q.ready) > 0 {
		it := q.ready[0]
		q.ready = q.ready[1:]
		q.depthAdd(it.Tenant, -1)
		return it, true
	}
	if len(q.retries) > 0 {
		it := q.retries[0]
		q.retries = q.retries[1:]
		q.depthAdd(it.Tenant, -1)
		return it, true
	}
	return nil, false
}

// EvictWhere removes and returns the first waiting item whose payload
// matches pred — ready queue first, then the retry lane — without
// dispatching it. It is the targeted flavour of Evict, for callers that
// must cancel one specific session (the daemon's panic recovery) rather
// than drain whatever is next.
func (q *Queue) EvictWhere(pred func(payload any) bool) (*Item, bool) {
	for i, it := range q.ready {
		if pred(it.Payload) {
			q.ready = append(q.ready[:i:i], q.ready[i+1:]...)
			q.depthAdd(it.Tenant, -1)
			return it, true
		}
	}
	for i, it := range q.retries {
		if pred(it.Payload) {
			q.retries = append(q.retries[:i:i], q.retries[i+1:]...)
			q.depthAdd(it.Tenant, -1)
			return it, true
		}
	}
	return nil, false
}

// Release returns an item's quota slot; call once per Pop'd item after it
// finishes (or is parked).
func (q *Queue) Release(k Key) {
	if q.inflight[k] > 0 {
		q.inflight[k]--
	}
}

// ReleaseItem returns both the key quota slot and the tenant quota slot an
// item occupied. Prefer this over Release when items carry tenants.
func (q *Queue) ReleaseItem(it *Item) {
	q.Release(it.Key)
	if it.Tenant != "" && q.tenantInflight[it.Tenant] > 0 {
		q.tenantInflight[it.Tenant]--
		if q.tenantInflight[it.Tenant] == 0 {
			delete(q.tenantInflight, it.Tenant)
		}
	}
}

// Backoff returns the wait attempt n (1-based) would be scheduled with.
func (q *Queue) Backoff(attempt int) float64 {
	b := q.cfg.BackoffBase
	for i := 1; i < attempt; i++ {
		b *= 2
		if b >= q.cfg.BackoffCap {
			return q.cfg.BackoffCap
		}
	}
	if b > q.cfg.BackoffCap {
		b = q.cfg.BackoffCap
	}
	return b
}

// Retry re-admits a finished item through the backoff lane. It reports
// the backoff wait and due time, or ok=false when the retry budget is
// spent (or the lane is disabled). The item's Attempt is incremented.
func (q *Queue) Retry(it *Item) (backoff, due float64, ok bool) {
	if q.cfg.MaxRetries <= 0 || it.Attempt >= q.cfg.MaxRetries {
		return 0, 0, false
	}
	it.Attempt++
	backoff = q.Backoff(it.Attempt)
	it.due = q.clock + backoff
	q.retries = append(q.retries, it)
	q.depthAdd(it.Tenant, 1)
	sort.SliceStable(q.retries, func(i, j int) bool {
		return q.retries[i].due < q.retries[j].due
	})
	q.stats.Retries++
	return backoff, it.due, true
}

// Retune re-admits a drifted-but-successful item through the re-tune
// lane. It reports the fixed delay and due time, or ok=false when the
// re-tune budget is spent (or the lane is disabled). The item's Retune
// count is incremented; its Attempt is untouched. The lane shares the
// retry lane's due-sorted waiting list and promotion machinery, but none
// of its policy: no exponential backoff, no retry budget.
func (q *Queue) Retune(it *Item) (delay, due float64, ok bool) {
	if q.cfg.MaxRetunes <= 0 || it.Retune >= q.cfg.MaxRetunes {
		return 0, 0, false
	}
	it.Retune++
	delay = q.cfg.RetuneDelay
	it.due = q.clock + delay
	q.retries = append(q.retries, it)
	q.depthAdd(it.Tenant, 1)
	sort.SliceStable(q.retries, func(i, j int) bool {
		return q.retries[i].due < q.retries[j].due
	})
	q.stats.Retunes++
	return delay, it.due, true
}

// CanRetune reports whether the re-tune lane still has budget for this
// item. The fleet's watchdog disarms (stops sampling entirely) once the
// budget is spent, so a drifted session never burns measurement windows
// on a firing that could not be acted on.
func (q *Queue) CanRetune(it *Item) bool {
	return q.cfg.MaxRetunes > 0 && it.Retune < q.cfg.MaxRetunes
}

// Report feeds a finished attempt's outcome to its key's breaker and
// reports whether that opened or closed it. Non-breakable items must not
// be reported.
func (q *Queue) Report(k Key, o Outcome) (opened, closed bool) {
	if q.cfg.BreakerThreshold <= 0 {
		return false, false
	}
	b := q.breakers[k]
	if b == nil {
		b = &breaker{}
		q.breakers[k] = b
	}
	switch o {
	case Success:
		b.consecutive = 0
		if b.open {
			b.open, b.halfOpen = false, false
			closed = true
		}
	case Rollback:
		b.consecutive++
		switch {
		case b.open && b.halfOpen:
			// The recovery trial rolled back: stay open, restart cooldown.
			b.halfOpen = false
			b.reopenAt = q.clock + q.cfg.BreakerCooldown
			q.stats.BreakerTrips++
			opened = true
		case !b.open && b.consecutive >= q.cfg.BreakerThreshold:
			b.open = true
			b.reopenAt = q.clock + q.cfg.BreakerCooldown
			q.stats.BreakerTrips++
			opened = true
		}
	case Failure:
		if b.open && b.halfOpen {
			// A failed trial proves nothing good: re-arm the cooldown.
			b.halfOpen = false
			b.reopenAt = q.clock + q.cfg.BreakerCooldown
			q.stats.BreakerTrips++
			opened = true
		}
	}
	return opened, closed
}
