package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanAndStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty input must yield 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %f", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-9 {
		t.Fatalf("stddev = %f, want 2", s)
	}
	if StdDev([]float64{7}) != 0 {
		t.Fatal("single value has zero deviation")
	}
}

func TestHistogram(t *testing.T) {
	edges := []float64{0, 10, 20}
	counts := Histogram([]float64{0, 5, 9.9, 10, 15, 25, 100}, edges)
	want := []int{3, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

// mkCurve builds distances 1..n and speedups from a function.
func mkCurve(n int, f func(d int) float64) ([]int, []float64) {
	ds := make([]int, n)
	ss := make([]float64, n)
	for i := range ds {
		ds[i] = i + 1
		ss[i] = f(i + 1)
	}
	return ds, ss
}

func TestClassifyShapes(t *testing.T) {
	cases := []struct {
		name string
		f    func(d int) float64
		want Class
	}{
		{"single-peak", func(d int) float64 {
			return 1 + 0.8*math.Exp(-math.Pow(float64(d-20)/6, 2))
		}, SingleOptimal},
		{"plateau", func(d int) float64 {
			if d >= 15 && d <= 50 {
				return 1.5
			}
			return 1.0
		}, RangeOptimal},
		{"asymptotic", func(d int) float64 {
			return 1 + 0.6*(1-math.Exp(-float64(d)/15))
		}, Asymptotic},
		{"always-bad", func(d int) float64 { return 0.8 }, Bad},
		{"barely-above-one", func(d int) float64 { return 1.01 }, Bad},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds, ss := mkCurve(100, tc.f)
			if got := Classify(ds, ss); got != tc.want {
				t.Fatalf("classified %v, want %v", got, tc.want)
			}
		})
	}
}

func TestClassifyNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds, ss := mkCurve(100, func(d int) float64 {
		return 1.3 + 0.4*rng.Float64() // erratic, no structure
	})
	if got := Classify(ds, ss); got != Noisy {
		t.Fatalf("classified %v, want noisy", got)
	}
}

func TestClassifyShortCurve(t *testing.T) {
	if got := Classify([]int{1, 2}, []float64{1, 2}); got != Other {
		t.Fatalf("too-short curve = %v, want other", got)
	}
}

// Property: Classify never panics and always returns a named class for
// arbitrary positive curves.
func TestClassifyTotalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(100)
		ds, ss := mkCurve(n, func(d int) float64 { return 0.5 + 2*rng.Float64() })
		c := Classify(ds, ss)
		return c.String() != "unknown"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossClassify(t *testing.T) {
	cases := []struct {
		cl, hw, mine Class
		want         CrossClass
	}{
		{Bad, Bad, Bad, XBothBad},
		{SingleOptimal, Bad, SingleOptimal, XHaswellBad},
		{Bad, Asymptotic, Asymptotic, XCascadeBad},
		{SingleOptimal, RangeOptimal, SingleOptimal, XSingleOptimal},
		{SingleOptimal, RangeOptimal, RangeOptimal, XRangeOptimal},
		{Asymptotic, Asymptotic, Asymptotic, XAsymptotic},
		{Noisy, SingleOptimal, Noisy, XNoisy},
		{Other, Other, Other, XOther},
	}
	for _, tc := range cases {
		if got := CrossClassify(tc.cl, tc.hw, tc.mine); got != tc.want {
			t.Errorf("CrossClassify(%v,%v,%v) = %v, want %v", tc.cl, tc.hw, tc.mine, got, tc.want)
		}
	}
}

func TestAllCrossClassesNamed(t *testing.T) {
	if len(AllCrossClasses()) != 8 {
		t.Fatal("Table 3 has eight rows")
	}
	for _, c := range AllCrossClasses() {
		if c.String() == "unknown" {
			t.Errorf("class %d unnamed", c)
		}
	}
}
