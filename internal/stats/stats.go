// Package stats provides the aggregate statistics and the prefetch-distance
// sensitivity classifier used by the experiment harness: means and standard
// deviations for the figure bars, histograms for Figures 8 and 12, and the
// eight-way curve classification of the paper's Table 3 (§4.5).
package stats

import "math"

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Histogram buckets values by the given bin edges: counts[i] holds values in
// [edges[i], edges[i+1]); the final bucket counts values >= edges[len-1].
func Histogram(values []float64, edges []float64) []int {
	counts := make([]int, len(edges))
	for _, v := range values {
		idx := 0
		for i, e := range edges {
			if v >= e {
				idx = i
			}
		}
		counts[idx]++
	}
	return counts
}

// Class is a prefetch-distance sensitivity type from Table 3.
type Class uint8

// Sensitivity classes (§4.5). Bad, HaswellBad, and CascadeBad are assigned
// by CrossClassify from per-machine results.
const (
	// SingleOptimal: a clear single best distance.
	SingleOptimal Class = iota
	// RangeOptimal: a bounded range of equally good distances.
	RangeOptimal
	// Asymptotic: performance saturates as distance grows.
	Asymptotic
	// Bad: prefetching hurts at every distance on this machine.
	Bad
	// Noisy: too erratic to classify.
	Noisy
	// Other: everything else.
	Other
)

func (c Class) String() string {
	switch c {
	case SingleOptimal:
		return "single optimal"
	case RangeOptimal:
		return "range optimal"
	case Asymptotic:
		return "asymptotic"
	case Bad:
		return "bad"
	case Noisy:
		return "noisy"
	case Other:
		return "other"
	}
	return "unknown"
}

// Classify assigns a speedup-vs-distance curve to a sensitivity class.
// distances must be ascending; speedups are relative to the no-prefetch
// baseline (1.0 = parity).
func Classify(distances []int, speedups []float64) Class {
	n := len(speedups)
	if n < 4 {
		return Other
	}
	maxV, minV := speedups[0], speedups[0]
	maxI := 0
	for i, v := range speedups {
		if v > maxV {
			maxV, maxI = v, i
		}
		if v < minV {
			minV = v
		}
	}
	if maxV < 1.02 {
		return Bad
	}

	// Noise: count significant direction reversals (amplitude above 5% of
	// the curve's dynamic range). Smooth unimodal or saturating curves
	// reverse direction at most a couple of times; erratic curves reverse
	// constantly.
	span := maxV - minV
	sig := 0.05 * span
	flips, lastDir := 0, 0
	for i := 1; i < n; i++ {
		d := speedups[i] - speedups[i-1]
		if math.Abs(d) < sig {
			continue
		}
		dir := 1
		if d < 0 {
			dir = -1
		}
		if lastDir != 0 && dir != lastDir {
			flips++
		}
		lastDir = dir
	}
	if span > 0.05 && flips > n/6 {
		return Noisy
	}

	// Near-optimal plateau: the contiguous region around the max within
	// 2.5% of it.
	tol := 0.975 * maxV
	lo, hi := maxI, maxI
	for lo > 0 && speedups[lo-1] >= tol {
		lo--
	}
	for hi < n-1 && speedups[hi+1] >= tol {
		hi++
	}

	// Asymptotic: the curve is still near its max at the largest
	// distances measured.
	if speedups[n-1] >= tol && hi == n-1 {
		return Asymptotic
	}
	width := hi - lo + 1
	switch {
	case width <= max(2, n/8):
		return SingleOptimal
	case width <= n/2:
		return RangeOptimal
	}
	return Other
}

// CrossClass is the final Table 3 label after combining both machines.
type CrossClass uint8

// Cross-machine classes.
const (
	XSingleOptimal CrossClass = iota
	XRangeOptimal
	XAsymptotic
	XBothBad
	XHaswellBad
	XCascadeBad
	XNoisy
	XOther
)

func (c CrossClass) String() string {
	switch c {
	case XSingleOptimal:
		return "single optimal"
	case XRangeOptimal:
		return "range optimal"
	case XAsymptotic:
		return "asymptotic"
	case XBothBad:
		return "both bad"
	case XHaswellBad:
		return "Haswell bad"
	case XCascadeBad:
		return "Cascade bad"
	case XNoisy:
		return "noisy"
	case XOther:
		return "other"
	}
	return "unknown"
}

// AllCrossClasses lists the Table 3 row order.
func AllCrossClasses() []CrossClass {
	return []CrossClass{XSingleOptimal, XRangeOptimal, XAsymptotic, XBothBad, XHaswellBad, XCascadeBad, XNoisy, XOther}
}

// CrossClassify combines per-machine classes for one input into the Table 3
// taxonomy, from the perspective of the machine whose class is `mine`
// (the paper's table repeats shared rows on both sides).
func CrossClassify(cascade, haswell Class, mine Class) CrossClass {
	switch {
	case cascade == Bad && haswell == Bad:
		return XBothBad
	case haswell == Bad && cascade != Bad:
		return XHaswellBad
	case cascade == Bad && haswell != Bad:
		return XCascadeBad
	}
	switch mine {
	case SingleOptimal:
		return XSingleOptimal
	case RangeOptimal:
		return XRangeOptimal
	case Asymptotic:
		return XAsymptotic
	case Noisy:
		return XNoisy
	}
	return XOther
}
