// Package store is the fleet's profile store: the stale-profile-reuse
// layer shared by every session. The first session on a (benchmark, input,
// machine) combination pays for full PEBS profiling and a cold distance
// search, then commits what it learned; later sessions on a matching
// combination are warm-started from the cached candidate sites and tuned
// distance, shortening both profiling and search. Entries age out after a
// bounded number of reuses (staleness) and are invalidated when a reused
// distance regresses the miss-site retirement rate, so a drifted workload
// falls back to fresh profiling instead of being pinned to a bad distance
// forever.
//
// The package defines the Store interface and two implementations: Memory
// (one mutex, one map — the original fleet store, byte-identical behavior)
// and Sharded (N Memory shards routed by an FNV-1a hash of (bench, input),
// each with its own mutex, counters, and snapshot file).
//
// # Shard-key invariant
//
// The shard key deliberately excludes Machine: every machine-axis sibling
// of a (bench, input) pair lives on the same shard, so a translated lookup
// (LookupTranslated / PeekTranslated — "find the profile some other
// machine committed for this workload") is always a single-shard
// operation. No lookup, translated or not, ever crosses a shard boundary.
package store

// Key identifies the workload context a profile was collected in. Profiles
// are machine-specific: the paper's central result is that a distance tuned
// for one microarchitecture transplants badly to another.
type Key struct {
	Bench   string `json:"bench"`
	Input   string `json:"input"`
	Machine string `json:"machine"`
}

// Entry is one cached profile: the hot function, its candidate prefetch
// sites, and the distance the search settled on, plus the rates that let a
// later session judge whether the reuse still pays.
type Entry struct {
	// Func is the hot function the sites live in.
	Func string `json:"func"`
	// Candidates are the PEBS candidate load PCs (f0 addresses).
	Candidates []int `json:"candidates"`
	// Distance is the tuned prefetch distance.
	Distance int `json:"distance"`
	// BaselineRate and TunedRate are the miss-site retirement rates
	// observed before and after tuning in the committing session.
	BaselineRate float64 `json:"baseline_rate"`
	TunedRate    float64 `json:"tuned_rate"`
	// Session is the ID of the session that committed the entry.
	Session int `json:"session"`
}

// KeyedEntry pairs a key with its entry: the unit a WAL snapshot persists
// and crash recovery restores.
type KeyedEntry struct {
	Key   Key   `json:"key"`
	Entry Entry `json:"entry"`
}

// Config tunes the reuse policy.
type Config struct {
	// MaxReuse is how many sessions may warm-start from one committed
	// entry before it is considered stale and evicted, forcing the next
	// session to re-profile from scratch (default 16).
	MaxReuse int
}

// Counters are the store's cumulative policy counters.
type Counters struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Stale         uint64 `json:"stale"`
	Invalidations uint64 `json:"invalidations"`
	Commits       uint64 `json:"commits"`
	// Translations counts sibling entries served across machine types by
	// LookupTranslated; they are deliberately not Hits — a translated seed
	// is a hypothesis, not a cache hit on this machine's profile.
	Translations uint64 `json:"translations,omitempty"`
	// Refunds counts reuse-budget charges returned by Refund after a
	// seeded session failed before its search could run.
	Refunds uint64 `json:"refunds,omitempty"`
}

// Add folds another counter snapshot into c (used to aggregate a
// per-shard breakdown into a fleet-wide total).
func (c *Counters) Add(o Counters) {
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.Stale += o.Stale
	c.Invalidations += o.Invalidations
	c.Commits += o.Commits
	c.Translations += o.Translations
	c.Refunds += o.Refunds
}

// Store is a concurrency-safe profile cache shared by every session of a
// fleet (and shareable across fleets on the same machine type).
//
// Contract, regardless of implementation:
//
//   - Lookup consumes one reuse-budget charge and counts a Hit; an entry
//     that has served Config.MaxReuse warm starts is stale — evicted,
//     counted (Stale and Misses), and reported as a miss.
//   - LookupTranslated serves a machine-axis sibling of the same
//     (bench, input) in deterministic machine-name order, consuming the
//     sibling's budget and counting Translations, never Hits. Because the
//     shard key excludes Machine, a translated lookup never crosses a
//     shard: siblings are co-resident by construction.
//   - Peek/PeekTranslated are their read-only counterparts: no counters
//     move, no budget is consumed, nothing is evicted.
//   - Commit/Invalidate/Refund are generation-guarded: the gen returned by
//     Lookup/Commit must match or the call is a no-op, so a racing Commit
//     from a concurrent session is never clobbered. Generation counters
//     may be per-shard — gens are only ever compared for the same key, and
//     a key maps to exactly one shard.
//   - Freeze makes the store read-only (lookups serve without consuming
//     budget; Commit/Invalidate/Refund are no-ops); Thaw reverses it.
//   - Export returns every live entry in one consistent snapshot, sorted
//     by (Bench, Input, Machine); Import installs recovered entries
//     wholesale with fresh generations and full budgets, not touching the
//     policy counters.
//   - Counters returns one consistent snapshot of the aggregate policy
//     counters: implementations must not tear reads across shards.
type Store interface {
	Lookup(k Key) (Entry, uint64, bool)
	LookupTranslated(k Key) (Entry, Key, uint64, bool)
	Peek(k Key) (Entry, bool)
	PeekTranslated(k Key) (Entry, Key, bool)
	Commit(k Key, e Entry) uint64
	Refund(k Key, gen uint64) bool
	Invalidate(k Key, gen uint64) bool
	Freeze()
	Thaw()
	Export() []KeyedEntry
	Import(entries []KeyedEntry)
	Len() int
	Counters() Counters

	// Shards reports the shard count (1 for Memory); ShardOf reports which
	// shard a key routes to (always 0 for Memory). ExportShard snapshots
	// one shard's entries (sorted like Export); ShardCounters returns the
	// per-shard counter breakdown as one consistent snapshot.
	Shards() int
	ShardOf(k Key) int
	ExportShard(i int) []KeyedEntry
	ShardCounters() []Counters
}

// New builds a store for the requested shard count: Memory for shards <= 1,
// Sharded otherwise. Zero-value config fields get defaults.
func New(cfg Config, shards int) Store {
	if shards <= 1 {
		return NewMemory(cfg)
	}
	return NewSharded(cfg, shards)
}

// ShardIndex routes a key to a shard by FNV-1a hash of (bench, input).
// Machine is deliberately excluded — see the shard-key invariant in the
// package comment. shards <= 1 always routes to 0. The hash is inlined
// (equivalent to hash/fnv over bench, bench's length as 4 little-endian
// bytes, then input) so the hot routing path never allocates. The length
// frame, not a separator byte, marks the field boundary: a separator that
// can also appear inside the strings (NUL did) makes pairs like
// ("a\x00b", "c") and ("a", "b\x00c") alias, so routing would not be a
// pure function of the pair.
func ShardIndex(k Key, shards int) int {
	if shards <= 1 {
		return 0
	}
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(k.Bench); i++ {
		h = (h ^ uint32(k.Bench[i])) * prime32
	}
	n := uint32(len(k.Bench))
	h = (h ^ (n & 0xff)) * prime32
	h = (h ^ (n >> 8 & 0xff)) * prime32
	h = (h ^ (n >> 16 & 0xff)) * prime32
	h = (h ^ (n >> 24 & 0xff)) * prime32
	for i := 0; i < len(k.Input); i++ {
		h = (h ^ uint32(k.Input[i])) * prime32
	}
	return int(h % uint32(shards))
}
