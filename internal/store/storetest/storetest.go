// Package storetest is the store.Store conformance suite: the table of
// semantic tests every implementation — Memory, Sharded, and the remote
// client over a store daemon — must pass identically. The contract under
// test is the one internal/store documents: lookups consume bounded reuse
// budget, staleness evicts, generation guards make Invalidate/Refund
// no-ops against superseded entries, frozen stores serve without
// consuming, and Export/Import round-trips across any shard layout.
//
// Implementations import this package from their tests and call Run with
// a factory; the suite stays in one place so a networked backend cannot
// drift from the in-process semantics without a test saying so.
package storetest

import (
	"fmt"
	"reflect"
	"testing"

	"rpg2/internal/store"
)

// Factory builds a fresh, empty store under test with the given reuse
// config. Each subtest calls it once; stores are never shared between
// subtests.
type Factory func(t *testing.T, cfg store.Config) store.Store

// Run exercises the full store-semantics contract against stores built by
// the factory.
func Run(t *testing.T, newStore Factory) {
	t.Run("HitMissCounting", func(t *testing.T) {
		s := newStore(t, store.Config{})
		k := store.Key{Bench: "pr", Input: "uni", Machine: "clx"}
		if _, _, ok := s.Lookup(k); ok {
			t.Fatal("lookup on empty store hit")
		}
		s.Commit(k, store.Entry{Func: "kernel", Distance: 12})
		if e, _, ok := s.Lookup(k); !ok || e.Distance != 12 {
			t.Fatalf("lookup after commit = %+v, %v", e, ok)
		}
		c := s.Counters()
		if c.Hits != 1 || c.Misses != 1 || c.Commits != 1 {
			t.Fatalf("counters = %+v, want 1 hit, 1 miss, 1 commit", c)
		}
	})

	t.Run("StalenessEvicts", func(t *testing.T) {
		s := newStore(t, store.Config{MaxReuse: 2})
		k := store.Key{Bench: "bfs", Input: "rmat", Machine: "clx"}
		s.Commit(k, store.Entry{Distance: 8})
		for i := 0; i < 2; i++ {
			if _, _, ok := s.Lookup(k); !ok {
				t.Fatalf("lookup %d missed before budget ran out", i)
			}
		}
		if _, _, ok := s.Lookup(k); ok {
			t.Fatal("stale entry served past MaxReuse")
		}
		c := s.Counters()
		if c.Stale != 1 || s.Len() != 0 {
			t.Fatalf("stale = %d, len = %d; want eviction", c.Stale, s.Len())
		}
	})

	t.Run("InvalidateGenerationGuard", func(t *testing.T) {
		s := newStore(t, store.Config{})
		k := store.Key{Bench: "sssp", Input: "uni", Machine: "hsw"}
		gen := s.Commit(k, store.Entry{Distance: 4})
		// A fresher commit supersedes gen: the old invalidation must no-op.
		s.Commit(k, store.Entry{Distance: 6})
		if s.Invalidate(k, gen) {
			t.Fatal("stale-generation invalidate dropped a fresher entry")
		}
		if e, gen2, ok := s.Lookup(k); !ok || e.Distance != 6 {
			t.Fatalf("entry lost: %+v, %v", e, ok)
		} else if !s.Invalidate(k, gen2) {
			t.Fatal("current-generation invalidate refused")
		}
		if s.Len() != 0 {
			t.Fatal("invalidate left the entry")
		}
	})

	t.Run("RefundGuards", func(t *testing.T) {
		s := newStore(t, store.Config{MaxReuse: 2})
		k := store.Key{Bench: "bc", Input: "synth", Machine: "clx"}
		s.Commit(k, store.Entry{Distance: 3})
		_, gen, _ := s.Lookup(k)
		if !s.Refund(k, gen) {
			t.Fatal("refund of a consumed charge refused")
		}
		if s.Refund(k, gen+1) {
			t.Fatal("refund against a wrong generation accepted")
		}
		if s.Refund(k, gen) {
			t.Fatal("refund with zero consumed charges accepted")
		}
		if s.Counters().Refunds != 1 {
			t.Fatalf("refunds = %d, want 1", s.Counters().Refunds)
		}
	})

	t.Run("TranslatedLookup", func(t *testing.T) {
		s := newStore(t, store.Config{})
		src := store.Key{Bench: "pr", Input: "uni", Machine: "haswell"}
		dst := store.Key{Bench: "pr", Input: "uni", Machine: "cascadelake"}
		s.Commit(src, store.Entry{Distance: 16})
		e, from, _, ok := s.LookupTranslated(dst)
		if !ok || from != src || e.Distance != 16 {
			t.Fatalf("translated lookup = %+v from %+v, ok %v", e, from, ok)
		}
		c := s.Counters()
		if c.Translations != 1 || c.Hits != 0 {
			t.Fatalf("counters = %+v, want 1 translation and 0 hits", c)
		}
		// Peeks are read-only: neither consumes budget nor counts.
		if _, ok := s.Peek(src); !ok {
			t.Fatal("peek missed a live entry")
		}
		if _, from, ok := s.PeekTranslated(dst); !ok || from != src {
			t.Fatalf("peek-translated = from %+v, ok %v", from, ok)
		}
		if got := s.Counters(); got != c {
			t.Fatalf("peeks moved counters: %+v -> %+v", c, got)
		}
	})

	t.Run("FrozenServesWithoutConsuming", func(t *testing.T) {
		s := newStore(t, store.Config{MaxReuse: 1})
		k := store.Key{Bench: "pr", Input: "uni", Machine: "clx"}
		s.Commit(k, store.Entry{Distance: 9})
		s.Freeze()
		for i := 0; i < 5; i++ {
			if _, _, ok := s.Lookup(k); !ok {
				t.Fatalf("frozen lookup %d missed", i)
			}
		}
		if s.Commit(k, store.Entry{Distance: 1}) != 0 {
			t.Fatal("frozen commit succeeded")
		}
		s.Thaw()
		if _, _, ok := s.Lookup(k); !ok {
			t.Fatal("thawed store lost the entry (frozen lookups consumed budget)")
		}
	})

	t.Run("ExportImportRoundTrip", func(t *testing.T) {
		src := newStore(t, store.Config{})
		for i := 0; i < 32; i++ {
			k := store.Key{Bench: fmt.Sprintf("b%d", i%7), Input: fmt.Sprintf("in%d", i%5), Machine: fmt.Sprintf("m%d", i%3)}
			src.Commit(k, store.Entry{Distance: i + 1, Func: "f"})
		}
		exported := src.Export()
		for _, shards := range []int{1, 2, 8, 13} {
			dst := store.New(store.Config{}, shards)
			dst.Import(exported)
			if got := dst.Export(); !reflect.DeepEqual(got, exported) {
				t.Fatalf("round trip through %d shards changed the export", shards)
			}
		}
		// And back into a fresh store of the implementation under test.
		dst := newStore(t, store.Config{})
		dst.Import(exported)
		if got := dst.Export(); !reflect.DeepEqual(got, exported) {
			t.Fatal("import into the implementation under test changed the export")
		}
		if dst.Len() != len(exported) {
			t.Fatalf("Len = %d after importing %d entries", dst.Len(), len(exported))
		}
	})

	t.Run("ShardAccessors", func(t *testing.T) {
		s := newStore(t, store.Config{})
		n := s.Shards()
		if n < 1 {
			t.Fatalf("Shards() = %d", n)
		}
		if got := len(s.ShardCounters()); got != n {
			t.Fatalf("ShardCounters has %d entries for %d shards", got, n)
		}
		k := store.Key{Bench: "pr", Input: "uni", Machine: "clx"}
		if i := s.ShardOf(k); i < 0 || i >= n {
			t.Fatalf("ShardOf = %d out of range [0, %d)", i, n)
		}
		s.Commit(k, store.Entry{Distance: 2})
		if got := s.ExportShard(s.ShardOf(k)); len(got) != 1 {
			t.Fatalf("ExportShard(home) = %d entries, want the committed one", len(got))
		}
	})
}
