package store

import (
	"sort"
	"sync"
)

type storeEntry struct {
	Entry
	gen  uint64 // generation, bumped by every Commit
	uses int    // warm starts served since the last Commit
}

// Memory is the single-mutex, single-map Store: every lookup, commit, and
// counter read serializes through one lock. It is the original fleet store
// moved here verbatim — behavior is byte-identical — and doubles as the
// shard unit Sharded is built from.
type Memory struct {
	cfg Config

	mu       sync.Mutex
	entries  map[Key]*storeEntry
	gen      uint64
	frozen   bool
	counters Counters
}

// NewMemory builds an empty single-shard store; zero-value config fields
// get defaults.
func NewMemory(cfg Config) *Memory {
	if cfg.MaxReuse <= 0 {
		cfg.MaxReuse = 16
	}
	return &Memory{cfg: cfg, entries: make(map[Key]*storeEntry)}
}

// Lookup returns the cached profile for a key, counting a hit, or reports a
// miss. An entry that has served MaxReuse warm starts is stale: it is
// evicted, counted, and reported as a miss so the caller re-profiles. The
// returned generation must be passed to Invalidate so a racing Commit from
// a concurrent session is not clobbered.
func (s *Memory) Lookup(k Key) (Entry, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		s.counters.Misses++
		return Entry{}, 0, false
	}
	if s.frozen {
		s.counters.Hits++
		return e.Entry, e.gen, true
	}
	if e.uses >= s.cfg.MaxReuse {
		delete(s.entries, k)
		s.counters.Stale++
		s.counters.Misses++
		return Entry{}, 0, false
	}
	e.uses++
	s.counters.Hits++
	return e.Entry, e.gen, true
}

// LookupTranslated finds a sibling entry for the same (bench, input) on a
// *different* machine — the source a cross-machine translated warm start
// seeds from after Lookup missed. Siblings are scanned in machine-name
// order so the choice is deterministic regardless of commit interleaving;
// stale siblings are evicted exactly as Lookup would evict them. A serve
// consumes the sibling's reuse budget (a translated seed is still a reuse
// of that profile) and counts Translations, never Hits: the caller's
// Lookup already counted the miss for this machine's key, and the hit
// rate must keep meaning "sessions served by a same-machine profile".
func (s *Memory) LookupTranslated(k Key) (Entry, Key, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sibs []Key
	for sk := range s.entries {
		if sk.Bench == k.Bench && sk.Input == k.Input && sk.Machine != k.Machine {
			sibs = append(sibs, sk)
		}
	}
	sort.Slice(sibs, func(i, j int) bool { return sibs[i].Machine < sibs[j].Machine })
	for _, sk := range sibs {
		e := s.entries[sk]
		if !s.frozen && e.uses >= s.cfg.MaxReuse {
			delete(s.entries, sk)
			s.counters.Stale++
			continue
		}
		if !s.frozen {
			e.uses++
		}
		s.counters.Translations++
		return e.Entry, sk, e.gen, true
	}
	return Entry{}, Key{}, 0, false
}

// Peek returns the cached profile for a key without disturbing the policy
// state: no counters move, no reuse budget is consumed, stale entries are
// neither served nor evicted. It is the read-only observation path the
// daemon's store-lookup endpoint uses — an HTTP GET must not age the
// cache.
func (s *Memory) Peek(k Key) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok || (!s.frozen && e.uses >= s.cfg.MaxReuse) {
		return Entry{}, false
	}
	return e.Entry, true
}

// PeekTranslated is LookupTranslated's read-only counterpart: it reports
// the sibling entry a translated lookup *would* seed from (same
// deterministic machine-name order), without consuming reuse budget,
// moving counters, or evicting stale siblings.
func (s *Memory) PeekTranslated(k Key) (Entry, Key, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sibs []Key
	for sk := range s.entries {
		if sk.Bench == k.Bench && sk.Input == k.Input && sk.Machine != k.Machine {
			sibs = append(sibs, sk)
		}
	}
	sort.Slice(sibs, func(i, j int) bool { return sibs[i].Machine < sibs[j].Machine })
	for _, sk := range sibs {
		e := s.entries[sk]
		if !s.frozen && e.uses >= s.cfg.MaxReuse {
			continue
		}
		return e.Entry, sk, true
	}
	return Entry{}, Key{}, false
}

// Refund returns one reuse-budget charge to an entry whose warm start never
// ran: a seeded session that dies before its search (build or launch
// failure) consumed budget for nothing, and without the refund a string of
// transient failures could stale a perfectly good profile. The generation
// guard makes a refund against a since-refreshed entry a no-op, exactly
// like Invalidate. Reports whether a charge was returned.
func (s *Memory) Refund(k Key, gen uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok || e.gen != gen || s.frozen || e.uses <= 0 {
		return false
	}
	e.uses--
	s.counters.Refunds++
	return true
}

// Commit installs (or refreshes) the profile for a key, resetting its reuse
// budget, and returns the new generation.
func (s *Memory) Commit(k Key, e Entry) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		return 0
	}
	s.gen++
	s.counters.Commits++
	s.entries[k] = &storeEntry{Entry: e, gen: s.gen}
	return s.gen
}

// Invalidate drops the entry for a key if it is still the generation the
// caller warm-started from; a stale generation (another session already
// committed a fresher profile) is a no-op. Reports whether it dropped.
func (s *Memory) Invalidate(k Key, gen uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok || e.gen != gen || s.frozen {
		return false
	}
	delete(s.entries, k)
	s.counters.Invalidations++
	return true
}

// Freeze makes the store read-only: Lookup keeps serving entries (without
// consuming reuse budget), Commit and Invalidate become no-ops. A frozen
// store's responses depend only on its contents, not on the order
// concurrent sessions touch it — the property the deterministic
// warm-started experiments harness relies on.
func (s *Memory) Freeze() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frozen = true
}

// Thaw reverses Freeze.
func (s *Memory) Thaw() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frozen = false
}

// Export returns every live entry sorted by key, for deterministic
// snapshots. Reuse budgets and generations are process-local and are not
// exported.
func (s *Memory) Export() []KeyedEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]KeyedEntry, 0, len(s.entries))
	for k, e := range s.entries {
		out = append(out, KeyedEntry{Key: k, Entry: e.Entry})
	}
	sortEntries(out)
	return out
}

// Import installs recovered entries wholesale, each with a fresh
// generation and a full reuse budget. It is the crash-recovery path, meant
// for a store no session is using yet; it does not touch the policy
// counters (recovered entries were already counted by the process that
// committed them).
func (s *Memory) Import(entries []KeyedEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ke := range entries {
		s.gen++
		s.entries[ke.Key] = &storeEntry{Entry: ke.Entry, gen: s.gen}
	}
}

// Len reports the number of live entries.
func (s *Memory) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Counters returns a snapshot of the policy counters.
func (s *Memory) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// Shards reports 1: Memory is a single shard.
func (s *Memory) Shards() int { return 1 }

// ShardOf reports 0: every key routes to the only shard.
func (s *Memory) ShardOf(Key) int { return 0 }

// ExportShard snapshots shard 0, which is the whole store.
func (s *Memory) ExportShard(i int) []KeyedEntry {
	if i != 0 {
		return nil
	}
	return s.Export()
}

// ShardCounters returns the one-shard counter breakdown.
func (s *Memory) ShardCounters() []Counters {
	return []Counters{s.Counters()}
}

func sortEntries(out []KeyedEntry) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Input != b.Input {
			return a.Input < b.Input
		}
		return a.Machine < b.Machine
	})
}
