package store

// Sharded is the contention-splitting Store: N Memory shards, each with its
// own mutex, generation counter, and policy counters, routed by
// ShardIndex — an FNV-1a hash of (bench, input) that deliberately excludes
// Machine. The exclusion is the consistency story for translation: every
// machine-axis sibling of a (bench, input) pair is co-resident on one
// shard, so LookupTranslated/PeekTranslated are single-shard operations
// under that shard's lock — a translated lookup can never observe a torn
// cross-shard state because it never reads more than one shard.
//
// Per-key operations (Lookup, Commit, Invalidate, Refund, Peek) touch only
// the key's shard. Whole-store operations that must be consistent
// (Counters, ShardCounters, Export, Len) lock every shard in index order,
// read, then release — a single atomic snapshot, no torn reads between
// shard counter loads. Generation guards remain sound with per-shard gen
// counters because gens are only ever compared for the same key, and a key
// always maps to the same shard.
type Sharded struct {
	shards []*Memory
}

// NewSharded builds an empty store with n shards (n is clamped to >= 2;
// use New to pick Memory for smaller counts). Zero-value config fields get
// defaults.
func NewSharded(cfg Config, n int) *Sharded {
	if n < 2 {
		n = 2
	}
	s := &Sharded{shards: make([]*Memory, n)}
	for i := range s.shards {
		s.shards[i] = NewMemory(cfg)
	}
	return s
}

func (s *Sharded) shard(k Key) *Memory {
	return s.shards[ShardIndex(k, len(s.shards))]
}

// lockAll acquires every shard lock in index order (the only order used
// anywhere, so whole-store snapshots cannot deadlock against each other);
// unlockAll releases in reverse.
func (s *Sharded) lockAll() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

func (s *Sharded) unlockAll() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// Lookup routes to the key's shard; semantics are Memory's.
func (s *Sharded) Lookup(k Key) (Entry, uint64, bool) {
	return s.shard(k).Lookup(k)
}

// LookupTranslated routes to the key's shard. Machine-axis siblings share
// the shard (the hash excludes Machine), so the whole sibling scan runs
// under one shard lock.
func (s *Sharded) LookupTranslated(k Key) (Entry, Key, uint64, bool) {
	return s.shard(k).LookupTranslated(k)
}

// Peek routes to the key's shard; semantics are Memory's.
func (s *Sharded) Peek(k Key) (Entry, bool) {
	return s.shard(k).Peek(k)
}

// PeekTranslated routes to the key's shard, like LookupTranslated.
func (s *Sharded) PeekTranslated(k Key) (Entry, Key, bool) {
	return s.shard(k).PeekTranslated(k)
}

// Commit routes to the key's shard and returns that shard's new
// generation.
func (s *Sharded) Commit(k Key, e Entry) uint64 {
	return s.shard(k).Commit(k, e)
}

// Refund routes to the key's shard; the gen guard compares against the
// same shard's generation that Lookup/Commit returned.
func (s *Sharded) Refund(k Key, gen uint64) bool {
	return s.shard(k).Refund(k, gen)
}

// Invalidate routes to the key's shard, gen-guarded like Refund.
func (s *Sharded) Invalidate(k Key, gen uint64) bool {
	return s.shard(k).Invalidate(k, gen)
}

// Freeze freezes every shard under one all-shard critical section, so no
// concurrent lookup can observe a half-frozen store.
func (s *Sharded) Freeze() {
	s.lockAll()
	for _, sh := range s.shards {
		sh.frozen = true
	}
	s.unlockAll()
}

// Thaw reverses Freeze, atomically across shards.
func (s *Sharded) Thaw() {
	s.lockAll()
	for _, sh := range s.shards {
		sh.frozen = false
	}
	s.unlockAll()
}

// Export returns every live entry across all shards as one consistent
// snapshot (all shard locks held for the gather), sorted by key exactly
// like Memory.Export.
func (s *Sharded) Export() []KeyedEntry {
	s.lockAll()
	var out []KeyedEntry
	for _, sh := range s.shards {
		for k, e := range sh.entries {
			out = append(out, KeyedEntry{Key: k, Entry: e.Entry})
		}
	}
	s.unlockAll()
	sortEntries(out)
	return out
}

// Import distributes recovered entries to their shards by the routing
// hash. Entries snapshotted under a different shard count re-hash into
// this layout transparently — the caller never needs to know how the
// snapshot was laid out.
func (s *Sharded) Import(entries []KeyedEntry) {
	for _, ke := range entries {
		s.shard(ke.Key).Import([]KeyedEntry{ke})
	}
}

// Len reports live entries across all shards as one consistent count.
func (s *Sharded) Len() int {
	s.lockAll()
	n := 0
	for _, sh := range s.shards {
		n += len(sh.entries)
	}
	s.unlockAll()
	return n
}

// Counters aggregates the per-shard policy counters under one all-shard
// critical section: the sums come from a single instant, never torn
// between a shard that counted a commit and one that has not yet counted
// the matching lookup.
func (s *Sharded) Counters() Counters {
	s.lockAll()
	var tot Counters
	for _, sh := range s.shards {
		tot.Add(sh.counters)
	}
	s.unlockAll()
	return tot
}

// Shards reports the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// ShardOf reports the shard a key routes to.
func (s *Sharded) ShardOf(k Key) int { return ShardIndex(k, len(s.shards)) }

// ExportShard snapshots one shard's entries, sorted by key. Unlike Export
// it holds only that shard's lock — the per-shard snapshot files are
// reconciled by the manifest's journal watermark, not by a global freeze.
func (s *Sharded) ExportShard(i int) []KeyedEntry {
	if i < 0 || i >= len(s.shards) {
		return nil
	}
	return s.shards[i].Export()
}

// ShardCounters returns the per-shard counter breakdown as one consistent
// snapshot (same all-shard critical section as Counters).
func (s *Sharded) ShardCounters() []Counters {
	s.lockAll()
	out := make([]Counters, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.counters
	}
	s.unlockAll()
	return out
}
