package store

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// impls runs a subtest against each Store implementation.
func impls(t *testing.T, cfg Config, fn func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("memory", func(t *testing.T) { fn(t, NewMemory(cfg)) })
	t.Run("sharded", func(t *testing.T) { fn(t, NewSharded(cfg, 8)) })
}

func TestHitMissCounting(t *testing.T) {
	impls(t, Config{}, func(t *testing.T, s Store) {
		k := Key{Bench: "pr", Input: "uni", Machine: "clx"}
		if _, _, ok := s.Lookup(k); ok {
			t.Fatal("lookup on empty store hit")
		}
		s.Commit(k, Entry{Func: "kernel", Distance: 12})
		if e, _, ok := s.Lookup(k); !ok || e.Distance != 12 {
			t.Fatalf("lookup after commit = %+v, %v", e, ok)
		}
		c := s.Counters()
		if c.Hits != 1 || c.Misses != 1 || c.Commits != 1 {
			t.Fatalf("counters = %+v, want 1 hit, 1 miss, 1 commit", c)
		}
	})
}

func TestStalenessEvicts(t *testing.T) {
	impls(t, Config{MaxReuse: 2}, func(t *testing.T, s Store) {
		k := Key{Bench: "bfs", Input: "rmat", Machine: "clx"}
		s.Commit(k, Entry{Distance: 8})
		for i := 0; i < 2; i++ {
			if _, _, ok := s.Lookup(k); !ok {
				t.Fatalf("lookup %d missed before budget ran out", i)
			}
		}
		if _, _, ok := s.Lookup(k); ok {
			t.Fatal("stale entry served past MaxReuse")
		}
		c := s.Counters()
		if c.Stale != 1 || s.Len() != 0 {
			t.Fatalf("stale = %d, len = %d; want eviction", c.Stale, s.Len())
		}
	})
}

func TestInvalidateGenerationGuard(t *testing.T) {
	impls(t, Config{}, func(t *testing.T, s Store) {
		k := Key{Bench: "sssp", Input: "uni", Machine: "hsw"}
		gen := s.Commit(k, Entry{Distance: 4})
		// A fresher commit supersedes gen: the old invalidation must no-op.
		s.Commit(k, Entry{Distance: 6})
		if s.Invalidate(k, gen) {
			t.Fatal("stale-generation invalidate dropped a fresher entry")
		}
		if e, gen2, ok := s.Lookup(k); !ok || e.Distance != 6 {
			t.Fatalf("entry lost: %+v, %v", e, ok)
		} else if !s.Invalidate(k, gen2) {
			t.Fatal("current-generation invalidate refused")
		}
		if s.Len() != 0 {
			t.Fatal("invalidate left the entry")
		}
	})
}

func TestRefundGuards(t *testing.T) {
	impls(t, Config{MaxReuse: 2}, func(t *testing.T, s Store) {
		k := Key{Bench: "bc", Input: "synth", Machine: "clx"}
		s.Commit(k, Entry{Distance: 3})
		_, gen, _ := s.Lookup(k)
		if !s.Refund(k, gen) {
			t.Fatal("refund of a consumed charge refused")
		}
		if s.Refund(k, gen+1) {
			t.Fatal("refund against a wrong generation accepted")
		}
		if s.Refund(k, gen) {
			t.Fatal("refund with zero consumed charges accepted")
		}
		if s.Counters().Refunds != 1 {
			t.Fatalf("refunds = %d, want 1", s.Counters().Refunds)
		}
	})
}

func TestFrozenServesWithoutConsuming(t *testing.T) {
	impls(t, Config{MaxReuse: 1}, func(t *testing.T, s Store) {
		k := Key{Bench: "pr", Input: "uni", Machine: "clx"}
		s.Commit(k, Entry{Distance: 9})
		s.Freeze()
		for i := 0; i < 5; i++ {
			if _, _, ok := s.Lookup(k); !ok {
				t.Fatalf("frozen lookup %d missed", i)
			}
		}
		if s.Commit(k, Entry{Distance: 1}) != 0 {
			t.Fatal("frozen commit succeeded")
		}
		s.Thaw()
		if _, _, ok := s.Lookup(k); !ok {
			t.Fatal("thawed store lost the entry (frozen lookups consumed budget)")
		}
	})
}

func TestExportImportRoundTrip(t *testing.T) {
	impls(t, Config{}, func(t *testing.T, src Store) {
		for i := 0; i < 32; i++ {
			k := Key{Bench: fmt.Sprintf("b%d", i%7), Input: fmt.Sprintf("in%d", i%5), Machine: fmt.Sprintf("m%d", i%3)}
			src.Commit(k, Entry{Distance: i + 1, Func: "f"})
		}
		exported := src.Export()
		for _, shards := range []int{1, 2, 8, 13} {
			dst := New(Config{}, shards)
			dst.Import(exported)
			if got := dst.Export(); !reflect.DeepEqual(got, exported) {
				t.Fatalf("round trip through %d shards changed the export", shards)
			}
		}
	})
}

// TestShardRoutingInvariant: the shard key excludes Machine, so every
// machine-axis sibling of one (bench, input) pair is co-resident — the
// invariant that keeps translation lookups single-shard.
func TestShardRoutingInvariant(t *testing.T) {
	s := NewSharded(Config{}, 8)
	for i := 0; i < 50; i++ {
		bench, input := fmt.Sprintf("bench%d", i), fmt.Sprintf("input%d", i*3)
		home := -1
		for m := 0; m < 6; m++ {
			k := Key{Bench: bench, Input: input, Machine: fmt.Sprintf("machine%d", m)}
			if home == -1 {
				home = s.ShardOf(k)
			} else if got := s.ShardOf(k); got != home {
				t.Fatalf("siblings split across shards: %+v on %d, machine0 on %d", k, got, home)
			}
		}
	}
	// And distinct (bench, input) pairs do spread: a constant hash would
	// satisfy the invariant vacuously.
	used := make(map[int]bool)
	for i := 0; i < 64; i++ {
		used[s.ShardOf(Key{Bench: fmt.Sprintf("b%d", i), Input: "x"})] = true
	}
	if len(used) < 2 {
		t.Fatalf("64 distinct pairs all routed to one shard")
	}
}

// TestTranslationNeverCrossesShards: a translated lookup finds its sibling
// inside the key's own shard, and the serve is charged to that same shard's
// counters.
func TestTranslationNeverCrossesShards(t *testing.T) {
	s := NewSharded(Config{}, 8)
	src := Key{Bench: "pr", Input: "uni", Machine: "haswell"}
	dst := Key{Bench: "pr", Input: "uni", Machine: "cascadelake"}
	s.Commit(src, Entry{Distance: 16})
	e, from, _, ok := s.LookupTranslated(dst)
	if !ok || from != src || e.Distance != 16 {
		t.Fatalf("translated lookup = %+v from %+v, ok %v", e, from, ok)
	}
	if s.ShardOf(src) != s.ShardOf(dst) {
		t.Fatalf("sibling keys routed to shards %d and %d", s.ShardOf(src), s.ShardOf(dst))
	}
	per := s.ShardCounters()
	for i, c := range per {
		want := Counters{}
		if i == s.ShardOf(dst) {
			want = Counters{Commits: 1, Translations: 1}
		}
		if c != want {
			t.Fatalf("shard %d counters = %+v, want %+v (translation must charge only the key's shard)", i, c, want)
		}
	}
}

// TestCountersConsistentAggregate: the per-shard breakdown and the
// aggregate always agree, and concurrent readers never observe a torn
// cross-shard sum where commits and hits disagree with what one writer
// produced atomically... each writer does commit-then-lookup, so at any
// consistent instant Hits <= Commits across the whole store.
func TestCountersConsistentAggregate(t *testing.T) {
	s := NewSharded(Config{}, 8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := Key{Bench: fmt.Sprintf("b%d", i%17), Input: fmt.Sprintf("w%d", w)}
				s.Commit(k, Entry{Distance: 1})
				s.Lookup(k)
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		per := s.ShardCounters()
		var sum Counters
		for _, c := range per {
			sum.Add(c)
		}
		// Every lookup follows its key's commit, so a consistent snapshot
		// can never show more hits than commits; a torn one could.
		if sum.Hits > sum.Commits {
			t.Fatalf("torn counter snapshot: %d hits > %d commits", sum.Hits, sum.Commits)
		}
	}
	close(stop)
	wg.Wait()
	var sum Counters
	for _, c := range s.ShardCounters() {
		sum.Add(c)
	}
	if tot := s.Counters(); tot != sum {
		t.Fatalf("aggregate %+v != per-shard sum %+v on a quiesced store", tot, sum)
	}
}

// TestShardedStress: 64 concurrent sessions interleaving commits, lookups,
// refunds, and invalidations across a sharded store (run under -race).
// Afterwards the counters must balance: every hit consumed a budget charge
// that a refund may have returned, every invalidation dropped a live entry.
func TestShardedStress(t *testing.T) {
	s := NewSharded(Config{MaxReuse: 4}, 8)
	const sessions = 64
	var wg sync.WaitGroup
	for w := 0; w < sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := Key{
					Bench:   fmt.Sprintf("bench%d", (w+i)%13),
					Input:   fmt.Sprintf("input%d", i%7),
					Machine: fmt.Sprintf("m%d", w%2),
				}
				e, gen, ok := s.Lookup(k)
				if !ok {
					gen = s.Commit(k, Entry{Distance: w + i, Func: "f"})
					if gen == 0 {
						t.Errorf("commit returned gen 0 on an unfrozen store")
						return
					}
					continue
				}
				switch i % 3 {
				case 0:
					s.Refund(k, gen)
				case 1:
					s.Invalidate(k, gen)
				default:
					_ = e
					s.Commit(k, Entry{Distance: e.Distance + 1})
				}
			}
		}(w)
	}
	wg.Wait()
	c := s.Counters()
	if c.Commits == 0 || c.Hits == 0 || c.Invalidations == 0 || c.Refunds == 0 {
		t.Fatalf("stress did not exercise every operation: %+v", c)
	}
	// The store must still be coherent: every exported entry is live and
	// re-importable.
	exported := s.Export()
	if len(exported) != s.Len() {
		t.Fatalf("export %d entries, Len %d", len(exported), s.Len())
	}
}

func TestShardIndexStability(t *testing.T) {
	// The routing hash is part of the on-disk contract (shard files are
	// re-hashed on import, but journal shard annotations are audited
	// against it): pin a few values so an accidental hash change shows up.
	k := Key{Bench: "pr", Input: "uniform"}
	if got := ShardIndex(k, 1); got != 0 {
		t.Fatalf("ShardIndex(n=1) = %d, want 0", got)
	}
	a := ShardIndex(k, 8)
	for i := 0; i < 100; i++ {
		if ShardIndex(k, 8) != a {
			t.Fatal("ShardIndex not deterministic")
		}
	}
	if ShardIndex(Key{Bench: "pr", Input: "uniform", Machine: "x"}, 8) != a {
		t.Fatal("ShardIndex depends on Machine")
	}
}
