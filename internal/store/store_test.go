package store_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"rpg2/internal/store"
	"rpg2/internal/store/storetest"
)

type (
	Key      = store.Key
	Entry    = store.Entry
	Config   = store.Config
	Counters = store.Counters
)

// The semantic contract lives in storetest; both in-process
// implementations must pass it identically (the remote backend runs the
// same suite from its own package).
func TestMemoryConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T, cfg Config) store.Store {
		return store.NewMemory(cfg)
	})
}

func TestShardedConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T, cfg Config) store.Store {
		return store.NewSharded(cfg, 8)
	})
}

// TestShardRoutingInvariant: the shard key excludes Machine, so every
// machine-axis sibling of one (bench, input) pair is co-resident — the
// invariant that keeps translation lookups single-shard.
func TestShardRoutingInvariant(t *testing.T) {
	s := store.NewSharded(Config{}, 8)
	for i := 0; i < 50; i++ {
		bench, input := fmt.Sprintf("bench%d", i), fmt.Sprintf("input%d", i*3)
		home := -1
		for m := 0; m < 6; m++ {
			k := Key{Bench: bench, Input: input, Machine: fmt.Sprintf("machine%d", m)}
			if home == -1 {
				home = s.ShardOf(k)
			} else if got := s.ShardOf(k); got != home {
				t.Fatalf("siblings split across shards: %+v on %d, machine0 on %d", k, got, home)
			}
		}
	}
	// And distinct (bench, input) pairs do spread: a constant hash would
	// satisfy the invariant vacuously.
	used := make(map[int]bool)
	for i := 0; i < 64; i++ {
		used[s.ShardOf(Key{Bench: fmt.Sprintf("b%d", i), Input: "x"})] = true
	}
	if len(used) < 2 {
		t.Fatalf("64 distinct pairs all routed to one shard")
	}
}

// TestTranslationNeverCrossesShards: a translated lookup finds its sibling
// inside the key's own shard, and the serve is charged to that same shard's
// counters.
func TestTranslationNeverCrossesShards(t *testing.T) {
	s := store.NewSharded(Config{}, 8)
	src := Key{Bench: "pr", Input: "uni", Machine: "haswell"}
	dst := Key{Bench: "pr", Input: "uni", Machine: "cascadelake"}
	s.Commit(src, Entry{Distance: 16})
	e, from, _, ok := s.LookupTranslated(dst)
	if !ok || from != src || e.Distance != 16 {
		t.Fatalf("translated lookup = %+v from %+v, ok %v", e, from, ok)
	}
	if s.ShardOf(src) != s.ShardOf(dst) {
		t.Fatalf("sibling keys routed to shards %d and %d", s.ShardOf(src), s.ShardOf(dst))
	}
	per := s.ShardCounters()
	for i, c := range per {
		want := Counters{}
		if i == s.ShardOf(dst) {
			want = Counters{Commits: 1, Translations: 1}
		}
		if c != want {
			t.Fatalf("shard %d counters = %+v, want %+v (translation must charge only the key's shard)", i, c, want)
		}
	}
}

// TestCountersConsistentAggregate: the per-shard breakdown and the
// aggregate always agree, and concurrent readers never observe a torn
// cross-shard sum where commits and hits disagree with what one writer
// produced atomically... each writer does commit-then-lookup, so at any
// consistent instant Hits <= Commits across the whole store.
func TestCountersConsistentAggregate(t *testing.T) {
	s := store.NewSharded(Config{}, 8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := Key{Bench: fmt.Sprintf("b%d", i%17), Input: fmt.Sprintf("w%d", w)}
				s.Commit(k, Entry{Distance: 1})
				s.Lookup(k)
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		per := s.ShardCounters()
		var sum Counters
		for _, c := range per {
			sum.Add(c)
		}
		// Every lookup follows its key's commit, so a consistent snapshot
		// can never show more hits than commits; a torn one could.
		if sum.Hits > sum.Commits {
			t.Fatalf("torn counter snapshot: %d hits > %d commits", sum.Hits, sum.Commits)
		}
	}
	close(stop)
	wg.Wait()
	var sum Counters
	for _, c := range s.ShardCounters() {
		sum.Add(c)
	}
	if tot := s.Counters(); tot != sum {
		t.Fatalf("aggregate %+v != per-shard sum %+v on a quiesced store", tot, sum)
	}
}

// TestShardedStress: 64 concurrent sessions interleaving commits, lookups,
// refunds, and invalidations across a sharded store (run under -race).
// Afterwards the counters must balance: every hit consumed a budget charge
// that a refund may have returned, every invalidation dropped a live entry.
func TestShardedStress(t *testing.T) {
	s := store.NewSharded(Config{MaxReuse: 4}, 8)
	const sessions = 64
	var wg sync.WaitGroup
	for w := 0; w < sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := Key{
					Bench:   fmt.Sprintf("bench%d", (w+i)%13),
					Input:   fmt.Sprintf("input%d", i%7),
					Machine: fmt.Sprintf("m%d", w%2),
				}
				e, gen, ok := s.Lookup(k)
				if !ok {
					gen = s.Commit(k, Entry{Distance: w + i, Func: "f"})
					if gen == 0 {
						t.Errorf("commit returned gen 0 on an unfrozen store")
						return
					}
					continue
				}
				switch i % 3 {
				case 0:
					s.Refund(k, gen)
				case 1:
					s.Invalidate(k, gen)
				default:
					_ = e
					s.Commit(k, Entry{Distance: e.Distance + 1})
				}
			}
		}(w)
	}
	wg.Wait()
	c := s.Counters()
	if c.Commits == 0 || c.Hits == 0 || c.Invalidations == 0 || c.Refunds == 0 {
		t.Fatalf("stress did not exercise every operation: %+v", c)
	}
	// The store must still be coherent: every exported entry is live and
	// re-importable.
	exported := s.Export()
	if len(exported) != s.Len() {
		t.Fatalf("export %d entries, Len %d", len(exported), s.Len())
	}
}

func TestShardIndexStability(t *testing.T) {
	// The routing hash is part of the on-disk contract (shard files are
	// re-hashed on import, but journal shard annotations are audited
	// against it): pin a few values so an accidental hash change shows up.
	k := Key{Bench: "pr", Input: "uniform"}
	if got := store.ShardIndex(k, 1); got != 0 {
		t.Fatalf("ShardIndex(n=1) = %d, want 0", got)
	}
	a := store.ShardIndex(k, 8)
	for i := 0; i < 100; i++ {
		if store.ShardIndex(k, 8) != a {
			t.Fatal("ShardIndex not deterministic")
		}
	}
	if store.ShardIndex(Key{Bench: "pr", Input: "uniform", Machine: "x"}, 8) != a {
		t.Fatal("ShardIndex depends on Machine")
	}
}

// TestShardIndexNULInjective: the routing hash frames bench with its
// length, not a separator byte, so (bench, input) pairs whose strings
// themselves contain NUL never alias. Under the old NUL-separator hash
// every pair here streamed the identical byte sequence "a\x00b\x00c" (or
// "pr\x00\x00") and so shared a shard at every shard count.
func TestShardIndexNULInjective(t *testing.T) {
	const shards = 1 << 20
	aliases := [][2]Key{
		{{Bench: "a\x00b", Input: "c"}, {Bench: "a", Input: "b\x00c"}},
		{{Bench: "pr\x00", Input: ""}, {Bench: "pr", Input: "\x00"}},
		{{Bench: "", Input: "\x00x"}, {Bench: "\x00", Input: "x"}},
	}
	for _, pair := range aliases {
		a, b := store.ShardIndex(pair[0], shards), store.ShardIndex(pair[1], shards)
		if a == b {
			t.Errorf("distinct pairs %q/%q and %q/%q alias to shard %d",
				pair[0].Bench, pair[0].Input, pair[1].Bench, pair[1].Input, a)
		}
	}
	// Routing is machine-blind and deterministic for NUL-bearing keys too,
	// and re-shard recovery (Import re-hashes every key into the new
	// layout) round-trips them losslessly.
	s := store.NewSharded(Config{}, 8)
	for i, pair := range aliases {
		for _, k := range pair {
			k.Machine = "clx"
			s.Commit(k, Entry{Distance: i + 1})
		}
	}
	exported := s.Export()
	for _, n := range []int{1, 4, 13} {
		dst := store.New(Config{}, n)
		dst.Import(exported)
		if got := dst.Export(); !reflect.DeepEqual(got, exported) {
			t.Fatalf("NUL-bearing keys did not survive re-shard to %d shards", n)
		}
	}
}
