// The remote backend's semantic and failure-mode tests: the conformance
// suite over a live daemon (so the networked store cannot drift from the
// in-process contract), the cross-client generation-guard races the
// daemon exists to arbitrate, and the degrade-to-fallback arc.
package remote_test

import (
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rpg2/internal/store"
	"rpg2/internal/store/remote"
	"rpg2/internal/store/storetest"
	"rpg2/internal/stored"
)

// newDaemon serves a fresh store daemon over httptest and returns a
// client factory bound to it.
func newDaemon(t *testing.T, cfg store.Config, shards int) (*stored.Server, string) {
	t.Helper()
	srv, err := stored.New(stored.Config{Store: cfg, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts.URL
}

func newClient(url string) *remote.Client {
	return remote.New(remote.Config{
		BaseURL: url, MaxRetries: 2,
		RetryBase: time.Millisecond, RetryCap: 5 * time.Millisecond,
	})
}

// The same table-driven semantics suite Memory and Sharded pass, run over
// the wire: each subtest gets its own daemon so stores are never shared.
func TestRemoteConformanceOverMemory(t *testing.T) {
	storetest.Run(t, func(t *testing.T, cfg store.Config) store.Store {
		_, url := newDaemon(t, cfg, 0)
		return newClient(url)
	})
}

func TestRemoteConformanceOverSharded(t *testing.T) {
	storetest.Run(t, func(t *testing.T, cfg store.Config) store.Store {
		_, url := newDaemon(t, cfg, 8)
		return newClient(url)
	})
}

// TestCrossClientGenGuard: generations live in the daemon, so two clients
// racing a commit on one key resolve like two in-process workers — the
// loser's stale-generation Invalidate/Refund must no-op instead of
// clobbering the winner's fresher entry.
func TestCrossClientGenGuard(t *testing.T) {
	srv, url := newDaemon(t, store.Config{}, 4)
	c1, c2 := newClient(url), newClient(url)

	k := store.Key{Bench: "pr", Input: "uni", Machine: "clx"}
	gen1 := c1.Commit(k, store.Entry{Distance: 4})
	if gen1 == 0 {
		t.Fatal("commit through client 1 returned gen 0")
	}
	gen2 := c2.Commit(k, store.Entry{Distance: 9})
	if gen2 <= gen1 {
		t.Fatalf("client 2's commit gen %d did not supersede client 1's %d", gen2, gen1)
	}
	if c1.Invalidate(k, gen1) {
		t.Fatal("client 1's stale-generation invalidate dropped client 2's entry")
	}
	if c1.Refund(k, gen1) {
		t.Fatal("client 1's stale-generation refund was accepted")
	}
	if e, ok := c1.Peek(k); !ok || e.Distance != 9 {
		t.Fatalf("winner's entry lost: %+v, %v", e, ok)
	}
	if !c2.Invalidate(k, gen2) {
		t.Fatal("current-generation invalidate refused")
	}
	if srv.Store().Len() != 0 {
		t.Fatal("invalidate left the entry in the daemon")
	}
}

// TestCrossClientCommitRace: many concurrent commit/invalidate pairs from
// two clients; whatever interleaving the daemon serialized, stale guards
// never delete a fresher commit, so the store stays coherent (run under
// -race in CI).
func TestCrossClientCommitRace(t *testing.T) {
	srv, url := newDaemon(t, store.Config{}, 4)
	clients := []*remote.Client{newClient(url), newClient(url)}

	var wg sync.WaitGroup
	for w, c := range clients {
		wg.Add(1)
		go func(w int, c *remote.Client) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := store.Key{Bench: "bfs", Input: "rmat", Machine: "clx"}
				gen := c.Commit(k, store.Entry{Distance: w*100 + i})
				if gen == 0 {
					t.Errorf("client %d commit %d returned gen 0", w, i)
					return
				}
				// Invalidate with the gen we were issued: succeeds only if
				// no fresher commit raced in between — never clobbers one.
				c.Invalidate(k, gen)
			}
		}(w, c)
	}
	wg.Wait()
	// Coherence: the daemon either holds the last-writer entry or a
	// guard-passing invalidate removed it; exports always match Len.
	if got := len(srv.Store().Export()); got != srv.Store().Len() {
		t.Fatalf("export %d entries, Len %d", got, srv.Store().Len())
	}
	if c := srv.Store().Counters(); c.Commits != 80 {
		t.Fatalf("daemon saw %d commits, want 80", c.Commits)
	}
}

// TestDegradeToFallback: a dead daemon spends the retry budget once, the
// client flips permanently to its process-local fallback, and OnDegrade
// fires exactly once — sessions keep getting store answers throughout.
func TestDegradeToFallback(t *testing.T) {
	ts := httptest.NewServer(nil)
	url := ts.URL
	ts.Close() // nothing listens: every dial is refused

	var fired atomic.Int32
	c := remote.New(remote.Config{
		BaseURL: url, MaxRetries: 1,
		RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond,
		OnDegrade: func(error) { fired.Add(1) },
	})

	k := store.Key{Bench: "pr", Input: "uni", Machine: "clx"}
	if gen := c.Commit(k, store.Entry{Distance: 7}); gen == 0 {
		t.Fatal("commit against a dead daemon returned gen 0 instead of falling back")
	}
	if !c.Degraded() {
		t.Fatal("client did not degrade after exhausting retries")
	}
	if e, _, ok := c.Lookup(k); !ok || e.Distance != 7 {
		t.Fatalf("fallback lost the committed entry: %+v, %v", e, ok)
	}
	// More failures must not re-fire the hook.
	c.Commit(store.Key{Bench: "bc"}, store.Entry{Distance: 1})
	if n := fired.Load(); n != 1 {
		t.Fatalf("OnDegrade fired %d times, want exactly 1", n)
	}
}

// TestDegradeMidRun: a daemon that dies between operations takes its
// entries with it — the fallback starts cold (documented trade: liveness
// over hit rate) but every subsequent operation still answers.
func TestDegradeMidRun(t *testing.T) {
	srv, err := stored.New(stored.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	c := remote.New(remote.Config{
		BaseURL: ts.URL, MaxRetries: 1,
		RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond,
	})

	k := store.Key{Bench: "sssp", Input: "uni", Machine: "hsw"}
	if gen := c.Commit(k, store.Entry{Distance: 5}); gen == 0 {
		t.Fatal("commit against the live daemon failed")
	}
	ts.Close() // kill -9, as far as the client can tell

	if _, _, ok := c.Lookup(k); ok {
		t.Fatal("post-degrade lookup served a daemon entry from the cold fallback")
	}
	if !c.Degraded() {
		t.Fatal("client did not degrade when the daemon died mid-run")
	}
	if gen := c.Commit(k, store.Entry{Distance: 6}); gen == 0 {
		t.Fatal("fallback refused a commit")
	}
	if e, _, ok := c.Lookup(k); !ok || e.Distance != 6 {
		t.Fatalf("fallback entry = %+v, %v", e, ok)
	}
}
