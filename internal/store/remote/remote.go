// Package remote is the client side of the out-of-process profile store:
// a store.Store implementation that forwards every operation to an
// rpg2-stored daemon over HTTP/JSON. A fleet configured with a store
// address swaps this in where a Memory or Sharded store would sit, and
// nothing above the interface can tell the difference — generations live
// in the daemon, so two fleet processes racing a commit on the same key
// resolve exactly like two in-process workers.
//
// The interface has no error returns, so the transport must never surface
// one. Transient failures (connection errors, 502/503/504) retry with the
// same capped, hash-jittered exponential backoff the fleet client uses.
// When the budget is spent — the daemon is gone, not flaky — the client
// degrades permanently to a process-local fallback store and fires
// OnDegrade exactly once so the fleet can journal the event. The fallback
// starts cold: entries the daemon held are lost to this process (it may
// not even be reachable to ask), which trades warm-start hit rate for
// liveness — sessions keep finishing, they just re-profile. There is no
// re-attach: flapping between a shared and a private store would split
// generations across two histories and break the gen-guard contract the
// daemon exists to arbitrate.
package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rpg2/internal/faults"
	"rpg2/internal/store"
)

// Config points a client at a store daemon. Only BaseURL is required.
type Config struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8049".
	BaseURL string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
	// MaxRetries bounds transparent retries of transient failures per
	// operation (default 4; negative disables retry).
	MaxRetries int
	// RetryBase and RetryCap shape the exponential backoff between
	// retries (defaults 50ms and 1s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// Timeout bounds each operation end to end, retries included
	// (default 15s). The ceiling is what turns a hung daemon into a
	// degrade instead of a wedged worker.
	Timeout time.Duration
	// Seed drives the deterministic backoff jitter (default 1).
	Seed int64
	// Fallback is the process-local store the client degrades to. Nil
	// builds one from FallbackConfig and FallbackShards.
	Fallback       store.Store
	FallbackConfig store.Config
	FallbackShards int
	// OnDegrade, when set, fires exactly once with the error that spent
	// the retry budget.
	OnDegrade func(error)
}

// Client is a store.Store over a store daemon. Safe for concurrent use.
type Client struct {
	cfg      Config
	fb       store.Store
	draws    atomic.Uint64
	degraded atomic.Bool
	degOnce  sync.Once
	shards   atomic.Int32 // daemon's shard count, 0 until first fetched
}

var _ store.Store = (*Client)(nil)

// New builds a client; zero-value config fields get defaults. The daemon
// is not contacted here — an unreachable address degrades on first use,
// not at construction, so a fleet can start before its store does.
func New(cfg Config) *Client {
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 15 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Fallback == nil {
		cfg.Fallback = store.New(cfg.FallbackConfig, cfg.FallbackShards)
	}
	return &Client{cfg: cfg, fb: cfg.Fallback}
}

// Degraded reports whether the client has switched to its local fallback.
func (c *Client) Degraded() bool { return c.degraded.Load() }

func (c *Client) degrade(err error) {
	c.degOnce.Do(func() {
		c.degraded.Store(true)
		if c.cfg.OnDegrade != nil {
			c.cfg.OnDegrade(err)
		}
	})
}

// --- wire types (the daemon's endpoint contract) ---

type keyReq struct {
	Key store.Key `json:"key"`
}

type commitReq struct {
	Key   store.Key   `json:"key"`
	Entry store.Entry `json:"entry"`
}

type genReq struct {
	Key store.Key `json:"key"`
	Gen uint64    `json:"gen"`
}

type lookupResp struct {
	Entry store.Entry `json:"entry"`
	From  store.Key   `json:"from"`
	Gen   uint64      `json:"gen"`
	Found bool        `json:"found"`
}

type genResp struct {
	Gen uint64 `json:"gen"`
}

type okResp struct {
	OK bool `json:"ok"`
}

type entriesMsg struct {
	Entries []store.KeyedEntry `json:"entries"`
}

type statsResp struct {
	Len           int              `json:"len"`
	Shards        int              `json:"shards"`
	Counters      store.Counters   `json:"counters"`
	ShardCounters []store.Counters `json:"shard_counters"`
}

// --- transport ---

func transientCode(code int) bool {
	return code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// jitter spreads a wait over [d/2, d], hash-derived like the fleet
// client's (salt 33 keeps the streams distinct).
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	f := faults.Hash01(uint64(c.cfg.Seed), c.draws.Add(1), 33)
	return d/2 + time.Duration(f*float64(d/2))
}

func (c *Client) backoff(ctx context.Context, attempt int) error {
	d := c.cfg.RetryBase << (attempt - 1)
	if d > c.cfg.RetryCap || d <= 0 {
		d = c.cfg.RetryCap
	}
	t := time.NewTimer(c.jitter(d))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func decodeErr(resp *http.Response) string {
	var ae struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
		return ae.Error
	}
	return resp.Status
}

// call runs one operation against the daemon with transient retry under
// the per-op timeout. in == nil sends a GET; otherwise a JSON POST.
func (c *Client) call(path string, in, out any) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
	defer cancel()
	var body []byte
	method := http.MethodGet
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("remote store: encode request: %w", err)
		}
		body, method = raw, http.MethodPost
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > c.cfg.MaxRetries {
				return lastErr
			}
			if err := c.backoff(ctx, attempt); err != nil {
				if lastErr != nil {
					return lastErr
				}
				return err
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.cfg.HTTP.Do(req)
		if err != nil {
			if ctx.Err() != nil && lastErr != nil {
				return lastErr
			}
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusOK {
			if out != nil {
				err = json.NewDecoder(resp.Body).Decode(out)
			}
			resp.Body.Close()
			if err != nil {
				return fmt.Errorf("remote store: decode response: %w", err)
			}
			return nil
		}
		msg := decodeErr(resp)
		resp.Body.Close()
		err = fmt.Errorf("remote store: HTTP %d on %s: %s", resp.StatusCode, path, msg)
		if !transientCode(resp.StatusCode) {
			// A non-transient rejection (bad request, daemon draining into
			// shutdown) will not heal by retrying.
			return err
		}
		lastErr = err
	}
}

// op runs call and reports whether the daemon answered; a failure
// degrades the client so the caller falls back locally.
func (c *Client) op(path string, in, out any) bool {
	if c.degraded.Load() {
		return false
	}
	if err := c.call(path, in, out); err != nil {
		c.degrade(fmt.Errorf("store daemon at %s unreachable: %w", c.cfg.BaseURL, err))
		return false
	}
	return true
}

// --- store.Store ---

func (c *Client) Lookup(k store.Key) (store.Entry, uint64, bool) {
	var resp lookupResp
	if !c.op("/v1/store/lookup", keyReq{Key: k}, &resp) {
		return c.fb.Lookup(k)
	}
	return resp.Entry, resp.Gen, resp.Found
}

func (c *Client) LookupTranslated(k store.Key) (store.Entry, store.Key, uint64, bool) {
	var resp lookupResp
	if !c.op("/v1/store/lookup-translated", keyReq{Key: k}, &resp) {
		return c.fb.LookupTranslated(k)
	}
	return resp.Entry, resp.From, resp.Gen, resp.Found
}

func (c *Client) Peek(k store.Key) (store.Entry, bool) {
	var resp lookupResp
	if !c.op("/v1/store/peek", keyReq{Key: k}, &resp) {
		return c.fb.Peek(k)
	}
	return resp.Entry, resp.Found
}

func (c *Client) PeekTranslated(k store.Key) (store.Entry, store.Key, bool) {
	var resp lookupResp
	if !c.op("/v1/store/peek-translated", keyReq{Key: k}, &resp) {
		return c.fb.PeekTranslated(k)
	}
	return resp.Entry, resp.From, resp.Found
}

func (c *Client) Commit(k store.Key, e store.Entry) uint64 {
	var resp genResp
	if !c.op("/v1/store/commit", commitReq{Key: k, Entry: e}, &resp) {
		return c.fb.Commit(k, e)
	}
	return resp.Gen
}

func (c *Client) Refund(k store.Key, gen uint64) bool {
	var resp okResp
	if !c.op("/v1/store/refund", genReq{Key: k, Gen: gen}, &resp) {
		return c.fb.Refund(k, gen)
	}
	return resp.OK
}

func (c *Client) Invalidate(k store.Key, gen uint64) bool {
	var resp okResp
	if !c.op("/v1/store/invalidate", genReq{Key: k, Gen: gen}, &resp) {
		return c.fb.Invalidate(k, gen)
	}
	return resp.OK
}

func (c *Client) Freeze() {
	if !c.op("/v1/store/freeze", struct{}{}, nil) {
		c.fb.Freeze()
	}
}

func (c *Client) Thaw() {
	if !c.op("/v1/store/thaw", struct{}{}, nil) {
		c.fb.Thaw()
	}
}

func (c *Client) Export() []store.KeyedEntry {
	var resp entriesMsg
	if !c.op("/v1/store/export", nil, &resp) {
		return c.fb.Export()
	}
	return resp.Entries
}

func (c *Client) Import(entries []store.KeyedEntry) {
	if !c.op("/v1/store/import", entriesMsg{Entries: entries}, nil) {
		c.fb.Import(entries)
	}
}

func (c *Client) Len() int {
	st, ok := c.stats()
	if !ok {
		return c.fb.Len()
	}
	return st.Len
}

func (c *Client) Counters() store.Counters {
	st, ok := c.stats()
	if !ok {
		return c.fb.Counters()
	}
	return st.Counters
}

// Shards reports the daemon's shard layout, cached after the first fetch
// (the layout is fixed for a daemon's lifetime).
func (c *Client) Shards() int {
	if n := c.shards.Load(); n > 0 {
		return int(n)
	}
	st, ok := c.stats()
	if !ok {
		return c.fb.Shards()
	}
	return st.Shards
}

// ShardOf routes locally: the daemon's layout uses the same ShardIndex
// hash, so the answer matches without a round trip per key.
func (c *Client) ShardOf(k store.Key) int {
	if c.degraded.Load() {
		return c.fb.ShardOf(k)
	}
	return store.ShardIndex(k, c.Shards())
}

func (c *Client) ExportShard(i int) []store.KeyedEntry {
	var resp entriesMsg
	if !c.op(fmt.Sprintf("/v1/store/shard/%d", i), nil, &resp) {
		return c.fb.ExportShard(i)
	}
	return resp.Entries
}

func (c *Client) ShardCounters() []store.Counters {
	st, ok := c.stats()
	if !ok {
		return c.fb.ShardCounters()
	}
	return st.ShardCounters
}

func (c *Client) stats() (statsResp, bool) {
	var st statsResp
	if !c.op("/v1/store/stats", nil, &st) {
		return statsResp{}, false
	}
	if st.Shards > 0 {
		c.shards.Store(int32(st.Shards))
	}
	return st, true
}
