// Package cpu implements the execution core of the simulated machine: an
// interpreter for the isa instruction set with a cycle-accounting model.
//
// The timing model charges one base cycle per instruction plus memory
// latency from the cache hierarchy. Out-of-order overlap of independent
// last-level-cache misses is modelled with an MLP window: up to MLP demand
// misses may be outstanding before the core stalls waiting for the oldest.
// This reproduces the key property that makes software prefetching worth
// ~2x rather than ~20x on real machines: the baseline already overlaps
// misses, so prefetching buys the gap between MLP-limited and
// bandwidth-limited throughput.
package cpu

import (
	"fmt"

	"rpg2/internal/cache"
	"rpg2/internal/isa"
	"rpg2/internal/mem"
)

// Thread is an architectural thread context: a register file and a PC.
type Thread struct {
	// Regs is the general-purpose register file; Regs[isa.SP] is the
	// stack pointer.
	Regs [isa.NumRegs]uint64
	// PC is the global index of the next instruction in the text segment.
	PC int
	// Halted is set when the thread executes Halt.
	Halted bool
	// Fault records a memory fault that killed the thread, if any.
	Fault *mem.Fault
}

// Runnable reports whether the thread can execute further instructions.
func (t *Thread) Runnable() bool { return !t.Halted && t.Fault == nil }

// Watch counts retirements of a set of instruction addresses. Experiments
// watch a loop's demand load (in both the original and any rewritten
// function) to obtain an exact work-per-cycle rate that is comparable
// across binaries, unlike IPC, which the prefetch kernel's extra
// instructions inflate.
type Watch struct {
	// PCs are the watched instruction addresses.
	PCs []int
	// Count is the total retirements of any watched PC.
	Count uint64
}

// NewWatch builds a watch over the given PCs.
func NewWatch(pcs []int) *Watch { return &Watch{PCs: append([]int(nil), pcs...)} }

// Extend unions additional PCs into the watch without touching its count.
func (w *Watch) Extend(pcs []int) {
	have := make(map[int]bool, len(w.PCs))
	for _, pc := range w.PCs {
		have[pc] = true
	}
	for _, pc := range pcs {
		if !have[pc] {
			w.PCs = append(w.PCs, pc)
			have[pc] = true
		}
	}
}

func (w *Watch) observe(pc int) {
	for _, p := range w.PCs {
		if p == pc {
			w.Count++
			return
		}
	}
}

// Config holds the core's microarchitectural parameters.
type Config struct {
	// MLP is the number of demand LLC misses that may overlap before the
	// core stalls (an abstraction of the out-of-order window and miss
	// queue).
	MLP int
	// BranchCost is the extra cycles charged for a taken branch.
	BranchCost uint64
}

// Core executes one thread at a time against a shared cache hierarchy, and
// owns that hardware context's cycle clock and retired-instruction counter.
type Core struct {
	cfg  Config
	hier *cache.Hierarchy

	// Now is the core's cycle clock.
	Now uint64
	// Instructions counts retired instructions.
	Instructions uint64

	// OnLLCMiss, if set, is invoked for every retired demand load that
	// missed the LLC; package perf hooks PEBS sampling here.
	OnLLCMiss func(pc int, addr mem.Addr)
	// Watches are the retirement counters attached to this core. Each
	// watch counts retirements of its PCs independently, so several
	// observers (an experiment harness and the RPG² controller, say) can
	// count different instruction sets on the same core without
	// interfering. A single Watch may be attached to several cores; its
	// count then aggregates across them.
	Watches []*Watch
	// OnInitDone, if set, is invoked when the thread retires an InitDone
	// marker (the benchmark's end-of-initialisation signal).
	OnInitDone func()

	outstanding []uint64 // completion cycles of in-flight demand misses
}

// New builds a core bound to a hierarchy.
func New(cfg Config, hier *cache.Hierarchy) *Core {
	if cfg.MLP < 1 {
		cfg.MLP = 1
	}
	return &Core{cfg: cfg, hier: hier}
}

// Hierarchy returns the cache hierarchy the core is attached to.
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// ResetWindow clears the outstanding-miss window, e.g. after the thread has
// been stopped and resumed by the tracer.
func (c *Core) ResetWindow() { c.outstanding = c.outstanding[:0] }

// chargeMiss applies the MLP model to a demand miss that completes at the
// given absolute cycle and returns the stall charged now.
func (c *Core) chargeMiss(completion uint64) uint64 {
	if len(c.outstanding) < c.cfg.MLP {
		c.outstanding = append(c.outstanding, completion)
		return 0
	}
	// Window full: wait for the oldest outstanding miss to retire.
	oldest := c.outstanding[0]
	copy(c.outstanding, c.outstanding[1:])
	c.outstanding[len(c.outstanding)-1] = completion
	if oldest > c.Now {
		return oldest - c.Now
	}
	return 0
}

// ErrHalted is returned (wrapped) when stepping a non-runnable thread.
var ErrHalted = fmt.Errorf("cpu: thread is not runnable")

// Step executes one instruction of the thread against the given text segment
// and address space, advancing the core clock. A memory fault on a demand
// access records the fault on the thread and stops it, like a fatal SIGSEGV.
func (c *Core) Step(t *Thread, text []isa.Instr, as *mem.AddrSpace) error {
	if !t.Runnable() {
		return ErrHalted
	}
	if t.PC < 0 || t.PC >= len(text) {
		t.Fault = &mem.Fault{Addr: uint64(t.PC)}
		return fmt.Errorf("cpu: pc %d outside text segment", t.PC)
	}
	in := text[t.PC]
	pc := t.PC
	t.PC++
	c.Now++
	c.Instructions++
	for _, w := range c.Watches {
		w.observe(pc)
	}

	r := &t.Regs
	switch in.Op {
	case isa.Nop, isa.InitDone:
		if in.Op == isa.InitDone && c.OnInitDone != nil {
			c.OnInitDone()
		}
	case isa.MovImm:
		r[in.Rd] = uint64(in.Imm)
	case isa.Mov:
		r[in.Rd] = r[in.Rs1]
	case isa.Add:
		r[in.Rd] = r[in.Rs1] + r[in.Rs2]
	case isa.AddImm:
		r[in.Rd] = r[in.Rs1] + uint64(in.Imm)
	case isa.Sub:
		r[in.Rd] = r[in.Rs1] - r[in.Rs2]
	case isa.SubImm:
		r[in.Rd] = r[in.Rs1] - uint64(in.Imm)
	case isa.Mul:
		r[in.Rd] = r[in.Rs1] * r[in.Rs2]
	case isa.MulImm:
		r[in.Rd] = r[in.Rs1] * uint64(in.Imm)
	case isa.ShlImm:
		r[in.Rd] = r[in.Rs1] << uint64(in.Imm)
	case isa.ShrImm:
		r[in.Rd] = r[in.Rs1] >> uint64(in.Imm)
	case isa.AndImm:
		r[in.Rd] = r[in.Rs1] & uint64(in.Imm)
	case isa.Min:
		a, b := r[in.Rs1], r[in.Rs2]
		if b < a {
			a = b
		}
		r[in.Rd] = a
	case isa.Load:
		addr := r[in.Rs1] + uint64(in.Imm)
		if in.Rs2 != isa.NoReg {
			addr += r[in.Rs2]
		}
		v, ok := as.Read(addr)
		if !ok {
			t.Fault = &mem.Fault{Addr: addr}
			return nil
		}
		res := c.hier.Access(uint64(pc), addr, c.Now)
		c.chargeLoad(pc, addr, res)
		r[in.Rd] = v
	case isa.Store:
		addr := r[in.Rs1] + uint64(in.Imm)
		if in.Rs2 != isa.NoReg {
			addr += r[in.Rs2]
		}
		if !as.Write(addr, r[in.Rd]) {
			t.Fault = &mem.Fault{Addr: addr, Write: true}
			return nil
		}
		// Stores occupy the fill path (write-allocate) but do not stall
		// the core: store-miss latency hides behind the store buffer.
		c.hier.Access(uint64(pc), addr, c.Now)
	case isa.Prefetch:
		addr := r[in.Rs1] + uint64(in.Imm)
		if in.Rs2 != isa.NoReg {
			addr += r[in.Rs2]
		}
		// Prefetch never faults: unmapped addresses are dropped.
		if as.Mapped(addr) {
			c.hier.Prefetch(addr, c.Now, cache.SoftwarePrefetch)
		}
	case isa.Br:
		if in.Cond.Holds(r[in.Rs1], r[in.Rs2]) {
			t.PC = in.Target
			c.Now += c.cfg.BranchCost
		}
	case isa.BrImm:
		if in.Cond.Holds(r[in.Rs1], uint64(in.Imm)) {
			t.PC = in.Target
			c.Now += c.cfg.BranchCost
		}
	case isa.Jmp:
		t.PC = in.Target
		c.Now += c.cfg.BranchCost
	case isa.Call:
		r[isa.SP]--
		if !as.Write(r[isa.SP], uint64(t.PC)) {
			t.Fault = &mem.Fault{Addr: r[isa.SP], Write: true}
			return nil
		}
		t.PC = in.Target
		c.Now += c.cfg.BranchCost
	case isa.Ret:
		v, ok := as.Read(r[isa.SP])
		if !ok {
			t.Fault = &mem.Fault{Addr: r[isa.SP]}
			return nil
		}
		r[isa.SP]++
		t.PC = int(v)
		c.Now += c.cfg.BranchCost
	case isa.Push:
		r[isa.SP]--
		if !as.Write(r[isa.SP], r[in.Rs1]) {
			t.Fault = &mem.Fault{Addr: r[isa.SP], Write: true}
			return nil
		}
	case isa.Pop:
		v, ok := as.Read(r[isa.SP])
		if !ok {
			t.Fault = &mem.Fault{Addr: r[isa.SP]}
			return nil
		}
		r[isa.SP]++
		r[in.Rd] = v
	case isa.Halt:
		t.Halted = true
	default:
		return fmt.Errorf("cpu: pc %d: unknown opcode %v", pc, in.Op)
	}
	return nil
}

// chargeLoad applies load latency: cache hits pay their level latency
// directly; LLC misses enter the MLP window.
func (c *Core) chargeLoad(pc int, addr mem.Addr, res cache.Result) {
	if res.LLCMiss {
		completion := c.Now + res.Cycles
		c.Now += c.chargeMiss(completion)
		if c.OnLLCMiss != nil {
			c.OnLLCMiss(pc, addr)
		}
		return
	}
	c.Now += res.Cycles
}

// IPC returns instructions-per-cycle over the core's lifetime. Callers that
// need windows should difference Instructions and Now themselves.
func (c *Core) IPC() float64 {
	if c.Now == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Now)
}
