package cpu

import (
	"testing"

	"rpg2/internal/cache"
	"rpg2/internal/isa"
	"rpg2/internal/mem"
)

func testHier() *cache.Hierarchy {
	return cache.New(cache.Config{
		L1:   cache.LevelConfig{Name: "L1d", Lines: 8, Assoc: 2, Latency: 1},
		L2:   cache.LevelConfig{Name: "L2", Lines: 16, Assoc: 2, Latency: 10},
		L3:   cache.LevelConfig{Name: "L3", Lines: 32, Assoc: 4, Latency: 30},
		DRAM: cache.DRAMConfig{Latency: 100, ServiceCycles: 4, MSHRs: 8},
	})
}

// runProgram assembles one function, executes it to completion, and returns
// the core, thread, and address space for inspection.
func runProgram(t *testing.T, build func(a *isa.Asm), setup func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64), cfg Config) (*Core, *Thread, *mem.AddrSpace) {
	t.Helper()
	a := isa.NewAsm("main")
	build(a)
	bin, err := isa.NewProgram("main").Add(a).Link()
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	as := mem.NewAddrSpace()
	th := &Thread{}
	stack := as.Alloc("stack", 64)
	th.Regs[isa.SP] = stack.End()
	if setup != nil {
		setup(as, &th.Regs)
	}
	core := New(cfg, testHier())
	for i := 0; i < 100000 && th.Runnable(); i++ {
		if err := core.Step(th, bin.Text, as); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	return core, th, as
}

func TestALUOpcodes(t *testing.T) {
	_, th, _ := runProgram(t, func(a *isa.Asm) {
		a.MovImm(0, 10)
		a.MovImm(1, 3)
		a.Add(2, 0, 1)    // 13
		a.Sub(3, 0, 1)    // 7
		a.Mul(4, 0, 1)    // 30
		a.AddImm(5, 0, 5) // 15
		a.SubImm(6, 0, 4) // 6
		a.MulImm(7, 1, 7) // 21
		a.ShrImm(8, 0, 1) // 5
		a.AndImm(9, 0, 6) // 2
		a.Min(10, 0, 1)   // 3
		a.Mov(11, 2)      // 13
		a.Halt()
	}, nil, Config{MLP: 2})
	want := map[isa.Reg]uint64{2: 13, 3: 7, 4: 30, 5: 15, 6: 6, 7: 21, 8: 5, 9: 2, 10: 3, 11: 13}
	for r, v := range want {
		if th.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, th.Regs[r], v)
		}
	}
	if !th.Halted {
		t.Fatal("program did not halt")
	}
}

func TestLoadStoreAndBranchLoop(t *testing.T) {
	// Sum array of 10 elements.
	_, th, _ := runProgram(t, func(a *isa.Asm) {
		a.MovImm(1, 0) // i
		a.MovImm(2, 0) // sum
		a.Label("loop")
		a.LoadIdx(3, 0, 1, 0)
		a.Add(2, 2, 3)
		a.AddImm(1, 1, 1)
		a.BrImm(isa.LT, 1, 10, "loop")
		a.Store(4, 0, 2) // out[0] = sum
		a.Halt()
	}, func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
		data := make([]uint64, 10)
		for i := range data {
			data[i] = uint64(i + 1)
		}
		regs[0] = as.Map("data", data).Base
		regs[4] = as.Alloc("out", 1).Base
	}, Config{MLP: 2})
	if th.Regs[2] != 55 {
		t.Fatalf("sum = %d, want 55", th.Regs[2])
	}
}

func TestCallRetAndStack(t *testing.T) {
	a1 := isa.NewAsm("main")
	a1.MovImm(0, 21)
	a1.Call("double")
	a1.Halt()
	a2 := isa.NewAsm("double")
	a2.Push(1)
	a2.MovImm(1, 2)
	a2.Mul(0, 0, 1)
	a2.Pop(1)
	a2.Ret()
	bin, err := isa.NewProgram("main").Add(a1).Add(a2).Link()
	if err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddrSpace()
	th := &Thread{}
	stack := as.Alloc("stack", 64)
	th.Regs[isa.SP] = stack.End()
	th.Regs[1] = 0xDEAD
	core := New(Config{MLP: 2}, testHier())
	for th.Runnable() {
		if err := core.Step(th, bin.Text, as); err != nil {
			t.Fatal(err)
		}
	}
	if th.Regs[0] != 42 {
		t.Fatalf("r0 = %d, want 42", th.Regs[0])
	}
	if th.Regs[1] != 0xDEAD {
		t.Fatal("callee did not restore the spilled register")
	}
	if th.Regs[isa.SP] != stack.End() {
		t.Fatal("stack pointer not balanced")
	}
}

func TestLoadFaultKillsThread(t *testing.T) {
	_, th, _ := runProgram(t, func(a *isa.Asm) {
		a.MovImm(0, 0) // address 0 is never mapped
		a.Load(1, 0, 0)
		a.Halt()
	}, nil, Config{MLP: 2})
	if th.Fault == nil {
		t.Fatal("load from unmapped memory must fault")
	}
	if th.Runnable() {
		t.Fatal("faulted thread must not be runnable")
	}
}

func TestPrefetchNeverFaults(t *testing.T) {
	_, th, _ := runProgram(t, func(a *isa.Asm) {
		a.MovImm(0, 0)
		a.Prefetch(0, 0) // unmapped: silently dropped
		a.MovImm(2, 99)
		a.Halt()
	}, nil, Config{MLP: 2})
	if th.Fault != nil {
		t.Fatalf("prefetch faulted: %v", th.Fault)
	}
	if th.Regs[2] != 99 {
		t.Fatal("execution did not continue after prefetch")
	}
}

func TestInitDoneCallback(t *testing.T) {
	fired := false
	a := isa.NewAsm("main")
	a.InitDone()
	a.Halt()
	bin, _ := isa.NewProgram("main").Add(a).Link()
	as := mem.NewAddrSpace()
	th := &Thread{}
	core := New(Config{MLP: 1}, testHier())
	core.OnInitDone = func() { fired = true }
	for th.Runnable() {
		core.Step(th, bin.Text, as)
	}
	if !fired {
		t.Fatal("InitDone callback not invoked")
	}
}

func TestWatchCountsOnlyItsPCs(t *testing.T) {
	w1 := NewWatch([]int{1})
	w2 := NewWatch([]int{2, 3})
	a := isa.NewAsm("main")
	a.MovImm(0, 0) // pc 0
	a.MovImm(1, 0) // pc 1
	a.MovImm(2, 0) // pc 2
	a.MovImm(3, 0) // pc 3
	a.Halt()
	bin, _ := isa.NewProgram("main").Add(a).Link()
	as := mem.NewAddrSpace()
	th := &Thread{}
	core := New(Config{MLP: 1}, testHier())
	core.Watches = []*Watch{w1, w2}
	for th.Runnable() {
		core.Step(th, bin.Text, as)
	}
	if w1.Count != 1 || w2.Count != 2 {
		t.Fatalf("watch counts: %d, %d; want 1, 2", w1.Count, w2.Count)
	}
}

func TestWatchExtendDeduplicates(t *testing.T) {
	w := NewWatch([]int{1, 2})
	w.Extend([]int{2, 3})
	if len(w.PCs) != 3 {
		t.Fatalf("PCs = %v, want 3 unique entries", w.PCs)
	}
}

// TestMLPOverlapsMisses checks the core of the timing model: with a wider
// MLP window, a burst of independent misses costs fewer cycles.
func TestMLPOverlapsMisses(t *testing.T) {
	run := func(mlp int) uint64 {
		core, _, _ := runProgram(t, func(a *isa.Asm) {
			// 8 loads to distinct lines, no dependencies.
			for i := 0; i < 8; i++ {
				a.Load(1, 0, int64(i*64))
			}
			a.Halt()
		}, func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
			regs[0] = as.Alloc("data", 4096).Base
		}, Config{MLP: mlp})
		return core.Now
	}
	serial := run(1)
	overlapped := run(8)
	if overlapped > serial/2 {
		t.Fatalf("MLP=8 (%d cycles) should be far cheaper than MLP=1 (%d cycles)", overlapped, serial)
	}
	// MLP=1 keeps one miss in flight while the next issues, so a burst of
	// n misses costs roughly (n-1) full latencies.
	if serial < 7*50 {
		t.Fatalf("MLP=1 should serialize misses, got only %d cycles", serial)
	}
}

func TestStepOnHaltedThreadErrors(t *testing.T) {
	core := New(Config{MLP: 1}, testHier())
	th := &Thread{Halted: true}
	if err := core.Step(th, nil, nil); err == nil {
		t.Fatal("stepping a halted thread must error")
	}
}

func TestPCOutOfRangeFaults(t *testing.T) {
	core := New(Config{MLP: 1}, testHier())
	th := &Thread{PC: 99}
	if err := core.Step(th, make([]isa.Instr, 5), mem.NewAddrSpace()); err == nil {
		t.Fatal("out-of-range PC must error")
	}
	if th.Fault == nil {
		t.Fatal("out-of-range PC must record a fault")
	}
}

func TestIPCAccounting(t *testing.T) {
	core, _, _ := runProgram(t, func(a *isa.Asm) {
		for i := 0; i < 10; i++ {
			a.MovImm(0, int64(i))
		}
		a.Halt()
	}, nil, Config{MLP: 1})
	if core.Instructions != 11 {
		t.Fatalf("instructions = %d, want 11", core.Instructions)
	}
	if ipc := core.IPC(); ipc <= 0 || ipc > 1 {
		t.Fatalf("IPC = %f", ipc)
	}
}
