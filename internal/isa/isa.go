// Package isa defines the instruction set of the simulated machine that the
// RPG² reproduction operates on.
//
// The ISA is deliberately small but shaped like the subset of x86-64 that the
// paper's BOLT pass manipulates: a register file, loads and stores with
// base+index+displacement addressing, arithmetic with editable immediates
// (the prefetch distance lives in such an immediate, just as x86 encodes it
// in a displacement), explicit software prefetch instructions that are
// architectural NOPs, compare-and-branch control flow, calls and returns, and
// push/pop for register spills. Memory is word addressed: one address unit is
// one 64-bit word, and a cache line holds LineWords words.
package isa

import "fmt"

// Reg names one of the sixteen general-purpose registers r0..r15.
// By software convention SP (r15) is the stack pointer.
type Reg uint8

// NumRegs is the size of the architectural register file.
const NumRegs = 16

// SP is the register conventionally used as the stack pointer.
const SP Reg = 15

// LineWords is the number of 64-bit words per cache line (64-byte lines).
const LineWords = 8

func (r Reg) String() string {
	if r == SP {
		return "sp"
	}
	return fmt.Sprintf("r%d", r)
}

// Op enumerates the instruction opcodes.
type Op uint8

// The opcode space. Def/use relationships for each opcode are reported by
// Instr.Defs and Instr.Uses and drive the backward-slicing analysis in
// package bolt.
const (
	// Nop does nothing. Patched-out instructions become Nops.
	Nop Op = iota
	// MovImm loads a 64-bit immediate: rd = imm.
	MovImm
	// Mov copies a register: rd = rs1.
	Mov
	// Add is three-operand addition: rd = rs1 + rs2.
	Add
	// AddImm adds an immediate: rd = rs1 + imm. RPG² encodes the prefetch
	// distance as the immediate of an AddImm, so runtime distance edits
	// rewrite exactly this field.
	AddImm
	// Sub is three-operand subtraction: rd = rs1 - rs2.
	Sub
	// SubImm subtracts an immediate: rd = rs1 - imm.
	SubImm
	// Mul is three-operand multiplication: rd = rs1 * rs2.
	Mul
	// MulImm multiplies by an immediate: rd = rs1 * imm.
	MulImm
	// ShlImm shifts left by an immediate: rd = rs1 << imm.
	ShlImm
	// ShrImm shifts right (logical) by an immediate: rd = rs1 >> imm.
	ShrImm
	// AndImm masks with an immediate: rd = rs1 & imm.
	AndImm
	// Min computes rd = min(rs1, rs2) treating values as unsigned.
	Min
	// Load reads memory: rd = mem[rs1 + rs2 + imm]. Rs2 may be NoReg.
	Load
	// Store writes memory: mem[rs1 + rs2 + imm] = rd. Rs2 may be NoReg.
	Store
	// Prefetch requests the line containing mem[rs1 + rs2 + imm] without
	// reading data or faulting; it is an architectural NOP.
	Prefetch
	// Br conditionally branches to Target when Cond holds of (rs1, rs2).
	Br
	// BrImm conditionally branches to Target when Cond holds of (rs1, imm).
	BrImm
	// Jmp unconditionally branches to Target.
	Jmp
	// Call pushes the return PC on the stack and jumps to Target. Call
	// sites are what RPG² patches when redirecting f0 to f1.
	Call
	// Ret pops a return PC from the stack and jumps to it.
	Ret
	// Push spills a register: sp -= 1; mem[sp] = rs1.
	Push
	// Pop reloads a register: rd = mem[sp]; sp += 1.
	Pop
	// InitDone signals the end of the program's initialisation phase.
	// The paper modifies each benchmark to emit this signal so that
	// profiling skips the init phase (§4.1).
	InitDone
	// Halt terminates the thread.
	Halt
	opCount
)

var opNames = [opCount]string{
	Nop: "nop", MovImm: "movi", Mov: "mov", Add: "add", AddImm: "addi",
	Sub: "sub", SubImm: "subi", Mul: "mul", MulImm: "muli", ShlImm: "shli",
	ShrImm: "shri", AndImm: "andi", Min: "min", Load: "load", Store: "store",
	Prefetch: "prefetch", Br: "br", BrImm: "bri", Jmp: "jmp", Call: "call",
	Ret: "ret", Push: "push", Pop: "pop", InitDone: "initdone", Halt: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NoReg marks an unused register slot in an instruction.
const NoReg Reg = 0xFF

// Cond enumerates branch conditions.
type Cond uint8

// Branch conditions compare two unsigned 64-bit values.
const (
	// Always is used by Jmp-like encodings; Br with Always always takes.
	Always Cond = iota
	// EQ branches when rs1 == rs2 (or imm).
	EQ
	// NE branches when rs1 != rs2 (or imm).
	NE
	// LT branches when rs1 < rs2 (unsigned).
	LT
	// GE branches when rs1 >= rs2 (unsigned). RPG²'s bounds checks invert
	// a loop latch's LT into GE (§3.2.3).
	GE
	// LE branches when rs1 <= rs2 (unsigned).
	LE
	// GT branches when rs1 > rs2 (unsigned).
	GT
)

func (c Cond) String() string {
	switch c {
	case Always:
		return "always"
	case EQ:
		return "eq"
	case NE:
		return "ne"
	case LT:
		return "lt"
	case GE:
		return "ge"
	case LE:
		return "le"
	case GT:
		return "gt"
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Holds reports whether the condition is satisfied by the pair (a, b).
func (c Cond) Holds(a, b uint64) bool {
	switch c {
	case Always:
		return true
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case GE:
		return a >= b
	case LE:
		return a <= b
	case GT:
		return a > b
	}
	return false
}

// Invert returns the negation of the condition, used when RPG² copies a loop
// latch condition into a prefetch kernel bounds check (§3.2.3).
func (c Cond) Invert() Cond {
	switch c {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case GE:
		return LT
	case LE:
		return GT
	case GT:
		return LE
	}
	return c
}

// Instr is a single decoded instruction. PCs are indices into a text segment
// ([]Instr); Target is an absolute PC for control transfers.
type Instr struct {
	Op     Op
	Cond   Cond
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Imm    int64
	Target int
}

// MakeNop returns an instruction that does nothing.
func MakeNop() Instr {
	return Instr{Op: Nop, Rd: NoReg, Rs1: NoReg, Rs2: NoReg}
}

// Defs returns the register written by the instruction, or NoReg.
func (in Instr) Defs() Reg {
	switch in.Op {
	case MovImm, Mov, Add, AddImm, Sub, SubImm, Mul, MulImm,
		ShlImm, ShrImm, AndImm, Min, Load, Pop:
		return in.Rd
	}
	return NoReg
}

// Uses appends the registers read by the instruction to dst and returns it.
// Push/Pop/Call/Ret implicitly use SP; the implicit use is included so that
// slicing and liveness remain conservative.
func (in Instr) Uses(dst []Reg) []Reg {
	switch in.Op {
	case Mov:
		dst = append(dst, in.Rs1)
	case Add, Sub, Mul, Min:
		dst = append(dst, in.Rs1, in.Rs2)
	case AddImm, SubImm, MulImm, ShlImm, ShrImm, AndImm:
		dst = append(dst, in.Rs1)
	case Load, Prefetch:
		dst = append(dst, in.Rs1)
		if in.Rs2 != NoReg {
			dst = append(dst, in.Rs2)
		}
	case Store:
		dst = append(dst, in.Rd, in.Rs1)
		if in.Rs2 != NoReg {
			dst = append(dst, in.Rs2)
		}
	case Br:
		dst = append(dst, in.Rs1, in.Rs2)
	case BrImm:
		dst = append(dst, in.Rs1)
	case Push:
		dst = append(dst, in.Rs1, SP)
	case Pop, Ret:
		dst = append(dst, SP)
	case Call:
		dst = append(dst, SP)
	}
	return dst
}

// IsMemRead reports whether the instruction reads data memory as a demand
// access (loads and pops, not prefetches).
func (in Instr) IsMemRead() bool { return in.Op == Load || in.Op == Pop || in.Op == Ret }

// IsMemWrite reports whether the instruction writes data memory.
func (in Instr) IsMemWrite() bool { return in.Op == Store || in.Op == Push || in.Op == Call }

// IsBranch reports whether the instruction may transfer control to Target.
func (in Instr) IsBranch() bool {
	switch in.Op {
	case Br, BrImm, Jmp, Call:
		return true
	}
	return false
}

// IsTerminator reports whether control never falls through to the next
// instruction.
func (in Instr) IsTerminator() bool {
	switch in.Op {
	case Jmp, Ret, Halt:
		return true
	case Br, BrImm:
		return in.Cond == Always
	}
	return false
}

// String renders the instruction in a readable assembly-like syntax.
func (in Instr) String() string {
	idx := func() string {
		if in.Rs2 != NoReg {
			return fmt.Sprintf("[%s+%s%+d]", in.Rs1, in.Rs2, in.Imm)
		}
		return fmt.Sprintf("[%s%+d]", in.Rs1, in.Imm)
	}
	switch in.Op {
	case Nop:
		return "nop"
	case MovImm:
		return fmt.Sprintf("movi %s, %d", in.Rd, in.Imm)
	case Mov:
		return fmt.Sprintf("mov %s, %s", in.Rd, in.Rs1)
	case Add, Sub, Mul, Min:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	case AddImm, SubImm, MulImm, ShlImm, ShrImm, AndImm:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case Load:
		return fmt.Sprintf("load %s, %s", in.Rd, idx())
	case Store:
		return fmt.Sprintf("store %s, %s", idx(), in.Rd)
	case Prefetch:
		return fmt.Sprintf("prefetch %s", idx())
	case Br:
		return fmt.Sprintf("br.%s %s, %s, @%d", in.Cond, in.Rs1, in.Rs2, in.Target)
	case BrImm:
		return fmt.Sprintf("bri.%s %s, %d, @%d", in.Cond, in.Rs1, in.Imm, in.Target)
	case Jmp:
		return fmt.Sprintf("jmp @%d", in.Target)
	case Call:
		return fmt.Sprintf("call @%d", in.Target)
	case Ret:
		return "ret"
	case Push:
		return fmt.Sprintf("push %s", in.Rs1)
	case Pop:
		return fmt.Sprintf("pop %s", in.Rd)
	case InitDone:
		return "initdone"
	case Halt:
		return "halt"
	}
	return fmt.Sprintf("%s rd=%s rs1=%s rs2=%s imm=%d @%d", in.Op, in.Rd, in.Rs1, in.Rs2, in.Imm, in.Target)
}
