package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCondHolds(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b uint64
		want bool
	}{
		{Always, 0, 0, true},
		{EQ, 5, 5, true}, {EQ, 5, 6, false},
		{NE, 5, 6, true}, {NE, 5, 5, false},
		{LT, 4, 5, true}, {LT, 5, 5, false}, {LT, 6, 5, false},
		{GE, 5, 5, true}, {GE, 6, 5, true}, {GE, 4, 5, false},
		{LE, 5, 5, true}, {LE, 4, 5, true}, {LE, 6, 5, false},
		{GT, 6, 5, true}, {GT, 5, 5, false},
	}
	for _, tc := range cases {
		if got := tc.c.Holds(tc.a, tc.b); got != tc.want {
			t.Errorf("%v.Holds(%d,%d) = %v, want %v", tc.c, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCondInvertIsInvolution(t *testing.T) {
	for c := Always; c <= GT; c++ {
		if got := c.Invert().Invert(); got != c {
			t.Errorf("double-invert of %v = %v", c, got)
		}
	}
}

// Property: for comparison conditions, exactly one of c and c.Invert()
// holds for any pair of values.
func TestCondInvertComplementary(t *testing.T) {
	f := func(a, b uint64, raw uint8) bool {
		c := Cond(raw%6) + EQ // EQ..GT
		return c.Holds(a, b) != c.Invert().Holds(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefsAndUses(t *testing.T) {
	var buf []Reg
	cases := []struct {
		in   Instr
		defs Reg
		uses []Reg
	}{
		{Instr{Op: MovImm, Rd: 3}, 3, nil},
		{Instr{Op: Mov, Rd: 1, Rs1: 2}, 1, []Reg{2}},
		{Instr{Op: Add, Rd: 1, Rs1: 2, Rs2: 3}, 1, []Reg{2, 3}},
		{Instr{Op: AddImm, Rd: 1, Rs1: 2}, 1, []Reg{2}},
		{Instr{Op: Load, Rd: 1, Rs1: 2, Rs2: 3}, 1, []Reg{2, 3}},
		{Instr{Op: Load, Rd: 1, Rs1: 2, Rs2: NoReg}, 1, []Reg{2}},
		{Instr{Op: Store, Rd: 4, Rs1: 2, Rs2: NoReg}, NoReg, []Reg{4, 2}},
		{Instr{Op: Prefetch, Rs1: 2, Rs2: 5}, NoReg, []Reg{2, 5}},
		{Instr{Op: Br, Rs1: 1, Rs2: 2}, NoReg, []Reg{1, 2}},
		{Instr{Op: BrImm, Rs1: 1}, NoReg, []Reg{1}},
		{Instr{Op: Push, Rs1: 7}, NoReg, []Reg{7, SP}},
		{Instr{Op: Pop, Rd: 7}, 7, []Reg{SP}},
		{Instr{Op: Halt}, NoReg, nil},
	}
	for _, tc := range cases {
		if got := tc.in.Defs(); got != tc.defs {
			t.Errorf("%v Defs = %v, want %v", tc.in, got, tc.defs)
		}
		buf = tc.in.Uses(buf[:0])
		if len(buf) != len(tc.uses) {
			t.Errorf("%v Uses = %v, want %v", tc.in, buf, tc.uses)
			continue
		}
		for i := range buf {
			if buf[i] != tc.uses[i] {
				t.Errorf("%v Uses[%d] = %v, want %v", tc.in, i, buf[i], tc.uses[i])
			}
		}
	}
}

func TestTerminators(t *testing.T) {
	if !(Instr{Op: Jmp}).IsTerminator() {
		t.Error("Jmp should be a terminator")
	}
	if (Instr{Op: Br, Cond: LT}).IsTerminator() {
		t.Error("conditional Br is not a terminator")
	}
	if !(Instr{Op: Ret}).IsTerminator() || !(Instr{Op: Halt}).IsTerminator() {
		t.Error("Ret and Halt are terminators")
	}
	if !(Instr{Op: Call}).IsBranch() {
		t.Error("Call transfers control")
	}
}

func buildTestBinary(t *testing.T) *Binary {
	t.Helper()
	main := NewAsm("main")
	main.MovImm(0, 3).
		Call("double").
		Halt()
	dbl := NewAsm("double")
	dbl.Add(0, 0, 0).Ret()
	bin, err := NewProgram("main").Add(main).Add(dbl).Link()
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return bin
}

func TestProgramLink(t *testing.T) {
	bin := buildTestBinary(t)
	if len(bin.Text) != 5 {
		t.Fatalf("text length %d, want 5", len(bin.Text))
	}
	entry, err := bin.Entry()
	if err != nil || entry != 0 {
		t.Fatalf("Entry = %d, %v", entry, err)
	}
	f, ok := bin.Func("double")
	if !ok || f.Entry != 3 || f.Size != 2 {
		t.Fatalf("double = %+v", f)
	}
	if bin.Text[1].Op != Call || bin.Text[1].Target != 3 {
		t.Fatalf("call not linked: %v", bin.Text[1])
	}
	if g, ok := bin.FuncAt(4); !ok || g.Name != "double" {
		t.Fatalf("FuncAt(4) = %v %v", g, ok)
	}
	if _, ok := bin.FuncAt(99); ok {
		t.Fatal("FuncAt out of range should fail")
	}
}

func TestLinkErrors(t *testing.T) {
	// Undefined label.
	a := NewAsm("f")
	a.Jmp("nowhere")
	if _, err := NewProgram("f").Add(a).Link(); err == nil {
		t.Error("undefined label should fail")
	}
	// Undefined callee.
	b := NewAsm("f")
	b.Call("ghost").Ret()
	if _, err := NewProgram("f").Add(b).Link(); err == nil {
		t.Error("undefined callee should fail")
	}
	// Duplicate function.
	c1, c2 := NewAsm("f"), NewAsm("f")
	c1.Ret()
	c2.Ret()
	if _, err := NewProgram("f").Add(c1).Add(c2).Link(); err == nil {
		t.Error("duplicate function should fail")
	}
	// Missing entry.
	d := NewAsm("g")
	d.Ret()
	if _, err := NewProgram("main").Add(d).Link(); err == nil {
		t.Error("missing entry should fail")
	}
}

func TestValidateCatchesBadTargets(t *testing.T) {
	bin := buildTestBinary(t)
	bad := bin.Clone()
	bad.Text[1].Target = 999
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range target should fail validation")
	}
	bad2 := bin.Clone()
	bad2.Text[1].Target = 4 // not a function entry
	if err := bad2.Validate(); err == nil {
		t.Error("call to non-entry should fail validation")
	}
}

func TestCloneIsDeep(t *testing.T) {
	bin := buildTestBinary(t)
	cp := bin.Clone()
	cp.Text[0].Imm = 42
	cp.Funcs[0].Name = "mutated"
	if bin.Text[0].Imm == 42 || bin.Funcs[0].Name == "mutated" {
		t.Fatal("Clone shares state with the original")
	}
}

func TestDisassembleMentionsEveryFunction(t *testing.T) {
	bin := buildTestBinary(t)
	dis := bin.Disassemble()
	for _, fn := range []string{"main:", "double:"} {
		if !strings.Contains(dis, fn) {
			t.Errorf("disassembly missing %q:\n%s", fn, dis)
		}
	}
	if !strings.Contains(dis, "call @3") {
		t.Errorf("disassembly missing call:\n%s", dis)
	}
}

func TestLabelOffset(t *testing.T) {
	a := NewAsm("f")
	a.MovImm(0, 1)
	a.Label("here")
	a.Halt()
	if off := a.LabelOffset("here"); off != 1 {
		t.Fatalf("LabelOffset = %d, want 1", off)
	}
	if off := a.LabelOffset("missing"); off != -1 {
		t.Fatalf("missing label = %d, want -1", off)
	}
}

func TestInstrStringCoversOpcodes(t *testing.T) {
	for op := Nop; op < opCount; op++ {
		in := Instr{Op: op, Rd: 1, Rs1: 2, Rs2: 3, Imm: 4, Target: 5}
		s := in.String()
		if s == "" || strings.Contains(s, "op(") {
			t.Errorf("opcode %d has no string form: %q", op, s)
		}
	}
}
