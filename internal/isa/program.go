package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Function describes one function's extent inside a Binary's text segment.
// PCs in [Entry, Entry+Size) belong to the function.
type Function struct {
	Name  string
	Entry int
	Size  int
}

// Contains reports whether the global PC lies within the function.
func (f Function) Contains(pc int) bool { return pc >= f.Entry && pc < f.Entry+f.Size }

// Binary is the executable artifact the simulated loader consumes: a flat
// text segment of instructions plus a symbol table. It is the analogue of an
// ELF executable; package bolt produces rewritten Binaries from it.
type Binary struct {
	// Text is the flat instruction stream. Control-flow targets are
	// absolute indices into Text.
	Text []Instr
	// Funcs lists the functions, sorted by Entry.
	Funcs []Function
	// EntryName names the function where execution begins.
	EntryName string
}

// Entry returns the PC of the binary's entry function.
func (b *Binary) Entry() (int, error) {
	f, ok := b.Func(b.EntryName)
	if !ok {
		return 0, fmt.Errorf("isa: binary has no entry function %q", b.EntryName)
	}
	return f.Entry, nil
}

// Func looks up a function by name.
func (b *Binary) Func(name string) (Function, bool) {
	for _, f := range b.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return Function{}, false
}

// FuncAt returns the function containing the global PC.
func (b *Binary) FuncAt(pc int) (Function, bool) {
	i := sort.Search(len(b.Funcs), func(i int) bool { return b.Funcs[i].Entry > pc })
	if i == 0 {
		return Function{}, false
	}
	f := b.Funcs[i-1]
	if !f.Contains(pc) {
		return Function{}, false
	}
	return f, true
}

// Clone returns a deep copy of the binary. Rewriters copy before mutating so
// the original binary remains intact (RPG² keeps f0 in place for rollback).
func (b *Binary) Clone() *Binary {
	nb := &Binary{
		Text:      append([]Instr(nil), b.Text...),
		Funcs:     append([]Function(nil), b.Funcs...),
		EntryName: b.EntryName,
	}
	return nb
}

// Disassemble renders the binary's text segment with function headers, for
// debugging and golden tests.
func (b *Binary) Disassemble() string {
	var sb strings.Builder
	for _, f := range b.Funcs {
		fmt.Fprintf(&sb, "%s:\n", f.Name)
		for pc := f.Entry; pc < f.Entry+f.Size && pc < len(b.Text); pc++ {
			fmt.Fprintf(&sb, "  %4d  %s\n", pc, b.Text[pc])
		}
	}
	return sb.String()
}

// Validate checks structural invariants: functions are sorted and
// non-overlapping, branch targets land inside the text segment, and calls
// target function entries.
func (b *Binary) Validate() error {
	end := 0
	for i, f := range b.Funcs {
		if f.Entry < end {
			return fmt.Errorf("isa: function %q overlaps previous (entry %d < %d)", f.Name, f.Entry, end)
		}
		if f.Size <= 0 {
			return fmt.Errorf("isa: function %q has size %d", f.Name, f.Size)
		}
		end = f.Entry + f.Size
		if end > len(b.Text) {
			return fmt.Errorf("isa: function %q extends past text (end %d > %d)", f.Name, end, len(b.Text))
		}
		_ = i
	}
	entries := make(map[int]bool, len(b.Funcs))
	for _, f := range b.Funcs {
		entries[f.Entry] = true
	}
	for pc, in := range b.Text {
		if in.IsBranch() {
			if in.Target < 0 || in.Target >= len(b.Text) {
				return fmt.Errorf("isa: pc %d (%s) branches outside text", pc, in)
			}
			if in.Op == Call && !entries[in.Target] {
				return fmt.Errorf("isa: pc %d calls %d which is not a function entry", pc, in.Target)
			}
		}
	}
	return nil
}

// Asm assembles a single function from labeled instructions. Branch targets
// are symbolic labels resolved at Program link time; call targets are
// function names.
type Asm struct {
	name      string
	code      []Instr
	labels    map[string]int
	branchFix map[int]string // instruction index -> label
	callFix   map[int]string // instruction index -> function name
}

// NewAsm starts assembling a function with the given name.
func NewAsm(name string) *Asm {
	return &Asm{
		name:      name,
		labels:    make(map[string]int),
		branchFix: make(map[int]string),
		callFix:   make(map[int]string),
	}
}

// Label binds a label to the next emitted instruction. Labels also serve as
// markers: LabelOffset recovers their position after assembly.
func (a *Asm) Label(name string) *Asm {
	a.labels[name] = len(a.code)
	return a
}

// LabelOffset returns a label's instruction offset within the function, or
// -1 if undefined.
func (a *Asm) LabelOffset(name string) int {
	off, ok := a.labels[name]
	if !ok {
		return -1
	}
	return off
}

// Emit appends a raw instruction.
func (a *Asm) Emit(in Instr) *Asm {
	a.code = append(a.code, in)
	return a
}

// MovImm emits rd = imm.
func (a *Asm) MovImm(rd Reg, imm int64) *Asm {
	return a.Emit(Instr{Op: MovImm, Rd: rd, Rs1: NoReg, Rs2: NoReg, Imm: imm})
}

// Mov emits rd = rs.
func (a *Asm) Mov(rd, rs Reg) *Asm {
	return a.Emit(Instr{Op: Mov, Rd: rd, Rs1: rs, Rs2: NoReg})
}

// Add emits rd = rs1 + rs2.
func (a *Asm) Add(rd, rs1, rs2 Reg) *Asm {
	return a.Emit(Instr{Op: Add, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// AddImm emits rd = rs1 + imm.
func (a *Asm) AddImm(rd, rs1 Reg, imm int64) *Asm {
	return a.Emit(Instr{Op: AddImm, Rd: rd, Rs1: rs1, Rs2: NoReg, Imm: imm})
}

// Sub emits rd = rs1 - rs2.
func (a *Asm) Sub(rd, rs1, rs2 Reg) *Asm {
	return a.Emit(Instr{Op: Sub, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// SubImm emits rd = rs1 - imm.
func (a *Asm) SubImm(rd, rs1 Reg, imm int64) *Asm {
	return a.Emit(Instr{Op: SubImm, Rd: rd, Rs1: rs1, Rs2: NoReg, Imm: imm})
}

// Mul emits rd = rs1 * rs2.
func (a *Asm) Mul(rd, rs1, rs2 Reg) *Asm {
	return a.Emit(Instr{Op: Mul, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// MulImm emits rd = rs1 * imm.
func (a *Asm) MulImm(rd, rs1 Reg, imm int64) *Asm {
	return a.Emit(Instr{Op: MulImm, Rd: rd, Rs1: rs1, Rs2: NoReg, Imm: imm})
}

// ShrImm emits rd = rs1 >> imm.
func (a *Asm) ShrImm(rd, rs1 Reg, imm int64) *Asm {
	return a.Emit(Instr{Op: ShrImm, Rd: rd, Rs1: rs1, Rs2: NoReg, Imm: imm})
}

// AndImm emits rd = rs1 & imm.
func (a *Asm) AndImm(rd, rs1 Reg, imm int64) *Asm {
	return a.Emit(Instr{Op: AndImm, Rd: rd, Rs1: rs1, Rs2: NoReg, Imm: imm})
}

// Min emits rd = min(rs1, rs2).
func (a *Asm) Min(rd, rs1, rs2 Reg) *Asm {
	return a.Emit(Instr{Op: Min, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Load emits rd = mem[base + imm].
func (a *Asm) Load(rd, base Reg, imm int64) *Asm {
	return a.Emit(Instr{Op: Load, Rd: rd, Rs1: base, Rs2: NoReg, Imm: imm})
}

// LoadIdx emits rd = mem[base + index + imm].
func (a *Asm) LoadIdx(rd, base, index Reg, imm int64) *Asm {
	return a.Emit(Instr{Op: Load, Rd: rd, Rs1: base, Rs2: index, Imm: imm})
}

// Store emits mem[base + imm] = rs.
func (a *Asm) Store(base Reg, imm int64, rs Reg) *Asm {
	return a.Emit(Instr{Op: Store, Rd: rs, Rs1: base, Rs2: NoReg, Imm: imm})
}

// StoreIdx emits mem[base + index + imm] = rs.
func (a *Asm) StoreIdx(base, index Reg, imm int64, rs Reg) *Asm {
	return a.Emit(Instr{Op: Store, Rd: rs, Rs1: base, Rs2: index, Imm: imm})
}

// Prefetch emits a software prefetch of mem[base + imm].
func (a *Asm) Prefetch(base Reg, imm int64) *Asm {
	return a.Emit(Instr{Op: Prefetch, Rd: NoReg, Rs1: base, Rs2: NoReg, Imm: imm})
}

// PrefetchIdx emits a software prefetch of mem[base + index + imm].
func (a *Asm) PrefetchIdx(base, index Reg, imm int64) *Asm {
	return a.Emit(Instr{Op: Prefetch, Rd: NoReg, Rs1: base, Rs2: index, Imm: imm})
}

// Br emits a conditional branch comparing two registers.
func (a *Asm) Br(c Cond, rs1, rs2 Reg, label string) *Asm {
	a.branchFix[len(a.code)] = label
	return a.Emit(Instr{Op: Br, Cond: c, Rd: NoReg, Rs1: rs1, Rs2: rs2})
}

// BrImm emits a conditional branch comparing a register to an immediate.
func (a *Asm) BrImm(c Cond, rs1 Reg, imm int64, label string) *Asm {
	a.branchFix[len(a.code)] = label
	return a.Emit(Instr{Op: BrImm, Cond: c, Rd: NoReg, Rs1: rs1, Rs2: NoReg, Imm: imm})
}

// Jmp emits an unconditional branch.
func (a *Asm) Jmp(label string) *Asm {
	a.branchFix[len(a.code)] = label
	return a.Emit(Instr{Op: Jmp, Rd: NoReg, Rs1: NoReg, Rs2: NoReg})
}

// Call emits a call to the named function, resolved at link time.
func (a *Asm) Call(fn string) *Asm {
	a.callFix[len(a.code)] = fn
	return a.Emit(Instr{Op: Call, Rd: NoReg, Rs1: NoReg, Rs2: NoReg})
}

// Ret emits a return.
func (a *Asm) Ret() *Asm { return a.Emit(Instr{Op: Ret, Rd: NoReg, Rs1: NoReg, Rs2: NoReg}) }

// Push emits a register spill.
func (a *Asm) Push(rs Reg) *Asm { return a.Emit(Instr{Op: Push, Rd: NoReg, Rs1: rs, Rs2: NoReg}) }

// Pop emits a register reload.
func (a *Asm) Pop(rd Reg) *Asm { return a.Emit(Instr{Op: Pop, Rd: rd, Rs1: NoReg, Rs2: NoReg}) }

// InitDone emits the end-of-initialisation marker.
func (a *Asm) InitDone() *Asm {
	return a.Emit(Instr{Op: InitDone, Rd: NoReg, Rs1: NoReg, Rs2: NoReg})
}

// Halt emits a thread-terminating instruction.
func (a *Asm) Halt() *Asm { return a.Emit(Instr{Op: Halt, Rd: NoReg, Rs1: NoReg, Rs2: NoReg}) }

// Program links assembled functions into a Binary.
type Program struct {
	funcs []*Asm
	entry string
}

// NewProgram creates an empty program whose entry point is the named
// function.
func NewProgram(entry string) *Program { return &Program{entry: entry} }

// Add appends an assembled function. Functions are laid out in the order
// added.
func (p *Program) Add(a *Asm) *Program {
	p.funcs = append(p.funcs, a)
	return p
}

// Link resolves labels and call targets and produces the Binary.
func (p *Program) Link() (*Binary, error) {
	b := &Binary{EntryName: p.entry}
	entries := make(map[string]int, len(p.funcs))
	base := 0
	for _, a := range p.funcs {
		if _, dup := entries[a.name]; dup {
			return nil, fmt.Errorf("isa: duplicate function %q", a.name)
		}
		entries[a.name] = base
		b.Funcs = append(b.Funcs, Function{Name: a.name, Entry: base, Size: len(a.code)})
		base += len(a.code)
	}
	for _, a := range p.funcs {
		fbase := entries[a.name]
		for i, in := range a.code {
			if lbl, ok := a.branchFix[i]; ok {
				tgt, ok := a.labels[lbl]
				if !ok {
					return nil, fmt.Errorf("isa: function %q: undefined label %q", a.name, lbl)
				}
				in.Target = fbase + tgt
			}
			if fn, ok := a.callFix[i]; ok {
				tgt, ok := entries[fn]
				if !ok {
					return nil, fmt.Errorf("isa: function %q: call to undefined function %q", a.name, fn)
				}
				in.Target = tgt
			}
			b.Text = append(b.Text, in)
		}
	}
	if _, ok := entries[p.entry]; !ok {
		return nil, fmt.Errorf("isa: entry function %q not defined", p.entry)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// MustLink links and panics on error; intended for statically known-good
// programs such as the bundled workloads.
func (p *Program) MustLink() *Binary {
	b, err := p.Link()
	if err != nil {
		panic(err)
	}
	return b
}
