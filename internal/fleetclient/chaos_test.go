// Chaos-layer client tests: the deterministic retry jitter, the opt-in
// Retry-After honoring lane, and the fault-injecting transport.
package fleetclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"rpg2/internal/faults"
	"rpg2/internal/fleet"
)

// TestJitterDeterministicPerSeed: jitter is hash-derived from (seed, draw
// ordinal), so two clients with the same seed replay the same wait
// sequence, and every draw stays inside [d/2, d].
func TestJitterDeterministicPerSeed(t *testing.T) {
	const d = 100 * time.Millisecond
	a := New(Config{BaseURL: "http://unused", Seed: 5})
	b := New(Config{BaseURL: "http://unused", Seed: 5})
	c := New(Config{BaseURL: "http://unused", Seed: 6})
	differs := false
	for i := 0; i < 64; i++ {
		ja, jb, jc := a.jitter(d), b.jitter(d), c.jitter(d)
		if ja != jb {
			t.Fatalf("draw %d: same seed diverged: %s vs %s", i, ja, jb)
		}
		if ja < d/2 || ja > d {
			t.Fatalf("draw %d: jitter %s outside [%s, %s]", i, ja, d/2, d)
		}
		if ja != jc {
			differs = true
		}
	}
	if !differs {
		t.Fatal("64 draws from different seeds never diverged")
	}
}

// TestOverloadWaitNeverUndercutsHint: the honored form of Retry-After is
// at least the hint — jitter only ever stretches the wait.
func TestOverloadWaitNeverUndercutsHint(t *testing.T) {
	c := New(Config{BaseURL: "http://unused", Seed: 9})
	const hint = 2 * time.Second
	for i := 0; i < 64; i++ {
		if w := c.overloadWait(hint); w < hint || w > hint+hint/2 {
			t.Fatalf("draw %d: wait %s outside [%s, %s]", i, w, hint, hint+hint/2)
		}
	}
}

// TestOverloadRetriesHonorRetryAfter: with the opt-in budget, the client
// absorbs a 429 by waiting out the daemon's hint and resending, instead
// of surfacing Overloaded.
func TestOverloadRetriesHonorRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"queue full"}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":7,"state":"queued"}`))
	}))
	defer ts.Close()

	cli := New(Config{BaseURL: ts.URL, OverloadRetries: 1, Seed: 3})
	start := time.Now()
	id, err := cli.Submit(context.Background(), fleet.SpecRecord{Bench: "is"})
	if err != nil {
		t.Fatalf("Submit with overload budget failed: %v", err)
	}
	if id != 7 {
		t.Fatalf("Submit returned id %d, want 7", id)
	}
	if waited := time.Since(start); waited < time.Second {
		t.Fatalf("client came back after %s, before the 1s Retry-After hint", waited)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("server saw %d requests, want 2", n)
	}
}

// TestOverloadBudgetExhaustedSurfaces: once the budget runs out the
// original contract returns — *Overloaded surfaces to the caller.
func TestOverloadBudgetExhaustedSurfaces(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"queue full"}`))
	}))
	defer ts.Close()

	cli := New(Config{BaseURL: ts.URL, OverloadRetries: 1, Seed: 3})
	_, err := cli.Submit(context.Background(), fleet.SpecRecord{Bench: "is"})
	var over *Overloaded
	if !errors.As(err, &over) {
		t.Fatalf("exhausted overload budget surfaced %v, want *Overloaded", err)
	}
}

// TestNetFaultTransportWired: Config.NetFaults must actually intercept
// the client's requests — an ErrorRate-1 injector fails every round trip
// with a recognizably injected error.
func TestNetFaultTransportWired(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	cli := New(Config{
		BaseURL:    ts.URL,
		MaxRetries: -1, // surface the first failure
		NetFaults:  faults.NewNet(faults.NetConfig{Seed: 1, ErrorRate: 1}),
	})
	_, err := cli.Health(context.Background())
	if err == nil {
		t.Fatal("ErrorRate-1 injector let a request through")
	}
	if !faults.InjectedNet(err) {
		t.Fatalf("transport failure %v is not marked as injected", err)
	}
}
