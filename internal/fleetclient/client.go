// Package fleetclient is the thin consumer side of the fleetd HTTP API:
// submit specs, poll sessions, fetch results, read the store, and follow
// the journal event stream. Transient failures (connection errors and
// 502/503/504) retry with capped exponential backoff; backpressure (429)
// surfaces immediately as *Overloaded carrying the daemon's Retry-After,
// because backing off longer than the server asked is the caller's policy
// decision, not the transport's.
package fleetclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"rpg2/internal/faults"
	"rpg2/internal/fleet"
	"rpg2/internal/fleetd"
)

// Config points a client at a daemon. Only BaseURL is required.
type Config struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8047".
	BaseURL string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
	// MaxRetries bounds transparent retries of transient failures per
	// request (default 4; negative disables retry).
	MaxRetries int
	// RetryBase and RetryCap shape the exponential backoff between
	// retries: attempt n waits RetryBase·2^(n-1), capped at RetryCap
	// (defaults 50ms and 1s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// PollInterval is Wait's sleep between status polls (default 25ms).
	PollInterval time.Duration
	// Seed drives the deterministic jitter spread over retry backoff and
	// Retry-After waits (default 1). The jitter is hash-derived from
	// (seed, draw ordinal) — no RNG — so the same seed and call order
	// reproduce the same waits exactly.
	Seed int64
	// OverloadRetries, when positive, makes the client absorb 429s itself:
	// it waits out the daemon's Retry-After hint (plus deterministic
	// jitter, never less than the hint) and resends, up to this many
	// times, before surfacing *Overloaded. Default 0 keeps the original
	// contract — backpressure surfaces immediately as the caller's policy
	// decision.
	OverloadRetries int
	// NetFaults wraps the transport in a deterministic client-side fault
	// injector (delays, injected connection errors, responses severed
	// mid-body). Nil leaves the transport untouched.
	NetFaults *faults.NetInjector
}

// Client calls one daemon. Safe for concurrent use.
type Client struct {
	cfg   Config
	draws atomic.Uint64
}

// New builds a client; zero-value config fields get defaults.
func New(cfg Config) *Client {
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 25 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.NetFaults != nil {
		// Clone the http.Client so the caller's copy stays fault-free.
		hc := *cfg.HTTP
		base := hc.Transport
		if base == nil {
			base = http.DefaultTransport
		}
		hc.Transport = cfg.NetFaults.Transport(base)
		cfg.HTTP = &hc
	}
	return &Client{cfg: cfg}
}

// Overloaded is a backpressure rejection: the daemon returned 429 and
// asked the caller to come back after RetryAfter.
type Overloaded struct {
	RetryAfter time.Duration
	Message    string
}

func (e *Overloaded) Error() string {
	return fmt.Sprintf("fleetd: overloaded (retry after %s): %s", e.RetryAfter, e.Message)
}

// APIError is any other non-2xx response.
type APIError struct {
	Code    int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fleetd: HTTP %d: %s", e.Code, e.Message)
}

// ErrNotFound matches 404 responses via errors.Is.
var ErrNotFound = errors.New("fleetd: not found")

// Is makes errors.Is(err, ErrNotFound) work on 404 APIErrors.
func (e *APIError) Is(target error) bool {
	return target == ErrNotFound && e.Code == http.StatusNotFound
}

// transientCode reports response codes worth retrying: the daemon (or a
// proxy in front of it) was unreachable or mid-restart, not wrong.
func transientCode(code int) bool {
	return code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// jitter spreads a wait over [d/2, d], hash-derived from the client's
// seed and a monotone draw counter — deterministic replay, no RNG, and no
// synchronized thundering herd when many clients share a daemon.
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	f := faults.Hash01(uint64(c.cfg.Seed), c.draws.Add(1), 31)
	return d/2 + time.Duration(f*float64(d/2))
}

// overloadWait is the honored form of a Retry-After hint: at least the
// hint, plus up to half again of deterministic jitter so retries from a
// fleet of clients don't land on the same tick the daemon suggested.
func (c *Client) overloadWait(after time.Duration) time.Duration {
	if after <= 0 {
		after = time.Second
	}
	f := faults.Hash01(uint64(c.cfg.Seed), c.draws.Add(1), 32)
	return after + time.Duration(f*float64(after)/2)
}

// sleepFor sleeps out d, honouring ctx.
func (c *Client) sleepFor(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// backoff sleeps out attempt n's capped, jittered exponential wait.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	d := c.cfg.RetryBase << (attempt - 1)
	if d > c.cfg.RetryCap || d <= 0 {
		d = c.cfg.RetryCap
	}
	return c.sleepFor(ctx, c.jitter(d))
}

// parseRetryAfter resolves a Retry-After header, which RFC 9110 allows in
// two forms: non-negative delta-seconds ("3") and an HTTP-date ("Wed, 21
// Oct 2015 07:28:00 GMT" — what proxies often emit). A date is converted
// to the delta from now. Malformed values, and dates already in the past,
// report !ok so the caller falls back to its normal backoff default
// instead of a zero-length wait.
func parseRetryAfter(raw string, now time.Time) (time.Duration, bool) {
	if raw == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(raw); err == nil {
		if secs > 0 {
			return time.Duration(secs) * time.Second, true
		}
		return 0, false
	}
	if at, err := http.ParseTime(raw); err == nil {
		if d := at.Sub(now); d > 0 {
			return d, true
		}
	}
	return 0, false
}

// decodeErr extracts the {"error": ...} body of a non-2xx response.
func decodeErr(resp *http.Response) string {
	var ae struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
		return ae.Error
	}
	return resp.Status
}

// do runs one request with transient-failure retry, decoding a 2xx (or,
// when acceptAccepted, a 202) JSON body into out. Request bodies are byte
// slices so every retry resends the same payload.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any, acceptAccepted bool) (int, error) {
	var lastErr error
	attempt, overloads := 0, 0
	// retry charges one transient attempt and sleeps the jittered backoff;
	// it reports false when the retry budget is spent.
	retry := func(err error) (bool, error) {
		lastErr = err
		attempt++
		if attempt > c.cfg.MaxRetries {
			return false, nil
		}
		if serr := c.backoff(ctx, attempt); serr != nil {
			return false, serr
		}
		return true, nil
	}
	for {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
		if err != nil {
			return 0, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.cfg.HTTP.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return 0, ctx.Err()
			}
			if again, serr := retry(err); serr != nil {
				return 0, serr
			} else if again {
				continue
			}
			return 0, lastErr
		}
		code := resp.StatusCode
		switch {
		case code == http.StatusOK || (code == http.StatusAccepted && acceptAccepted):
			if out != nil {
				err = json.NewDecoder(resp.Body).Decode(out)
			}
			resp.Body.Close()
			if err != nil {
				return 0, fmt.Errorf("fleetd: decode response: %w", err)
			}
			return code, nil
		case code == http.StatusTooManyRequests:
			msg := decodeErr(resp)
			resp.Body.Close()
			after := time.Second
			if d, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
				after = d
			}
			over := &Overloaded{RetryAfter: after, Message: msg}
			// Overload retries are budgeted separately from transient ones:
			// honoring Retry-After is opt-in policy, not transport recovery.
			if overloads >= c.cfg.OverloadRetries {
				return 0, over
			}
			overloads++
			if serr := c.sleepFor(ctx, c.overloadWait(after)); serr != nil {
				return 0, serr
			}
		case transientCode(code):
			err := &APIError{Code: code, Message: decodeErr(resp)}
			resp.Body.Close()
			if again, serr := retry(err); serr != nil {
				return 0, serr
			} else if !again {
				return 0, lastErr
			}
		default:
			msg := decodeErr(resp)
			resp.Body.Close()
			return 0, &APIError{Code: code, Message: msg}
		}
	}
}

// Submit sends one spec (the fleet's WAL wire form) and returns the
// daemon-assigned session ID. A backpressure rejection returns
// *Overloaded; the submission was not admitted.
func (c *Client) Submit(ctx context.Context, spec fleet.SpecRecord) (int, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, err
	}
	var resp fleetd.SubmitResponse
	if _, err := c.do(ctx, http.MethodPost, "/v1/sessions", body, &resp, true); err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// Status polls one session.
func (c *Client) Status(ctx context.Context, id int) (fleetd.Status, error) {
	var st fleetd.Status
	_, err := c.do(ctx, http.MethodGet, "/v1/sessions/"+strconv.Itoa(id), nil, &st, false)
	return st, err
}

// Result fetches a session's result. ready is false (with an empty
// Outcome) while the session is still running.
func (c *Client) Result(ctx context.Context, id int) (out fleetd.Outcome, ready bool, err error) {
	path := "/v1/sessions/" + strconv.Itoa(id) + "/result"
	var raw json.RawMessage
	code, err := c.do(ctx, http.MethodGet, path, nil, &raw, true)
	if err != nil {
		return fleetd.Outcome{}, false, err
	}
	if code == http.StatusAccepted {
		return fleetd.Outcome{}, false, nil
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return fleetd.Outcome{}, false, err
	}
	return out, true, nil
}

// Wait polls until the session reaches a terminal state, then fetches its
// result. It is restart-tolerant by design: poll errors (the daemon dying
// and coming back with -resume) are absorbed and polling continues until
// ctx expires — the crash-recovery test drives a kill -9 straight through
// this loop.
func (c *Client) Wait(ctx context.Context, id int) (fleetd.Outcome, error) {
	t := time.NewTicker(c.cfg.PollInterval)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err == nil && st.Terminal {
			out, ready, rerr := c.Result(ctx, id)
			if rerr == nil && ready {
				return out, nil
			}
			// Terminal a moment ago but unfetchable now (daemon mid-
			// restart): fall through and poll again.
		} else if err != nil {
			// A session the daemon no longer knows will never resolve;
			// everything else (including connection errors while it
			// restarts) is worth out-waiting.
			if errors.Is(err, ErrNotFound) || ctx.Err() != nil {
				return fleetd.Outcome{}, err
			}
		}
		select {
		case <-ctx.Done():
			return fleetd.Outcome{}, ctx.Err()
		case <-t.C:
		}
	}
}

// Metrics fetches the fleet-wide snapshot.
func (c *Client) Metrics(ctx context.Context) (fleet.Snapshot, error) {
	var snap fleet.Snapshot
	_, err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &snap, false)
	return snap, err
}

// LookupResult is a store peek: the entry, and for translated lookups the
// sibling key it would seed from. Against a daemon running a sharded
// store, Shard is the shard the key routed to and Shards the layout
// width; both are absent for the single-shard store.
type LookupResult struct {
	Key    fleet.Key   `json:"key"`
	Entry  fleet.Entry `json:"entry"`
	Source *fleet.Key  `json:"source,omitempty"`
	Shard  *int        `json:"shard,omitempty"`
	Shards int         `json:"shards,omitempty"`
}

func storeQuery(k fleet.Key) string {
	q := url.Values{}
	q.Set("bench", k.Bench)
	if k.Input != "" {
		q.Set("input", k.Input)
	}
	if k.Machine != "" {
		q.Set("machine", k.Machine)
	}
	return q.Encode()
}

// Lookup peeks the profile store (read-only; consumes no reuse budget).
// A miss reports ErrNotFound.
func (c *Client) Lookup(ctx context.Context, k fleet.Key) (LookupResult, error) {
	var lr LookupResult
	_, err := c.do(ctx, http.MethodGet, "/v1/store/lookup?"+storeQuery(k), nil, &lr, false)
	return lr, err
}

// LookupTranslated peeks the cross-machine tier: the sibling entry a
// translated warm start would seed from. A miss reports ErrNotFound.
func (c *Client) LookupTranslated(ctx context.Context, k fleet.Key) (LookupResult, error) {
	var lr LookupResult
	_, err := c.do(ctx, http.MethodGet, "/v1/store/translated?"+storeQuery(k), nil, &lr, false)
	return lr, err
}

// Stream follows the daemon's journal from the cursor (events with
// Seq > since; -1 for everything), calling fn for each event in order. A
// dropped connection resumes from the last delivered Seq, so fn sees no
// gap and no duplicate across reconnects. Stream returns nil when the
// daemon drains and ends the stream cleanly, fn's error if fn fails, or
// ctx's error.
func (c *Client) Stream(ctx context.Context, since int, fn func(fleet.Event) error) error {
	cursor := since
	attempt := 0
	for {
		clean, err := c.streamOnce(ctx, &cursor, fn)
		switch {
		case err != nil && ctx.Err() == nil && !isStreamAbort(err):
			// Transport failure: back off and resume from the cursor.
			attempt++
			if attempt > c.cfg.MaxRetries {
				return err
			}
			if berr := c.backoff(ctx, attempt); berr != nil {
				return berr
			}
			continue
		case err != nil:
			return err
		case clean:
			return nil
		default:
			// Delivered events then hit EOF without a drain marker — the
			// connection died mid-stream. Resume; progress resets retries.
			attempt = 0
		}
	}
}

// errStreamAbort wraps fn's failure so Stream does not retry it.
type errStreamAbort struct{ err error }

func (e *errStreamAbort) Error() string { return e.err.Error() }
func (e *errStreamAbort) Unwrap() error { return e.err }

func isStreamAbort(err error) bool {
	var ab *errStreamAbort
	return errors.As(err, &ab)
}

// streamOnce runs one connection of the event stream. clean is true when
// the server ended the stream deliberately (drain): the response body
// reached EOF after a complete final event.
func (c *Client) streamOnce(ctx context.Context, cursor *int, fn func(fleet.Event) error) (clean bool, err error) {
	path := "/v1/events?since=" + strconv.Itoa(*cursor)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+path, nil)
	if err != nil {
		return false, err
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, &APIError{Code: resp.StatusCode, Message: decodeErr(resp)}
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var e fleet.Event
		if derr := dec.Decode(&e); derr != nil {
			if errors.Is(derr, io.EOF) {
				return true, nil
			}
			return false, derr
		}
		if e.Seq > *cursor {
			if ferr := fn(e); ferr != nil {
				return false, &errStreamAbort{ferr}
			}
			*cursor = e.Seq
		}
	}
}

// Health reports the daemon's liveness state ("ok" or "draining").
func (c *Client) Health(ctx context.Context) (string, error) {
	var h struct {
		Status string `json:"status"`
	}
	_, err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &h, false)
	return h.Status, err
}
