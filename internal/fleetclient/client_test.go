// Transport-layer tests against scripted HTTP stubs: the retry loop, the
// backpressure and not-found error surfaces — the parts of the client the
// daemon integration tests cannot isolate.
package fleetclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"rpg2/internal/fleet"
)

func fastClient(baseURL string, maxRetries int) *Client {
	return New(Config{
		BaseURL: baseURL, MaxRetries: maxRetries,
		RetryBase: time.Millisecond, RetryCap: 5 * time.Millisecond,
	})
}

// TestTransientRetry: 503s are retried with backoff until the daemon
// comes back; the submission then succeeds without the caller noticing.
func TestTransientRetry(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"restarting"}`, http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":7,"state":"queued"}`))
	}))
	defer ts.Close()

	id, err := fastClient(ts.URL, 4).Submit(context.Background(), fleet.SpecRecord{Bench: "is"})
	if err != nil {
		t.Fatalf("submit across two 503s: %v", err)
	}
	if id != 7 || calls.Load() != 3 {
		t.Fatalf("id = %d after %d calls, want 7 after 3", id, calls.Load())
	}
}

// TestRetryBudgetExhausted: a daemon that never recovers surfaces the
// final APIError after MaxRetries+1 attempts; negative MaxRetries means
// exactly one attempt.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	var apiErr *APIError
	if _, err := fastClient(ts.URL, 2).Submit(context.Background(), fleet.SpecRecord{Bench: "is"}); !errors.As(err, &apiErr) || apiErr.Code != http.StatusServiceUnavailable {
		t.Fatalf("exhausted retries = %v, want 503 APIError", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("made %d attempts, want 3 (1 + MaxRetries)", calls.Load())
	}

	calls.Store(0)
	if _, err := fastClient(ts.URL, -1).Submit(context.Background(), fleet.SpecRecord{Bench: "is"}); !errors.As(err, &apiErr) {
		t.Fatalf("retry-disabled submit = %v, want APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("retry-disabled client made %d attempts, want 1", calls.Load())
	}
}

// TestOverloadedNotRetried: a 429 is a backpressure decision, not a
// transient fault — it surfaces immediately with the daemon's Retry-After.
func TestOverloadedNotRetried(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"tenant queue full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	var over *Overloaded
	if _, err := fastClient(ts.URL, 4).Submit(context.Background(), fleet.SpecRecord{Bench: "is"}); !errors.As(err, &over) {
		t.Fatalf("429 surfaced as %v, want Overloaded", err)
	}
	if over.RetryAfter != 7*time.Second {
		t.Fatalf("Retry-After parsed as %s, want 7s", over.RetryAfter)
	}
	if calls.Load() != 1 {
		t.Fatalf("429 was retried (%d attempts)", calls.Load())
	}
}

// TestParseRetryAfter: both RFC 9110 forms resolve — delta-seconds and
// HTTP-date — and every malformed, zero, negative, or already-past value
// reports !ok so the caller falls back to its default wait instead of a
// zero-length one.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		raw  string
		want time.Duration
		ok   bool
	}{
		{"7", 7 * time.Second, true},
		{"0", 0, false},
		{"-3", 0, false},
		{now.Add(90 * time.Second).UTC().Format(http.TimeFormat), 90 * time.Second, true},
		{now.Add(-time.Minute).UTC().Format(http.TimeFormat), 0, false},
		{"soon", 0, false},
		{"1.5", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, ok := parseRetryAfter(c.raw, now)
		if ok != c.ok || got != c.want {
			t.Errorf("parseRetryAfter(%q) = %s, %v; want %s, %v", c.raw, got, ok, c.want, c.ok)
		}
	}
}

// TestOverloadedHTTPDateRetryAfter: a proxy-style HTTP-date Retry-After
// reaches the caller as a real duration, not the 1s fallback garbage the
// delta-seconds-only parser produced.
func TestOverloadedHTTPDateRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
		http.Error(w, `{"error":"tenant queue full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	var over *Overloaded
	if _, err := fastClient(ts.URL, 4).Submit(context.Background(), fleet.SpecRecord{Bench: "is"}); !errors.As(err, &over) {
		t.Fatalf("429 surfaced as %v, want Overloaded", err)
	}
	// The date is relative to a live clock; accept the window's slack.
	if over.RetryAfter < 25*time.Second || over.RetryAfter > 30*time.Second {
		t.Fatalf("HTTP-date Retry-After parsed as %s, want ~30s", over.RetryAfter)
	}
}

// TestNotFoundMatchesSentinel: 404s satisfy errors.Is(err, ErrNotFound)
// and are never retried.
func TestNotFoundMatchesSentinel(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"no session 9"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	if _, err := fastClient(ts.URL, 4).Status(context.Background(), 9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("404 = %v, want ErrNotFound", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("404 was retried (%d attempts)", calls.Load())
	}
}

// TestWaitAbsorbsOutages: Wait keeps polling through a daemon outage (the
// restart window of the crash test) and resolves once the daemon answers
// with a terminal state again.
func TestWaitAbsorbsOutages(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		switch {
		case n <= 3:
			http.Error(w, `{"error":"mid-restart"}`, http.StatusBadGateway)
		case r.URL.Path == "/v1/sessions/4/result":
			w.Write([]byte(`{"state":"done","warm":true}`))
		default:
			w.Write([]byte(`{"id":4,"state":"done","terminal":true,"warm":true}`))
		}
	}))
	defer ts.Close()

	cli := New(Config{BaseURL: ts.URL, MaxRetries: -1, PollInterval: time.Millisecond})
	out, err := cli.Wait(context.Background(), 4)
	if err != nil {
		t.Fatalf("wait across outage: %v", err)
	}
	if out.State != "done" || !out.Warm {
		t.Fatalf("outcome = %+v", out)
	}
}
