package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustAppend(t *testing.T, l *Log, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if err := l.Append([]byte(p)); err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
	}
}

func payloadsOf(t *testing.T, path string) []string {
	t.Helper()
	recs, _, err := ReadAll(path)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = string(r)
	}
	return out
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l, sal, err := Open(path, Config{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if !sal.Clean() || sal.Records != 0 {
		t.Fatalf("fresh log salvage = %v", sal)
	}
	mustAppend(t, l, `{"a":1}`, `{"b":2}`, `{"c":3}`)
	if l.Records() != 3 {
		t.Fatalf("Records = %d, want 3", l.Records())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, sal, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !sal.Clean() || sal.Records != 3 {
		t.Fatalf("reopen salvage = %v, want clean with 3 records", sal)
	}
	mustAppend(t, l2, `{"d":4}`)
	got := payloadsOf(t, path)
	want := []string{`{"a":1}`, `{"b":2}`, `{"c":3}`, `{"d":4}`}
	if len(got) != len(want) {
		t.Fatalf("payloads = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("payload %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestEmptyFileRecovers: a zero-byte file (crash before the header write
// reached disk) opens clean as an empty log.
func TestEmptyFileRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l, sal, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if !sal.Clean() || sal.Records != 0 {
		t.Fatalf("empty-file salvage = %v, want clean", sal)
	}
	mustAppend(t, l, "x")
	if got := payloadsOf(t, path); len(got) != 1 || got[0] != "x" {
		t.Fatalf("after append: %v", got)
	}
}

// TestTruncatedTailSalvage chops bytes off the final record: the valid
// prefix survives, the torn record is dropped and reported, and the log
// remains appendable.
func TestTruncatedTailSalvage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l, _, err := Open(path, Config{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "alpha", "beta", "gamma")
	l.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, sal, err := Open(path, Config{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if sal.Clean() || sal.Records != 2 || sal.DroppedRecords != 1 || sal.DroppedBytes == 0 {
		t.Fatalf("truncated-tail salvage = %+v, want 2 kept / 1 dropped", sal)
	}
	mustAppend(t, l2, "delta")
	l2.Close()
	got := payloadsOf(t, path)
	want := []string{"alpha", "beta", "delta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("payloads after salvage = %v, want %v", got, want)
		}
	}
}

// TestFlippedByteSalvage corrupts one byte in the middle of the file: the
// records before the flip survive, the flipped record and everything after
// it are dropped (an append-only log must not resynchronise past damage).
func TestFlippedByteSalvage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l, _, err := Open(path, Config{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "record-zero", "record-one", "record-two", "record-three")
	l.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside "record-one".
	i := bytes.Index(data, []byte("record-one"))
	data[i+7] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, sal, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "record-zero" {
		t.Fatalf("salvaged %d records, want just record-zero", len(recs))
	}
	if sal.Clean() || sal.Records != 1 || sal.DroppedRecords != 3 {
		t.Fatalf("flipped-byte salvage = %+v, want 1 kept / 3 dropped", sal)
	}
	if sal.Reason != "record failed checksum" {
		t.Fatalf("salvage reason = %q", sal.Reason)
	}

	// Open truncates the damage away for good.
	l2, _, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if got := payloadsOf(t, path); len(got) != 1 {
		t.Fatalf("after salvaging open: %v", got)
	}
}

// TestGarbageHeaderSalvage: a file that is not a WAL at all salvages to
// empty rather than yielding bogus records.
func TestGarbageHeaderSalvage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	if err := os.WriteFile(path, []byte("not a wal\nmore junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, sal, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if sal.Clean() || sal.Records != 0 || sal.DroppedBytes == 0 || sal.DroppedRecords != 2 {
		t.Fatalf("garbage-header salvage = %+v", sal)
	}
	mustAppend(t, l, "fresh")
	if got := payloadsOf(t, path); len(got) != 1 || got[0] != "fresh" {
		t.Fatalf("after reinit: %v", got)
	}
}

func TestAppendRejectsNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l, _, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("two\nlines")); err == nil {
		t.Fatal("Append accepted a payload with a raw newline")
	}
}

func TestAbortThenAppendFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l, _, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "kept")
	l.Abort()
	if err := l.Append([]byte("lost")); err == nil {
		t.Fatal("Append succeeded on an aborted log")
	}
	// The pre-abort write is still visible (same machine, OS page cache).
	if got := payloadsOf(t, path); len(got) != 1 || got[0] != "kept" {
		t.Fatalf("after abort: %v", got)
	}
}

func TestWriteAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.wal")
	want := [][]byte{[]byte(`{"seq":12}`), []byte(`{"k":"v"}`)}
	if err := WriteAtomic(path, want); err != nil {
		t.Fatal(err)
	}
	recs, sal, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sal.Clean() || len(recs) != 2 {
		t.Fatalf("snapshot salvage %v, %d records", sal, len(recs))
	}
	// Replacement leaves no .tmp behind and fully supersedes the old file.
	if err := WriteAtomic(path, [][]byte{[]byte("solo")}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
	if got := payloadsOf(t, path); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("after rewrite: %v", got)
	}
}

func TestSyncModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncOnClose, SyncInterval, SyncAlways} {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("%s.wal", mode))
		l, _, err := Open(path, Config{Sync: mode, Interval: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			mustAppend(t, l, fmt.Sprintf("r%d", i))
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if got := payloadsOf(t, path); len(got) != 5 {
			t.Fatalf("%v: %d records, want 5", mode, len(got))
		}
	}
}

func TestParseSyncMode(t *testing.T) {
	for in, want := range map[string]SyncMode{
		"always": SyncAlways, "interval": SyncInterval, "never": SyncOnClose, "onclose": SyncOnClose,
	} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Fatal("ParseSyncMode accepted junk")
	}
}
