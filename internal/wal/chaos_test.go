package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// A torn tail that reaches back across several records: salvage must keep
// exactly the longest valid prefix, count every damaged frame it dropped,
// and leave the log appendable.
func TestMultiRecordTornTailSalvage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l, _, err := Open(path, Config{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf(`{"rec":%d}`, i)
		want = append(want, p)
		mustAppend(t, l, p)
	}
	l.Close()

	// Tear off the last two full records plus half of the one before them:
	// three records' worth of damage in one contiguous tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lineLen := (len(data) - len(header)) / 8
	tear := 2*lineLen + lineLen/2
	if err := os.WriteFile(path, data[:len(data)-tear], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, sal, err := Open(path, Config{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if sal.Clean() {
		t.Fatalf("salvage reported clean on a %d-byte tear", tear)
	}
	if sal.Records != 5 {
		t.Fatalf("salvage kept %d records, want 5 (prefix before the tear)", sal.Records)
	}
	if sal.DroppedRecords != 1 {
		// Only the half-record remains as a damaged frame; the two fully
		// torn records left no bytes to count.
		t.Fatalf("salvage dropped %d frames, want 1: %+v", sal.DroppedRecords, sal)
	}
	mustAppend(t, l2, "after")
	l2.Close()
	got := payloadsOf(t, path)
	wantAfter := append(want[:5:5], "after")
	if len(got) != len(wantAfter) {
		t.Fatalf("payloads = %v, want %v", got, wantAfter)
	}
	for i := range wantAfter {
		if got[i] != wantAfter[i] {
			t.Fatalf("payload %d = %q, want %q", i, got[i], wantAfter[i])
		}
	}
}

// AbortTorn simulates the power cut directly: the file ends mid-record,
// salvage on reopen drops exactly the torn bytes, and nothing before the
// tear is lost.
func TestAbortTornLeavesSalvageablePrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l, _, err := Open(path, Config{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "alpha", "beta", "gamma")
	torn := l.AbortTorn(5)
	if torn != 5 {
		t.Fatalf("AbortTorn tore %d bytes, want 5", torn)
	}
	if err := l.Append([]byte("x")); err == nil {
		t.Fatal("Append succeeded after AbortTorn")
	}

	l2, sal, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if sal.Clean() || sal.Records != 2 || sal.DroppedRecords != 1 {
		t.Fatalf("post-tear salvage = %+v, want 2 kept / 1 dropped", sal)
	}
	got := payloadsOf(t, path)
	if len(got) < 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("surviving prefix = %v", got)
	}
}

// AbortTorn never tears into the header: a huge tear leaves a valid empty
// log, not a corrupt one.
func TestAbortTornClampsAtHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	l, _, err := Open(path, Config{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "only")
	l.AbortTorn(1 << 20)
	l2, sal, err := Open(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !sal.Clean() || sal.Records != 0 {
		t.Fatalf("header-clamped tear salvage = %+v, want clean empty", sal)
	}
}

// The fault hook is consulted before the physical operation: an injected
// write error leaves the file untouched (the record can be retried), and
// an injected sync error surfaces from Sync.
func TestFaultHookGatesWriteAndSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	fail := map[string]bool{}
	injected := errors.New("injected")
	hook := func(op string) error {
		if fail[op] {
			return injected
		}
		return nil
	}
	l, _, err := Open(path, Config{Sync: SyncAlways, FaultHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, "ok")

	fail["write"] = true
	if err := l.Append([]byte("blocked")); !errors.Is(err, injected) {
		t.Fatalf("Append under write fault = %v, want injected", err)
	}
	if l.Records() != 1 {
		t.Fatalf("failed append counted: Records = %d", l.Records())
	}
	fail["write"] = false
	mustAppend(t, l, "retried")

	fail["sync"] = true
	if err := l.Sync(); !errors.Is(err, injected) {
		t.Fatalf("Sync under sync fault = %v, want injected", err)
	}
	fail["sync"] = false
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync after fault cleared: %v", err)
	}
	if got := payloadsOf(t, path); len(got) != 2 || got[0] != "ok" || got[1] != "retried" {
		t.Fatalf("payloads = %v", got)
	}
}

// WriteAtomicHook with a failing hook must leave the previous file intact.
func TestWriteAtomicHookPreservesOldFileOnFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.wal")
	if err := WriteAtomic(path, [][]byte{[]byte("old")}); err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected")
	err := WriteAtomicHook(path, [][]byte{[]byte("new")}, func(op string) error {
		if op != "snapshot" {
			t.Fatalf("hook op = %q, want snapshot", op)
		}
		return injected
	})
	if !errors.Is(err, injected) {
		t.Fatalf("WriteAtomicHook = %v, want injected", err)
	}
	if got := payloadsOf(t, path); len(got) != 1 || got[0] != "old" {
		t.Fatalf("old snapshot damaged: %v", got)
	}
	if err := WriteAtomicHook(path, [][]byte{[]byte("new")}, nil); err != nil {
		t.Fatal(err)
	}
	if got := payloadsOf(t, path); len(got) != 1 || got[0] != "new" {
		t.Fatalf("retry did not replace: %v", got)
	}
}
