// Package wal is the fleet's crash-safety substrate: an append-only,
// checksummed, newline-framed write-ahead log. Every record is one line —
// an IEEE CRC-32 of the payload, the payload length, and the payload
// itself — so a log damaged by a crash (a torn final write, a truncated
// file, a flipped byte) is recoverable by scanning for the longest valid
// prefix. Salvage keeps that prefix, truncates the damage away, and
// reports exactly what was dropped; it never guesses at records past the
// first corruption, because an append-only log's meaning is its order.
//
// Payloads are opaque to the log except for one rule: they must not
// contain a raw newline (JSON-encoded payloads never do). Durability is a
// policy knob: fsync on every append, every Interval appends, or only at
// Close.
package wal

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// header is the first line of every log file; a file that does not start
// with it is not a WAL and salvages to empty.
const header = "rpg2-wal 1\n"

// SyncMode selects when appends reach stable storage.
type SyncMode uint8

const (
	// SyncInterval (the default) fsyncs every Config.Interval appends and
	// on Close — bounded loss, amortised cost.
	SyncInterval SyncMode = iota
	// SyncAlways fsyncs every append: nothing acknowledged is ever lost.
	SyncAlways
	// SyncOnClose leaves flushing to the OS until Close: fastest, loses
	// the tail of a crashed process's unflushed writes.
	SyncOnClose
)

func (m SyncMode) String() string {
	switch m {
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	case SyncOnClose:
		return "never"
	}
	return fmt.Sprintf("sync(%d)", uint8(m))
}

// ParseSyncMode resolves the CLI spellings: "interval", "always", and
// "never" (or "onclose").
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "never", "onclose":
		return SyncOnClose, nil
	}
	return 0, fmt.Errorf("wal: unknown sync mode %q (want always, interval, or never)", s)
}

// Config tunes a log's durability.
type Config struct {
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncMode
	// Interval is the append count between fsyncs under SyncInterval
	// (default 64).
	Interval int
	// FaultHook, when set, is consulted before each physical operation
	// ("write" before a record reaches the file, "sync" before an fsync)
	// and its non-nil error is returned in place of performing it. It is
	// the chaos layer's seam: a deterministic injector failing exactly the
	// operations a flaky disk would, without touching the filesystem.
	FaultHook func(op string) error
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 64
	}
	return c
}

// Salvage reports what opening (or reading) an existing log recovered and
// what it had to drop. A zero Reason means the file was clean.
type Salvage struct {
	// Records is the number of valid records in the kept prefix.
	Records int `json:"records"`
	// DroppedBytes is how many trailing bytes were discarded.
	DroppedBytes int64 `json:"dropped_bytes,omitempty"`
	// DroppedRecords is the best-effort count of records those bytes
	// framed (newline-delimited chunks, counting an unterminated tail).
	DroppedRecords int `json:"dropped_records,omitempty"`
	// Reason says why the tail was dropped ("" = nothing was).
	Reason string `json:"reason,omitempty"`
}

// Clean reports whether the log needed no salvage.
func (s Salvage) Clean() bool { return s.Reason == "" }

func (s Salvage) String() string {
	if s.Clean() {
		return fmt.Sprintf("clean, %d records", s.Records)
	}
	return fmt.Sprintf("kept %d records, dropped %d bytes (%d records): %s",
		s.Records, s.DroppedBytes, s.DroppedRecords, s.Reason)
}

// scan walks data for the longest valid prefix, returning the payloads it
// frames, the prefix length in bytes, and the salvage report.
func scan(data []byte) ([][]byte, int64, Salvage) {
	var sal Salvage
	if len(data) == 0 {
		return nil, 0, sal
	}
	if !bytes.HasPrefix(data, []byte(header)) {
		sal.Reason = "missing or corrupt header"
		sal.DroppedBytes = int64(len(data))
		sal.DroppedRecords = countFrames(data)
		return nil, 0, sal
	}
	var payloads [][]byte
	pos := len(header)
	for pos < len(data) {
		nl := bytes.IndexByte(data[pos:], '\n')
		if nl < 0 {
			sal.Reason = "truncated tail record"
			break
		}
		payload, ok := parseRecord(data[pos : pos+nl])
		if !ok {
			sal.Reason = "record failed checksum"
			break
		}
		payloads = append(payloads, payload)
		pos += nl + 1
	}
	sal.Records = len(payloads)
	if pos < len(data) {
		sal.DroppedBytes = int64(len(data) - pos)
		sal.DroppedRecords = countFrames(data[pos:])
	}
	return payloads, int64(pos), sal
}

// countFrames counts the newline-delimited chunks in a dropped tail,
// including an unterminated final chunk.
func countFrames(tail []byte) int {
	n := bytes.Count(tail, []byte{'\n'})
	if len(tail) > 0 && tail[len(tail)-1] != '\n' {
		n++
	}
	return n
}

// parseRecord validates one framed line: "crc32hex len payload".
func parseRecord(line []byte) ([]byte, bool) {
	// Shortest legal line: 8 hex digits, space, "0", space.
	if len(line) < 11 || line[8] != ' ' {
		return nil, false
	}
	sum, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, false
	}
	rest := line[9:]
	sp := bytes.IndexByte(rest, ' ')
	if sp < 0 {
		return nil, false
	}
	plen, err := strconv.Atoi(string(rest[:sp]))
	if err != nil || plen != len(rest)-sp-1 {
		return nil, false
	}
	payload := rest[sp+1:]
	if crc32.ChecksumIEEE(payload) != uint32(sum) {
		return nil, false
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, true
}

// frame encodes one payload as its on-disk line.
func frame(payload []byte) []byte {
	return []byte(fmt.Sprintf("%08x %d %s\n", crc32.ChecksumIEEE(payload), len(payload), payload))
}

// Log is an open write-ahead log positioned for appending.
type Log struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	cfg     Config
	records int // valid records in the file (salvaged + appended)
	unsynct int // appends since the last fsync
	closed  bool
}

// Open opens (or creates) the log at path, salvages any damaged tail by
// truncating the file to its longest valid prefix, and positions for
// appending. The salvage report says what, if anything, was dropped.
func Open(path string, cfg Config) (*Log, Salvage, error) {
	cfg = cfg.withDefaults()
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, Salvage{}, err
	}
	_, valid, sal := scan(data)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, sal, err
	}
	if valid == 0 {
		// Empty file, or damage reaching back into the header: reinitialise.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, sal, err
		}
		if _, err := f.WriteString(header); err != nil {
			f.Close()
			return nil, sal, err
		}
	} else {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, sal, err
		}
		if _, err := f.Seek(valid, 0); err != nil {
			f.Close()
			return nil, sal, err
		}
	}
	return &Log{f: f, path: path, cfg: cfg, records: sal.Records}, sal, nil
}

// Append writes one record. The payload must not contain a raw newline.
// Whether the record is durable immediately depends on the sync policy;
// whether it is written at all does not.
func (l *Log) Append(payload []byte) error {
	if bytes.IndexByte(payload, '\n') >= 0 {
		return fmt.Errorf("wal: payload contains a raw newline")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if h := l.cfg.FaultHook; h != nil {
		if err := h("write"); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(frame(payload)); err != nil {
		return err
	}
	l.records++
	l.unsynct++
	switch l.cfg.Sync {
	case SyncAlways:
		l.unsynct = 0
		return l.syncLocked()
	case SyncInterval:
		if l.unsynct >= l.cfg.Interval {
			l.unsynct = 0
			return l.syncLocked()
		}
	}
	return nil
}

// syncLocked runs the fault hook, then fsyncs. Callers hold l.mu.
func (l *Log) syncLocked() error {
	if h := l.cfg.FaultHook; h != nil {
		if err := h("sync"); err != nil {
			return err
		}
	}
	return l.f.Sync()
}

// Sync forces everything appended so far to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.unsynct = 0
	return l.syncLocked()
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	serr := l.f.Sync()
	cerr := l.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Abort closes the log without syncing — the file keeps whatever the OS
// has; subsequent Appends fail. It simulates the process dying (or the
// disk vanishing) underneath the writer, for crash and degradation tests.
func (l *Log) Abort() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	l.f.Close()
}

// AbortTorn is Abort with a torn tail: it flushes what the log has, tears
// the final tear bytes off the file (never reaching back into the header),
// and closes without syncing the truncation. The result is exactly what a
// power cut mid-write leaves behind — a longest-valid-prefix file whose
// final record(s) are partial — so crash tests can exercise salvage on
// demand instead of hoping for an unlucky kill. It returns how many bytes
// were actually torn.
func (l *Log) AbortTorn(tear int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0
	}
	l.closed = true
	defer l.f.Close()
	// Make sure the bytes being torn are on disk in the first place;
	// otherwise the OS may have less than we think and the tear is moot.
	if err := l.f.Sync(); err != nil {
		return 0
	}
	size, err := l.f.Seek(0, 2)
	if err != nil {
		return 0
	}
	if tear <= 0 {
		return 0
	}
	floor := int64(len(header))
	if size-int64(tear) < floor {
		tear = int(size - floor)
	}
	if tear <= 0 {
		return 0
	}
	if err := l.f.Truncate(size - int64(tear)); err != nil {
		return 0
	}
	return tear
}

// Records is the number of valid records in the file.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Path is the log's file path.
func (l *Log) Path() string { return l.path }

// ReadAll salvage-scans the log at path without modifying it, returning
// the payloads of the longest valid prefix. A missing file is an error
// (callers decide whether that is fatal).
func ReadAll(path string) ([][]byte, Salvage, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, Salvage{}, err
	}
	payloads, _, sal := scan(data)
	return payloads, sal, nil
}

// WriteAtomic replaces the log at path with exactly the given records,
// via a temp file, fsync, and rename — either the old file or the
// complete new one survives a crash, never a mix. Snapshot files use the
// same framing as the journal so one salvage reader serves both.
func WriteAtomic(path string, payloads [][]byte) error {
	return WriteAtomicHook(path, payloads, nil)
}

// WriteAtomicHook is WriteAtomic with a fault hook consulted (op
// "snapshot") before the write begins; a non-nil hook error aborts the
// write with the old file untouched — which is also the failure atomicity
// a real mid-snapshot disk error would leave behind.
func WriteAtomicHook(path string, payloads [][]byte, hook func(op string) error) error {
	if hook != nil {
		if err := hook("snapshot"); err != nil {
			return err
		}
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString(header)
	for _, p := range payloads {
		if bytes.IndexByte(p, '\n') >= 0 {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("wal: payload contains a raw newline")
		}
		buf.Write(frame(p))
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Best effort: persist the rename itself.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
