package cfg

import (
	"testing"

	"rpg2/internal/isa"
)

// nestedLoops builds:
//
//	movi r8, 0          ; 0
//
// outer:
//
//	movi r9, 0          ; 1
//
// inner:
//
//	load r10, [r0+r9]   ; 2
//	add  r11, r11, r10  ; 3
//	addi r9, r9, 1      ; 4
//	bri.lt r9, 10 inner ; 5
//	addi r8, r8, 1      ; 6
//	br.lt r8, r1, outer ; 7
//	ret                 ; 8
func nestedLoops(t *testing.T) (*isa.Binary, isa.Function) {
	t.Helper()
	a := isa.NewAsm("f")
	a.MovImm(8, 0)
	a.Label("outer")
	a.MovImm(9, 0)
	a.Label("inner")
	a.LoadIdx(10, 0, 9, 0)
	a.Add(11, 11, 10)
	a.AddImm(9, 9, 1)
	a.BrImm(isa.LT, 9, 10, "inner")
	a.AddImm(8, 8, 1)
	a.Br(isa.LT, 8, 1, "outer")
	a.Ret()
	bin, err := isa.NewProgram("f").Add(a).Link()
	if err != nil {
		t.Fatal(err)
	}
	f, _ := bin.Func("f")
	return bin, f
}

func TestBuildBlocks(t *testing.T) {
	bin, f := nestedLoops(t)
	g, err := Build(bin.Text, f)
	if err != nil {
		t.Fatal(err)
	}
	// Expected leaders: 0 (entry), 1 (outer), 2 (inner), 6 (after inner
	// branch), 8 (after outer branch).
	if len(g.Blocks) != 5 {
		t.Fatalf("blocks = %d, want 5", len(g.Blocks))
	}
	if g.Blocks[0].Start != 0 || g.Blocks[0].End != 1 {
		t.Fatalf("entry block: %+v", g.Blocks[0])
	}
	b := g.BlockAt(4)
	if b == nil || b.Start != 2 || b.End != 6 {
		t.Fatalf("BlockAt(4) = %+v", b)
	}
	if g.BlockAt(999) != nil {
		t.Fatal("BlockAt out of range")
	}
}

func TestDominators(t *testing.T) {
	bin, f := nestedLoops(t)
	g, _ := Build(bin.Text, f)
	entry := g.BlockAt(0).ID
	inner := g.BlockAt(2).ID
	exit := g.BlockAt(8).ID
	if !g.Dominates(entry, inner) || !g.Dominates(entry, exit) {
		t.Fatal("entry must dominate everything")
	}
	if g.Dominates(inner, entry) {
		t.Fatal("inner must not dominate entry")
	}
	if !g.Dominates(inner, inner) {
		t.Fatal("dominance is reflexive")
	}
}

func TestLoopsAndNesting(t *testing.T) {
	bin, f := nestedLoops(t)
	g, _ := Build(bin.Text, f)
	loops := g.Loops()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	outer, inner := loops[0], loops[1]
	if len(outer.Blocks) < len(inner.Blocks) {
		t.Fatal("loops must be sorted outermost first")
	}
	if inner.Parent != 0 {
		t.Fatalf("inner.Parent = %d, want 0", inner.Parent)
	}
	if outer.Parent != -1 {
		t.Fatalf("outer.Parent = %d, want -1", outer.Parent)
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Fatalf("depths = %d, %d", outer.Depth, inner.Depth)
	}
	if !inner.Contains(g, 2) || inner.Contains(g, 6) {
		t.Fatal("inner membership wrong")
	}
	if !outer.Contains(g, 6) || outer.Contains(g, 8) {
		t.Fatal("outer membership wrong")
	}
}

func TestInductionVariables(t *testing.T) {
	bin, f := nestedLoops(t)
	g, _ := Build(bin.Text, f)
	loops := g.Loops()
	outer, inner := loops[0], loops[1]

	ivs := g.InductionVars(inner)
	if len(ivs) != 1 || ivs[0].Reg != 9 || ivs[0].Step != 1 {
		t.Fatalf("inner IVs = %+v", ivs)
	}
	ivs = g.InductionVars(outer)
	// r8 is the outer IV; r9 is redefined twice in the outer loop (movi
	// and addi) so it is not a basic IV there.
	found := false
	for _, iv := range ivs {
		if iv.Reg == 9 {
			t.Fatalf("r9 misclassified as outer IV")
		}
		if iv.Reg == 8 && iv.Step == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("outer IV r8 not found: %+v", ivs)
	}
}

func TestLoopInvariantAndDefs(t *testing.T) {
	bin, f := nestedLoops(t)
	g, _ := Build(bin.Text, f)
	inner := g.Loops()[1]
	if !g.LoopInvariant(inner, 0) {
		t.Fatal("r0 (base) must be inner-invariant")
	}
	if g.LoopInvariant(inner, 10) {
		t.Fatal("r10 is defined in the inner loop")
	}
	defs := g.DefsIn(inner, 10)
	if len(defs) != 1 || defs[0] != 2 {
		t.Fatalf("DefsIn(r10) = %v", defs)
	}
}

func TestFreeRegs(t *testing.T) {
	bin, f := nestedLoops(t)
	g, _ := Build(bin.Text, f)
	free := g.FreeRegs()
	used := map[isa.Reg]bool{0: true, 1: true, 8: true, 9: true, 10: true, 11: true, isa.SP: true}
	for _, r := range free {
		if used[r] {
			t.Fatalf("register %v reported free but is used", r)
		}
	}
	// r0,r1,r8..r11,SP used: 9 free registers remain.
	if len(free) != 9 {
		t.Fatalf("free = %v (%d), want 9", free, len(free))
	}
}

func TestStraightLineFunctionHasNoLoops(t *testing.T) {
	a := isa.NewAsm("s")
	a.MovImm(0, 1).AddImm(0, 0, 1).Ret()
	bin, err := isa.NewProgram("s").Add(a).Link()
	if err != nil {
		t.Fatal(err)
	}
	f, _ := bin.Func("s")
	g, err := Build(bin.Text, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Loops()) != 0 {
		t.Fatal("straight-line code has no loops")
	}
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
}

func TestBuildRejectsBadRange(t *testing.T) {
	bin, _ := nestedLoops(t)
	if _, err := Build(bin.Text, isa.Function{Name: "x", Entry: 0, Size: 999}); err == nil {
		t.Fatal("out-of-range function must be rejected")
	}
}

// TestSharedHeaderLoopsMerge exercises two back edges to one header.
func TestSharedHeaderLoopsMerge(t *testing.T) {
	a := isa.NewAsm("m")
	a.Label("head")
	a.AddImm(0, 0, 1)
	a.BrImm(isa.LT, 0, 10, "head") // latch 1
	a.AddImm(0, 0, 2)
	a.BrImm(isa.LT, 0, 20, "head") // latch 2
	a.Ret()
	bin, err := isa.NewProgram("m").Add(a).Link()
	if err != nil {
		t.Fatal(err)
	}
	f, _ := bin.Func("m")
	g, _ := Build(bin.Text, f)
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops sharing a header must merge: got %d", len(loops))
	}
	// The recorded latch is the highest-PC one.
	latchEnd := g.Blocks[loops[0].Latch].End
	if bin.Text[latchEnd-1].Imm != 20 {
		t.Fatalf("latch should be the second branch, got block ending at %d", latchEnd)
	}
}
