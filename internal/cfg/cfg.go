// Package cfg recovers control-flow structure from a function's machine
// code: basic blocks, dominators, natural loops, loop-invariant registers,
// and loop induction variables. It provides the analyses that the BOLT
// InjectPrefetchPass builds on — the paper notes that BOLT already ships
// dominator and reaching-definition analyses, which its pass reuses (§3.2.2).
package cfg

import (
	"fmt"
	"sort"

	"rpg2/internal/isa"
)

// Block is a basic block: a maximal straight-line PC range.
type Block struct {
	// ID is the block's index in Graph.Blocks.
	ID int
	// Start and End delimit the block's PCs: [Start, End).
	Start, End int
	// Succs and Preds are CFG edges by block ID.
	Succs, Preds []int
}

// Graph is a function's control-flow graph.
type Graph struct {
	// Fn is the analysed function.
	Fn isa.Function
	// Blocks lists basic blocks in ascending PC order; Blocks[0] is the
	// entry block.
	Blocks []*Block
	// Text is the backing instruction stream (whole binary).
	Text []isa.Instr

	// idom[b] is the immediate dominator of block b (-1 for entry).
	idom []int
}

// Build recovers the CFG of fn within text. Branches leaving the function
// (calls aside) are treated as function exits.
func Build(text []isa.Instr, fn isa.Function) (*Graph, error) {
	if fn.Entry < 0 || fn.Entry+fn.Size > len(text) {
		return nil, fmt.Errorf("cfg: function %q out of text range", fn.Name)
	}
	leaders := map[int]bool{fn.Entry: true}
	for pc := fn.Entry; pc < fn.Entry+fn.Size; pc++ {
		in := text[pc]
		if in.IsBranch() && in.Op != isa.Call {
			if fn.Contains(in.Target) {
				leaders[in.Target] = true
			}
			if pc+1 < fn.Entry+fn.Size {
				leaders[pc+1] = true
			}
		}
		if in.Op == isa.Ret || in.Op == isa.Halt {
			if pc+1 < fn.Entry+fn.Size {
				leaders[pc+1] = true
			}
		}
	}
	starts := make([]int, 0, len(leaders))
	for pc := range leaders {
		starts = append(starts, pc)
	}
	sort.Ints(starts)

	g := &Graph{Fn: fn, Text: text}
	byStart := make(map[int]int, len(starts))
	for i, s := range starts {
		end := fn.Entry + fn.Size
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		g.Blocks = append(g.Blocks, &Block{ID: i, Start: s, End: end})
		byStart[s] = i
	}
	for _, b := range g.Blocks {
		last := g.Text[b.End-1]
		addEdge := func(targetPC int) {
			if id, ok := byStart[targetPC]; ok {
				b.Succs = append(b.Succs, id)
				g.Blocks[id].Preds = append(g.Blocks[id].Preds, b.ID)
			}
		}
		if last.IsBranch() && last.Op != isa.Call {
			addEdge(last.Target)
		}
		if !last.IsTerminator() {
			addEdge(b.End)
		}
	}
	g.computeDominators()
	return g, nil
}

// BlockAt returns the block containing the PC, or nil.
func (g *Graph) BlockAt(pc int) *Block {
	i := sort.Search(len(g.Blocks), func(i int) bool { return g.Blocks[i].Start > pc })
	if i == 0 {
		return nil
	}
	b := g.Blocks[i-1]
	if pc >= b.End {
		return nil
	}
	return b
}

// computeDominators runs the iterative dominance algorithm (Cooper, Harvey,
// Kennedy) over the block graph.
func (g *Graph) computeDominators() {
	n := len(g.Blocks)
	g.idom = make([]int, n)
	for i := range g.idom {
		g.idom[i] = -1
	}
	if n == 0 {
		return
	}
	// Reverse postorder.
	order := make([]int, 0, n)
	seen := make([]bool, n)
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(0)
	rpo := make([]int, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		rpo = append(rpo, order[i])
	}
	pos := make([]int, n)
	for i, b := range rpo {
		pos[b] = i
	}
	g.idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for pos[a] > pos[b] {
				a = g.idom[a]
			}
			for pos[b] > pos[a] {
				b = g.idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if g.idom[p] == -1 && p != 0 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && g.idom[b] != newIdom {
				g.idom[b] = newIdom
				changed = true
			}
		}
	}
	g.idom[0] = -1
}

// Dominates reports whether block a dominates block b.
func (g *Graph) Dominates(a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		if b == 0 {
			return false
		}
		b = g.idom[b]
	}
	return false
}

// Loop is a natural loop.
type Loop struct {
	// Header is the loop header block ID.
	Header int
	// Latch is the block with the back edge to the header. If several
	// back edges target the header, the highest-PC latch is kept.
	Latch int
	// Blocks is the set of member block IDs.
	Blocks map[int]bool
	// Parent is the enclosing loop's index in the Loops result, or -1.
	Parent int
	// Depth is 1 for outermost loops.
	Depth int
}

// Contains reports whether the PC lies in one of the loop's blocks.
func (l *Loop) Contains(g *Graph, pc int) bool {
	b := g.BlockAt(pc)
	return b != nil && l.Blocks[b.ID]
}

// Loops finds the function's natural loops, outermost first. Loops sharing a
// header are merged.
func (g *Graph) Loops() []*Loop {
	byHeader := make(map[int]*Loop)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !g.Dominates(s, b.ID) {
				continue
			}
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Latch: b.ID, Blocks: map[int]bool{s: true}, Parent: -1}
				byHeader[s] = l
			}
			if b.ID > l.Latch {
				l.Latch = b.ID
			}
			// Collect the loop body: nodes that reach the latch
			// without passing the header.
			stack := []int{b.ID}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[n] {
					continue
				}
				l.Blocks[n] = true
				for _, p := range g.Blocks[n].Preds {
					if !l.Blocks[p] {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	loops := make([]*Loop, 0, len(byHeader))
	for _, l := range byHeader {
		loops = append(loops, l)
	}
	// Sort outermost (largest) first, then by header PC for determinism.
	sort.Slice(loops, func(i, j int) bool {
		if len(loops[i].Blocks) != len(loops[j].Blocks) {
			return len(loops[i].Blocks) > len(loops[j].Blocks)
		}
		return g.Blocks[loops[i].Header].Start < g.Blocks[loops[j].Header].Start
	})
	// Nesting: parent is the smallest strict superset.
	for i, l := range loops {
		best := -1
		for j, o := range loops {
			if i == j || len(o.Blocks) <= len(l.Blocks) {
				continue
			}
			if !containsAll(o.Blocks, l.Blocks) {
				continue
			}
			if best == -1 || len(loops[best].Blocks) > len(o.Blocks) {
				best = j
			}
		}
		l.Parent = best
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != -1; p = loops[p].Parent {
			d++
		}
		l.Depth = d
	}
	return loops
}

func containsAll(super, sub map[int]bool) bool {
	for b := range sub {
		if !super[b] {
			return false
		}
	}
	return true
}

// pcsOf iterates the loop's instruction PCs in ascending order.
func (g *Graph) pcsOf(l *Loop, visit func(pc int, in isa.Instr)) {
	ids := make([]int, 0, len(l.Blocks))
	for id := range l.Blocks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		b := g.Blocks[id]
		for pc := b.Start; pc < b.End; pc++ {
			visit(pc, g.Text[pc])
		}
	}
}

// Induction describes a basic induction variable: a register updated exactly
// once per iteration by a constant step.
type Induction struct {
	Reg Reg
	// Step is the per-iteration increment (negative for down-counting).
	Step int64
	// DefPC is the PC of the update instruction.
	DefPC int
}

// Reg aliases isa.Reg for readability in this package's API.
type Reg = isa.Reg

// InductionVars finds the loop's basic induction variables: registers whose
// only definition inside the loop is r = r ± constant.
func (g *Graph) InductionVars(l *Loop) []Induction {
	defCount := make(map[Reg]int)
	defPC := make(map[Reg]int)
	g.pcsOf(l, func(pc int, in isa.Instr) {
		if d := in.Defs(); d != isa.NoReg {
			defCount[d]++
			defPC[d] = pc
		}
	})
	var out []Induction
	g.pcsOf(l, func(pc int, in isa.Instr) {
		d := in.Defs()
		if d == isa.NoReg || defCount[d] != 1 || defPC[d] != pc {
			return
		}
		switch in.Op {
		case isa.AddImm:
			if in.Rs1 == d {
				out = append(out, Induction{Reg: d, Step: in.Imm, DefPC: pc})
			}
		case isa.SubImm:
			if in.Rs1 == d {
				out = append(out, Induction{Reg: d, Step: -in.Imm, DefPC: pc})
			}
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].DefPC < out[j].DefPC })
	return out
}

// LoopInvariant reports whether the register has no definition inside the
// loop (so its value is fixed across iterations).
func (g *Graph) LoopInvariant(l *Loop, r Reg) bool {
	invariant := true
	g.pcsOf(l, func(pc int, in isa.Instr) {
		if in.Defs() == r {
			invariant = false
		}
	})
	return invariant
}

// DefsIn returns the PCs in the loop that define the register.
func (g *Graph) DefsIn(l *Loop, r Reg) []int {
	var pcs []int
	g.pcsOf(l, func(pc int, in isa.Instr) {
		if in.Defs() == r {
			pcs = append(pcs, pc)
		}
	})
	return pcs
}

// FreeRegs returns registers never referenced by the function (candidates
// that need no spill) — excluding SP.
func (g *Graph) FreeRegs() []Reg {
	used := make(map[Reg]bool)
	var buf []Reg
	for pc := g.Fn.Entry; pc < g.Fn.Entry+g.Fn.Size; pc++ {
		in := g.Text[pc]
		if d := in.Defs(); d != isa.NoReg {
			used[d] = true
		}
		buf = in.Uses(buf[:0])
		for _, r := range buf {
			used[r] = true
		}
	}
	var free []Reg
	for r := Reg(0); r < isa.NumRegs; r++ {
		if r != isa.SP && !used[r] {
			free = append(free, r)
		}
	}
	return free
}
