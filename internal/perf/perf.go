// Package perf models the profiling interfaces RPG² consumes: PEBS-style
// sampling of last-level-cache misses (perf's MEM_LOAD_RETIRED.L3_MISS/ppp
// event) and perf-stat-style counter windows for IPC and MPKI.
package perf

import (
	"math/rand"
	"sort"

	"rpg2/internal/cpu"
	"rpg2/internal/mem"
	"rpg2/internal/proc"
)

// PEBSRecord is one sampled LLC miss: the PC of the load and the data
// address it missed on, exactly the fields RPG² reads from PEBS records.
type PEBSRecord struct {
	PC   int
	Addr mem.Addr
}

// Sampler collects PEBS records from a process's cores. Sampling is
// event-period based, as PEBS hardware is: roughly every Period-th demand
// LLC miss produces one record, up to MaxRecords. The gap between samples
// is randomized around Period (drawn uniformly from [Period/2, 3*Period/2])
// the way real PEBS randomizes its counter reload value: a fixed period
// aliases stroboscopically against programs whose miss-event sequence is
// itself periodic — e.g. a loop whose misses strictly alternate between two
// loads would be profiled as if only one of them ever missed.
type Sampler struct {
	// Period is the mean miss-event sampling period (1 = every miss).
	Period uint64
	// MaxRecords bounds the PEBS buffer.
	MaxRecords int

	records []PEBSRecord
	until   uint64 // events remaining until the next sample
	seen    uint64
	rng     *rand.Rand
	target  *proc.Process
}

// NewSampler creates a sampler with the given mean period and buffer bound.
func NewSampler(period uint64, maxRecords int) *Sampler {
	if period == 0 {
		period = 1
	}
	if maxRecords <= 0 {
		maxRecords = 1 << 16
	}
	s := &Sampler{
		Period:     period,
		MaxRecords: maxRecords,
		rng:        rand.New(rand.NewSource(int64(period)*0x9E3779B9 + 1)),
	}
	s.until = s.nextGap()
	return s
}

// nextGap draws the randomized distance to the next sample.
func (s *Sampler) nextGap() uint64 {
	if s.Period <= 1 {
		return 1
	}
	return s.Period/2 + uint64(s.rng.Int63n(int64(s.Period)+1))
}

// Attach starts sampling the process's cores. Only one sampler may be
// attached to a process at a time.
func (s *Sampler) Attach(p *proc.Process) {
	s.target = p
	for _, t := range p.Threads() {
		t.Core.OnLLCMiss = s.observe
	}
}

// Detach stops sampling.
func (s *Sampler) Detach() {
	if s.target == nil {
		return
	}
	for _, t := range s.target.Threads() {
		t.Core.OnLLCMiss = nil
	}
	s.target = nil
}

func (s *Sampler) observe(pc int, addr mem.Addr) {
	s.seen++
	if s.until--; s.until > 0 {
		return
	}
	s.until = s.nextGap()
	if len(s.records) < s.MaxRecords {
		s.records = append(s.records, PEBSRecord{PC: pc, Addr: addr})
	}
}

// Records returns the sampled records.
func (s *Sampler) Records() []PEBSRecord { return s.records }

// EventsSeen returns the total number of LLC-miss events observed (sampled
// or not).
func (s *Sampler) EventsSeen() uint64 { return s.seen }

// Reset clears the sample buffer and event count.
func (s *Sampler) Reset() {
	s.records = s.records[:0]
	s.seen = 0
	s.until = s.nextGap()
}

// MissSite aggregates samples by PC.
type MissSite struct {
	// PC is the load instruction's global PC.
	PC int
	// Count is the number of samples attributed to the PC.
	Count int
	// FuncName is the containing function, if resolvable.
	FuncName string
	// Share is Count divided by the total samples in the same function.
	Share float64
}

// AggregateByPC groups records by PC and computes each site's share of its
// function's misses, using the process symbol table for attribution. Sites
// are returned ordered by descending count.
func AggregateByPC(records []PEBSRecord, p *proc.Process) []MissSite {
	byPC := make(map[int]int)
	for _, r := range records {
		byPC[r.PC]++
	}
	funcTotals := make(map[string]int)
	type tmp struct {
		pc, count int
		fn        string
	}
	sites := make([]tmp, 0, len(byPC))
	for pc, n := range byPC {
		fn := ""
		if f, ok := p.FuncAt(pc); ok {
			fn = f.Name
		}
		funcTotals[fn] += n
		sites = append(sites, tmp{pc: pc, count: n, fn: fn})
	}
	out := make([]MissSite, 0, len(sites))
	for _, s := range sites {
		share := 0.0
		if t := funcTotals[s.fn]; t > 0 {
			share = float64(s.count) / float64(t)
		}
		out = append(out, MissSite{PC: s.pc, Count: s.count, FuncName: s.fn, Share: share})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// Window is a perf-stat style measurement over a bounded run of the target.
type Window struct {
	Cycles       uint64
	Instructions uint64
	LLCMisses    uint64
	IPC          float64
	MPKI         float64
	// Work counts retirements of the measured watch's PCs in the window
	// (see cpu.Watch); Rate is Work per cycle. Unlike IPC, Rate is
	// comparable across binaries whose instruction mix differs — a
	// prefetch kernel inflates IPC but not Rate.
	Work uint64
	Rate float64
}

// Measure runs the process for the given number of cycles and returns the
// counter deltas over that window. If rng is non-nil, the reported IPC is
// perturbed by a relative Gaussian error of the given magnitude, modelling
// the measurement noise that the paper identifies as the biggest impediment
// to its distance search (§4.3).
func Measure(p *proc.Process, cycles uint64, rng *rand.Rand, noise float64) Window {
	return MeasureWatch(p, nil, cycles, rng, noise)
}

// MeasureWatch is Measure with an explicit work counter: the window's Work
// and Rate are taken from the given watch (which must be attached to the
// process's cores). A nil watch reports zero work.
func MeasureWatch(p *proc.Process, watch *cpu.Watch, cycles uint64, rng *rand.Rand, noise float64) Window {
	before := p.Counters()
	var workBefore uint64
	if watch != nil {
		workBefore = watch.Count
	}
	missBefore := p.Threads()[0].Core.Hierarchy().Stats().LLCMisses
	p.Run(cycles)
	after := p.Counters()
	missAfter := p.Threads()[0].Core.Hierarchy().Stats().LLCMisses

	w := Window{
		Cycles:       after.Cycles - before.Cycles,
		Instructions: after.Instructions - before.Instructions,
		LLCMisses:    missAfter - missBefore,
	}
	if watch != nil {
		w.Work = watch.Count - workBefore
	}
	if w.Cycles > 0 {
		w.IPC = float64(w.Instructions) / float64(w.Cycles)
		w.Rate = float64(w.Work) / float64(w.Cycles)
	}
	if w.Instructions > 0 {
		w.MPKI = 1000 * float64(w.LLCMisses) / float64(w.Instructions)
	}
	if rng != nil && noise > 0 {
		w.IPC *= 1 + rng.NormFloat64()*noise
		if w.IPC < 0 {
			w.IPC = 0
		}
		w.Rate *= 1 + rng.NormFloat64()*noise
		if w.Rate < 0 {
			w.Rate = 0
		}
	}
	return w
}

// AttachWatch registers a watch on every core of the process and returns
// it. Several watches may be attached concurrently; each counts its own PC
// set independently.
func AttachWatch(p *proc.Process, pcs []int) *cpu.Watch {
	w := cpu.NewWatch(pcs)
	for _, t := range p.Threads() {
		t.Core.Watches = append(t.Core.Watches, w)
	}
	return w
}

// DetachWatch removes a watch from every core.
func DetachWatch(p *proc.Process, w *cpu.Watch) {
	for _, t := range p.Threads() {
		ws := t.Core.Watches[:0]
		for _, x := range t.Core.Watches {
			if x != w {
				ws = append(ws, x)
			}
		}
		t.Core.Watches = ws
	}
}

// Watches returns the watches attached to the process's first core (they
// are attached uniformly across cores).
func Watches(p *proc.Process) []*cpu.Watch { return p.Threads()[0].Core.Watches }
