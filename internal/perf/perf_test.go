package perf_test

import (
	"math/rand"
	"testing"

	"rpg2/internal/machine"
	"rpg2/internal/perf"
	"rpg2/internal/workloads"
)

// launchPR starts a miss-heavy pr workload for profiling tests.
func launchPR(t *testing.T) (*workloads.Workload, machine.Machine, func() error) {
	t.Helper()
	m := machine.CascadeLake()
	w, err := workloads.Build("pr", "soc-alpha", 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	return w, m, nil
}

func TestSamplerPeriodAndRecords(t *testing.T) {
	w, m, _ := launchPR(t)
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		t.Fatal(err)
	}
	s := perf.NewSampler(4, 1000)
	s.Attach(p)
	p.Run(500_000)
	s.Detach()
	if s.EventsSeen() == 0 {
		t.Fatal("no LLC-miss events observed")
	}
	// The sampling gap is randomized around the period, so the count is
	// approximate: within 25% of seen/period (or at the buffer cap).
	want := float64(s.EventsSeen()) / 4
	got := len(s.Records())
	if got == 1000 {
		want = 1000
	}
	if float64(got) < 0.75*want || float64(got) > 1.25*want {
		t.Fatalf("records = %d, want ~%.0f (seen %d)", got, want, s.EventsSeen())
	}
	// Records carry both a PC and an address.
	for _, r := range s.Records()[:10] {
		if r.Addr == 0 {
			t.Fatal("record with zero address")
		}
		if _, ok := p.FuncAt(r.PC); !ok {
			t.Fatalf("record PC %d not in any function", r.PC)
		}
	}
	// After detach, no more events accumulate.
	seen := s.EventsSeen()
	p.Run(100_000)
	if s.EventsSeen() != seen {
		t.Fatal("sampler still counting after detach")
	}
	s.Reset()
	if len(s.Records()) != 0 || s.EventsSeen() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestAggregateByPCSharesSumToOne(t *testing.T) {
	w, m, _ := launchPR(t)
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		t.Fatal(err)
	}
	s := perf.NewSampler(2, 1<<16)
	s.Attach(p)
	p.Run(800_000)
	s.Detach()
	sites := perf.AggregateByPC(s.Records(), p)
	if len(sites) == 0 {
		t.Fatal("no miss sites")
	}
	// Sites must be sorted by descending count, and per-function shares
	// must sum to ~1.
	byFn := make(map[string]float64)
	for i, site := range sites {
		if i > 0 && site.Count > sites[i-1].Count {
			t.Fatal("sites not sorted by count")
		}
		byFn[site.FuncName] += site.Share
	}
	for fn, sum := range byFn {
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("function %q shares sum to %f", fn, sum)
		}
	}
	// The hottest site must be in the kernel (the rank gather).
	if sites[0].FuncName != workloads.KernelFunc {
		t.Fatalf("hottest site in %q, want kernel", sites[0].FuncName)
	}
	if sites[0].Share < 0.5 {
		t.Fatalf("dominant site share %.2f, expected the rank load to dominate", sites[0].Share)
	}
}

func TestMeasureWindowsAndWatch(t *testing.T) {
	w, m, _ := launchPR(t)
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(200_000)
	watch := perf.AttachWatch(p, []int{w.WorkPC})
	win := perf.MeasureWatch(p, watch, 300_000, nil, 0)
	if win.Cycles < 300_000 {
		t.Fatalf("window cycles = %d", win.Cycles)
	}
	if win.IPC <= 0 || win.IPC > 2 {
		t.Fatalf("IPC = %f", win.IPC)
	}
	if win.Work == 0 || win.Rate <= 0 {
		t.Fatalf("work = %d rate = %f", win.Work, win.Rate)
	}
	if win.MPKI <= 0 {
		t.Fatalf("MPKI = %f; pr on a large input must miss", win.MPKI)
	}
	// A second watch counts independently.
	w2 := perf.AttachWatch(p, []int{w.WorkPC, w.WorkPC - 1})
	win2 := perf.MeasureWatch(p, w2, 300_000, nil, 0)
	if win2.Work <= win.Work/2 {
		t.Fatalf("two-site watch should count at least as much: %d", win2.Work)
	}
	if got := len(perf.Watches(p)); got != 2 {
		t.Fatalf("watches attached = %d", got)
	}
	perf.DetachWatch(p, w2)
	if got := len(perf.Watches(p)); got != 1 {
		t.Fatalf("watches after detach = %d", got)
	}
}

func TestMeasureNoiseIsBoundedAndSeeded(t *testing.T) {
	w, m, _ := launchPR(t)
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(300_000)
	watch := perf.AttachWatch(p, []int{w.WorkPC})
	clean := perf.MeasureWatch(p, watch, 200_000, nil, 0)
	noisy := perf.MeasureWatch(p, watch, 200_000, rand.New(rand.NewSource(1)), 0.01)
	if noisy.IPC <= 0 {
		t.Fatal("noise must not zero out IPC")
	}
	rel := noisy.IPC/clean.IPC - 1
	if rel > 0.2 || rel < -0.2 {
		t.Fatalf("1%% noise produced %.0f%% deviation", 100*rel)
	}
}
