package cache

import (
	"math/rand"
	"testing"

	"rpg2/internal/mem"
)

// testConfig is a tiny hierarchy where eviction behaviour is easy to reason
// about: L1 4 lines (2-way), L2 8 lines, L3 16 lines.
func testConfig() Config {
	return Config{
		L1:   LevelConfig{Name: "L1d", Lines: 4, Assoc: 2, Latency: 1},
		L2:   LevelConfig{Name: "L2", Lines: 8, Assoc: 2, Latency: 10},
		L3:   LevelConfig{Name: "L3", Lines: 16, Assoc: 4, Latency: 30},
		DRAM: DRAMConfig{Latency: 100, ServiceCycles: 4, MSHRs: 4},
	}
}

func addr(line Line) mem.Addr { return line << lineShift }

func TestColdMissThenHits(t *testing.T) {
	h := New(testConfig())
	r := h.Access(1, addr(7), 0)
	if !r.LLCMiss || r.Level != 4 || r.Cycles != 100 {
		t.Fatalf("cold access: %+v", r)
	}
	r = h.Access(1, addr(7), 200)
	if r.LLCMiss || r.Level != 1 || r.Cycles != 1 {
		t.Fatalf("warm access should hit L1: %+v", r)
	}
	// A different word on the same line also hits.
	r = h.Access(1, addr(7)+3, 300)
	if r.Level != 1 {
		t.Fatalf("same-line access should hit: %+v", r)
	}
	s := h.Stats()
	if s.DRAMFills != 1 || s.L1Hits != 2 || s.LLCMisses != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestInclusiveEvictionFallsBackToL2L3(t *testing.T) {
	h := New(testConfig())
	now := uint64(0)
	// Fill lines 0,2,4,6: all map to L1 set 0 (setMask 1, even lines),
	// L1 is 2-way, so two of them get evicted from L1 but stay in L2/L3.
	for _, l := range []Line{0, 2, 4, 6} {
		h.Access(1, addr(l), now)
		now += 200
	}
	r := h.Access(1, addr(0), now)
	if r.Level != 2 && r.Level != 3 {
		t.Fatalf("L1-evicted line should hit L2/L3, got level %d", r.Level)
	}
	if r.LLCMiss {
		t.Fatal("should not reach DRAM")
	}
}

func TestDRAMBandwidthSerializesFills(t *testing.T) {
	h := New(testConfig())
	// Two misses at the same instant: the second completes later because
	// the controller can only start one fill per ServiceCycles.
	r1 := h.Access(1, addr(10), 0)
	r2 := h.Access(1, addr(20), 0)
	if r2.Cycles != r1.Cycles+4 {
		t.Fatalf("second fill should queue: %d vs %d", r2.Cycles, r1.Cycles)
	}
}

func TestPrefetchTimely(t *testing.T) {
	h := New(testConfig())
	if !h.Prefetch(addr(5), 0, SoftwarePrefetch) {
		t.Fatal("prefetch should start a fill")
	}
	// After completion, the demand load is an L1 hit.
	r := h.Access(1, addr(5), 150)
	if r.LLCMiss || r.Level != 1 {
		t.Fatalf("timely prefetch not honoured: %+v", r)
	}
	s := h.Stats()
	if s.TimelyPF != 1 || s.SWPrefetches != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestPrefetchLatePaysResidual(t *testing.T) {
	h := New(testConfig())
	h.Prefetch(addr(5), 0, SoftwarePrefetch) // completes at 100
	r := h.Access(1, addr(5), 40)
	if !r.LLCMiss || r.Level != 0 {
		t.Fatalf("late prefetch should be an MSHR hit: %+v", r)
	}
	want := uint64(100-40) + 1 // residual + L1 fill latency
	if r.Cycles != want {
		t.Fatalf("residual = %d, want %d", r.Cycles, want)
	}
	if h.Stats().LatePF != 1 {
		t.Fatalf("stats: %+v", h.Stats())
	}
}

func TestPrefetchDeduplicates(t *testing.T) {
	h := New(testConfig())
	if !h.Prefetch(addr(5), 0, SoftwarePrefetch) {
		t.Fatal("first prefetch should fill")
	}
	if h.Prefetch(addr(5), 10, SoftwarePrefetch) {
		t.Fatal("second prefetch of an in-flight line should be a no-op")
	}
	if h.Prefetch(addr(5), 500, SoftwarePrefetch) {
		t.Fatal("prefetch of a cached line should be a no-op")
	}
}

func TestPrefetchDroppedWhenMSHRsFull(t *testing.T) {
	h := New(testConfig())
	for l := Line(0); l < 4; l++ {
		if !h.Prefetch(addr(l*8), 0, SoftwarePrefetch) {
			t.Fatalf("prefetch %d should start", l)
		}
	}
	if h.Prefetch(addr(99), 0, SoftwarePrefetch) {
		t.Fatal("fifth concurrent prefetch should be dropped (4 MSHRs)")
	}
	if h.Stats().DroppedPF != 1 {
		t.Fatalf("stats: %+v", h.Stats())
	}
	// After the fills complete, capacity frees up.
	if !h.Prefetch(addr(99), 500, SoftwarePrefetch) {
		t.Fatal("prefetch after drain should start")
	}
}

func TestStridePrefetcherCoversSequentialStream(t *testing.T) {
	cfg := testConfig()
	cfg.Stride = StrideConfig{Enabled: true, TableSize: 8, Confidence: 2, Degree: 2}
	h := New(cfg)
	now := uint64(0)
	misses := 0
	// Walk 64 consecutive lines from one PC; after training, the stride
	// engine should hide most of the stream.
	for l := Line(0); l < 64; l++ {
		r := h.Access(42, addr(l), now)
		if r.LLCMiss {
			misses++
		}
		now += 150 // slow enough for prefetches to land
	}
	if misses > 10 {
		t.Fatalf("stride prefetcher covered too little: %d/64 misses", misses)
	}
	if h.Stats().HWPrefetches == 0 {
		t.Fatal("no hardware prefetches issued")
	}
}

func TestStridePrefetcherIgnoresRandomPattern(t *testing.T) {
	cfg := testConfig()
	cfg.Stride = StrideConfig{Enabled: true, TableSize: 8, Confidence: 2, Degree: 2}
	h := New(cfg)
	rng := rand.New(rand.NewSource(1))
	now := uint64(0)
	issuedBefore := h.Stats().HWPrefetches
	for i := 0; i < 200; i++ {
		h.Access(42, addr(Line(rng.Intn(1<<20))), now)
		now += 150
	}
	issued := h.Stats().HWPrefetches - issuedBefore
	if issued > 40 {
		t.Fatalf("stride engine fired %d times on a random stream", issued)
	}
}

func TestUselessPrefetchCounted(t *testing.T) {
	h := New(testConfig())
	h.Prefetch(addr(3), 0, SoftwarePrefetch)
	// Churn the whole hierarchy so line 3 is evicted everywhere unused.
	now := uint64(200)
	for l := Line(100); l < 160; l++ {
		h.Access(1, addr(l), now)
		now += 200
	}
	if h.Stats().UselessPF == 0 {
		t.Fatal("evicted-unused prefetch not counted")
	}
}

func TestResetClearsEverything(t *testing.T) {
	h := New(testConfig())
	h.Access(1, addr(7), 0)
	h.Prefetch(addr(9), 0, SoftwarePrefetch)
	h.Reset()
	if h.Stats() != (Stats{}) {
		t.Fatalf("stats not cleared: %+v", h.Stats())
	}
	if h.Present(addr(7)) || h.Present(addr(9)) {
		t.Fatal("cache contents not cleared")
	}
	r := h.Access(1, addr(7), 0)
	if !r.LLCMiss {
		t.Fatal("access after reset should miss")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	h := New(testConfig())
	h.Access(1, addr(7), 0)
	h.ResetStats()
	if h.Stats().DemandAccesses != 0 {
		t.Fatal("stats not reset")
	}
	if r := h.Access(1, addr(7), 500); r.Level != 1 {
		t.Fatalf("contents should survive ResetStats: %+v", r)
	}
}

// Property: every demand access is serviced by exactly one place, so the
// per-level counters always sum to the total.
func TestStatsConservationProperty(t *testing.T) {
	cfg := testConfig()
	cfg.Stride = StrideConfig{Enabled: true, TableSize: 8, Confidence: 2, Degree: 2}
	h := New(cfg)
	rng := rand.New(rand.NewSource(7))
	now := uint64(0)
	for i := 0; i < 5000; i++ {
		if rng.Intn(4) == 0 {
			h.Prefetch(addr(Line(rng.Intn(256))), now, SoftwarePrefetch)
		}
		h.Access(uint64(rng.Intn(4)), addr(Line(rng.Intn(256))), now)
		now += uint64(rng.Intn(50))
	}
	s := h.Stats()
	if got := s.L1Hits + s.L2Hits + s.L3Hits + s.MSHRHits + s.DRAMFills; got != s.DemandAccesses {
		t.Fatalf("conservation violated: %d serviced vs %d accesses (%+v)", got, s.DemandAccesses, s)
	}
	if s.LLCMisses != s.MSHRHits+s.DRAMFills {
		t.Fatalf("LLC misses %d != MSHR %d + DRAM %d", s.LLCMisses, s.MSHRHits, s.DRAMFills)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	bad := testConfig()
	bad.L1.Lines = 6 // 3 sets: not a power of two
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry should panic at construction")
		}
	}()
	New(bad)
}
