// Package cache models the memory hierarchy of the simulated machine: a
// three-level set-associative cache (L1d, L2, shared L3/LLC), an MSHR-style
// table of in-flight fills, a DRAM model with latency and bounded bandwidth,
// and a hardware stride prefetcher.
//
// The model is deliberately built so the phenomena the RPG² paper depends on
// emerge from first principles rather than from curve fitting:
//
//   - Sequential (stride) access streams are covered by the hardware
//     prefetcher, so direct a[j] loops rarely miss — matching the paper's
//     observation that modern CPUs prefetch strides well but struggle with
//     indirect accesses.
//   - A software prefetch issued too late overlaps only part of the DRAM
//     latency: the consuming demand load finds the line in flight and pays
//     the residual.
//   - A software prefetch issued too early is installed and then ages in the
//     LRU like any other line; if the loop's demand traffic churns the cache
//     before the line is used, the prefetch is (partially or fully) wasted.
//   - All fills occupy DRAM service slots, so prefetch traffic competes with
//     demand traffic for bandwidth and prefetching can slow a program down.
package cache

import (
	"rpg2/internal/isa"
	"rpg2/internal/mem"
)

// Line identifies a cache line (an address shifted by the line size).
type Line = uint64

// lineShift converts word addresses to line IDs; isa.LineWords must be 8.
const lineShift = 3

// LineOf returns the cache line containing the word address.
func LineOf(a mem.Addr) Line { return a >> lineShift }

var _ = isa.LineWords // line geometry is shared with the ISA definition

// LevelConfig describes one cache level.
type LevelConfig struct {
	// Name labels the level in stats output ("L1d", "L2", "L3").
	Name string
	// Lines is the capacity in cache lines; it must be a multiple of
	// Assoc and the resulting set count must be a power of two.
	Lines int
	// Assoc is the set associativity.
	Assoc int
	// Latency is the access latency in cycles charged when this level
	// services a demand load.
	Latency uint64
}

// DRAMConfig describes the memory controller model.
type DRAMConfig struct {
	// Latency is the cycles from issuing a fill until data arrives.
	Latency uint64
	// ServiceCycles is the occupancy of one line fill at the controller;
	// its reciprocal is the sustainable fill bandwidth.
	ServiceCycles uint64
	// MSHRs bounds the number of in-flight fills. Software and hardware
	// prefetches are dropped when the table is full; demand fills queue.
	MSHRs int
}

// StrideConfig describes the hardware stride prefetcher.
type StrideConfig struct {
	// Enabled turns the prefetcher on (the paper runs with all hardware
	// prefetchers enabled).
	Enabled bool
	// TableSize is the number of PC-indexed tracking entries.
	TableSize int
	// Confidence is the number of consecutive same-stride accesses
	// required before the prefetcher starts issuing.
	Confidence int
	// Degree is how many lines ahead the prefetcher runs.
	Degree int
}

// Config assembles a full hierarchy description.
type Config struct {
	L1, L2, L3 LevelConfig
	DRAM       DRAMConfig
	Stride     StrideConfig
}

// AccessKind distinguishes the source of an access for stats and policy.
type AccessKind uint8

// Access kinds.
const (
	// Demand is an architectural load or store.
	Demand AccessKind = iota
	// SoftwarePrefetch is an explicit prefetch instruction.
	SoftwarePrefetch
	// HardwarePrefetch is issued by the stride engine.
	HardwarePrefetch
)

// Result reports the outcome of a demand access.
type Result struct {
	// Cycles is the total latency charged to the access.
	Cycles uint64
	// LLCMiss is true when the access missed in every cache level and had
	// to be serviced by DRAM (including waiting on an in-flight fill that
	// was itself a DRAM fill). This is the event PEBS samples.
	LLCMiss bool
	// Level is the level that serviced the access: 1..3 for cache hits,
	// 4 for DRAM, 0 for an in-flight (MSHR) hit.
	Level int
}

// Stats aggregates hierarchy counters.
type Stats struct {
	DemandAccesses uint64
	L1Hits         uint64
	L2Hits         uint64
	L3Hits         uint64
	MSHRHits       uint64
	DRAMFills      uint64
	LLCMisses      uint64
	SWPrefetches   uint64
	HWPrefetches   uint64
	DroppedPF      uint64
	UselessPF      uint64 // prefetched lines evicted from all levels unused
	TimelyPF       uint64 // demand hits on completed prefetched lines
	LatePF         uint64 // demand hits on still-in-flight prefetched lines
}

type level struct {
	cfg     LevelConfig
	sets    int
	setMask uint64
	tags    []uint64 // line ID + 1; 0 = invalid
	use     []uint64 // LRU timestamps
	pf      []bool   // line was brought in by a prefetch and not yet used
}

func newLevel(cfg LevelConfig) *level {
	if cfg.Lines%cfg.Assoc != 0 {
		panic("cache: lines must be a multiple of associativity: " + cfg.Name)
	}
	sets := cfg.Lines / cfg.Assoc
	if sets&(sets-1) != 0 {
		panic("cache: set count must be a power of two: " + cfg.Name)
	}
	return &level{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, cfg.Lines),
		use:     make([]uint64, cfg.Lines),
		pf:      make([]bool, cfg.Lines),
	}
}

// lookup probes the level; on hit it refreshes LRU state and reports whether
// the line was an unused prefetch.
func (l *level) lookup(line Line, clock uint64) (hit, wasPF bool) {
	base := int(line&l.setMask) * l.cfg.Assoc
	tag := line + 1
	for w := 0; w < l.cfg.Assoc; w++ {
		if l.tags[base+w] == tag {
			l.use[base+w] = clock
			wasPF = l.pf[base+w]
			l.pf[base+w] = false
			return true, wasPF
		}
	}
	return false, false
}

// clearPF clears the unused-prefetch mark if the line is present, so a line
// consumed at an upper level is not later miscounted as a useless prefetch.
func (l *level) clearPF(line Line) {
	base := int(line&l.setMask) * l.cfg.Assoc
	tag := line + 1
	for w := 0; w < l.cfg.Assoc; w++ {
		if l.tags[base+w] == tag {
			l.pf[base+w] = false
			return
		}
	}
}

// present probes without touching LRU state.
func (l *level) present(line Line) bool {
	base := int(line&l.setMask) * l.cfg.Assoc
	tag := line + 1
	for w := 0; w < l.cfg.Assoc; w++ {
		if l.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// install fills the line, evicting the LRU way; it returns the evicted line
// and whether the victim was an unused prefetch.
func (l *level) install(line Line, clock uint64, isPF bool) (victim Line, victimValid, victimPF bool) {
	base := int(line&l.setMask) * l.cfg.Assoc
	tag := line + 1
	lru, lruUse := base, l.use[base]
	for w := 0; w < l.cfg.Assoc; w++ {
		i := base + w
		if l.tags[i] == tag { // already present; refresh
			l.use[i] = clock
			return 0, false, false
		}
		if l.tags[i] == 0 {
			lru, lruUse = i, 0
		} else if l.use[i] < lruUse {
			lru, lruUse = i, l.use[i]
		}
	}
	victimValid = l.tags[lru] != 0
	if victimValid {
		victim = l.tags[lru] - 1
		victimPF = l.pf[lru]
	}
	l.tags[lru] = tag
	l.use[lru] = clock
	l.pf[lru] = isPF
	return victim, victimValid, victimPF
}

func (l *level) reset() {
	clear(l.tags)
	clear(l.use)
	clear(l.pf)
}

type strideEntry struct {
	pc     uint64
	last   Line
	stride int64
	conf   int
}

// mshr is one in-flight fill: the line being fetched and the cycle its data
// arrives. The table is a small fixed array, like the hardware CAM it
// models; entries whose completion has passed are free.
type mshr struct {
	line     Line
	complete uint64
	valid    bool
}

// Hierarchy is the full memory system. It is not safe for concurrent use;
// the simulated machine drives it from a single goroutine.
type Hierarchy struct {
	cfg         Config
	l1, l2      *level
	l3          *level
	clock       uint64 // internal LRU clock (per access)
	dramFree    uint64 // next cycle the DRAM controller is free
	maxComplete uint64 // latest in-flight completion, for a fast skip
	inflight    []mshr
	stride      []strideEntry
	stats       Stats
}

// New builds a hierarchy from the configuration.
func New(cfg Config) *Hierarchy {
	h := &Hierarchy{
		cfg:      cfg,
		l1:       newLevel(cfg.L1),
		l2:       newLevel(cfg.L2),
		l3:       newLevel(cfg.L3),
		inflight: make([]mshr, cfg.DRAM.MSHRs),
	}
	if cfg.Stride.Enabled {
		h.stride = make([]strideEntry, cfg.Stride.TableSize)
	}
	return h
}

// Stats returns a snapshot of the counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats zeroes the counters without disturbing cache contents, so
// measurement windows observe a warm cache.
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

// Reset empties all cache state and counters.
func (h *Hierarchy) Reset() {
	h.l1.reset()
	h.l2.reset()
	h.l3.reset()
	h.stats = Stats{}
	h.dramFree = 0
	h.maxComplete = 0
	for i := range h.inflight {
		h.inflight[i] = mshr{}
	}
	if h.stride != nil {
		clear(h.stride)
	}
}

// findInflight returns the MSHR index tracking the line (still in flight at
// the given cycle), or -1.
func (h *Hierarchy) findInflight(line Line, now uint64) int {
	for i := range h.inflight {
		e := &h.inflight[i]
		if e.valid && e.line == line && e.complete > now {
			return i
		}
	}
	return -1
}

// allocInflight claims a free MSHR (invalid or expired); it returns -1 when
// the table is full.
func (h *Hierarchy) allocInflight(now uint64) int {
	for i := range h.inflight {
		e := &h.inflight[i]
		if !e.valid || e.complete <= now {
			return i
		}
	}
	return -1
}

// installAll fills the line into every level (an inclusive hierarchy), and
// tracks useless-prefetch victims.
func (h *Hierarchy) installAll(line Line, isPF bool) {
	h.l1.install(line, h.clock, isPF)
	h.l2.install(line, h.clock, isPF)
	if _, vValid, vPF := h.l3.install(line, h.clock, isPF); vValid && vPF {
		h.stats.UselessPF++
	}
}

// Access performs a demand load or store at word address addr, issued by the
// instruction at pc at the given cycle, and returns the latency outcome.
// Stores are modelled as cache accesses with the same fill path but callers
// typically hide store latency (store buffer), so only loads charge cycles.
func (h *Hierarchy) Access(pc uint64, addr mem.Addr, now uint64) Result {
	h.clock++
	h.stats.DemandAccesses++
	line := LineOf(addr)

	res := h.demandLookup(line, now)

	if h.cfg.Stride.Enabled {
		h.strideObserve(pc, line, now+res.Cycles)
	}
	return res
}

func (h *Hierarchy) demandLookup(line Line, now uint64) Result {
	// A line whose fill is still in flight (a late prefetch) is present
	// in the arrays but its data has not arrived: the consumer pays the
	// residual latency. This check must precede the hit paths.
	if h.maxComplete > now {
		if i := h.findInflight(line, now); i >= 0 {
			c := h.inflight[i].complete
			h.inflight[i].valid = false
			h.stats.MSHRHits++
			h.stats.LatePF++
			h.stats.LLCMisses++
			h.installAll(line, false)
			return Result{Cycles: (c - now) + h.cfg.L1.Latency, LLCMiss: true, Level: 0}
		}
	}
	if hit, wasPF := h.l1.lookup(line, h.clock); hit {
		h.stats.L1Hits++
		if wasPF {
			h.stats.TimelyPF++
			h.l2.clearPF(line)
			h.l3.clearPF(line)
		}
		return Result{Cycles: h.cfg.L1.Latency, Level: 1}
	}
	if hit, wasPF := h.l2.lookup(line, h.clock); hit {
		h.stats.L2Hits++
		if wasPF {
			h.stats.TimelyPF++
			h.l3.clearPF(line)
		}
		h.l1.install(line, h.clock, false)
		return Result{Cycles: h.cfg.L2.Latency, Level: 2}
	}
	if hit, wasPF := h.l3.lookup(line, h.clock); hit {
		h.stats.L3Hits++
		if wasPF {
			h.stats.TimelyPF++
		}
		h.l1.install(line, h.clock, false)
		h.l2.install(line, h.clock, false)
		return Result{Cycles: h.cfg.L3.Latency, Level: 3}
	}
	// Full miss: occupy a DRAM service slot.
	h.stats.DRAMFills++
	h.stats.LLCMisses++
	start := max(now, h.dramFree)
	h.dramFree = start + h.cfg.DRAM.ServiceCycles
	complete := start + h.cfg.DRAM.Latency
	h.installAll(line, false)
	return Result{Cycles: complete - now, LLCMiss: true, Level: 4}
}

// Prefetch requests the line containing addr without blocking. It returns
// true if a fill was actually started (for stats and tests). kind selects
// software vs hardware prefetch accounting.
func (h *Hierarchy) Prefetch(addr mem.Addr, now uint64, kind AccessKind) bool {
	h.clock++
	line := LineOf(addr)
	switch kind {
	case SoftwarePrefetch:
		h.stats.SWPrefetches++
	case HardwarePrefetch:
		h.stats.HWPrefetches++
	}
	if h.l1.present(line) || h.l2.present(line) || h.l3.present(line) {
		return false
	}
	if h.findInflight(line, now) >= 0 {
		return false
	}
	slot := h.allocInflight(now)
	if slot < 0 {
		h.stats.DroppedPF++
		return false
	}
	start := max(now, h.dramFree)
	h.dramFree = start + h.cfg.DRAM.ServiceCycles
	complete := start + h.cfg.DRAM.Latency
	if complete > h.maxComplete {
		h.maxComplete = complete
	}
	h.inflight[slot] = mshr{line: line, complete: complete, valid: true}
	// Install immediately (marked prefetched) so the line participates in
	// replacement from issue time; consumers arriving before completion
	// pay the residual via the inflight table.
	h.installAll(line, true)
	return true
}

// strideObserve trains the stride table on a demand access and issues
// hardware prefetches once confident.
func (h *Hierarchy) strideObserve(pc uint64, line Line, now uint64) {
	e := &h.stride[pc%uint64(len(h.stride))]
	if e.pc != pc {
		*e = strideEntry{pc: pc, last: line}
		return
	}
	d := int64(line) - int64(e.last)
	if d == 0 {
		return // same line; no information
	}
	if d == e.stride {
		e.conf++
	} else {
		e.stride = d
		e.conf = 0
	}
	e.last = line
	if e.conf >= h.cfg.Stride.Confidence {
		for i := 1; i <= h.cfg.Stride.Degree; i++ {
			next := int64(line) + e.stride*int64(i)
			if next < 0 {
				break
			}
			h.Prefetch(mem.Addr(next)<<lineShift, now, HardwarePrefetch)
		}
	}
}

// Present reports whether the line holding addr is in any cache level; used
// by tests and by the useless-prefetch accounting.
func (h *Hierarchy) Present(addr mem.Addr) bool {
	line := LineOf(addr)
	return h.l1.present(line) || h.l2.present(line) || h.l3.present(line)
}
