// Package machine assembles full simulated-machine configurations — core
// model, cache hierarchy, tracer cost model, and profiling parameters — for
// the two servers of the paper's evaluation: an Intel Xeon Gold 6230R
// "Cascade Lake" and a Xeon E5-2618L v3 "Haswell" (§4.1).
//
// Capacity and time scaling. The simulated machines run at 1 MHz (1 cycle =
// 1 µs of simulated wall time), and LLC/L2 capacities are scaled down by
// roughly 128x from the physical parts, so that workloads whose indirect
// working sets exceed the LLC remain laptop-sized. What the paper's
// phenomena depend on is preserved: the *ratios* between the two machines'
// cache capacities, memory latencies and bandwidths, and the ratio of
// RPG²'s phase durations to total run time. The L1 is scaled less
// aggressively because its job in the model — capturing the spatial
// locality of a handful of sequential streams plus the stack — needs a
// minimum number of lines to exist at all.
package machine

import (
	"rpg2/internal/cache"
	"rpg2/internal/cpu"
	"rpg2/internal/isa"
	"rpg2/internal/mem"
	"rpg2/internal/proc"
)

// Machine is a complete simulated-server configuration.
type Machine struct {
	// Name identifies the microarchitecture.
	Name string
	// Hz is simulated cycles per simulated second.
	Hz float64
	// CPU is the per-core configuration.
	CPU cpu.Config
	// Cache is the per-socket hierarchy configuration.
	Cache cache.Config
	// Costs is the tracer stop-the-world cost model, in cycles.
	Costs proc.CostModel
	// PEBSPeriod is the LLC-miss sampling period (every Nth miss).
	PEBSPeriod uint64
	// IPCNoise is the relative standard deviation of IPC measurements,
	// modelling perf-stat noise.
	IPCNoise float64
	// BOLTCycles is the (background, non-stop-the-world) latency of a
	// BOLT rewrite, charged to RPG²'s own timeline (~30 ms in the paper's
	// Table 2).
	BOLTCycles uint64
}

// Seconds converts a simulated duration to cycles on this machine.
func (m Machine) Seconds(s float64) uint64 { return uint64(s * m.Hz) }

// MemLatency is the machine's effective memory latency in cycles: the DRAM
// fill latency plus the L3 lookup that precedes it on every LLC miss. The
// useful prefetch distance scales with how far ahead a load must be issued
// to hide this latency, so the *ratio* of two machines' MemLatency values
// is the first-order translation factor for transplanting a tuned distance
// across microarchitectures.
func (m Machine) MemLatency() uint64 { return m.Cache.DRAM.Latency + m.Cache.L3.Latency }

// ToSeconds converts cycles to simulated seconds.
func (m Machine) ToSeconds(cycles uint64) float64 { return float64(cycles) / m.Hz }

// NewHierarchy builds a fresh cache hierarchy for one process.
func (m Machine) NewHierarchy() *cache.Hierarchy { return cache.New(m.Cache) }

// Launch starts a program on a fresh instance of this machine. setup
// populates the address space and initial registers (see proc.Launch);
// workloads.Workload.Setup satisfies it.
func (m Machine) Launch(bin *isa.Binary, setup func(*mem.AddrSpace, *[isa.NumRegs]uint64)) (*proc.Process, error) {
	return proc.Launch(bin, setup, proc.Options{
		CPU:   m.CPU,
		Hier:  m.NewHierarchy(),
		Costs: m.Costs,
	})
}

// costModel is shared by both machines: tracer syscall costs depend on the
// OS far more than on the microarchitecture. Values are in cycles (= µs)
// and are calibrated so the reproduction's Table 2 lands near the paper's:
// ~1.1-1.4 ms per prefetch-distance edit and ~3-4 ms per code insertion.
func costModel() proc.CostModel {
	return proc.CostModel{
		AttachDetach:  120,
		StopResume:    260,
		PokeText:      160, // ptrace syscall per instruction
		PeekText:      60,
		Regs:          90,
		SingleStep:    45,
		Mprotect:      190,
		AgentPokeText: 14, // libpg2 writes directly inside the target
	}
}

// CascadeLake returns the simulated Xeon Gold 6230R: larger L2/L3, higher
// memory bandwidth, deeper miss-level parallelism, and a lower maximum PEBS
// sampling rate (the paper samples at 12,500/s on this part vs 25,750/s on
// Haswell).
func CascadeLake() Machine {
	return Machine{
		Name: "cascadelake",
		Hz:   1e6,
		// MLP models the out-of-order window's ROB-limited overlap of
		// *demand* misses on short indirect loops (~3-4 on real parts,
		// far below the MSHR count); software prefetches retire
		// immediately and are limited only by MSHRs and bandwidth —
		// that asymmetry is why prefetching pays at all.
		CPU: cpu.Config{MLP: 3, BranchCost: 0},
		Cache: cache.Config{
			L1: cache.LevelConfig{Name: "L1d", Lines: 128, Assoc: 8, Latency: 1},
			L2: cache.LevelConfig{Name: "L2", Lines: 512, Assoc: 16, Latency: 10},
			L3: cache.LevelConfig{Name: "L3", Lines: 4096, Assoc: 16, Latency: 38},
			DRAM: cache.DRAMConfig{
				Latency:       190,
				ServiceCycles: 4,
				MSHRs:         16,
			},
			Stride: cache.StrideConfig{Enabled: true, TableSize: 64, Confidence: 2, Degree: 4},
		},
		Costs:      costModel(),
		PEBSPeriod: 16,
		IPCNoise:   0.01,
		BOLTCycles: 30000, // ~30 ms
	}
}

// Haswell returns the simulated Xeon E5-2618L v3: smaller caches, higher
// memory latency, less bandwidth, shallower MLP.
func Haswell() Machine {
	return Machine{
		Name: "haswell",
		Hz:   1e6,
		CPU:  cpu.Config{MLP: 3, BranchCost: 0},
		Cache: cache.Config{
			L1: cache.LevelConfig{Name: "L1d", Lines: 128, Assoc: 8, Latency: 1},
			L2: cache.LevelConfig{Name: "L2", Lines: 256, Assoc: 8, Latency: 12},
			L3: cache.LevelConfig{Name: "L3", Lines: 2048, Assoc: 16, Latency: 34},
			DRAM: cache.DRAMConfig{
				Latency:       225,
				ServiceCycles: 7,
				MSHRs:         10,
			},
			Stride: cache.StrideConfig{Enabled: true, TableSize: 48, Confidence: 2, Degree: 2},
		},
		Costs:      costModel(),
		PEBSPeriod: 8,
		IPCNoise:   0.015,
		BOLTCycles: 28000,
	}
}

// ByName resolves a machine by its Name.
func ByName(name string) (Machine, bool) {
	switch name {
	case "cascadelake":
		return CascadeLake(), true
	case "haswell":
		return Haswell(), true
	}
	return Machine{}, false
}

// Both returns the two evaluation machines, Cascade Lake first (matching
// the paper's figure order).
func Both() []Machine { return []Machine{CascadeLake(), Haswell()} }
