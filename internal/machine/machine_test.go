package machine

import (
	"testing"

	"rpg2/internal/isa"
)

func TestBothMachinesConstruct(t *testing.T) {
	for _, m := range Both() {
		// Cache geometry must be constructible (power-of-two sets etc.).
		h := m.NewHierarchy()
		if h == nil {
			t.Fatalf("%s: nil hierarchy", m.Name)
		}
		if m.Hz <= 0 || m.PEBSPeriod == 0 || m.BOLTCycles == 0 {
			t.Fatalf("%s: incomplete config %+v", m.Name, m)
		}
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	m := CascadeLake()
	if got := m.Seconds(2.0); got != 2_000_000 {
		t.Fatalf("Seconds(2) = %d", got)
	}
	if got := m.ToSeconds(500_000); got != 0.5 {
		t.Fatalf("ToSeconds = %f", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"cascadelake", "haswell"} {
		m, ok := ByName(name)
		if !ok || m.Name != name {
			t.Fatalf("ByName(%q) = %v, %v", name, m.Name, ok)
		}
	}
	if _, ok := ByName("skylake"); ok {
		t.Fatal("unknown machine resolved")
	}
}

// TestMachineContrasts pins the relationships the evaluation depends on:
// Haswell has smaller caches, higher memory latency, and less bandwidth.
func TestMachineContrasts(t *testing.T) {
	cl, hw := CascadeLake(), Haswell()
	if hw.Cache.L3.Lines >= cl.Cache.L3.Lines {
		t.Fatal("Haswell LLC must be smaller")
	}
	if hw.Cache.L2.Lines >= cl.Cache.L2.Lines {
		t.Fatal("Haswell L2 must be smaller")
	}
	if hw.Cache.DRAM.Latency <= cl.Cache.DRAM.Latency {
		t.Fatal("Haswell memory latency must be higher")
	}
	if hw.Cache.DRAM.ServiceCycles <= cl.Cache.DRAM.ServiceCycles {
		t.Fatal("Haswell bandwidth must be lower")
	}
	// The paper's PEBS rates: Haswell samples at a higher frequency, so
	// its period is shorter.
	if hw.PEBSPeriod >= cl.PEBSPeriod {
		t.Fatal("Haswell PEBS period must be shorter")
	}
}

func TestLaunchViaMachine(t *testing.T) {
	m := CascadeLake()
	// A trivial binary: the machine launch path wires hierarchy and cost
	// model together.
	bin := trivialBinary(t)
	p, err := m.Launch(bin, nil)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	p.Run(100)
	if p.Counters().Instructions == 0 {
		t.Fatal("no execution")
	}
}

// trivialBinary assembles a two-instruction program.
func trivialBinary(t *testing.T) *isa.Binary {
	t.Helper()
	a := isa.NewAsm("main")
	a.MovImm(0, 1).Halt()
	bin, err := isa.NewProgram("main").Add(a).Link()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}
