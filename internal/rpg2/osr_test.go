package rpg2

import (
	"testing"

	"rpg2/internal/bolt"
	"rpg2/internal/isa"
	"rpg2/internal/machine"
	"rpg2/internal/mem"
	"rpg2/internal/proc"
)

// hotLoopBinary builds main -> kernel with an a[f(b[j])] hot loop; main
// calls the kernel repeatedly. Registers: r0=b r1=a r2=n r5=repeats.
func hotLoopBinary(t *testing.T) *isa.Binary {
	t.Helper()
	mn := isa.NewAsm("main")
	mn.MovImm(14, 0)
	mn.Label("again")
	mn.Call("kernel")
	mn.AddImm(14, 14, 1)
	mn.Br(isa.LT, 14, 5, "again")
	mn.Halt()
	k := isa.NewAsm("kernel")
	k.MovImm(8, 0)
	k.Label("loop")
	k.LoadIdx(9, 0, 8, 0)
	k.LoadIdx(10, 1, 9, 0)
	k.Add(11, 11, 10)
	k.AddImm(8, 8, 1)
	k.Br(isa.LT, 8, 2, "loop")
	k.Ret()
	bin, err := isa.NewProgram("main").Add(mn).Add(k).Link()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func hotLoopSetup(n int) func(*mem.AddrSpace, *[isa.NumRegs]uint64) {
	return func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
		b := make([]uint64, n)
		a := make([]uint64, n)
		for i := range b {
			b[i] = uint64((i * 13) % n)
		}
		regs[0] = as.Map("b", b).Base
		regs[1] = as.Map("a", a).Base
		regs[2] = uint64(n)
		regs[5] = 1 << 40 // effectively run forever
	}
}

// prepareInsertion launches the hot loop, runs it into the kernel, and
// performs phase 3.
func prepareInsertion(t *testing.T) (*proc.Process, *proc.Tracer, *proc.LibPG2, *insertion, isa.Function) {
	t.Helper()
	m := machine.CascadeLake()
	bin := hotLoopBinary(t)
	p, err := m.Launch(bin, hotLoopSetup(4096))
	if err != nil {
		t.Fatal(err)
	}
	p.Run(50_000) // definitely inside the kernel's hot loop now
	f0, _ := p.Func("kernel")
	if pc := p.MainThread().Thread.PC; !f0.Contains(pc) {
		t.Fatalf("thread not in kernel (pc=%d)", pc)
	}
	kf, _ := bin.Func("kernel")
	rw, err := bolt.InjectPrefetch(bin, "kernel", []int{kf.Entry + 2}, 16)
	if err != nil {
		t.Fatal(err)
	}
	tr := proc.Attach(p)
	agent := proc.Preload(p)
	ins, err := insertCode(tr, agent, rw)
	if err != nil {
		t.Fatalf("insertCode: %v", err)
	}
	return p, tr, agent, ins, f0
}

func TestInsertCodePerformsOSR(t *testing.T) {
	p, tr, _, ins, f0 := prepareInsertion(t)
	defer tr.Detach()
	f1, ok := p.Func(ins.f1Name)
	if !ok {
		t.Fatal("f1 not injected")
	}
	// The running thread was moved into f1 mid-invocation.
	if pc := p.MainThread().Thread.PC; !f1.Contains(pc) {
		t.Fatalf("OSR did not move the thread (pc=%d, f1=[%d,%d))", pc, f1.Entry, f1.Entry+f1.Size)
	}
	// The call site in main was patched.
	if len(ins.callSites) != 1 {
		t.Fatalf("call sites patched: %d, want 1", len(ins.callSites))
	}
	if p.Text[ins.callSites[0]].Target != ins.f1Entry {
		t.Fatal("call site does not target f1")
	}
	// f0 remains byte-for-byte intact.
	for pc := f0.Entry; pc < f0.Entry+f0.Size; pc++ {
		if p.Text[pc] != hotLoopBinary(t).Text[pc] {
			t.Fatalf("f0 mutated at pc %d", pc)
		}
	}
	// Execution continues correctly and issues prefetches.
	before := p.Threads()[0].Core.Hierarchy().Stats().SWPrefetches
	p.Run(100_000)
	if p.State() == proc.Crashed {
		t.Fatalf("crashed after OSR: %v", p.FaultedThread().Thread.Fault)
	}
	if p.Threads()[0].Core.Hierarchy().Stats().SWPrefetches == before {
		t.Fatal("no software prefetches after injection")
	}
}

func TestRollbackRestoresOriginal(t *testing.T) {
	p, tr, _, ins, f0 := prepareInsertion(t)
	defer tr.Detach()
	p.Run(20_000)
	if _, err := rollback(tr, ins); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	// Thread back in f0.
	if pc := p.MainThread().Thread.PC; !f0.Contains(pc) {
		t.Fatalf("thread not restored to f0 (pc=%d)", pc)
	}
	// Call site restored.
	if p.Text[ins.callSites[0]].Target != f0.Entry {
		t.Fatal("call site not restored")
	}
	// No further software prefetches execute.
	stats0 := p.Threads()[0].Core.Hierarchy().Stats().SWPrefetches
	p.Run(100_000)
	if got := p.Threads()[0].Core.Hierarchy().Stats().SWPrefetches; got != stats0 {
		t.Fatalf("prefetches still executing after rollback (%d new)", got-stats0)
	}
	if p.State() == proc.Crashed {
		t.Fatal("crashed after rollback")
	}
}

// TestRollbackSingleStepsOutOfKernel pins the §3.4.1 corner case: a thread
// stopped inside the prefetch kernel has no BAT entry and must be
// single-stepped until it reaches translatable code.
func TestRollbackSingleStepsOutOfKernel(t *testing.T) {
	p, tr, _, ins, f0 := prepareInsertion(t)
	defer tr.Detach()
	// Run until the thread naturally sits inside the injected kernel
	// (which executes once per loop iteration, so this is quick).
	site := ins.rw.Sites[0]
	kLo := ins.f1Entry + site.KernelOffset
	kHi := kLo + site.KernelLen
	inside := false
	for i := 0; i < 10_000; i++ {
		p.Run(1)
		if pc := p.MainThread().Thread.PC; pc > kLo && pc < kHi {
			inside = true
			break
		}
	}
	if !inside {
		t.Fatal("never observed the thread inside the kernel")
	}
	if _, err := rollback(tr, ins); err != nil {
		t.Fatalf("rollback from inside kernel: %v", err)
	}
	pc := p.MainThread().Thread.PC
	if !f0.Contains(pc) {
		t.Fatalf("thread not back in f0 after single-step rollback (pc=%d)", pc)
	}
	p.Run(50_000)
	if p.State() == proc.Crashed {
		t.Fatalf("crashed after single-step rollback: %v", p.FaultedThread().Thread.Fault)
	}
	// The stack must be balanced: the kernel's push was completed by
	// stepping through to the pop before translation.
	if got, want := p.MainThread().Thread.Regs[isa.SP], p.MainThread().Stack.End()-1; got != want {
		t.Fatalf("stack pointer %d, want %d (one return address)", got, want)
	}
}

// TestOSRMovesEveryThread runs two threads in the hot function and checks
// both get translated.
func TestOSRMovesEveryThread(t *testing.T) {
	m := machine.CascadeLake()
	bin := hotLoopBinary(t)
	p, err := m.Launch(bin, hotLoopSetup(4096))
	if err != nil {
		t.Fatal(err)
	}
	// The second thread runs its own driver loop (spawning straight into
	// the kernel would eventually return on an empty stack).
	regs := p.MainThread().Thread.Regs // copy argument registers
	if _, err := p.SpawnThread("main", regs); err != nil {
		t.Fatal(err)
	}
	p.Run(50_000)
	kf, _ := bin.Func("kernel")
	rw, err := bolt.InjectPrefetch(bin, "kernel", []int{kf.Entry + 2}, 16)
	if err != nil {
		t.Fatal(err)
	}
	tr := proc.Attach(p)
	defer tr.Detach()
	ins, err := insertCode(tr, proc.Preload(p), rw)
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := p.Func(ins.f1Name)
	for _, tc := range p.Threads() {
		if !tc.Thread.Runnable() {
			continue
		}
		if fn, _ := p.FuncAt(tc.Thread.PC); fn.Name != "main" && !f1.Contains(tc.Thread.PC) {
			t.Fatalf("thread %d left behind at pc %d (%s)", tc.ID, tc.Thread.PC, fn.Name)
		}
	}
	p.Run(50_000)
	if p.State() == proc.Crashed {
		t.Fatal("crashed after multithreaded OSR")
	}
}

// TestSetDistanceRewritesLiveCode checks the tuning primitive end to end.
func TestSetDistanceRewritesLiveCode(t *testing.T) {
	p, tr, agent, ins, _ := prepareInsertion(t)
	defer tr.Detach()
	m := machine.CascadeLake()
	c := New(m, Config{})
	if err := c.setDistance(tr, agent, ins, 123); err != nil {
		t.Fatal(err)
	}
	pp := ins.rw.PatchPoints[0]
	if got := p.Text[ins.f1Entry+pp.Offset].Imm; got != 123 {
		t.Fatalf("live immediate = %d, want 123", got)
	}
	p.Run(20_000)
	if p.State() == proc.Crashed {
		t.Fatal("crashed after distance edit")
	}
}
