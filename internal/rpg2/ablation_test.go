package rpg2_test

import (
	"testing"

	"rpg2/internal/machine"
	"rpg2/internal/rpg2"
	"rpg2/internal/workloads"
)

func TestLinearSearchAblationStillTunes(t *testing.T) {
	m := machine.CascadeLake()
	r, _ := optimize(t, "pr", "soc-alpha", m, rpg2.Config{Seed: 5, LinearSearch: true})
	if r.Outcome != rpg2.Tuned {
		t.Fatalf("linear search outcome %v", r.Outcome)
	}
	// The linear scan probes every 7th distance across [1,100]: far more
	// edits than the three-stage search's ~10.
	if r.Costs.PDEdits < 12 {
		t.Fatalf("linear scan explored only %d distances", r.Costs.PDEdits)
	}
}

func TestMPKIMetricAblationFindsNoSignal(t *testing.T) {
	// The paper found tuning on MPKI unusable: distances have little
	// effect on MPKI even when they strongly affect performance (§4.4).
	// Under this ablation the chosen distance is essentially arbitrary,
	// but the machinery must still run to completion without rollback.
	m := machine.CascadeLake()
	r, p := optimize(t, "pr", "soc-alpha", m, rpg2.Config{Seed: 6, UseMPKIMetric: true})
	if r.Outcome != rpg2.Tuned {
		t.Fatalf("MPKI ablation outcome %v", r.Outcome)
	}
	p.Run(m.Seconds(1))
	if got := p.State().String(); got == "crashed" {
		t.Fatal("MPKI ablation crashed the target")
	}
}

func TestRawIPCMetricNeverRollsBackOverheadCases(t *testing.T) {
	// On the lean ISA, raw IPC rewards the kernel's extra instructions,
	// so an overhead-bound case that the default metric rolls back is
	// kept under the raw-IPC ablation — the bias the paper itself hit on
	// sssp/as20000102 (§4.2).
	m := machine.CascadeLake()
	def, _ := optimize(t, "pr", "as20000102-like", m,
		rpg2.Config{Seed: 7, MinSamples: 10})
	raw, _ := optimize(t, "pr", "as20000102-like", m,
		rpg2.Config{Seed: 7, MinSamples: 10, RawIPCMetric: true})
	t.Logf("default=%v rawIPC=%v", def.Outcome, raw.Outcome)
	if def.Outcome != rpg2.RolledBack {
		t.Fatalf("default metric should roll back the LLC-resident input, got %v", def.Outcome)
	}
	if raw.Outcome != rpg2.Tuned {
		t.Fatalf("raw-IPC metric should be fooled into keeping it, got %v", raw.Outcome)
	}
}

func TestDisableRollbackKeepsHarmfulPrefetch(t *testing.T) {
	m := machine.CascadeLake()
	r, p := optimize(t, "pr", "as20000102-like", m,
		rpg2.Config{Seed: 8, MinSamples: 10, DisableRollback: true})
	if r.Outcome != rpg2.Tuned {
		t.Fatalf("rollback disabled must keep the code, got %v", r.Outcome)
	}
	// The injected function is still live.
	f1, ok := p.Func("kernel.bolt")
	if !ok {
		t.Fatal("f1 missing")
	}
	p.Run(m.Seconds(1))
	pc := p.MainThread().Thread.PC
	if fn, _ := p.FuncAt(pc); fn.Name != f1.Name && fn.Name != "main" {
		t.Fatalf("execution in %q, expected the injected function", fn.Name)
	}
}

func TestTargetExitedDuringProfiling(t *testing.T) {
	m := machine.CascadeLake()
	// A workload with so few repeats it halts during the profiling phase.
	w, err := workloads.Build("pr", "as20000102-like", 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		t.Fatal(err)
	}
	// Profile longer than the target's remaining lifetime (~2.5 simulated
	// seconds) so it halts inside the profiling phase.
	ctl := rpg2.New(m, rpg2.Config{Seed: 9, ProfileSeconds: 6})
	r, err := ctl.Optimize(p)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if r.Outcome != rpg2.TargetExited {
		t.Fatalf("outcome %v, want target-exited", r.Outcome)
	}
}

func TestProfilingDurationAffectsSamples(t *testing.T) {
	m := machine.CascadeLake()
	short, _ := optimize(t, "pr", "soc-alpha", m, rpg2.Config{Seed: 10, ProfileSeconds: 0.5})
	long, _ := optimize(t, "pr", "soc-alpha", m, rpg2.Config{Seed: 10, ProfileSeconds: 4})
	if long.Samples <= short.Samples {
		t.Fatalf("longer profiling gathered fewer samples: %d vs %d", long.Samples, short.Samples)
	}
}

func TestReportTimelineIsOrderedAndPhased(t *testing.T) {
	m := machine.CascadeLake()
	r, _ := optimize(t, "pr", "soc-alpha", m, rpg2.Config{Seed: 11})
	if len(r.Timeline) < 5 {
		t.Fatalf("timeline has %d points", len(r.Timeline))
	}
	phases := map[string]bool{}
	last := -1.0
	for _, pt := range r.Timeline {
		if pt.Seconds < last {
			t.Fatal("timeline not monotone")
		}
		last = pt.Seconds
		phases[pt.Phase] = true
	}
	for _, want := range []string{"profile", "insert", "tune"} {
		if !phases[want] {
			t.Errorf("timeline missing phase %q (have %v)", want, phases)
		}
	}
}

func TestExploredDistancesWithinBounds(t *testing.T) {
	m := machine.Haswell()
	r, _ := optimize(t, "is", "", m, rpg2.Config{Seed: 12})
	if len(r.Explored) == 0 {
		t.Fatal("nothing explored")
	}
	for d := range r.Explored {
		if d < 1 || d > 200 {
			t.Fatalf("explored distance %d outside [1,200]", d)
		}
	}
	if r.InitialDistance < 1 || r.InitialDistance > 100 {
		t.Fatalf("initial distance %d outside [1,100]", r.InitialDistance)
	}
}
