package rpg2

import (
	"fmt"

	"rpg2/internal/bolt"
	"rpg2/internal/isa"
	"rpg2/internal/proc"
)

// insertion records everything needed to tune and, if necessary, undo an
// injected optimization: where f1 lives, the BAT, patched call sites, and
// the distance patch points.
type insertion struct {
	rw      *bolt.Rewrite
	f0      isa.Function
	f1Entry int
	f1Name  string
	// callSites are text PCs whose Call target was moved from f0 to f1.
	callSites []int
	stolen    uint64 // stop-the-world cycles spent inserting
}

// snapshotBinary reconstructs a Binary view of the process's current code,
// which is what BOLT lifts (RPG² operates on the program binary that
// launched the process, §1 — the process text is identical until we edit it).
func (c *Controller) snapshotBinary(p *proc.Process) *isa.Binary {
	return &isa.Binary{
		Text:      append([]isa.Instr(nil), p.Text...),
		Funcs:     append([]isa.Function(nil), p.Funcs...),
		EntryName: "main",
	}
}

// insertCode performs phase 3 (§3.3): pause the target, inject f1 through
// the libpg2 agent, patch direct call sites from f0 to f1, and translate
// every thread PC (and any f0 return address on thread stacks) through the
// BAT — on-stack replacement for an unmanaged program.
func insertCode(tr *proc.Tracer, agent *proc.LibPG2, rw *bolt.Rewrite) (*insertion, error) {
	p := tr.Process()
	f0, ok := p.Func(rw.FuncName)
	if !ok {
		return nil, fmt.Errorf("target lost function %q", rw.FuncName)
	}
	stolen0 := p.StolenCycles()
	tr.Stop()

	// The agent copies the new code into fresh pages inside the address
	// space; f0 is left intact at its original location so rollback and
	// exotic code pointers keep working (§3.3).
	base := agent.NextPC()
	code := rw.Rebase(base)
	f1Name := uniqueName(p, rw.NewName)
	entry, err := agent.InjectCode(f1Name, code)
	if err != nil {
		return nil, err
	}
	if !tr.WaitSIGSTOP() {
		return nil, fmt.Errorf("libpg2 did not signal injection completion")
	}
	ins := &insertion{rw: rw, f0: f0, f1Entry: entry, f1Name: f1Name}

	// Patch direct calls to f0 (future invocations run f1).
	for pc := 0; pc < base; pc++ {
		in, err := tr.PeekText(pc)
		if err != nil {
			return nil, err
		}
		if in.Op == isa.Call && in.Target == f0.Entry {
			in.Target = entry
			if err := tr.PokeText(pc, in); err != nil {
				return nil, err
			}
			ins.callSites = append(ins.callSites, pc)
		}
	}

	// On-stack replacement: move any thread currently executing f0 to
	// the corresponding f1 PC via the BAT (§3.3.1).
	for _, tc := range p.Threads() {
		regs, err := tr.GetRegs(tc.ID)
		if err != nil {
			return nil, err
		}
		changed := false
		if f0.Contains(regs.PC) {
			off, ok := rw.BAT.Translate(regs.PC)
			if !ok {
				return nil, fmt.Errorf("BAT has no entry for f0 pc %d", regs.PC)
			}
			regs.PC = entry + off
			changed = true
		}
		if changed {
			if err := tr.SetRegs(tc.ID, regs); err != nil {
				return nil, err
			}
		}
		// Return addresses into f0 on the thread's stack (f0 may be
		// mid-call into a helper) are translated the same way.
		if err := patchStack(tr, tc, f0, func(pc int) (int, bool) {
			off, ok := rw.BAT.Translate(pc)
			return entry + off, ok
		}); err != nil {
			return nil, err
		}
	}
	tr.Resume()
	ins.stolen = p.StolenCycles() - stolen0
	return ins, nil
}

// patchStack rewrites stack words that are return addresses into the given
// function, using translate to map them.
func patchStack(tr *proc.Tracer, tc *proc.ThreadCtx, f isa.Function, translate func(int) (int, bool)) error {
	p := tr.Process()
	regs, err := tr.GetRegs(tc.ID)
	if err != nil {
		return err
	}
	sp := regs.Regs[isa.SP]
	for a := sp; a < tc.Stack.End(); a++ {
		v, ok := p.AS.Read(a)
		if !ok {
			break
		}
		pc := int(v)
		if !f.Contains(pc) {
			continue
		}
		npc, ok := translate(pc)
		if !ok {
			continue
		}
		p.AS.Write(a, uint64(npc))
	}
	return nil
}

// uniqueName avoids symbol collisions across repeated injections.
func uniqueName(p *proc.Process, base string) string {
	name := base
	for i := 1; ; i++ {
		if _, exists := p.Func(name); !exists {
			return name
		}
		name = fmt.Sprintf("%s.%d", base, i)
	}
}

// maxRollbackSteps bounds single-stepping out of a prefetch kernel; kernels
// are a handful of instructions, so this is generous.
const maxRollbackSteps = 256

// rollback undoes an insertion (§3.4.1): call sites are restored, thread
// PCs inside f1 are translated back to f0 through the BAT — single-stepping
// threads whose PC sits inside a prefetch kernel, which has no BAT entry,
// until they reach translatable code — and stack return addresses into f1
// are restored. f1 stays in memory but becomes unreachable. It returns the
// stop-the-world cycles spent.
func rollback(tr *proc.Tracer, ins *insertion) (uint64, error) {
	p := tr.Process()
	stolen0 := p.StolenCycles()
	tr.Stop()
	defer tr.Resume()

	for _, pc := range ins.callSites {
		in, err := tr.PeekText(pc)
		if err != nil {
			return 0, err
		}
		if in.Op == isa.Call && in.Target == ins.f1Entry {
			in.Target = ins.f0.Entry
			if err := tr.PokeText(pc, in); err != nil {
				return 0, err
			}
		}
	}
	f1, ok := p.Func(ins.f1Name)
	if !ok {
		return 0, fmt.Errorf("target lost injected function %q", ins.f1Name)
	}
	for _, tc := range p.Threads() {
		regs, err := tr.GetRegs(tc.ID)
		if err != nil {
			return 0, err
		}
		if f1.Contains(regs.PC) {
			steps := 0
			for {
				off := regs.PC - ins.f1Entry
				if pc0, ok := ins.rw.BAT.TranslateBack(off); ok {
					regs.PC = pc0
					if err := tr.SetRegs(tc.ID, regs); err != nil {
						return 0, err
					}
					break
				}
				// Inside a prefetch kernel: no BAT entry exists, so
				// single-step until the PC reaches translated code.
				if steps++; steps > maxRollbackSteps {
					return 0, fmt.Errorf("thread %d stuck inside prefetch kernel", tc.ID)
				}
				if err := tr.SingleStep(tc.ID); err != nil {
					return 0, err
				}
				regs, err = tr.GetRegs(tc.ID)
				if err != nil {
					return 0, err
				}
				if !f1.Contains(regs.PC) {
					break // stepped out of f1 entirely (e.g. returned)
				}
			}
		}
		if err := patchStack(tr, tc, f1, func(pc int) (int, bool) {
			return ins.rw.BAT.TranslateBack(pc - ins.f1Entry)
		}); err != nil {
			return 0, err
		}
	}
	return p.StolenCycles() - stolen0, nil
}
