package rpg2

import (
	"rpg2/internal/perf"
	"rpg2/internal/proc"
)

// measurement pairs a distance with the observed value of the tuning metric
// (miss-site work rate by default; raw IPC or negated MPKI under the
// ablations).
type measurement struct {
	d      int
	ipc    float64
	rate   float64
	metric float64
}

// setDistance edits the prefetch-distance immediates of every kernel in the
// live code through the libpg2 agent: pause, rewrite the few bytes at each
// patch point, resume (§3.4). All sites share the same distance, mirroring
// RPG²'s symmetric-distance policy (§3.4, Figure 13 discussion).
func (c *Controller) setDistance(tr *proc.Tracer, agent *proc.LibPG2, ins *insertion, d int) error {
	tr.Stop()
	for _, pp := range ins.rw.PatchPoints {
		pc := ins.f1Entry + pp.Offset
		in, err := tr.PeekText(pc)
		if err != nil {
			return err
		}
		if err := agent.PokeText(pc, pp.Apply(in, d)); err != nil {
			return err
		}
	}
	tr.Resume()
	return nil
}

// SetSiteDistance edits a single site's distance, leaving the others alone.
// RPG²'s own search never does this (it keeps distances symmetric for
// tractability), but the asymmetric-distance experiment of Figure 13 uses it.
func (c *Controller) SetSiteDistance(tr *proc.Tracer, agent *proc.LibPG2, ins *insertion, site, d int) error {
	tr.Stop()
	pp := ins.rw.PatchPoints[site]
	pc := ins.f1Entry + pp.Offset
	in, err := tr.PeekText(pc)
	if err != nil {
		return err
	}
	if err := agent.PokeText(pc, pp.Apply(in, d)); err != nil {
		return err
	}
	tr.Resume()
	return nil
}

// measureAt installs distance d, lets the target warm up, and measures one
// window of the tuning metric. Results are cached in the report.
func (c *Controller) measureAt(tr *proc.Tracer, agent *proc.LibPG2, ins *insertion, r *Report,
	record func(string, float64, float64), d int) (measurement, error) {

	if m, ok := r.explored[d]; ok {
		return m, nil
	}
	p := tr.Process()
	stolen0 := p.StolenCycles()
	if err := c.setDistance(tr, agent, ins, d); err != nil {
		return measurement{}, err
	}
	editCost := p.StolenCycles() - stolen0
	r.Costs.PDEditSeconds += c.mach.ToSeconds(editCost) // averaged later
	r.Costs.PDEdits++

	p.Run(c.mach.Seconds(c.cfg.WarmupSeconds))
	w := perf.MeasureWatch(p, c.watch, c.mach.Seconds(c.cfg.WindowSeconds), c.rng, c.mach.IPCNoise)
	record("tune", w.IPC, w.Rate)
	m := measurement{d: d, ipc: w.IPC, rate: w.Rate}
	switch {
	case c.cfg.UseMPKIMetric:
		m.metric = -w.MPKI
	case c.cfg.RawIPCMetric:
		m.metric = w.IPC
	default:
		m.metric = w.Rate
	}
	r.explored[d] = m
	r.Explored[d] = m.metric
	return m, nil
}

// clampDistance keeps distances within [1, MaxDistance].
func (c *Controller) clampDistance(d int) int {
	if d < 1 {
		return 1
	}
	if d > c.cfg.MaxDistance {
		return c.cfg.MaxDistance
	}
	return d
}

// tune runs the prefetch-distance search (§3.4). It has three stages:
//
//	Stage 1: from the random starting distance r, measure r-5, r, r+5 and
//	         take the gradient to pick a direction.
//	Stage 2: step in that direction with doubling jump sizes while the
//	         metric keeps improving; stepping outside [1, 200] ends the
//	         search with the best measurement so far.
//	Stage 3: binary-search the interval bracketed by the last two probes
//	         for a local optimum.
//
// Under the LinearSearch ablation it instead scans a fixed stride across
// the range. It returns the best measurement observed.
func (c *Controller) tune(tr *proc.Tracer, agent *proc.LibPG2, ins *insertion, r *Report,
	record func(string, float64, float64)) (measurement, error) {

	switch {
	case c.cfg.UseMPKIMetric:
		// No baseline MPKI is captured, so rollback effectively never
		// fires under this ablation. (The paper found MPKI to be an
		// unusable tuning metric, §4.4; this ablation demonstrates why.)
		r.baselineMetric = -1e18
	case c.cfg.RawIPCMetric:
		r.baselineMetric = r.BaselineIPC
	default:
		r.baselineMetric = r.BaselineRate
	}
	r.explored = make(map[int]measurement)

	best := measurement{d: 0, metric: -1e30}
	consider := func(m measurement) {
		if m.metric > best.metric {
			best = m
		}
	}
	measure := func(d int) (measurement, error) {
		m, err := c.measureAt(tr, agent, ins, r, record, d)
		if err == nil {
			consider(m)
		}
		return m, err
	}
	alive := func() bool { return tr.Process().State() == proc.Running }

	if c.cfg.LinearSearch {
		for d := 1; d <= c.cfg.MaxInitialDistance && alive(); d += 7 {
			if _, err := measure(d); err != nil {
				return best, err
			}
		}
		c.finishCosts(r)
		return best, nil
	}

	// ---- Stage 1: gradient at r-span, r, r+span ---------------------
	// Cold sessions probe ±5 around the random start (§3.4). A session
	// warm-started from a cached tuned distance probes a narrow ±2 span
	// instead, and stops after just these three measurements when the
	// seed is still a local optimum — the profile store's fast path. A
	// *translated* seed keeps the cold span and skips the fast path: the
	// scaled distance is a cross-machine hypothesis, not a local optimum
	// observed here, so it must earn its keep through the full gradient.
	seeded := c.cfg.SeedDistance > 0 && !c.cfg.SeedTranslated
	r0 := r.InitialDistance
	span := 5
	if seeded {
		span = 2
	}
	// Clamping can alias an endpoint onto the start itself (a seed of 1
	// with the warm ±2 span yields lo == r0; a seed at MaxDistance yields
	// hi == r0). An aliased endpoint reuses the start's measurement
	// instead of issuing a duplicate probe.
	lo := c.clampDistance(r0 - span)
	hi := c.clampDistance(r0 + span)
	mLo, err := measure(lo)
	if err != nil || !alive() {
		c.finishCosts(r)
		return best, err
	}
	mMid := mLo
	if r0 != lo {
		mMid, err = measure(r0)
		if err != nil || !alive() {
			c.finishCosts(r)
			return best, err
		}
	}
	mHi := mMid
	if hi != r0 {
		mHi, err = measure(hi)
		if err != nil || !alive() {
			c.finishCosts(r)
			return best, err
		}
	}
	if seeded {
		// Accept the seed as a local optimum if neither neighbour beats
		// it by more than the measurement noise — otherwise a ±1σ
		// fluctuation sends a warm session on a full walk and the
		// store's probe savings evaporate.
		guard := 1 - 2*c.mach.IPCNoise
		if mMid.metric >= guard*mLo.metric && mMid.metric >= guard*mHi.metric {
			c.finishCosts(r)
			return best, nil
		}
	}
	dir := 1
	if mLo.metric > mHi.metric {
		dir = -1
	}

	// ---- Stage 2: doubling jumps in the chosen direction ------------
	prev := r.explored[r0]
	jump := span
	bracketLo, bracketHi := -1, -1
	for alive() {
		next := prev.d + dir*jump
		if next < 1 || next > c.cfg.MaxDistance {
			// Out of range: terminate with the best so far (§3.4).
			c.finishCosts(r)
			return best, nil
		}
		m, err := measure(next)
		if err != nil {
			c.finishCosts(r)
			return best, err
		}
		if m.metric < prev.metric {
			// First decrease: bracket [prev, m] for stage 3.
			bracketLo, bracketHi = prev.d, m.d
			if bracketLo > bracketHi {
				bracketLo, bracketHi = bracketHi, bracketLo
			}
			break
		}
		prev = m
		jump *= 2
	}
	if bracketLo < 0 || !alive() {
		c.finishCosts(r)
		return best, nil
	}

	// ---- Stage 3: binary search inside the bracket ------------------
	loMetric := r.explored[bracketLo].metric
	hiMetric := r.explored[bracketHi].metric
	for bracketHi-bracketLo > 2 && alive() {
		mid := (bracketLo + bracketHi) / 2
		m, err := measure(mid)
		if err != nil {
			c.finishCosts(r)
			return best, err
		}
		if loMetric > hiMetric {
			bracketHi, hiMetric = mid, m.metric
		} else {
			bracketLo, loMetric = mid, m.metric
		}
	}
	c.finishCosts(r)
	return best, nil
}

// finishCosts converts the accumulated edit cost into a per-edit mean.
func (c *Controller) finishCosts(r *Report) {
	if r.Costs.PDEdits > 0 {
		r.Costs.PDEditSeconds /= float64(r.Costs.PDEdits)
	}
}
