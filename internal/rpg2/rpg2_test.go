package rpg2_test

import (
	"testing"

	"rpg2/internal/isa"
	"rpg2/internal/machine"
	"rpg2/internal/proc"
	"rpg2/internal/rpg2"
	"rpg2/internal/workloads"
)

// optimize launches a workload, runs RPG² against it, and returns the
// report plus the still-running process.
func optimize(t *testing.T, bench, input string, m machine.Machine, cfg rpg2.Config) (*rpg2.Report, *proc.Process) {
	t.Helper()
	w, err := workloads.Build(bench, input, 1<<30)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	ctl := rpg2.New(m, cfg)
	r, err := ctl.Optimize(p)
	if err != nil {
		t.Fatalf("Optimize: %v (outcome %v)", err, r.Outcome)
	}
	return r, p
}

func TestOptimizePRTunes(t *testing.T) {
	m := machine.CascadeLake()
	r, p := optimize(t, "pr", "soc-alpha", m, rpg2.Config{Seed: 1})
	t.Logf("outcome=%v baselineIPC=%.3f bestIPC=%.3f d=%d edits=%d samples=%d",
		r.Outcome, r.BaselineIPC, r.BestIPC, r.FinalDistance, r.Costs.PDEdits, r.Samples)
	if r.Outcome != rpg2.Tuned {
		t.Fatalf("expected Tuned on a miss-heavy input, got %v", r.Outcome)
	}
	if r.BestIPC <= r.BaselineIPC {
		t.Fatalf("tuned IPC %.3f did not beat baseline %.3f", r.BestIPC, r.BaselineIPC)
	}
	if r.FinalDistance < 1 || r.FinalDistance > 200 {
		t.Fatalf("distance %d outside [1,200]", r.FinalDistance)
	}
	if len(r.Sites) != 1 {
		t.Fatalf("pr should have 1 prefetch site, got %d", len(r.Sites))
	}
	// After detach the process keeps running the optimized code.
	p.Run(m.Seconds(2))
	if got := p.State(); got != proc.Running && got != proc.Exited {
		t.Fatalf("process state after detach: %v", got)
	}
	// Verify the installed distance is actually encoded in live code.
	f1, ok := p.Func("kernel.bolt")
	if !ok {
		t.Fatal("injected function not in symbol table")
	}
	found := false
	for pc := f1.Entry; pc < f1.Entry+f1.Size; pc++ {
		in := p.Text[pc]
		if in.Op == isa.AddImm && in.Imm == int64(r.FinalDistance) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no AddImm with distance %d found in injected code", r.FinalDistance)
	}
}

func TestOptimizeSmallInputDoesNotHurt(t *testing.T) {
	m := machine.CascadeLake()
	r, p := optimize(t, "pr", "as20000102-like", m, rpg2.Config{Seed: 2})
	t.Logf("small input: outcome=%v samples=%d baseline=%.3f best=%.3f",
		r.Outcome, r.Samples, r.BaselineIPC, r.BestIPC)
	// An LLC-resident input must either fail activation (too few misses)
	// or be rolled back; RPG² must not leave harmful prefetching in.
	if r.Outcome == rpg2.Tuned && r.BestIPC < r.BaselineIPC {
		t.Fatalf("kept a harmful configuration: %v", r.Outcome)
	}
	if r.Outcome == rpg2.RolledBack {
		// After rollback every thread must be executing f0 again.
		for _, tc := range p.Threads() {
			if f, ok := p.FuncAt(tc.Thread.PC); ok && f.Name != "main" && f.Name != "kernel" {
				t.Fatalf("thread %d still in %q after rollback", tc.ID, f.Name)
			}
		}
		p.Run(m.Seconds(1))
		if p.State() == proc.Crashed {
			t.Fatal("process crashed after rollback")
		}
	}
}

func TestOptimizeSSSPFindsTwoSites(t *testing.T) {
	m := machine.CascadeLake()
	r, _ := optimize(t, "sssp", "as-skitter-like", m, rpg2.Config{Seed: 3})
	t.Logf("sssp: outcome=%v sites=%d d=%d", r.Outcome, len(r.Sites), r.FinalDistance)
	if r.Outcome != rpg2.Tuned && r.Outcome != rpg2.RolledBack {
		t.Fatalf("sssp did not activate: %v", r.Outcome)
	}
	if len(r.Sites) != 2 {
		t.Fatalf("sssp should expose 2 prefetch sites, got %d", len(r.Sites))
	}
}

func TestOptimizeNeverCrashesTarget(t *testing.T) {
	m := machine.Haswell()
	for _, bench := range []string{"pr", "sssp", "bc", "is", "cg", "randacc", "bfs"} {
		input := ""
		switch bench {
		case "pr":
			input = "gowalla-like"
		case "sssp":
			input = "soc-beta"
		case "bfs":
			input = "brightkite-like"
		case "bc":
			input = "synth-p1"
		}
		t.Run(bench, func(t *testing.T) {
			r, p := optimize(t, bench, input, m, rpg2.Config{Seed: 4})
			p.Run(m.Seconds(3))
			if p.State() == proc.Crashed {
				ft := p.FaultedThread()
				t.Fatalf("%s crashed after %v: %v at pc %d", bench, r.Outcome, ft.Thread.Fault, ft.Thread.PC)
			}
			t.Logf("%s: %v (baseline %.3f, best %.3f, d=%d)", bench, r.Outcome, r.BaselineIPC, r.BestIPC, r.FinalDistance)
		})
	}
}
