// Package rpg2 implements the paper's contribution: the RPG² controller for
// online prefetch injection and tuning. It attaches to a running process
// and proceeds through four phases (§3):
//
//  1. Profiling: sample LLC misses with PEBS-style hardware profiling and
//     establish the baseline IPC.
//  2. Code analysis & generation: run the BOLT InjectPrefetchPass over the
//     hottest function to produce an optimized function f1 with prefetch
//     kernels and a BAT.
//  3. Runtime code insertion: inject f1 into the target's address space via
//     the libpg2 agent, patch call sites, and perform on-stack replacement
//     of thread PCs (and f0 return addresses) using the BAT.
//  4. Monitoring & tuning: search prefetch distances with a three-stage
//     algorithm (gradient probe, doubling, binary search), editing the
//     distance immediates in live code; if no distance beats the baseline,
//     roll back to f0.
//
// Everything except the brief stop-the-world operations happens while the
// target continues to run, and the stop-the-world costs are charged to the
// target's clock through the tracer cost model, so the controller's
// operation-latency report regenerates the paper's Table 2.
package rpg2

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"

	"rpg2/internal/bolt"
	"rpg2/internal/cpu"
	"rpg2/internal/machine"
	"rpg2/internal/perf"
	"rpg2/internal/proc"
)

// Config tunes the controller. The zero value is completed by Defaults.
type Config struct {
	// ProfileSeconds is the PEBS sampling period (paper default: 2 s).
	ProfileSeconds float64
	// MinSamples is the activation threshold: with fewer PEBS records the
	// controller does not optimize (the paper's "not enough profiling
	// data" runs).
	MinSamples int
	// CandidateShare keeps only loads causing at least this fraction of
	// their function's sampled misses (paper: 10%).
	CandidateShare float64
	// WindowSeconds is one IPC measurement window (paper: 0.3 s).
	WindowSeconds float64
	// WarmupSeconds runs after each distance edit before measuring, so
	// in-flight prefetches at the old distance drain.
	WarmupSeconds float64
	// MaxInitialDistance bounds the random starting distance (paper: 100).
	MaxInitialDistance int
	// MaxDistance caps the search range (paper: 200).
	MaxDistance int
	// MinImprovement is the relative IPC gain over baseline required to
	// keep prefetching instead of rolling back.
	MinImprovement float64
	// Seed drives the controller's randomness (initial distance) and the
	// measurement noise.
	Seed int64
	// DisableRollback keeps the prefetching code even when it loses to
	// the baseline (ablation).
	DisableRollback bool
	// UseMPKIMetric tunes on LLC-MPKI reduction instead of the default
	// metric (the ablation the paper reports trying and abandoning, §4.4).
	UseMPKIMetric bool
	// RawIPCMetric tunes on raw IPC, exactly as the paper's prose
	// describes. On this reproduction's lean ISA the prefetch kernel's
	// extra instructions inflate IPC much more than on x86 (where one
	// instruction does more work), so the default metric is instead the
	// miss-site retirement rate — work per cycle — which is the signal
	// IPC approximates on real hardware. The raw-IPC mode demonstrates
	// the bias the paper itself observed on sssp/as20000102 (§4.2).
	RawIPCMetric bool
	// LinearSearch replaces the three-stage search with a fixed-stride
	// linear scan (ablation).
	LinearSearch bool
	// SeedFunc and SeedCandidates warm-start the controller from a
	// previously profiled session on a matching (benchmark, input,
	// machine): the candidate prefetch sites are taken as given instead
	// of being mined from this session's PEBS samples, and the MinSamples
	// activation gate is waived (the cached profile is the activation
	// evidence). Profiling still runs — shortened via ProfileSeconds if
	// the caller wants — because the baseline IPC and miss-site
	// retirement rate must be measured on *this* process. The fleet's
	// profile store is the intended caller.
	SeedFunc       string
	SeedCandidates []int
	// SeedDistance starts the distance search at a previously tuned
	// distance instead of a random one. The search then opens with a
	// narrow ±2 gradient span and terminates immediately if the seed is a
	// local optimum, so a good seed converges in as few as three probes.
	SeedDistance int
	// SeedTranslated marks SeedDistance as a cross-machine hypothesis
	// rather than a distance tuned on *this* machine: the search keeps the
	// cold ±5 gradient span and never takes the warm fast-path accept, so
	// a mistranslated distance is walked away from instead of locked in.
	// The fleet's profile-translation layer is the intended caller.
	SeedTranslated bool
	// OnPhase, when non-nil, is invoked at each controller phase
	// transition with the phase name ("profile", "rewrite", "insert",
	// "tune", "detach") and the session-relative simulated time in
	// seconds. The fleet's event journal listens here; the hook must not
	// touch the target process.
	OnPhase func(phase string, seconds float64)
	// FaultHook, when non-nil, is consulted at the controller's three
	// fault-injection boundaries — "profile" (end of PEBS collection),
	// "rewrite" (before the BOLT pass), and "osr" (before runtime code
	// insertion). A non-nil return aborts the session with that error,
	// before the target is perturbed by the stage in question. The
	// fleet's deterministic fault injector is the intended caller.
	FaultHook func(stage string) error
	// AutoPhaseDetect ignores the benchmark's explicit end-of-init signal
	// and instead detects the transition to the main phase from the IPC
	// trace: profiling starts once several consecutive short windows
	// agree. The paper relies on modified benchmarks that signal init
	// completion and names phase detection as the automatic alternative
	// (§4.1); this implements that alternative.
	AutoPhaseDetect bool
	// PhaseDetectTimeout caps the wait for a stable phase (default 8 s).
	PhaseDetectTimeout float64
}

// Defaults fills unset fields with the paper's values.
func (c Config) Defaults() Config {
	if c.ProfileSeconds == 0 {
		c.ProfileSeconds = 2.0
	}
	if c.MinSamples == 0 {
		c.MinSamples = 100
	}
	if c.CandidateShare == 0 {
		c.CandidateShare = 0.10
	}
	if c.WindowSeconds == 0 {
		c.WindowSeconds = 0.3
	}
	if c.WarmupSeconds == 0 {
		c.WarmupSeconds = 0.05
	}
	if c.MaxInitialDistance == 0 {
		c.MaxInitialDistance = 100
	}
	if c.MaxDistance == 0 {
		c.MaxDistance = 200
	}
	if c.MinImprovement == 0 {
		c.MinImprovement = 0.01
	}
	if c.PhaseDetectTimeout == 0 {
		c.PhaseDetectTimeout = 8.0
	}
	return c
}

// Outcome summarises what the controller did to the target.
type Outcome uint8

// Outcomes.
const (
	// NotActivated: too few samples or no supported candidate loads; the
	// target was left untouched.
	NotActivated Outcome = iota
	// Tuned: prefetching was injected and a beneficial distance installed.
	Tuned
	// RolledBack: prefetching was injected, no distance beat the
	// baseline, and execution was steered back to f0.
	RolledBack
	// TargetExited: the target finished before optimization completed.
	TargetExited
)

func (o Outcome) String() string {
	switch o {
	case NotActivated:
		return "not-activated"
	case Tuned:
		return "tuned"
	case RolledBack:
		return "rolled-back"
	case TargetExited:
		return "target-exited"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// MarshalJSON encodes the outcome as its string name, so session reports
// serialise readably (cmd/rpg2 -json and the fleet journal share this).
func (o Outcome) MarshalJSON() ([]byte, error) { return json.Marshal(o.String()) }

// UnmarshalJSON accepts the string names produced by MarshalJSON.
func (o *Outcome) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for _, c := range []Outcome{NotActivated, Tuned, RolledBack, TargetExited} {
		if c.String() == s {
			*o = c
			return nil
		}
	}
	return fmt.Errorf("rpg2: unknown outcome %q", s)
}

// TimelinePoint is one performance observation on the controller's
// timeline, tagged with the phase that produced it (Figure 10's raw data).
type TimelinePoint struct {
	Seconds float64
	IPC     float64
	// Rate is the miss-site retirement rate (0 before candidates are
	// known).
	Rate  float64
	Phase string
}

// OpCosts reports the latency of key controller operations in simulated
// seconds — the rows of the paper's Table 2.
type OpCosts struct {
	// ExecSeconds spans profiling start to detach.
	ExecSeconds float64
	// BOLTSeconds is the background binary-rewrite latency.
	BOLTSeconds float64
	// CodeInsertSeconds is the stop-the-world cost of phase 3.
	CodeInsertSeconds float64
	// PDEditSeconds is the mean stop-the-world cost of one prefetch
	// distance edit.
	PDEditSeconds float64
	// PDEdits is the number of distances explored by the search.
	PDEdits int
	// RollbackSeconds is the stop-the-world cost of rolling back (zero
	// unless Outcome is RolledBack).
	RollbackSeconds float64
}

// Report is the controller's account of one optimization session.
type Report struct {
	Outcome  Outcome
	FuncName string
	// Sites are the injected prefetch kernels (empty if not activated).
	Sites []bolt.Site
	// F1Entry is the injected function's entry PC (if activated).
	F1Entry int
	// BaselineIPC is the IPC observed during profiling.
	BaselineIPC float64
	// BaselineRate is the miss-site retirement rate (work per cycle)
	// observed before optimization.
	BaselineRate float64
	// BestIPC is the IPC at the best tuned distance.
	BestIPC float64
	// BestRate is the best tuned work rate found.
	BestRate float64
	// InitialDistance is the random starting distance r.
	InitialDistance int
	// FinalDistance is the installed distance (if Tuned).
	FinalDistance int
	// Explored maps each measured distance to its observed value of the
	// tuning metric.
	Explored map[int]float64
	// Samples is the number of PEBS records collected.
	Samples int
	// Costs regenerates Table 2.
	Costs OpCosts
	// Timeline is the IPC trace of the session (Figure 10).
	Timeline []TimelinePoint

	// baselineMetric is the baseline value of the active tuning metric.
	baselineMetric float64
	// explored caches full measurements per distance.
	explored map[int]measurement
	// ins is the live insertion handle of a Tuned session, retained so a
	// later Retune can re-enter the distance search against the injected
	// code without re-profiling. In-process only: it does not survive
	// JSON (see Report.CanRetune).
	ins *insertion
}

// Controller runs RPG² against one target process.
type Controller struct {
	mach machine.Machine
	cfg  Config
	rng  *rand.Rand
	// watch is the controller's private work counter over the candidate
	// miss sites, attached during phase 1.
	watch *cpu.Watch
}

// New builds a controller for a machine.
func New(mach machine.Machine, cfg Config) *Controller {
	c := cfg.Defaults()
	return &Controller{mach: mach, cfg: c, rng: rand.New(rand.NewSource(c.Seed))}
}

// ErrCrashed is returned when the target crashes during optimization — the
// correctness criterion (prefetch kernels are NOPs) has been violated.
var ErrCrashed = errors.New("rpg2: target process crashed during optimization")

// Optimize attaches to the process and runs the four phases to completion.
// On return the process is detached and continues to run (or has exited).
func (c *Controller) Optimize(p *proc.Process) (*Report, error) {
	r := &Report{Explored: make(map[int]float64)}
	tr := proc.Attach(p)
	defer tr.Detach()
	agent := proc.Preload(p)

	// Wait for the end of the target's initialisation phase — via the
	// benchmark's explicit signal (§4.1) or, under AutoPhaseDetect, by
	// watching for the IPC trace to stabilise.
	if c.cfg.AutoPhaseDetect {
		c.awaitStablePhase(p)
	} else {
		for !p.InitDone() && p.State() == proc.Running {
			p.Run(c.mach.Seconds(0.05))
		}
	}
	if exited, err := c.checkTarget(p, r); exited {
		return r, err
	}

	start := p.Clock()
	record := func(phase string, ipc, rate float64) {
		r.Timeline = append(r.Timeline, TimelinePoint{
			Seconds: c.mach.ToSeconds(p.Clock() - start),
			IPC:     ipc,
			Rate:    rate,
			Phase:   phase,
		})
	}
	phase := func(name string) {
		if c.cfg.OnPhase != nil {
			c.cfg.OnPhase(name, c.mach.ToSeconds(p.Clock()-start))
		}
	}
	defer phase("detach")

	// ---- Phase 1: profiling ----------------------------------------
	phase("profile")
	sampler := perf.NewSampler(c.mach.PEBSPeriod, 1<<16)
	sampler.Attach(p)
	profWindows := int(c.cfg.ProfileSeconds/c.cfg.WindowSeconds + 0.5)
	if profWindows < 1 {
		profWindows = 1
	}
	var ipcSum float64
	for i := 0; i < profWindows && p.State() == proc.Running; i++ {
		w := perf.Measure(p, c.mach.Seconds(c.cfg.ProfileSeconds)/uint64(profWindows), c.rng, c.mach.IPCNoise)
		ipcSum += w.IPC
		record("profile", w.IPC, 0)
	}
	sampler.Detach()
	r.BaselineIPC = ipcSum / float64(profWindows)
	r.Samples = len(sampler.Records())
	if exited, err := c.checkTarget(p, r); exited {
		return r, err
	}
	if err := c.fault("profile"); err != nil {
		return r, err
	}
	seeded := c.cfg.SeedFunc != "" && len(c.cfg.SeedCandidates) > 0
	if r.Samples < c.cfg.MinSamples && !seeded {
		r.Outcome = NotActivated
		return r, nil
	}

	// Candidate filtering: hottest function, sites with >=10% of its
	// misses (§3.1) — or, warm-started, the cached sites from a previous
	// session on a matching workload.
	var fnName string
	var candidates []int
	if seeded {
		fnName, candidates = c.cfg.SeedFunc, c.cfg.SeedCandidates
	} else {
		sites := perf.AggregateByPC(sampler.Records(), p)
		fnName, candidates = c.pickCandidates(sites)
	}
	if fnName == "" {
		r.Outcome = NotActivated
		return r, nil
	}
	r.FuncName = fnName

	// With the candidate sites known, attach the controller's own work
	// counter over them and take the baseline performance reading the
	// tuning phase will compare against. The counter is private: any
	// observer-installed watches keep counting their own instruction
	// sets undisturbed.
	c.watch = perf.AttachWatch(p, candidates)
	w := perf.MeasureWatch(p, c.watch, c.mach.Seconds(c.cfg.WindowSeconds), c.rng, c.mach.IPCNoise)
	r.BaselineRate = w.Rate
	record("profile", w.IPC, w.Rate)

	// ---- Phase 2: code analysis & generation (runs in background) --
	phase("rewrite")
	if c.cfg.SeedDistance > 0 {
		r.InitialDistance = c.clampDistance(c.cfg.SeedDistance)
	} else {
		r.InitialDistance = 1 + c.rng.Intn(c.cfg.MaxInitialDistance)
	}
	bin := c.snapshotBinary(p)
	p.Run(uint64(c.mach.BOLTCycles)) // the target runs while BOLT works
	r.Costs.BOLTSeconds = c.mach.ToSeconds(uint64(c.mach.BOLTCycles))
	if err := c.fault("rewrite"); err != nil {
		return r, err
	}
	rw, err := bolt.InjectPrefetch(bin, fnName, candidates, r.InitialDistance)
	if err != nil {
		// No supported access pattern: leave the target untouched.
		r.Outcome = NotActivated
		return r, nil //nolint:nilerr // unsupported patterns are an expected outcome
	}
	r.Sites = rw.Sites
	if exited, err := c.checkTarget(p, r); exited {
		return r, err
	}

	// ---- Phase 3: runtime code insertion + OSR ----------------------
	phase("insert")
	if err := c.fault("osr"); err != nil {
		return r, err
	}
	ins, err := insertCode(tr, agent, rw)
	if err != nil {
		return r, fmt.Errorf("rpg2: code insertion: %w", err)
	}
	r.F1Entry = ins.f1Entry
	r.Costs.CodeInsertSeconds = c.mach.ToSeconds(ins.stolen)
	record("insert", r.BaselineIPC, r.BaselineRate)
	// Every watched f0 instruction — in the controller's counter and in
	// any observer's — now also lives at a translated f1 address. Extend
	// every attached watch with the translations so all rates remain
	// comparable across the version switch (and across rollback).
	for _, wt := range perf.Watches(p) {
		var translated []int
		for _, pc := range wt.PCs {
			if off, ok := rw.BAT.Translate(pc); ok {
				translated = append(translated, ins.f1Entry+off)
			}
		}
		wt.Extend(translated)
	}

	// ---- Phase 4: monitoring and tuning -----------------------------
	phase("tune")
	best, err := c.tune(tr, agent, ins, r, record)
	r.BestIPC = best.ipc
	r.BestRate = best.rate
	finish := func() { r.Costs.ExecSeconds = c.mach.ToSeconds(p.Clock() - start) }
	defer finish()
	if err != nil {
		return r, err
	}
	if p.State() == proc.Exited {
		r.Outcome = TargetExited
		return r, nil
	}
	if p.State() == proc.Crashed {
		return r, ErrCrashed
	}

	improved := best.d > 0 && best.metric > c.metricBaseline(r)*(1+c.cfg.MinImprovement)
	if !improved && !c.cfg.DisableRollback {
		stolen, err := rollback(tr, ins)
		if err != nil {
			return r, fmt.Errorf("rpg2: rollback: %w", err)
		}
		r.Costs.RollbackSeconds = c.mach.ToSeconds(stolen)
		r.Outcome = RolledBack
		record("rollback", r.BaselineIPC, r.BaselineRate)
		return r, nil
	}
	// Install the best distance and detach (§3.4).
	if err := c.setDistance(tr, agent, ins, best.d); err != nil {
		return r, err
	}
	r.FinalDistance = best.d
	r.Outcome = Tuned
	r.ins = ins
	record("tuned", best.ipc, best.rate)
	return r, nil
}

// awaitStablePhase runs the target in short windows until several
// consecutive IPC readings agree within a tolerance — a simple program
// phase detector standing in for the explicit end-of-initialisation signal.
func (c *Controller) awaitStablePhase(p *proc.Process) {
	const (
		window    = 0.1  // seconds per reading
		need      = 4    // consecutive agreeing readings
		tolerance = 0.12 // relative IPC agreement
	)
	deadline := p.Clock() + c.mach.Seconds(c.cfg.PhaseDetectTimeout)
	prev := -1.0
	streak := 0
	for p.State() == proc.Running && p.Clock() < deadline {
		w := perf.Measure(p, c.mach.Seconds(window), nil, 0)
		if prev > 0 && w.IPC > 0 {
			rel := (w.IPC - prev) / prev
			if rel < 0 {
				rel = -rel
			}
			if rel <= tolerance {
				if streak++; streak >= need {
					return
				}
			} else {
				streak = 0
			}
		}
		prev = w.IPC
	}
}

// fault consults the configured fault hook at one injection boundary,
// tagging the returned error with the stage while keeping the injected
// cause unwrappable.
func (c *Controller) fault(stage string) error {
	if c.cfg.FaultHook == nil {
		return nil
	}
	if err := c.cfg.FaultHook(stage); err != nil {
		return fmt.Errorf("rpg2: %s stage: %w", stage, err)
	}
	return nil
}

// checkTarget folds target death into the report.
func (c *Controller) checkTarget(p *proc.Process, r *Report) (stop bool, err error) {
	switch p.State() {
	case proc.Crashed:
		return true, ErrCrashed
	case proc.Exited:
		r.Outcome = TargetExited
		return true, nil
	}
	return false, nil
}

// pickCandidates selects the function with the most sampled misses and its
// qualifying load PCs.
func (c *Controller) pickCandidates(sites []perf.MissSite) (string, []int) {
	totals := make(map[string]int)
	for _, s := range sites {
		totals[s.FuncName] += s.Count
	}
	bestFn, bestN := "", 0
	for fn, n := range totals {
		if fn == "" {
			continue
		}
		if n > bestN || (n == bestN && fn < bestFn) {
			bestFn, bestN = fn, n
		}
	}
	var pcs []int
	for _, s := range sites {
		if s.FuncName == bestFn && s.Share >= c.cfg.CandidateShare {
			pcs = append(pcs, s.PC)
		}
	}
	return bestFn, pcs
}

// metricBaseline returns the baseline value of the tuning metric.
func (c *Controller) metricBaseline(r *Report) float64 {
	return r.baselineMetric
}
