package rpg2

import (
	"errors"

	"rpg2/internal/perf"
	"rpg2/internal/proc"
)

// This file is the controller's re-entry point for continuous re-tuning:
// a session whose tuned distance has gone stale (the watchdog flagged
// phase drift) re-enters the distance search *without* re-profiling,
// re-rewriting, or re-inserting code. The injected f1 and its patch
// points are still live in the target; only the distance immediates need
// to move. The fleet's re-tune lane is the intended caller.

// ErrNotRetunable is returned when a report cannot seed a re-tune: the
// session never activated, rolled back, or the report was deserialised
// (e.g. recovered from a WAL) and no longer carries the live insertion
// handle.
var ErrNotRetunable = errors.New("rpg2: session is not re-tunable (no live insertion)")

// CanRetune reports whether the report carries everything a live re-tune
// needs: a Tuned outcome and the in-process insertion handle. Reports
// round-tripped through JSON (the fleet journal, the daemon wire) lose
// the handle and report false — crash-recovered sessions re-tune through
// a fresh warm-seeded Optimize instead.
func (r *Report) CanRetune() bool { return r != nil && r.Outcome == Tuned && r.ins != nil }

// CanRetune reports whether a previous report on this session's target
// can seed a live re-tune.
func (s *Session) CanRetune(prev *Report) bool { return prev.CanRetune() }

// Retune re-enters phase 4 only, against the still-injected f1 from a
// previous Tuned report on the same process. The search starts from
// cfg.SeedDistance — the fleet passes the currently installed distance,
// giving the warm ±2 gradient span — or from a fresh random distance when
// unset (the cold re-tune baseline). Unlike Optimize, a re-tune never
// rolls back: the injection already proved itself at activation, and a
// drifted phase is re-judged against the distances explored now, not
// against the stale pre-activation baseline. If every probe fails to beat
// the previous best the old distance is simply re-installed.
func (s *Session) Retune(cfg Config, prev *Report) (*Report, error) {
	return New(s.mach, cfg).Retune(s.p, prev)
}

// Retune is the controller half of Session.Retune; see there.
func (c *Controller) Retune(p *proc.Process, prev *Report) (*Report, error) {
	if !prev.CanRetune() {
		return nil, ErrNotRetunable
	}
	ins := prev.ins
	r := &Report{
		FuncName:     prev.FuncName,
		Sites:        prev.Sites,
		F1Entry:      prev.F1Entry,
		BaselineIPC:  prev.BaselineIPC,
		BaselineRate: prev.BaselineRate,
		Samples:      prev.Samples,
		Explored:     make(map[int]float64),
	}
	if p.State() == proc.Exited {
		r.Outcome = TargetExited
		return r, nil
	}
	if p.State() == proc.Crashed {
		return r, ErrCrashed
	}

	tr := proc.Attach(p)
	defer tr.Detach()
	agent := proc.Preload(p)

	start := p.Clock()
	record := func(phase string, ipc, rate float64) {
		r.Timeline = append(r.Timeline, TimelinePoint{
			Seconds: c.mach.ToSeconds(p.Clock() - start),
			IPC:     ipc,
			Rate:    rate,
			Phase:   phase,
		})
	}
	phase := func(name string) {
		if c.cfg.OnPhase != nil {
			c.cfg.OnPhase(name, c.mach.ToSeconds(p.Clock()-start))
		}
	}
	defer phase("detach")

	// A fresh private work counter over the candidate sites, in both code
	// versions (execution is in f1; rates stay comparable with the
	// activation-time readings, which covered the same set).
	var pcs []int
	for _, site := range prev.Sites {
		pcs = append(pcs, site.DemandPC)
		if off, ok := ins.rw.BAT.Translate(site.DemandPC); ok {
			pcs = append(pcs, ins.f1Entry+off)
		}
	}
	c.watch = perf.AttachWatch(p, pcs)
	defer perf.DetachWatch(p, c.watch)

	phase("tune")
	if c.cfg.SeedDistance > 0 {
		r.InitialDistance = c.clampDistance(c.cfg.SeedDistance)
	} else {
		r.InitialDistance = 1 + c.rng.Intn(c.cfg.MaxInitialDistance)
	}
	best, err := c.tune(tr, agent, ins, r, record)
	r.BestIPC = best.ipc
	r.BestRate = best.rate
	r.Costs.ExecSeconds = c.mach.ToSeconds(p.Clock() - start)
	if err != nil {
		return r, err
	}
	if p.State() == proc.Exited {
		r.Outcome = TargetExited
		return r, nil
	}
	if p.State() == proc.Crashed {
		return r, ErrCrashed
	}

	d := best.d
	if d <= 0 {
		d = prev.FinalDistance // nothing measured: keep what we had
	}
	if err := c.setDistance(tr, agent, ins, d); err != nil {
		return r, err
	}
	r.FinalDistance = d
	r.Outcome = Tuned
	r.ins = ins // chained re-tunes stay live
	record("tuned", best.ipc, best.rate)
	return r, nil
}

// SampleWindow measures one deterministic window of the session's work
// watch — the watchdog's low-overhead sampler. The watch was extended
// across the f0→f1 version switch at insertion, so the rate remains the
// miss-site retirement rate whichever version is executing.
func (s *Session) SampleWindow(windowSeconds float64) perf.Window {
	return perf.MeasureWatch(s.p, s.watch, s.mach.Seconds(windowSeconds), nil, 0)
}

// Advance runs the target for the given simulated duration (relative,
// unlike RunOut's absolute clock mark) — the watchdog's sleep between
// samples.
func (s *Session) Advance(seconds float64) {
	s.p.Run(s.mach.Seconds(seconds))
}

// Elapsed reports the target's absolute simulated clock in seconds.
func (s *Session) Elapsed() float64 { return s.mach.ToSeconds(s.p.Clock()) }

// Exited reports whether the target has finished (or crashed).
func (s *Session) Exited() bool { return s.p.State() != proc.Running }
