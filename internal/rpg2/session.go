package rpg2

import (
	"fmt"

	"rpg2/internal/cpu"
	"rpg2/internal/isa"
	"rpg2/internal/machine"
	"rpg2/internal/mem"
	"rpg2/internal/perf"
	"rpg2/internal/proc"
	"rpg2/internal/workloads"
)

// Session bundles a launched target process with the work-rate watch every
// measured run needs: one launch, one watch over the workload's miss-site
// PCs, then any mix of Optimize / MeasureToBudget / TailTimeline. It is the
// single construction path the fleet and the experiments harness share, and
// it accepts a pre-built (possibly cached) workload rather than building
// its own.
type Session struct {
	mach  machine.Machine
	p     *proc.Process
	watch *cpu.Watch
}

// NewSession launches a pre-built workload on a machine and attaches a
// work watch at its primary miss site.
func NewSession(m machine.Machine, w *workloads.Workload) (*Session, error) {
	return NewSessionBin(m, w.Bin, w.Setup, []int{w.WorkPC})
}

// NewSessionBin launches an arbitrary binary (e.g. a statically prefetched
// rewrite) with the given data setup, watching the given PCs.
func NewSessionBin(m machine.Machine, bin *isa.Binary, setup func(*mem.AddrSpace, *[isa.NumRegs]uint64), watchPCs []int) (*Session, error) {
	p, err := m.Launch(bin, setup)
	if err != nil {
		return nil, err
	}
	return &Session{mach: m, p: p, watch: perf.AttachWatch(p, watchPCs)}, nil
}

// Process exposes the underlying target.
func (s *Session) Process() *proc.Process { return s.p }

// Watch exposes the session's work counter.
func (s *Session) Watch() *cpu.Watch { return s.watch }

// Optimize runs the four-phase controller against the session's target.
func (s *Session) Optimize(cfg Config) (*Report, error) {
	return New(s.mach, cfg).Optimize(s.p)
}

// Measurement is an end-of-run observation: total work plus the trailing
// window's derived metrics.
type Measurement struct {
	// Work is the total worksite retirements over the whole run.
	Work uint64 `json:"work"`
	// IPC, Rate, and MPKI are from the trailing measurement window.
	IPC  float64 `json:"ipc"`
	Rate float64 `json:"rate"`
	MPKI float64 `json:"mpki"`
	// InstrPerWork is instructions retired per work item in the tail
	// window (Figure 12's overhead metric).
	InstrPerWork float64 `json:"instr_per_work"`
}

// MeasureToBudget drives the target until its clock reaches
// runSeconds-tailSeconds, then measures a tailSeconds window, returning
// cumulative work and tail metrics. A crash is an error.
func (s *Session) MeasureToBudget(runSeconds, tailSeconds float64) (Measurement, error) {
	budget := s.mach.Seconds(runSeconds)
	tail := s.mach.Seconds(tailSeconds)
	if tail < budget && s.p.Clock() < budget-tail {
		s.p.Run(budget - tail - s.p.Clock())
	}
	win := perf.MeasureWatch(s.p, s.watch, tail, nil, 0)
	if s.p.State() == proc.Crashed {
		f := s.p.FaultedThread()
		return Measurement{}, fmt.Errorf("rpg2: target crashed: %v at pc %d", f.Thread.Fault, f.Thread.PC)
	}
	m := Measurement{Work: s.watch.Count, IPC: win.IPC, Rate: win.Rate, MPKI: win.MPKI}
	if win.Work > 0 {
		m.InstrPerWork = float64(win.Instructions) / float64(win.Work)
	}
	return m, nil
}

// RunOut drives the target to the runSeconds clock mark without measuring.
func (s *Session) RunOut(runSeconds float64) {
	if budget := s.mach.Seconds(runSeconds); s.p.Clock() < budget {
		s.p.Run(budget - s.p.Clock())
	}
}

// TailTimeline measures `windows` consecutive windows of windowSeconds
// each, returning post-detach timeline points starting at base seconds
// (Figure 10's "after" region).
func (s *Session) TailTimeline(windows int, windowSeconds, base float64) []TimelinePoint {
	pts := make([]TimelinePoint, 0, windows)
	for i := 0; i < windows; i++ {
		win := perf.MeasureWatch(s.p, s.watch, s.mach.Seconds(windowSeconds), nil, 0)
		pts = append(pts, TimelinePoint{
			Seconds: base + float64(i+1)*windowSeconds,
			IPC:     win.IPC,
			Rate:    win.Rate,
			Phase:   "after",
		})
	}
	return pts
}
