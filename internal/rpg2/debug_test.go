package rpg2_test

import (
	"testing"

	"rpg2/internal/bolt"
	"rpg2/internal/machine"
	"rpg2/internal/workloads"
)

// TestOfflineSweepShape is a regression for the core performance model: the
// statically prefetched pr binary must trace the paper's characteristic
// distance curve — late (partial) benefit at tiny distances, a strong
// optimum in the low tens, and decay at large distances as L1 churn evicts
// prefetched lines before use.
func TestOfflineSweepShape(t *testing.T) {
	m := machine.CascadeLake()
	w, err := workloads.Build("pr", "soc-alpha", 1<<30)
	if err != nil {
		t.Fatal(err)
	}

	measure := func(d int) (float64, uint64) {
		bin := w.Bin
		if d > 0 {
			rw, err := bolt.InjectPrefetch(w.Bin, workloads.KernelFunc, []int{w.WorkPC}, d)
			if err != nil {
				t.Fatalf("InjectPrefetch(d=%d): %v", d, err)
			}
			nb, err := rw.Apply(w.Bin)
			if err != nil {
				t.Fatal(err)
			}
			bin = nb
		}
		p, err := m.Launch(bin, w.Setup)
		if err != nil {
			t.Fatal(err)
		}
		p.Run(2_000_000)
		c := p.Counters()
		stats := p.Threads()[0].Core.Hierarchy().Stats()
		return float64(c.Instructions) / float64(c.Cycles), stats.LLCMisses
	}

	_, baseMisses := measure(0)
	_, lateMisses := measure(2)
	ipc10, warmMisses := measure(10)
	ipc200, _ := measure(200)

	if baseMisses < 10_000 {
		t.Fatalf("baseline misses %d: input not miss-heavy", baseMisses)
	}
	// A well-timed distance eliminates nearly all LLC misses.
	if warmMisses > baseMisses/20 {
		t.Fatalf("d=10 left %d of %d misses", warmMisses, baseMisses)
	}
	// A too-small distance converts misses into residual (late) waits: the
	// LLC-miss count stays high even though each costs less.
	if lateMisses < baseMisses/2 {
		t.Fatalf("d=2 should stay mostly late (misses %d of %d)", lateMisses, baseMisses)
	}
	// A too-large distance loses part of the benefit to churn.
	if ipc200 >= ipc10 {
		t.Fatalf("d=200 (%f) should underperform d=10 (%f)", ipc200, ipc10)
	}
}
