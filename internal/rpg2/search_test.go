package rpg2_test

import (
	"testing"

	"rpg2/internal/machine"
	"rpg2/internal/rpg2"
)

// seedFrom mines a seed profile (function + candidate PCs) with one cold
// session, the way the fleet's store does.
func seedFrom(t *testing.T, bench string, m machine.Machine) (string, []int) {
	t.Helper()
	r, _ := optimize(t, bench, "", m, rpg2.Config{Seed: 11})
	if r.Outcome != rpg2.Tuned {
		t.Fatalf("seed-mining session did not tune: %v", r.Outcome)
	}
	cands := make([]int, 0, len(r.Sites))
	for _, s := range r.Sites {
		cands = append(cands, s.DemandPC)
	}
	return r.FuncName, cands
}

// probesOf counts a report's tune-phase timeline points — one per distance
// probe actually measured.
func probesOf(r *rpg2.Report) int {
	n := 0
	for _, pt := range r.Timeline {
		if pt.Phase == "tune" {
			n++
		}
	}
	return n
}

// TestSeededSearchBoundaryAlias: a seed at either end of the distance range
// clamps a stage-1 endpoint onto the seed itself. The aliased endpoint must
// reuse the seed's measurement, not issue a duplicate probe: every distance
// edit lands on a distinct distance, at both boundaries.
func TestSeededSearchBoundaryAlias(t *testing.T) {
	m := machine.CascadeLake()
	fn, cands := seedFrom(t, "is", m)
	for _, seed := range []int{1, 200} {
		cfg := rpg2.Config{
			Seed: 12, SeedFunc: fn, SeedCandidates: cands, SeedDistance: seed,
		}
		r, _ := optimize(t, "is", "", m, cfg)
		if r.Costs.PDEdits != len(r.Explored) {
			t.Errorf("seed %d: %d distance edits over %d distinct distances — duplicate probe",
				seed, r.Costs.PDEdits, len(r.Explored))
		}
		if got := probesOf(r); got != r.Costs.PDEdits {
			t.Errorf("seed %d: %d tune windows for %d edits", seed, got, r.Costs.PDEdits)
		}
		// The seed and its one in-range warm-span neighbour must both have
		// been measured; the clamped neighbour aliases the seed.
		other := 3 // seed 1, span ±2
		if seed == 200 {
			other = 198
		}
		for _, d := range []int{seed, other} {
			if _, ok := r.Explored[d]; !ok {
				t.Errorf("seed %d: stage 1 never measured d=%d (explored %v)",
					seed, d, r.Explored)
			}
		}
	}
}

// TestTranslatedSeedKeepsColdSpan: a translated seed is a cross-machine
// hypothesis, so stage 1 must probe the full cold ±5 span around it rather
// than the warm ±2 fast path.
func TestTranslatedSeedKeepsColdSpan(t *testing.T) {
	m := machine.CascadeLake()
	fn, cands := seedFrom(t, "is", m)
	cfg := rpg2.Config{
		Seed: 13, SeedFunc: fn, SeedCandidates: cands,
		SeedDistance: 40, SeedTranslated: true,
	}
	r, _ := optimize(t, "is", "", m, cfg)
	for _, d := range []int{35, 40, 45} {
		if _, ok := r.Explored[d]; !ok {
			t.Fatalf("translated seed 40 skipped the cold-span probe at d=%d (explored %v)",
				d, r.Explored)
		}
	}
	if _, warm := r.Explored[38]; warm {
		t.Fatal("translated seed probed the warm ±2 span")
	}
}
