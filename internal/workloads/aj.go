package workloads

import (
	"math/rand"

	"rpg2/internal/isa"
	"rpg2/internal/mem"
)

// The AJ benchmarks use fixed single inputs, as in Ainsworth and Jones'
// evaluation (§4.1). Sizes are chosen so the indirectly accessed arrays are
// several times larger than the simulated machines' last-level caches.
const (
	isKeys     = 393216 // number of keys sorted per superstep
	isBuckets  = 262144 // counting-sort bucket array (the miss target)
	cgRows     = 131072 // matrix rows; x has one word per row
	cgNNZPer   = 8      // nonzeros per row
	randTable  = 262144 // randacc table words (power of two)
	randIdxLen = 262144 // index-stream length per superstep
)

// IS builds the NAS-IS-flavoured integer-sort workload: a counting-sort
// histogram pass. The bucket increment cnt[keys[i]]++ is the prefetchable
// indirect access.
func IS(repeats int) (*Workload, error) {
	rng := rand.New(rand.NewSource(101))
	keys := make([]uint64, isKeys)
	for i := range keys {
		keys[i] = uint64(rng.Intn(isBuckets))
	}

	// Registers: r0=keys r1=cnt r2=n r5=repeats.
	k := isa.NewAsm(KernelFunc)
	k.MovImm(8, 0)
	k.Br(isa.GE, 8, 2, "done")
	k.Label("loop")
	k.LoadIdx(9, 0, 8, 0) // key = keys[i]   (sequential)
	k.Label(worksiteLabel)
	k.LoadIdx(10, 1, 9, 0) // c = cnt[key]    (DEMAND MISS)
	k.AddImm(10, 10, 1)
	k.StoreIdx(1, 9, 0, 10)
	k.AddImm(8, 8, 1)
	k.Br(isa.LT, 8, 2, "loop")
	k.Label("done")
	k.Ret()

	bin, workPC, err := link(k, 0, 2048)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Name: "is", InputName: "aj-is", Bin: bin,
		FootprintWords: isKeys + isBuckets,
		ExpectedSites:  1,
		WorkPC:         workPC,
		ManualDistance: 64,
	}
	w.Setup = func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
		regs[0] = as.Map("keys", keys).Base
		regs[1] = as.Alloc("cnt", isBuckets).Base
		regs[2] = uint64(isKeys)
		regs[5] = uint64(repeats)
	}
	w.Partition = func(regs *[isa.NumRegs]uint64, tid, n int) {
		start, end := shard(isKeys, tid, n)
		regs[0] += start
		regs[2] = end - start
	}
	return w, nil
}

// CG builds the NAS-CG-flavoured conjugate-gradient workload: the sparse
// matrix-vector product y[row[j]] += val[j] * x[col[j]] over a flat
// nonzeros loop. The gather x[col[j]] is the prefetchable indirect access.
func CG(repeats int) (*Workload, error) {
	rng := rand.New(rand.NewSource(202))
	nnz := cgRows * cgNNZPer
	col := make([]uint64, nnz)
	val := make([]uint64, nnz)
	rowof := make([]uint64, nnz)
	for i := range col {
		col[i] = uint64(rng.Intn(cgRows))
		val[i] = uint64(1 + rng.Intn(1<<12))
		rowof[i] = uint64(i / cgNNZPer)
	}
	x := make([]uint64, cgRows)
	for i := range x {
		x[i] = uint64(rng.Intn(1 << 12))
	}

	// Registers: r0=col r1=val r2=x r3=rowof r4=y r5=repeats r6=nnz.
	k := isa.NewAsm(KernelFunc)
	k.MovImm(8, 0)
	k.Br(isa.GE, 8, 6, "done")
	k.Label("loop")
	k.LoadIdx(9, 0, 8, 0) // c = col[j]      (sequential)
	k.Label(worksiteLabel)
	k.LoadIdx(10, 2, 9, 0) // xv = x[c]       (DEMAND MISS)
	k.LoadIdx(11, 1, 8, 0) // a = val[j]      (sequential)
	k.Mul(10, 10, 11)
	k.ShrImm(10, 10, 8)
	k.LoadIdx(12, 3, 8, 0)  // r = rowof[j]    (sequential)
	k.LoadIdx(13, 4, 12, 0) // yv = y[r]      (near-sequential)
	k.Add(13, 13, 10)
	k.StoreIdx(4, 12, 0, 13)
	k.AddImm(8, 8, 1)
	k.Br(isa.LT, 8, 6, "loop")
	k.Label("done")
	k.Ret()

	bin, workPC, err := link(k, 2, 2048)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Name: "cg", InputName: "aj-cg", Bin: bin,
		FootprintWords: 3*nnz + 2*cgRows,
		ExpectedSites:  1,
		WorkPC:         workPC,
		ManualDistance: 32,
	}
	w.Setup = func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
		regs[0] = as.Map("col", col).Base
		regs[1] = as.Map("val", val).Base
		regs[2] = as.Map("x", x).Base
		regs[3] = as.Map("rowof", rowof).Base
		regs[4] = as.Alloc("y", cgRows).Base
		regs[5] = uint64(repeats)
		regs[6] = uint64(nnz)
	}
	w.Partition = func(regs *[isa.NumRegs]uint64, tid, n int) {
		start, end := shard(nnz, tid, n)
		regs[0] += start
		regs[1] += start
		regs[3] += start
		regs[6] = end - start
	}
	return w, nil
}

// RandAcc builds the random-access (GUPS-flavoured) workload: read-modify-
// write of uniformly random table entries through a precomputed index
// stream, so the table access tbl[idx[i]] misses on essentially every
// iteration — the access pattern the paper describes as "randomly jumping
// around an array with indirect accesses" (§4.2). The paper's curious
// observation that distances that are multiples of 8 perform specially
// well on its hardware is a microarchitectural quirk this model does not
// reproduce (see EXPERIMENTS.md).
func RandAcc(repeats int) (*Workload, error) {
	rng := rand.New(rand.NewSource(303))
	idx := make([]uint64, randIdxLen)
	for i := range idx {
		idx[i] = uint64(rng.Intn(randTable))
	}

	// Registers: r0=idx r1=tbl r2=n r5=repeats.
	k := isa.NewAsm(KernelFunc)
	k.MovImm(8, 0)
	k.Br(isa.GE, 8, 2, "done")
	k.Label("loop")
	k.LoadIdx(9, 0, 8, 0) // t = idx[i]     (sequential)
	k.Label(worksiteLabel)
	k.LoadIdx(10, 1, 9, 0) // v = tbl[t]     (DEMAND MISS)
	k.AddImm(10, 10, 7)
	k.StoreIdx(1, 9, 0, 10)
	k.AddImm(8, 8, 1)
	k.Br(isa.LT, 8, 2, "loop")
	k.Label("done")
	k.Ret()

	bin, workPC, err := link(k, 0, 2048)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Name: "randacc", InputName: "aj-randacc", Bin: bin,
		FootprintWords: randIdxLen + randTable,
		ExpectedSites:  1,
		WorkPC:         workPC,
		ManualDistance: 64,
	}
	w.Setup = func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
		regs[0] = as.Map("idx", idx).Base
		regs[1] = as.Alloc("tbl", randTable).Base
		regs[2] = uint64(randIdxLen)
		regs[5] = uint64(repeats)
	}
	w.Partition = func(regs *[isa.NumRegs]uint64, tid, n int) {
		start, end := shard(randIdxLen, tid, n)
		regs[0] += start
		regs[2] = end - start
	}
	return w, nil
}
