package workloads_test

import (
	"testing"

	"rpg2/internal/machine"
	"rpg2/internal/perf"
	"rpg2/internal/rpg2"
	. "rpg2/internal/workloads"
)

func TestSpawnWorkersShardsAndScales(t *testing.T) {
	m := machine.CascadeLake()
	run := func(threads int) uint64 {
		w, err := Build("pr", "soc-alpha", 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.Launch(w.Bin, w.Setup)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.SpawnWorkers(p, threads); err != nil {
			t.Fatal(err)
		}
		if got := len(p.Threads()); got != threads {
			t.Fatalf("threads = %d, want %d", got, threads)
		}
		watch := perf.AttachWatch(p, []int{w.WorkPC})
		p.Run(m.Seconds(5))
		if p.State().String() == "crashed" {
			t.Fatalf("%d-thread run crashed: %v", threads, p.FaultedThread().Thread.Fault)
		}
		return watch.Count
	}
	one := run(1)
	four := run(4)
	t.Logf("1 thread: %d work items; 4 threads: %d (%.2fx)", one, four, float64(four)/float64(one))
	// Threads share DRAM bandwidth, so scaling is sublinear but real.
	if four < one*3/2 {
		t.Fatalf("4 threads did %d vs %d single-threaded; no scaling", four, one)
	}
}

func TestSpawnWorkersRejectsNonPartitionable(t *testing.T) {
	m := machine.CascadeLake()
	w, err := Build("bfs", "email-euall-like", 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SpawnWorkers(p, 4); err == nil {
		t.Fatal("bfs is not data-parallel; SpawnWorkers must refuse")
	}
	if err := w.SpawnWorkers(p, 1); err != nil {
		t.Fatalf("single thread needs no partition: %v", err)
	}
}

// TestOptimizeMultithreaded runs RPG² against a 4-thread PageRank: OSR must
// move every thread and the tuned code must not crash any of them.
func TestOptimizeMultithreaded(t *testing.T) {
	m := machine.CascadeLake()
	w, err := Build("pr", "soc-alpha", 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SpawnWorkers(p, 4); err != nil {
		t.Fatal(err)
	}
	rep, err := rpg2.New(m, rpg2.Config{Seed: 21}).Optimize(p)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	t.Logf("multithreaded outcome: %v d=%d", rep.Outcome, rep.FinalDistance)
	if rep.Outcome == rpg2.NotActivated {
		t.Fatal("4-thread pr should produce plenty of misses")
	}
	p.Run(m.Seconds(5))
	if p.State().String() == "crashed" {
		t.Fatalf("crashed after multithreaded optimization: %v", p.FaultedThread().Thread.Fault)
	}
	// Every runnable thread must be executing known code.
	for _, tc := range p.Threads() {
		if !tc.Thread.Runnable() {
			continue
		}
		if _, ok := p.FuncAt(tc.Thread.PC); !ok {
			t.Fatalf("thread %d at unknown pc %d", tc.ID, tc.Thread.PC)
		}
	}
}

func TestAutoPhaseDetection(t *testing.T) {
	m := machine.CascadeLake()
	w, err := Build("pr", "soc-alpha", 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rpg2.New(m, rpg2.Config{Seed: 22, AutoPhaseDetect: true}).Optimize(p)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if rep.Outcome != rpg2.Tuned {
		t.Fatalf("phase-detected run outcome %v", rep.Outcome)
	}
}

func TestChaseIsUnsupported(t *testing.T) {
	m := machine.CascadeLake()
	w, err := Build("chase", "", 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rpg2.New(m, rpg2.Config{Seed: 23, MinSamples: 10}).Optimize(p)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if rep.Outcome != rpg2.NotActivated {
		t.Fatalf("pointer chasing is unsupported; outcome %v", rep.Outcome)
	}
	if rep.Samples < 10 {
		t.Fatalf("chase must still profile plenty of misses, got %d", rep.Samples)
	}
	// The program was left untouched: no injected function.
	if _, ok := p.Func("kernel.bolt"); ok {
		t.Fatal("RPG² injected code for an unsupported pattern")
	}
	p.Run(m.Seconds(2))
	if p.State().String() == "crashed" {
		t.Fatal("chase crashed")
	}
}
