// Package workloads implements the paper's evaluation benchmarks as
// programs for the simulated machine: the CRONO graph kernels (pr, bfs,
// sssp, bc) and the Ainsworth-and-Jones "AJ" kernels (is, cg, randacc).
//
// Each workload follows the structure the paper requires of its targets:
// 1-2 small hot loops containing a small number of potentially prefetchable
// loads, in a hot function invoked repeatedly from a driver. As in the
// paper's modified benchmarks, the program signals the end of its
// initialisation phase (InitDone) so profiling can skip it, and the driver
// repeats the kernel so the run lasts long enough to amortise online
// optimisation (§4.1).
package workloads

import (
	"fmt"

	"rpg2/internal/isa"
	"rpg2/internal/mem"
	"rpg2/internal/proc"
)

// KernelFunc is the name of every workload's hot function — the function
// RPG² profiles, rewrites, and replaces.
const KernelFunc = "kernel"

// Workload bundles a runnable program with its data setup.
type Workload struct {
	// Name identifies the benchmark ("pr", "bfs", ...).
	Name string
	// InputName identifies the input the workload was built for.
	InputName string
	// Bin is the program binary.
	Bin *isa.Binary
	// Setup maps the workload's data into a fresh address space and
	// initialises the main thread's registers (argument bases, sizes,
	// and the repeat count).
	Setup func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64)
	// FootprintWords is the total mapped data size, for reporting.
	FootprintWords int
	// ExpectedSites is how many prefetchable demand loads the benchmark
	// exposes (sssp has two, the rest one).
	ExpectedSites int
	// WorkPC is the global PC of the benchmark's primary miss-causing
	// demand load in the original binary. Experiments count retirements
	// of this instruction (and of its image in any rewritten function)
	// as the unit of work, giving a performance metric comparable across
	// schemes whose instruction mixes differ.
	WorkPC int
	// ManualDistance is the benchmark developer's hand-chosen prefetch
	// distance, where one exists (AJ benchmarks only, §4.1.1); 0 if none.
	ManualDistance int
	// Partition, when non-nil, rewrites a thread's argument registers so
	// it processes the tid-th of n shards of the iteration space. The
	// flat-loop benchmarks (pr, sssp, is, cg, randacc) are data-parallel
	// this way, as the paper's multithreaded CRONO runs are; bfs and bc
	// are not trivially partitionable and leave it nil.
	Partition func(regs *[isa.NumRegs]uint64, tid, n int)
}

// SpawnWorkers turns a freshly launched process into an n-thread run: it
// shards the main thread's iteration space and spawns n-1 additional
// threads over the remaining shards, each with its own driver loop. It must
// be called before the process first runs (it reads the pristine argument
// registers). All threads share one cache hierarchy and memory controller,
// so they contend for LLC capacity and DRAM bandwidth like real cores on a
// socket.
func (w *Workload) SpawnWorkers(p *proc.Process, threads int) error {
	if threads < 2 {
		return nil
	}
	if w.Partition == nil {
		return fmt.Errorf("workloads: %s is not data-parallel", w.Name)
	}
	base := p.MainThread().Thread.Regs
	for t := 1; t < threads; t++ {
		regs := base
		w.Partition(&regs, t, threads)
		if _, err := p.SpawnThread("main", regs); err != nil {
			return err
		}
	}
	w.Partition(&p.MainThread().Thread.Regs, 0, threads)
	return nil
}

// shard computes the [start, end) range of the tid-th of n shards over m
// items (the last shard absorbs the remainder).
func shard(m, tid, n int) (uint64, uint64) {
	chunk := m / n
	start := tid * chunk
	end := start + chunk
	if tid == n-1 {
		end = m
	}
	return uint64(start), uint64(end)
}

// Builder is a constructor for a workload given a repeat count for the
// driver loop. Repeat counts are calibrated by the experiment harness so
// baseline runs last the target simulated duration.
type Builder func(repeats int) (*Workload, error)

// Registry maps benchmark names to their input-specialised builders.
// CRONO benchmarks take a graph input name from the graphs catalogue; AJ
// benchmarks use their fixed single inputs (§4.1) and accept "" only.
type Registry struct{}

// CRONONames lists the CRONO benchmarks.
func CRONONames() []string { return []string{"pr", "bfs", "sssp", "bc"} }

// AJNames lists the Ainsworth-and-Jones benchmarks.
func AJNames() []string { return []string{"is", "cg", "randacc"} }

// AllNames lists every benchmark.
func AllNames() []string { return append(CRONONames(), AJNames()...) }

// repeatsReg is the register the driver loop compares its superstep counter
// against; Setup stores the repeat count there.
const repeatsReg = isa.Reg(5)

// counterReg is the driver's superstep counter.
const counterReg = isa.Reg(14)

// buildDriver assembles the standard main function: a short initialisation
// touch loop over the first words of the init segment, the InitDone signal,
// then `repeats` calls to the kernel.
//
// Register convention: r0..r6 are workload arguments (array bases and
// sizes) set by Setup and treated as read-only by the kernel; r5 is the
// repeat count; r8..r13 are kernel temporaries; r14 is the driver's
// superstep counter.
func buildDriver(initBase isa.Reg, initLen int64) *isa.Asm {
	a := isa.NewAsm("main")
	// Initialisation phase: touch the first initLen words of one array
	// (standing in for the benchmark's real input-loading phase, which
	// happens before the measured region).
	a.MovImm(counterReg, 0)
	a.Label("init_loop")
	a.LoadIdx(isa.Reg(8), initBase, counterReg, 0)
	a.AddImm(counterReg, counterReg, 1)
	a.BrImm(isa.LT, counterReg, initLen, "init_loop")
	a.InitDone()
	// Driver loop: repeats supersteps of the kernel.
	a.MovImm(counterReg, 0)
	a.Label("main_loop")
	a.Call(KernelFunc)
	a.AddImm(counterReg, counterReg, 1)
	a.Br(isa.LT, counterReg, repeatsReg, "main_loop")
	a.Halt()
	return a
}

// worksiteLabel marks each kernel's primary demand load.
const worksiteLabel = "worksite"

// link builds the two-function binary (main + kernel) and resolves the
// kernel's worksite marker to a global PC.
func link(kernel *isa.Asm, initBase isa.Reg, initLen int64) (*isa.Binary, int, error) {
	p := isa.NewProgram("main")
	p.Add(buildDriver(initBase, initLen))
	p.Add(kernel)
	bin, err := p.Link()
	if err != nil {
		return nil, 0, err
	}
	off := kernel.LabelOffset(worksiteLabel)
	if off < 0 {
		return nil, 0, fmt.Errorf("workloads: kernel lacks a %q marker", worksiteLabel)
	}
	f, _ := bin.Func(KernelFunc)
	return bin, f.Entry + off, nil
}

// Build constructs a workload by benchmark name. input names a graphs
// catalogue entry for CRONO benchmarks and must be empty for AJ benchmarks
// (which define their own inputs).
func Build(bench, input string, repeats int) (*Workload, error) {
	switch bench {
	case "pr":
		return PR(input, repeats)
	case "bfs":
		return BFS(input, repeats)
	case "sssp":
		return SSSP(input, repeats)
	case "bc":
		return BC(input, repeats)
	case "is":
		return IS(repeats)
	case "cg":
		return CG(repeats)
	case "randacc":
		return RandAcc(repeats)
	case "chase":
		return Chase(repeats)
	case "bc-drift":
		return BCDrift(repeats)
	case "is-drift":
		return ISDrift(repeats)
	case "chase-drift":
		return ChaseDrift(repeats)
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", bench)
}
