package workloads

import (
	"math/rand"

	"rpg2/internal/isa"
	"rpg2/internal/mem"
)

// Drifting workloads: benchmarks whose access pattern shifts mid-run, the
// targets the paper's "robust over time" claim needs and the fleet's
// phase-drift watchdog re-tunes. Each kernel keys its phase off the
// driver's superstep counter (r14): the first DriftSwitch supersteps run
// phase A, the rest phase B. The phase choice is made once per kernel
// call, in a prologue *outside* the loop nest, by selecting base/size
// registers — so the loop body (and the demand load's backward slice) is
// identical in both phases, and the injected prefetch kernel keeps
// working across the switch with only its distance wrong. That is
// precisely the drift a distance re-tune can fix, as opposed to a code
// change that would need a re-profile.
//
// Supersteps are deliberately small (fractions of a simulated second)
// compared to the stock benchmarks, so the superstep-counter phase key
// has usable granularity within a session's run budget.

const (
	// bcDriftSwitch (supersteps) is where bc-drift mutates its graph;
	// with ~1.3-simulated-second supersteps the switch lands around
	// t≈11s, leaving the seeded initial tune (~4s) room to finish inside
	// phase A.
	bcDriftSwitch = 8
	// isDriftSwitch is where is-drift's working set grows. Its supersteps
	// are shorter than bc-drift's, so the switch is later in superstep
	// terms to leave the initial tune room to finish inside phase A.
	isDriftSwitch = 24
	// chaseDriftSwitch is where chase-drift alternates its input ring;
	// its phase-A supersteps are ~1.6s, so it switches around t≈13s.
	chaseDriftSwitch = 8

	// bc-drift geometry. One data array of bcDriftEdges words carries two
	// precomputed row layouts: phase A reads it as long rows (one cache
	// line each, so the injected row-start prefetch covers the whole row
	// and a short distance suffices), phase B as single-word rows (the
	// mutated, fully fragmented graph): every row is its own random miss
	// with little work behind it, so the minimum covering distance jumps
	// an order of magnitude — the same regime as randacc, whose hand-tuned
	// distance is 64. Row lengths divide the line size, so rows never
	// straddle lines.
	bcDriftEdges = 196608 // 24576 lines = 6x CascadeLake L3
	bcDriftLenA  = 8      // phase-A row length (words)
	bcDriftLenB  = 1      // phase-B row length (words)
	bcDriftRowsA = bcDriftEdges / bcDriftLenA
	bcDriftRowsB = bcDriftEdges / bcDriftLenB

	// is-drift geometry: the counting-sort bucket array's hot region
	// grows from 2x LLC (partial residency) to 8x LLC (missing nearly
	// every iteration).
	isDriftIters   = 16384  // keys consumed per superstep
	isDriftSmall   = 65536  // phase-A key universe (words)
	isDriftBuckets = 262144 // phase-B key universe = bucket array size

	// chase-drift geometry: a DRAM-sized ring for phase A, an L1-sized
	// ring for phase B, laid out in one array.
	chaseDriftBig   = 262144
	chaseDriftSmall = 1024
	chaseDriftSteps = 8192 // pointer hops per superstep
)

// DriftNames lists the drifting benchmarks. They are intentionally not in
// AllNames: existing harness sweeps (and their byte-for-byte determinism
// tests) enumerate AllNames, and growing that set would change their
// output. Callers opt in by name.
func DriftNames() []string { return []string{"bc-drift", "is-drift", "chase-drift"} }

// BCDrift builds the graph-mutation drift workload: bc's jagged gather
// data[rowptr[v]+j] (category 3, outer-loop prefetch kernel), over a graph
// whose successor lists fragment mid-run — the same edge words re-read
// through a second row layout of 4x shorter rows, as if communities split.
// Phase A rows are exactly one cache line, so the tuned distance is small
// (the line's worth of work covers most of the memory latency); phase B
// rows carry a quarter of the work per row, the old distance undershoots,
// and every row stalls on its residual latency — a large, sustained rate
// drop that a pure distance re-tune (no re-profile) fully repairs.
func BCDrift(repeats int) (*Workload, error) {
	rng := rand.New(rand.NewSource(505))
	data := make([]uint64, bcDriftEdges)
	for i := range data {
		data[i] = uint64(rng.Intn(1 << 12))
	}
	// Both layouts place their rows in permuted order, as bc does: a
	// sequential layout would be hardware-prefetched and leave RPG²
	// nothing to do.
	ptr := make([]uint64, bcDriftRowsA+bcDriftRowsB)
	for i, v := range rng.Perm(bcDriftRowsA) {
		ptr[v] = uint64(i * bcDriftLenA)
	}
	for i, v := range rng.Perm(bcDriftRowsB) {
		ptr[bcDriftRowsA+v] = uint64(i * bcDriftLenB)
	}

	// Registers: r0=rowptr r1=data r5=repeats; r4 accumulates. The
	// prologue selects the phase's layout — pointer base r9, row count
	// r10, row length r11 — off the driver's superstep counter (r14),
	// outside the loop nest, so the loop body is phase-invariant.
	k := isa.NewAsm(KernelFunc)
	k.Mov(9, 0)                // ptrbase = rowptr (phase-A half)
	k.MovImm(10, bcDriftRowsA) // N = rows
	k.MovImm(11, bcDriftLenA)  // len = row length
	k.BrImm(isa.LT, 14, bcDriftSwitch, "go")
	k.AddImm(9, 9, bcDriftRowsA) // phase B: second half of rowptr
	k.MovImm(10, bcDriftRowsB)
	k.MovImm(11, bcDriftLenB)
	k.Label("go")
	k.MovImm(8, 0) // v = 0
	k.Label("outer")
	k.LoadIdx(13, 9, 8, 0) // start = ptrbase[v]
	k.Add(13, 1, 13)       // base2 = data + start
	k.MovImm(12, 0)        // j = 0
	k.Label("inner")
	k.Label(worksiteLabel)
	k.LoadIdx(7, 13, 12, 0) // x = data[start + j]   (DEMAND MISS, cat 3)
	k.Add(4, 4, 7)          // acc += x
	k.AddImm(12, 12, 1)
	k.Br(isa.LT, 12, 11, "inner")
	k.AddImm(8, 8, 1)
	k.Br(isa.LT, 8, 10, "outer")
	k.Ret()

	bin, workPC, err := link(k, 1, 2048)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Name: "bc-drift", InputName: "mutating-graph", Bin: bin,
		FootprintWords: bcDriftEdges + bcDriftRowsA + bcDriftRowsB,
		ExpectedSites:  1,
		WorkPC:         workPC,
	}
	w.Setup = func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
		regs[0] = as.Map("rowptr", ptr).Base
		regs[1] = as.Map("data", data).Base
		regs[5] = uint64(repeats)
	}
	return w, nil
}

// ISDrift builds the working-set-growth drift workload: the is histogram
// whose key universe grows 4x mid-run (2x LLC to 8x LLC), via a second
// precomputed key stream selected in the prologue. More of the bucket
// accesses miss after the switch, but each miss was already covered by the
// tuned distance — per-iteration throughput *improves* (DRAM fills
// overlap under the prefetch; the lost L3 hits were never prefetchable).
// It is the benign-drift control: the watchdog must stay quiet on a phase
// shift that does not degrade the miss-site retirement rate.
func ISDrift(repeats int) (*Workload, error) {
	rng := rand.New(rand.NewSource(606))
	keys := make([]uint64, 2*isDriftIters)
	for i := 0; i < isDriftIters; i++ {
		keys[i] = uint64(rng.Intn(isDriftSmall))
		keys[isDriftIters+i] = uint64(rng.Intn(isDriftBuckets))
	}

	// Registers: r0=keys r1=cnt r5=repeats. The prologue selects the
	// phase's key stream (r9); the iteration count is the same in both.
	k := isa.NewAsm(KernelFunc)
	k.Mov(9, 0)
	k.BrImm(isa.LT, 14, isDriftSwitch, "go")
	k.AddImm(9, 9, isDriftIters)
	k.Label("go")
	k.MovImm(8, 0)
	k.Label("loop")
	k.LoadIdx(10, 9, 8, 0) // key = keys[i]   (sequential)
	k.Label(worksiteLabel)
	k.LoadIdx(11, 1, 10, 0) // c = cnt[key]    (DEMAND MISS)
	k.AddImm(11, 11, 1)
	k.StoreIdx(1, 10, 0, 11)
	k.AddImm(8, 8, 1)
	k.BrImm(isa.LT, 8, isDriftIters, "loop")
	k.Ret()

	bin, workPC, err := link(k, 0, 2048)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Name: "is-drift", InputName: "growing-keys", Bin: bin,
		FootprintWords: 2*isDriftIters + isDriftBuckets,
		ExpectedSites:  1,
		WorkPC:         workPC,
	}
	w.Setup = func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
		regs[0] = as.Map("keys", keys).Base
		regs[1] = as.Alloc("cnt", isDriftBuckets).Base
		regs[5] = uint64(repeats)
	}
	return w, nil
}

// ChaseDrift builds the input-phase-alternation drift workload: pointer
// chasing over a DRAM-sized ring that switches to an L1-resident ring
// mid-run. The chase load's slice is self-dependent — unsupported, never
// activated — so the session carries no tuned distance and the watchdog
// never arms. It pins the negative path: a drifting workload on an
// unactivated session must produce zero drift events.
func ChaseDrift(repeats int) (*Workload, error) {
	rng := rand.New(rand.NewSource(707))
	next := make([]uint64, chaseDriftBig+chaseDriftSmall)
	perm := rng.Perm(chaseDriftBig)
	for i := 0; i < chaseDriftBig; i++ {
		next[perm[i]] = uint64(perm[(i+1)%chaseDriftBig])
	}
	perm = rng.Perm(chaseDriftSmall)
	for i := 0; i < chaseDriftSmall; i++ {
		next[chaseDriftBig+perm[i]] = uint64(perm[(i+1)%chaseDriftSmall])
	}

	// Registers: r0=next r5=repeats; r9 carries the cursor, r10 the ring
	// base for the current phase (cursor values are ring-relative).
	k := isa.NewAsm(KernelFunc)
	k.Mov(10, 0)
	k.BrImm(isa.LT, 14, chaseDriftSwitch, "go")
	k.AddImm(10, 10, chaseDriftBig)
	k.Label("go")
	k.MovImm(8, 0)
	k.MovImm(9, 0) // cursor = node 0
	k.Label("loop")
	k.Label(worksiteLabel)
	k.LoadIdx(9, 10, 9, 0) // cursor = next[cursor]  (DEMAND MISS, unsliceable)
	k.AddImm(8, 8, 1)
	k.BrImm(isa.LT, 8, chaseDriftSteps, "loop")
	k.Ret()

	bin, workPC, err := link(k, 0, 2048)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Name: "chase-drift", InputName: "alternating-rings", Bin: bin,
		FootprintWords: chaseDriftBig + chaseDriftSmall,
		ExpectedSites:  0, // self-dependent chain: nothing RPG² can do
		WorkPC:         workPC,
	}
	w.Setup = func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
		regs[0] = as.Map("next", next).Base
		regs[5] = uint64(repeats)
	}
	return w, nil
}
