package workloads

import (
	"math/rand"

	"rpg2/internal/isa"
	"rpg2/internal/mem"
)

// chaseNodes sizes the pointer-chase ring (words).
const chaseNodes = 262144

// Chase builds a pure pointer-chasing workload: node = next[node] around a
// randomized permutation ring. Its demand load's address depends on the
// load's own previous result, so its backward slice never closes over loop
// induction variables — it is the access pattern the paper explicitly
// leaves for future work (§3.2.1), and RPG² must recognise it as
// unsupported and leave the program untouched rather than inject anything.
//
// Chase is not part of the paper's benchmark suite; it exists to pin the
// unsupported-pattern path.
func Chase(repeats int) (*Workload, error) {
	rng := rand.New(rand.NewSource(404))
	perm := rng.Perm(chaseNodes)
	next := make([]uint64, chaseNodes)
	// A single cycle through all nodes: next[perm[i]] = perm[i+1].
	for i := 0; i < chaseNodes; i++ {
		next[perm[i]] = uint64(perm[(i+1)%chaseNodes])
	}

	// Registers: r0=next r2=steps r5=repeats; r9 carries the cursor.
	k := isa.NewAsm(KernelFunc)
	k.MovImm(8, 0)
	k.MovImm(9, 0) // cursor = node 0
	k.Br(isa.GE, 8, 2, "done")
	k.Label("loop")
	k.Label(worksiteLabel)
	k.LoadIdx(9, 0, 9, 0) // cursor = next[cursor]  (DEMAND MISS, unsliceable)
	k.AddImm(8, 8, 1)
	k.Br(isa.LT, 8, 2, "loop")
	k.Label("done")
	k.Ret()

	bin, workPC, err := link(k, 0, 2048)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Name: "chase", InputName: "ring", Bin: bin,
		FootprintWords: chaseNodes,
		ExpectedSites:  0, // nothing RPG² can do
		WorkPC:         workPC,
	}
	w.Setup = func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
		regs[0] = as.Map("next", next).Base
		regs[2] = uint64(chaseNodes / 4)
		regs[5] = uint64(repeats)
	}
	return w, nil
}
