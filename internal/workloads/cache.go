package workloads

import (
	"sync"
	"sync/atomic"
)

// BuildCache memoises Build results per (bench, input, repeats). Workload
// construction is the expensive part of session setup — CRONO builds
// generate and lay out a whole CSR graph — and the result is immutable
// once built (binaries are copied into each process at Launch, and every
// Setup closure maps kernel-written arrays freshly per address space), so
// the same *Workload can safely back any number of concurrent sessions.
//
// The cache is singleflight per key: concurrent callers for the same key
// block on one construction and all receive the same pointer. Errors are
// cached too (an unknown input stays unknown).
type BuildCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry

	builds atomic.Int64 // constructions performed (one per distinct key)
	hits   atomic.Int64 // calls served by an already-existing entry
}

type cacheKey struct {
	bench   string
	input   string
	repeats int
}

type cacheEntry struct {
	once sync.Once
	w    *Workload
	err  error
}

// NewBuildCache returns an empty cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{entries: make(map[cacheKey]*cacheEntry)}
}

// Build returns the cached workload for (bench, input, repeats), building
// it on first use. Concurrent callers share one construction.
func (c *BuildCache) Build(bench, input string, repeats int) (*Workload, error) {
	key := cacheKey{bench, input, repeats}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	}
	e.once.Do(func() {
		c.builds.Add(1)
		e.w, e.err = Build(bench, input, repeats)
	})
	return e.w, e.err
}

// Builds reports how many workload constructions the cache has performed
// (at most one per distinct key).
func (c *BuildCache) Builds() int64 { return c.builds.Load() }

// Hits reports how many Build calls were served by an existing entry.
func (c *BuildCache) Hits() int64 { return c.hits.Load() }

// Len reports the number of distinct keys resident in the cache.
func (c *BuildCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

var shared = NewBuildCache()

// SharedCache returns the process-wide build cache, used by default by the
// fleet so independently constructed fleets still share graph builds.
func SharedCache() *BuildCache { return shared }
