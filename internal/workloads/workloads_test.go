package workloads_test

import (
	. "rpg2/internal/workloads"
	"testing"

	"rpg2/internal/machine"
)

// launchAndRun starts a workload on the given machine and runs it for the
// given number of cycles, returning the process for inspection.
func launchAndRun(t *testing.T, bench, input string, m machine.Machine, cycles uint64) (*Workload, interface {
	InitDone() bool
	Clock() uint64
}) {
	t.Helper()
	w, err := Build(bench, input, 1<<30)
	if err != nil {
		t.Fatalf("Build(%s,%s): %v", bench, input, err)
	}
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	p.Run(cycles)
	return w, p
}

func TestAllBenchmarksExecute(t *testing.T) {
	m := machine.CascadeLake()
	cases := []struct {
		bench, input string
	}{
		{"pr", "soc-alpha"},
		{"bfs", "email-euall-like"},
		{"sssp", "as-skitter-like"},
		{"bc", "synth-u1"},
		{"is", ""},
		{"cg", ""},
		{"randacc", ""},
	}
	for _, tc := range cases {
		t.Run(tc.bench, func(t *testing.T) {
			w, err := Build(tc.bench, tc.input, 1<<30)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if err := w.Bin.Validate(); err != nil {
				t.Fatalf("binary invalid: %v", err)
			}
			p, err := m.Launch(w.Bin, w.Setup)
			if err != nil {
				t.Fatalf("Launch: %v", err)
			}
			p.Run(3_000_000)
			if p.State().String() == "crashed" {
				ft := p.FaultedThread()
				t.Fatalf("workload crashed: %v (pc=%d)", ft.Thread.Fault, ft.Thread.PC)
			}
			if !p.InitDone() {
				t.Fatalf("init phase never signalled completion")
			}
			c := p.Counters()
			if c.Instructions == 0 || c.Cycles == 0 {
				t.Fatalf("no progress: %+v", c)
			}
			stats := p.Threads()[0].Core.Hierarchy().Stats()
			t.Logf("%s: %d instr, %d cycles, IPC=%.3f, LLC misses=%d (%.2f MPKI)",
				tc.bench, c.Instructions, c.Cycles,
				float64(c.Instructions)/float64(c.Cycles),
				stats.LLCMisses, 1000*float64(stats.LLCMisses)/float64(c.Instructions))
			if stats.DemandAccesses == 0 {
				t.Fatal("no memory accesses observed")
			}
			// Every benchmark's main phase is memory-intensive: its
			// indirect array exceeds the LLC, so misses must occur.
			if stats.LLCMisses == 0 {
				t.Fatalf("%s produced no LLC misses; prefetching would be moot", tc.bench)
			}
		})
	}
}

func TestSmallInputStaysCacheResident(t *testing.T) {
	m := machine.CascadeLake()
	w, err := Build("pr", "as20000102-like", 1<<30)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	p.Run(3_000_000)
	c := p.Counters()
	stats := p.Threads()[0].Core.Hierarchy().Stats()
	mpki := 1000 * float64(stats.LLCMisses) / float64(c.Instructions)
	t.Logf("small pr input: IPC=%.3f MPKI=%.3f", float64(c.Instructions)/float64(c.Cycles), mpki)
	if mpki > 5 {
		t.Fatalf("LLC-resident input shows MPKI=%.2f; expected <5 (prefetch-hostile case broken)", mpki)
	}
}

func BenchmarkInterpreterThroughput(b *testing.B) {
	m := machine.CascadeLake()
	w, err := Build("pr", "soc-alpha", 1<<30)
	if err != nil {
		b.Fatalf("Build: %v", err)
	}
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		b.Fatalf("Launch: %v", err)
	}
	before := p.Counters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(1_000_000)
	}
	b.StopTimer()
	after := p.Counters()
	b.ReportMetric(float64(after.Instructions-before.Instructions)/b.Elapsed().Seconds(), "instr/s")
}
