package workloads_test

import (
	"testing"

	"rpg2/internal/bolt"
	"rpg2/internal/isa"
	"rpg2/internal/machine"
	. "rpg2/internal/workloads"
)

func TestBuildIsDeterministic(t *testing.T) {
	a, err := Build("pr", "soc-alpha", 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("pr", "soc-alpha", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Bin.Text) != len(b.Bin.Text) {
		t.Fatal("nondeterministic code size")
	}
	for i := range a.Bin.Text {
		if a.Bin.Text[i] != b.Bin.Text[i] {
			t.Fatalf("code differs at pc %d", i)
		}
	}
	if a.WorkPC != b.WorkPC {
		t.Fatal("nondeterministic WorkPC")
	}
}

func TestWorkPCIsTheDemandLoad(t *testing.T) {
	for _, bench := range AllNames() {
		input := ""
		switch bench {
		case "pr", "bfs", "sssp":
			input = "p2p-gnutella-like"
		case "bc":
			input = "synth-small"
		}
		w, err := Build(bench, input, 1)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		in := w.Bin.Text[w.WorkPC]
		if in.Op != isa.Load {
			t.Errorf("%s: WorkPC %d is %v, want a load", bench, w.WorkPC, in)
		}
		f, ok := w.Bin.FuncAt(w.WorkPC)
		if !ok || f.Name != KernelFunc {
			t.Errorf("%s: WorkPC not inside the kernel", bench)
		}
	}
}

// TestEveryBenchmarkIsPrefetchable runs the InjectPrefetchPass over each
// benchmark's marked site and checks the expected category and site count.
func TestEveryBenchmarkIsPrefetchable(t *testing.T) {
	wantCat := map[string]bolt.Category{
		"pr": bolt.IndirectInner, "bfs": bolt.IndirectInner,
		"sssp": bolt.IndirectInner, "bc": bolt.IndirectOuter,
		"is": bolt.IndirectInner, "cg": bolt.IndirectInner,
		"randacc": bolt.IndirectInner,
	}
	for _, bench := range AllNames() {
		input := ""
		switch bench {
		case "pr", "bfs", "sssp":
			input = "p2p-gnutella-like"
		case "bc":
			input = "synth-small"
		}
		w, err := Build(bench, input, 1)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		rw, err := bolt.InjectPrefetch(w.Bin, KernelFunc, []int{w.WorkPC}, 16)
		if err != nil {
			t.Fatalf("%s: InjectPrefetch: %v", bench, err)
		}
		if got := rw.Sites[0].Category; got != wantCat[bench] {
			t.Errorf("%s: category %v, want %v", bench, got, wantCat[bench])
		}
	}
}

func TestAJManualDistances(t *testing.T) {
	for _, bench := range AJNames() {
		w, err := Build(bench, "", 1)
		if err != nil {
			t.Fatal(err)
		}
		if w.ManualDistance == 0 {
			t.Errorf("%s: AJ benchmarks carry developer manual distances", bench)
		}
	}
	w, _ := Build("pr", "soc-alpha", 1)
	if w.ManualDistance != 0 {
		t.Error("CRONO benchmarks have no manual distance")
	}
}

// TestAJFootprintsExceedLLC pins the property that makes the AJ benchmarks
// prefetch-friendly: their indirect arrays dwarf both machines' LLCs.
func TestAJFootprintsExceedLLC(t *testing.T) {
	llcWords := machine.CascadeLake().Cache.L3.Lines * 8
	for _, bench := range AJNames() {
		w, err := Build(bench, "", 1)
		if err != nil {
			t.Fatal(err)
		}
		if w.FootprintWords < 4*llcWords {
			t.Errorf("%s footprint %d words < 4x LLC (%d)", bench, w.FootprintWords, llcWords)
		}
	}
}

func TestRepeatsControlRunLength(t *testing.T) {
	m := machine.CascadeLake()
	short, err := Build("is", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Launch(short.Bin, short.Setup)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(1 << 28)
	if got := p.State().String(); got != "exited" {
		t.Fatalf("1-repeat run should exit, state=%s", got)
	}
	oneRun := p.Counters().Instructions

	three, _ := Build("is", "", 3)
	p3, _ := m.Launch(three.Bin, three.Setup)
	p3.Run(1 << 28)
	if got := p3.Counters().Instructions; got < 2*oneRun {
		t.Fatalf("3 repeats retired %d, 1 repeat %d", got, oneRun)
	}
}

func TestUnknownInputsRejected(t *testing.T) {
	if _, err := Build("pr", "no-such-graph", 1); err == nil {
		t.Fatal("unknown graph input should fail")
	}
	if _, err := Build("zzz", "", 1); err == nil {
		t.Fatal("unknown benchmark should fail")
	}
}
