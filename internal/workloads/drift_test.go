package workloads_test

import (
	"testing"

	"rpg2/internal/bolt"
	"rpg2/internal/machine"
	rpgcore "rpg2/internal/rpg2"
	"rpg2/internal/workloads"
)

// These tests are the empirical contract of the drifting workloads: the
// phase switch must produce exactly the signal the fleet's watchdog is
// specified against. bc-drift degrades hard and is repaired by a pure
// distance re-tune; is-drift shifts phase without degrading; chase-drift
// never activates at all.

// driftSession optimizes a drift workload at a pinned seed distance and
// returns the live session and report.
func driftSession(t *testing.T, bench string, cfg rpgcore.Config) (*rpgcore.Session, *rpgcore.Report) {
	t.Helper()
	w, err := workloads.Build(bench, "", 1<<30)
	if err != nil {
		t.Fatalf("build %s: %v", bench, err)
	}
	sess, err := rpgcore.NewSession(machine.CascadeLake(), w)
	if err != nil {
		t.Fatalf("launch %s: %v", bench, err)
	}
	rep, err := sess.Optimize(cfg)
	if err != nil {
		t.Fatalf("optimize %s: %v", bench, err)
	}
	return sess, rep
}

// meanRate averages n deterministic sample windows.
func meanRate(s *rpgcore.Session, n int, window float64) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.SampleWindow(window).Rate
	}
	return sum / float64(n)
}

func TestBCDriftDegradesAndRetuneRecovers(t *testing.T) {
	sess, rep := driftSession(t, "bc-drift", rpgcore.Config{Seed: 1, SeedDistance: 2})
	if rep.Outcome != rpgcore.Tuned {
		t.Fatalf("outcome = %v, want Tuned", rep.Outcome)
	}
	if len(rep.Sites) != 1 || rep.Sites[0].Category != bolt.IndirectOuter {
		t.Fatalf("sites = %+v, want one IndirectOuter", rep.Sites)
	}
	if !sess.CanRetune(rep) {
		t.Fatal("tuned report is not retunable")
	}
	t.Logf("activated at d=%d after %.1fs (explored %v)", rep.FinalDistance, sess.Elapsed(), rep.Explored)

	// Phase A steady state at the activation distance.
	rateA := meanRate(sess, 3, 0.2)
	if rateA <= 0 {
		t.Fatalf("phase-A rate = %v", rateA)
	}

	// Drive across the graph mutation: the rate must collapse well past
	// the watchdog's default 25% threshold and stay down.
	drifted := 0.0
	for i := 0; i < 60; i++ {
		sess.Advance(0.3)
		r := sess.SampleWindow(0.2).Rate
		if r < 0.5*rateA {
			drifted = meanRate(sess, 3, 0.2)
			break
		}
	}
	if drifted == 0 {
		t.Fatalf("rate never dropped below 50%% of phase-A rate %.4f within 30s", rateA)
	}
	t.Logf("phase A %.4f -> drifted %.4f (%.0f%% drop) at %.1fs",
		rateA, drifted, 100*(1-drifted/rateA), sess.Elapsed())

	// A warm re-tune seeded from the stale distance must recover most of
	// the loss without re-profiling.
	re, err := sess.Retune(rpgcore.Config{Seed: 2, SeedDistance: rep.FinalDistance}, rep)
	if err != nil {
		t.Fatalf("retune: %v", err)
	}
	if re.Outcome != rpgcore.Tuned {
		t.Fatalf("retune outcome = %v, want Tuned", re.Outcome)
	}
	t.Logf("retune explored %v", re.Explored)
	if re.FinalDistance <= rep.FinalDistance {
		t.Fatalf("retune distance = %d, want > stale %d (phase B needs a longer lead)",
			re.FinalDistance, rep.FinalDistance)
	}
	recovered := meanRate(sess, 3, 0.2)
	t.Logf("retuned to d=%d: rate %.4f (%d probes)", re.FinalDistance, recovered, re.Costs.PDEdits)
	// The recovery ceiling is the phase-B plateau (kernel overhead plus
	// the L3-resident rows prefetching cannot touch), about 1.5x the
	// drifted rate; demand at least 1.4x.
	if recovered < 1.4*drifted {
		t.Fatalf("recovered rate %.4f < 1.4x drifted %.4f: re-tune did not repair the drift",
			recovered, drifted)
	}
	if !re.CanRetune() {
		t.Fatal("retuned report lost the live insertion handle")
	}
}

func TestISDriftGrowthDoesNotDegrade(t *testing.T) {
	sess, rep := driftSession(t, "is-drift", rpgcore.Config{Seed: 1, SeedDistance: 16})
	if rep.Outcome != rpgcore.Tuned {
		t.Fatalf("outcome = %v, want Tuned", rep.Outcome)
	}
	rateA := meanRate(sess, 3, 0.2)

	// Cross the working-set growth, then compare steady states: the
	// tuned distance already covers the grown set, so the miss-site
	// retirement rate must not fall past the watchdog threshold.
	sess.Advance(12.0)
	rateB := meanRate(sess, 3, 0.2)
	t.Logf("phase A %.4f -> phase B %.4f at %.1fs", rateA, rateB, sess.Elapsed())
	if rateB < 0.75*rateA {
		t.Fatalf("benign growth degraded the rate %.4f -> %.4f: the watchdog would false-fire",
			rateA, rateB)
	}
}

func TestChaseDriftNeverActivates(t *testing.T) {
	_, rep := driftSession(t, "chase-drift", rpgcore.Config{Seed: 1})
	if rep.Outcome != rpgcore.NotActivated {
		t.Fatalf("outcome = %v, want NotActivated (self-dependent chain)", rep.Outcome)
	}
	if rep.CanRetune() {
		t.Fatal("unactivated report claims to be retunable")
	}
}

func TestDriftNamesAreBuildableAndSeparate(t *testing.T) {
	for _, name := range workloads.DriftNames() {
		if _, err := workloads.Build(name, "", 4); err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		for _, stock := range workloads.AllNames() {
			if stock == name {
				t.Fatalf("%s leaked into AllNames: stock sweeps would change", name)
			}
		}
	}
}
