package workloads

import (
	"sync"
	"testing"

	"rpg2/internal/isa"
	"rpg2/internal/mem"
)

// Concurrent Build calls for the same key must share one construction and
// return the same immutable workload pointer. Run with -race.
func TestBuildCacheConcurrent(t *testing.T) {
	c := NewBuildCache()
	const callers = 16
	var wg sync.WaitGroup
	got := make([]*Workload, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := c.Build("is", "", 1000)
			if err != nil {
				t.Errorf("Build: %v", err)
				return
			}
			got[i] = w
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a different workload pointer", i)
		}
	}
	if b := c.Builds(); b != 1 {
		t.Fatalf("Builds() = %d, want 1 (cache hit must skip graph construction)", b)
	}
	if h := c.Hits(); h != callers-1 {
		t.Fatalf("Hits() = %d, want %d", h, callers-1)
	}
}

// Different (bench, input, repeats) keys build independently.
func TestBuildCacheKeying(t *testing.T) {
	c := NewBuildCache()
	a, err := c.Build("is", "", 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Build("is", "", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different repeat counts must not share a workload")
	}
	if _, err := c.Build("pr", "soc-alpha", 1000); err != nil {
		t.Fatal(err)
	}
	if got := c.Builds(); got != 3 {
		t.Fatalf("Builds() = %d, want 3", got)
	}
	if got := c.Len(); got != 3 {
		t.Fatalf("Len() = %d, want 3", got)
	}
}

// Errors are cached: a second call for a bad key is a hit, not a rebuild.
func TestBuildCacheCachesErrors(t *testing.T) {
	c := NewBuildCache()
	if _, err := c.Build("pr", "no-such-input", 10); err == nil {
		t.Fatal("expected error for unknown input")
	}
	if _, err := c.Build("pr", "no-such-input", 10); err == nil {
		t.Fatal("expected cached error for unknown input")
	}
	if got := c.Builds(); got != 1 {
		t.Fatalf("Builds() = %d, want 1", got)
	}
	if got := c.Hits(); got != 1 {
		t.Fatalf("Hits() = %d, want 1", got)
	}
}

// A cached workload must be safe to Set up into multiple address spaces:
// kernel-written arrays (sssp's dist) may not be shared between processes.
func TestCachedWorkloadSetupIsolation(t *testing.T) {
	c := NewBuildCache()
	w, err := c.Build("sssp", "soc-alpha", 100)
	if err != nil {
		t.Fatal(err)
	}
	as1 := mem.NewAddrSpace()
	as2 := mem.NewAddrSpace()
	var r1, r2 [isa.NumRegs]uint64
	w.Setup(as1, &r1)
	w.Setup(as2, &r2)

	distAddr1 := r1[3] + 5 // dist[5] in process 1
	distAddr2 := r2[3] + 5 // dist[5] in process 2
	orig, ok := as2.Read(distAddr2)
	if !ok {
		t.Fatal("dist not mapped in second address space")
	}
	if !as1.Write(distAddr1, 12345) {
		t.Fatal("dist not writable in first address space")
	}
	if got, _ := as2.Read(distAddr2); got != orig {
		t.Fatalf("write through process 1 leaked into process 2: dist[5] = %d, want %d", got, orig)
	}
}
