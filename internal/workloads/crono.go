package workloads

import (
	"fmt"
	"math/rand"

	"rpg2/internal/graphs"
	"rpg2/internal/isa"
	"rpg2/internal/mem"
)

// cronoInput resolves a catalogue input name for a CRONO benchmark.
func cronoInput(bench, input string) (graphs.Input, error) {
	in, ok := graphs.FindInput(input)
	if !ok {
		return graphs.Input{}, fmt.Errorf("workloads: %s: unknown input %q", bench, input)
	}
	return in, nil
}

// PR builds the PageRank workload: a flat push-style edge loop. Per edge e
// it accumulates rank[edge[e]] into next[src[e]]. The indirect load
// rank[edge[e]] is the prefetchable miss site (category a[f(b[j])]).
func PR(input string, repeats int) (*Workload, error) {
	in, err := cronoInput("pr", input)
	if err != nil {
		return nil, err
	}
	g := in.Build(false)

	// Registers: r0=src r1=edge r2=rank r3=next r4=M r5=repeats.
	k := isa.NewAsm(KernelFunc)
	k.MovImm(8, 0) // e = 0
	k.Br(isa.GE, 8, 4, "done")
	k.Label("loop")
	k.LoadIdx(9, 0, 8, 0)  // u = src[e]        (sequential)
	k.LoadIdx(10, 1, 8, 0) // t = edge[e]       (sequential)
	k.Label(worksiteLabel)
	k.LoadIdx(11, 2, 10, 0) // v = rank[t]       (DEMAND MISS)
	k.ShrImm(11, 11, 1)     // contribution = v/2
	k.LoadIdx(12, 3, 9, 0)  // cur = next[u]     (near-sequential)
	k.Add(12, 12, 11)
	k.StoreIdx(3, 9, 0, 12) // next[u] += contribution
	k.AddImm(8, 8, 1)
	k.Br(isa.LT, 8, 4, "loop")
	k.Label("done")
	k.Ret()

	bin, workPC, err := link(k, 2, 2048)
	if err != nil {
		return nil, err
	}
	rank := make([]uint64, g.N)
	for i := range rank {
		rank[i] = 1 << 16
	}
	w := &Workload{
		Name: "pr", InputName: in.Name, Bin: bin,
		FootprintWords: 2*g.M() + 2*g.N,
		ExpectedSites:  1,
		WorkPC:         workPC,
	}
	w.Setup = func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
		regs[0] = as.Map("src", g.SrcOf).Base
		regs[1] = as.Map("edge", g.Edges).Base
		regs[2] = as.Map("rank", rank).Base
		regs[3] = as.Alloc("next", g.N).Base
		regs[4] = uint64(g.M())
		regs[5] = uint64(repeats)
	}
	w.Partition = func(regs *[isa.NumRegs]uint64, tid, n int) {
		start, end := shard(g.M(), tid, n)
		regs[0] += start
		regs[1] += start
		regs[4] = end - start
	}
	return w, nil
}

// BFS builds the breadth-first-search workload: level-synchronous frontier
// expansion from a fixed source. The visited check depth[edge[j]] is the
// prefetchable miss site, but rows are short, so the inner-loop kernel's
// bounds check skips most prefetches while its overhead remains — BFS is the
// benchmark where the paper finds prefetching hurts on almost every input.
func BFS(input string, repeats int) (*Workload, error) {
	in, err := cronoInput("bfs", input)
	if err != nil {
		return nil, err
	}
	g := in.Build(false)
	// Pick a source with a reasonable out-degree so traversal covers the
	// graph.
	src := 0
	for v := 0; v < g.N; v++ {
		if g.Offsets[v+1]-g.Offsets[v] >= 2 {
			src = v
			break
		}
	}

	// Registers: r0=off r1=edge r2=depth r3=curF r4=nextF r5=repeats r6=N.
	k := isa.NewAsm(KernelFunc)
	// Reset the visited array (standing in for per-run reinitialisation).
	k.MovImm(8, 0)
	k.MovImm(9, 0)
	k.Label("reset")
	k.StoreIdx(2, 8, 0, 9) // depth[i] = 0 (unvisited)
	k.AddImm(8, 8, 1)
	k.Br(isa.LT, 8, 6, "reset")
	// Seed the frontier with the source.
	k.MovImm(8, int64(src))
	k.Store(3, 0, 8) // curF[0] = src
	k.MovImm(10, 1)
	k.StoreIdx(2, 8, 0, 10) // depth[src] = 1 (visited)
	k.MovImm(9, 1)          // curLen = 1
	k.Label("level_loop")
	k.MovImm(11, 0) // nextLen = 0
	k.MovImm(8, 0)  // i = 0
	k.Label("front_loop")
	k.LoadIdx(12, 3, 8, 0)  // v = curF[i]
	k.LoadIdx(13, 0, 12, 0) // j = off[v]
	k.LoadIdx(7, 0, 12, 1)  // rowEnd = off[v+1]
	k.Br(isa.GE, 13, 7, "row_done")
	k.Label("row_loop")
	k.LoadIdx(12, 1, 13, 0) // t = edge[j]     (sequential within row)
	k.Label(worksiteLabel)
	k.LoadIdx(10, 2, 12, 0) // dt = depth[t]   (DEMAND MISS)
	k.BrImm(isa.NE, 10, 0, "skip")
	k.MovImm(10, 1)
	k.StoreIdx(2, 12, 0, 10) // mark visited
	k.StoreIdx(4, 11, 0, 12) // nextF[nextLen] = t
	k.AddImm(11, 11, 1)
	k.Label("skip")
	k.AddImm(13, 13, 1)
	k.Br(isa.LT, 13, 7, "row_loop")
	k.Label("row_done")
	k.AddImm(8, 8, 1)
	k.Br(isa.LT, 8, 9, "front_loop")
	// Swap frontiers: copy nextF into curF.
	k.MovImm(8, 0)
	k.Br(isa.GE, 8, 11, "copy_done")
	k.Label("copy_loop")
	k.LoadIdx(12, 4, 8, 0)
	k.StoreIdx(3, 8, 0, 12)
	k.AddImm(8, 8, 1)
	k.Br(isa.LT, 8, 11, "copy_loop")
	k.Label("copy_done")
	k.Mov(9, 11)
	k.BrImm(isa.GT, 9, 0, "level_loop")
	k.Ret()

	bin, workPC, err := link(k, 1, 2048)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Name: "bfs", InputName: in.Name, Bin: bin,
		FootprintWords: g.M() + g.N + 2*g.N + g.N + 1,
		ExpectedSites:  1,
		WorkPC:         workPC,
	}
	w.Setup = func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
		regs[0] = as.Map("off", g.Offsets).Base
		regs[1] = as.Map("edge", g.Edges).Base
		regs[2] = as.Alloc("depth", g.N).Base
		regs[3] = as.Alloc("curF", g.N).Base
		regs[4] = as.Alloc("nextF", g.N).Base
		regs[5] = uint64(repeats)
		regs[6] = uint64(g.N)
	}
	return w, nil
}

// SSSP builds the single-source-shortest-path workload: Bellman-Ford-style
// relaxation over a flat weighted edge list. It is the benchmark with two
// prefetchable loads (§4.5): dist[edge[e]] and cnt[edge[e]], both indirect
// through the same index stream, so their prefetch distances can in
// principle be tuned separately (Figure 13).
func SSSP(input string, repeats int) (*Workload, error) {
	in, err := cronoInput("sssp", input)
	if err != nil {
		return nil, err
	}
	g := in.Build(true)

	// Registers: r0=src r1=edge r2=w r3=dist r4=M r5=repeats r6=cnt.
	k := isa.NewAsm(KernelFunc)
	k.MovImm(8, 0)
	k.Br(isa.GE, 8, 4, "done")
	k.Label("loop")
	k.LoadIdx(9, 0, 8, 0)  // u = src[e]
	k.LoadIdx(10, 3, 9, 0) // du = dist[u]     (near-sequential)
	k.LoadIdx(11, 2, 8, 0) // w = weight[e]
	k.Add(11, 10, 11)      // alt = du + w
	k.LoadIdx(12, 1, 8, 0) // t = edge[e]
	k.Label(worksiteLabel)
	k.LoadIdx(13, 3, 12, 0) // dt = dist[t]     (DEMAND MISS #1)
	k.Min(11, 11, 13)
	k.StoreIdx(3, 12, 0, 11) // dist[t] = min(alt, dt)
	k.LoadIdx(7, 6, 12, 0)   // c = cnt[t]      (DEMAND MISS #2)
	k.AddImm(7, 7, 1)
	k.StoreIdx(6, 12, 0, 7) // cnt[t] = c+1
	k.AddImm(8, 8, 1)
	k.Br(isa.LT, 8, 4, "loop")
	k.Label("done")
	k.Ret()

	bin, workPC, err := link(k, 3, 2048)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Name: "sssp", InputName: in.Name, Bin: bin,
		FootprintWords: 3*g.M() + 2*g.N,
		ExpectedSites:  2,
		WorkPC:         workPC,
	}
	w.Setup = func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
		// The kernel writes dist, so each process must map its own copy:
		// workloads are shared across sessions by the build cache.
		dist := make([]uint64, g.N)
		for i := range dist {
			dist[i] = 1 << 30
		}
		dist[0] = 0
		regs[0] = as.Map("src", g.SrcOf).Base
		regs[1] = as.Map("edge", g.Edges).Base
		regs[2] = as.Map("weight", g.Weights).Base
		regs[3] = as.Map("dist", dist).Base
		regs[4] = uint64(g.M())
		regs[5] = uint64(repeats)
		regs[6] = as.Alloc("cnt", g.N).Base
	}
	w.Partition = func(regs *[isa.NumRegs]uint64, tid, n int) {
		start, end := shard(g.M(), tid, n)
		regs[0] += start
		regs[1] += start
		regs[2] += start
		regs[4] = end - start
	}
	return w, nil
}

// BC builds the betweenness-centrality-flavoured workload: a jagged gather
// over a per-edge accumulator array through a permuted row-pointer table
// (rows are laid out in shuffled order, as bc's successor lists are after
// its forward phase). The demand access data[rowptr[v] + j] matches the
// paper's third category a[f(b[i]+j)]: its dependency chain reaches the
// outer loop's induction variable, so the prefetch kernel lands in the
// outer loop (§3.2.1). bc runs only on the synthetic inputs (§4.2).
func BC(input string, repeats int) (*Workload, error) {
	in, err := cronoInput("bc", input)
	if err != nil {
		return nil, err
	}
	g := in.Build(false)

	// Permute row placement in the data array so row starts jump around
	// memory (sequential layout would be covered by the hardware stride
	// prefetcher and leave nothing to do).
	rng := rand.New(rand.NewSource(in.Seed * 7))
	order := rng.Perm(g.N)
	rowptr := make([]uint64, g.N)
	rowlen := make([]uint64, g.N)
	pos := uint64(0)
	for _, v := range order {
		deg := g.Offsets[v+1] - g.Offsets[v]
		rowptr[v] = pos
		rowlen[v] = deg
		pos += deg
	}

	// Registers: r0=rowptr r1=data r2=rowlen r5=repeats r6=N.
	k := isa.NewAsm(KernelFunc)
	k.MovImm(8, 0) // v = 0
	k.Label("outer")
	k.LoadIdx(9, 0, 8, 0)  // start = rowptr[v]
	k.Add(10, 1, 9)        // base2 = data + start
	k.LoadIdx(11, 2, 8, 0) // len = rowlen[v]
	k.MovImm(12, 0)        // j = 0
	k.Br(isa.GE, 12, 11, "next")
	k.Label("inner")
	k.Label(worksiteLabel)
	k.LoadIdx(13, 10, 12, 0) // x = data[start + j]   (DEMAND MISS, cat 3)
	k.Add(7, 7, 13)          // acc += x
	k.AddImm(12, 12, 1)
	k.Br(isa.LT, 12, 11, "inner")
	k.Label("next")
	k.AddImm(8, 8, 1)
	k.Br(isa.LT, 8, 6, "outer")
	k.Ret()

	bin, workPC, err := link(k, 1, 2048)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Name: "bc", InputName: in.Name, Bin: bin,
		FootprintWords: g.M() + 2*g.N,
		ExpectedSites:  1,
		WorkPC:         workPC,
	}
	w.Setup = func(as *mem.AddrSpace, regs *[isa.NumRegs]uint64) {
		regs[0] = as.Map("rowptr", rowptr).Base
		regs[1] = as.Alloc("data", g.M()).Base
		regs[2] = as.Map("rowlen", rowlen).Base
		regs[5] = uint64(repeats)
		regs[6] = uint64(g.N)
	}
	return w, nil
}
