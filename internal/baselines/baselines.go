// Package baselines implements the alternative prefetching schemes RPG² is
// compared against in the paper's evaluation (§4.1.1):
//
//   - offline: a binary per input with the best prefetch distance found by
//     exhaustive search — an upper bound that never pays online costs but
//     also can never roll back.
//   - APT-GET-like static profile-guided compilation: profile one randomly
//     chosen input, bake the resulting distance into a single binary, run
//     it on every input.
//   - manual: the benchmark developers' hand-chosen distances (AJ
//     benchmarks only).
//
// It also provides the offline distance-sweep machinery that regenerates
// Figures 1-3, the sensitivity classification data of Table 3, and the
// ground-truth optima of Figure 8.
package baselines

import (
	"fmt"
	"math/rand"

	"rpg2/internal/bolt"
	"rpg2/internal/isa"
	"rpg2/internal/machine"
	"rpg2/internal/perf"
	"rpg2/internal/proc"
	"rpg2/internal/workloads"
)

// RunUntilInit advances a process past its initialisation phase.
func RunUntilInit(p *proc.Process, m machine.Machine) error {
	for !p.InitDone() {
		if p.State() != proc.Running {
			return fmt.Errorf("baselines: process %v before init completed", p.State())
		}
		p.Run(m.Seconds(0.05))
	}
	return nil
}

// ProfileCandidates launches the workload and runs PEBS-style profiling to
// find its prefetch-candidate loads, using the same >=10%-of-function-misses
// filter as RPG². It returns the candidate PCs in the hot function.
func ProfileCandidates(w *workloads.Workload, m machine.Machine, seconds float64) ([]int, error) {
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		return nil, err
	}
	if err := RunUntilInit(p, m); err != nil {
		return nil, err
	}
	// Let the main phase settle past any per-superstep prologue (e.g.
	// bfs's visited-array reset) before sampling.
	p.Run(m.Seconds(1.0))
	s := perf.NewSampler(m.PEBSPeriod, 1<<16)
	s.Attach(p)
	p.Run(m.Seconds(seconds))
	s.Detach()
	sites := perf.AggregateByPC(s.Records(), p)
	totals := make(map[string]int)
	for _, st := range sites {
		totals[st.FuncName] += st.Count
	}
	bestFn, bestN := "", 0
	for fn, n := range totals {
		if fn != "" && (n > bestN || (n == bestN && fn < bestFn)) {
			bestFn, bestN = fn, n
		}
	}
	var pcs []int
	for _, st := range sites {
		if st.FuncName == bestFn && st.Share >= 0.10 {
			pcs = append(pcs, st.PC)
		}
	}
	if len(pcs) == 0 {
		return nil, fmt.Errorf("baselines: no candidate loads found for %s/%s", w.Name, w.InputName)
	}
	return pcs, nil
}

// Prefetched is a statically prefetching build of a workload: the BOLTed
// binary plus everything needed to repoint its distance and measure it.
type Prefetched struct {
	Bin *isa.Binary
	RW  *bolt.Rewrite
	// F1Entry is the rewritten function's entry in Bin.
	F1Entry int
	// WatchPCs are the miss-site PCs in the rewritten function.
	WatchPCs []int
}

// BuildPrefetched applies the InjectPrefetchPass statically at the given
// distance, producing the artifact the offline/APT-GET/manual schemes run.
func BuildPrefetched(w *workloads.Workload, candidates []int, distance int) (*Prefetched, error) {
	rw, err := bolt.InjectPrefetch(w.Bin, workloads.KernelFunc, candidates, distance)
	if err != nil {
		return nil, err
	}
	nb, err := rw.Apply(w.Bin)
	if err != nil {
		return nil, err
	}
	f1, ok := nb.Func(rw.NewName)
	if !ok {
		return nil, fmt.Errorf("baselines: rewritten binary lacks %q", rw.NewName)
	}
	pf := &Prefetched{Bin: nb, RW: rw, F1Entry: f1.Entry}
	for _, pc := range candidates {
		if off, ok := rw.BAT.Translate(pc); ok {
			pf.WatchPCs = append(pf.WatchPCs, f1.Entry+off)
		}
	}
	return pf, nil
}

// SetDistance rewrites every distance patch point in a live process running
// the prefetched binary. The caller controls the process, so no tracer
// choreography is needed.
func (pf *Prefetched) SetDistance(p *proc.Process, d int) {
	for _, pp := range pf.RW.PatchPoints {
		pc := pf.F1Entry + pp.Offset
		p.Text[pc] = pp.Apply(p.Text[pc], d)
	}
}

// SetSiteDistance rewrites one site's distance (Figure 13's asymmetric
// configurations).
func (pf *Prefetched) SetSiteDistance(p *proc.Process, site, d int) {
	pp := pf.RW.PatchPoints[site]
	pc := pf.F1Entry + pp.Offset
	p.Text[pc] = pp.Apply(p.Text[pc], d)
}

// SweepConfig controls an offline distance sweep.
type SweepConfig struct {
	// Distances to measure (e.g. 1..100 for the paper's sweeps).
	Distances []int
	// WarmSeconds runs after each distance change before measuring.
	WarmSeconds float64
	// WindowSeconds is the measurement window per distance.
	WindowSeconds float64
	// BaselineWarmSeconds and BaselineWindowSeconds control the single
	// no-prefetch measurement. They are longer than the per-distance
	// values so phase-structured workloads (bfs resets its visited array
	// every traversal and crawls through tiny early frontiers) are
	// averaged over, not sampled at a phase boundary.
	BaselineWarmSeconds   float64
	BaselineWindowSeconds float64
	// Seed drives measurement noise; 0 disables noise.
	Seed int64
}

// DefaultSweep measures distances 1..100 like the paper's offline
// configuration (§4.5).
func DefaultSweep() SweepConfig {
	ds := make([]int, 100)
	for i := range ds {
		ds[i] = i + 1
	}
	return SweepConfig{Distances: ds, WarmSeconds: 0.15, WindowSeconds: 0.35, Seed: 1}.withDefaults()
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.BaselineWarmSeconds == 0 {
		c.BaselineWarmSeconds = 2.0
	}
	if c.BaselineWindowSeconds == 0 {
		c.BaselineWindowSeconds = 1.2
	}
	return c
}

// Sweep is the result of an offline distance sweep: per-distance speedup
// over the no-prefetch baseline, measured as miss-site work rate.
type Sweep struct {
	Bench, Input, Machine string
	Distances             []int
	// Speedup[i] is rate(Distances[i]) / baseline rate.
	Speedup []float64
	// BaselineRate is the no-prefetch steady-state work rate.
	BaselineRate float64
}

// Best returns the distance with the highest speedup and that speedup.
func (s *Sweep) Best() (int, float64) {
	bi := 0
	for i := range s.Speedup {
		if s.Speedup[i] > s.Speedup[bi] {
			bi = i
		}
	}
	return s.Distances[bi], s.Speedup[bi]
}

// RunSweep builds the workload and calls RunSweepWorkload.
func RunSweep(bench, input string, m machine.Machine, cfg SweepConfig) (*Sweep, error) {
	w, err := workloads.Build(bench, input, 1<<30)
	if err != nil {
		return nil, err
	}
	return RunSweepWorkload(w, m, cfg)
}

// RunSweepWorkload measures the true steady-state speedup of every distance
// in the config for one pre-built workload on one machine. The same
// prefetched process is reused across distances (only the immediates
// change), exactly as the offline configuration of §4.5 explores the space.
func RunSweepWorkload(w *workloads.Workload, m machine.Machine, cfg SweepConfig) (*Sweep, error) {
	cfg = cfg.withDefaults()
	bench, input := w.Name, w.InputName
	candidates, err := ProfileCandidates(w, m, 1.0)
	if err != nil {
		return nil, err
	}
	var rng *rand.Rand
	noise := 0.0
	if cfg.Seed != 0 {
		rng = rand.New(rand.NewSource(cfg.Seed))
		noise = m.IPCNoise
	}

	// Baseline steady-state rate.
	bp, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		return nil, err
	}
	if err := RunUntilInit(bp, m); err != nil {
		return nil, err
	}
	bwatch := perf.AttachWatch(bp, candidates)
	bp.Run(m.Seconds(cfg.BaselineWarmSeconds))
	base := perf.MeasureWatch(bp, bwatch, m.Seconds(cfg.BaselineWindowSeconds), rng, noise)
	if base.Work == 0 {
		return nil, fmt.Errorf("baselines: baseline run retired no work items for %s/%s", bench, input)
	}

	pf, err := BuildPrefetched(w, candidates, cfg.Distances[0])
	if err != nil {
		return nil, err
	}
	pp, err := m.Launch(pf.Bin, w.Setup)
	if err != nil {
		return nil, err
	}
	if err := RunUntilInit(pp, m); err != nil {
		return nil, err
	}
	pwatch := perf.AttachWatch(pp, pf.WatchPCs)
	pp.Run(m.Seconds(cfg.BaselineWarmSeconds)) // same phase alignment as the baseline

	out := &Sweep{
		Bench: bench, Input: input, Machine: m.Name,
		Distances:    append([]int(nil), cfg.Distances...),
		Speedup:      make([]float64, len(cfg.Distances)),
		BaselineRate: base.Rate,
	}
	for i, d := range cfg.Distances {
		pf.SetDistance(pp, d)
		pp.Run(m.Seconds(cfg.WarmSeconds))
		win := perf.MeasureWatch(pp, pwatch, m.Seconds(cfg.WindowSeconds), rng, noise)
		if pp.State() != proc.Running {
			return nil, fmt.Errorf("baselines: prefetched %s/%s %v at distance %d", bench, input, pp.State(), d)
		}
		out.Speedup[i] = win.Rate / base.Rate
	}
	return out, nil
}

// ManualDistanceFor returns the developer's manual prefetch distance for a
// workload, or 0 when none exists.
func ManualDistanceFor(w *workloads.Workload) int { return w.ManualDistance }

// APTGETDistance derives a static prefetch distance the way the APT-GET
// compiler does (§2, §4.1.1): profile one input, measure the hot loop's
// iteration latency, and pick the distance that spaces a prefetch one full
// memory latency ahead of its consumer:
//
//	d = ceil(memory latency / loop iteration latency)
//
// Like the real tool, it profiles the *unoptimized* loop — prefetching then
// shortens iterations, so the derived distance systematically undershoots
// the true optimum; that, plus the single profiled input, is exactly the
// fragility RPG² exists to fix.
func APTGETDistance(bench, input string, m machine.Machine) (int, error) {
	w, err := workloads.Build(bench, input, 1<<30)
	if err != nil {
		return 0, err
	}
	return APTGETDistanceWorkload(w, m)
}

// APTGETDistanceWorkload is APTGETDistance over a pre-built workload.
func APTGETDistanceWorkload(w *workloads.Workload, m machine.Machine) (int, error) {
	bench, input := w.Name, w.InputName
	candidates, err := ProfileCandidates(w, m, 2.0)
	if err != nil {
		return 0, err
	}
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		return 0, err
	}
	if err := RunUntilInit(p, m); err != nil {
		return 0, err
	}
	watch := perf.AttachWatch(p, []int{candidates[0]})
	p.Run(m.Seconds(1.5))
	win := perf.MeasureWatch(p, watch, m.Seconds(1.0), nil, 0)
	if win.Work == 0 {
		return 0, fmt.Errorf("baselines: apt-get profile of %s/%s observed no loop iterations", bench, input)
	}
	iterCycles := float64(win.Cycles) / float64(win.Work)
	d := int(float64(m.Cache.DRAM.Latency)/iterCycles + 0.999)
	if d < 1 {
		d = 1
	}
	if d > 100 {
		d = 100
	}
	return d, nil
}
