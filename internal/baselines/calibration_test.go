package baselines_test

import (
	"fmt"
	"testing"

	"rpg2/internal/baselines"
	"rpg2/internal/machine"
)

// TestCalibrationCurves is a bring-up diagnostic printing the speedup-vs-
// distance curve shape for representative workloads. It asserts only loose
// sanity bounds; its log output is the calibration instrument.
func TestCalibrationCurves(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration diagnostic")
	}
	cfg := baselines.SweepConfig{
		Distances:     []int{1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 160, 200},
		WarmSeconds:   0.15,
		WindowSeconds: 0.35,
		Seed:          0, // no noise: see the raw shape
	}
	cases := []struct{ bench, input string }{
		{"pr", "soc-alpha"},
		{"pr", "roadnet-pa-like"},
		{"pr", "as20000102-like"},
		{"sssp", "as-skitter-like"},
		{"bfs", "email-euall-like"},
		{"bc", "synth-u1"},
		{"is", ""},
		{"cg", ""},
		{"randacc", ""},
	}
	for _, m := range machine.Both() {
		for _, tc := range cases {
			name := fmt.Sprintf("%s/%s/%s", m.Name, tc.bench, tc.input)
			t.Run(name, func(t *testing.T) {
				sw, err := baselines.RunSweep(tc.bench, tc.input, m, cfg)
				if err != nil {
					t.Fatalf("RunSweep: %v", err)
				}
				line := ""
				for i, d := range sw.Distances {
					line += fmt.Sprintf(" %d:%.2f", d, sw.Speedup[i])
				}
				bd, bs := sw.Best()
				t.Logf("best d=%d speedup=%.2f |%s", bd, bs, line)
				if bs > 4.0 {
					t.Errorf("speedup %.2f at d=%d implausibly high (paper max 2.15)", bs, bd)
				}
			})
		}
	}
}
