package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// The disk injector's contract: the fault schedule for one key is a pure
// function of (seed, key, op sequence) — independent of which goroutine
// drives the operations and of what other keys are doing.
func TestDiskDeterminism(t *testing.T) {
	run := func(interleaved bool) map[string][]bool {
		d := NewDisk(DiskConfig{Seed: 7, WriteRate: 0.3, SyncRate: 0.2})
		out := map[string][]bool{}
		keys := []string{"journal.wal", "snapshot.wal"}
		if interleaved {
			// Drive the two keys from two goroutines, alternating ops.
			var mu sync.Mutex
			var wg sync.WaitGroup
			for _, k := range keys {
				wg.Add(1)
				go func(k string) {
					defer wg.Done()
					var seq []bool
					for i := 0; i < 64; i++ {
						op := DiskOpWrite
						if i%4 == 3 {
							op = DiskOpSync
						}
						seq = append(seq, d.Check(k, op) != nil)
					}
					mu.Lock()
					out[k] = seq
					mu.Unlock()
				}(k)
			}
			wg.Wait()
		} else {
			for _, k := range keys {
				var seq []bool
				for i := 0; i < 64; i++ {
					op := DiskOpWrite
					if i%4 == 3 {
						op = DiskOpSync
					}
					seq = append(seq, d.Check(k, op) != nil)
				}
				out[k] = seq
			}
		}
		return out
	}
	serial := run(false)
	parallel := run(true)
	for k, want := range serial {
		got := parallel[k]
		if len(got) != len(want) {
			t.Fatalf("key %s: %d decisions vs %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("key %s op %d: serial=%v parallel=%v — schedule not a pure function of (seed,key,ordinal)", k, i, want[i], got[i])
			}
		}
	}
	if n := NewDisk(DiskConfig{Seed: 7, WriteRate: 0.3, SyncRate: 0.2}); n.Injected() != 0 {
		t.Fatalf("fresh injector reports %d injected", n.Injected())
	}
}

func TestDiskMaxFaultsAndError(t *testing.T) {
	d := NewDisk(DiskConfig{Seed: 1, WriteRate: 1, MaxFaults: 2})
	var errs []error
	for i := 0; i < 10; i++ {
		errs = append(errs, d.Check("j", DiskOpWrite))
	}
	n := 0
	for _, err := range errs {
		if err != nil {
			n++
			if !InjectedDisk(err) {
				t.Fatalf("injected error not recognised: %v", err)
			}
			var de *DiskError
			if !errors.As(err, &de) || de.Op != DiskOpWrite {
				t.Fatalf("wrong error shape: %v", err)
			}
		}
	}
	if n != 2 {
		t.Fatalf("MaxFaults=2 injected %d", n)
	}
	if d.Injected() != 2 {
		t.Fatalf("Injected() = %d, want 2", d.Injected())
	}
	if InjectedDisk(errors.New("organic")) {
		t.Fatal("organic error classified as injected")
	}
}

func TestDiskZeroRatesNeverInject(t *testing.T) {
	d := NewDisk(DiskConfig{Seed: 99})
	for i := 0; i < 1000; i++ {
		if err := d.Check("k", DiskOpWrite); err != nil {
			t.Fatalf("zero-rate injector injected: %v", err)
		}
		if err := d.Check("k", DiskOpSync); err != nil {
			t.Fatalf("zero-rate injector injected: %v", err)
		}
	}
	var nilInj *DiskInjector
	if err := nilInj.Check("k", DiskOpWrite); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	if h := nilInj.Hook("k"); h != nil {
		t.Fatal("nil injector returned a non-nil hook")
	}
}

func TestDiskTornTailBounds(t *testing.T) {
	d := NewDisk(DiskConfig{Seed: 3, TornTailBytes: 16})
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		n := d.TornTail("journal.wal")
		if n < 1 || n > 16 {
			t.Fatalf("tear %d outside [1,16]", n)
		}
		seen[n] = true
	}
	if len(seen) < 4 {
		t.Fatalf("tears not spread: %v", seen)
	}
	// Same seed, fresh injector → same tear sequence.
	d2 := NewDisk(DiskConfig{Seed: 3, TornTailBytes: 16})
	d3 := NewDisk(DiskConfig{Seed: 3, TornTailBytes: 16})
	for i := 0; i < 20; i++ {
		if a, b := d2.TornTail("x"), d3.TornTail("x"); a != b {
			t.Fatalf("tear %d: %d vs %d", i, a, b)
		}
	}
}

// The net injector's contract: the per-route decision stream depends only
// on (seed, route, ordinal), and a single draw partitions into at most one
// fault kind per request.
func TestNetDeterminismAndPartition(t *testing.T) {
	cfg := NetConfig{Seed: 11, DelayRate: 0.2, ErrorRate: 0.2, SeverRate: 0.2, PanicRate: 0.1}
	a, b := NewNet(cfg), NewNet(cfg)
	counts := map[NetFaultKind]int{}
	for i := 0; i < 400; i++ {
		fa := a.Decide("POST /api/v1/sessions")
		fb := b.Decide("POST /api/v1/sessions")
		if fa.Kind != fb.Kind || fa.Ordinal != fb.Ordinal {
			t.Fatalf("draw %d: %+v vs %+v", i, fa, fb)
		}
		counts[fa.Kind]++
	}
	for _, k := range []NetFaultKind{NetDelay, NetError, NetSever, NetPanic} {
		if counts[k] == 0 {
			t.Fatalf("kind %q never drawn at rate >= 0.1 over 400 draws: %v", k, counts)
		}
	}
	// Another route draws an independent stream.
	c := NewNet(cfg)
	same := true
	for i := 0; i < 50; i++ {
		if c.Decide("GET /api/v1/metrics").Kind != a.Decide("POST /api/v1/sessions").Kind {
			same = false
		}
	}
	if same {
		t.Fatal("distinct routes drew identical fault streams")
	}
}

func TestNetZeroRatesNeverInject(t *testing.T) {
	n := NewNet(NetConfig{Seed: 5})
	for i := 0; i < 1000; i++ {
		if f := n.Decide("GET /x"); f.Kind != NetNone {
			t.Fatalf("zero-rate injector drew %q", f.Kind)
		}
	}
	if n.Injected() != 0 {
		t.Fatalf("Injected() = %d", n.Injected())
	}
	var nilInj *NetInjector
	if f := nilInj.Decide("GET /x"); f.Kind != NetNone {
		t.Fatal("nil injector drew a fault")
	}
}

func TestNetTransportErrorAndSever(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 400))
	}))
	defer srv.Close()

	// ErrorRate 1: every round trip fails with an injected error.
	errClient := &http.Client{Transport: NewNet(NetConfig{Seed: 1, ErrorRate: 1}).Transport(nil)}
	if _, err := errClient.Get(srv.URL + "/a"); err == nil || !InjectedNet(err) {
		t.Fatalf("want injected net error, got %v", err)
	}

	// SeverRate 1: the body is cut after SeverAfter bytes.
	sevClient := &http.Client{Transport: NewNet(NetConfig{Seed: 1, SeverRate: 1, SeverAfter: 100}).Transport(nil)}
	resp, err := sevClient.Get(srv.URL + "/b")
	if err != nil {
		t.Fatalf("sever should fail mid-body, not at dial: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF after sever, got %v (read %d bytes)", err, len(body))
	}
	if len(body) != 100 {
		t.Fatalf("sever let %d bytes through, want 100", len(body))
	}
}
