// Package faults is a seeded, deterministic fault injector for the fleet's
// resilience machinery. The RPG² controller exposes three injection
// boundaries — profile collection, the BOLT rewrite, and runtime code
// insertion (OSR) — and an Injector decides, purely from (injector seed,
// session seed, attempt, stage), whether each boundary fails. The decision
// is a hash, not a shared RNG stream, so it is independent of worker count
// and scheduling order: the same specs fail the same way no matter how the
// fleet interleaves them, which is what makes retry and circuit-breaker
// behaviour testable at all.
package faults

import (
	"errors"
	"fmt"
	"sync"
)

// Stage names one controller boundary the injector can fail.
type Stage string

// The three injection boundaries, in controller phase order.
const (
	// StageProfile fails at the end of PEBS sample collection.
	StageProfile Stage = "profile"
	// StageRewrite fails the background BOLT InjectPrefetchPass.
	StageRewrite Stage = "rewrite"
	// StageOSR fails runtime code insertion / on-stack replacement.
	StageOSR Stage = "osr"
)

// Stages lists the boundaries in controller phase order.
func Stages() []Stage { return []Stage{StageProfile, StageRewrite, StageOSR} }

// stageIndex gives each stage a stable hash discriminator.
func stageIndex(s Stage) uint64 {
	switch s {
	case StageProfile:
		return 1
	case StageRewrite:
		return 2
	case StageOSR:
		return 3
	}
	return 0
}

// Error is an injected fault. It is a distinct type so the fleet can tell
// injected failures from organic ones (build errors, crashed targets) when
// deciding what a retry is worth.
type Error struct {
	Stage   Stage
	Seed    int64
	Attempt int
}

func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s fault (session seed %d, attempt %d)",
		e.Stage, e.Seed, e.Attempt)
}

// Injected reports whether err is (or wraps) an injected fault.
func Injected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// Config tunes an Injector.
type Config struct {
	// Seed drives every injection decision; two injectors with the same
	// Seed and rates make identical decisions.
	Seed int64
	// Rate is the per-stage failure probability applied to every stage
	// without an explicit override (0 = never, 1 = always).
	Rate float64
	// Rates overrides Rate per stage.
	Rates map[Stage]float64
}

// Injector makes deterministic per-(session, attempt, stage) failure
// decisions and counts what it injected. It is safe for concurrent use.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	injected map[Stage]int
}

// New builds an injector.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, injected: make(map[Stage]int)}
}

func (i *Injector) rate(stage Stage) float64 {
	if r, ok := i.cfg.Rates[stage]; ok {
		return r
	}
	return i.cfg.Rate
}

// splitmix64's finalizer: a cheap, well-mixed avalanche step.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hash01 folds the parts into a uniform value in [0, 1).
func hash01(parts ...uint64) float64 {
	h := uint64(0x8A5CD789635D2DFF)
	for _, p := range parts {
		h = mix(h ^ p)
	}
	return float64(h>>11) / float64(uint64(1)<<53)
}

// Hash01 is the package's determinism contract as a public primitive: it
// folds the parts into a uniform value in [0, 1) with no hidden state, so
// other layers (client retry jitter, for one) can derive per-event noise
// that replays identically across runs and worker counts.
func Hash01(parts ...uint64) float64 { return hash01(parts...) }

// KeyHash folds a string into a hash discriminator (FNV-1a) for use as a
// Hash01 part. Disk and network injectors key decisions by path or route
// strings; this keeps those keys inside the same integer-hash contract.
func KeyHash(s string) uint64 {
	h := uint64(0xCBF29CE484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001B3
	}
	return h
}

// Check decides whether the given stage fails for one session attempt,
// returning the injected *Error or nil. The decision depends only on the
// injector seed, the rates, and the arguments.
func (i *Injector) Check(stage Stage, sessionSeed int64, attempt int) error {
	r := i.rate(stage)
	if r <= 0 {
		return nil
	}
	if r < 1 && hash01(uint64(i.cfg.Seed), uint64(sessionSeed), uint64(attempt), stageIndex(stage)) >= r {
		return nil
	}
	i.mu.Lock()
	i.injected[stage]++
	i.mu.Unlock()
	return &Error{Stage: stage, Seed: sessionSeed, Attempt: attempt}
}

// Hook binds the injector to one session attempt in the shape the
// controller's Config.FaultHook expects.
func (i *Injector) Hook(sessionSeed int64, attempt int) func(stage string) error {
	return func(stage string) error {
		return i.Check(Stage(stage), sessionSeed, attempt)
	}
}

// Injected returns the total number of faults injected so far.
func (i *Injector) Injected() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	n := 0
	for _, c := range i.injected {
		n += c
	}
	return n
}

// ByStage returns a copy of the per-stage injection counts.
func (i *Injector) ByStage() map[Stage]int {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[Stage]int, len(i.injected))
	for s, c := range i.injected {
		out[s] = c
	}
	return out
}
