package faults

import (
	"errors"
	"fmt"
	"sync"
)

// Disk fault operations. These name the physical act that failed, matching
// the wal layer's hook points.
const (
	// DiskOpWrite fails the buffered write of one framed record.
	DiskOpWrite = "write"
	// DiskOpSync fails the fsync that would make prior writes durable.
	DiskOpSync = "sync"
	// DiskOpSnapshot fails the atomic snapshot write (tmp+rename path).
	DiskOpSnapshot = "snapshot"
)

// diskOpIndex gives each operation a stable hash discriminator, disjoint
// from the controller stageIndex values so a shared seed never correlates
// the two domains.
func diskOpIndex(op string) uint64 {
	switch op {
	case DiskOpWrite:
		return 11
	case DiskOpSync:
		return 12
	case DiskOpSnapshot:
		return 13
	}
	return 10
}

// DiskError is an injected disk fault. Like Error it is a distinct type so
// the persistence layer can tell injected failures from organic ones when
// tests assert on the degradation arc.
type DiskError struct {
	Op      string // DiskOpWrite, DiskOpSync, or DiskOpSnapshot
	Key     string // which file family the injector was keyed on
	Ordinal int    // how many prior operations this key+op had seen
}

func (e *DiskError) Error() string {
	return fmt.Sprintf("faults: injected disk %s fault (key %q, op #%d)",
		e.Op, e.Key, e.Ordinal)
}

// InjectedDisk reports whether err is (or wraps) an injected disk fault.
func InjectedDisk(err error) bool {
	var de *DiskError
	return errors.As(err, &de)
}

// DiskConfig tunes a DiskInjector.
type DiskConfig struct {
	// Seed drives every decision; two injectors with the same Seed and
	// rates make identical decisions for the same (key, op, ordinal).
	Seed int64
	// WriteRate is the probability that one framed-record write fails.
	WriteRate float64
	// SyncRate is the probability that one fsync fails.
	SyncRate float64
	// SnapshotRate is the probability that one atomic snapshot write fails.
	SnapshotRate float64
	// MaxFaults caps the total number of injected faults (0 = unlimited).
	// A cap of 1 scripts "exactly one transient disk error", which is how
	// the chaos suite proves the persistence re-arm recovers.
	MaxFaults int
	// TornTailBytes bounds the simulated-crash tail tear: a crash under
	// this injector truncates 1..TornTailBytes bytes off the journal tail,
	// with the exact tear decided by hash (0 = default 64).
	TornTailBytes int
}

// DiskInjector makes deterministic per-(key, op, ordinal) disk failure
// decisions. The ordinal is the injector's own count of operations seen for
// that key+op, so determinism holds whenever the caller serialises
// operations on one key (the WAL does: every append and sync happens under
// the log's mutex). It is safe for concurrent use.
type DiskInjector struct {
	cfg DiskConfig

	mu       sync.Mutex
	ordinals map[string]int
	injected map[string]int
	total    int
}

// NewDisk builds a disk fault injector.
func NewDisk(cfg DiskConfig) *DiskInjector {
	return &DiskInjector{
		cfg:      cfg,
		ordinals: make(map[string]int),
		injected: make(map[string]int),
	}
}

func (d *DiskInjector) rate(op string) float64 {
	switch op {
	case DiskOpWrite:
		return d.cfg.WriteRate
	case DiskOpSync:
		return d.cfg.SyncRate
	case DiskOpSnapshot:
		return d.cfg.SnapshotRate
	}
	return 0
}

// Check decides whether one disk operation on key fails, returning the
// injected *DiskError or nil. Each call advances the (key, op) ordinal, so
// the decision stream for a key is a pure function of (seed, key, op
// sequence) no matter which goroutine drives it.
func (d *DiskInjector) Check(key, op string) error {
	if d == nil {
		return nil
	}
	r := d.rate(op)
	d.mu.Lock()
	defer d.mu.Unlock()
	ok := d.ordinals
	ord := ok[key+"\x00"+op]
	ok[key+"\x00"+op] = ord + 1
	if r <= 0 {
		return nil
	}
	if d.cfg.MaxFaults > 0 && d.total >= d.cfg.MaxFaults {
		return nil
	}
	if r < 1 && hash01(uint64(d.cfg.Seed), KeyHash(key), uint64(ord), diskOpIndex(op)) >= r {
		return nil
	}
	d.injected[op]++
	d.total++
	return &DiskError{Op: op, Key: key, Ordinal: ord}
}

// Hook binds the injector to one file family in the shape the wal layer's
// Config.FaultHook expects.
func (d *DiskInjector) Hook(key string) func(op string) error {
	if d == nil {
		return nil
	}
	return func(op string) error { return d.Check(key, op) }
}

// TornTail returns the number of bytes a simulated crash tears off the tail
// of key's log, in [1, TornTailBytes]. The tear is decided by hash of the
// (key, crash ordinal) so repeated crashes tear differently but replayably.
func (d *DiskInjector) TornTail(key string) int {
	max := d.cfg.TornTailBytes
	if max <= 0 {
		max = 64
	}
	d.mu.Lock()
	ord := d.ordinals[key+"\x00torn"]
	d.ordinals[key+"\x00torn"] = ord + 1
	d.mu.Unlock()
	u := hash01(uint64(d.cfg.Seed), KeyHash(key), uint64(ord), 14)
	return 1 + int(u*float64(max))
}

// Injected returns the total number of disk faults injected so far.
func (d *DiskInjector) Injected() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.total
}

// ByOp returns a copy of the per-operation injection counts.
func (d *DiskInjector) ByOp() map[string]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int, len(d.injected))
	for op, c := range d.injected {
		out[op] = c
	}
	return out
}
