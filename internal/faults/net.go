package faults

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// NetFaultKind names what the network injector does to one request.
type NetFaultKind string

const (
	// NetNone leaves the request alone.
	NetNone NetFaultKind = ""
	// NetDelay stalls the request for Config.Delay before proceeding.
	NetDelay NetFaultKind = "delay"
	// NetError fails the request outright: a connection error client-side,
	// a 500 daemon-side.
	NetError NetFaultKind = "error"
	// NetSever cuts the response body after SeverAfter bytes.
	NetSever NetFaultKind = "sever"
	// NetPanic panics the handler (daemon-side only; the client transport
	// passes this band through untouched).
	NetPanic NetFaultKind = "panic"
)

// NetFaultError is an injected network fault, distinct from organic
// transport errors so tests can assert provenance.
type NetFaultError struct {
	Kind    NetFaultKind
	Route   string
	Ordinal int
}

func (e *NetFaultError) Error() string {
	return fmt.Sprintf("faults: injected network %s fault (route %q, request #%d)",
		e.Kind, e.Route, e.Ordinal)
}

// InjectedNet reports whether err is (or wraps) an injected network fault.
func InjectedNet(err error) bool {
	var ne *NetFaultError
	return errors.As(err, &ne)
}

// NetConfig tunes a NetInjector. The rates partition a single uniform hash
// draw per request — sever first, then error, delay, panic — so at most one
// fault fires per request and raising one rate never reshuffles another
// band's decisions for draws outside the moved boundary.
type NetConfig struct {
	// Seed drives every decision.
	Seed int64
	// DelayRate is the probability a request is stalled by Delay.
	DelayRate float64
	// ErrorRate is the probability a request fails outright.
	ErrorRate float64
	// SeverRate is the probability a response body is cut mid-stream.
	SeverRate float64
	// PanicRate is the probability a daemon handler panics.
	PanicRate float64
	// Delay is the injected stall (0 = default 10ms).
	Delay time.Duration
	// SeverAfter is how many body bytes escape before the cut (0 = 64).
	SeverAfter int
	// MaxFaults caps the total number of injected faults (0 = unlimited).
	MaxFaults int
}

// NetFault is one request's injection decision.
type NetFault struct {
	Kind       NetFaultKind
	Delay      time.Duration
	SeverAfter int
	Route      string
	Ordinal    int
}

// Err wraps the decision as an error for journaling or returning.
func (f NetFault) Err() error {
	return &NetFaultError{Kind: f.Kind, Route: f.Route, Ordinal: f.Ordinal}
}

// NetInjector makes deterministic per-(route, request ordinal) network
// fault decisions. The ordinal is the injector's own per-route request
// count, so a single-connection client (or a test harness issuing requests
// in order) sees a replayable fault schedule. It is safe for concurrent use.
type NetInjector struct {
	cfg NetConfig

	mu       sync.Mutex
	ordinals map[string]int
	injected map[NetFaultKind]int
	total    int
}

// NewNet builds a network fault injector.
func NewNet(cfg NetConfig) *NetInjector {
	return &NetInjector{
		cfg:      cfg,
		ordinals: make(map[string]int),
		injected: make(map[NetFaultKind]int),
	}
}

// Decide draws this route's next injection decision. Route should name the
// handler shape (method + path pattern), not per-request values, so the
// ordinal stream stays dense per handler.
func (n *NetInjector) Decide(route string) NetFault {
	if n == nil {
		return NetFault{}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ord := n.ordinals[route]
	n.ordinals[route] = ord + 1
	f := NetFault{Route: route, Ordinal: ord}
	if n.cfg.MaxFaults > 0 && n.total >= n.cfg.MaxFaults {
		return f
	}
	u := hash01(uint64(n.cfg.Seed), KeyHash(route), uint64(ord), 21)
	switch {
	case u < n.cfg.SeverRate:
		f.Kind = NetSever
	case u < n.cfg.SeverRate+n.cfg.ErrorRate:
		f.Kind = NetError
	case u < n.cfg.SeverRate+n.cfg.ErrorRate+n.cfg.DelayRate:
		f.Kind = NetDelay
	case u < n.cfg.SeverRate+n.cfg.ErrorRate+n.cfg.DelayRate+n.cfg.PanicRate:
		f.Kind = NetPanic
	default:
		return f
	}
	f.Delay = n.cfg.Delay
	if f.Delay <= 0 {
		f.Delay = 10 * time.Millisecond
	}
	f.SeverAfter = n.cfg.SeverAfter
	if f.SeverAfter <= 0 {
		f.SeverAfter = 64
	}
	n.injected[f.Kind]++
	n.total++
	return f
}

// Injected returns the total number of network faults injected so far.
func (n *NetInjector) Injected() int {
	if n == nil {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.total
}

// ByKind returns a copy of the per-kind injection counts.
func (n *NetInjector) ByKind() map[NetFaultKind]int {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[NetFaultKind]int, len(n.injected))
	for k, c := range n.injected {
		out[k] = c
	}
	return out
}

// Transport wraps base (nil = http.DefaultTransport) with client-side
// injection: delays stall before dialing, errors fail the round trip with
// an *NetFaultError (which the fleet client treats like any connection
// error and retries), and severs cut the response body after SeverAfter
// bytes with io.ErrUnexpectedEOF. The panic band is daemon-side semantics
// and passes through untouched here.
func (n *NetInjector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{inj: n, base: base}
}

type faultTransport struct {
	inj  *NetInjector
	base http.RoundTripper
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.inj.Decide(req.Method + " " + req.URL.Path)
	switch f.Kind {
	case NetDelay:
		timer := time.NewTimer(f.Delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	case NetError:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, f.Err()
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || f.Kind != NetSever {
		return resp, err
	}
	resp.Body = &severedBody{rc: resp.Body, remaining: f.SeverAfter}
	return resp, nil
}

// severedBody lets remaining bytes through, then reports a torn connection.
type severedBody struct {
	rc        io.ReadCloser
	remaining int
}

func (b *severedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	if err == nil && b.remaining <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *severedBody) Close() error { return b.rc.Close() }
