package faults

import (
	"fmt"
	"math"
	"testing"
)

func TestDecisionsAreDeterministic(t *testing.T) {
	a := New(Config{Seed: 42, Rate: 0.3})
	b := New(Config{Seed: 42, Rate: 0.3})
	for seed := int64(0); seed < 200; seed++ {
		for attempt := 0; attempt < 3; attempt++ {
			for _, st := range Stages() {
				ea := a.Check(st, seed, attempt)
				eb := b.Check(st, seed, attempt)
				if (ea == nil) != (eb == nil) {
					t.Fatalf("divergent decision at (%v, %d, %d)", st, seed, attempt)
				}
			}
		}
	}
	if a.Injected() != b.Injected() {
		t.Fatalf("injected counts diverge: %d vs %d", a.Injected(), b.Injected())
	}
	if a.Injected() == 0 {
		t.Fatal("rate 0.3 over 1800 decisions injected nothing")
	}
}

func TestDecisionsVaryAcrossInputs(t *testing.T) {
	// The decision must actually depend on each argument: different seeds,
	// attempts, and stages should not all share one fate.
	i := New(Config{Seed: 7, Rate: 0.5})
	seen := map[bool]bool{}
	for seed := int64(0); seed < 32; seed++ {
		seen[i.Check(StageOSR, seed, 0) != nil] = true
	}
	if len(seen) != 2 {
		t.Fatal("varying the session seed never changed the decision")
	}
	seen = map[bool]bool{}
	for attempt := 0; attempt < 32; attempt++ {
		seen[i.Check(StageRewrite, 1, attempt) != nil] = true
	}
	if len(seen) != 2 {
		t.Fatal("varying the attempt never changed the decision")
	}
}

func TestRateExtremes(t *testing.T) {
	never := New(Config{Seed: 1, Rate: 0})
	always := New(Config{Seed: 1, Rate: 1})
	for seed := int64(0); seed < 50; seed++ {
		if err := never.Check(StageProfile, seed, 0); err != nil {
			t.Fatalf("rate 0 injected a fault: %v", err)
		}
		if err := always.Check(StageProfile, seed, 0); err == nil {
			t.Fatal("rate 1 let a stage pass")
		}
	}
	if never.Injected() != 0 || always.Injected() != 50 {
		t.Fatalf("counts: never=%d always=%d", never.Injected(), always.Injected())
	}
}

func TestRateFrequency(t *testing.T) {
	// Over many independent decisions the empirical rate should sit near
	// the configured one (binomial: n=3000, p=0.2, sd≈0.0073).
	i := New(Config{Seed: 99, Rate: 0.2})
	n := 0
	for seed := int64(0); seed < 1000; seed++ {
		for _, st := range Stages() {
			if i.Check(st, seed, 0) != nil {
				n++
			}
		}
	}
	got := float64(n) / 3000
	if math.Abs(got-0.2) > 0.05 {
		t.Fatalf("empirical rate %.3f far from configured 0.2", got)
	}
}

func TestPerStageRateOverride(t *testing.T) {
	i := New(Config{Seed: 3, Rate: 1, Rates: map[Stage]float64{StageOSR: 0}})
	if i.Check(StageProfile, 1, 0) == nil {
		t.Fatal("default rate 1 did not fire")
	}
	if err := i.Check(StageOSR, 1, 0); err != nil {
		t.Fatalf("per-stage rate 0 fired: %v", err)
	}
	by := i.ByStage()
	if by[StageProfile] != 1 || by[StageOSR] != 0 {
		t.Fatalf("ByStage: %v", by)
	}
}

func TestInjectedErrorIdentity(t *testing.T) {
	i := New(Config{Seed: 1, Rate: 1})
	err := i.Check(StageRewrite, 5, 2)
	if err == nil {
		t.Fatal("no fault at rate 1")
	}
	if !Injected(err) {
		t.Fatal("Injected rejected a raw injected error")
	}
	wrapped := fmt.Errorf("rpg2: rewrite stage: %w", err)
	if !Injected(wrapped) {
		t.Fatal("Injected rejected a wrapped injected error")
	}
	if Injected(fmt.Errorf("organic failure")) {
		t.Fatal("Injected accepted an organic error")
	}
	var fe *Error
	if msg := err.Error(); msg == "" {
		t.Fatal("empty error message")
	} else if fe, _ = err.(*Error); fe.Stage != StageRewrite || fe.Seed != 5 || fe.Attempt != 2 {
		t.Fatalf("error fields: %+v", fe)
	}
}

func TestHookMatchesCheck(t *testing.T) {
	a := New(Config{Seed: 11, Rate: 0.4})
	b := New(Config{Seed: 11, Rate: 0.4})
	for seed := int64(0); seed < 100; seed++ {
		hook := a.Hook(seed, 1)
		for _, st := range Stages() {
			if (hook(string(st)) != nil) != (b.Check(st, seed, 1) != nil) {
				t.Fatalf("Hook and Check disagree at (%v, %d)", st, seed)
			}
		}
	}
}
