// Networked crash recovery: the acceptance test observes a kill -9 and a
// -resume restart entirely through the client API. A helper process runs
// a real daemon on a loopback listener; the parent submits sessions over
// HTTP, SIGKILLs the helper once store commits are durable, restarts it
// in resume mode, and then every pre-crash session ID must still resolve
// to a terminal state and every committed store entry must still answer
// lookups — all via fleetclient, never touching the state dir's fleet
// directly.
package fleetd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"rpg2/internal/fleet"
	"rpg2/internal/fleetclient"
	"rpg2/internal/fleetd"
	"rpg2/internal/machine"
	"rpg2/internal/wal"
)

// TestFleetdCrashHelperProcess is not a test: it is the daemon process
// the networked crash test spawns (and SIGKILLs). It serves a persisted
// fleet on a loopback port, publishes the bound address through a file,
// and parks forever — the kill is its only exit.
func TestFleetdCrashHelperProcess(t *testing.T) {
	if os.Getenv("FLEETD_WANT_CRASH_HELPER") != "1" {
		t.Skip("helper process for TestNetworkedKillResumeThroughClient")
	}
	srv, err := fleetd.New(fleetd.Config{
		Fleet: fleet.Config{
			Machine: machine.CascadeLake(), Workers: 2,
			StateDir: os.Getenv("FLEETD_CRASH_DIR"),
			// Every append hits disk so the parent's kill tears at most one
			// record; the huge SnapshotEvery pins recovery to journal replay.
			Fsync: wal.SyncAlways, SnapshotEvery: 1 << 30,
		},
		Resume: os.Getenv("FLEETD_RESUME") == "1",
	})
	if err != nil {
		t.Fatalf("helper daemon: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Write-then-rename so the parent never reads a torn address.
	addrFile := os.Getenv("FLEETD_ADDR_FILE")
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	time.Sleep(10 * time.Minute) // the parent's SIGKILL ends this process
}

// startCrashHelper spawns the helper daemon and returns a client bound to
// its published address, plus the process handle for the kill.
func startCrashHelper(t *testing.T, dir string, resume bool) (*fleetclient.Client, *exec.Cmd, *bytes.Buffer) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0], "-test.run=TestFleetdCrashHelperProcess", "-test.v")
	cmd.Env = append(os.Environ(),
		"FLEETD_WANT_CRASH_HELPER=1",
		"FLEETD_CRASH_DIR="+dir,
		"FLEETD_ADDR_FILE="+addrFile,
	)
	if resume {
		cmd.Env = append(cmd.Env, "FLEETD_RESUME=1")
	}
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	deadline := time.Now().Add(60 * time.Second)
	for {
		if addr, err := os.ReadFile(addrFile); err == nil {
			return fleetclient.New(fleetclient.Config{BaseURL: "http://" + string(addr)}), cmd, &out
		}
		if time.Now().After(deadline) {
			t.Fatalf("helper never published an address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// committedKeys replays the journal WAL for the store keys whose commits
// were durable at the kill — the entries recovery must not lose.
func committedKeys(t *testing.T, dir string) map[fleet.Key]bool {
	t.Helper()
	recs, _, err := wal.ReadAll(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	keys := make(map[fleet.Key]bool)
	for _, rec := range recs {
		var e fleet.Event
		if err := json.Unmarshal(rec, &e); err != nil || e.Type == "" {
			continue
		}
		k := fleet.Key{Bench: e.Bench, Input: e.Input, Machine: e.Machine}
		switch e.Type {
		case "store-commit":
			keys[k] = true
		case "store-invalidate":
			delete(keys, k)
		}
	}
	return keys
}

// TestNetworkedKillResumeThroughClient is the end-to-end acceptance test:
// submit via the client, kill -9 the daemon mid-run, restart with resume,
// and assert — still through the client — that every pre-crash session ID
// reaches a terminal state and no committed store entry was lost.
func TestNetworkedKillResumeThroughClient(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary as a daemon")
	}
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	cli, cmd, out := startCrashHelper(t, dir, false)
	pairs := []fleet.SpecRecord{
		{Bench: "is"}, {Bench: "cg"}, {Bench: "randacc"},
		{Bench: "bfs", Input: "soc-gamma"},
	}
	var ids []int
	for i := 0; i < 24; i++ {
		spec := pairs[i%len(pairs)]
		spec.Seed = int64(i + 1)
		spec.Tenant = []string{"alice", "bob"}[i%2]
		id, err := cli.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}

	// Kill once at least one store commit is on disk: from here on,
	// recovery has something to lose.
	journal := filepath.Join(dir, "journal.wal")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if data, err := os.ReadFile(journal); err == nil && bytes.Contains(data, []byte(`"store-commit"`)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no store commit appeared in the daemon's WAL; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // the kill is the expected exit

	wantKeys := committedKeys(t, dir)
	if fleet.PendingSessions(dir) == 0 {
		t.Fatal("kill left nothing pending; the crash test never raced the fleet")
	}

	// Restart in resume mode. The client keeps its pre-crash session IDs;
	// all of them must resolve to terminal states through the new daemon.
	cli2, _, out2 := startCrashHelper(t, dir, true)
	terminal := map[string]int{}
	for _, id := range ids {
		outc, err := cli2.Wait(ctx, id)
		if err != nil {
			t.Fatalf("pre-crash session %d never resolved after resume: %v\nhelper output:\n%s", id, err, out2.String())
		}
		terminal[outc.State]++
	}
	if got := len(ids); got != 24 {
		t.Fatalf("resolved %d sessions, want 24 (%v)", got, terminal)
	}

	// No committed store entry lost: each key still answers lookups.
	for k := range wantKeys {
		if _, err := cli2.Lookup(ctx, k); err != nil {
			t.Fatalf("committed entry %+v lost across the crash: %v", k, err)
		}
	}
}
