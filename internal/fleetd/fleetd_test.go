// Daemon acceptance tests, driven through the real HTTP stack: an
// httptest listener on the daemon's handler and the fleetclient library
// on the other side — nothing here calls the fleet directly except to
// build the in-process baseline the round-trip test compares against.
package fleetd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rpg2/internal/fleet"
	"rpg2/internal/fleetclient"
	"rpg2/internal/fleetd"
	"rpg2/internal/machine"
)

// tripSpecs are the workloads the round-trip test replays on both paths;
// the repeated "is" pair makes the second session warm, so the comparison
// also covers store-seeded outcomes.
var tripSpecs = []fleet.SessionSpec{
	{Bench: "is", Seed: 7},
	{Bench: "cg", Seed: 11},
	{Bench: "bfs", Input: "soc-gamma", Seed: 13},
	{Bench: "is", Seed: 21},
}

func newTestDaemon(t *testing.T, cfg fleetd.Config) (*fleetd.Server, *fleetclient.Client) {
	t.Helper()
	srv, err := fleetd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Drain() })
	return srv, fleetclient.New(fleetclient.Config{BaseURL: ts.URL})
}

// TestDaemonRoundTripMatchesInProcess is the determinism acceptance test:
// the same spec and seed must yield byte-identical Outcome JSON whether
// the session ran through the daemon's HTTP path or in-process. Sessions
// run one at a time on both sides so the store evolves identically.
func TestDaemonRoundTripMatchesInProcess(t *testing.T) {
	cfg := fleet.Config{Machine: machine.CascadeLake(), Workers: 1}

	inProc := fleet.New(cfg)
	defer inProc.Close()
	var want [][]byte
	for _, spec := range tripSpecs {
		s, err := inProc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		inProc.Drain()
		b, err := json.Marshal(fleetd.OutcomeOf(s))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, b)
	}

	_, cli := newTestDaemon(t, fleetd.Config{Fleet: cfg})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i, spec := range tripSpecs {
		id, err := cli.Submit(ctx, *fleet.RecordSpec(spec))
		if err != nil {
			t.Fatal(err)
		}
		out, err := cli.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("spec %d (%s/%s seed %d) daemon outcome differs from in-process:\n daemon: %s\n local:  %s",
				i, spec.Bench, spec.Input, spec.Seed, got, want[i])
		}
	}
}

// TestTenantBackpressureIsolation: with a one-worker fleet and a
// two-deep per-tenant queue cap, a tenant bursting submissions sees 429
// with a positive Retry-After, while another tenant's submissions are
// admitted untouched and run to completion.
func TestTenantBackpressureIsolation(t *testing.T) {
	_, cli := newTestDaemon(t, fleetd.Config{Fleet: fleet.Config{
		Machine: machine.CascadeLake(), Workers: 1, MaxTenantQueue: 2,
	}})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var accepted []int
	rejected := 0
	for i := 0; i < 16; i++ {
		id, err := cli.Submit(ctx, fleet.SpecRecord{Bench: "is", Tenant: "alice", Seed: int64(i + 1)})
		var over *fleetclient.Overloaded
		switch {
		case err == nil:
			accepted = append(accepted, id)
		case errors.As(err, &over):
			rejected++
			if over.RetryAfter < time.Second {
				t.Fatalf("429 carried Retry-After %s, want >= 1s", over.RetryAfter)
			}
		default:
			t.Fatalf("alice submit %d: %v", i, err)
		}
	}
	if rejected == 0 {
		t.Fatal("16 burst submissions against a 2-deep tenant queue never saw 429")
	}

	// Bob's trickle is isolated from alice's saturation: no rejection.
	for i := 0; i < 2; i++ {
		id, err := cli.Submit(ctx, fleet.SpecRecord{Bench: "cg", Tenant: "bob", Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("bob submit while alice saturated: %v", err)
		}
		accepted = append(accepted, id)
	}

	for _, id := range accepted {
		out, err := cli.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %d: %v", id, err)
		}
		if out.State == fleet.Failed.String() {
			t.Fatalf("session %d failed: %s", id, out.Err)
		}
	}
}

// TestAPIErrors pins the error surface a client programs against:
// unknown IDs are ErrNotFound, malformed specs are 400s.
func TestAPIErrors(t *testing.T) {
	_, cli := newTestDaemon(t, fleetd.Config{Fleet: fleet.Config{
		Machine: machine.CascadeLake(), Workers: 1,
	}})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	if _, err := cli.Status(ctx, 999); !errors.Is(err, fleetclient.ErrNotFound) {
		t.Fatalf("status of unknown session = %v, want ErrNotFound", err)
	}
	if _, _, err := cli.Result(ctx, 999); !errors.Is(err, fleetclient.ErrNotFound) {
		t.Fatalf("result of unknown session = %v, want ErrNotFound", err)
	}
	if _, err := cli.Lookup(ctx, fleet.Key{Bench: "is"}); !errors.Is(err, fleetclient.ErrNotFound) {
		t.Fatalf("lookup on an empty store = %v, want ErrNotFound", err)
	}
	var apiErr *fleetclient.APIError
	if _, err := cli.Submit(ctx, fleet.SpecRecord{}); !errors.As(err, &apiErr) || apiErr.Code != http.StatusBadRequest {
		t.Fatalf("benchless submit = %v, want 400", err)
	}
	if _, err := cli.Submit(ctx, fleet.SpecRecord{Bench: "is", Kind: 200}); !errors.As(err, &apiErr) || apiErr.Code != http.StatusBadRequest {
		t.Fatalf("unknown-kind submit = %v, want 400", err)
	}
}

// TestStoreLookupThroughDaemon: a committed profile is visible through
// the read-only lookup endpoints, and peeking does not consume reuse
// budget or bump counters (the store metrics stay untouched).
func TestStoreLookupThroughDaemon(t *testing.T) {
	srv, cli := newTestDaemon(t, fleetd.Config{Fleet: fleet.Config{
		Machine: machine.CascadeLake(), Workers: 1,
	}})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	id, err := cli.Submit(ctx, fleet.SpecRecord{Bench: "is", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}

	before, err := cli.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	k := fleet.Key{Bench: "is", Machine: machine.CascadeLake().Name}
	for i := 0; i < 3; i++ {
		res, err := cli.Lookup(ctx, k)
		if err != nil {
			t.Fatalf("lookup after commit: %v", err)
		}
		if res.Entry.Distance <= 0 {
			t.Fatalf("lookup returned empty entry: %+v", res.Entry)
		}
	}
	after, err := cli.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Store.Hits != before.Store.Hits || after.Store.Misses != before.Store.Misses {
		t.Fatalf("read-only lookups moved store counters: %+v -> %+v", before.Store, after.Store)
	}
	_ = srv
}

// TestDrainEndsStreamsAndRefusesSubmits: a drain delivers the full
// journal to open streams, ends them cleanly (Stream returns nil), and
// turns later submissions into 503s. The streamed history must be dense.
func TestDrainEndsStreamsAndRefusesSubmits(t *testing.T) {
	srv, cli := newTestDaemon(t, fleetd.Config{Fleet: fleet.Config{
		Machine: machine.CascadeLake(), Workers: 2,
	}})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var ids []int
	for i := 0; i < 4; i++ {
		id, err := cli.Submit(ctx, fleet.SpecRecord{Bench: "is", Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	streamed := make(chan []int, 1)
	streamErr := make(chan error, 1)
	go func() {
		var seqs []int
		err := cli.Stream(ctx, -1, func(e fleet.Event) error {
			seqs = append(seqs, e.Seq)
			return nil
		})
		streamed <- seqs
		streamErr <- err
	}()

	for _, id := range ids {
		if _, err := cli.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	srv.Drain()

	if err := <-streamErr; err != nil {
		t.Fatalf("drained stream returned %v, want clean nil EOF", err)
	}
	seqs := <-streamed
	total := len(srv.Fleet().Journal().Events())
	if len(seqs) != total {
		t.Fatalf("stream delivered %d events, journal holds %d", len(seqs), total)
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("stream seq[%d] = %d: gap or duplicate", i, s)
		}
	}

	var apiErr *fleetclient.APIError
	if _, err := cli.Submit(ctx, fleet.SpecRecord{Bench: "is", Seed: 99}); !errors.As(err, &apiErr) || apiErr.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain = %v, want 503", err)
	}
	if status, err := cli.Health(ctx); err != nil || status != "draining" {
		t.Fatalf("health after drain = %q, %v", status, err)
	}
}

// TestStreamResumeAfterDisconnect: a consumer that aborts mid-stream and
// reconnects with its last cursor sees the remainder exactly once.
func TestStreamResumeAfterDisconnect(t *testing.T) {
	srv, cli := newTestDaemon(t, fleetd.Config{Fleet: fleet.Config{
		Machine: machine.CascadeLake(), Workers: 2,
	}})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var ids []int
	for i := 0; i < 4; i++ {
		id, err := cli.Submit(ctx, fleet.SpecRecord{Bench: "cg", Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, err := cli.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
	}

	// First connection: take three events, then abort (a client-side
	// disconnect), remembering only the cursor.
	abort := errors.New("enough")
	var seen []int
	err := cli.Stream(ctx, -1, func(e fleet.Event) error {
		seen = append(seen, e.Seq)
		if len(seen) == 3 {
			return abort
		}
		return nil
	})
	if !errors.Is(err, abort) {
		t.Fatalf("aborted stream returned %v", err)
	}

	// Reconnect from the cursor; drain so the stream terminates.
	done := make(chan error, 1)
	go func() {
		done <- cli.Stream(ctx, seen[len(seen)-1], func(e fleet.Event) error {
			seen = append(seen, e.Seq)
			return nil
		})
	}()
	time.Sleep(50 * time.Millisecond)
	srv.Drain()
	if err := <-done; err != nil {
		t.Fatalf("resumed stream returned %v", err)
	}

	total := len(srv.Fleet().Journal().Events())
	if len(seen) != total {
		t.Fatalf("across the reconnect saw %d events, journal holds %d", len(seen), total)
	}
	for i, s := range seen {
		if s != i {
			t.Fatalf("resumed seq[%d] = %d: gap or duplicate across reconnect", i, s)
		}
	}
}
