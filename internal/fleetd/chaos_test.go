// Daemon chaos suite: the hardened HTTP front end under injected network
// faults — delays, 500s, severed response bodies, handler panics — driven
// through the real HTTP stack. The harness retries injected failures
// itself (the client library deliberately does not retry 500s: an
// injected 500 is indistinguishable from a real daemon bug, and hiding
// those from callers is not the transport's job).
package fleetd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"rpg2/internal/faults"
	"rpg2/internal/fleet"
	"rpg2/internal/fleetclient"
	"rpg2/internal/fleetd"
	"rpg2/internal/machine"
)

// TestDaemonChaosNoSessionLost floods the daemon with work while every
// route suffers injected delays, 500s, and severed bodies. Every
// acknowledged submission must resolve to a terminal outcome, the daemon
// must stay healthy throughout, and the fault schedule must actually have
// fired.
func TestDaemonChaosNoSessionLost(t *testing.T) {
	inj := faults.NewNet(faults.NetConfig{
		Seed:       42,
		DelayRate:  0.05,
		Delay:      time.Millisecond,
		ErrorRate:  0.1,
		SeverRate:  0.1,
		SeverAfter: 8,
	})
	srv, cli := newTestDaemon(t, fleetd.Config{
		Fleet:     fleet.Config{Machine: machine.CascadeLake(), Workers: 2},
		NetFaults: inj,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Submit with a harness-level retry loop: injected 500s and severed
	// acks surface as errors the client does not absorb. A severed ack can
	// hide a successful admission, so the daemon may run more sessions
	// than the harness acknowledges — what must hold is that every
	// acknowledged ID is distinct and resolves.
	var ids []int
	seen := make(map[int]bool)
	for i := 0; i < 24; i++ {
		spec := tripSpecs[i%len(tripSpecs)]
		spec.Seed = int64(100 + i)
		var id int
		var err error
		for attempt := 0; attempt < 50; attempt++ {
			id, err = cli.Submit(ctx, *fleet.RecordSpec(spec))
			if err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("submit %d never succeeded under chaos: %v", i, err)
		}
		if seen[id] {
			t.Fatalf("daemon acknowledged session ID %d twice", id)
		}
		seen[id] = true
		ids = append(ids, id)
	}

	// Wait absorbs poll failures by design, so it rides straight through
	// the chaos layer.
	for _, id := range ids {
		out, err := cli.Wait(ctx, id)
		if err != nil {
			t.Fatalf("session %d lost under chaos: %v", id, err)
		}
		if out.State == "" {
			t.Fatalf("session %d resolved with an empty outcome", id)
		}
	}

	if inj.Injected() == 0 {
		t.Fatal("net injector never fired; the chaos run exercised nothing")
	}
	// The daemon is still healthy after everything it absorbed.
	var status string
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		if status, err = cli.Health(ctx); err == nil {
			break
		}
	}
	if err != nil || status != "ok" {
		t.Fatalf("daemon unhealthy after chaos: %q, %v", status, err)
	}
	if srv.Fleet().Snapshot().Completed == 0 {
		t.Fatal("no sessions completed under chaos")
	}
}

// TestDaemonPanicRecovery: a handler panic must not kill the daemon. The
// panic is journaled as a handler-panic event, counted in the snapshot,
// the panicking request gets a 500, the queued session the request
// addressed is marked Degraded (terminal — pollers stop waiting on it),
// and the daemon keeps serving.
func TestDaemonPanicRecovery(t *testing.T) {
	srv, cli := newTestDaemon(t, fleetd.Config{
		Fleet: fleet.Config{Machine: machine.CascadeLake(), Workers: 1},
		// One panic, on the first request the daemon sees.
		NetFaults: faults.NewNet(faults.NetConfig{Seed: 1, PanicRate: 1, MaxFaults: 1}),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Build a deep backlog in-process (no HTTP, so no fault draws) so the
	// last session is still queued when the panicking request lands.
	f := srv.Fleet()
	var last *fleet.Session
	for i := 0; i < 64; i++ {
		spec := tripSpecs[i%len(tripSpecs)]
		spec.Seed = int64(500 + i)
		s, err := f.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		last = s
	}

	// First HTTP request: the injector panics the handler. The recovery
	// middleware turns it into a 500 and degrades the addressed session.
	_, err := cli.Status(ctx, last.ID)
	var apiErr *fleetclient.APIError
	if !asAPIError(err, &apiErr) || apiErr.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request surfaced %v, want HTTP 500", err)
	}
	if !strings.Contains(apiErr.Message, "panicked") {
		t.Fatalf("500 body %q does not name the panic", apiErr.Message)
	}

	// The daemon survived and keeps answering.
	if status, err := cli.Health(ctx); err != nil || status != "ok" {
		t.Fatalf("daemon did not survive the panic: %q, %v", status, err)
	}

	// The addressed session was evicted from the queue as Degraded —
	// terminal, so a waiter gets an answer instead of blocking forever.
	if st := last.State(); !st.Terminal() || st != fleet.Degraded {
		t.Fatalf("queued session addressed by the panic is %q, want degraded", st)
	}

	// The arc is visible: a fleet-level handler-panic event naming the
	// route, and the snapshot counter.
	var panicEvent *fleet.Event
	for _, e := range f.Journal().Events() {
		if e.Type == "handler-panic" {
			ev := e
			panicEvent = &ev
		}
	}
	if panicEvent == nil {
		t.Fatal("panic left no handler-panic journal event")
	}
	if want := "GET /v1/sessions/" + strconv.Itoa(last.ID); panicEvent.Reason != want {
		t.Fatalf("handler-panic names route %q, want %q", panicEvent.Reason, want)
	}
	if n := f.Snapshot().HandlerPanics; n != 1 {
		t.Fatalf("snapshot counts %d handler panics, want 1", n)
	}
	if !strings.Contains(f.Snapshot().Render(), "1 handler panics recovered") {
		t.Fatalf("Render hides the recovered panic:\n%s", f.Snapshot().Render())
	}

	f.Drain()
}

// asAPIError is errors.As without importing errors twice in every test.
func asAPIError(err error, target **fleetclient.APIError) bool {
	for err != nil {
		if ae, ok := err.(*fleetclient.APIError); ok {
			*target = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestDaemonSeveredBodyIsDeterministic: a severed response delivers
// exactly SeverAfter body bytes before the connection dies — the injected
// failure is reproducible, not approximately truncated.
func TestDaemonSeveredBodyIsDeterministic(t *testing.T) {
	srv, err := fleetd.New(fleetd.Config{
		Fleet:     fleet.Config{Machine: machine.CascadeLake(), Workers: 1},
		NetFaults: faults.NewNet(faults.NetConfig{Seed: 5, SeverRate: 1, SeverAfter: 16, MaxFaults: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatalf("severed request failed before headers: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("severed body read cleanly (%d bytes); want a mid-body failure", len(body))
	}
	if len(body) != 16 {
		t.Fatalf("severed body delivered %d bytes before dying, want exactly 16", len(body))
	}

	// The fault budget is spent; the next request is whole.
	resp2, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var snap fleet.Snapshot
	if err := json.NewDecoder(resp2.Body).Decode(&snap); err != nil {
		t.Fatalf("post-sever request still damaged: %v", err)
	}
}

// TestDaemonOversizedBodyRejected: MaxBodyBytes caps submissions with a
// 413, and the limit does not bleed into valid requests.
func TestDaemonOversizedBodyRejected(t *testing.T) {
	srv, err := fleetd.New(fleetd.Config{
		Fleet:        fleet.Config{Machine: machine.CascadeLake(), Workers: 1},
		MaxBodyBytes: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big := `{"bench":"` + strings.Repeat("x", 512) + `"}`
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader([]byte(big)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body got %d, want 413", resp.StatusCode)
	}

	ok, err := http.Post(ts.URL+"/v1/sessions", "application/json",
		bytes.NewReader([]byte(`{"bench":"is","seed":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Body.Close()
	if ok.StatusCode != http.StatusAccepted {
		t.Fatalf("valid submit under the body cap got %d, want 202", ok.StatusCode)
	}
}

// TestHTTPServerRealTimeouts: the daemon's http.Server carries real
// timeouts — defaults when unset, the configured values when set.
func TestHTTPServerRealTimeouts(t *testing.T) {
	srv, err := fleetd.New(fleetd.Config{
		Fleet: fleet.Config{Machine: machine.CascadeLake(), Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	hs := srv.HTTPServer()
	if hs.ReadHeaderTimeout <= 0 || hs.ReadTimeout <= 0 || hs.WriteTimeout <= 0 || hs.IdleTimeout <= 0 {
		t.Fatalf("default HTTPServer leaves a timeout unset: %+v", hs)
	}

	srv2, err := fleetd.New(fleetd.Config{
		Fleet:             fleet.Config{Machine: machine.CascadeLake(), Workers: 1},
		ReadHeaderTimeout: 7 * time.Second,
		ReadTimeout:       8 * time.Second,
		WriteTimeout:      9 * time.Second,
		IdleTimeout:       10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Drain()
	hs2 := srv2.HTTPServer()
	if hs2.ReadHeaderTimeout != 7*time.Second || hs2.ReadTimeout != 8*time.Second ||
		hs2.WriteTimeout != 9*time.Second || hs2.IdleTimeout != 10*time.Second {
		t.Fatalf("configured timeouts not honored: %+v", hs2)
	}
}

// TestDaemonEventsStreamSurvivesWriteTimeout: the journal stream clears
// its per-response write deadline, so a stream outliving the server's
// WriteTimeout keeps delivering instead of dying mid-tail.
func TestDaemonEventsStreamSurvivesWriteTimeout(t *testing.T) {
	srv, err := fleetd.New(fleetd.Config{
		Fleet:        fleet.Config{Machine: machine.CascadeLake(), Workers: 1},
		WriteTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := srv.HTTPServer()
	ts := httptest.NewUnstartedServer(nil)
	ts.Config = hs
	ts.Start()
	defer ts.Close()

	cli := fleetclient.New(fleetclient.Config{BaseURL: ts.URL})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Hold the stream open well past WriteTimeout before any work exists,
	// then submit: the late events must still arrive on the same stream.
	streamErr := make(chan error, 1)
	sawDone := make(chan struct{})
	go func() {
		streamErr <- cli.Stream(ctx, -1, func(e fleet.Event) error {
			if e.Type == "session-done" || e.Type == "session-failed" {
				select {
				case <-sawDone:
				default:
					close(sawDone)
				}
			}
			return nil
		})
	}()

	time.Sleep(600 * time.Millisecond) // two write-timeout windows of silence
	if _, err := cli.Submit(ctx, fleet.SpecRecord{Bench: "is", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sawDone:
	case err := <-streamErr:
		t.Fatalf("stream died instead of delivering: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("stream never delivered the session's terminal event")
	}
	srv.Drain()
	if err := <-streamErr; err != nil {
		t.Fatalf("stream did not end cleanly after drain: %v", err)
	}
}
