// Package fleetd puts the fleet behind a network: an HTTP/JSON front end
// wrapping fleet.Fleet, so profiles can be captured at the edge, POSTed to
// a central curator, and served back — the client/server shape production
// PGO pipelines use once cheap always-on collection has to flow through a
// shared serving tier. The daemon owns one Fleet (fresh or recovered from
// a PR 4 state dir), exposes session submission, polling, result fetch,
// read-only store lookups, a metrics snapshot, and a resumable journal
// event stream, and turns the fleet's backpressure rejections into
// HTTP 429 with a throughput-derived Retry-After.
//
// The wire format for specs is fleet.SpecRecord — the same JSON-safe
// projection the WAL persists — so a spec means exactly the same thing
// submitted over the network, replayed from a crash, or run in-process.
package fleetd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rpg2/internal/baselines"
	"rpg2/internal/faults"
	"rpg2/internal/fleet"
	rpgcore "rpg2/internal/rpg2"
)

// Config tunes a daemon. Fleet is passed through to fleet.New (or
// fleet.Recover when Resume finds recoverable state), so all persistence
// and backpressure knobs live there.
type Config struct {
	// Fleet is the wrapped fleet's configuration.
	Fleet fleet.Config
	// Resume recovers Fleet.StateDir's interrupted run (when one exists)
	// instead of starting fresh; sessions the crash left unfinished are
	// re-admitted and stay pollable under their pre-crash IDs.
	Resume bool
	// RetryAfterCap bounds the Retry-After header on 429 responses, in
	// seconds (default 30).
	RetryAfterCap int

	// NetFaults injects deterministic network faults (delays, 500s, severed
	// response bodies, handler panics) into the daemon's request path, keyed
	// by (seed, route, request ordinal). Nil disables injection and the
	// request path is byte-identical to a daemon built without the knob.
	NetFaults *faults.NetInjector
	// RequestTimeout bounds each non-streaming request with a context
	// deadline (default 30s; negative disables). The /v1/events stream is
	// exempt — it is long-lived by design.
	RequestTimeout time.Duration
	// MaxBodyBytes caps POST bodies via http.MaxBytesReader (default 1MiB;
	// negative disables). Oversized submissions get 413.
	MaxBodyBytes int64
	// ReadHeaderTimeout, ReadTimeout, WriteTimeout and IdleTimeout are
	// applied by HTTPServer (defaults 5s, 1m, 1m, 2m). The events stream
	// survives WriteTimeout by clearing its write deadline per-response.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration
}

// Server is the daemon: one fleet behind an http.Handler. Create with New,
// serve Handler(), stop with Drain.
type Server struct {
	fleet    *fleet.Fleet
	recovery *fleet.Recovery
	mux      *http.ServeMux
	retryCap int

	netFaults  *faults.NetInjector
	reqTimeout time.Duration
	maxBody    int64
	readHdrTO  time.Duration
	readTO     time.Duration
	writeTO    time.Duration
	idleTO     time.Duration

	draining  atomic.Bool
	drainOnce sync.Once
	drainDone chan struct{}

	mu       sync.Mutex
	sessions map[int]registered
}

// registered is one pollable session ID: a live handle, or the distilled
// pre-crash record of a session that finished before a restart.
type registered struct {
	live *fleet.Session
	rec  *fleet.RecoveredSession
}

// New starts a daemon over a fresh or recovered fleet. With cfg.Resume and
// a state dir holding an interrupted run, the fleet is rebuilt via
// fleet.Recover: terminal pre-crash sessions keep answering polls from
// their journaled outcomes, unfinished ones are re-admitted and tracked
// live under both their old and new IDs.
func New(cfg Config) (*Server, error) {
	s := &Server{
		retryCap:   cfg.RetryAfterCap,
		netFaults:  cfg.NetFaults,
		reqTimeout: cfg.RequestTimeout,
		maxBody:    cfg.MaxBodyBytes,
		readHdrTO:  cfg.ReadHeaderTimeout,
		readTO:     cfg.ReadTimeout,
		writeTO:    cfg.WriteTimeout,
		idleTO:     cfg.IdleTimeout,
		drainDone:  make(chan struct{}),
		sessions:   make(map[int]registered),
	}
	if s.retryCap <= 0 {
		s.retryCap = 30
	}
	if s.reqTimeout == 0 {
		s.reqTimeout = 30 * time.Second
	}
	if s.maxBody == 0 {
		s.maxBody = 1 << 20
	}
	if s.readHdrTO <= 0 {
		s.readHdrTO = 5 * time.Second
	}
	if s.readTO <= 0 {
		s.readTO = time.Minute
	}
	if s.writeTO <= 0 {
		s.writeTO = time.Minute
	}
	if s.idleTO <= 0 {
		s.idleTO = 2 * time.Minute
	}
	if cfg.Resume && cfg.Fleet.StateDir != "" && fleet.PendingSessions(cfg.Fleet.StateDir) > 0 {
		f, rec, err := fleet.Recover(cfg.Fleet.StateDir, cfg.Fleet)
		if err != nil {
			return nil, err
		}
		s.fleet, s.recovery = f, rec
		for i := range rec.Records {
			r := &rec.Records[i]
			if r.Session != nil {
				s.sessions[r.OldID] = registered{live: r.Session}
				s.sessions[r.Session.ID] = registered{live: r.Session}
			} else {
				s.sessions[r.OldID] = registered{rec: r}
			}
		}
	} else {
		s.fleet = fleet.New(cfg.Fleet)
	}
	s.routes()
	return s, nil
}

// Fleet exposes the wrapped fleet (tests and embedders).
func (s *Server) Fleet() *fleet.Fleet { return s.fleet }

// Recovery reports what a resumed daemon salvaged (nil for fresh starts).
func (s *Server) Recovery() *fleet.Recovery { return s.recovery }

// Handler returns the daemon's HTTP API wrapped in its hardening
// middleware: panic recovery outermost (a panicking handler journals the
// event and answers 500 instead of killing the daemon), a per-request
// context deadline, and — only when Config.NetFaults is set — the chaos
// layer that injects delays, 500s, severed bodies and panics.
func (s *Server) Handler() http.Handler {
	return s.recoverPanics(s.withDeadline(s.withChaos(s.mux)))
}

// HTTPServer wraps Handler in an http.Server with real timeouts, so a
// slow-loris client or a stuck write cannot pin a connection forever.
// Callers still own ListenAndServe/Serve and Shutdown.
func (s *Server) HTTPServer() *http.Server {
	return &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: s.readHdrTO,
		ReadTimeout:       s.readTO,
		WriteTimeout:      s.writeTO,
		IdleTimeout:       s.idleTO,
	}
}

// routeKey is the fault-injection and journal key for a request. It uses
// the raw URL path, not the mux pattern, so ordinals advance per concrete
// route the same way the client-side injector counts them.
func routeKey(r *http.Request) string { return r.Method + " " + r.URL.Path }

// pathSessionID extracts the {id} segment from /v1/sessions/{id}[/...].
// The recovery middleware sits outside the mux, so PathValue is not
// populated yet and the path is parsed by hand.
func pathSessionID(path string) (int, bool) {
	rest, ok := strings.CutPrefix(path, "/v1/sessions/")
	if !ok {
		return 0, false
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	id, err := strconv.Atoi(rest)
	return id, err == nil
}

// trackWriter remembers whether anything was written, so the recovery
// middleware knows whether a 500 can still be sent after a panic.
type trackWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackWriter) Write(b []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(b)
}

func (t *trackWriter) Unwrap() http.ResponseWriter { return t.ResponseWriter }

func (t *trackWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// severWriter delivers exactly `remaining` more body bytes, then aborts
// the connection mid-response with http.ErrAbortHandler — the injected
// "server died mid-body" failure clients must survive.
type severWriter struct {
	http.ResponseWriter
	remaining int
}

func (s *severWriter) Write(b []byte) (int, error) {
	if len(b) >= s.remaining {
		s.ResponseWriter.Write(b[:s.remaining])
		if f, ok := s.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	s.remaining -= len(b)
	return s.ResponseWriter.Write(b)
}

func (s *severWriter) Unwrap() http.ResponseWriter { return s.ResponseWriter }

func (s *severWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// recoverPanics keeps the daemon alive through handler panics: the panic
// is journaled as a fleet-level "handler-panic" event, the session the
// request addressed (if still queued) is marked Degraded so pollers see a
// terminal state instead of hanging forever, and the client gets a 500 if
// the response hadn't started. http.ErrAbortHandler is re-thrown — that
// is net/http's sanctioned "abort this connection" signal and the sever
// fault depends on it propagating.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := &trackWriter{ResponseWriter: w}
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if err, ok := p.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(p)
			}
			s.fleet.RecordPanic(routeKey(r), fmt.Sprint(p))
			if id, ok := pathSessionID(r.URL.Path); ok {
				s.fleet.DegradeQueued(id)
			}
			if !tw.wrote {
				writeErr(tw, http.StatusInternalServerError, "internal error: handler panicked")
			}
		}()
		next.ServeHTTP(tw, r)
	})
}

// withDeadline bounds every non-streaming request with a context deadline
// so a wedged handler cannot hold a connection past RequestTimeout. The
// events stream is exempt: it is long-lived by contract.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	if s.reqTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/events" {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// withChaos is the daemon-side network fault layer. Each request draws at
// most one fault from the injector, keyed by (seed, route, ordinal):
// a delay before dispatch, an injected 500, a response severed after
// SeverAfter body bytes, or a handler panic (which then exercises
// recoverPanics end to end). A nil injector returns next unchanged, so
// the zero-knob path has no wrapper at all.
func (s *Server) withChaos(next http.Handler) http.Handler {
	if s.netFaults == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f := s.netFaults.Decide(routeKey(r))
		switch f.Kind {
		case faults.NetDelay:
			t := time.NewTimer(f.Delay)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
				return
			}
		case faults.NetError:
			writeErr(w, http.StatusInternalServerError, "%v", f.Err())
			return
		case faults.NetSever:
			w = &severWriter{ResponseWriter: w, remaining: f.SeverAfter}
		case faults.NetPanic:
			panic(fmt.Sprintf("injected chaos panic on %s", routeKey(r)))
		}
		next.ServeHTTP(w, r)
	})
}

// DrainStats reports what a graceful shutdown did.
type DrainStats struct {
	// Cancelled is how many queued sessions were failed with ErrCanceled
	// before they ran; in-flight sessions finished normally.
	Cancelled int `json:"cancelled"`
}

// Drain is the graceful shutdown: new submissions get 503, queued
// sessions journal as cancelled, in-flight sessions finish, the WAL
// flushes, and event streams end after delivering everything. Idempotent;
// concurrent calls all block until the first finishes.
func (s *Server) Drain() DrainStats {
	var st DrainStats
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		st.Cancelled = s.fleet.CancelQueued()
		s.fleet.Drain()
		s.fleet.Close()
		close(s.drainDone)
	})
	<-s.drainDone
	return st
}

// Status is the poll endpoint's view of one session.
type Status struct {
	ID         int    `json:"id"`
	State      string `json:"state"`
	Terminal   bool   `json:"terminal"`
	Warm       bool   `json:"warm,omitempty"`
	Translated bool   `json:"translated,omitempty"`
	Attempt    int    `json:"attempt,omitempty"`
	Err        string `json:"error,omitempty"`
}

// Outcome is a terminal session's result — deliberately free of
// wall-clock times and fleet-assigned IDs, so the same spec and seed
// produce byte-identical Outcome JSON whether the session ran in-process
// or through the daemon (the round-trip determinism the tests pin).
type Outcome struct {
	State       string                  `json:"state"`
	Warm        bool                    `json:"warm,omitempty"`
	Translated  bool                    `json:"translated,omitempty"`
	Attempt     int                     `json:"attempt,omitempty"`
	Err         string                  `json:"error,omitempty"`
	Report      *rpgcore.Report         `json:"report,omitempty"`
	Measurement *rpgcore.Measurement    `json:"measurement,omitempty"`
	Sweep       *baselines.Sweep        `json:"sweep,omitempty"`
	Candidates  []int                   `json:"candidates,omitempty"`
	Distance    int                     `json:"distance,omitempty"`
	Tail        []rpgcore.TimelinePoint `json:"tail,omitempty"`
}

// OutcomeOf distils a session's terminal result into the wire form.
func OutcomeOf(sess *fleet.Session) Outcome {
	o := Outcome{
		State:       sess.State().String(),
		Warm:        sess.Warm(),
		Translated:  sess.Translated(),
		Attempt:     sess.Attempt(),
		Report:      sess.Report(),
		Measurement: sess.Measurement(),
		Sweep:       sess.SweepResult(),
		Candidates:  sess.Candidates(),
		Distance:    sess.Distance(),
		Tail:        sess.Tail(),
	}
	if err := sess.Err(); err != nil {
		o.Err = err.Error()
	}
	return o
}

// SubmitResponse acknowledges an accepted session.
type SubmitResponse struct {
	ID    int    `json:"id"`
	State string `json:"state"`
}

// apiError is every non-2xx body: one JSON object naming what went wrong.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/sessions", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/store/lookup", s.handleLookup)
	s.mux.HandleFunc("GET /v1/store/translated", s.handleTranslated)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	state := "ok"
	if s.draining.Load() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": state})
}

// retryAfter estimates how long a rejected submitter should wait before
// trying again: the queue depth that tripped the cap, spread over the
// worker pool, at the fleet's observed median session latency — clamped
// to [1, RetryAfterCap] seconds so the header is always a sane integer.
func (s *Server) retryAfter(depth int) int {
	snap := s.fleet.Snapshot()
	p50 := snap.P50Wall
	if p50 <= 0 {
		p50 = 0.1
	}
	workers := snap.Workers
	if workers <= 0 {
		workers = 1
	}
	secs := int(math.Ceil(float64(depth) / float64(workers) * p50))
	if secs < 1 {
		secs = 1
	}
	if secs > s.retryCap {
		secs = s.retryCap
	}
	return secs
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	body := r.Body
	if s.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	var rec fleet.SpecRecord
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "spec body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "decode spec: %v", err)
		return
	}
	if rec.Bench == "" {
		writeErr(w, http.StatusBadRequest, "spec needs a bench")
		return
	}
	if rec.Kind > uint8(fleet.APTGETJob) {
		writeErr(w, http.StatusBadRequest, "unknown job kind %d", rec.Kind)
		return
	}
	sess, err := s.fleet.Submit(rec.Spec())
	var over *fleet.OverloadError
	switch {
	case errors.As(err, &over):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter(over.Depth)))
		writeErr(w, http.StatusTooManyRequests, "%v", over)
		return
	case errors.Is(err, fleet.ErrClosed):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.mu.Lock()
	s.sessions[sess.ID] = registered{live: sess}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: sess.ID, State: sess.State().String()})
}

// lookup resolves a session ID to its registered handle or record.
func (s *Server) lookup(id int) (registered, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg, ok := s.sessions[id]
	return reg, ok
}

func sessionID(r *http.Request) (int, error) {
	return strconv.Atoi(r.PathValue("id"))
}

func statusOf(id int, reg registered) Status {
	if reg.live != nil {
		st := reg.live.State()
		out := Status{
			ID: id, State: st.String(), Terminal: st.Terminal(),
			Warm: reg.live.Warm(), Translated: reg.live.Translated(),
			Attempt: reg.live.Attempt(),
		}
		if err := reg.live.Err(); err != nil {
			out.Err = err.Error()
		}
		return out
	}
	return Status{
		ID: id, State: reg.rec.State, Terminal: true,
		Warm: reg.rec.Warm, Translated: reg.rec.Translated,
		Attempt: reg.rec.Attempt, Err: reg.rec.Err,
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, err := sessionID(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad session id")
		return
	}
	reg, ok := s.lookup(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no session %d", id)
		return
	}
	writeJSON(w, http.StatusOK, statusOf(id, reg))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id, err := sessionID(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad session id")
		return
	}
	reg, ok := s.lookup(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no session %d", id)
		return
	}
	if reg.live != nil {
		if !reg.live.State().Terminal() {
			// Not done yet: hand back the poll view instead of a result,
			// with 202 so clients can tell "keep waiting" from an error.
			writeJSON(w, http.StatusAccepted, statusOf(id, reg))
			return
		}
		writeJSON(w, http.StatusOK, OutcomeOf(reg.live))
		return
	}
	writeJSON(w, http.StatusOK, Outcome{
		State: reg.rec.State, Warm: reg.rec.Warm, Translated: reg.rec.Translated,
		Attempt: reg.rec.Attempt, Err: reg.rec.Err, Report: reg.rec.Report,
	})
}

// storeKey decodes a lookup key from the query string. An empty machine
// means the daemon's own: store entries are keyed by the effective
// machine name, so defaulting here lets clients peek without knowing
// which machine the daemon was started on.
func (s *Server) storeKey(r *http.Request) fleet.Key {
	q := r.URL.Query()
	k := fleet.Key{
		Bench:   q.Get("bench"),
		Input:   q.Get("input"),
		Machine: q.Get("machine"),
	}
	if k.Machine == "" {
		k.Machine = s.fleet.Machine().Name
	}
	return k
}

// lookupResponse frames a store peek: the entry, and (for translated
// lookups) the sibling key it would seed from. Against a sharded store it
// also reports which shard the key routed to and the layout width —
// translated lookups report the same shard as plain lookups for the same
// (bench, input), because the shard key excludes the machine axis.
type lookupResponse struct {
	Key    fleet.Key   `json:"key"`
	Entry  fleet.Entry `json:"entry"`
	Source *fleet.Key  `json:"source,omitempty"`
	Shard  *int        `json:"shard,omitempty"`
	Shards int         `json:"shards,omitempty"`
}

// shardInfo annotates a peek response with the routing shard when the
// store is sharded; single-shard responses stay byte-identical.
func shardInfo(st fleet.Store, k fleet.Key, resp *lookupResponse) {
	if n := st.Shards(); n > 1 {
		sh := st.ShardOf(k)
		resp.Shard, resp.Shards = &sh, n
	}
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	st := s.fleet.Store()
	if st == nil {
		writeErr(w, http.StatusNotFound, "profile store disabled")
		return
	}
	k := s.storeKey(r)
	if k.Bench == "" {
		writeErr(w, http.StatusBadRequest, "lookup needs a bench")
		return
	}
	e, ok := st.Peek(k)
	if !ok {
		writeErr(w, http.StatusNotFound, "no entry for %+v", k)
		return
	}
	resp := lookupResponse{Key: k, Entry: e}
	shardInfo(st, k, &resp)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTranslated(w http.ResponseWriter, r *http.Request) {
	st := s.fleet.Store()
	if st == nil {
		writeErr(w, http.StatusNotFound, "profile store disabled")
		return
	}
	k := s.storeKey(r)
	if k.Bench == "" {
		writeErr(w, http.StatusBadRequest, "lookup needs a bench")
		return
	}
	e, src, ok := st.PeekTranslated(k)
	if !ok {
		writeErr(w, http.StatusNotFound, "no sibling entry for %+v", k)
		return
	}
	resp := lookupResponse{Key: k, Entry: e, Source: &src}
	shardInfo(st, k, &resp)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fleet.Snapshot())
}

// handleEvents streams the journal as NDJSON from a sequence cursor
// (?since=N streams events with Seq > N; default everything). The stream
// stays open — new events flush as they land — until the client hangs up
// or the daemon drains; a disconnected client resumes by passing the last
// Seq it saw, and the dense Seq numbering guarantees no gap and no
// duplicate across the reconnect.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	since := -1
	if raw := r.URL.Query().Get("since"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad since cursor %q", raw)
			return
		}
		since = n
	}
	journal := s.fleet.Journal()
	wake := journal.Watch()
	defer journal.Unwatch(wake)

	// The stream is long-lived by contract: clear the per-response write
	// deadline so HTTPServer's WriteTimeout doesn't cut it off mid-tail.
	// Best-effort — a ResponseWriter that can't do it just keeps whatever
	// deadline the server set.
	http.NewResponseController(w).SetWriteDeadline(time.Time{})

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	cursor := since
	emit := func() bool {
		for _, e := range journal.EventsSince(cursor) {
			if err := enc.Encode(e); err != nil {
				return false
			}
			cursor = e.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for {
		if !emit() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.drainDone:
			// Drained: deliver whatever landed after the last scan, then
			// end the stream so clients see a clean EOF.
			emit()
			return
		case <-wake:
		}
	}
}
