package experiments

import (
	"strings"
	"testing"

	"rpg2/internal/rpg2"
)

// synthPair builds a PairResult with the given rpg2 speedup and outcomes.
func synthPair(bench, input, mach string, speedup float64, outcomes map[rpg2.Outcome]int) *PairResult {
	return &PairResult{
		Bench: bench, Input: input, Machine: mach,
		Speedup: map[string]float64{
			SchemeOriginal: 1.0,
			SchemeRPG2:     speedup,
			SchemeOffline:  speedup * 1.05,
		},
		RPG2Outcomes: outcomes,
		RPG2Trials:   []float64{speedup},
	}
}

func TestFig7SummarizeGroups(t *testing.T) {
	res := &Fig7Result{Pairs: []*PairResult{
		synthPair("pr", "a", "cl", 1.5, map[rpg2.Outcome]int{rpg2.Tuned: 3}),
		synthPair("pr", "b", "cl", 1.2, map[rpg2.Outcome]int{rpg2.Tuned: 3}),
		synthPair("pr", "c", "cl", 1.0, map[rpg2.Outcome]int{rpg2.RolledBack: 3}),
		synthPair("pr", "d", "cl", 1.0, map[rpg2.Outcome]int{rpg2.NotActivated: 3}),
		{Bench: "pr", Input: "e", Machine: "cl", Err: errFake}, // skipped
	}}
	sums := res.Summarize()
	if len(sums) != 1 {
		t.Fatalf("summaries = %d", len(sums))
	}
	bs := sums[0]
	if bs.Bench != "pr" || bs.Machine != "cl" {
		t.Fatalf("summary key %s/%s", bs.Bench, bs.Machine)
	}
	byName := map[string]Group{}
	for _, g := range bs.Groups {
		byName[g.Name] = g
	}
	if byName["all"].Inputs != 4 {
		t.Fatalf("all group has %d inputs, want 4 (failed cell excluded)", byName["all"].Inputs)
	}
	if byName["speedup"].Inputs != 2 {
		t.Fatalf("speedup group has %d inputs, want 2", byName["speedup"].Inputs)
	}
	if byName["slowdown"].Inputs != 1 {
		t.Fatalf("slowdown group has %d inputs, want 1 (majority rolled back)", byName["slowdown"].Inputs)
	}
	// Means: all = (1.5+1.2+1.0+1.0)/4.
	if m := byName["all"].Mean[SchemeRPG2]; m < 1.17 || m > 1.18 {
		t.Fatalf("all-group rpg2 mean = %f", m)
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Figure 7 — pr on cl", "all(4)", "speedup(2)", "slowdown(1)", "SKIPPED pr/e/cl"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

var errFake = errFakeType{}

type errFakeType struct{}

func (errFakeType) Error() string { return "synthetic failure" }

func TestInputsForEachBenchmark(t *testing.T) {
	r := NewRunner(QuickOptions())
	defer r.Close()
	if got := r.inputsFor("pr"); len(got) == 0 {
		t.Fatal("pr has no inputs")
	}
	if got := r.inputsFor("bc"); len(got) == 0 {
		t.Fatal("bc has no inputs")
	}
	if got := r.inputsFor("is"); len(got) != 1 || got[0] != "" {
		t.Fatalf("is inputs = %v", got)
	}
}

func TestManualDistances(t *testing.T) {
	if manualDistance("is") == 0 || manualDistance("cg") == 0 || manualDistance("randacc") == 0 {
		t.Fatal("AJ manual distances missing")
	}
	if manualDistance("pr") != 0 {
		t.Fatal("pr must not have a manual distance")
	}
}
