package experiments

import (
	"fmt"
	"io"

	"rpg2/internal/baselines"
	"rpg2/internal/fleet"
	"rpg2/internal/perf"
	"rpg2/internal/rpg2"
	"rpg2/internal/stats"
)

// Fig11Point relates one input's speedup to its LLC MPKI change.
type Fig11Point struct {
	Input       string
	Speedup     float64
	BaseMPKI    float64
	RPG2MPKI    float64
	MPKIReduced float64
	Activated   bool
}

// Fig11Result is the speedup-vs-MPKI scatter for pr.
type Fig11Result struct {
	Machine string
	Points  []Fig11Point
}

// Fig11 reproduces Figure 11: for every pr input, RPG²'s speedup against
// the reduction in LLC misses per kilo-instruction. Each input is one
// (baseline, optimize) pair of fleet sessions.
func (r *Runner) Fig11() (*Fig11Result, error) {
	m := r.opts.Machines[0]
	inputs := r.inputsFor("pr")
	out := &Fig11Result{Machine: m.Name, Points: make([]Fig11Point, len(inputs))}
	refs := make([]cellRef, len(inputs))
	for i, in := range inputs {
		refs[i] = cellRef{"pr", in, m}
	}
	thaw := r.warmStart(refs)
	defer thaw()
	var specs []fleet.SessionSpec
	for i, in := range inputs {
		specs = append(specs, fleet.SessionSpec{
			Bench: "pr", Input: in, Kind: fleet.BaselineJob,
			Machine:    r.mptr(m),
			RunSeconds: r.opts.RunSeconds, TailSeconds: 1.0,
		})
		specs = append(specs, fleet.SessionSpec{
			Bench: "pr", Input: in, Machine: r.mptr(m),
			Seed: r.opts.Seed + int64(i), Cold: !r.opts.WarmStart,
			RunSeconds: r.opts.RunSeconds, TailSeconds: 1.0,
		})
	}
	sessions, err := r.runBatch(specs)
	if err != nil {
		return nil, err
	}
	for i, in := range inputs {
		orig, err := resultFrom(sessions[2*i])
		if err != nil || orig.Work == 0 {
			out.Points[i] = Fig11Point{Input: in}
			continue
		}
		rr, err := resultFrom(sessions[2*i+1])
		if err != nil {
			out.Points[i] = Fig11Point{Input: in}
			continue
		}
		out.Points[i] = Fig11Point{
			Input:       in,
			Speedup:     float64(rr.Work) / float64(orig.Work),
			BaseMPKI:    orig.TailMPKI,
			RPG2MPKI:    rr.TailMPKI,
			MPKIReduced: orig.TailMPKI - rr.TailMPKI,
			Activated:   rr.Report.Outcome != rpg2.NotActivated,
		}
	}
	return out, nil
}

// Render prints the scatter points and the correlation the paper discusses
// (present, but not especially strong).
func (f *Fig11Result) Render(w io.Writer) {
	fmt.Fprintf(w, "\nFigure 11 — pr speedup vs LLC MPKI reduction (%s)\n", f.Machine)
	var xs, ys []float64
	for _, p := range f.Points {
		if p.Speedup == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-22s speedup=%.2f baseMPKI=%6.2f rpg2MPKI=%6.2f reduced=%6.2f activated=%v\n",
			p.Input, p.Speedup, p.BaseMPKI, p.RPG2MPKI, p.MPKIReduced, p.Activated)
		xs = append(xs, p.MPKIReduced)
		ys = append(ys, p.Speedup)
	}
	fmt.Fprintf(w, "  correlation(MPKI reduction, speedup) = %.2f\n", correlation(xs, ys))
}

func correlation(xs, ys []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mx, my := stats.Mean(xs), stats.Mean(ys)
	sxy, sxx, syy := 0.0, 0.0, 0.0
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / (sqrt(sxx) * sqrt(syy))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton's method suffices here and avoids importing math for one call.
	z := x
	for i := 0; i < 32; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Fig12Result is the dynamic instruction-overhead histogram for pr.
type Fig12Result struct {
	Machine string
	// Overheads are per-input relative increases in dynamic instructions
	// per unit of work (e.g. 0.15 = +15%).
	Overheads []float64
	Edges     []float64
	Counts    []int
}

// Fig12 reproduces Figure 12: the increase in dynamic instruction count
// from running the prefetch kernel, per pr input.
func (r *Runner) Fig12() (*Fig12Result, error) {
	m := r.opts.Machines[0]
	inputs := r.inputsFor("pr")
	refs := make([]cellRef, len(inputs))
	for i, in := range inputs {
		refs[i] = cellRef{"pr", in, m}
	}
	thaw := r.warmStart(refs)
	defer thaw()
	var specs []fleet.SessionSpec
	for i, in := range inputs {
		specs = append(specs, fleet.SessionSpec{
			Bench: "pr", Input: in, Kind: fleet.BaselineJob,
			Machine:    r.mptr(m),
			RunSeconds: r.opts.RunSeconds, TailSeconds: 1.0,
		})
		specs = append(specs, fleet.SessionSpec{
			Bench: "pr", Input: in, Machine: r.mptr(m),
			Seed: r.opts.Seed + int64(3*i), Cold: !r.opts.WarmStart,
			RunSeconds: r.opts.RunSeconds, TailSeconds: 1.0,
		})
	}
	sessions, err := r.runBatch(specs)
	if err != nil {
		return nil, err
	}
	out := &Fig12Result{Machine: m.Name}
	for i := range inputs {
		orig, err := resultFrom(sessions[2*i])
		if err != nil || orig.TailInstrPer == 0 {
			continue
		}
		rr, err := resultFrom(sessions[2*i+1])
		if err != nil || rr.TailInstrPer == 0 {
			continue
		}
		if rr.Report.Outcome != rpg2.Tuned {
			continue // no kernel left in the code
		}
		out.Overheads = append(out.Overheads, rr.TailInstrPer/orig.TailInstrPer-1)
	}
	out.Edges = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.75}
	out.Counts = stats.Histogram(out.Overheads, out.Edges)
	return out, nil
}

// Render prints the Figure 12 histogram.
func (f *Fig12Result) Render(w io.Writer) {
	fmt.Fprintf(w, "\nFigure 12 — pr dynamic instruction increase (%s), %d tuned inputs\n", f.Machine, len(f.Overheads))
	labels := []string{"0-10%", "10-20%", "20-30%", "30-40%", "40-50%", "50-75%", ">75%"}
	for i, c := range f.Counts {
		fmt.Fprintf(w, "  %-7s %d\n", labels[i], c)
	}
}

// Fig13Result is the asymmetric-distance grid for sssp's two loads.
type Fig13Result struct {
	Input, Machine string
	D0, D1         []int
	// Speedup[i][j] is the speedup at (D0[i], D1[j]).
	Speedup [][]float64
}

// Fig13 reproduces Figure 13: sweep sssp's two prefetch distances
// independently on one input and report the speedup surface. RPG² itself
// keeps distances symmetric; this shows what asymmetry is worth (§4.5).
// The grid mutates one process's patch points in place, so it stays a
// sequential procedure; the workload and candidates still come from the
// fleet's build cache and profile jobs.
func (r *Runner) Fig13(input string) (*Fig13Result, error) {
	m := r.opts.Machines[0]
	if input == "" {
		input = r.inputsFor("sssp")[0]
	}
	w, err := r.fleet.Builds().Build("sssp", input, 1<<30)
	if err != nil {
		return nil, err
	}
	cand, err := r.candidates("sssp", input, m)
	if err != nil {
		return nil, err
	}
	if len(cand) < 2 {
		return nil, fmt.Errorf("fig13: sssp/%s exposed %d sites, need 2", input, len(cand))
	}
	pf, err := baselines.BuildPrefetched(w, cand, 8)
	if err != nil {
		return nil, err
	}
	if len(pf.RW.PatchPoints) < 2 {
		return nil, fmt.Errorf("fig13: rewrite has %d patch points, need 2", len(pf.RW.PatchPoints))
	}

	// Baseline.
	bp, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		return nil, err
	}
	if err := baselines.RunUntilInit(bp, m); err != nil {
		return nil, err
	}
	bwatch := perf.AttachWatch(bp, []int{w.WorkPC})
	bp.Run(m.Seconds(1.0))
	base := perf.MeasureWatch(bp, bwatch, m.Seconds(1.0), nil, 0)
	if base.Work == 0 {
		return nil, fmt.Errorf("fig13: baseline retired no work")
	}

	pp, err := m.Launch(pf.Bin, w.Setup)
	if err != nil {
		return nil, err
	}
	if err := baselines.RunUntilInit(pp, m); err != nil {
		return nil, err
	}
	pcs := []int{w.WorkPC}
	if off, ok := pf.RW.BAT.Translate(w.WorkPC); ok {
		pcs = append(pcs, pf.F1Entry+off)
	}
	pwatch := perf.AttachWatch(pp, pcs)
	pp.Run(m.Seconds(1.0))

	ds := []int{2, 4, 8, 16, 32, 64, 96}
	out := &Fig13Result{Input: input, Machine: m.Name, D0: ds, D1: ds}
	out.Speedup = make([][]float64, len(ds))
	for i, d0 := range ds {
		out.Speedup[i] = make([]float64, len(ds))
		for j, d1 := range ds {
			pf.SetSiteDistance(pp, 0, d0)
			pf.SetSiteDistance(pp, 1, d1)
			pp.Run(m.Seconds(0.15))
			win := perf.MeasureWatch(pp, pwatch, m.Seconds(0.3), nil, 0)
			out.Speedup[i][j] = win.Rate / base.Rate
		}
	}
	return out, nil
}

// Render prints the asymmetric speedup surface.
func (f *Fig13Result) Render(w io.Writer) {
	fmt.Fprintf(w, "\nFigure 13 — sssp/%s asymmetric distances (%s); rows=load0 d, cols=load1 d\n", f.Input, f.Machine)
	fmt.Fprintf(w, "%6s", "")
	for _, d1 := range f.D1 {
		fmt.Fprintf(w, " %6d", d1)
	}
	fmt.Fprintln(w)
	bestSym, bestAsym := 0.0, 0.0
	for i, d0 := range f.D0 {
		fmt.Fprintf(w, "%6d", d0)
		for j := range f.D1 {
			v := f.Speedup[i][j]
			fmt.Fprintf(w, " %6.2f", v)
			if i == j && v > bestSym {
				bestSym = v
			}
			if v > bestAsym {
				bestAsym = v
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  best symmetric=%.2fx best asymmetric=%.2fx (asymmetry worth %+.1f%%)\n",
		bestSym, bestAsym, 100*(bestAsym/bestSym-1))
}
