// The drift study: the ROADMAP's continuous re-tuning item, quantified.
// Each drifting workload is run three ways — with no watchdog (the
// pre-drift fleet: tune once, then ride the stale distance to the end of
// the run), with the watchdog re-tuning warm from the installed distance,
// and with the RetuneCold ablation (the re-tune searches from a random
// start) — and the study reports detection latency (watchdog windows from
// arming to firing), re-tune search cost (distance probes), and where the
// re-tuned distance lands. The recovery verdict re-measures the re-tuned
// distance with a noise-free static session whose trailing window falls in
// the drifted phase, head-to-head against the no-watchdog arm's identical
// trailing window.
package experiments

import (
	"fmt"
	"io"

	"rpg2/internal/fleet"
	"rpg2/internal/rpg2"
	"rpg2/internal/workloads"
)

// driftRunSeconds is the study's fixed simulated run budget: long enough
// that every drifting workload passes its phase switch, the watchdog
// detects, and the re-tune completes with run to spare. It is independent
// of Options.RunSeconds so the phase geometry never truncates at smoke
// scale.
const driftRunSeconds = 40

// driftRecoveryFloor is the verdict threshold: a fired cell counts as
// recovered when the re-tuned distance's static end-of-run rate exceeds
// the no-watchdog arm's drifted rate by at least this factor.
const driftRecoveryFloor = 1.1

// driftParityFloor is the no-harm threshold: a watchdog firing on a cell
// whose installed distance already covers the new phase (the detector sees
// the phase's intrinsic rate drop, not a tunable one) must re-tune to at
// least this fraction of the stale distance's rate — the re-tune lane may
// confirm a distance, never lose one.
const driftParityFloor = 0.95

// DriftArm is one watchdog configuration's outcome on one cell.
type DriftArm struct {
	// Outcome is the controller outcome of the initial tune ("tuned", …).
	Outcome string
	// Fired reports whether the watchdog detected drift and the re-tune
	// lane granted a re-tune.
	Fired bool
	// DetectWindows is the journaled detection latency: watchdog sample
	// windows from arming (activation) to firing. The phase switch falls
	// inside this span, so it upper-bounds switch-to-detection latency.
	DetectWindows int
	// RetuneProbes is the re-tune search's distance-edit count; with
	// detection it forms the cell's recovery latency in windows.
	RetuneProbes int
	// RetuneDistance and RetuneRate are the re-tuned landing point (zero
	// if the re-tune rolled back or never fired).
	RetuneDistance int
	RetuneRate     float64
	// StaticRate is the noise-free end-of-run rate of RetuneDistance.
	StaticRate float64
}

// RecoveryWindows is the arm's total recovery latency in measurement
// windows: detection plus the re-tune search.
func (a DriftArm) RecoveryWindows() int { return a.DetectWindows + a.RetuneProbes }

// DriftRow is one (drifting bench, seed) cell of the study.
type DriftRow struct {
	Bench string
	Seed  int64
	// TunedDistance is the initial activation distance (the distance that
	// goes stale at the phase switch); from the no-watchdog arm.
	TunedDistance int
	// BaselineRate is the no-watchdog arm's end-of-run trailing-window
	// rate — the drifted rate a fleet without the watchdog is left with.
	BaselineRate float64
	// Warm re-tunes seeded from the installed distance; Cold is the
	// RetuneCold ablation.
	Warm, Cold DriftArm
	// Comparable marks cells where the warm watchdog fired and the
	// baseline measured a drifted rate to compare against.
	Comparable bool
	// Recovery is Warm.StaticRate / BaselineRate on comparable cells.
	Recovery float64
}

// DriftResult is the full study.
type DriftResult struct {
	Machine string
	Rows    []DriftRow
}

// TableDrift runs the drift study over the drifting benchmarks. Every
// session is cold and seeded, so each arm is deterministic; the three arms
// run on their own fleets because the watchdog knobs are fleet-level.
func (r *Runner) TableDrift(benches []string) (*DriftResult, error) {
	if len(benches) == 0 {
		benches = workloads.DriftNames()
	}
	m := r.opts.Machines[0]
	trials := r.opts.Trials
	if trials < 3 {
		trials = 3
	}

	type cell struct {
		bench string
		seed  int64
	}
	var cells []cell
	for _, b := range benches {
		for k := 0; k < trials; k++ {
			cells = append(cells, cell{b, int64(k + 1)})
		}
	}
	spec := func(c cell, tail bool) fleet.SessionSpec {
		s := fleet.SessionSpec{
			Bench: c.bench, Machine: r.mptr(m), Seed: c.seed,
			Cold: true, RunSeconds: driftRunSeconds,
		}
		if tail {
			s.TailSeconds = 1.0
		}
		return s
	}

	// The no-watchdog baseline measures the drifted end-of-run rate with
	// a trailing window; the watchdog arms run plain (an armed watchdog
	// replaces the run-out, so a tail spec would disarm it) and are read
	// back through their journals.
	arms := []struct {
		cfg  fleet.Config
		tail bool
	}{
		{fleet.Config{Machine: m, Workers: r.opts.Parallelism}, true},
		{fleet.Config{Machine: m, Workers: r.opts.Parallelism, WatchdogInterval: 1}, false},
		{fleet.Config{Machine: m, Workers: r.opts.Parallelism, WatchdogInterval: 1, RetuneCold: true}, false},
	}
	out := &DriftResult{Machine: m.Name, Rows: make([]DriftRow, len(cells))}
	for i, c := range cells {
		out.Rows[i] = DriftRow{Bench: c.bench, Seed: c.seed}
	}
	for ai, arm := range arms {
		f := fleet.New(arm.cfg)
		specs := make([]fleet.SessionSpec, len(cells))
		for i, c := range cells {
			specs[i] = spec(c, arm.tail)
		}
		sessions, err := f.Run(specs)
		if err != nil {
			f.Close()
			return nil, err
		}
		for i, s := range sessions {
			row := &out.Rows[i]
			if ai == 0 {
				if s.State() == fleet.Failed {
					continue
				}
				if rep := s.Report(); rep != nil && rep.Outcome == rpg2.Tuned {
					row.TunedDistance = rep.FinalDistance
				}
				if meas := s.Measurement(); meas != nil {
					row.BaselineRate = meas.Rate
				}
				continue
			}
			a := driftArmOf(s, f.Journal())
			if ai == 1 {
				row.Warm = a
			} else {
				row.Cold = a
			}
		}
		f.Close()
	}

	// The recovery verdict: re-measure each fired arm's re-tuned distance
	// with a static session over the same budget, so its trailing window
	// samples the drifted phase exactly as the baseline arm's did.
	refs := make([]cellRef, 0, len(benches))
	for _, b := range benches {
		refs = append(refs, cellRef{b, "", m})
	}
	r.prefetchCandidates(refs)
	var statSpecs []fleet.SessionSpec
	var statIdx []int // 2*row for warm, 2*row+1 for cold
	for i := range out.Rows {
		row := &out.Rows[i]
		cand, err := r.candidates(row.Bench, "", m)
		if err != nil {
			continue
		}
		for j, a := range []DriftArm{row.Warm, row.Cold} {
			if !a.Fired || a.RetuneDistance <= 0 {
				continue
			}
			statSpecs = append(statSpecs, fleet.SessionSpec{
				Kind: fleet.StaticJob, Bench: row.Bench, Machine: r.mptr(m),
				Distance: a.RetuneDistance, Candidates: cand,
				Seed: row.Seed, RunSeconds: driftRunSeconds, TailSeconds: 1.0,
			})
			statIdx = append(statIdx, 2*i+j)
		}
	}
	statics, err := r.runBatch(statSpecs)
	if err != nil {
		return nil, err
	}
	for j, s := range statics {
		row := &out.Rows[statIdx[j]/2]
		meas := s.Measurement()
		if meas == nil {
			continue
		}
		if statIdx[j]%2 == 0 {
			row.Warm.StaticRate = meas.Rate
		} else {
			row.Cold.StaticRate = meas.Rate
		}
	}
	for i := range out.Rows {
		row := &out.Rows[i]
		if row.Warm.Fired && row.BaselineRate > 0 && row.Warm.StaticRate > 0 {
			row.Comparable = true
			row.Recovery = row.Warm.StaticRate / row.BaselineRate
		}
	}
	return out, nil
}

// driftArmOf reads one watchdog session's drift lane out of its journal.
func driftArmOf(s *fleet.Session, j *fleet.Journal) DriftArm {
	a := DriftArm{Outcome: "failed"}
	if s.State() == fleet.Failed {
		return a
	}
	if rep := s.Report(); rep != nil {
		a.Outcome = rep.Outcome.String()
	}
	for _, e := range j.SessionEvents(s.ID) {
		switch e.Type {
		case "drift-detected":
			a.Fired = true
			a.DetectWindows = e.Windows
		case "retune-complete":
			a.RetuneDistance = e.Distance
			a.RetuneRate = e.Rate
		}
	}
	if a.Fired && !s.Retuning() && a.RetuneDistance > 0 {
		// The session's final report is the re-tune's report: its edit
		// count is the re-tune search cost.
		if rep := s.Report(); rep != nil {
			a.RetuneProbes = rep.Costs.PDEdits
		}
	}
	return a
}

// driftControl classifies the controls: is-drift's phase shift is benign
// (the rate does not degrade, so the watchdog must stay quiet) and
// chase-drift never activates (no tuned distance, so the watchdog never
// arms). Firing on either is a verdict failure.
func driftControl(bench string) bool {
	return bench == "is-drift" || bench == "chase-drift"
}

// Render prints the study and the summary line the CI smoke greps for.
// "drift OK" means: the watchdog fired on at least one drifting cell and
// stayed quiet on every control cell; at least one comparable cell's
// re-tuned distance recovered the end-of-run rate past driftRecoveryFloor
// times the no-watchdog drifted rate (the hard-drift payoff); and no
// comparable cell fell below driftParityFloor (a re-tune that merely
// confirms a still-adequate distance is fine, one that loses rate is not).
// Recovery latency is the fired arms' detection windows plus re-tune
// probes; the no-watchdog baseline's is unbounded — it rides the stale
// distance to the end of the run.
func (t *DriftResult) Render(w io.Writer) {
	fmt.Fprintf(w, "\nDrift study — phase-drift watchdog and the re-tune lane (%s, %gs runs)\n", t.Machine, float64(driftRunSeconds))
	fmt.Fprintf(w, "  baseline = no watchdog: the activation-time distance rides the phase\n")
	fmt.Fprintf(w, "  switch to the end of the run. warm/cold re-tune on detection, seeded\n")
	fmt.Fprintf(w, "  from the installed distance vs a random restart. Each fired arm shows\n")
	fmt.Fprintf(w, "  detection windows + re-tune probes = recovery latency, its re-tuned\n")
	fmt.Fprintf(w, "  distance, and that distance's end-of-run rate over the baseline's.\n")
	fmt.Fprintf(w, "  Controls: is-drift's shift is benign (must stay quiet), chase-drift\n")
	fmt.Fprintf(w, "  never activates (must never arm).\n\n")
	fmt.Fprintf(w, "  %-12s %4s %5s %9s %22s %22s %9s\n",
		"bench", "seed", "d0", "drifted", "warm", "cold", "recovery")
	arm := func(a DriftArm) string {
		if !a.Fired {
			return a.Outcome + " (quiet)"
		}
		return fmt.Sprintf("%dw+%dp d%d", a.DetectWindows, a.RetuneProbes, a.RetuneDistance)
	}
	fired, recovered, parity, comparable := 0, 0, 0, 0
	controlFired := 0
	warmLat, coldLat, bothFired := 0, 0, 0
	for _, row := range t.Rows {
		rec := "-"
		if row.Comparable {
			comparable++
			rec = fmt.Sprintf("%.2fx", row.Recovery)
			switch {
			case row.Recovery >= driftRecoveryFloor:
				recovered++
			case row.Recovery >= driftParityFloor:
				parity++
			default:
				rec += "!"
			}
		}
		if row.Warm.Fired || row.Cold.Fired {
			if driftControl(row.Bench) {
				controlFired++
			} else {
				fired++
			}
		}
		if row.Warm.Fired && row.Cold.Fired {
			bothFired++
			warmLat += row.Warm.RecoveryWindows()
			coldLat += row.Cold.RecoveryWindows()
		}
		fmt.Fprintf(w, "  %-12s %4d %5d %9.4f %22s %22s %9s\n",
			row.Bench, row.Seed, row.TunedDistance, row.BaselineRate,
			arm(row.Warm), arm(row.Cold), rec)
	}
	status := "drift OK"
	if fired == 0 || recovered == 0 || recovered+parity < comparable || controlFired > 0 {
		status = "drift FAIL"
	}
	fmt.Fprintf(w, "\n  summary: watchdog fired on %d drifting cells and %d control cells; %d/%d comparable cells recovered >= %.1fx the drifted rate (%d at parity)",
		fired, controlFired, recovered, comparable, driftRecoveryFloor, parity)
	if bothFired > 0 {
		mw := float64(warmLat) / float64(bothFired)
		mc := float64(coldLat) / float64(bothFired)
		fmt.Fprintf(w, "; mean recovery latency warm %.1f / cold %.1f windows vs baseline never",
			mw, mc)
	}
	fmt.Fprintf(w, " — %s\n", status)
}
