// The transplant study: the ROADMAP's cross-machine profile-portability
// item, validated the way the paper validates Figure 3's transplant claim —
// by running the same workload natively tuned, cold, and seeded with the
// *other* machine's profile, on both machines. The translated arm reuses
// the sibling profile's candidate sites and scales its distance by the
// machines' effective memory-latency ratio (fleet.TranslateDistance); the
// study reports what that hypothesis costs (measurement windows and search
// probes) and where it lands (final distance and miss-site rate) relative
// to a native tune.

package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"rpg2/internal/fleet"
	"rpg2/internal/machine"
	"rpg2/internal/rpg2"
)

// transplantTrials is the minimum number of per-cell trials: a cold
// search's cost depends heavily on the luck of its random starting
// distance, so each arm is averaged over several seeds before the costs
// are compared. The floor also sets the quality of the native reference
// (and therefore of the transplanted seed): the best of five random-start
// tunes reliably finds the sharp optimum that a single noisy search can
// miss.
const transplantTrials = 5

// TransplantArm aggregates one seeding tier's trials on one cell.
type TransplantArm struct {
	// Outcome is the first trial's controller outcome ("tuned", …) or
	// "failed"; Trials counts the trials that tuned.
	Outcome string
	Trials  int
	// Windows is the mean number of measurement windows a tuned trial
	// consumed (profiling + baseline + every distance probe) — the
	// session's total measured search cost. Probes is the distance-edit
	// subset of it; Rate is the mean best miss-site retirement rate.
	Windows float64
	Probes  float64
	Rate    float64
	// Distance is the arm's estimate of the optimal prefetch distance:
	// the argmax of the tuning metric pooled per distance across every
	// probe the arm's trials made (see armOf).
	Distance int
}

// TransplantRow is one (benchmark, input, machine) cell of the study.
type TransplantRow struct {
	Bench, Input string
	// Machine is the target the cell ran on; Source is the sibling machine
	// the translated arm's profile came from.
	Machine, Source string
	// SeedDistance is the latency-scaled distance the translated arm's
	// search started from.
	SeedDistance int
	// Cold ran full random-start searches; Warm was seeded from the
	// native store entry; Translated from the sibling machine's entry.
	// Each arm's Distance pools its trials' probes per distance and takes
	// the argmax — the arm's best estimate of the optimum under
	// measurement noise.
	Cold, Warm, Translated TransplantArm
	// Comparable marks cells where a sibling seed existed and both the
	// cold and translated arms tuned at least once.
	Comparable bool
	// NativeStaticRate and TranslatedStaticRate are noise-free static
	// re-measurements (fleet.StaticJob) of the two final distances on the
	// target machine — the true surface values the guard compares, free
	// of search-selection noise.
	NativeStaticRate, TranslatedStaticRate float64
	// SavesWindows: the translated arm's mean measurement-window count
	// undercuts the cold arm's (a translated session profiles for the
	// short warm window, so this is the tier's headline saving).
	// SavesProbes: its mean distance-probe count alone undercuts the
	// cold arm's. Judged: the native distance's static re-measurement
	// produced a signal to compare against (some tiny inputs retire no
	// miss-site work, leaving nothing to judge). WithinGuard: the
	// translated distance's true (static) rate is within the warm-accept
	// noise guard (1 - 2·IPCNoise) of the natively tuned distance's on
	// the same machine.
	SavesWindows, SavesProbes, Judged, WithinGuard bool
}

// TransplantResult is the full study across benchmarks and machines.
type TransplantResult struct {
	Machines []string
	Rows     []TransplantRow
}

// TableTransplant runs the cross-machine transplant study: every cell is
// tuned natively (the cold arm, averaged over several random-start seeds),
// re-run warm from its own store entry, and re-run on a fresh
// Translate-enabled fleet whose frozen store holds only the *sibling*
// machine's native entries, so the lookup misses and the translation tier
// seeds the search. Phases are drained batches of sessions whose store
// interactions are per-cell-independent (or frozen), so the rendered study
// is byte-identical regardless of Parallelism.
func (r *Runner) TableTransplant(benches []string) (*TransplantResult, error) {
	if len(benches) == 0 {
		benches = []string{"pr", "sssp", "bfs", "bc", "is", "randacc", "cg"}
	}
	ms := r.opts.Machines
	if len(ms) < 2 {
		ms = machine.Both()
	}
	trials := r.opts.Trials
	if trials < transplantTrials {
		trials = transplantTrials
	}

	type cell struct {
		bench, input string
		mi           int
	}
	var cells []cell
	for _, b := range benches {
		inputs := r.inputsFor(b)
		if len(inputs) > 4 {
			inputs = inputs[:4]
		}
		for _, in := range inputs {
			for mi := range ms {
				cells = append(cells, cell{b, in, mi})
			}
		}
	}
	seedOf := func(i, trial, arm int) int64 {
		return r.opts.Seed + int64(13*i) + int64(100003*trial) + int64(arm)
	}

	// Phase 1 runs the cold arm and commits the native entries on one
	// Translate-off fleet: each cell's first trial is a plain non-cold
	// session whose store key no other session touches — it misses, runs
	// the full search, and commits — and the remaining trials bypass the
	// store by spec (Cold), so the whole batch is scheduling-independent.
	natives := fleet.New(fleet.Config{
		Machine: ms[0], Workers: r.opts.Parallelism, RunSeconds: r.opts.RunSeconds,
	})
	defer natives.Close()
	var coldSpecs []fleet.SessionSpec
	for i, c := range cells {
		for k := 0; k < trials; k++ {
			coldSpecs = append(coldSpecs, fleet.SessionSpec{
				Bench: c.bench, Input: c.input, Machine: r.mptr(ms[c.mi]),
				Seed: seedOf(i, k, 1), Cold: k > 0, RunSeconds: -1,
			})
		}
	}
	coldArm, err := natives.Run(coldSpecs)
	if err != nil {
		return nil, err
	}
	// The sibling entries the translated arm seeds from are the *native*
	// tunes: export before the warm arm refreshes or invalidates them.
	// A single random-start search can stop at a noise-induced local
	// optimum far from the real one, and a transplant of a bad tune is
	// born bad — so each exported entry's distance is upgraded to the
	// cold arm's pooled estimate, the study's best guess at the natively
	// tuned distance (a long-lived fleet converges its entries the same
	// way, recommitting on every later tune).
	exported := natives.Store().Export()
	native := make(map[fleet.Key]TransplantArm, len(cells))
	for i, c := range cells {
		k := fleet.Key{Bench: c.bench, Input: c.input, Machine: ms[c.mi].Name}
		native[k] = armOf(coldArm[i*trials : (i+1)*trials])
	}
	for j, ke := range exported {
		if a, ok := native[ke.Key]; ok && a.Trials > 0 {
			exported[j].Entry.Distance = a.Distance
			exported[j].Entry.TunedRate = a.Rate
		}
	}

	// Phase 2: the warm arm, one store hit per cell on its own entry.
	warmSpecs := make([]fleet.SessionSpec, len(cells))
	for i, c := range cells {
		warmSpecs[i] = fleet.SessionSpec{
			Bench: c.bench, Input: c.input, Machine: r.mptr(ms[c.mi]),
			Seed: seedOf(i, 0, 2), RunSeconds: -1,
		}
	}
	warmArm, err := natives.Run(warmSpecs)
	if err != nil {
		return nil, err
	}

	// Phase 3: per target machine, a Translate-enabled fleet whose store
	// holds only the sibling machines' entries — every lookup misses and
	// falls to the translation tier. The store is frozen so concurrent
	// trials neither consume reuse budget nor observe each other's
	// commits: every trial sees the identical sibling entry.
	type transInfo struct {
		sessions []*fleet.Session
		source   string
		seedD    int
	}
	trans := make([]transInfo, len(cells))
	for mi, m := range ms {
		st := fleet.NewStore(fleet.StoreConfig{})
		var sibs []fleet.KeyedEntry
		for _, ke := range exported {
			if ke.Key.Machine != m.Name {
				sibs = append(sibs, ke)
			}
		}
		st.Import(sibs)
		st.Freeze()
		tf := fleet.New(fleet.Config{
			Machine: m, Workers: r.opts.Parallelism, RunSeconds: r.opts.RunSeconds,
			Store: st, Translate: true,
		})
		var tspecs []fleet.SessionSpec
		var idx []int
		for i, c := range cells {
			if c.mi != mi {
				continue
			}
			for k := 0; k < trials; k++ {
				tspecs = append(tspecs, fleet.SessionSpec{
					Bench: c.bench, Input: c.input,
					Seed: seedOf(i, k, 3), RunSeconds: -1,
				})
				idx = append(idx, i)
			}
		}
		got, err := tf.Run(tspecs)
		if err != nil {
			tf.Close()
			return nil, err
		}
		for j, s := range got {
			ti := &trans[idx[j]]
			ti.sessions = append(ti.sessions, s)
			if ti.source == "" {
				for _, e := range tf.Journal().SessionEvents(s.ID) {
					if e.Type == "store-translated" {
						ti.source, ti.seedD = e.Source, e.Distance
					}
				}
			}
		}
		tf.Close()
	}

	out := &TransplantResult{Rows: make([]TransplantRow, len(cells))}
	for _, m := range ms {
		out.Machines = append(out.Machines, m.Name)
	}
	entries := make(map[fleet.Key]fleet.Entry, len(exported))
	for _, ke := range exported {
		entries[ke.Key] = ke.Entry
	}
	for i, c := range cells {
		m := ms[c.mi]
		row := TransplantRow{
			Bench: c.bench, Input: c.input, Machine: m.Name,
			Source: trans[i].source, SeedDistance: trans[i].seedD,
			Cold:       native[fleet.Key{Bench: c.bench, Input: c.input, Machine: m.Name}],
			Warm:       armOf(warmArm[i : i+1]),
			Translated: armOf(trans[i].sessions),
		}
		// A cell is only comparable when the translated arm actually got a
		// sibling seed (a failed native tune leaves none) and both arms
		// searched to a tune.
		if row.Source != "" && row.Cold.Trials > 0 && row.Translated.Trials > 0 {
			row.Comparable = true
			row.SavesWindows = row.Translated.Windows < row.Cold.Windows
			row.SavesProbes = row.Translated.Probes < row.Cold.Probes
		}
		out.Rows[i] = row
	}

	// Phase 4: the guard verdict. The arms' best rates are maxima over
	// noisy probes, so the two final distances are re-measured
	// head-to-head by noise-free static sessions on the target machine;
	// the translated distance passes when its true rate is within the
	// warm-accept guard of the natively tuned distance's.
	var statSpecs []fleet.SessionSpec
	var statIdx []int
	for i := range out.Rows {
		row := &out.Rows[i]
		if !row.Comparable {
			continue
		}
		e, ok := entries[fleet.Key{Bench: row.Bench, Input: row.Input, Machine: row.Machine}]
		if !ok {
			continue
		}
		for j, d := range []int{row.Cold.Distance, row.Translated.Distance} {
			statSpecs = append(statSpecs, fleet.SessionSpec{
				Kind: fleet.StaticJob, Bench: row.Bench, Input: row.Input,
				Machine: r.mptr(ms[cells[i].mi]), Distance: d,
				Candidates: e.Candidates, Seed: seedOf(i, j, 4), RunSeconds: 2,
			})
			statIdx = append(statIdx, 2*i+j)
		}
	}
	statics, err := natives.Run(statSpecs)
	if err != nil {
		return nil, err
	}
	for j, s := range statics {
		row := &out.Rows[statIdx[j]/2]
		if meas := s.Measurement(); meas != nil {
			if statIdx[j]%2 == 0 {
				row.NativeStaticRate = meas.Rate
			} else {
				row.TranslatedStaticRate = meas.Rate
			}
		}
	}
	for i := range out.Rows {
		row := &out.Rows[i]
		if row.Comparable && row.NativeStaticRate > 0 {
			row.Judged = true
			guard := 1 - 2*ms[cells[i].mi].IPCNoise
			row.WithinGuard = row.TranslatedStaticRate >= guard*row.NativeStaticRate
		}
	}
	return out, nil
}

// armOf aggregates one arm's trial sessions. Distance is the argmax of
// the tuning metric pooled across every distance the arm's trials
// explored: picking the single best-rate trial would ride the noise
// maximum (a lucky +2σ window crowns a spurious distance), while pooled
// per-distance means average several windows and make the arm's estimate
// of its optimum stable. Distances probed only once are excluded when
// any distance was probed more than once — a one-window maximum is
// exactly the noise artifact pooling exists to damp.
func armOf(sessions []*fleet.Session) TransplantArm {
	a := TransplantArm{Outcome: "failed"}
	windows, probes, rate := 0, 0, 0.0
	sum := make(map[int]float64)
	n := make(map[int]int)
	for i, s := range sessions {
		if s == nil || s.State() == fleet.Failed || s.Report() == nil {
			continue
		}
		rep := s.Report()
		if i == 0 {
			a.Outcome = rep.Outcome.String()
		}
		if rep.Outcome != rpg2.Tuned {
			continue
		}
		a.Trials++
		for d, v := range rep.Explored {
			sum[d] += v
			n[d]++
		}
		for _, pt := range rep.Timeline {
			if pt.Phase == "profile" || pt.Phase == "tune" {
				windows++
			}
		}
		probes += rep.Costs.PDEdits
		rate += rep.BestRate
	}
	if a.Trials > 0 {
		ds := make([]int, 0, len(sum))
		corroborated := false
		for d := range sum {
			ds = append(ds, d)
			corroborated = corroborated || n[d] > 1
		}
		sort.Ints(ds)
		best := 0.0
		for _, d := range ds {
			if corroborated && n[d] < 2 {
				continue
			}
			if m := sum[d] / float64(n[d]); a.Distance == 0 || m > best {
				a.Distance, best = d, m
			}
		}
		a.Windows = float64(windows) / float64(a.Trials)
		a.Probes = float64(probes) / float64(a.Trials)
		a.Rate = rate / float64(a.Trials)
	}
	return a
}

// Render prints the study: per-cell detail, per-benchmark cost means, and
// a summary line the CI smoke greps for. "transplant OK" means that on
// every benchmark the translated arm tuned at a lower total measurement
// cost (windows: short warm profile + its probes) than a cold session's
// full profile + random-start search, converging within the warm-accept
// noise guard of the natively tuned rate. Distance-probe counts are
// reported alongside: a translated seed must re-earn its distance through
// the full cold-span gradient (no fast-path accept for a cross-machine
// hypothesis), so probe savings appear where the metric surface is
// distance-sensitive (the AJ kernels) and wash out where it is flat or
// noise-jagged (the graph benchmarks' small inputs).
func (t *TransplantResult) Render(w io.Writer) {
	fmt.Fprintf(w, "\nTransplant study — cross-machine profile translation\n")
	fmt.Fprintf(w, "  cold = random-start search, full profile; warm = native store seed\n")
	fmt.Fprintf(w, "  (±2 fast path); translated = sibling machine's candidates, distance\n")
	fmt.Fprintf(w, "  scaled by the memory-latency ratio, searched with the cold ±5 span.\n")
	fmt.Fprintf(w, "  Each arm reports mean measurement windows (w: profiling + baseline +\n")
	fmt.Fprintf(w, "  probes), mean distance probes (p), and its best trial's distance.\n")
	fmt.Fprintf(w, "  \"true\" is the translated distance's noise-free static rate relative\n")
	fmt.Fprintf(w, "  to the native distance's (\"!\" = outside the warm-accept guard).\n\n")
	fmt.Fprintf(w, "  %-8s %-16s %-12s %-18s %16s %16s %16s %5s %6s\n",
		"bench", "input", "machine", "seed (src->d')", "cold", "warm", "transl", "Δd", "true")
	arm := func(a TransplantArm) string {
		if a.Trials == 0 {
			return a.Outcome
		}
		return fmt.Sprintf("%.1fw %.1fp d%d", a.Windows, a.Probes, a.Distance)
	}
	type agg struct {
		coldW, coldP, transW, transP float64
		cells, savesW, savesP        int
		judged, guard                int
	}
	perBench := make(map[string]*agg)
	var order []string
	for _, row := range t.Rows {
		seed := "-"
		if row.Source != "" {
			seed = fmt.Sprintf("%s->%d", row.Source, row.SeedDistance)
		}
		dd, rate := "-", "-"
		if row.Comparable {
			dd = fmt.Sprintf("%+d", row.Translated.Distance-row.Cold.Distance)
			if row.NativeStaticRate > 0 {
				rate = fmt.Sprintf("%.0f%%", 100*row.TranslatedStaticRate/row.NativeStaticRate)
				if !row.WithinGuard {
					rate += "!"
				}
			}
			a := perBench[row.Bench]
			if a == nil {
				a = &agg{}
				perBench[row.Bench] = a
				order = append(order, row.Bench)
			}
			a.cells++
			a.coldW += row.Cold.Windows
			a.coldP += row.Cold.Probes
			a.transW += row.Translated.Windows
			a.transP += row.Translated.Probes
			if row.SavesWindows {
				a.savesW++
			}
			if row.SavesProbes {
				a.savesP++
			}
			if row.Judged {
				a.judged++
			}
			if row.WithinGuard {
				a.guard++
			}
		}
		fmt.Fprintf(w, "  %-8s %-16s %-12s %-18s %16s %16s %16s %5s %6s\n",
			row.Bench, row.Input, row.Machine, seed,
			arm(row.Cold), arm(row.Warm), arm(row.Translated), dd, rate)
	}
	fmt.Fprintf(w, "\n  per-benchmark mean search cost (comparable cells)\n")
	failed := len(order) == 0
	cells, savesW, judged, guarded := 0, 0, 0, 0
	var probeSavers, probePayers []string
	for _, b := range order {
		a := perBench[b]
		cw, tw := a.coldW/float64(a.cells), a.transW/float64(a.cells)
		cp, tp := a.coldP/float64(a.cells), a.transP/float64(a.cells)
		wv := "windows saved"
		if tw >= cw {
			wv = "NO WINDOW SAVINGS"
			failed = true
		}
		if a.guard < a.judged {
			failed = true
		}
		pv := "probes saved"
		if tp < cp {
			probeSavers = append(probeSavers, b)
		} else {
			pv = "probes paid"
			probePayers = append(probePayers, b)
		}
		fmt.Fprintf(w, "    %-8s cold %5.1fw %4.1fp   translated %5.1fw %4.1fp   %s (%d/%d cells), %s\n",
			b, cw, cp, tw, tp, wv, a.savesW, a.cells, pv)
		cells += a.cells
		savesW += a.savesW
		judged += a.judged
		guarded += a.guard
	}
	status := "transplant OK"
	if failed {
		status = "transplant FAIL"
	}
	fmt.Fprintf(w, "\n  summary: translated tuned with fewer measurement windows than cold in %d/%d comparable cells, rate within noise guard of the native tune in %d/%d judged",
		savesW, cells, guarded, judged)
	if len(probeSavers) > 0 {
		fmt.Fprintf(w, "; probe savings on %s", strings.Join(probeSavers, ", "))
	}
	if len(probePayers) > 0 {
		fmt.Fprintf(w, " (hypothesis re-validation costs probes on %s)", strings.Join(probePayers, ", "))
	}
	fmt.Fprintf(w, " — %s\n", status)
}
