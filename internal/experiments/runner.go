// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulated machines. There is exactly one execution
// layer: each runner owns an internal/fleet instance and submits every
// measured cell — baselines, RPG² trials, static schemes, offline sweeps,
// PEBS profiles, APT-GET derivations — as a fleet session. The fleet gives
// every cell the same admission queue, worker pool, lifecycle journal and
// metrics, and its workload build cache ensures each (benchmark, input)
// graph is constructed once per process no matter how many cells touch it.
//
// Speedups are measured as work throughput: retirements of each workload's
// marked miss-site instruction (and of its image in rewritten code) per
// fixed span of simulated time. For a fixed amount of work this equals
// inverse runtime, and unlike IPC it is unbiased by the prefetch kernel's
// extra instructions.
//
// Results are deterministic: measured RPG² sessions run cold (bypassing
// the profile store) unless Options.WarmStart is set, in which case the
// store is pre-warmed once per cell and frozen for the measured batch —
// either way, the same seed and options render byte-identical tables
// regardless of worker count or build-cache temperature.
package experiments

import (
	"math/rand"
	"runtime"
	"sync"

	"rpg2/internal/baselines"
	"rpg2/internal/fleet"
	"rpg2/internal/graphs"
	"rpg2/internal/machine"
	"rpg2/internal/rpg2"
)

// Options configures the harness scale.
type Options struct {
	// Machines to evaluate on (default: Cascade Lake and Haswell).
	Machines []machine.Machine
	// CRONOInputs are the graph inputs for pr/bfs/sssp.
	CRONOInputs []graphs.Input
	// SynthInputs are the APT-GET-style inputs (bc runs only on these).
	SynthInputs []graphs.Input
	// RunSeconds is the simulated duration of one end-to-end run
	// (the paper extends benchmarks to run at least 60 s).
	RunSeconds float64
	// Trials is the number of RPG² runs per (benchmark, input, machine),
	// with different seeds (the paper collects 5 successful runs).
	Trials int
	// Parallelism bounds concurrent fleet sessions (default: GOMAXPROCS).
	Parallelism int
	// StoreShards shards the fleet's profile store by (bench, input) hash
	// across this many locks (0/1 = the single-shard store). Figure 7 is
	// byte-identical at any shard count — the store's policy decisions
	// depend on keys, not layout.
	StoreShards int
	// StoreAddr, when set, points the fleet at a shared rpg2-stored
	// daemon at this base URL instead of an in-process store. Results
	// then depend on what the daemon already holds: only byte-identical
	// to the in-process runs against a fresh, private daemon.
	StoreAddr string
	// Sweep configures offline distance sweeps.
	Sweep baselines.SweepConfig
	// Seed is the root seed for scheme randomness.
	Seed int64
	// WarmStart lets Figure 7's measured RPG² sessions warm-start from
	// the fleet's profile store: each cell is pre-warmed once, then the
	// store is frozen for the measured batch so results stay independent
	// of scheduling order. Off by default: cold sessions depend only on
	// their spec.
	WarmStart bool
}

// DefaultOptions returns the full-scale configuration.
func DefaultOptions() Options {
	return Options{
		Machines:    machine.Both(),
		CRONOInputs: graphs.Catalogue(),
		SynthInputs: graphs.SyntheticCatalogue(),
		RunSeconds:  60,
		Trials:      3,
		Sweep:       baselines.DefaultSweep(),
		Seed:        42,
	}
}

// QuickOptions returns a reduced configuration for smoke runs and -short
// tests: fewer inputs, shorter runs, a coarser sweep.
func QuickOptions() Options {
	o := DefaultOptions()
	o.CRONOInputs = o.CRONOInputs[:6]
	o.SynthInputs = o.SynthInputs[:2]
	o.RunSeconds = 20
	o.Trials = 1
	ds := make([]int, 0, 25)
	for d := 1; d <= 100; d += 4 {
		ds = append(ds, d)
	}
	o.Sweep.Distances = ds
	return o
}

// SmokeOptions shrinks everything so the full pipeline runs in seconds:
// two CRONO inputs, two synthetic inputs, one trial, a six-point sweep.
// This is what the CI smoke job and the package's own tests run.
func SmokeOptions() Options {
	o := QuickOptions()
	o.CRONOInputs = pickInputs("soc-alpha", "as20000102-like")
	o.SynthInputs = pickInputs("synth-small", "synth-u1")
	o.RunSeconds = 15
	o.Trials = 1
	o.Sweep = baselines.SweepConfig{
		Distances:     []int{1, 4, 8, 16, 32, 64},
		WarmSeconds:   0.1,
		WindowSeconds: 0.25,
		Seed:          1,
	}
	return o
}

func pickInputs(names ...string) []graphs.Input {
	out := make([]graphs.Input, len(names))
	for i, n := range names {
		in, ok := graphs.FindInput(n)
		if !ok {
			panic("experiments: unknown input " + n)
		}
		out[i] = in
	}
	return out
}

// Runner executes experiments by submitting every cell to its fleet,
// memoizing the shared intermediate products (offline sweeps, profiled
// candidates, APT-GET distances) across figures.
type Runner struct {
	opts  Options
	fleet *fleet.Fleet

	mu      sync.Mutex
	sweeps  map[string]*baselines.Sweep
	swErr   map[string]error
	cands   map[string][]int
	candErr map[string]error
	aptget  map[string]int
	aptErr  map[string]error
}

// NewRunner builds a runner and starts its fleet; call Close when done.
func NewRunner(opts Options) *Runner {
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if opts.Trials <= 0 {
		opts.Trials = 1
	}
	fm := machine.Both()[0]
	if len(opts.Machines) > 0 {
		fm = opts.Machines[0]
	}
	f := fleet.New(fleet.Config{
		Machine:     fm,
		Workers:     opts.Parallelism,
		RunSeconds:  opts.RunSeconds,
		StoreShards: opts.StoreShards,
		StoreAddr:   opts.StoreAddr,
	})
	return &Runner{
		opts:    opts,
		fleet:   f,
		sweeps:  make(map[string]*baselines.Sweep),
		swErr:   make(map[string]error),
		cands:   make(map[string][]int),
		candErr: make(map[string]error),
		aptget:  make(map[string]int),
		aptErr:  make(map[string]error),
	}
}

// Options returns the runner's configuration.
func (r *Runner) Options() Options { return r.opts }

// Fleet exposes the runner's execution layer.
func (r *Runner) Fleet() *fleet.Fleet { return r.fleet }

// Journal returns the fleet's event journal: every cell of every figure
// appears here as a session lifecycle.
func (r *Runner) Journal() *fleet.Journal { return r.fleet.Journal() }

// Snapshot freezes the fleet's metrics (job kinds, store and build-cache
// counters, latencies).
func (r *Runner) Snapshot() fleet.Snapshot { return r.fleet.Snapshot() }

// Close stops the fleet's workers. The runner is not usable afterwards.
func (r *Runner) Close() { r.fleet.Close() }

// pairKey identifies a (benchmark, input, machine) combination.
func pairKey(bench, input, mach string) string { return bench + "|" + input + "|" + mach }

// mptr copies a machine for a per-session override.
func (r *Runner) mptr(m machine.Machine) *machine.Machine { mp := m; return &mp }

// runBatch submits a batch of specs and waits for all of them.
func (r *Runner) runBatch(specs []fleet.SessionSpec) ([]*fleet.Session, error) {
	return r.fleet.Run(specs)
}

// inputsFor returns the input names a benchmark runs on.
func (r *Runner) inputsFor(bench string) []string {
	switch bench {
	case "pr", "bfs", "sssp":
		names := make([]string, len(r.opts.CRONOInputs))
		for i, in := range r.opts.CRONOInputs {
			names[i] = in.Name
		}
		return names
	case "bc":
		names := make([]string, len(r.opts.SynthInputs))
		for i, in := range r.opts.SynthInputs {
			names[i] = in.Name
		}
		return names
	default: // AJ benchmarks: a single fixed input
		return []string{""}
	}
}

// cellRef names one (benchmark, input, machine) combination.
type cellRef struct {
	bench, input string
	m            machine.Machine
}

// prefetchSweeps submits one SweepJob per not-yet-memoized cell and waits,
// so later sweep() getters are pure memo reads.
func (r *Runner) prefetchSweeps(cells []cellRef) {
	var specs []fleet.SessionSpec
	var keys []string
	seen := make(map[string]bool)
	r.mu.Lock()
	for _, c := range cells {
		key := pairKey(c.bench, c.input, c.m.Name)
		if seen[key] {
			continue
		}
		if _, ok := r.sweeps[key]; ok {
			continue
		}
		seen[key] = true
		cfg := r.opts.Sweep
		specs = append(specs, fleet.SessionSpec{
			Bench: c.bench, Input: c.input, Kind: fleet.SweepJob,
			Machine: r.mptr(c.m), Sweep: &cfg,
		})
		keys = append(keys, key)
	}
	r.mu.Unlock()
	if len(specs) == 0 {
		return
	}
	got, err := r.runBatch(specs)
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, key := range keys {
		if i >= len(got) {
			r.sweeps[key], r.swErr[key] = nil, err
			continue
		}
		s := got[i]
		if s.State() == fleet.Failed {
			r.sweeps[key], r.swErr[key] = nil, s.Err()
			continue
		}
		r.sweeps[key] = s.SweepResult()
	}
}

// sweep returns the memoized offline distance sweep for a combination,
// running it through the fleet on first use.
func (r *Runner) sweep(bench, input string, m machine.Machine) (*baselines.Sweep, error) {
	key := pairKey(bench, input, m.Name)
	r.mu.Lock()
	if s, ok := r.sweeps[key]; ok {
		err := r.swErr[key]
		r.mu.Unlock()
		return s, err
	}
	r.mu.Unlock()
	r.prefetchSweeps([]cellRef{{bench, input, m}})
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sweeps[key], r.swErr[key]
}

// prefetchCandidates submits one ProfileJob per not-yet-memoized cell.
func (r *Runner) prefetchCandidates(cells []cellRef) {
	var specs []fleet.SessionSpec
	var keys []string
	seen := make(map[string]bool)
	r.mu.Lock()
	for _, c := range cells {
		key := pairKey(c.bench, c.input, c.m.Name)
		if seen[key] {
			continue
		}
		if _, ok := r.cands[key]; ok {
			continue
		}
		if _, ok := r.candErr[key]; ok {
			continue
		}
		seen[key] = true
		specs = append(specs, fleet.SessionSpec{
			Bench: c.bench, Input: c.input, Kind: fleet.ProfileJob,
			Machine: r.mptr(c.m),
		})
		keys = append(keys, key)
	}
	r.mu.Unlock()
	if len(specs) == 0 {
		return
	}
	got, err := r.runBatch(specs)
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, key := range keys {
		if i >= len(got) {
			r.candErr[key] = err
			continue
		}
		s := got[i]
		if s.State() == fleet.Failed {
			r.candErr[key] = s.Err()
			continue
		}
		r.cands[key] = s.Candidates()
	}
}

// candidates returns the memoized profiled candidate PCs for a combination.
func (r *Runner) candidates(bench, input string, m machine.Machine) ([]int, error) {
	key := pairKey(bench, input, m.Name)
	r.mu.Lock()
	if c, ok := r.cands[key]; ok {
		r.mu.Unlock()
		return c, nil
	}
	if err, ok := r.candErr[key]; ok {
		r.mu.Unlock()
		return nil, err
	}
	r.mu.Unlock()
	r.prefetchCandidates([]cellRef{{bench, input, m}})
	r.mu.Lock()
	defer r.mu.Unlock()
	if err, ok := r.candErr[key]; ok {
		return nil, err
	}
	return r.cands[key], nil
}

// prefetchAPTGET submits one APTGETJob per not-yet-memoized (bench,
// machine) pair. The scheme's distance is derived from one randomly chosen
// input and baked into the binary run on all inputs (§4.1.1); the paper
// notes APT-GET data is missing for sssp, bfs, and randacc, but this
// reproduction can generate it, so it does.
func (r *Runner) prefetchAPTGET(benches []string, machines []machine.Machine) {
	var specs []fleet.SessionSpec
	var keys []string
	seen := make(map[string]bool)
	r.mu.Lock()
	for _, m := range machines {
		for _, b := range benches {
			key := b + "|" + m.Name
			if seen[key] {
				continue
			}
			if _, ok := r.aptget[key]; ok {
				continue
			}
			if _, ok := r.aptErr[key]; ok {
				continue
			}
			seen[key] = true
			inputs := r.inputsFor(b)
			rng := rand.New(rand.NewSource(r.opts.Seed + int64(len(b))))
			in := inputs[rng.Intn(len(inputs))]
			specs = append(specs, fleet.SessionSpec{
				Bench: b, Input: in, Kind: fleet.APTGETJob,
				Machine: r.mptr(m),
			})
			keys = append(keys, key)
		}
	}
	r.mu.Unlock()
	if len(specs) == 0 {
		return
	}
	got, err := r.runBatch(specs)
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, key := range keys {
		if i >= len(got) {
			r.aptErr[key] = err
			continue
		}
		s := got[i]
		if s.State() == fleet.Failed {
			r.aptErr[key] = s.Err()
			continue
		}
		r.aptget[key] = s.Distance()
	}
}

// aptgetDistance returns the memoized APT-GET distance for a benchmark on
// a machine.
func (r *Runner) aptgetDistance(bench string, m machine.Machine) (int, error) {
	key := bench + "|" + m.Name
	r.mu.Lock()
	if d, ok := r.aptget[key]; ok {
		r.mu.Unlock()
		return d, nil
	}
	if err, ok := r.aptErr[key]; ok {
		r.mu.Unlock()
		return 0, err
	}
	r.mu.Unlock()
	r.prefetchAPTGET([]string{bench}, []machine.Machine{m})
	r.mu.Lock()
	defer r.mu.Unlock()
	if err, ok := r.aptErr[key]; ok {
		return 0, err
	}
	return r.aptget[key], nil
}

// warmStart optionally pre-warms the profile store with one non-cold
// session per distinct cell and freezes the store, so the measured batch's
// warm lookups are independent of scheduling order. The returned function
// thaws the store; it is a no-op when WarmStart is off.
func (r *Runner) warmStart(cells []cellRef) func() {
	if !r.opts.WarmStart {
		return func() {}
	}
	var specs []fleet.SessionSpec
	seen := make(map[string]bool)
	for i, c := range cells {
		key := pairKey(c.bench, c.input, c.m.Name)
		if seen[key] {
			continue
		}
		seen[key] = true
		specs = append(specs, fleet.SessionSpec{
			Bench: c.bench, Input: c.input, Machine: r.mptr(c.m),
			Seed:       r.opts.Seed + 900000 + int64(i),
			RunSeconds: -1,
		})
	}
	// A failed warm-up just leaves that key cold; the measured session
	// then misses the frozen store, which is still deterministic.
	r.runBatch(specs)
	r.fleet.Store().Freeze()
	return r.fleet.Store().Thaw
}

// runResult is one measured cell's outcome.
type runResult struct {
	// Work is the total worksite retirements over the run.
	Work uint64
	// Report is non-nil for RPG² runs.
	Report *rpg2.Report
	// TailMPKI and TailInstrPer are measured over a trailing window (for
	// Figures 11 and 12 style analyses).
	TailMPKI     float64
	TailInstrPer float64 // instructions per work item in the tail window
}

// resultFrom converts a finished measured session.
func resultFrom(s *fleet.Session) (runResult, error) {
	if s.State() == fleet.Failed {
		return runResult{Report: s.Report()}, s.Err()
	}
	rr := runResult{Report: s.Report()}
	if m := s.Measurement(); m != nil {
		rr.Work = m.Work
		rr.TailMPKI = m.MPKI
		rr.TailInstrPer = m.InstrPerWork
	}
	return rr, nil
}
