// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulated machines: one runner per artifact, all
// sharing a cache of profiles and offline distance sweeps, with parallel
// execution across independent (benchmark, input, machine) runs.
//
// Speedups are measured as work throughput: retirements of each workload's
// marked miss-site instruction (and of its image in rewritten code) per
// fixed span of simulated time. For a fixed amount of work this equals
// inverse runtime, and unlike IPC it is unbiased by the prefetch kernel's
// extra instructions.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"rpg2/internal/baselines"
	"rpg2/internal/cpu"
	"rpg2/internal/graphs"
	"rpg2/internal/machine"
	"rpg2/internal/perf"
	"rpg2/internal/proc"
	"rpg2/internal/rpg2"
	"rpg2/internal/workloads"
)

// Options configures the harness scale.
type Options struct {
	// Machines to evaluate on (default: Cascade Lake and Haswell).
	Machines []machine.Machine
	// CRONOInputs are the graph inputs for pr/bfs/sssp.
	CRONOInputs []graphs.Input
	// SynthInputs are the APT-GET-style inputs (bc runs only on these).
	SynthInputs []graphs.Input
	// RunSeconds is the simulated duration of one end-to-end run
	// (the paper extends benchmarks to run at least 60 s).
	RunSeconds float64
	// Trials is the number of RPG² runs per (benchmark, input, machine),
	// with different seeds (the paper collects 5 successful runs).
	Trials int
	// Parallelism bounds concurrent runs (default: GOMAXPROCS).
	Parallelism int
	// Sweep configures offline distance sweeps.
	Sweep baselines.SweepConfig
	// Seed is the root seed for scheme randomness.
	Seed int64
}

// DefaultOptions returns the full-scale configuration.
func DefaultOptions() Options {
	return Options{
		Machines:    machine.Both(),
		CRONOInputs: graphs.Catalogue(),
		SynthInputs: graphs.SyntheticCatalogue(),
		RunSeconds:  60,
		Trials:      3,
		Sweep:       baselines.DefaultSweep(),
		Seed:        42,
	}
}

// QuickOptions returns a reduced configuration for smoke runs and -short
// tests: fewer inputs, shorter runs, a coarser sweep.
func QuickOptions() Options {
	o := DefaultOptions()
	o.CRONOInputs = o.CRONOInputs[:6]
	o.SynthInputs = o.SynthInputs[:2]
	o.RunSeconds = 20
	o.Trials = 1
	ds := make([]int, 0, 25)
	for d := 1; d <= 100; d += 4 {
		ds = append(ds, d)
	}
	o.Sweep.Distances = ds
	return o
}

// Runner executes experiments with shared, cached intermediate products.
type Runner struct {
	opts Options

	mu     sync.Mutex
	sweeps map[string]*baselines.Sweep
	swErr  map[string]error
	cands  map[string][]int
}

// NewRunner builds a runner.
func NewRunner(opts Options) *Runner {
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if opts.Trials <= 0 {
		opts.Trials = 1
	}
	return &Runner{
		opts:   opts,
		sweeps: make(map[string]*baselines.Sweep),
		swErr:  make(map[string]error),
		cands:  make(map[string][]int),
	}
}

// Options returns the runner's configuration.
func (r *Runner) Options() Options { return r.opts }

// parDo runs fn(i) for i in [0, n) with bounded parallelism.
func (r *Runner) parDo(n int, fn func(i int)) {
	sem := make(chan struct{}, r.opts.Parallelism)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// pairKey identifies a (benchmark, input, machine) combination.
func pairKey(bench, input, mach string) string { return bench + "|" + input + "|" + mach }

// inputsFor returns the input names a benchmark runs on.
func (r *Runner) inputsFor(bench string) []string {
	switch bench {
	case "pr", "bfs", "sssp":
		names := make([]string, len(r.opts.CRONOInputs))
		for i, in := range r.opts.CRONOInputs {
			names[i] = in.Name
		}
		return names
	case "bc":
		names := make([]string, len(r.opts.SynthInputs))
		for i, in := range r.opts.SynthInputs {
			names[i] = in.Name
		}
		return names
	default: // AJ benchmarks: a single fixed input
		return []string{""}
	}
}

// sweep returns the cached offline distance sweep for a combination,
// computing it on first use.
func (r *Runner) sweep(bench, input string, m machine.Machine) (*baselines.Sweep, error) {
	key := pairKey(bench, input, m.Name)
	r.mu.Lock()
	if s, ok := r.sweeps[key]; ok {
		err := r.swErr[key]
		r.mu.Unlock()
		return s, err
	}
	r.mu.Unlock()

	s, err := baselines.RunSweep(bench, input, m, r.opts.Sweep)
	r.mu.Lock()
	r.sweeps[key] = s
	r.swErr[key] = err
	r.mu.Unlock()
	return s, err
}

// candidates returns the cached profiled candidate PCs for a combination.
func (r *Runner) candidates(bench, input string, m machine.Machine) ([]int, error) {
	key := pairKey(bench, input, m.Name)
	r.mu.Lock()
	if c, ok := r.cands[key]; ok {
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()
	w, err := workloads.Build(bench, input, 1<<30)
	if err != nil {
		return nil, err
	}
	c, err := baselines.ProfileCandidates(w, m, 2.0)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.cands[key] = c
	r.mu.Unlock()
	return c, nil
}

// runResult is one end-to-end run's outcome.
type runResult struct {
	// Work is the total worksite retirements over the run.
	Work uint64
	// Report is non-nil for RPG² runs.
	Report *rpg2.Report
	// TailMPKI and TailRate are measured over a trailing window (for
	// Figures 11 and 12 style analyses).
	TailMPKI     float64
	TailInstrPer float64 // instructions per work item in the tail window
}

// runToBudget drives a process until its clock reaches the run budget and
// then measures a trailing window, returning work counters from the given
// watch.
func (r *Runner) runToBudget(p *proc.Process, m machine.Machine, watch *cpu.Watch) (runResult, error) {
	budget := m.Seconds(r.opts.RunSeconds)
	tail := m.Seconds(1.0)
	if p.Clock() < budget-tail {
		p.Run(budget - tail - p.Clock())
	}
	win := perf.MeasureWatch(p, watch, tail, nil, 0)
	if p.State() == proc.Crashed {
		f := p.FaultedThread()
		return runResult{}, fmt.Errorf("experiments: target crashed: %v at pc %d", f.Thread.Fault, f.Thread.PC)
	}
	res := runResult{TailMPKI: win.MPKI, Work: watch.Count}
	if win.Work > 0 {
		res.TailInstrPer = float64(win.Instructions) / float64(win.Work)
	}
	return res, nil
}

// runOriginal measures the no-prefetch scheme.
func (r *Runner) runOriginal(bench, input string, m machine.Machine) (runResult, error) {
	w, err := workloads.Build(bench, input, 1<<30)
	if err != nil {
		return runResult{}, err
	}
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		return runResult{}, err
	}
	watch := perf.AttachWatch(p, []int{w.WorkPC})
	return r.runToBudget(p, m, watch)
}

// runStatic measures a statically prefetching binary at a fixed distance
// (the offline, APT-GET, and manual schemes).
func (r *Runner) runStatic(bench, input string, m machine.Machine, distance int) (runResult, error) {
	w, err := workloads.Build(bench, input, 1<<30)
	if err != nil {
		return runResult{}, err
	}
	cand, err := r.candidates(bench, input, m)
	if err != nil {
		return runResult{}, err
	}
	pf, err := baselines.BuildPrefetched(w, cand, distance)
	if err != nil {
		return runResult{}, err
	}
	p, err := m.Launch(pf.Bin, w.Setup)
	if err != nil {
		return runResult{}, err
	}
	pcs := []int{w.WorkPC}
	if off, ok := pf.RW.BAT.Translate(w.WorkPC); ok {
		pcs = append(pcs, pf.F1Entry+off)
	}
	watch := perf.AttachWatch(p, pcs)
	return r.runToBudget(p, m, watch)
}

// runRPG2 measures one online-optimized run.
func (r *Runner) runRPG2(bench, input string, m machine.Machine, cfg rpg2.Config) (runResult, error) {
	w, err := workloads.Build(bench, input, 1<<30)
	if err != nil {
		return runResult{}, err
	}
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		return runResult{}, err
	}
	watch := perf.AttachWatch(p, []int{w.WorkPC})
	ctl := rpg2.New(m, cfg)
	rep, err := ctl.Optimize(p)
	if err != nil {
		return runResult{}, err
	}
	res, err := r.runToBudget(p, m, watch)
	res.Report = rep
	return res, err
}

// aptgetDistance picks the APT-GET scheme's distance for a benchmark on a
// machine: the analytic latency-over-iteration-time distance derived from
// one randomly chosen input, baked into the binary run on all inputs
// (§4.1.1). The paper notes APT-GET data is missing for sssp, bfs, and
// randacc; this reproduction can generate it, so it does.
func (r *Runner) aptgetDistance(bench string, m machine.Machine) (int, error) {
	inputs := r.inputsFor(bench)
	rng := rand.New(rand.NewSource(r.opts.Seed + int64(len(bench))))
	in := inputs[rng.Intn(len(inputs))]
	return baselines.APTGETDistance(bench, in, m)
}

// sortedKeys returns map keys in a deterministic order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
