package experiments_test

import (
	"strings"
	"testing"

	"rpg2/internal/experiments"
	"rpg2/internal/machine"
)

// renderFig7 runs Figure 7 on one runner and returns the rendered bytes.
func renderFig7(t *testing.T, r *experiments.Runner) string {
	t.Helper()
	res, err := r.Fig7([]string{"pr"})
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	var sb strings.Builder
	res.Render(&sb)
	return sb.String()
}

// determinismOptions shrinks the smoke configuration further so the repeated
// Figure 7 renders stay affordable under the race detector.
func determinismOptions() experiments.Options {
	o := experiments.SmokeOptions()
	o.Machines = []machine.Machine{machine.CascadeLake()}
	o.RunSeconds = 6
	return o
}

// Figure 7's rendered output must be byte-identical regardless of how many
// fleet workers execute the cells, and regardless of whether the workload
// build cache is cold or warm — the refactor's central invariant.
func TestFig7DeterministicAcrossWorkersAndCache(t *testing.T) {
	opts := func(par int) experiments.Options {
		o := determinismOptions()
		o.Parallelism = par
		return o
	}

	serial := experiments.NewRunner(opts(1))
	defer serial.Close()
	want := renderFig7(t, serial)
	if !strings.Contains(want, "Figure 7") {
		t.Fatalf("render produced no output:\n%s", want)
	}

	parallel := experiments.NewRunner(opts(8))
	defer parallel.Close()
	if got := renderFig7(t, parallel); got != want {
		t.Errorf("Parallelism=8 render differs from Parallelism=1:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}

	// Warm-cache repeat on the same runner: the second run serves every
	// workload from the build cache (and every sweep/profile/apt-get from
	// the memo) yet renders the same bytes.
	cold := renderFig7(t, parallel)
	before := parallel.Snapshot()
	warm := renderFig7(t, parallel)
	if warm != cold {
		t.Errorf("warm-cache render differs from cold-cache render:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	after := parallel.Snapshot()
	if after.BuildConstructs != before.BuildConstructs {
		t.Errorf("warm repeat rebuilt graphs: %d constructs before, %d after",
			before.BuildConstructs, after.BuildConstructs)
	}
	if after.BuildHits <= before.BuildHits {
		t.Errorf("warm repeat recorded no build-cache hits: %d before, %d after",
			before.BuildHits, after.BuildHits)
	}
}

// The transplant study mixes all three seeding tiers (cold, warm, and
// cross-machine translated) plus static re-measurements across two
// machines; its rendered output must still be byte-identical regardless of
// how many fleet workers execute the cells.
func TestTransplantDeterministicAcrossWorkers(t *testing.T) {
	render := func(par int) string {
		o := experiments.SmokeOptions()
		o.Parallelism = par
		r := experiments.NewRunner(o)
		defer r.Close()
		res, err := r.TableTransplant([]string{"pr"})
		if err != nil {
			t.Fatalf("TableTransplant: %v", err)
		}
		var sb strings.Builder
		res.Render(&sb)
		return sb.String()
	}
	want := render(1)
	if !strings.Contains(want, "Transplant study") || !strings.Contains(want, "summary:") {
		t.Fatalf("render produced no study:\n%s", want)
	}
	// The study must actually exercise the translated tier, not silently
	// fall back to cold cells.
	if !strings.Contains(want, "->") {
		t.Fatalf("no cell carries a translated seed:\n%s", want)
	}
	if got := render(8); got != want {
		t.Errorf("Parallelism=8 render differs from Parallelism=1:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
}

// Sharding the profile store is a contention optimisation, not a policy
// change: Figure 7 must render byte-identical whether the store is the
// single-mutex Memory (StoreShards <= 1) or Sharded at any width. WarmStart
// makes the measured trials actually read the store, so a routing or
// translation bug in the sharded path would change the rendered bytes.
func TestFig7DeterministicAcrossStoreShards(t *testing.T) {
	render := func(shards int) string {
		o := determinismOptions()
		o.Parallelism = 4
		o.WarmStart = true
		o.StoreShards = shards
		r := experiments.NewRunner(o)
		defer r.Close()
		return renderFig7(t, r)
	}
	want := render(1)
	if !strings.Contains(want, "Figure 7") {
		t.Fatalf("render produced no output:\n%s", want)
	}
	if got := render(8); got != want {
		t.Errorf("StoreShards=8 render differs from StoreShards=1:\n--- 1 shard ---\n%s\n--- 8 shards ---\n%s", want, got)
	}
}

// With WarmStart the measured RPG² trials may seed from the frozen profile
// store; the pipeline must still complete and stay deterministic run to run.
func TestFig7WarmStartDeterministic(t *testing.T) {
	o := determinismOptions()
	o.Parallelism = 4
	o.WarmStart = true

	a := experiments.NewRunner(o)
	defer a.Close()
	first := renderFig7(t, a)
	if strings.Contains(first, "SKIPPED") {
		t.Fatalf("warm-start run skipped cells:\n%s", first)
	}
	b := experiments.NewRunner(o)
	defer b.Close()
	if second := renderFig7(t, b); second != first {
		t.Errorf("warm-start render not reproducible:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	// The pre-warm round populated the store, so measured sessions hit it.
	if snap := a.Snapshot(); snap.Store.Hits == 0 {
		t.Errorf("warm-start run never hit the profile store: %+v", snap.Store)
	}
}
