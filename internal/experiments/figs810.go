package experiments

import (
	"fmt"
	"io"
	"sort"

	"rpg2/internal/machine"
	"rpg2/internal/rpg2"
	"rpg2/internal/stats"
)

// Fig8Result is the search-accuracy histogram: for inputs with a clear
// single optimal distance, how far RPG²'s search landed from it.
type Fig8Result struct {
	// Deltas holds |found - optimal| per (input, trial) where RPG² tuned.
	Deltas []float64
	// Inputs is the number of single-optimal inputs considered.
	Inputs int
	// Edges and Counts form the rendered histogram.
	Edges  []float64
	Counts []int
}

// Fig8 reproduces Figure 8: run RPG² on every input that classifies as
// single-optimal and histogram the distance error against the sweep optimum.
func (r *Runner) Fig8(benches []string) (*Fig8Result, error) {
	if len(benches) == 0 {
		benches = []string{"pr", "bfs", "sssp", "bc", "is", "cg", "randacc"}
	}
	type cell struct {
		bench, input string
		m            machine.Machine
		optimal      int
	}
	var cells []cell
	for _, m := range r.opts.Machines {
		for _, b := range benches {
			for _, in := range r.inputsFor(b) {
				sw, err := r.sweep(b, in, m)
				if err != nil {
					continue
				}
				if stats.Classify(sw.Distances, sw.Speedup) != stats.SingleOptimal {
					continue
				}
				d, _ := sw.Best()
				cells = append(cells, cell{b, in, m, d})
			}
		}
	}
	out := &Fig8Result{Inputs: len(cells)}
	deltas := make([][]float64, len(cells))
	r.parDo(len(cells), func(i int) {
		c := cells[i]
		for t := 0; t < r.opts.Trials; t++ {
			rr, err := r.runRPG2(c.bench, c.input, c.m, rpg2.Config{Seed: r.opts.Seed + int64(31*i+t)})
			if err != nil || rr.Report.Outcome != rpg2.Tuned {
				continue
			}
			d := rr.Report.FinalDistance - c.optimal
			if d < 0 {
				d = -d
			}
			deltas[i] = append(deltas[i], float64(d))
		}
	})
	for _, ds := range deltas {
		out.Deltas = append(out.Deltas, ds...)
	}
	out.Edges = []float64{0, 4, 11, 21, 41, 81}
	out.Counts = stats.Histogram(out.Deltas, out.Edges)
	return out, nil
}

// Render prints the Figure 8 histogram.
func (f *Fig8Result) Render(w io.Writer) {
	fmt.Fprintf(w, "\nFigure 8 — |found - optimal| distance across %d single-optimal inputs (%d tuned runs)\n",
		f.Inputs, len(f.Deltas))
	labels := []string{"0-3", "4-10", "11-20", "21-40", "41-80", ">80"}
	within10 := 0
	for i, c := range f.Counts {
		fmt.Fprintf(w, "  %-6s %d\n", labels[i], c)
		if i < 2 {
			within10 += c
		}
	}
	if n := len(f.Deltas); n > 0 {
		fmt.Fprintf(w, "  within 10 of optimal: %.0f%%\n", 100*float64(within10)/float64(n))
	}
}

// Fig9Result is the profiling-duration sensitivity study: how often RPG²'s
// optimization phases activate as the profiling window grows.
type Fig9Result struct {
	Durations []float64
	// Always/Mixed/Never count inputs whose trials all activated, some
	// activated, or none activated.
	Always, Mixed, Never []int
}

// Fig9 reproduces Figure 9 for pr on the first machine.
func (r *Runner) Fig9() (*Fig9Result, error) {
	m := r.opts.Machines[0]
	durations := []float64{0.5, 1, 2, 4}
	inputs := r.inputsFor("pr")
	out := &Fig9Result{Durations: durations}
	out.Always = make([]int, len(durations))
	out.Mixed = make([]int, len(durations))
	out.Never = make([]int, len(durations))

	type cell struct {
		di, ii int
	}
	var cells []cell
	for di := range durations {
		for ii := range inputs {
			cells = append(cells, cell{di, ii})
		}
	}
	trials := max(r.opts.Trials, 2)
	actives := make([]int, len(cells))
	r.parDo(len(cells), func(i int) {
		c := cells[i]
		for t := 0; t < trials; t++ {
			rr, err := r.runRPG2("pr", inputs[c.ii], m, rpg2.Config{
				ProfileSeconds: durations[c.di],
				Seed:           r.opts.Seed + int64(7*i+t),
			})
			if err == nil && rr.Report.Outcome != rpg2.NotActivated {
				actives[i]++
			}
		}
	})
	for i, c := range cells {
		switch {
		case actives[i] == trials:
			out.Always[c.di]++
		case actives[i] == 0:
			out.Never[c.di]++
		default:
			out.Mixed[c.di]++
		}
	}
	return out, nil
}

// Render prints the Figure 9 activation breakdown.
func (f *Fig9Result) Render(w io.Writer) {
	fmt.Fprintf(w, "\nFigure 9 — pr activation vs profiling duration (inputs: always/mixed/never)\n")
	for i, d := range f.Durations {
		fmt.Fprintf(w, "  %4.1fs: always=%d mixed=%d never=%d\n", d, f.Always[i], f.Mixed[i], f.Never[i])
	}
}

// Fig10Result holds two session timelines: a speedup case and a rollback
// case.
type Fig10Result struct {
	Speedup, Rollback *SessionTimeline
}

// SessionTimeline is one RPG² session's performance trace extended past
// detach.
type SessionTimeline struct {
	Bench, Input, Machine string
	Outcome               rpg2.Outcome
	FinalDistance         int
	Points                []rpg2.TimelinePoint
}

// Fig10 reproduces Figure 10: run RPG² on a prefetch-friendly pr input and
// on a prefetch-hostile one, recording the performance timeline through
// profiling, insertion, tuning, and (for the hostile case) rollback.
func (r *Runner) Fig10(friendly, hostile string) (*Fig10Result, error) {
	m := r.opts.Machines[0]
	if friendly == "" {
		friendly = r.inputsFor("pr")[0]
	}
	if hostile == "" {
		hostile = "as20000102-like"
	}
	run := func(input string) (*SessionTimeline, error) {
		rr, err := r.timelineRun("pr", input, m)
		if err != nil {
			return nil, err
		}
		return rr, nil
	}
	var out Fig10Result
	var err error
	if out.Speedup, err = run(friendly); err != nil {
		return nil, err
	}
	if out.Rollback, err = run(hostile); err != nil {
		return nil, err
	}
	return &out, nil
}

// timelineRun performs one session and appends post-detach measurement
// windows to the timeline.
func (r *Runner) timelineRun(bench, input string, m machine.Machine) (*SessionTimeline, error) {
	rr, err := r.runRPG2WithTail(bench, input, m, rpg2.Config{Seed: r.opts.Seed, MinSamples: 10})
	return rr, err
}

// Render prints both timelines.
func (f *Fig10Result) Render(w io.Writer) {
	for _, s := range []*SessionTimeline{f.Speedup, f.Rollback} {
		if s == nil {
			continue
		}
		fmt.Fprintf(w, "\nFigure 10 — %s/%s on %s: outcome=%v d=%d\n",
			s.Bench, s.Input, s.Machine, s.Outcome, s.FinalDistance)
		sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].Seconds < s.Points[j].Seconds })
		for _, p := range s.Points {
			fmt.Fprintf(w, "  t=%6.2fs  ipc=%.3f  rate=%.4f  [%s]\n", p.Seconds, p.IPC, p.Rate, p.Phase)
		}
	}
}
