package experiments

import (
	"fmt"
	"io"
	"sort"

	"rpg2/internal/fleet"
	"rpg2/internal/machine"
	"rpg2/internal/rpg2"
	"rpg2/internal/stats"
)

// Fig8Result is the search-accuracy histogram: for inputs with a clear
// single optimal distance, how far RPG²'s search landed from it.
type Fig8Result struct {
	// Deltas holds |found - optimal| per (input, trial) where RPG² tuned.
	Deltas []float64
	// Inputs is the number of single-optimal inputs considered.
	Inputs int
	// Edges and Counts form the rendered histogram.
	Edges  []float64
	Counts []int
}

// Fig8 reproduces Figure 8: run RPG² on every input that classifies as
// single-optimal and histogram the distance error against the sweep optimum.
func (r *Runner) Fig8(benches []string) (*Fig8Result, error) {
	if len(benches) == 0 {
		benches = []string{"pr", "bfs", "sssp", "bc", "is", "cg", "randacc"}
	}
	var all []cellRef
	for _, m := range r.opts.Machines {
		for _, b := range benches {
			for _, in := range r.inputsFor(b) {
				all = append(all, cellRef{b, in, m})
			}
		}
	}
	r.prefetchSweeps(all)

	type cell struct {
		bench, input string
		m            machine.Machine
		optimal      int
	}
	var cells []cell
	for _, c := range all {
		sw, err := r.sweep(c.bench, c.input, c.m)
		if err != nil {
			continue
		}
		if stats.Classify(sw.Distances, sw.Speedup) != stats.SingleOptimal {
			continue
		}
		d, _ := sw.Best()
		cells = append(cells, cell{c.bench, c.input, c.m, d})
	}
	out := &Fig8Result{Inputs: len(cells)}

	refs := make([]cellRef, len(cells))
	for i, c := range cells {
		refs[i] = cellRef{c.bench, c.input, c.m}
	}
	thaw := r.warmStart(refs)
	defer thaw()

	var specs []fleet.SessionSpec
	for i, c := range cells {
		for t := 0; t < r.opts.Trials; t++ {
			specs = append(specs, fleet.SessionSpec{
				Bench: c.bench, Input: c.input, Machine: r.mptr(c.m),
				Seed: r.opts.Seed + int64(31*i+t),
				Cold: !r.opts.WarmStart, RunSeconds: -1,
			})
		}
	}
	sessions, err := r.runBatch(specs)
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		for t := 0; t < r.opts.Trials; t++ {
			s := sessions[i*r.opts.Trials+t]
			if s.State() == fleet.Failed || s.Report().Outcome != rpg2.Tuned {
				continue
			}
			d := s.Report().FinalDistance - c.optimal
			if d < 0 {
				d = -d
			}
			out.Deltas = append(out.Deltas, float64(d))
		}
	}
	out.Edges = []float64{0, 4, 11, 21, 41, 81}
	out.Counts = stats.Histogram(out.Deltas, out.Edges)
	return out, nil
}

// Render prints the Figure 8 histogram.
func (f *Fig8Result) Render(w io.Writer) {
	fmt.Fprintf(w, "\nFigure 8 — |found - optimal| distance across %d single-optimal inputs (%d tuned runs)\n",
		f.Inputs, len(f.Deltas))
	labels := []string{"0-3", "4-10", "11-20", "21-40", "41-80", ">80"}
	within10 := 0
	for i, c := range f.Counts {
		fmt.Fprintf(w, "  %-6s %d\n", labels[i], c)
		if i < 2 {
			within10 += c
		}
	}
	if n := len(f.Deltas); n > 0 {
		fmt.Fprintf(w, "  within 10 of optimal: %.0f%%\n", 100*float64(within10)/float64(n))
	}
}

// Fig9Result is the profiling-duration sensitivity study: how often RPG²'s
// optimization phases activate as the profiling window grows.
type Fig9Result struct {
	Durations []float64
	// Always/Mixed/Never count inputs whose trials all activated, some
	// activated, or none activated.
	Always, Mixed, Never []int
}

// Fig9 reproduces Figure 9 for pr on the first machine. Its sessions stay
// cold even under -warm: the study measures activation sensitivity to the
// profiling window, and a store hit would skip the very phase under test.
func (r *Runner) Fig9() (*Fig9Result, error) {
	m := r.opts.Machines[0]
	durations := []float64{0.5, 1, 2, 4}
	inputs := r.inputsFor("pr")
	out := &Fig9Result{Durations: durations}
	out.Always = make([]int, len(durations))
	out.Mixed = make([]int, len(durations))
	out.Never = make([]int, len(durations))

	type cell struct {
		di, ii int
	}
	var cells []cell
	for di := range durations {
		for ii := range inputs {
			cells = append(cells, cell{di, ii})
		}
	}
	trials := max(r.opts.Trials, 2)
	var specs []fleet.SessionSpec
	for i, c := range cells {
		for t := 0; t < trials; t++ {
			specs = append(specs, fleet.SessionSpec{
				Bench: "pr", Input: inputs[c.ii], Machine: r.mptr(m),
				Seed:   r.opts.Seed + int64(7*i+t),
				Config: &rpg2.Config{ProfileSeconds: durations[c.di]},
				Cold:   true, RunSeconds: -1,
			})
		}
	}
	sessions, err := r.runBatch(specs)
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		active := 0
		for t := 0; t < trials; t++ {
			s := sessions[i*trials+t]
			if s.State() != fleet.Failed && s.Report().Outcome != rpg2.NotActivated {
				active++
			}
		}
		switch {
		case active == trials:
			out.Always[c.di]++
		case active == 0:
			out.Never[c.di]++
		default:
			out.Mixed[c.di]++
		}
	}
	return out, nil
}

// Render prints the Figure 9 activation breakdown.
func (f *Fig9Result) Render(w io.Writer) {
	fmt.Fprintf(w, "\nFigure 9 — pr activation vs profiling duration (inputs: always/mixed/never)\n")
	for i, d := range f.Durations {
		fmt.Fprintf(w, "  %4.1fs: always=%d mixed=%d never=%d\n", d, f.Always[i], f.Mixed[i], f.Never[i])
	}
}

// Fig10Result holds two session timelines: a speedup case and a rollback
// case.
type Fig10Result struct {
	Speedup, Rollback *SessionTimeline
}

// SessionTimeline is one RPG² session's performance trace extended past
// detach.
type SessionTimeline struct {
	Bench, Input, Machine string
	Outcome               rpg2.Outcome
	FinalDistance         int
	Points                []rpg2.TimelinePoint
}

// Fig10 reproduces Figure 10: run RPG² on a prefetch-friendly pr input and
// on a prefetch-hostile one, recording the performance timeline through
// profiling, insertion, tuning, and (for the hostile case) rollback.
func (r *Runner) Fig10(friendly, hostile string) (*Fig10Result, error) {
	m := r.opts.Machines[0]
	if friendly == "" {
		friendly = r.inputsFor("pr")[0]
	}
	if hostile == "" {
		hostile = "as20000102-like"
	}
	var out Fig10Result
	var err error
	if out.Speedup, err = r.timelineRun("pr", friendly, m); err != nil {
		return nil, err
	}
	if out.Rollback, err = r.timelineRun("pr", hostile, m); err != nil {
		return nil, err
	}
	return &out, nil
}

// timelineRun performs one fleet session with a post-detach measurement
// timeline: the controller's own phase timeline plus twelve half-second
// windows after it detaches. It stays cold even under -warm: Figure 10's
// subject is the anatomy of the full search, which warm seeding shortcuts.
func (r *Runner) timelineRun(bench, input string, m machine.Machine) (*SessionTimeline, error) {
	s, err := r.fleet.Submit(fleet.SessionSpec{
		Bench: bench, Input: input, Machine: r.mptr(m),
		Seed:              r.opts.Seed,
		Config:            &rpg2.Config{MinSamples: 10},
		Cold:              true,
		RunSeconds:        -1,
		TailWindows:       12,
		TailWindowSeconds: 0.5,
	})
	if err != nil {
		return nil, err
	}
	r.fleet.Drain()
	if s.State() == fleet.Failed {
		return nil, s.Err()
	}
	rep := s.Report()
	st := &SessionTimeline{
		Bench: bench, Input: input, Machine: m.Name,
		Outcome:       rep.Outcome,
		FinalDistance: rep.FinalDistance,
	}
	st.Points = append(st.Points, rep.Timeline...)
	st.Points = append(st.Points, s.Tail()...)
	return st, nil
}

// Render prints both timelines.
func (f *Fig10Result) Render(w io.Writer) {
	for _, s := range []*SessionTimeline{f.Speedup, f.Rollback} {
		if s == nil {
			continue
		}
		fmt.Fprintf(w, "\nFigure 10 — %s/%s on %s: outcome=%v d=%d\n",
			s.Bench, s.Input, s.Machine, s.Outcome, s.FinalDistance)
		sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].Seconds < s.Points[j].Seconds })
		for _, p := range s.Points {
			fmt.Fprintf(w, "  t=%6.2fs  ipc=%.3f  rate=%.4f  [%s]\n", p.Seconds, p.IPC, p.Rate, p.Phase)
		}
	}
}
