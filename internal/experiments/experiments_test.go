package experiments_test

import (
	"strings"
	"testing"

	"rpg2/internal/experiments"
	"rpg2/internal/machine"
)

func TestFig7QuickPipeline(t *testing.T) {
	r := experiments.NewRunner(experiments.SmokeOptions())
	defer r.Close()
	res, err := r.Fig7([]string{"pr", "is"})
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	for _, p := range res.Pairs {
		if p.Err != nil {
			t.Errorf("cell %s/%s/%s failed: %v", p.Bench, p.Input, p.Machine, p.Err)
			continue
		}
		if p.Speedup["rpg2"] <= 0 {
			t.Errorf("cell %s/%s/%s has no rpg2 speedup", p.Bench, p.Input, p.Machine)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	t.Log(sb.String())
	if !strings.Contains(sb.String(), "Figure 7") {
		t.Fatal("render produced no output")
	}
	// The miss-heavy input should see a clear RPG² win on at least one
	// machine; the LLC-resident one should stay near 1.0 (never far below).
	for _, p := range res.Pairs {
		if p.Err != nil {
			continue
		}
		if p.Input == "as20000102-like" && p.Speedup["rpg2"] < 0.90 {
			t.Errorf("robustness violated: rpg2 %.2fx on LLC-resident input (%s)", p.Speedup["rpg2"], p.Machine)
		}
	}
	// Every cell flowed through the fleet: the journal saw each job kind
	// and the metrics snapshot accounts for them.
	snap := r.Snapshot()
	for _, kind := range []string{"optimize", "baseline", "static", "sweep", "profile", "apt-get"} {
		if snap.Kinds[kind] == 0 {
			t.Errorf("no %q sessions in fleet snapshot: %+v", kind, snap.Kinds)
		}
	}
	if len(r.Journal().Events()) == 0 {
		t.Error("fleet journal is empty after Fig7")
	}
	if snap.Failed > 0 {
		t.Errorf("%d fleet sessions failed", snap.Failed)
	}
}

func TestTable2Latencies(t *testing.T) {
	o := experiments.SmokeOptions()
	o.Machines = []machine.Machine{machine.CascadeLake()}
	r := experiments.NewRunner(o)
	defer r.Close()
	res, err := r.Table2()
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	var sb strings.Builder
	res.Render(&sb)
	t.Log(sb.String())
	for _, row := range res.Rows {
		if row.Costs.PDEdits == 0 {
			continue // not activated at this tiny scale
		}
		if ms := 1000 * row.Costs.PDEditSeconds; ms < 0.3 || ms > 5 {
			t.Errorf("%s: pd edit %.2f ms outside plausible range (paper: 1.1-1.4)", row.Bench, ms)
		}
		if ms := 1000 * row.Costs.CodeInsertSeconds; ms < 1 || ms > 20 {
			t.Errorf("%s: code insert %.2f ms outside plausible range (paper: 3-4)", row.Bench, ms)
		}
	}
}

func TestTable1Categories(t *testing.T) {
	r := experiments.NewRunner(experiments.SmokeOptions())
	defer r.Close()
	res, err := r.Table1()
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	var sb strings.Builder
	res.Render(&sb)
	t.Log(sb.String())
	want := []string{"direct a[j]", "indirect a[f(b[j])]", "indirect a[f(b[i]+j)]"}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 exemplars, got %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row.Category.String() != want[i] {
			t.Errorf("exemplar %d classified %q, want %q", i, row.Category, want[i])
		}
	}
}

func TestFig13AsymmetricGrid(t *testing.T) {
	o := experiments.SmokeOptions()
	o.Machines = []machine.Machine{machine.CascadeLake()}
	r := experiments.NewRunner(o)
	defer r.Close()
	res, err := r.Fig13("soc-alpha")
	if err != nil {
		t.Fatalf("Fig13: %v", err)
	}
	var sb strings.Builder
	res.Render(&sb)
	t.Log(sb.String())
	best := 0.0
	for _, row := range res.Speedup {
		for _, v := range row {
			if v > best {
				best = v
			}
		}
	}
	if best < 1.1 {
		t.Errorf("asymmetric grid shows no speedup anywhere (best %.2f)", best)
	}
}
