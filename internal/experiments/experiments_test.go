package experiments_test

import (
	"strings"
	"testing"

	"rpg2/internal/baselines"
	"rpg2/internal/experiments"
	"rpg2/internal/graphs"
	"rpg2/internal/machine"
)

// tinyOptions shrinks everything so the full pipeline runs in seconds.
func tinyOptions() experiments.Options {
	o := experiments.QuickOptions()
	o.CRONOInputs = []graphs.Input{
		mustInput("soc-alpha"),
		mustInput("as20000102-like"),
	}
	o.SynthInputs = []graphs.Input{mustInput("synth-small"), mustInput("synth-u1")}
	o.RunSeconds = 15
	o.Trials = 1
	o.Sweep = baselines.SweepConfig{
		Distances:     []int{1, 4, 8, 16, 32, 64},
		WarmSeconds:   0.1,
		WindowSeconds: 0.25,
		Seed:          1,
	}
	return o
}

func mustInput(name string) graphs.Input {
	in, ok := graphs.FindInput(name)
	if !ok {
		panic("unknown input " + name)
	}
	return in
}

func TestFig7QuickPipeline(t *testing.T) {
	r := experiments.NewRunner(tinyOptions())
	res, err := r.Fig7([]string{"pr", "is"})
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	for _, p := range res.Pairs {
		if p.Err != nil {
			t.Errorf("cell %s/%s/%s failed: %v", p.Bench, p.Input, p.Machine, p.Err)
			continue
		}
		if p.Speedup["rpg2"] <= 0 {
			t.Errorf("cell %s/%s/%s has no rpg2 speedup", p.Bench, p.Input, p.Machine)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	t.Log(sb.String())
	if !strings.Contains(sb.String(), "Figure 7") {
		t.Fatal("render produced no output")
	}
	// The miss-heavy input should see a clear RPG² win on at least one
	// machine; the LLC-resident one should stay near 1.0 (never far below).
	for _, p := range res.Pairs {
		if p.Err != nil {
			continue
		}
		if p.Input == "as20000102-like" && p.Speedup["rpg2"] < 0.90 {
			t.Errorf("robustness violated: rpg2 %.2fx on LLC-resident input (%s)", p.Speedup["rpg2"], p.Machine)
		}
	}
}

func TestTable2Latencies(t *testing.T) {
	o := tinyOptions()
	o.Machines = []machine.Machine{machine.CascadeLake()}
	r := experiments.NewRunner(o)
	res, err := r.Table2()
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	var sb strings.Builder
	res.Render(&sb)
	t.Log(sb.String())
	for _, row := range res.Rows {
		if row.Costs.PDEdits == 0 {
			continue // not activated at this tiny scale
		}
		if ms := 1000 * row.Costs.PDEditSeconds; ms < 0.3 || ms > 5 {
			t.Errorf("%s: pd edit %.2f ms outside plausible range (paper: 1.1-1.4)", row.Bench, ms)
		}
		if ms := 1000 * row.Costs.CodeInsertSeconds; ms < 1 || ms > 20 {
			t.Errorf("%s: code insert %.2f ms outside plausible range (paper: 3-4)", row.Bench, ms)
		}
	}
}

func TestTable1Categories(t *testing.T) {
	o := tinyOptions()
	r := experiments.NewRunner(o)
	res, err := r.Table1()
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	var sb strings.Builder
	res.Render(&sb)
	t.Log(sb.String())
	want := []string{"direct a[j]", "indirect a[f(b[j])]", "indirect a[f(b[i]+j)]"}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 exemplars, got %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row.Category.String() != want[i] {
			t.Errorf("exemplar %d classified %q, want %q", i, row.Category, want[i])
		}
	}
}

func TestFig13AsymmetricGrid(t *testing.T) {
	o := tinyOptions()
	o.Machines = []machine.Machine{machine.CascadeLake()}
	r := experiments.NewRunner(o)
	res, err := r.Fig13("soc-alpha")
	if err != nil {
		t.Fatalf("Fig13: %v", err)
	}
	var sb strings.Builder
	res.Render(&sb)
	t.Log(sb.String())
	best := 0.0
	for _, row := range res.Speedup {
		for _, v := range row {
			if v > best {
				best = v
			}
		}
	}
	if best < 1.1 {
		t.Errorf("asymmetric grid shows no speedup anywhere (best %.2f)", best)
	}
}
