package experiments

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestParDoBoundsAndCompletes pins down the two properties every harness
// fan-out (and the fleet's worker pool sizing assumptions) relies on:
// parDo never runs more than Parallelism bodies at once, and it runs every
// index exactly once. Run under -race in CI.
func TestParDoBoundsAndCompletes(t *testing.T) {
	const n, bound = 100, 3
	r := NewRunner(Options{Parallelism: bound})

	var cur, peak int32
	counts := make([]int32, n)
	r.parDo(n, func(i int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		atomic.AddInt32(&counts[i], 1)
		atomic.AddInt32(&cur, -1)
	})

	if got := atomic.LoadInt32(&peak); got > bound {
		t.Fatalf("observed %d concurrent bodies, bound is %d", got, bound)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestParDoZero: an empty fan-out returns immediately.
func TestParDoZero(t *testing.T) {
	r := NewRunner(Options{Parallelism: 2})
	done := false
	var mu sync.Mutex
	r.parDo(0, func(int) { mu.Lock(); done = true; mu.Unlock() })
	if done {
		t.Fatal("body ran for n=0")
	}
}
