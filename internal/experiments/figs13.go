package experiments

import (
	"fmt"
	"io"

	"rpg2/internal/baselines"
	"rpg2/internal/machine"
)

// Curve is one speedup-vs-distance series.
type Curve struct {
	Bench, Input, Machine string
	Distances             []int
	Speedup               []float64
}

// CurveSet is the result of the sweep figures (1, 2 and 3).
type CurveSet struct {
	Title  string
	Curves []Curve
}

// curveFrom converts a sweep.
func curveFrom(s *baselines.Sweep) Curve {
	return Curve{
		Bench: s.Bench, Input: s.Input, Machine: s.Machine,
		Distances: s.Distances, Speedup: s.Speedup,
	}
}

// sweepCurves runs every cell's distance sweep through the fleet at once,
// then assembles the curves in cell order.
func (r *Runner) sweepCurves(cells []cellRef, errf func(c cellRef, err error) error) ([]Curve, error) {
	r.prefetchSweeps(cells)
	curves := make([]Curve, len(cells))
	for i, c := range cells {
		sw, err := r.sweep(c.bench, c.input, c.m)
		if err != nil {
			return nil, errf(c, err)
		}
		curves[i] = curveFrom(sw)
	}
	return curves, nil
}

// Fig1 reproduces Figure 1: sssp speedup versus prefetch distance on the
// Haswell machine across several inputs — the best distance range shifts
// substantially between inputs.
func (r *Runner) Fig1() (*CurveSet, error) {
	m, _ := machine.ByName("haswell")
	inputs := r.inputsFor("sssp")
	if len(inputs) > 6 {
		inputs = inputs[:6]
	}
	cells := make([]cellRef, len(inputs))
	for i, in := range inputs {
		cells[i] = cellRef{"sssp", in, m}
	}
	curves, err := r.sweepCurves(cells, func(c cellRef, err error) error {
		return fmt.Errorf("fig1 %s: %w", c.input, err)
	})
	if err != nil {
		return nil, err
	}
	return &CurveSet{
		Title:  "Figure 1 — sssp speedup vs prefetch distance (Haswell)",
		Curves: curves,
	}, nil
}

// Fig2 reproduces Figure 2: asymptotic speedup-vs-distance curves — the AJ
// benchmarks, whose performance saturates as the distance grows.
func (r *Runner) Fig2() (*CurveSet, error) {
	m := r.opts.Machines[0]
	benches := []string{"is", "cg", "randacc"}
	cells := make([]cellRef, len(benches))
	for i, b := range benches {
		cells[i] = cellRef{b, "", m}
	}
	curves, err := r.sweepCurves(cells, func(c cellRef, err error) error {
		return fmt.Errorf("fig2 %s: %w", c.bench, err)
	})
	if err != nil {
		return nil, err
	}
	return &CurveSet{
		Title:  fmt.Sprintf("Figure 2 — AJ benchmark distance curves (%s)", m.Name),
		Curves: curves,
	}, nil
}

// Fig3 reproduces Figure 3's point: the same inputs behave differently on
// the two microarchitectures — pr's distance curves on Cascade Lake and
// Haswell for the same inputs.
func (r *Runner) Fig3() (*CurveSet, error) {
	inputs := r.inputsFor("pr")
	if len(inputs) > 3 {
		inputs = inputs[:3]
	}
	var cells []cellRef
	for _, in := range inputs {
		for _, m := range r.opts.Machines {
			cells = append(cells, cellRef{"pr", in, m})
		}
	}
	curves, err := r.sweepCurves(cells, func(c cellRef, err error) error {
		return fmt.Errorf("fig3 %s/%s: %w", c.input, c.m.Name, err)
	})
	if err != nil {
		return nil, err
	}
	return &CurveSet{
		Title:  "Figure 3 — pr distance curves across microarchitectures",
		Curves: curves,
	}, nil
}

// Render prints each curve as a series of distance:speedup points plus the
// best-performing region, matching how the paper's line plots read.
func (cs *CurveSet) Render(w io.Writer) {
	fmt.Fprintf(w, "\n%s\n", cs.Title)
	for _, c := range cs.Curves {
		best, bestV := 0, 0.0
		for i, v := range c.Speedup {
			if v > bestV {
				best, bestV = c.Distances[i], v
			}
		}
		// Best-performing shaded range: distances within 2.5% of max.
		lo, hi := best, best
		for i, v := range c.Speedup {
			if v >= 0.975*bestV {
				if c.Distances[i] < lo {
					lo = c.Distances[i]
				}
				if c.Distances[i] > hi {
					hi = c.Distances[i]
				}
			}
		}
		fmt.Fprintf(w, "%s/%s on %s: best d=%d (%.2fx), best range [%d,%d]\n",
			c.Bench, c.Input, c.Machine, best, bestV, lo, hi)
		fmt.Fprint(w, "  ")
		for i, d := range c.Distances {
			fmt.Fprintf(w, "%d:%.2f ", d, c.Speedup[i])
		}
		fmt.Fprintln(w)
	}
}
