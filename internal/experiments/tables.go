package experiments

import (
	"fmt"
	"io"

	"rpg2/internal/bolt"
	"rpg2/internal/fleet"
	"rpg2/internal/isa"
	"rpg2/internal/machine"
	"rpg2/internal/rpg2"
	"rpg2/internal/stats"
	"rpg2/internal/workloads"
)

// Table1Row reports one access-pattern exemplar processed by the
// InjectPrefetchPass.
type Table1Row struct {
	Pattern  string
	Program  string
	Category bolt.Category
	Sites    int
	KernelSz int
}

// Table1Result demonstrates the three supported access categories.
type Table1Result struct{ Rows []Table1Row }

// Table1 reproduces Table 1: one exemplar per supported category is run
// through the pass and the detected category is reported. The direct a[j]
// case uses a hand-built streaming program; the indirect cases use the
// bundled workloads whose kernels embody them.
func (r *Runner) Table1() (*Table1Result, error) {
	out := &Table1Result{}

	// Category 1: a[j] — a plain streaming loop.
	direct := isa.NewProgram("main")
	a := isa.NewAsm("main")
	a.InitDone().MovImm(8, 0).Label("loop").
		LoadIdx(9, 0, 8, 0). // a[j]
		Add(10, 10, 9).
		AddImm(8, 8, 1).
		Br(isa.LT, 8, 1, "loop").
		Halt()
	direct.Add(a)
	dbin, err := direct.Link()
	if err != nil {
		return nil, err
	}
	// The demand load is the instruction after InitDone + MovImm.
	rw, err := bolt.InjectPrefetch(dbin, "main", []int{2}, 16)
	if err != nil {
		return nil, fmt.Errorf("table1 direct: %w", err)
	}
	out.Rows = append(out.Rows, Table1Row{
		Pattern: "a[j] -> prefetch a[j+d]", Program: "stream",
		Category: rw.Sites[0].Category, Sites: len(rw.Sites), KernelSz: rw.Sites[0].KernelLen,
	})

	// Category 2: a[f(b[j])] — pr's rank[edge[e]].
	add := func(bench, input, pattern string) error {
		w, err := r.fleet.Builds().Build(bench, input, 1)
		if err != nil {
			return err
		}
		cand, err := r.candidates(bench, input, r.opts.Machines[0])
		if err != nil {
			return err
		}
		rw, err := bolt.InjectPrefetch(w.Bin, workloads.KernelFunc, cand, 16)
		if err != nil {
			return err
		}
		out.Rows = append(out.Rows, Table1Row{
			Pattern: pattern, Program: bench,
			Category: rw.Sites[0].Category, Sites: len(rw.Sites), KernelSz: rw.Sites[0].KernelLen,
		})
		return nil
	}
	if err := add("pr", r.inputsFor("pr")[0], "a[f(b[j])] -> prefetch a[f(b[j+d])]"); err != nil {
		return nil, fmt.Errorf("table1 indirect-inner: %w", err)
	}
	if err := add("bc", r.inputsFor("bc")[0], "a[f(b[i])+j] -> prefetch a[f(b[i+d])]"); err != nil {
		return nil, fmt.Errorf("table1 indirect-outer: %w", err)
	}
	return out, nil
}

// Render prints Table 1.
func (t *Table1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "\nTable 1 — supported access categories (detected by InjectPrefetchPass)\n")
	fmt.Fprintf(w, "  %-38s %-8s %-26s %5s %6s\n", "pattern", "program", "category", "sites", "kernel")
	for _, row := range t.Rows {
		fmt.Fprintf(w, "  %-38s %-8s %-26s %5d %6d\n", row.Pattern, row.Program, row.Category, row.Sites, row.KernelSz)
	}
}

// Table2Row is one benchmark's operation latencies.
type Table2Row struct {
	Bench string
	Costs rpg2.OpCosts
}

// Table2Result is the operation-latency table.
type Table2Result struct {
	Machine string
	Rows    []Table2Row
}

// Table2 reproduces Table 2: the latency of RPG²'s key operations, averaged
// across inputs for each benchmark, on the first machine.
func (r *Runner) Table2() (*Table2Result, error) {
	m := r.opts.Machines[0]
	benches := []string{"pr", "sssp", "bfs", "bc", "is", "randacc", "cg"}
	out := &Table2Result{Machine: m.Name, Rows: make([]Table2Row, len(benches))}

	type cell struct{ bi int }
	var specs []fleet.SessionSpec
	var cells []cell
	for i, b := range benches {
		inputs := r.inputsFor(b)
		if len(inputs) > 4 {
			inputs = inputs[:4]
		}
		for k := range inputs {
			specs = append(specs, fleet.SessionSpec{
				Bench: b, Input: inputs[k], Machine: r.mptr(m),
				Seed: r.opts.Seed + int64(11*i+k),
				Cold: true, RunSeconds: -1,
			})
			cells = append(cells, cell{bi: i})
		}
	}
	sessions, err := r.runBatch(specs)
	if err != nil {
		return nil, err
	}
	aggs := make([]rpg2.OpCosts, len(benches))
	counts := make([]int, len(benches))
	for si, c := range cells {
		s := sessions[si]
		if s.State() == fleet.Failed || s.Report().Outcome == rpg2.NotActivated {
			continue
		}
		costs := s.Report().Costs
		aggs[c.bi].ExecSeconds += costs.ExecSeconds
		aggs[c.bi].BOLTSeconds += costs.BOLTSeconds
		aggs[c.bi].CodeInsertSeconds += costs.CodeInsertSeconds
		aggs[c.bi].PDEditSeconds += costs.PDEditSeconds
		aggs[c.bi].PDEdits += costs.PDEdits
		counts[c.bi]++
	}
	for i, b := range benches {
		agg := aggs[i]
		if n := counts[i]; n > 0 {
			agg.ExecSeconds /= float64(n)
			agg.BOLTSeconds /= float64(n)
			agg.CodeInsertSeconds /= float64(n)
			agg.PDEditSeconds /= float64(n)
			agg.PDEdits = agg.PDEdits / n
		}
		out.Rows[i] = Table2Row{Bench: b, Costs: agg}
	}
	return out, nil
}

// Render prints Table 2 in the paper's row layout.
func (t *Table2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "\nTable 2 — average latency of RPG2 operations (%s)\n", t.Machine)
	fmt.Fprintf(w, "  %-18s", "benchmark")
	for _, r := range t.Rows {
		fmt.Fprintf(w, " %8s", r.Bench)
	}
	fmt.Fprintln(w)
	row := func(label string, f func(rpg2.OpCosts) float64, format string) {
		fmt.Fprintf(w, "  %-18s", label)
		for _, r := range t.Rows {
			fmt.Fprintf(w, " "+format, f(r.Costs))
		}
		fmt.Fprintln(w)
	}
	row("RPG2 exec (s)", func(c rpg2.OpCosts) float64 { return c.ExecSeconds }, "%8.1f")
	row("BOLT (ms)", func(c rpg2.OpCosts) float64 { return 1000 * c.BOLTSeconds }, "%8.1f")
	row("code insert (ms)", func(c rpg2.OpCosts) float64 { return 1000 * c.CodeInsertSeconds }, "%8.1f")
	row("1x pd edit (ms)", func(c rpg2.OpCosts) float64 { return 1000 * c.PDEditSeconds }, "%8.1f")
	row("# pd edits", func(c rpg2.OpCosts) float64 { return float64(c.PDEdits) }, "%8.1f")
}

// Table3Result is the sensitivity-type classification per benchmark and
// machine.
type Table3Result struct {
	Benches []string
	// Counts[machine][class][benchIdx]
	Counts map[string]map[stats.CrossClass][]int
}

// Table3 reproduces Table 3: classify every (benchmark, input) distance
// curve on both machines into the eight sensitivity types.
func (r *Runner) Table3(benches []string) (*Table3Result, error) {
	if len(benches) == 0 {
		benches = []string{"pr", "sssp", "bfs", "bc"}
	}
	cl, _ := machine.ByName("cascadelake")
	hw, _ := machine.ByName("haswell")

	out := &Table3Result{Benches: benches, Counts: make(map[string]map[stats.CrossClass][]int)}
	for _, m := range []machine.Machine{cl, hw} {
		out.Counts[m.Name] = make(map[stats.CrossClass][]int)
		for _, c := range stats.AllCrossClasses() {
			out.Counts[m.Name][c] = make([]int, len(benches))
		}
	}

	type cell struct {
		bi    int
		input string
	}
	var cells []cell
	var refs []cellRef
	for bi, b := range benches {
		for _, in := range r.inputsFor(b) {
			cells = append(cells, cell{bi, in})
			refs = append(refs, cellRef{b, in, cl}, cellRef{b, in, hw})
		}
	}
	r.prefetchSweeps(refs)
	for _, c := range cells {
		swCL, err := r.sweep(benches[c.bi], c.input, cl)
		if err != nil {
			continue
		}
		swHW, err := r.sweep(benches[c.bi], c.input, hw)
		if err != nil {
			continue
		}
		ccl := stats.Classify(swCL.Distances, swCL.Speedup)
		chw := stats.Classify(swHW.Distances, swHW.Speedup)
		out.Counts[cl.Name][stats.CrossClassify(ccl, chw, ccl)][c.bi]++
		out.Counts[hw.Name][stats.CrossClassify(ccl, chw, chw)][c.bi]++
	}
	return out, nil
}

// Render prints Table 3 in the paper's layout: one column group per
// machine, one column per benchmark.
func (t *Table3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "\nTable 3 — prefetch distance sensitivity types (counts per benchmark)\n")
	fmt.Fprintf(w, "  %-16s", "type")
	for _, m := range []string{"cascadelake", "haswell"} {
		for _, b := range t.Benches {
			fmt.Fprintf(w, " %s:%-5s", m[:2], b)
		}
	}
	fmt.Fprintln(w)
	for _, c := range stats.AllCrossClasses() {
		fmt.Fprintf(w, "  %-16s", c)
		for _, m := range []string{"cascadelake", "haswell"} {
			for bi := range t.Benches {
				fmt.Fprintf(w, " %8d", t.Counts[m][c][bi])
			}
		}
		fmt.Fprintln(w)
	}
}
