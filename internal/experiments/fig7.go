package experiments

import (
	"fmt"
	"io"
	"sort"

	"rpg2/internal/fleet"
	"rpg2/internal/machine"
	"rpg2/internal/rpg2"
	"rpg2/internal/stats"
)

// Scheme names for the Figure 7 comparison (§4.1.1).
const (
	SchemeOriginal   = "original"
	SchemeRPG2       = "rpg2"
	SchemeActiveOnly = "active-only"
	SchemeAPTGET     = "apt-get"
	SchemeOffline    = "offline"
	SchemeManual     = "manual"
)

// PairResult holds one (benchmark, input, machine) cell of Figure 7: the
// speedup over the original binary for each scheme.
type PairResult struct {
	Bench, Input, Machine string
	// Speedup maps scheme name to mean speedup; RPG² entries aggregate
	// the configured number of trials.
	Speedup map[string]float64
	// RPG2Outcomes counts controller outcomes across trials.
	RPG2Outcomes map[rpg2.Outcome]int
	// RPG2Trials stores every trial's speedup, for variance.
	RPG2Trials []float64
	// FinalDistances are the tuned distances of activated trials.
	FinalDistances []int
	// Err records a failed cell (skipped in aggregates).
	Err error
}

// Fig7Result aggregates the main performance comparison.
type Fig7Result struct {
	Pairs []*PairResult
}

// Fig7 runs the full scheme comparison of Figure 7. Every measured cell —
// the original baseline, each RPG² trial, and the offline/APT-GET/manual
// statics — is one fleet session; the shared precomputations (sweeps,
// profiles, APT-GET distances) run through the fleet first, then the whole
// measured batch is submitted at once.
func (r *Runner) Fig7(benches []string) (*Fig7Result, error) {
	if len(benches) == 0 {
		benches = []string{"pr", "bfs", "sssp", "bc", "is", "cg", "randacc"}
	}
	type job struct {
		bench, input string
		m            machine.Machine
	}
	var jobs []job
	for _, m := range r.opts.Machines {
		for _, b := range benches {
			for _, in := range r.inputsFor(b) {
				jobs = append(jobs, job{bench: b, input: in, m: m})
			}
		}
	}
	res := &Fig7Result{Pairs: make([]*PairResult, len(jobs))}

	cells := make([]cellRef, len(jobs))
	for i, j := range jobs {
		cells[i] = cellRef{j.bench, j.input, j.m}
	}
	r.prefetchAPTGET(benches, r.opts.Machines)
	r.prefetchSweeps(cells)
	r.prefetchCandidates(cells)
	thaw := r.warmStart(cells)
	defer thaw()

	// The measured batch: a plan per cell indexes into one spec list so
	// submission order (and thus every seed) is independent of worker
	// count.
	type plan struct {
		orig          int
		rpg2          []int
		off, apt, man int
	}
	var specs []fleet.SessionSpec
	add := func(spec fleet.SessionSpec) int {
		spec.RunSeconds = r.opts.RunSeconds
		spec.TailSeconds = 1.0
		specs = append(specs, spec)
		return len(specs) - 1
	}
	plans := make([]plan, len(jobs))
	for i, j := range jobs {
		p := plan{off: -1, apt: -1, man: -1}
		p.orig = add(fleet.SessionSpec{
			Bench: j.bench, Input: j.input, Kind: fleet.BaselineJob,
			Machine: r.mptr(j.m),
		})
		for t := 0; t < r.opts.Trials; t++ {
			p.rpg2 = append(p.rpg2, add(fleet.SessionSpec{
				Bench: j.bench, Input: j.input, Machine: r.mptr(j.m),
				Seed: r.opts.Seed + int64(1000*i+t),
				Cold: !r.opts.WarmStart,
			}))
		}
		cand, candErr := r.candidates(j.bench, j.input, j.m)
		static := func(d int) int {
			if candErr != nil {
				return -1
			}
			return add(fleet.SessionSpec{
				Bench: j.bench, Input: j.input, Kind: fleet.StaticJob,
				Machine: r.mptr(j.m), Distance: d, Candidates: cand,
			})
		}
		// Offline: this input's own best distance.
		if sw, err := r.sweep(j.bench, j.input, j.m); err == nil {
			d, _ := sw.Best()
			p.off = static(d)
		}
		// APT-GET: one distance per benchmark/machine.
		if d, err := r.aptgetDistance(j.bench, j.m); err == nil {
			p.apt = static(d)
		}
		// Manual (AJ benchmarks only).
		if md := manualDistance(j.bench); md > 0 {
			p.man = static(md)
		}
		plans[i] = p
	}
	sessions, err := r.runBatch(specs)
	if err != nil {
		return nil, err
	}

	for i, j := range jobs {
		pr := &PairResult{
			Bench: j.bench, Input: j.input, Machine: j.m.Name,
			Speedup:      make(map[string]float64),
			RPG2Outcomes: make(map[rpg2.Outcome]int),
		}
		res.Pairs[i] = pr
		p := plans[i]

		orig, err := resultFrom(sessions[p.orig])
		if err != nil || orig.Work == 0 {
			pr.Err = fmt.Errorf("original run: %v (work=%d)", err, orig.Work)
			continue
		}
		pr.Speedup[SchemeOriginal] = 1.0
		speedup := func(rr runResult) float64 { return float64(rr.Work) / float64(orig.Work) }

		// RPG² trials.
		var activeSum float64
		activeN := 0
		for t, si := range p.rpg2 {
			rr, err := resultFrom(sessions[si])
			if err != nil {
				pr.Err = fmt.Errorf("rpg2 trial %d: %w", t, err)
				break
			}
			s := speedup(rr)
			pr.RPG2Trials = append(pr.RPG2Trials, s)
			pr.RPG2Outcomes[rr.Report.Outcome]++
			if rr.Report.Outcome != rpg2.NotActivated {
				activeSum += s
				activeN++
			}
			if rr.Report.Outcome == rpg2.Tuned {
				pr.FinalDistances = append(pr.FinalDistances, rr.Report.FinalDistance)
			}
		}
		if pr.Err != nil {
			continue
		}
		pr.Speedup[SchemeRPG2] = stats.Mean(pr.RPG2Trials)
		if activeN > 0 {
			pr.Speedup[SchemeActiveOnly] = activeSum / float64(activeN)
		}
		record := func(scheme string, si int) {
			if si < 0 {
				return
			}
			if rr, err := resultFrom(sessions[si]); err == nil {
				pr.Speedup[scheme] = speedup(rr)
			}
		}
		record(SchemeOffline, p.off)
		record(SchemeAPTGET, p.apt)
		record(SchemeManual, p.man)
	}
	return res, nil
}

func manualDistance(bench string) int {
	switch bench {
	case "is", "randacc":
		return 64
	case "cg":
		return 32
	}
	return 0
}

// Group is one bar group of Figure 7: all / speedup / slowdown.
type Group struct {
	Name   string
	Inputs int
	// Mean and Std per scheme.
	Mean map[string]float64
	Std  map[string]float64
}

// BenchSummary is Figure 7's content for one benchmark on one machine.
type BenchSummary struct {
	Bench, Machine string
	Groups         []Group
}

// Summarize reduces the pair results into the paper's all/speedup/slowdown
// bar groups per benchmark and machine. The speedup group contains inputs
// where RPG² beat the original; the slowdown group contains inputs where
// RPG² detected a regression and rolled back (§4.2).
func (f *Fig7Result) Summarize() []BenchSummary {
	type key struct{ bench, mach string }
	byBM := make(map[key][]*PairResult)
	for _, p := range f.Pairs {
		if p == nil || p.Err != nil {
			continue
		}
		k := key{p.Bench, p.Machine}
		byBM[k] = append(byBM[k], p)
	}
	var keys []key
	for k := range byBM {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].mach != keys[j].mach {
			return keys[i].mach < keys[j].mach
		}
		return keys[i].bench < keys[j].bench
	})

	var out []BenchSummary
	for _, k := range keys {
		pairs := byBM[k]
		inSpeedup := func(p *PairResult) bool { return p.Speedup[SchemeRPG2] > 1.005 }
		inSlowdown := func(p *PairResult) bool {
			return p.RPG2Outcomes[rpg2.RolledBack]*2 > sumOutcomes(p.RPG2Outcomes)
		}
		groups := []struct {
			name   string
			filter func(*PairResult) bool
		}{
			{"all", func(*PairResult) bool { return true }},
			{"speedup", inSpeedup},
			{"slowdown", inSlowdown},
		}
		bs := BenchSummary{Bench: k.bench, Machine: k.mach}
		for _, g := range groups {
			grp := Group{Name: g.name, Mean: make(map[string]float64), Std: make(map[string]float64)}
			bySch := make(map[string][]float64)
			for _, p := range pairs {
				if !g.filter(p) {
					continue
				}
				grp.Inputs++
				for sch, v := range p.Speedup {
					bySch[sch] = append(bySch[sch], v)
				}
			}
			for sch, vs := range bySch {
				grp.Mean[sch] = stats.Mean(vs)
				grp.Std[sch] = stats.StdDev(vs)
			}
			bs.Groups = append(bs.Groups, grp)
		}
		out = append(out, bs)
	}
	return out
}

func sumOutcomes(m map[rpg2.Outcome]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Render prints the summary in the paper's bar-group layout.
func (f *Fig7Result) Render(w io.Writer) {
	schemes := []string{SchemeRPG2, SchemeActiveOnly, SchemeAPTGET, SchemeManual, SchemeOffline}
	for _, bs := range f.Summarize() {
		fmt.Fprintf(w, "\nFigure 7 — %s on %s (speedup over original; mean±std)\n", bs.Bench, bs.Machine)
		fmt.Fprintf(w, "%-12s", "group(n)")
		for _, s := range schemes {
			fmt.Fprintf(w, " %14s", s)
		}
		fmt.Fprintln(w)
		for _, g := range bs.Groups {
			fmt.Fprintf(w, "%-12s", fmt.Sprintf("%s(%d)", g.Name, g.Inputs))
			for _, s := range schemes {
				if g.Inputs == 0 {
					fmt.Fprintf(w, " %14s", "-")
					continue
				}
				if m, ok := g.Mean[s]; ok {
					fmt.Fprintf(w, " %8.2f±%-5.2f", m, g.Std[s])
				} else {
					fmt.Fprintf(w, " %14s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	// Per-input detail for failed cells.
	for _, p := range f.Pairs {
		if p != nil && p.Err != nil {
			fmt.Fprintf(w, "SKIPPED %s/%s/%s: %v\n", p.Bench, p.Input, p.Machine, p.Err)
		}
	}
}
