package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocLeavesGuardGaps(t *testing.T) {
	as := NewAddrSpace()
	a := as.Alloc("a", 100)
	b := as.Alloc("b", 50)
	if a.Base == 0 {
		t.Fatal("address 0 must never be mapped")
	}
	if b.Base < a.End()+GuardGap {
		t.Fatalf("no guard gap: a ends at %d, b starts at %d", a.End(), b.Base)
	}
	// The gap faults.
	if _, ok := as.Read(a.End() + 1); ok {
		t.Fatal("guard gap readable")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	as := NewAddrSpace()
	s := as.Alloc("s", 16)
	for i := Addr(0); i < 16; i++ {
		if !as.Write(s.Base+i, uint64(i*i)) {
			t.Fatalf("write %d failed", i)
		}
	}
	for i := Addr(0); i < 16; i++ {
		v, ok := as.Read(s.Base + i)
		if !ok || v != uint64(i*i) {
			t.Fatalf("read %d = %d, %v", i, v, ok)
		}
	}
}

func TestMapSharesBacking(t *testing.T) {
	as := NewAddrSpace()
	data := []uint64{1, 2, 3}
	s := as.Map("d", data)
	data[1] = 99
	if v, _ := as.Read(s.Base + 1); v != 99 {
		t.Fatal("Map must share the backing slice")
	}
	as.Write(s.Base+2, 7)
	if data[2] != 7 {
		t.Fatal("writes must reach the backing slice")
	}
}

func TestMapAtRejectsOverlap(t *testing.T) {
	as := NewAddrSpace()
	if _, err := as.MapAt("x", 1000, make([]uint64, 100)); err != nil {
		t.Fatalf("MapAt: %v", err)
	}
	if _, err := as.MapAt("y", 1050, make([]uint64, 10)); err == nil {
		t.Fatal("overlap not rejected")
	}
	if _, err := as.MapAt("z", 1100, make([]uint64, 10)); err != nil {
		t.Fatalf("adjacent non-overlapping map rejected: %v", err)
	}
}

func TestSegmentLookup(t *testing.T) {
	as := NewAddrSpace()
	as.Alloc("first", 10)
	s2 := as.Alloc("second", 10)
	if got := as.Segment("second"); got != s2 {
		t.Fatal("Segment by name failed")
	}
	if as.Segment("nope") != nil {
		t.Fatal("missing segment should be nil")
	}
	if got := as.Lookup(s2.Base + 5); got != s2 {
		t.Fatal("Lookup failed")
	}
	if as.Lookup(0) != nil {
		t.Fatal("address 0 must be unmapped")
	}
	if len(as.Segments()) != 2 {
		t.Fatalf("Segments() = %d, want 2", len(as.Segments()))
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Addr: 0x40, Write: true}
	if f.Error() == "" || (&Fault{Addr: 1}).Error() == "" {
		t.Fatal("fault errors must describe themselves")
	}
}

// Property: any address inside a mapped segment reads successfully, any
// address in the guard gap after it faults.
func TestMappedBoundaryProperty(t *testing.T) {
	as := NewAddrSpace()
	seg := as.Alloc("p", 977)
	f := func(off uint32) bool {
		inside := seg.Base + Addr(off)%Addr(len(seg.Data))
		outside := seg.End() + Addr(off)%GuardGap
		_, okIn := as.Read(inside)
		_, okOut := as.Read(outside)
		return okIn && !okOut
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
