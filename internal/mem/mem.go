// Package mem models a process address space for the simulated machine.
//
// Memory is word addressed: one address unit names one 64-bit word, and a
// cache line covers isa.LineWords consecutive words. An address space is a
// small set of mapped segments separated by unmapped guard gaps, so demand
// accesses past the end of an array fault exactly like touching an unmapped
// page would — which is what RPG²'s prefetch-kernel bounds check exists to
// prevent (§3.2.3 of the paper).
package mem

import (
	"fmt"
	"sort"
)

// Addr is a word address in the simulated address space.
type Addr = uint64

// Fault describes an access to unmapped memory. The CPU turns a Fault on a
// demand access into a process crash; prefetches to unmapped addresses are
// silently dropped, matching hardware prefetch semantics.
type Fault struct {
	Addr  Addr
	Write bool
}

func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("mem: %s fault at %#x (unmapped)", kind, f.Addr)
}

// Segment is a contiguous mapped region backed by a Go slice. The backing
// slice is shared, not copied, so workload generators can build data
// structures with ordinary Go code and map them in.
type Segment struct {
	Name string
	Base Addr
	Data []uint64
}

// End returns one past the last mapped address of the segment.
func (s *Segment) End() Addr { return s.Base + Addr(len(s.Data)) }

// Contains reports whether the address lies inside the segment.
func (s *Segment) Contains(a Addr) bool { return a >= s.Base && a < s.End() }

// GuardGap is the default unmapped gap left between consecutively allocated
// segments, in words. It is larger than any plausible prefetch overshoot so
// an unguarded out-of-bounds kernel load reliably faults.
const GuardGap = 4096

// AddrSpace is a process's data address space: an ordered set of segments.
type AddrSpace struct {
	segs []*Segment
	next Addr
	last *Segment // 1-entry lookup cache for the hot path
}

// NewAddrSpace returns an empty address space. Address 0 is never mapped, so
// null dereferences always fault.
func NewAddrSpace() *AddrSpace {
	return &AddrSpace{next: GuardGap}
}

// Alloc maps a fresh zero-filled segment of the given size after the last
// mapping, separated by a guard gap, and returns it.
func (as *AddrSpace) Alloc(name string, size int) *Segment {
	return as.Map(name, make([]uint64, size))
}

// Map maps the given backing slice as a new segment after the last mapping,
// separated by a guard gap, and returns it.
func (as *AddrSpace) Map(name string, data []uint64) *Segment {
	s := &Segment{Name: name, Base: as.next, Data: data}
	as.segs = append(as.segs, s)
	as.next = s.End() + GuardGap
	return s
}

// MapAt maps a segment at a caller-chosen base address. It returns an error
// if the region overlaps an existing segment.
func (as *AddrSpace) MapAt(name string, base Addr, data []uint64) (*Segment, error) {
	s := &Segment{Name: name, Base: base, Data: data}
	for _, o := range as.segs {
		if s.Base < o.End() && o.Base < s.End() {
			return nil, fmt.Errorf("mem: segment %q [%#x,%#x) overlaps %q", name, s.Base, s.End(), o.Name)
		}
	}
	as.segs = append(as.segs, s)
	sort.Slice(as.segs, func(i, j int) bool { return as.segs[i].Base < as.segs[j].Base })
	if s.End()+GuardGap > as.next {
		as.next = s.End() + GuardGap
	}
	return s, nil
}

// Lookup returns the segment containing the address, or nil.
func (as *AddrSpace) Lookup(a Addr) *Segment {
	if s := as.last; s != nil && s.Contains(a) {
		return s
	}
	for _, s := range as.segs {
		if s.Contains(a) {
			as.last = s
			return s
		}
	}
	return nil
}

// Mapped reports whether the address is mapped.
func (as *AddrSpace) Mapped(a Addr) bool { return as.Lookup(a) != nil }

// Read returns the word at the address, or false if unmapped.
func (as *AddrSpace) Read(a Addr) (uint64, bool) {
	s := as.Lookup(a)
	if s == nil {
		return 0, false
	}
	return s.Data[a-s.Base], true
}

// Write stores a word at the address; it reports false if unmapped.
func (as *AddrSpace) Write(a Addr, v uint64) bool {
	s := as.Lookup(a)
	if s == nil {
		return false
	}
	s.Data[a-s.Base] = v
	return true
}

// Segments returns the mapped segments in address order.
func (as *AddrSpace) Segments() []*Segment { return as.segs }

// Segment returns the named segment, or nil.
func (as *AddrSpace) Segment(name string) *Segment {
	for _, s := range as.segs {
		if s.Name == name {
			return s
		}
	}
	return nil
}
