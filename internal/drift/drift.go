// Package drift is the post-activation watchdog's brain: an EWMA
// degradation detector with hysteresis over the miss-site retirement rate
// (perf.Window.Rate) that a tuned session keeps sampling after the
// controller detaches. RPG²'s titular claim is robustness over time —
// a distance that was right for the profiled phase can silently go wrong
// when the workload's phase shifts — and the fleet's answer is this
// detector: compare the sampled rate against the rate recorded at
// activation, smooth it so one noisy window cannot trip anything, and
// demand several consecutive degraded readings before flagging drift.
//
// The package is deliberately free of fleet types: it consumes rates and
// produces a boolean. The fleet decides what a firing means (re-admission
// into the re-tune lane); experiments and tests can drive a Detector
// directly.
package drift

// Config tunes a Detector. The zero value is not useful on its own —
// call Defaults (or let the fleet fill it) before use.
type Config struct {
	// Interval is the simulated seconds between watchdog samples. It is
	// carried here because the fleet's sampling loop and the detector are
	// configured as one unit; the detector itself only sees the rates.
	Interval float64 `json:"interval,omitempty"`
	// Window is the measured window length per sample in simulated
	// seconds (default 0.2). Shorter windows cost less overhead per
	// sample; the EWMA absorbs their extra variance.
	Window float64 `json:"window,omitempty"`
	// Alpha is the EWMA smoothing factor in (0, 1] (default 0.4): the
	// weight of the newest sample. Higher alpha reacts faster and trusts
	// single windows more.
	Alpha float64 `json:"alpha,omitempty"`
	// Threshold is the relative degradation versus the reference rate
	// beyond which a sample counts as degraded (default 0.25: fire when
	// the smoothed rate falls below 75% of the activation rate).
	Threshold float64 `json:"threshold,omitempty"`
	// Hysteresis is how many consecutive degraded samples arm a firing
	// (default 3). One good sample resets the count: sustained
	// degradation fires, a transient dip never does.
	Hysteresis int `json:"hysteresis,omitempty"`
}

// Defaults fills unset fields with the package defaults.
func (c Config) Defaults() Config {
	if c.Window <= 0 {
		c.Window = 0.2
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.4
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.25
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 3
	}
	return c
}

// Detector tracks one session's post-activation rate. Not safe for
// concurrent use; the owning watchdog loop is single-threaded.
type Detector struct {
	cfg      Config
	ref      float64 // the activation-time reference rate
	ewma     float64
	degraded int // consecutive degraded samples
	samples  int // total samples observed
	fired    int // total firings (Observe returning true)
}

// New builds a detector against the given activation reference rate. The
// EWMA starts at the reference: the session was just measured there.
func New(cfg Config, refRate float64) *Detector {
	return &Detector{cfg: cfg.Defaults(), ref: refRate, ewma: refRate}
}

// Observe feeds one sampled rate and reports whether sustained
// degradation just fired. After a firing the consecutive count resets, so
// the same degradation episode does not re-fire every subsequent sample —
// the caller is expected to act (re-tune) and Rebase.
func (d *Detector) Observe(rate float64) bool {
	d.samples++
	d.ewma = d.cfg.Alpha*rate + (1-d.cfg.Alpha)*d.ewma
	if d.ewma < d.ref*(1-d.cfg.Threshold) {
		d.degraded++
		if d.degraded >= d.cfg.Hysteresis {
			d.degraded = 0
			d.fired++
			return true
		}
		return false
	}
	d.degraded = 0
	return false
}

// Rebase re-arms the detector against a new reference rate — the rate a
// completed re-tune achieved. Without a rebase, a phase whose best
// achievable rate is below the old reference would re-fire forever.
func (d *Detector) Rebase(refRate float64) {
	d.ref = refRate
	d.ewma = refRate
	d.degraded = 0
}

// Ref returns the current reference rate.
func (d *Detector) Ref() float64 { return d.ref }

// EWMA returns the current smoothed rate.
func (d *Detector) EWMA() float64 { return d.ewma }

// Samples returns how many rates have been observed.
func (d *Detector) Samples() int { return d.samples }

// Fired returns how many times the detector has fired.
func (d *Detector) Fired() int { return d.fired }

// State is a Detector's JSON-safe persistable posture: what a fleet WAL
// snapshot carries so Recover can resume an armed watchdog.
type State struct {
	Ref      float64 `json:"ref"`
	EWMA     float64 `json:"ewma"`
	Degraded int     `json:"degraded,omitempty"`
	Samples  int     `json:"samples,omitempty"`
	Fired    int     `json:"fired,omitempty"`
}

// Export captures the detector's posture.
func (d *Detector) Export() State {
	return State{Ref: d.ref, EWMA: d.ewma, Degraded: d.degraded, Samples: d.samples, Fired: d.fired}
}

// Resume rebuilds a detector from an exported posture.
func Resume(cfg Config, st State) *Detector {
	return &Detector{
		cfg: cfg.Defaults(), ref: st.Ref, ewma: st.EWMA,
		degraded: st.Degraded, samples: st.Samples, fired: st.Fired,
	}
}
