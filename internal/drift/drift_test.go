package drift

import "testing"

func TestDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Window != 0.2 || c.Alpha != 0.4 || c.Threshold != 0.25 || c.Hysteresis != 3 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	// Explicit values survive.
	c = Config{Window: 0.5, Alpha: 0.9, Threshold: 0.1, Hysteresis: 5}.Defaults()
	if c.Window != 0.5 || c.Alpha != 0.9 || c.Threshold != 0.1 || c.Hysteresis != 5 {
		t.Fatalf("explicit config clobbered: %+v", c)
	}
}

func TestSteadyRateNeverFires(t *testing.T) {
	d := New(Config{}, 0.10)
	for i := 0; i < 1000; i++ {
		if d.Observe(0.10) {
			t.Fatalf("fired at steady reference rate, sample %d", i)
		}
	}
	if d.Fired() != 0 || d.Samples() != 1000 {
		t.Fatalf("fired=%d samples=%d", d.Fired(), d.Samples())
	}
}

func TestMildDegradationWithinThresholdNeverFires(t *testing.T) {
	// 20% below reference with a 25% threshold: degraded never arms.
	d := New(Config{Threshold: 0.25}, 0.10)
	for i := 0; i < 1000; i++ {
		if d.Observe(0.08) {
			t.Fatalf("fired within threshold, sample %d", i)
		}
	}
}

func TestSustainedDegradationFires(t *testing.T) {
	d := New(Config{Alpha: 0.5, Threshold: 0.25, Hysteresis: 3}, 0.10)
	fired := -1
	for i := 0; i < 20; i++ {
		if d.Observe(0.02) {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("sustained 80% degradation never fired")
	}
	// The EWMA needs a couple of samples to cross, then hysteresis holds
	// it for 3 consecutive degraded readings.
	if fired < 2 {
		t.Fatalf("fired too eagerly at sample %d: hysteresis should delay it", fired)
	}
}

func TestTransientDipResetsHysteresis(t *testing.T) {
	// Alpha 1 makes the EWMA track the raw samples, isolating the
	// hysteresis logic: two degraded samples, one good one, repeated —
	// the consecutive count must never reach 3.
	d := New(Config{Alpha: 1, Threshold: 0.25, Hysteresis: 3}, 0.10)
	for i := 0; i < 50; i++ {
		r := 0.02
		if i%3 == 2 {
			r = 0.10
		}
		if d.Observe(r) {
			t.Fatalf("fired across transient dips at sample %d", i)
		}
	}
}

func TestRebaseStopsRefire(t *testing.T) {
	d := New(Config{Alpha: 1, Threshold: 0.25, Hysteresis: 2}, 0.10)
	fired := false
	for i := 0; i < 10 && !fired; i++ {
		fired = d.Observe(0.05)
	}
	if !fired {
		t.Fatal("never fired")
	}
	// The new phase's honest ceiling is 0.05: after a rebase, holding
	// that rate is healthy.
	d.Rebase(0.05)
	for i := 0; i < 100; i++ {
		if d.Observe(0.05) {
			t.Fatalf("re-fired after rebase at sample %d", i)
		}
	}
}

func TestFiringResetsConsecutiveCount(t *testing.T) {
	d := New(Config{Alpha: 1, Threshold: 0.25, Hysteresis: 3}, 0.10)
	count := 0
	for i := 0; i < 9; i++ {
		if d.Observe(0.01) {
			count++
		}
	}
	// 9 degraded samples with hysteresis 3: fires at samples 3, 6, 9 —
	// not on every sample past the third.
	if count != 3 {
		t.Fatalf("fired %d times over 9 degraded samples, want 3", count)
	}
}

func TestExportResumeRoundTrip(t *testing.T) {
	cfg := Config{Alpha: 0.5, Threshold: 0.25, Hysteresis: 4}
	a := New(cfg, 0.10)
	for i := 0; i < 3; i++ {
		a.Observe(0.03)
	}
	b := Resume(cfg, a.Export())
	// Drive both detectors identically: every subsequent decision must
	// match, including the firing sample.
	for i := 0; i < 10; i++ {
		fa, fb := a.Observe(0.03), b.Observe(0.03)
		if fa != fb {
			t.Fatalf("resumed detector diverged at sample %d: %v vs %v", i, fa, fb)
		}
	}
	if a.Export() != b.Export() {
		t.Fatalf("posture diverged: %+v vs %+v", a.Export(), b.Export())
	}
}
